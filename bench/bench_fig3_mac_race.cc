// Figure 3 reproduction: the eth_commit_mac_addr_change()/dev_ifsioc_locked() data race
// (#9) — "the kernel can send a partially updated MAC address to the user."
//
// Runs the MAC writer/reader test pair through the full Snowboard machinery (profile ->
// PMC -> hint-guided exploration), then quantifies the harm: across trials, how often does
// the reader receive a TORN MAC (neither the old nor the new address)?
#include "bench/bench_common.h"
#include "src/fuzz/generator.h"
#include "src/kernel/net/netdev.h"
#include "src/kernel/task.h"
#include "src/sim/site.h"

namespace snowboard {
namespace {

int Run() {
  bench::PrintHeader("Figure 3 — torn MAC address data race (issue #9)");
  KernelVm vm;
  std::vector<Program> seeds = SeedPrograms();
  std::vector<Program> corpus = {seeds[2], seeds[3]};  // MAC setter / getter tests.
  std::vector<SequentialProfile> profiles = ProfileCorpus(vm, corpus);
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);

  // The PMC over dev->dev_addr bytes.
  GuestAddr dev = kGuestNull;
  vm.engine().RunSequential([&](Ctx& ctx) {
    TaskEnter(ctx, vm.globals().tasks[0]);
    dev = DevGetByIndex(ctx, vm.globals(), 0);
  });
  const Pmc* channel = nullptr;
  for (const Pmc& pmc : pmcs) {
    if (pmc.key.write.addr >= dev + kDevAddr && pmc.key.write.addr < dev + kDevAddr + 6) {
      channel = &pmc;
      break;
    }
  }
  if (channel == nullptr) {
    std::printf("FAIL: dev_addr PMC not identified\n");
    return 1;
  }
  std::printf("PMC on dev->dev_addr: write %s / read %s\n\n",
              SiteName(channel->key.write.site).c_str(),
              SiteName(channel->key.read.site).c_str());

  ConcurrentTest test;
  test.writer = corpus[0];
  test.reader = corpus[1];
  test.write_test = 0;
  test.read_test = 1;
  test.hint = channel->key;

  // Detection: the race oracle must classify the pair as issue #9.
  ExplorerOptions options;
  options.num_trials = 64;
  options.stop_on_bug = false;
  ExploreOutcome outcome = ExploreConcurrentTest(vm, test, nullptr, options);
  bool classified = false;
  for (const RaceReport& race : outcome.races) {
    classified = classified || ClassifyRace(race) == 9;
  }
  std::printf("race oracle: %zu distinct races; issue #9 classified: %s\n",
              outcome.races.size(), classified ? "yes" : "NO");

  // Harm quantification: count torn reads across hinted trials (old MAC AA*6; new pattern
  // from seed 1 is 0x21..0x26 per FillMacPattern).
  int torn = 0;
  int clean_old = 0;
  int clean_new = 0;
  const int kTrials = 64;
  PmcScheduler scheduler;
  scheduler.ResetForTest(channel->key);
  for (int trial = 0; trial < kTrials; trial++) {
    scheduler.SeedTrial(1000 + static_cast<uint64_t>(trial));
    vm.RestoreSnapshot();
    int64_t observed = -1;
    Engine::RunOptions run_opts;
    run_opts.scheduler = &scheduler;
    vm.engine().Run(
        {[&](Ctx& ctx) {
           TaskEnter(ctx, vm.globals().tasks[0]);
           // Same seed as the profiled writer test, so the stores match the PMC hint and
           // performed_pmc_access fires mid-copy. Pattern bytes: 0x21..0x26.
           DevIoctlSetMac(ctx, vm.globals(), 0, 1);
         },
         [&](Ctx& ctx) {
           TaskEnter(ctx, vm.globals().tasks[1]);
           observed = DevIoctlGetMac(ctx, vm.globals(), 0);
         }},
        run_opts);
    bool all_old = true;
    bool all_new = true;
    for (int byte = 0; byte < 6; byte++) {
      uint8_t b = static_cast<uint8_t>(observed >> (8 * byte));
      all_old = all_old && b == 0xAA;
      all_new = all_new && b == 0x21 + byte;
    }
    torn += (!all_old && !all_new) ? 1 : 0;
    clean_old += all_old ? 1 : 0;
    clean_new += all_new ? 1 : 0;
  }
  std::printf("\nacross %d PMC-guided trials the reader observed:\n"
              "  old MAC   : %d\n  new MAC   : %d\n  TORN MAC  : %d  <- the corrupted "
              "address sent to the user\n",
              kTrials, clean_old, clean_new, torn);
  return classified && torn > 0 ? 0 : 1;
}

}  // namespace
}  // namespace snowboard

int main() { return snowboard::Run(); }
