// Shared setup for the bench binaries: a canonical corpus/campaign configuration so every
// table/figure is regenerated from the same inputs (the paper runs all strategies against
// one profiled corpus per kernel version).
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>

#include "src/snowboard/pipeline.h"

namespace snowboard {
namespace bench {

inline PipelineOptions CanonicalOptions(Strategy strategy, size_t budget, int workers) {
  PipelineOptions options;
  options.seed = 1;
  options.corpus.seed = 42;
  options.corpus.max_iterations = 300;
  options.corpus.target_size = 80;
  options.strategy = strategy;
  options.max_concurrent_tests = budget;
  options.explorer.num_trials = 24;
  options.num_workers = workers;
  return options;
}

inline PreparedCampaign CanonicalCampaign() {
  return PrepareCampaign(CanonicalOptions(Strategy::kSInsPair, 0, 1));
}

// Finds the Figure 1 l2tp publish PMC in an identified set; returns false if absent.
inline bool FindL2tpHint(const KernelVm& vm, const std::vector<Pmc>& pmcs, PmcKey* hint) {
  GuestAddr list_head = vm.globals().l2tp + 4;  // kL2tpListHead.
  for (const Pmc& pmc : pmcs) {
    if (pmc.key.write.addr == list_head && pmc.key.read.addr == list_head &&
        pmc.key.write.value != 0) {
      *hint = pmc.key;
      return true;
    }
  }
  return false;
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n"
              "%s\n"
              "================================================================\n",
              title);
}

}  // namespace bench
}  // namespace snowboard

#endif  // BENCH_BENCH_COMMON_H_
