// Shared setup for the bench binaries: a canonical corpus/campaign configuration so every
// table/figure is regenerated from the same inputs (the paper runs all strategies against
// one profiled corpus per kernel version).
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include <benchmark/benchmark.h>

#include "src/snowboard/pipeline.h"
#include "src/util/fs.h"

namespace snowboard {
namespace bench {

inline PipelineOptions CanonicalOptions(Strategy strategy, size_t budget, int workers) {
  PipelineOptions options;
  options.seed = 1;
  options.corpus.seed = 42;
  options.corpus.max_iterations = 300;
  options.corpus.target_size = 80;
  options.strategy = strategy;
  options.max_concurrent_tests = budget;
  options.explorer.num_trials = 24;
  options.num_workers = workers;
  return options;
}

inline PreparedCampaign CanonicalCampaign() {
  return PrepareCampaign(CanonicalOptions(Strategy::kSInsPair, 0, 1));
}

// Finds the Figure 1 l2tp publish PMC in an identified set; returns false if absent.
inline bool FindL2tpHint(const KernelVm& vm, const std::vector<Pmc>& pmcs, PmcKey* hint) {
  GuestAddr list_head = vm.globals().l2tp + 4;  // kL2tpListHead.
  for (const Pmc& pmc : pmcs) {
    if (pmc.key.write.addr == list_head && pmc.key.read.addr == list_head &&
        pmc.key.write.value != 0) {
      *hint = pmc.key;
      return true;
    }
  }
  return false;
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n"
              "%s\n"
              "================================================================\n",
              title);
}

// Bench hygiene: tags every benchmark JSON with the library's actual build type, the
// host's CPU budget, and the load average at launch, and warns loudly on stderr when the
// run is not trustworthy as a tracked number (debug build, or an already-loaded host).
// Checked-in BENCH_*.json files must say sb_build_type=release; earlier baselines were
// silently recorded from debug builds, which this context field makes impossible to miss.
// Call AFTER benchmark::Initialize (AddCustomContext is ignored before it).
inline void ReportEnvironment() {
#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  benchmark::AddCustomContext("sb_build_type", build_type);
  benchmark::AddCustomContext(
      "sb_hardware_concurrency", std::to_string(std::thread::hardware_concurrency()));
  double load1 = -1;
  if (std::optional<std::string> loadavg = ReadFileContents("/proc/loadavg")) {
    load1 = std::atof(loadavg->c_str());
    benchmark::AddCustomContext("sb_load_avg_1min", std::to_string(load1));
  }
  if (std::string("release") != build_type) {
    std::fprintf(stderr,
                 "\nWARNING: benchmarking a %s build of the snowboard library — numbers "
                 "are NOT comparable to tracked BENCH_*.json baselines. Reconfigure with "
                 "-DCMAKE_BUILD_TYPE=Release.\n\n",
                 build_type);
  }
  if (load1 > 1.5) {
    std::fprintf(stderr,
                 "\nWARNING: 1-minute load average is %.2f — a busy host skews timings; "
                 "results are tagged but should not be checked in.\n\n",
                 load1);
  }
}

}  // namespace bench
}  // namespace snowboard

#endif  // BENCH_BENCH_COMMON_H_
