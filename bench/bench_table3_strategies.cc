// Table 3 reproduction: "Testing results by each concurrent test generation method."
//
// Eleven generation methods — the 8 Table 1 strategies, Random S-INS-PAIR, and the Random/
// Duplicate pairing baselines — each run from scratch with the same corpus, the same
// per-method test budget (the analog of the paper's one-week-per-instance box), and
// independent execution. Reported per method: exemplar PMCs (clusters), tested PMCs, and
// the issues found with the test index of first discovery (the "days taken to find" proxy).
#include "bench/bench_common.h"

namespace snowboard {
namespace {

constexpr Strategy kMethods[] = {
    Strategy::kSFull,         Strategy::kSCh,
    Strategy::kSChNull,       Strategy::kSChUnaligned,
    Strategy::kSChDouble,     Strategy::kSIns,
    Strategy::kSInsPair,      Strategy::kSMem,
    Strategy::kRandomSInsPair, Strategy::kRandomPairing,
    Strategy::kDuplicatePairing,
};

int Run() {
  bench::PrintHeader("Table 3 — per-generation-method results (equal test budget each)");
  const size_t kBudget = 300;
  std::printf("budget: %zu concurrent tests per method, 24 trials per test\n\n", kBudget);
  std::printf("%-19s %10s %8s %7s  %s\n", "method", "exemplars", "tested", "issues",
              "issues found (first-test index)");

  // Shared stages 1-2, as in the paper (one profiling pass feeds all instances).
  PreparedCampaign campaign =
      PrepareCampaign(bench::CanonicalOptions(Strategy::kSInsPair, kBudget, 4));
  PmcMatcher matcher(&campaign.pmcs);

  size_t ins_pair_issues = 0;
  size_t random_ins_pair_issues = 0;
  size_t random_pairing_issues = 0;
  size_t sfull_issues = 0;

  for (Strategy strategy : kMethods) {
    PipelineOptions options = bench::CanonicalOptions(strategy, kBudget, 4);
    size_t clusters = 0;
    std::vector<ConcurrentTest> tests = GenerateTestsForStrategy(campaign, options, &clusters);
    PipelineResult result;
    ExecuteCampaign(tests, StrategyUsesPmcs(strategy),
                    StrategyUsesPmcs(strategy) ? &matcher : nullptr, options, &result);

    std::string found;
    size_t issues = 0;
    for (const auto& [id, finding] : result.findings.first_findings()) {
      if (id == 0) {
        continue;
      }
      issues++;
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "#%d(%zu) ", id, finding.test_index);
      found += buffer;
    }
    if (strategy == Strategy::kSInsPair) {
      ins_pair_issues = issues;
    } else if (strategy == Strategy::kRandomSInsPair) {
      random_ins_pair_issues = issues;
    } else if (strategy == Strategy::kRandomPairing) {
      random_pairing_issues = issues;
    } else if (strategy == Strategy::kSFull) {
      sfull_issues = issues;
    }
    std::printf("%-19s %10zu %8zu %7zu  %s\n", StrategyName(strategy),
                StrategyUsesPmcs(strategy) ? clusters : 0, result.tests_executed, issues,
                found.c_str());
  }

  std::printf("\nShape checks vs the paper's Table 3:\n");
  std::printf("  S-INS-PAIR (%zu) >= Random S-INS-PAIR (%zu): uncommon-first ordering "
              "helps ... %s\n",
              ins_pair_issues, random_ins_pair_issues,
              ins_pair_issues >= random_ins_pair_issues ? "HOLDS" : "VIOLATED");
  std::printf("  S-INS-PAIR (%zu) >  Random pairing (%zu): PMC guidance beats aimless "
              "pairing ... %s\n",
              ins_pair_issues, random_pairing_issues,
              ins_pair_issues > random_pairing_issues ? "HOLDS" : "VIOLATED");
  std::printf("  S-INS-PAIR (%zu) >  S-FULL (%zu): aggressive clustering beats the "
              "unfocused baseline ... %s\n",
              ins_pair_issues, sfull_issues,
              ins_pair_issues > sfull_issues ? "HOLDS" : "VIOLATED");
  bool ok = ins_pair_issues >= random_ins_pair_issues &&
            ins_pair_issues > random_pairing_issues && ins_pair_issues > sfull_issues;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace snowboard

int main() { return snowboard::Run(); }
