// Table 2 reproduction: the full Snowboard campaign ("all clustering strategies combined",
// as for Linux 5.3.10 in §5.1) against the mini-kernel, reporting every Table 2 issue with
// its type, subsystem, harmful/benign triage, the input kind (distinct/duplicate test
// pair), and when it was first found. The paper found 17 issues; this bench regenerates the
// same 17-row table from scratch.
#include <set>

#include "bench/bench_common.h"

namespace snowboard {
namespace {

int Run() {
  bench::PrintHeader(
      "Table 2 — issues found by the full campaign (all strategies combined)");

  // Stages 1-2 once.
  PipelineOptions base = bench::CanonicalOptions(Strategy::kSInsPair, 120, 4);
  PreparedCampaign campaign = PrepareCampaign(base);
  PmcMatcher matcher(&campaign.pmcs);

  // Iterate strategies with a per-strategy budget, merging findings (§4.3: "this approach
  // can be applied iteratively: choose predicate A, test one exemplar from each A-cluster,
  // then choose predicate B, ...").
  PipelineResult merged;
  static constexpr Strategy kCombined[] = {
      Strategy::kSIns,      Strategy::kSInsPair,  Strategy::kSCh,
      Strategy::kSChNull,   Strategy::kSChDouble, Strategy::kSChUnaligned,
      Strategy::kSMem,      Strategy::kSFull,
  };
  size_t cumulative_tests = 0;
  for (Strategy strategy : kCombined) {
    PipelineOptions options = base;
    options.strategy = strategy;
    size_t clusters = 0;
    std::vector<ConcurrentTest> tests = GenerateTestsForStrategy(campaign, options, &clusters);
    PipelineResult stage;
    ExecuteCampaign(tests, /*use_pmc_hints=*/true, &matcher, options, &stage);
    // Shift test indices so "first found" is cumulative across the battery.
    FindingsLog shifted;
    for (const auto& [id, finding] : stage.findings.first_findings()) {
      Finding f = finding;
      f.test_index += cumulative_tests;
      shifted.Record(f);
    }
    merged.findings.Merge(shifted);
    merged.tests_executed += stage.tests_executed;
    merged.tests_with_bug += stage.tests_with_bug;
    merged.channel_exercised += stage.channel_exercised;
    merged.total_trials += stage.total_trials;
    cumulative_tests += stage.tests_executed;
  }

  std::printf("executed %zu concurrent tests (%llu trials); %zu triggered a detector\n\n",
              merged.tests_executed, static_cast<unsigned long long>(merged.total_trials),
              merged.tests_with_bug);
  std::printf("%-3s %-5s %-14s %-9s %-10s %-11s %s\n", "ID", "Type", "Subsystem", "Class",
              "Input", "FoundAt", "Summary");

  int found_count = 0;
  int harmful_found = 0;
  int benign_found = 0;
  for (const IssueInfo& issue : IssueCatalog()) {
    const auto& findings = merged.findings.first_findings();
    auto it = findings.find(issue.id);
    bool found = it != findings.end();
    found_count += found ? 1 : 0;
    if (found) {
      harmful_found += issue.harmful ? 1 : 0;
      benign_found += issue.benign ? 1 : 0;
    }
    std::printf("#%-2d %-5s %-14s %-9s %-10s %-11s %s\n", issue.id,
                IssueTypeName(issue.type), issue.subsystem,
                issue.benign ? "benign" : (issue.harmful ? "HARMFUL" : "reported"),
                found ? (it->second.duplicate_input ? "duplicate" : "distinct") : "-",
                found ? ("test " + std::to_string(it->second.test_index)).c_str()
                      : "NOT FOUND",
                issue.summary);
  }
  std::printf("\nfound %d/17 issues (%d harmful, %d benign data races)\n", found_count,
              harmful_found, benign_found);
  std::printf("paper: 17 issues = 14 concurrency bugs + 3 benign data races "
              "(12 confirmed, 6 fixed)\n");
  if (merged.findings.Found(0)) {
    std::printf("WARNING: unclassified finding present: %s\n",
                merged.findings.first_findings().at(0).evidence.c_str());
  }
  return found_count == 17 ? 0 : 1;
}

}  // namespace
}  // namespace snowboard

int main() { return snowboard::Run(); }
