// §5.4 reproduction — interleavings to expose.
//
// "We execute all 9 concurrent tests that found bugs ... with Snowboard and SKI. SKI
// requires 84 times more interleavings than Snowboard on average to expose the concurrency
// bug (826.29 interleavings/test for SKI, versus only 9.76 for Snowboard). Since Snowboard
// uses SKI for its fine-grained scheduling control, its advantage comes solely from its use
// of PMCs as scheduling hints and the scheduling algorithm."
//
// This bench regenerates the experiment: it takes the bug-triggering concurrent tests found
// by a campaign, re-runs each to exposure of ITS issue under (a) Algorithm 2 with the PMC
// hint and (b) SKI PCT-style unguided exploration, and reports per-test and average
// interleaving counts plus the ratio.
#include <cmath>
#include <set>
#include <string>

#include "bench/bench_common.h"
#include "src/ski/baselines.h"

namespace snowboard {
namespace {

struct BugTest {
  ConcurrentTest test;
  int issue_id;
};

int Run() {
  bench::PrintHeader("§5.4 — interleavings to expose: Snowboard (PMC hints) vs SKI");
  const int kMaxTrials = 4096;

  // Phase 1: run a campaign and harvest bug-triggering tests (one per issue).
  PipelineOptions options = bench::CanonicalOptions(Strategy::kSInsPair, 400, 4);
  PreparedCampaign campaign = PrepareCampaign(options);
  std::vector<ConcurrentTest> tests = GenerateTestsForStrategy(campaign, options, nullptr);

  std::vector<BugTest> bug_tests;
  {
    KernelVm vm;
    std::set<int> covered;
    for (size_t i = 0; i < tests.size() && bug_tests.size() < 9; i++) {
      ExplorerOptions probe;
      probe.num_trials = 24;
      probe.seed = options.explorer.seed + i * 1000003ull;
      ExploreOutcome outcome = ExploreConcurrentTest(vm, tests[i], nullptr, probe);
      int issue = 0;
      for (const RaceReport& race : outcome.races) {
        int id = ClassifyRace(race);
        issue = id > issue && id != 13 ? id : issue;  // Prefer non-ubiquitous issues.
      }
      for (const std::string& line : outcome.panic_messages) {
        int id = ClassifyConsoleLine(line);
        issue = id != 0 ? id : issue;
      }
      if (issue != 0 && covered.insert(issue).second) {
        bug_tests.push_back(BugTest{tests[i], issue});
      }
    }
  }
  std::printf("harvested %zu bug-triggering concurrent tests\n\n", bug_tests.size());
  std::printf("%-8s %-12s %-12s %s\n", "issue", "snowboard", "ski", "(interleavings to expose)");

  KernelVm vm;
  double snowboard_sum = 0;
  double ski_sum = 0;
  int both = 0;
  for (const BugTest& bug : bug_tests) {
    ExposeComparison comparison =
        CompareTrialsToExpose(vm, bug.test, bug.issue_id, kMaxTrials, /*seed=*/17);
    std::printf("#%-7d %-12s %-12s\n", bug.issue_id,
                comparison.snowboard_found
                    ? std::to_string(comparison.snowboard_trials).c_str()
                    : "not found",
                comparison.ski_found ? std::to_string(comparison.ski_trials).c_str()
                                     : ">budget");
    if (comparison.snowboard_found) {
      snowboard_sum += comparison.snowboard_trials;
      ski_sum += comparison.ski_found ? comparison.ski_trials : kMaxTrials;
      both++;
    }
  }
  if (both == 0) {
    std::printf("no comparable tests\n");
    return 1;
  }
  double snowboard_avg = snowboard_sum / both;
  double ski_avg = ski_sum / both;
  std::printf("\naverage interleavings/test: Snowboard %.2f vs SKI %.2f  (ratio %.1fx)\n",
              snowboard_avg, ski_avg, ski_avg / snowboard_avg);
  std::printf("paper: 9.76 vs 826.29 (84x). Shape check: ratio > 2x ... %s\n",
              ski_avg > 2 * snowboard_avg ? "HOLDS" : "VIOLATED");
  return ski_avg > 2 * snowboard_avg ? 0 : 1;
}

}  // namespace
}  // namespace snowboard

int main() { return snowboard::Run(); }
