// §5.4 reproduction — interleavings to expose.
//
// "We execute all 9 concurrent tests that found bugs ... with Snowboard and SKI. SKI
// requires 84 times more interleavings than Snowboard on average to expose the concurrency
// bug (826.29 interleavings/test for SKI, versus only 9.76 for Snowboard). Since Snowboard
// uses SKI for its fine-grained scheduling control, its advantage comes solely from its use
// of PMCs as scheduling hints and the scheduling algorithm."
//
// This bench regenerates the experiment: it takes the bug-triggering concurrent tests found
// by a campaign, re-runs each to exposure of ITS issue under (a) Algorithm 2 with the PMC
// hint and (b) SKI PCT-style unguided exploration, and reports per-test and average
// interleaving counts plus the ratio.
// Invoked with no arguments, the binary runs that experiment. Invoked with any
// google-benchmark flag (e.g. --benchmark_filter=BM_), it instead runs the registered
// microbenchmarks below, which quantify the dirty-page delta snapshot restore and the
// zero-allocation trial hot path (bytes moved per restore, trials/second).
#include <benchmark/benchmark.h>

#include <cmath>
#include <set>
#include <string>

#include "bench/bench_common.h"
#include "src/fuzz/generator.h"
#include "src/ski/baselines.h"
#include "src/util/trace.h"

namespace snowboard {
namespace {

struct BugTest {
  ConcurrentTest test;
  int issue_id;
};

int Run() {
  bench::PrintHeader("§5.4 — interleavings to expose: Snowboard (PMC hints) vs SKI");
  const int kMaxTrials = 4096;

  // Phase 1: run a campaign and harvest bug-triggering tests (one per issue).
  PipelineOptions options = bench::CanonicalOptions(Strategy::kSInsPair, 400, 4);
  PreparedCampaign campaign = PrepareCampaign(options);
  std::vector<ConcurrentTest> tests = GenerateTestsForStrategy(campaign, options, nullptr);

  std::vector<BugTest> bug_tests;
  {
    KernelVm vm;
    std::set<int> covered;
    for (size_t i = 0; i < tests.size() && bug_tests.size() < 9; i++) {
      ExplorerOptions probe;
      probe.num_trials = 24;
      probe.seed = options.explorer.seed + i * 1000003ull;
      ExploreOutcome outcome = ExploreConcurrentTest(vm, tests[i], nullptr, probe);
      int issue = 0;
      for (const RaceReport& race : outcome.races) {
        int id = ClassifyRace(race);
        issue = id > issue && id != 13 ? id : issue;  // Prefer non-ubiquitous issues.
      }
      for (const std::string& line : outcome.panic_messages) {
        int id = ClassifyConsoleLine(line);
        issue = id != 0 ? id : issue;
      }
      if (issue != 0 && covered.insert(issue).second) {
        bug_tests.push_back(BugTest{tests[i], issue});
      }
    }
  }
  std::printf("harvested %zu bug-triggering concurrent tests\n\n", bug_tests.size());
  std::printf("%-8s %-12s %-12s %s\n", "issue", "snowboard", "ski", "(interleavings to expose)");

  KernelVm vm;
  double snowboard_sum = 0;
  double ski_sum = 0;
  int both = 0;
  for (const BugTest& bug : bug_tests) {
    ExposeComparison comparison =
        CompareTrialsToExpose(vm, bug.test, bug.issue_id, kMaxTrials, /*seed=*/17);
    std::printf("#%-7d %-12s %-12s\n", bug.issue_id,
                comparison.snowboard_found
                    ? std::to_string(comparison.snowboard_trials).c_str()
                    : "not found",
                comparison.ski_found ? std::to_string(comparison.ski_trials).c_str()
                                     : ">budget");
    if (comparison.snowboard_found) {
      snowboard_sum += comparison.snowboard_trials;
      ski_sum += comparison.ski_found ? comparison.ski_trials : kMaxTrials;
      both++;
    }
  }
  if (both == 0) {
    std::printf("no comparable tests\n");
    return 1;
  }
  double snowboard_avg = snowboard_sum / both;
  double ski_avg = ski_sum / both;
  std::printf("\naverage interleavings/test: Snowboard %.2f vs SKI %.2f  (ratio %.1fx)\n",
              snowboard_avg, ski_avg, ski_avg / snowboard_avg);
  std::printf("paper: 9.76 vs 826.29 (84x). Shape check: ratio > 2x ... %s\n",
              ski_avg > 2 * snowboard_avg ? "HOLDS" : "VIOLATED");
  return ski_avg > 2 * snowboard_avg ? 0 : 1;
}

// --------------------------------------------------------------------------------------------
// Snapshot-restore microbenchmarks.
//
// Both restore benches run the same trial-sized workload (one seed program) per iteration
// so the arena is realistically dirtied, then restore — one via the reference full-arena
// memcpy, one via the dirty-page delta. The "bytes/restore" counters are directly
// comparable: the delta path must move at least 5x fewer bytes (locked in by
// tests/snapshot_delta_property_test.cc; quantified here).
// --------------------------------------------------------------------------------------------

void BM_SnapshotRestoreFull(benchmark::State& state) {
  KernelVm vm;
  Memory& mem = vm.engine().mem();
  const std::vector<Engine::GuestFn> fns = {
      MakeProgramRunner(vm.globals(), SeedPrograms()[0], 0)};
  Engine::RunOptions opts;
  opts.max_instructions = 1'000'000;
  Engine::RunResult result;
  Memory::Snapshot snap = mem.TakeSnapshot();
  uint64_t bytes = 0;
  uint64_t restores = 0;
  for (auto _ : state) {
    vm.engine().RunInto(fns, opts, &result);
    mem.Restore(snap);
    bytes += mem.size();
    restores++;
  }
  state.counters["bytes/restore"] = benchmark::Counter(
      static_cast<double>(bytes) / static_cast<double>(restores));
}
BENCHMARK(BM_SnapshotRestoreFull)->Unit(benchmark::kMicrosecond);

void BM_SnapshotRestoreDirty(benchmark::State& state) {
  KernelVm vm;
  Memory& mem = vm.engine().mem();
  const std::vector<Engine::GuestFn> fns = {
      MakeProgramRunner(vm.globals(), SeedPrograms()[0], 0)};
  Engine::RunOptions opts;
  opts.max_instructions = 1'000'000;
  Engine::RunResult result;
  Memory::Snapshot snap = mem.TakeSnapshot();
  uint64_t bytes = 0;
  uint64_t pages = 0;
  uint64_t restores = 0;
  for (auto _ : state) {
    vm.engine().RunInto(fns, opts, &result);
    Memory::RestoreStats stats = mem.RestoreDirty(snap);
    bytes += stats.bytes_copied;
    pages += stats.dirty_pages;
    restores++;
  }
  state.counters["bytes/restore"] = benchmark::Counter(
      static_cast<double>(bytes) / static_cast<double>(restores));
  state.counters["pages/restore"] = benchmark::Counter(
      static_cast<double>(pages) / static_cast<double>(restores));
}
BENCHMARK(BM_SnapshotRestoreDirty)->Unit(benchmark::kMicrosecond);

// The distilled Algorithm 2 hot loop at steady state: delta restore + pooled-thread run
// into recycled buffers + detectors over persistent scratch. Zero heap allocations per
// iteration after warm-up (tests/trial_alloc_test.cc asserts that; this measures the rate).
void BM_TrialLoopSteadyState(benchmark::State& state) {
  KernelVm vm;
  const Program program = SeedPrograms()[0];
  SequentialProfile profile = ProfileTest(vm, program, 0);
  std::vector<Pmc> pmcs = IdentifyPmcs({profile});
  PmcScheduler scheduler;
  if (!pmcs.empty()) {
    scheduler.ResetForTest(pmcs[0].key);
  }
  const std::vector<Engine::GuestFn> fns = {MakeProgramRunner(vm.globals(), program, 0),
                                            MakeProgramRunner(vm.globals(), program, 1)};
  Engine::RunOptions opts;
  opts.scheduler = &scheduler;
  opts.max_instructions = 400'000;
  Engine::RunResult result;
  RaceDetector detector;
  DetectorResult detectors;

  uint64_t trial = 0;
  for (auto _ : state) {
    scheduler.SeedTrial(2021 + trial % 8);
    vm.RestoreSnapshot();
    vm.engine().RunInto(fns, opts, &result);
    RunDetectors(result, &detector, &detectors);
    trial++;
  }
  state.counters["trials/s"] =
      benchmark::Counter(static_cast<double>(trial), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TrialLoopSteadyState)->Unit(benchmark::kMicrosecond);

// The same loop with the tracer runtime-ENABLED: every trial emits the vm.restore span,
// restore-bytes counter, and engine.run span into the per-thread buffer. The EXPERIMENTS.md
// tracing-overhead table is (runtime-off = BM_TrialLoopSteadyState with default build,
// runtime-on = this, compiled-out = BM_TrialLoopSteadyState with -DSB_TRACE_COMPILED=0).
void BM_TrialLoopSteadyStateTraced(benchmark::State& state) {
  KernelVm vm;
  const Program program = SeedPrograms()[0];
  SequentialProfile profile = ProfileTest(vm, program, 0);
  std::vector<Pmc> pmcs = IdentifyPmcs({profile});
  PmcScheduler scheduler;
  if (!pmcs.empty()) {
    scheduler.ResetForTest(pmcs[0].key);
  }
  const std::vector<Engine::GuestFn> fns = {MakeProgramRunner(vm.globals(), program, 0),
                                            MakeProgramRunner(vm.globals(), program, 1)};
  Engine::RunOptions opts;
  opts.scheduler = &scheduler;
  opts.max_instructions = 400'000;
  Engine::RunResult result;
  RaceDetector detector;
  DetectorResult detectors;

  Tracer::Global().Start(/*per_thread_capacity=*/1 << 20);
  uint64_t trial = 0;
  for (auto _ : state) {
    scheduler.SeedTrial(2021 + trial % 8);
    vm.RestoreSnapshot();
    vm.engine().RunInto(fns, opts, &result);
    RunDetectors(result, &detector, &detectors);
    trial++;
  }
  Tracer::Global().Stop();
  state.counters["trials/s"] =
      benchmark::Counter(static_cast<double>(trial), benchmark::Counter::kIsRate);
  state.counters["dropped"] =
      benchmark::Counter(static_cast<double>(Tracer::Global().TotalDropped()));
}
BENCHMARK(BM_TrialLoopSteadyStateTraced)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace snowboard

int main(int argc, char** argv) {
  if (argc > 1) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
      return 1;
    }
    snowboard::bench::ReportEnvironment();
    benchmark::RunSpecifiedBenchmarks();
    return 0;
  }
  return snowboard::Run();
}
