// Figure 4 reproduction: the rhashtable conditional-with-omitted-operands bug (#1).
//
// Compares the two "compiler options" of the figure — rht_ptr emitting a double fetch
// (gcc -O2, the buggy codegen) vs a single fetch (gcc -O1 -fno-tree-dominator-opts
// -fno-tree-fre) — by running the msgget()/msgctl(IPC_RMID) syscall pair through Snowboard's
// own machinery against BOTH kernel builds: profile, identify the bucket-word PMCs, and
// explore each cluster exemplar with Algorithm 2 (flags + incidental adoption), exactly as a
// campaign would. The buggy build must reach the "BUG: unable to handle page fault /
// NULL pointer dereference" panic; the single-fetch build must survive every schedule.
//
// "In this case, the interleaving vulnerability window is extremely narrow — a single
// assembly instruction — hence hard for a tool to find at random."
#include <string>

#include "bench/bench_common.h"
#include "src/fuzz/generator.h"
#include "src/kernel/ipc/msg.h"
#include "src/kernel/rhashtable.h"
#include "src/sim/site.h"

namespace snowboard {
namespace {

struct ModeResult {
  int hints_explored = 0;
  int trials = 0;
  int panics = 0;
  std::string first_panic;
};

ModeResult RunMode(uint32_t fetch_mode, int trials_per_hint) {
  KernelVm vm;
  // Flip the "compiler option" in the booted image and make it the fixed initial state.
  GuestAddr ht = static_cast<GuestAddr>(
      vm.engine().mem().ReadRaw(vm.globals().msgipc + kMsgHt, 4));
  vm.engine().mem().WriteRaw(ht + kRhtFetchMode, 4, fetch_mode);
  vm.RefreshSnapshot();

  std::vector<Program> seeds = SeedPrograms();
  // Writer: msgget(2); msgctl(IPC_RMID) — executes rht_assign_unlock(bkt, 0).
  // Reader: msgget(2); msgsnd — the lookup-HIT path whose profile reads the occupied bucket.
  std::vector<Program> corpus = {seeds[9], seeds[10]};
  std::vector<SequentialProfile> profiles = ProfileCorpus(vm, corpus);
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
  PmcMatcher matcher(&pmcs);

  // Explore every bucket-word PMC exemplar, as the campaign's per-cluster loop does.
  ModeResult result;
  for (const Pmc& pmc : pmcs) {
    const PmcKey& key = pmc.key;
    if (key.write.addr < ht + kRhtBuckets || key.write.addr >= ht + kRhtBuckets + 32) {
      continue;
    }
    ConcurrentTest test;
    test.writer = corpus[0];
    test.reader = corpus[1];
    test.write_test = 0;
    test.read_test = 1;
    test.hint = key;

    // Sweep several exploration seeds per exemplar: the window is a single instruction
    // wide, so exposure rates are on the order of one panic per ~10k guided trials — a
    // campaign reaches that volume through its many tests; the bench reaches it through
    // seeds. The single-fetch build must survive the IDENTICAL schedule budget.
    for (uint64_t seed : {99ull, 7ull, 2021ull, 12345ull}) {
      ExplorerOptions options;
      options.num_trials = trials_per_hint;
      options.seed = seed;
      options.stop_on_bug = false;
      ExploreOutcome outcome = ExploreConcurrentTest(vm, test, &matcher, options);
      result.trials += outcome.trials_run;
      if (!outcome.panic_messages.empty()) {
        result.panics += static_cast<int>(outcome.panic_messages.size());
        if (result.first_panic.empty()) {
          result.first_panic = outcome.panic_messages[0];
        }
      }
    }
    result.hints_explored++;
  }
  return result;
}

int Run() {
  bench::PrintHeader("Figure 4 — rhashtable double fetch (issue #1), both compiler options");
  std::printf("concurrent test: msgget(2)+msgctl(IPC_RMID)  ||  msgget(2)+msgsnd\n\n");
  const int kTrialsPerHint = 512;

  ModeResult buggy = RunMode(kRhtDoubleFetch, kTrialsPerHint);
  std::printf("compiler option 2 (gcc -O2, DOUBLE fetch):\n"
              "  %d bucket-PMC exemplars, %d guided trials -> %d panic(s)\n",
              buggy.hints_explored, buggy.trials, buggy.panics);
  if (!buggy.first_panic.empty()) {
    std::printf("  guest console: %s\n", buggy.first_panic.c_str());
  }

  ModeResult fixed = RunMode(kRhtSingleFetch, kTrialsPerHint);
  std::printf("\ncompiler option 1 (single READ_ONCE fetch):\n"
              "  %d bucket-PMC exemplars, %d guided trials -> %d panic(s)\n",
              fixed.hints_explored, fixed.trials, fixed.panics);

  std::printf("\nshape check: double fetch panics, single fetch immune ... %s\n",
              buggy.panics > 0 && fixed.panics == 0 ? "HOLDS" : "VIOLATED");
  return buggy.panics > 0 && fixed.panics == 0 ? 0 : 1;
}

}  // namespace
}  // namespace snowboard

int main() { return snowboard::Run(); }
