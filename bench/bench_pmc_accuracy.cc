// §5.3.2 reproduction — PMC identification accuracy.
//
// "After testing the kernel for a week, 3743.1K concurrent inputs were tested, of which
// 784.9K (22%) actually exercised predicted PMCs. Among all tested concurrent inputs,
// 2153.5K were generated based on predicted PMCs ... the precision of the PMC
// identification is about 36%."
//
// This bench runs PMC-generated inputs and baseline-generated inputs with the same budgets
// and reports the same two ratios: overall exercised fraction and PMC-generation precision.
// The shape claim: precision is well above zero (PMCs are real predictions) and well below
// 100% (mispredictions from allocator divergence and control-flow change, §5.3.2), and
// PMC-generated inputs vastly out-exercise random pairings.
#include "bench/bench_common.h"

namespace snowboard {
namespace {

int Run() {
  bench::PrintHeader("§5.3.2 — PMC identification accuracy");
  const size_t kPmcBudget = 400;
  const size_t kBaselineBudget = 200;

  PreparedCampaign campaign =
      PrepareCampaign(bench::CanonicalOptions(Strategy::kSInsPair, kPmcBudget, 4));
  PmcMatcher matcher(&campaign.pmcs);

  // PMC-generated inputs (prioritized by S-INS-PAIR, as the paper's mix was).
  PipelineOptions pmc_options = bench::CanonicalOptions(Strategy::kSInsPair, kPmcBudget, 4);
  size_t clusters = 0;
  std::vector<ConcurrentTest> pmc_tests =
      GenerateTestsForStrategy(campaign, pmc_options, &clusters);
  PipelineResult pmc_result;
  ExecuteCampaign(pmc_tests, /*use_pmc_hints=*/true, &matcher, pmc_options, &pmc_result);

  // Baseline inputs (Random + Duplicate pairing): no PMC, so by definition they exercise
  // no *predicted* channel.
  PipelineOptions random_options =
      bench::CanonicalOptions(Strategy::kRandomPairing, kBaselineBudget, 4);
  std::vector<ConcurrentTest> random_tests =
      GenerateTestsForStrategy(campaign, random_options, nullptr);
  PipelineResult random_result;
  ExecuteCampaign(random_tests, false, nullptr, random_options, &random_result);

  size_t total_tested = pmc_result.tests_executed + random_result.tests_executed;
  size_t total_exercised = pmc_result.channel_exercised;
  double overall = 100.0 * static_cast<double>(total_exercised) /
                   static_cast<double>(total_tested);
  double precision = 100.0 * static_cast<double>(pmc_result.channel_exercised) /
                     static_cast<double>(pmc_result.tests_executed);

  std::printf("identified PMCs:                   %zu unique keys (%llu test pairs)\n",
              campaign.pmcs.size(), [&] {
                unsigned long long pairs = 0;
                for (const Pmc& pmc : campaign.pmcs) {
                  pairs += pmc.total_pairs;
                }
                return pairs;
              }());
  std::printf("concurrent inputs tested:          %zu (%zu PMC-generated, %zu baseline)\n",
              total_tested, pmc_result.tests_executed, random_result.tests_executed);
  std::printf("inputs exercising predicted PMC:   %zu\n", total_exercised);
  std::printf("overall exercised fraction:        %.1f%%   (paper: 22%%)\n", overall);
  std::printf("PMC-generation precision:          %.1f%%   (paper: ~36%%)\n", precision);
  std::printf("\nmisprediction causes (§5.3.2): concurrent allocation divergence and "
              "control-flow change\nfrom earlier exercised PMCs — both present in this "
              "substrate.\nNote: \"Snowboard does not produce any false positive bug "
              "reports\" — channels are tested dynamically.\n");

  bool shape_holds = precision > 5.0 && precision < 95.0;
  std::printf("shape check: 5%% < precision < 95%% ... %s\n",
              shape_holds ? "HOLDS" : "VIOLATED");
  return shape_holds ? 0 : 1;
}

}  // namespace
}  // namespace snowboard

int main() { return snowboard::Run(); }
