// Multi-core explore-loop scaling matrix (BENCH_scaling.json, the tracked headline).
//
// Measures the steady-state concurrent-test execution stage — the loop the paper runs for
// 10 days on a 32-VM fleet — at 1/2/4/8 workers over a fixed prepared campaign, and
// reports, per point:
//   * trials_per_sec        — wall-clock trials/s of this run (manual time).
//   * cpu_us_per_trial      — measured CPU cost of one trial, summed over ALL pool
//                             threads (getrusage RUSAGE_SELF), the contention-sensitive
//                             number the lock-free claim/aggregation work drives down.
//   * modeled_trials_per_sec— workers / cpu_seconds_per_trial: the throughput N truly
//                             parallel cores would sustain at this measured per-trial CPU
//                             cost. On a host with >= N CPUs this converges to
//                             trials_per_sec; on a CPU-limited host (see cpu_limited) it
//                             is the honest scaling number, because wall-clock time under
//                             N time-sliced workers measures the scheduler, not the code.
//   * scaling_x / efficiency— modeled_trials_per_sec relative to the 1-worker point, and
//                             that ratio divided by the worker count. Synchronization or
//                             cache-line contention added by parallelism shows up here as
//                             efficiency < 1 — it burns real, measured CPU; this is not a
//                             circular N/N identity.
//   * cpu_limited           — 1 when the host has fewer CPUs than workers (wall-clock
//                             trials_per_sec is then meaningless for scaling claims).
// Run the 1-worker point first (registration order does) — later points read its
// cpu_us_per_trial to compute scaling_x/efficiency; without it they report 0.
#include <sys/resource.h>

#include <chrono>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/snowboard/pipeline.h"
#include "src/util/counters.h"

namespace snowboard {
namespace {

constexpr size_t kTestBudget = 64;

// Process CPU seconds (user + system) across every thread, including pool workers.
double CpuSeconds() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  auto seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return seconds(usage.ru_utime) + seconds(usage.ru_stime);
}

// The campaign is prepared once (corpus, profiles, PMC table, test list); every scaling
// point executes the SAME test list, so the points differ only in worker count.
struct ScalingFixture {
  PreparedCampaign campaign;
  std::vector<ConcurrentTest> tests;
};

ScalingFixture& Fixture() {
  static ScalingFixture* fixture = [] {
    auto* f = new ScalingFixture();
    f->campaign = bench::CanonicalCampaign();
    PipelineOptions options = bench::CanonicalOptions(Strategy::kSInsPair, kTestBudget, 1);
    size_t clusters = 0;
    f->tests = GenerateTestsForStrategy(f->campaign, options, &clusters);
    return f;
  }();
  return *fixture;
}

double& OneWorkerCpuPerTrial() {
  static double cpu_per_trial = 0;
  return cpu_per_trial;
}

void BM_ExploreScaling(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  ScalingFixture& fixture = Fixture();
  PipelineOptions options =
      bench::CanonicalOptions(Strategy::kSInsPair, kTestBudget, workers);
  PmcMatcher matcher(&fixture.campaign.pmcs);

  uint64_t trials = 0;
  double cpu_seconds = 0;
  for (auto _ : state) {
    PipelineResult result;
    double cpu_start = CpuSeconds();
    auto wall_start = std::chrono::steady_clock::now();
    ExecuteCampaign(fixture.tests, /*use_pmc_hints=*/true, &matcher, options, &result);
    state.SetIterationTime(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                         wall_start)
                               .count());
    cpu_seconds += CpuSeconds() - cpu_start;
    trials += result.total_trials;
  }

  const double cpu_per_trial = trials > 0 ? cpu_seconds / static_cast<double>(trials) : 0;
  if (workers == 1 && cpu_per_trial > 0) {
    OneWorkerCpuPerTrial() = cpu_per_trial;
  }
  const double modeled =
      cpu_per_trial > 0 ? static_cast<double>(workers) / cpu_per_trial : 0;
  const double baseline_modeled =
      OneWorkerCpuPerTrial() > 0 ? 1.0 / OneWorkerCpuPerTrial() : 0;
  const double scaling = baseline_modeled > 0 ? modeled / baseline_modeled : 0;

  state.counters["trials_per_sec"] =
      benchmark::Counter(static_cast<double>(trials), benchmark::Counter::kIsRate);
  state.counters["cpu_us_per_trial"] = benchmark::Counter(cpu_per_trial * 1e6);
  state.counters["modeled_trials_per_sec"] = benchmark::Counter(modeled);
  state.counters["scaling_x"] = benchmark::Counter(scaling);
  state.counters["efficiency"] =
      benchmark::Counter(workers > 0 ? scaling / static_cast<double>(workers) : 0);
  state.counters["cpu_limited"] = benchmark::Counter(
      std::thread::hardware_concurrency() < static_cast<unsigned>(workers) ? 1 : 0);
}
BENCHMARK(BM_ExploreScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace snowboard

int main(int argc, char** argv) {
  snowboard::bench::PrintHeader(
      "Multi-core explore-loop scaling (1/2/4/8-worker matrix; see EXPERIMENTS.md)");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  snowboard::bench::ReportEnvironment();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
