// Table 1 / §4.3 characterization: for each clustering strategy, the number of clusters
// (exemplar PMCs) and surviving PMCs produced from the canonical corpus, plus
// google-benchmark timings of identification and clustering (the §5.4 "clustering PMCs
// according to S-FULL is the major computation" observation).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/snowboard/stats.h"

namespace snowboard {
namespace {

const PreparedCampaign& Campaign() {
  static const PreparedCampaign* campaign =
      new PreparedCampaign(bench::CanonicalCampaign());
  return *campaign;
}

void ReportTable() {
  const PreparedCampaign& campaign = Campaign();
  bench::PrintHeader("Table 1 — clustering strategies over the canonical corpus");
  uint64_t total_pairs = 0;
  for (const Pmc& pmc : campaign.pmcs) {
    total_pairs += pmc.total_pairs;
  }
  std::printf("corpus: %zu tests, %zu unique PMC keys, %llu write/read test pairs\n\n",
              campaign.corpus.size(), campaign.pmcs.size(),
              static_cast<unsigned long long>(total_pairs));
  std::printf("%-16s %12s %12s %11s %7s   %s\n", "strategy", "clusters", "kept PMCs",
              "singleton%", "gini", "size distribution");
  for (Strategy strategy : kAllClusteringStrategies) {
    std::vector<PmcCluster> clusters = ClusterPmcs(campaign.pmcs, strategy);
    size_t kept = 0;
    for (const PmcCluster& cluster : clusters) {
      kept += cluster.members.size();
    }
    DistributionSummary summary = SummarizeClusterSizes(clusters);
    std::printf("%-16s %12zu %12zu %10.0f%% %7.2f   %s\n", StrategyName(strategy),
                clusters.size(), kept, 100.0 * SingletonFraction(clusters), summary.gini,
                FormatSummary(summary).c_str());
  }
  std::printf("\nShape check (paper): S-FULL yields the most clusters (costliest, "
              "unfocused);\nfilters (S-CH-NULL/UNALIGNED/DOUBLE) discard most PMCs; S-INS "
              "collapses hardest.\n");
}

void BM_IdentifyPmcs(benchmark::State& state) {
  const PreparedCampaign& campaign = Campaign();
  for (auto _ : state) {
    std::vector<Pmc> pmcs = IdentifyPmcs(campaign.profiles);
    benchmark::DoNotOptimize(pmcs);
  }
  state.counters["pmcs"] = static_cast<double>(campaign.pmcs.size());
}
BENCHMARK(BM_IdentifyPmcs);

void BM_ClusterStrategy(benchmark::State& state) {
  const PreparedCampaign& campaign = Campaign();
  Strategy strategy = static_cast<Strategy>(state.range(0));
  for (auto _ : state) {
    std::vector<PmcCluster> clusters = ClusterPmcs(campaign.pmcs, strategy);
    benchmark::DoNotOptimize(clusters);
  }
  state.SetLabel(StrategyName(strategy));
}
BENCHMARK(BM_ClusterStrategy)->DenseRange(0, 7);

}  // namespace
}  // namespace snowboard

int main(int argc, char** argv) {
  snowboard::ReportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
