// Figure 1 reproduction: the l2tp non-data-race concurrency bug (#12).
//
// Regenerates the figure's content programmatically: the two tests, the PMC between
// l2tp_tunnel_register's publish (➊) and pppol2tp_connect's retrieval (➌), and the panic
// that fires when the ➊→➋ window is interposed. Also verifies the §5.2 Case 2 claims: the
// tunnel id is user-controlled, and no data race is involved.
#include "bench/bench_common.h"
#include "src/fuzz/generator.h"
#include "src/sim/site.h"

namespace snowboard {
namespace {

int Run() {
  bench::PrintHeader("Figure 1 — l2tp order violation (issue #12)");
  KernelVm vm;
  std::vector<Program> corpus = {SeedPrograms()[0], SeedPrograms()[1]};
  std::printf("Test 1                          Test 2\n"
              "r0 = socket(PX_PROTO_OL2TP)     r0 = socket(PX_PROTO_OL2TP)\n"
              "r1 = socket(AF_INET)            r1 = socket(AF_INET)\n"
              "connect(r0, tid=1)              connect(r0, tid=1)\n"
              "                                sendmsg(r0, ...)\n\n");

  std::vector<SequentialProfile> profiles = ProfileCorpus(vm, corpus);
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
  PmcKey hint;
  if (!bench::FindL2tpHint(vm, pmcs, &hint)) {
    std::printf("FAIL: registration PMC not identified\n");
    return 1;
  }
  std::printf("PMC identified from sequential profiles (%zu PMCs total):\n"
              "  ➊ write %s value=0x%llx\n  ➌ read  %s value=0x%llx\n\n",
              pmcs.size(), SiteName(hint.write.site).c_str(),
              static_cast<unsigned long long>(hint.write.value),
              SiteName(hint.read.site).c_str(),
              static_cast<unsigned long long>(hint.read.value));

  ConcurrentTest test;
  test.writer = corpus[0];
  test.reader = corpus[1];
  test.write_test = 0;
  test.read_test = 1;
  test.hint = hint;

  ExplorerOptions options;
  options.num_trials = 64;
  options.target_issue = 12;
  ExploreOutcome outcome = ExploreConcurrentTest(vm, test, nullptr, options);

  std::printf("exploration: %d trials, target %s\n", outcome.trials_run,
              outcome.target_found ? "EXPOSED" : "not exposed");
  for (const std::string& line : outcome.panic_messages) {
    std::printf("  guest console: %s\n", line.c_str());
  }

  // §5.2 Case 2: "concurrency bugs ... also occur when there are no data races involved".
  bool l2tp_race = false;
  for (const RaceReport& race : outcome.races) {
    std::string functions =
        LookupSite(race.write_site).function + LookupSite(race.other_site).function;
    l2tp_race = l2tp_race || functions.find("L2tp") != std::string::npos;
  }
  std::printf("\nno l2tp data race reported by the race oracle: %s (the bug is an order "
              "violation)\n",
              l2tp_race ? "VIOLATED" : "HOLDS");
  return outcome.target_found && !l2tp_race ? 0 : 1;
}

}  // namespace
}  // namespace snowboard

int main() { return snowboard::Run(); }
