// Ablation study: which parts of Algorithm 2's scheduling actually buy the exposure speed?
//
// The §5.4 comparison attributes Snowboard's advantage to "its use of PMCs as scheduling
// hints and the scheduling algorithm (Algorithm 2)". This bench decomposes that: for the
// bug-triggering tests of a campaign, it measures trials-to-expose under
//   (a) full Algorithm 2 (precise PMC matching + flags + incidental adoption),
//   (b) no flags (pmc_access_coming disabled — only performed_pmc_access switches),
//   (c) instruction-only matching (the SKI-style hint: site match, targets ignored),
//   (d) unguided random preemption.
// Expected shape: (a) <= (b) << (d); (c) lands between (b) and (d).
#include <set>
#include <string>

#include "bench/bench_common.h"
#include "src/ski/ski_scheduler.h"

namespace snowboard {
namespace {

struct AblationRow {
  int issue_id = 0;
  int full = 0;
  int no_flags = 0;
  int ins_only = 0;
  int random = 0;
};

int Run() {
  bench::PrintHeader("Ablation — Algorithm 2 components vs trials-to-expose");
  const int kMaxTrials = 2048;

  PipelineOptions options = bench::CanonicalOptions(Strategy::kSInsPair, 400, 4);
  PreparedCampaign campaign = PrepareCampaign(options);
  std::vector<ConcurrentTest> tests = GenerateTestsForStrategy(campaign, options, nullptr);

  // Harvest one bug-triggering test per issue (as bench_perf_interleavings does).
  struct BugTest {
    ConcurrentTest test;
    int issue_id;
  };
  std::vector<BugTest> bug_tests;
  {
    KernelVm vm;
    std::set<int> covered;
    for (size_t i = 0; i < tests.size() && bug_tests.size() < 6; i++) {
      ExplorerOptions probe;
      probe.num_trials = 24;
      probe.seed = options.explorer.seed + i * 1000003ull;
      ExploreOutcome outcome = ExploreConcurrentTest(vm, tests[i], nullptr, probe);
      int issue = 0;
      for (const RaceReport& race : outcome.races) {
        int id = ClassifyRace(race);
        issue = id > issue && id != 13 ? id : issue;
      }
      for (const std::string& line : outcome.panic_messages) {
        int id = ClassifyConsoleLine(line);
        issue = id != 0 ? id : issue;
      }
      if (issue != 0 && covered.insert(issue).second) {
        bug_tests.push_back(BugTest{tests[i], issue});
      }
    }
  }

  std::printf("%-8s %10s %10s %10s %10s\n", "issue", "full", "no-flags", "ins-only",
              "random");
  KernelVm vm;
  double sums[4] = {0, 0, 0, 0};
  for (const BugTest& bug : bug_tests) {
    AblationRow row;
    row.issue_id = bug.issue_id;

    {
      // (a) Full Algorithm 2.
      ExplorerOptions eo;
      eo.num_trials = kMaxTrials;
      eo.seed = 17;
      eo.target_issue = bug.issue_id;
      ExploreOutcome outcome = ExploreConcurrentTest(vm, bug.test, nullptr, eo);
      row.full = outcome.target_found ? outcome.first_target_trial + 1 : kMaxTrials;
    }
    {
      // (b) No flags: a PmcScheduler with the flags mechanism disabled.
      PmcScheduler scheduler;
      scheduler.set_flags_enabled(false);
      scheduler.ResetForTest(bug.test.hint);
      ExplorerOptions eo;
      eo.num_trials = kMaxTrials;
      eo.seed = 17;
      eo.target_issue = bug.issue_id;
      ExploreOutcome outcome =
          ExploreWithScheduler(vm, bug.test, scheduler, /*check_channel=*/false, eo);
      row.no_flags = outcome.target_found ? outcome.first_target_trial + 1 : kMaxTrials;
    }
    {
      // (c) Instruction-only matching (SKI's hint usage).
      SkiInstructionScheduler scheduler(bug.test.hint);
      ExplorerOptions eo;
      eo.num_trials = kMaxTrials;
      eo.seed = 17;
      eo.target_issue = bug.issue_id;
      ExploreOutcome outcome =
          ExploreWithScheduler(vm, bug.test, scheduler, /*check_channel=*/false, eo);
      row.ins_only = outcome.target_found ? outcome.first_target_trial + 1 : kMaxTrials;
    }
    {
      // (d) Unguided random preemption.
      RandomPreemptScheduler scheduler;
      ExplorerOptions eo;
      eo.num_trials = kMaxTrials;
      eo.seed = 17;
      eo.target_issue = bug.issue_id;
      ExploreOutcome outcome =
          ExploreWithScheduler(vm, bug.test, scheduler, /*check_channel=*/false, eo);
      row.random = outcome.target_found ? outcome.first_target_trial + 1 : kMaxTrials;
    }

    std::printf("#%-7d %10d %10d %10d %10d\n", row.issue_id, row.full, row.no_flags,
                row.ins_only, row.random);
    sums[0] += row.full;
    sums[1] += row.no_flags;
    sums[2] += row.ins_only;
    sums[3] += row.random;
  }
  size_t n = bug_tests.empty() ? 1 : bug_tests.size();
  std::printf("%-8s %10.1f %10.1f %10.1f %10.1f\n", "avg",
              sums[0] / static_cast<double>(n), sums[1] / static_cast<double>(n),
              sums[2] / static_cast<double>(n), sums[3] / static_cast<double>(n));
  bool shape = sums[0] <= sums[3] && sums[1] <= sums[3];
  std::printf("\nshape check: PMC-guided variants expose no slower than unguided random "
              "... %s\n",
              shape ? "HOLDS" : "VIOLATED");
  return shape ? 0 : 1;
}

}  // namespace
}  // namespace snowboard

int main() { return snowboard::Run(); }
