// §5.4 reproduction — pipeline performance.
//
// The paper reports: profiling 129,876 sequential tests in ~40h, PMC identification +
// clustering in <5h without S-FULL (~80h with it), concurrent-test generation at >1000
// tests/second, and execution throughput of 193.8 (Snowboard) vs 170.3 (SKI) executions
// per minute — SKI being slower because it "yields thread execution whenever it observes
// the write or read instruction involved in a PMC (regardless of memory targets)".
//
// Our absolute numbers are simulator-scale; the reproduced *shape* is: generation is orders
// of magnitude faster than execution, S-FULL dominates clustering cost, and Snowboard's
// precise PMC matching yields at least SKI-instruction-matching throughput.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/fuzz/generator.h"
#include "src/ski/baselines.h"

namespace snowboard {
namespace {

const PreparedCampaign& Campaign() {
  static const PreparedCampaign* campaign =
      new PreparedCampaign(bench::CanonicalCampaign());
  return *campaign;
}

std::vector<ConcurrentTest> HintedTests(size_t count) {
  PipelineOptions options = bench::CanonicalOptions(Strategy::kSInsPair, count, 1);
  return GenerateTestsForStrategy(Campaign(), options, nullptr);
}

// --- Stage benchmarks. ---

// Campaign preparation (stages 1-2: sharded profiling + sharded PMC identification) at
// several worker counts. The determinism harness proves the outputs are byte-identical
// across counts; this measures the wall-clock payoff (≥2× at 4 workers on ≥4 host cores —
// corpus construction is excluded from the reported counter since it stays sequential).
void BM_CampaignPreparation(benchmark::State& state) {
  int workers = static_cast<int>(state.range(0));
  double prep_seconds = 0;
  for (auto _ : state) {
    PipelineOptions options = bench::CanonicalOptions(Strategy::kSInsPair, 0, workers);
    PreparedCampaign campaign = PrepareCampaign(options);
    prep_seconds += campaign.profile_seconds + campaign.identify_seconds;
    benchmark::DoNotOptimize(campaign);
  }
  state.counters["profile+identify_s"] =
      benchmark::Counter(prep_seconds, benchmark::Counter::kAvgIterations);
  state.SetLabel(workers == 1 ? "sequential baseline" : "sharded preparation");
}
BENCHMARK(BM_CampaignPreparation)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// Multi-strategy preparation with a shared profile cache: the second strategy's profiling
// stage is served entirely from the cache (Table 3 runs 5+ strategies over one corpus).
void BM_PreparationWithProfileCache(benchmark::State& state) {
  for (auto _ : state) {
    ProfileCache cache;
    PipelineOptions options = bench::CanonicalOptions(Strategy::kSInsPair, 0, 1);
    options.profile_cache = &cache;
    PreparedCampaign first = PrepareCampaign(options);
    options.strategy = Strategy::kSCh;
    PreparedCampaign second = PrepareCampaign(options);
    benchmark::DoNotOptimize(first);
    benchmark::DoNotOptimize(second);
  }
  state.SetLabel("2 strategies, 1 profiling pass");
}
BENCHMARK(BM_PreparationWithProfileCache)->Unit(benchmark::kMillisecond);

void BM_SequentialProfiling(benchmark::State& state) {
  KernelVm vm;
  const std::vector<Program>& corpus = Campaign().corpus;
  size_t tests = 0;
  for (auto _ : state) {
    SequentialProfile profile =
        ProfileTest(vm, corpus[tests % corpus.size()], static_cast<int>(tests));
    benchmark::DoNotOptimize(profile);
    tests++;
  }
  state.counters["tests/s"] =
      benchmark::Counter(static_cast<double>(tests), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SequentialProfiling);

void BM_PmcIdentificationAndClustering(benchmark::State& state) {
  bool with_sfull = state.range(0) != 0;
  for (auto _ : state) {
    std::vector<Pmc> pmcs = IdentifyPmcs(Campaign().profiles);
    for (Strategy strategy : kAllClusteringStrategies) {
      if (!with_sfull && strategy == Strategy::kSFull) {
        continue;  // "Removing S-FULL ... completes all clustering in under 5 hours."
      }
      std::vector<PmcCluster> clusters = ClusterPmcs(pmcs, strategy);
      benchmark::DoNotOptimize(clusters);
    }
  }
  state.SetLabel(with_sfull ? "all strategies" : "without S-FULL");
}
BENCHMARK(BM_PmcIdentificationAndClustering)->Arg(0)->Arg(1);

void BM_ConcurrentTestGeneration(benchmark::State& state) {
  // ">1000 tests per second, significantly higher than the execution throughput."
  static const std::vector<Pmc>& pmcs = Campaign().pmcs;
  static const std::vector<PmcCluster>* clusters =
      new std::vector<PmcCluster>(ClusterPmcs(pmcs, Strategy::kSInsPair));
  size_t generated = 0;
  for (auto _ : state) {
    SelectOptions select;
    select.seed = 7 + generated;
    std::vector<ConcurrentTest> tests =
        SelectConcurrentTests(pmcs, *clusters, Campaign().corpus, select);
    generated += tests.size();
    benchmark::DoNotOptimize(tests);
  }
  state.counters["tests/s"] =
      benchmark::Counter(static_cast<double>(generated), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConcurrentTestGeneration);

// --- End-to-end engine A/B: streaming vs strict barriers. ---

// Full RunSnowboardPipeline wall clock under both campaign engines at several worker
// counts. The determinism harness proves the serialized results are byte-identical; this
// measures what streaming buys: profiles fold into PMC identification while the profile
// tail runs, and exploration overlaps the remaining preparation, so idle-at-the-barrier
// time turns into useful work. At 1 worker the engines should tie (same work, same order);
// the gap should appear (and streaming must not lose) at 4 workers.
void BM_PipelineEndToEnd(benchmark::State& state) {
  bool streaming = state.range(0) != 0;
  int workers = static_cast<int>(state.range(1));
  uint64_t trials = 0;
  for (auto _ : state) {
    PipelineOptions options = bench::CanonicalOptions(Strategy::kSInsPair, 48, workers);
    options.streaming = streaming;
    PipelineResult result = RunSnowboardPipeline(options);
    trials += result.total_trials;
    benchmark::DoNotOptimize(result);
  }
  state.counters["trials"] =
      benchmark::Counter(static_cast<double>(trials), benchmark::Counter::kAvgIterations);
  state.SetLabel(std::string(streaming ? "streaming" : "barrier") + " engine, " +
                 std::to_string(workers) + " worker(s)");
}
BENCHMARK(BM_PipelineEndToEnd)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Unit(benchmark::kMillisecond);

// --- Execution throughput: Snowboard (precise PMC match) vs SKI (instruction match). ---

void BM_ExecutionThroughputSnowboard(benchmark::State& state) {
  KernelVm vm;
  static const std::vector<ConcurrentTest>* tests =
      new std::vector<ConcurrentTest>(HintedTests(64));
  ExplorerOptions options;
  options.num_trials = 4;
  options.adopt_incidental = false;
  size_t executions = 0;
  size_t i = 0;
  for (auto _ : state) {
    ExploreOutcome outcome =
        ExploreConcurrentTest(vm, (*tests)[i % tests->size()], nullptr, options);
    executions += static_cast<size_t>(outcome.trials_run);
    i++;
  }
  state.counters["exec/min"] = benchmark::Counter(static_cast<double>(executions) * 60.0,
                                                  benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExecutionThroughputSnowboard);

void BM_ExecutionThroughputSki(benchmark::State& state) {
  KernelVm vm;
  static const std::vector<ConcurrentTest>* tests =
      new std::vector<ConcurrentTest>(HintedTests(64));
  ExplorerOptions options;
  options.num_trials = 4;
  size_t executions = 0;
  size_t i = 0;
  for (auto _ : state) {
    ExploreOutcome outcome = ExploreWithSkiHints(vm, (*tests)[i % tests->size()], options);
    executions += static_cast<size_t>(outcome.trials_run);
    i++;
  }
  state.counters["exec/min"] = benchmark::Counter(static_cast<double>(executions) * 60.0,
                                                  benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExecutionThroughputSki);

}  // namespace
}  // namespace snowboard

int main(int argc, char** argv) {
  snowboard::bench::PrintHeader("§5.4 — pipeline performance (see counters below)");
  benchmark::Initialize(&argc, argv);
  snowboard::bench::ReportEnvironment();
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\npaper reference points: generation >1000 tests/s ≫ execution; Snowboard "
              "193.8 vs SKI 170.3 exec/min;\nclustering dominated by S-FULL.\n");
  return 0;
}
