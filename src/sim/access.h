// Memory-access and synchronization events recorded by the hypervisor.
//
// Every guest load/store produces an Access carrying exactly the features Algorithm 1
// consumes: memory range (addr, len), access type, value read/written, and instruction
// (site) address — plus the vCPU and a global sequence number for trace analysis. Lock and
// RCU operations are recorded in the same stream so the race detector can reconstruct
// locksets and release/acquire ordering post-mortem.
#ifndef SRC_SIM_ACCESS_H_
#define SRC_SIM_ACCESS_H_

#include <cstdint>
#include <vector>

#include "src/sim/types.h"

namespace snowboard {

enum class AccessType : uint8_t { kRead = 0, kWrite = 1 };

struct Access {
  AccessType type = AccessType::kRead;
  // True for accesses the kernel marks as intentionally concurrent (READ_ONCE/WRITE_ONCE,
  // RCU pointer loads/stores, lock-word RMWs). The race detector exempts them, mirroring
  // KCSAN's treatment; PMC identification still sees them, as in the paper.
  bool marked_atomic = false;
  uint8_t len = 0;  // 1..8 bytes.
  VcpuId vcpu = kInvalidVcpu;
  GuestAddr addr = kGuestNull;
  uint64_t value = 0;  // Value read or written, zero-extended.
  SiteId site = kInvalidSite;
  uint64_t seq = 0;  // Global order within the trial (execution is serialized).
  // The vCPU's simulated kernel stack pointer when the access executed; input to the
  // paper's ESP-mask stack filter (§4.1.1).
  GuestAddr esp = 0;

  // [addr, addr+len) overlap test.
  bool Overlaps(const Access& other) const {
    return addr < other.addr + other.len && other.addr < addr + len;
  }
  GuestAddr end() const { return addr + len; }
};

enum class EventKind : uint8_t {
  kAccess = 0,
  kLockAcquire,   // Mutual-exclusion acquire (spinlock/mutex/write-side rwlock).
  kLockRelease,
  kSharedAcquire,  // Read-side rwlock acquire (shared; excludes writers only).
  kSharedRelease,
  kRcuReadLock,    // RCU read-side critical section: does NOT exclude writers.
  kRcuReadUnlock,
  kYield,          // Scheduler-induced vCPU switch (for trace diagnostics).
};

struct Event {
  EventKind kind = EventKind::kAccess;
  VcpuId vcpu = kInvalidVcpu;
  uint64_t seq = 0;
  // For kAccess: the access. For lock events: lock_addr identifies the lock object.
  Access access;
  GuestAddr lock_addr = kGuestNull;
};

using Trace = std::vector<Event>;

}  // namespace snowboard

#endif  // SRC_SIM_ACCESS_H_
