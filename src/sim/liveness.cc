#include "src/sim/liveness.h"

#include "src/util/assert.h"

namespace snowboard {

LivenessMonitor::LivenessMonitor(int num_vcpus, Options options)
    : options_(options), states_(static_cast<size_t>(num_vcpus)) {
  SB_CHECK(num_vcpus > 0);
}

void LivenessMonitor::MarkProgress(State& state) {
  state.stuck_reads = 0;
  state.pause_streak = 0;
  state.has_last_read = false;
}

void LivenessMonitor::OnAccess(VcpuId vcpu, const Access& access) {
  State& s = states_[static_cast<size_t>(vcpu)];
  if (access.type == AccessType::kWrite) {
    // A write is progress by definition (lock acquired, state mutated).
    MarkProgress(s);
    return;
  }
  if (s.has_last_read && access.addr == s.last_read_addr &&
      access.value == s.last_read_value) {
    // Constantly fetching the same memory area and seeing the same bytes: spinning.
    s.stuck_reads++;
    return;
  }
  MarkProgress(s);
  s.has_last_read = true;
  s.last_read_addr = access.addr;
  s.last_read_value = access.value;
}

void LivenessMonitor::OnPause(VcpuId vcpu) { states_[static_cast<size_t>(vcpu)].pause_streak++; }

void LivenessMonitor::OnProgress(VcpuId vcpu) {
  MarkProgress(states_[static_cast<size_t>(vcpu)]);
}

bool LivenessMonitor::IsLive(VcpuId vcpu) const {
  const State& s = states_[static_cast<size_t>(vcpu)];
  return s.stuck_reads < options_.stuck_read_threshold &&
         s.pause_streak < options_.pause_threshold;
}

void LivenessMonitor::Reset() {
  for (State& s : states_) {
    s = State();
  }
}

void LivenessMonitor::Reset(int num_vcpus, Options options) {
  SB_CHECK(num_vcpus > 0);
  options_ = options;
  states_.resize(static_cast<size_t>(num_vcpus));
  Reset();
}

}  // namespace snowboard
