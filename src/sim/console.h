// The guest kernel console.
//
// The paper implements its primary bug oracle (`is_bug`) by "capturing guest-kernel console
// output" (§4.4.1). Our kernel prints oops/panic/fs-error lines to this console; the
// ConsoleChecker detector greps it after each trial.
#ifndef SRC_SIM_CONSOLE_H_
#define SRC_SIM_CONSOLE_H_

#include <string>
#include <vector>

namespace snowboard {

class Console {
 public:
  void Printk(const std::string& line) { lines_.push_back(line); }
  void Clear() { lines_.clear(); }
  const std::vector<std::string>& lines() const { return lines_; }

  // True if any line contains `needle`.
  bool Contains(const std::string& needle) const;

 private:
  std::vector<std::string> lines_;
};

}  // namespace snowboard

#endif  // SRC_SIM_CONSOLE_H_
