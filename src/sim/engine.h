// The execution engine: a two-vCPU (generally N-vCPU) serialized guest machine.
//
// This is the reproduction of the paper's customized QEMU hypervisor (§4.1.1, §4.4.1):
//   * "It segregates reader/writer threads in separate vCPUs, and only executes one vCPU at
//     a time, enforcing the desired interleaving schedule among them."
//   * "The hypervisor performs tracing of every kernel memory access instruction."
//   * Provides the yield primitive, the is_live heuristic, and guest console capture.
//
// Each vCPU is a host thread running guest (mini-kernel) code against the shared Memory
// arena, but a token-passing handshake guarantees exactly one vCPU executes at any instant;
// every vCPU switch happens at a memory-access boundary chosen by the installed Scheduler.
// The result is fully deterministic given (guest code, scheduler decisions).
#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/access.h"
#include "src/sim/console.h"
#include "src/sim/liveness.h"
#include "src/sim/memory.h"
#include "src/sim/scheduler.h"
#include "src/sim/types.h"

namespace snowboard {

class Engine;

// Thrown inside guest code to unwind a vCPU when the trial ends abnormally (panic, hang,
// instruction budget). Guest kernel code never catches it; the engine does.
struct TrialAbort {};

// Per-vCPU guest execution context: the only door through which kernel code touches guest
// memory. Every Load/Store/Copy/RMW is a traced, schedulable "instruction".
class Ctx {
 public:
  Ctx(Engine* engine, VcpuId vcpu) : engine_(engine), vcpu_(vcpu) {}

  VcpuId vcpu() const { return vcpu_; }
  Engine& engine() { return *engine_; }
  Memory& mem();

  // --- Traced guest memory accesses (1..8 bytes, little-endian). ---
  // `marked_atomic` corresponds to READ_ONCE/WRITE_ONCE-style annotations: still traced and
  // still PMC material, but exempt from the data-race oracle.
  uint64_t Load(GuestAddr addr, uint32_t len, SiteId site, bool marked_atomic = false);
  void Store(GuestAddr addr, uint32_t len, uint64_t value, SiteId site,
             bool marked_atomic = false);

  uint8_t Load8(GuestAddr a, SiteId s) { return static_cast<uint8_t>(Load(a, 1, s)); }
  uint16_t Load16(GuestAddr a, SiteId s) { return static_cast<uint16_t>(Load(a, 2, s)); }
  uint32_t Load32(GuestAddr a, SiteId s) { return static_cast<uint32_t>(Load(a, 4, s)); }
  uint64_t Load64(GuestAddr a, SiteId s) { return Load(a, 8, s); }
  void Store8(GuestAddr a, uint8_t v, SiteId s) { Store(a, 1, v, s); }
  void Store16(GuestAddr a, uint16_t v, SiteId s) { Store(a, 2, v, s); }
  void Store32(GuestAddr a, uint32_t v, SiteId s) { Store(a, 4, v, s); }
  void Store64(GuestAddr a, uint64_t v, SiteId s) { Store(a, 8, v, s); }

  // Atomic compare-and-swap on a 32-bit cell: one scheduling point, read+write recorded as
  // marked-atomic events with no switch possible in between (a single guest instruction).
  bool Cas32(GuestAddr addr, uint32_t expected, uint32_t desired, SiteId site);
  // Atomic fetch-and-add on a 32-bit cell; returns the previous value.
  uint32_t FetchAdd32(GuestAddr addr, int32_t delta, SiteId site);

  // memcpy analog: copies in 4-byte chunks (plus a tail), each chunk a separate load+store
  // instruction pair — so a concurrent reader can observe a *partially updated* object, the
  // mechanism behind the Figure 3 MAC-address race.
  void Copy(GuestAddr dst, GuestAddr src, uint32_t len, SiteId read_site, SiteId write_site);

  // --- Scheduling and events. ---
  void ExplicitYield();  // Voluntary yield (guest spin loops); records a kYield event.
  void Pause();          // PAUSE-instruction analog: liveness hint + yield.
  void LockEvent(EventKind kind, GuestAddr lock_addr);
  // Syscall boundary marker: resets liveness progress tracking and, importantly, gives the
  // fuzzer's coverage map a site-edge source.
  void OnSyscallEntry();

  // --- Console / oracles. ---
  void Printk(const std::string& line);
  [[noreturn]] void Panic(const std::string& message);

  // --- Per-vCPU machine state mirrored by kernel code. ---
  // Current task struct (arena address) and simulated stack pointer; kernel code updates esp
  // when using its in-arena stack so the profiler's ESP-mask filter has real input.
  GuestAddr current_task = kGuestNull;
  GuestAddr esp = 0;

 private:
  friend class Engine;
  Engine* engine_;
  VcpuId vcpu_;
};

class Engine {
 public:
  using GuestFn = std::function<void(Ctx&)>;

  struct RunOptions {
    Scheduler* scheduler = nullptr;  // nullptr => sequential.
    uint64_t max_instructions = 2'000'000;
    bool collect_trace = true;
    LivenessMonitor::Options liveness;
  };

  struct RunResult {
    bool completed = false;  // All vCPUs ran their guest function to the end.
    bool hang = false;       // Aborted by liveness/instruction budget.
    bool panicked = false;   // Guest panic (kernel oops analog).
    std::string panic_message;
    uint64_t instructions = 0;
    Trace trace;
    std::vector<std::string> console;
  };

  explicit Engine(uint32_t mem_size = 1u << 20);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Memory& mem() { return memory_; }
  Console& console() { return console_; }

  // Runs one guest function per vCPU, serialized under `opts.scheduler`, until all complete
  // or the trial aborts. vCPU 0 receives the token first. Reentrant across Engine instances
  // (each worker in the distributed queue owns its own Engine); not reentrant per instance.
  //
  // vCPU host threads are pooled: the first run with N vCPUs spawns N persistent workers,
  // and every later run re-dispatches onto them — no thread create/join in the trial loop.
  RunResult Run(const std::vector<GuestFn>& vcpu_fns, const RunOptions& opts);

  // Allocation-free variant for the trial hot loop: recycles `result`'s buffers (trace
  // storage in particular) instead of building a fresh RunResult. After warm-up, a caller
  // that reuses one RunResult across trials performs zero heap allocations per run here
  // (panic/console strings allocate only on abnormal trials). `vcpu_fns` must outlive the
  // call; callers should hoist its construction out of their loop too.
  void RunInto(const std::vector<GuestFn>& vcpu_fns, const RunOptions& opts,
               RunResult* result);

  // Convenience: single-vCPU sequential run (boot, sequential profiling).
  RunResult RunSequential(const GuestFn& fn, uint64_t max_instructions = 20'000'000);

 private:
  friend class Ctx;

  struct VcpuState {
    bool finished = false;
    bool pending_switch = false;
  };

  // --- Guest-side services (called with the token held by `vcpu`). ---
  void OnAccess(Ctx& ctx, Access& access);        // Schedule, perform, trace.
  // Atomic RMW: one scheduling point; the write executes iff do_write_if(read value).
  void OnRmw(Ctx& ctx, Access& read, const std::function<bool(uint64_t)>& do_write_if,
             Access& write);
  void RecordEvent(Event event);
  void Yield(VcpuId from, bool record_event);
  void CheckBudgetAndLiveness(Ctx& ctx);
  [[noreturn]] void AbortTrial(VcpuId vcpu, bool panic, const std::string& message);
  void PerformAccess(Access& access);             // Raw memory op + fault check.
  void FaultCheck(Ctx& ctx, const Access& access);

  // --- Token machinery. ---
  void GuestThreadMain(VcpuId vcpu, const GuestFn& fn);
  void WaitForToken(VcpuId vcpu);                 // Throws TrialAbort if the trial died.
  VcpuId NextLiveVcpu(VcpuId from) const;         // kInvalidVcpu if none.

  // Persistent pool worker: parks between runs, executes vCPU `vcpu`'s guest function for
  // every run whose vCPU count covers it.
  void PoolWorkerMain(VcpuId vcpu);

  Memory memory_;
  Console console_;

  // Per-run state.
  Scheduler* scheduler_ = nullptr;
  SequentialScheduler sequential_;
  RunOptions opts_;
  std::vector<VcpuState> vcpus_;
  std::vector<Ctx> ctxs_;
  LivenessMonitor liveness_{1};
  Trace trace_;
  uint64_t seq_ = 0;
  uint64_t instructions_ = 0;
  bool abort_ = false;
  bool panicked_ = false;
  bool hang_ = false;
  std::string panic_message_;

  std::mutex token_mutex_;
  std::condition_variable token_cv_;
  VcpuId active_vcpu_ = kInvalidVcpu;
  int unfinished_ = 0;

  // --- vCPU thread pool (guarded by token_mutex_ unless noted). ---
  std::vector<std::thread> pool_;        // Grown to the high-water vCPU count, never shrunk.
  const std::vector<GuestFn>* run_fns_ = nullptr;  // Valid while a run is in flight.
  uint64_t run_generation_ = 0;          // Bumped per run; wakes parked workers.
  int run_vcpus_ = 0;                    // vCPU count of the current run.
  bool shutdown_ = false;
};

}  // namespace snowboard

#endif  // SRC_SIM_ENGINE_H_
