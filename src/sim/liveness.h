// is_live heuristic (§4.4.1).
//
// "Motivated by SKI, is_live is implemented by observing the thread execution with some
// common low-liveness characteristics, including constantly fetching the same memory area,
// executing HALT/PAUSE instructions and having executed a threshold amount of instructions."
//
// Our analog tracks, per vCPU:
//   (a) consecutive READS of the same address returning the same value — the signature of a
//       spin loop stuck on a lock word (a thread making progress either writes or observes
//       changing values);
//   (b) explicit Pause() hints from guest spin loops (the PAUSE-instruction analog), which
//       only reset when the thread demonstrably progresses;
// The per-trial instruction budget (the third SKI signal) is enforced by the engine itself.
#ifndef SRC_SIM_LIVENESS_H_
#define SRC_SIM_LIVENESS_H_

#include <cstdint>
#include <vector>

#include "src/sim/access.h"
#include "src/sim/types.h"

namespace snowboard {

class LivenessMonitor {
 public:
  struct Options {
    // Consecutive same-address same-value reads before declaring not-live.
    uint32_t stuck_read_threshold = 96;
    // Consecutive PAUSE-analog hints (without progress) before declaring not-live.
    uint32_t pause_threshold = 256;
  };

  explicit LivenessMonitor(int num_vcpus) : LivenessMonitor(num_vcpus, Options()) {}
  LivenessMonitor(int num_vcpus, Options options);

  // Reconfigure in place for a new run (the engine reuses one monitor across trials so the
  // hot loop performs no per-trial allocation once states_ reached its high-water size).
  void Reset(int num_vcpus, Options options);

  // Feed an executed access. Writes and value-changing reads count as progress.
  void OnAccess(VcpuId vcpu, const Access& access);
  // Feed an explicit spin-loop pause hint.
  void OnPause(VcpuId vcpu);
  // A vCPU making a syscall-level transition is clearly progressing.
  void OnProgress(VcpuId vcpu);

  // is_live(current_thread) from Algorithm 2.
  bool IsLive(VcpuId vcpu) const;

  void Reset();

 private:
  struct State {
    bool has_last_read = false;
    GuestAddr last_read_addr = 0;
    uint64_t last_read_value = 0;
    uint32_t stuck_reads = 0;
    uint32_t pause_streak = 0;
  };
  void MarkProgress(State& state);

  Options options_;
  std::vector<State> states_;
};

}  // namespace snowboard

#endif  // SRC_SIM_LIVENESS_H_
