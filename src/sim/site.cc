#include "src/sim/site.h"

#include <mutex>
#include <sstream>
#include <unordered_map>

#include "src/util/hash.h"

namespace snowboard {
namespace {

struct SiteRegistry {
  std::mutex mutex;
  std::unordered_map<SiteId, SiteInfo> table;
};

SiteRegistry& Registry() {
  static SiteRegistry* registry = new SiteRegistry();  // Leaked intentionally: process-lifetime.
  return *registry;
}

}  // namespace

SiteId RegisterSite(const char* file, int line, const char* function, int counter) {
  // The id must be stable across runs and independent of registration order (registration
  // happens lazily on first execution, possibly from concurrent engine worker threads), so it
  // is a pure function of the source location.
  uint64_t h = Fnv1a(file);
  h = HashCombine(h, static_cast<uint64_t>(line));
  h = HashCombine(h, static_cast<uint64_t>(counter));
  if (h == kInvalidSite) {
    h = 1;  // Reserve 0 for "no site".
  }
  SiteRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto [it, inserted] = reg.table.try_emplace(h);
  if (inserted) {
    it->second = SiteInfo{file, line, function};
  }
  return h;
}

SiteInfo LookupSite(SiteId id) {
  SiteRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.table.find(id);
  if (it == reg.table.end()) {
    return SiteInfo{"<unknown>", 0, "<unknown>"};
  }
  return it->second;
}

std::string SiteName(SiteId id) {
  SiteInfo info = LookupSite(id);
  if (info.line == 0) {
    std::ostringstream os;
    os << "<site 0x" << std::hex << id << ">";
    return os.str();
  }
  // Strip directories for readability.
  size_t slash = info.file.find_last_of('/');
  std::string base = slash == std::string::npos ? info.file : info.file.substr(slash + 1);
  std::ostringstream os;
  os << info.function << " (" << base << ":" << info.line << ")";
  return os.str();
}

size_t RegisteredSiteCount() {
  SiteRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.table.size();
}

}  // namespace snowboard
