// Instruction-site registry.
//
// In the paper, PMC features include the guest *instruction address* of each memory access.
// Our kernel is compiled host code, so instead every static access site in kernel source is
// assigned a stable 64-bit id derived from its source location. The SB_SITE() macro expands
// to an expression yielding that site's id; the registry keeps the reverse mapping for
// human-readable bug reports ("function@file:line", the analog of addr2line on a vmlinux).
#ifndef SRC_SIM_SITE_H_
#define SRC_SIM_SITE_H_

#include <string>

#include "src/sim/types.h"

namespace snowboard {

struct SiteInfo {
  std::string file;
  int line = 0;
  std::string function;
};

// Registers (idempotently) a site and returns its stable id. Thread-safe.
SiteId RegisterSite(const char* file, int line, const char* function, int counter);

// Returns the info for a registered site; a placeholder entry for unknown ids.
SiteInfo LookupSite(SiteId id);

// "function (file:line)" for reports; "<site 0xNN>" if unregistered.
std::string SiteName(SiteId id);

// Number of registered sites (diagnostic).
size_t RegisteredSiteCount();

}  // namespace snowboard

// Yields the stable SiteId of this source location. The static local caches the registration
// so the hot path is a single load. __COUNTER__ disambiguates multiple sites on one line;
// __func__ is evaluated at the call site (not inside the lambda) so reports carry the
// enclosing kernel function's name.
#define SB_SITE()                                                                      \
  ([](const char* sb_site_func) -> ::snowboard::SiteId {                               \
    static const ::snowboard::SiteId sb_site_id =                                      \
        ::snowboard::RegisterSite(__FILE__, __LINE__, sb_site_func, __COUNTER__);      \
    return sb_site_id;                                                                 \
  }(__func__))

#endif  // SRC_SIM_SITE_H_
