#include "src/sim/console.h"

namespace snowboard {

bool Console::Contains(const std::string& needle) const {
  for (const std::string& line : lines_) {
    if (line.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace snowboard
