#include "src/sim/memory.h"

#include <cstring>

#include "src/util/assert.h"

namespace snowboard {

Memory::Memory(uint32_t size) : bytes_(size, 0), static_brk_(kGuestNullPageSize) {
  SB_CHECK(size > 2 * kGuestNullPageSize);
}

uint64_t Memory::ReadRaw(GuestAddr addr, uint32_t len) const {
  SB_DCHECK(Valid(addr, len));
  SB_DCHECK(len <= 8);
  uint64_t value = 0;
  std::memcpy(&value, bytes_.data() + addr, len);  // Little-endian host assumed (x86/ARM64).
  return value;
}

void Memory::WriteRaw(GuestAddr addr, uint32_t len, uint64_t value) {
  SB_DCHECK(Valid(addr, len));
  SB_DCHECK(len <= 8);
  std::memcpy(bytes_.data() + addr, &value, len);
}

void Memory::FillRaw(GuestAddr addr, uint32_t len, uint8_t byte) {
  SB_CHECK(Valid(addr, len));
  std::memset(bytes_.data() + addr, byte, len);
}

GuestAddr Memory::StaticAlloc(uint32_t len, uint32_t align) {
  SB_CHECK(align != 0 && (align & (align - 1)) == 0);
  uint32_t base = (static_brk_ + align - 1) & ~(align - 1);
  SB_CHECK(base + len <= size());
  static_brk_ = base + len;
  return base;
}

Memory::Snapshot Memory::TakeSnapshot() const {
  return Snapshot{bytes_, static_brk_};
}

void Memory::Restore(const Snapshot& snapshot) {
  SB_CHECK(snapshot.bytes.size() == bytes_.size());
  std::memcpy(bytes_.data(), snapshot.bytes.data(), bytes_.size());
  static_brk_ = snapshot.static_brk;
}

}  // namespace snowboard
