#include "src/sim/memory.h"

#include <atomic>
#include <cstring>

#include "src/util/assert.h"

namespace snowboard {

namespace {

// Snapshot identities are process-unique so delta tracking can tell "the snapshot the
// bitmap is relative to" from any other, including snapshots of other Memory instances
// (each worker VM owns one). Starts at 1; epoch 0 means "untracked".
uint64_t NextSnapshotEpoch() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Memory::Memory(uint32_t size)
    : bytes_(size, 0),
      dirty_((((size + kDirtyPageSize - 1) / kDirtyPageSize) + 63) / 64, 0),
      static_brk_(kGuestNullPageSize) {
  SB_CHECK(size > 2 * kGuestNullPageSize);
}

uint64_t Memory::ReadRaw(GuestAddr addr, uint32_t len) const {
  SB_DCHECK(Valid(addr, len));
  SB_DCHECK(len <= 8);
  uint64_t value = 0;
  std::memcpy(&value, bytes_.data() + addr, len);  // Little-endian host assumed (x86/ARM64).
  return value;
}

void Memory::WriteRaw(GuestAddr addr, uint32_t len, uint64_t value) {
  SB_DCHECK(Valid(addr, len));
  SB_DCHECK(len <= 8);
  std::memcpy(bytes_.data() + addr, &value, len);
  MarkDirty(addr, len);
}

void Memory::FillRaw(GuestAddr addr, uint32_t len, uint8_t byte) {
  SB_CHECK(Valid(addr, len));
  std::memset(bytes_.data() + addr, byte, len);
  MarkDirty(addr, len);
}

GuestAddr Memory::StaticAlloc(uint32_t len, uint32_t align) {
  SB_CHECK(align != 0 && (align & (align - 1)) == 0);
  uint32_t base = (static_brk_ + align - 1) & ~(align - 1);
  SB_CHECK(base + len <= size());
  static_brk_ = base + len;
  return base;
}

void Memory::ClearDirty() { std::memset(dirty_.data(), 0, dirty_.size() * sizeof(uint64_t)); }

uint32_t Memory::DirtyPageCount() const {
  uint32_t count = 0;
  for (uint64_t word : dirty_) {
    count += static_cast<uint32_t>(__builtin_popcountll(word));
  }
  return count;
}

Memory::Snapshot Memory::TakeSnapshot() {
  tracking_epoch_ = NextSnapshotEpoch();
  ClearDirty();
  return Snapshot{bytes_, static_brk_, tracking_epoch_};
}

void Memory::Restore(const Snapshot& snapshot) {
  SB_CHECK(snapshot.bytes.size() == bytes_.size());
  std::memcpy(bytes_.data(), snapshot.bytes.data(), bytes_.size());
  static_brk_ = snapshot.static_brk;
  // Memory now equals `snapshot` everywhere, so delta tracking re-anchors to it.
  tracking_epoch_ = snapshot.epoch;
  ClearDirty();
}

Memory::RestoreStats Memory::RestoreDirty(const Snapshot& snapshot) {
  RestoreStats stats;
  if (snapshot.epoch == 0 || snapshot.epoch != tracking_epoch_) {
    // The bitmap tracks writes relative to some OTHER state: a clean page may still differ
    // from this snapshot. One full restore re-anchors; subsequent restores are deltas.
    Restore(snapshot);
    stats.bytes_copied = bytes_.size();
    stats.full = true;
    return stats;
  }
  SB_CHECK(snapshot.bytes.size() == bytes_.size());
  const uint32_t num_pages = (size() + kDirtyPageSize - 1) / kDirtyPageSize;
  for (uint32_t word_index = 0; word_index < dirty_.size(); word_index++) {
    uint64_t word = dirty_[word_index];
    while (word != 0) {
      uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(word));
      word &= word - 1;
      uint32_t page = (word_index << 6) + bit;
      uint32_t begin = page * kDirtyPageSize;
      uint32_t len = page + 1 == num_pages ? size() - begin : kDirtyPageSize;
      if (std::memcmp(bytes_.data() + begin, snapshot.bytes.data() + begin, len) == 0) {
        stats.skipped_pages++;  // Stores landed here but wrote back identical bytes.
        continue;
      }
      std::memcpy(bytes_.data() + begin, snapshot.bytes.data() + begin, len);
      stats.bytes_copied += len;
      stats.dirty_pages++;
    }
  }
  static_brk_ = snapshot.static_brk;
  ClearDirty();
  return stats;
}

}  // namespace snowboard
