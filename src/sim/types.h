// Core guest-machine types shared across the simulator.
//
// The simulator stands in for the paper's customized QEMU/SKI hypervisor: a guest with a flat
// physical memory, a small number of virtual CPUs that are *serialized* (exactly one executes
// at any instant, as in SKI), and instruction-level scheduling hooks at every memory access.
#ifndef SRC_SIM_TYPES_H_
#define SRC_SIM_TYPES_H_

#include <cstdint>

namespace snowboard {

// Guest physical address: an offset into the memory arena. Address 0 is the null page; the
// first kGuestNullPageSize bytes are unmapped and faulting, so dereferencing a null (or
// near-null) guest pointer produces the kernel-panic oracle, exactly like a page fault on
// a real kernel null dereference.
using GuestAddr = uint32_t;
inline constexpr GuestAddr kGuestNull = 0;
inline constexpr GuestAddr kGuestNullPageSize = 4096;

// Stable identifier of a static memory-access site in the kernel source — the analog of a
// guest *instruction address* in the paper (the `ins` feature of a PMC). Derived from a
// stable hash of file:line:counter so that ids are identical across runs and across threads.
using SiteId = uint64_t;
inline constexpr SiteId kInvalidSite = 0;

// Virtual CPU index. The concurrent-test configuration uses two: vCPU 0 runs the writer test
// and vCPU 1 the reader test (§4.1: "two test executor processes that run on two different
// vCPUs").
using VcpuId = int32_t;
inline constexpr VcpuId kInvalidVcpu = -1;

// Kernel stacks are 8 KiB and 8 KiB-aligned, mirroring Linux x86 (§4.1.1), which makes the
// paper's ESP-mask stack filter directly applicable.
inline constexpr uint32_t kKernelStackSize = 8192;

}  // namespace snowboard

#endif  // SRC_SIM_TYPES_H_
