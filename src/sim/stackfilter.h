// Kernel-stack filtering (§4.1.1).
//
// Snowboard assumes only non-stack accesses are potentially shared, and computes the current
// thread's kernel stack range from ESP:
//     [ESP & ~(STACK_SIZE-1),  (ESP & ~(STACK_SIZE-1)) + STACK_SIZE]
// (the same mask current_thread_info() uses on Linux x86). Our tasks get 8 KiB-aligned 8 KiB
// stacks inside the arena, so the formula applies verbatim: the profiler drops any access
// that falls inside the range derived from the vCPU's ESP at the time of the access.
#ifndef SRC_SIM_STACKFILTER_H_
#define SRC_SIM_STACKFILTER_H_

#include "src/sim/types.h"

namespace snowboard {

struct StackRange {
  GuestAddr base = 0;
  GuestAddr top = 0;  // Exclusive.
  bool Contains(GuestAddr addr, uint32_t len) const {
    return addr >= base && addr + len <= top;
  }
};

// The paper's formula, applied to a simulated ESP value.
inline StackRange KernelStackRangeFromEsp(GuestAddr esp) {
  GuestAddr base = esp & ~static_cast<GuestAddr>(kKernelStackSize - 1);
  return StackRange{base, base + kKernelStackSize};
}

// True if an access at [addr, addr+len) is a kernel-stack access for a thread whose stack
// pointer is `esp` — i.e. it should be excluded from shared-memory profiling.
inline bool IsStackAccess(GuestAddr esp, GuestAddr addr, uint32_t len) {
  return esp != 0 && KernelStackRangeFromEsp(esp).Contains(addr, len);
}

}  // namespace snowboard

#endif  // SRC_SIM_STACKFILTER_H_
