#include "src/sim/engine.h"

#include <optional>

#include "src/sim/site.h"
#include "src/util/assert.h"
#include "src/util/strings.h"
#include "src/util/trace.h"

namespace snowboard {

// --------------------------------------------------------------------------------------------
// Ctx: guest-side access API.
// --------------------------------------------------------------------------------------------

Memory& Ctx::mem() { return engine_->memory_; }

uint64_t Ctx::Load(GuestAddr addr, uint32_t len, SiteId site, bool marked_atomic) {
  Access access;
  access.type = AccessType::kRead;
  access.marked_atomic = marked_atomic;
  access.len = static_cast<uint8_t>(len);
  access.vcpu = vcpu_;
  access.addr = addr;
  access.site = site;
  engine_->OnAccess(*this, access);
  return access.value;
}

void Ctx::Store(GuestAddr addr, uint32_t len, uint64_t value, SiteId site, bool marked_atomic) {
  Access access;
  access.type = AccessType::kWrite;
  access.marked_atomic = marked_atomic;
  access.len = static_cast<uint8_t>(len);
  access.vcpu = vcpu_;
  access.addr = addr;
  access.value = value;
  access.site = site;
  engine_->OnAccess(*this, access);
}

bool Ctx::Cas32(GuestAddr addr, uint32_t expected, uint32_t desired, SiteId site) {
  Access read;
  read.type = AccessType::kRead;
  read.marked_atomic = true;
  read.len = 4;
  read.vcpu = vcpu_;
  read.addr = addr;
  read.site = site;

  Access write = read;
  write.type = AccessType::kWrite;
  write.value = desired;

  engine_->OnRmw(*this, read, /*do_write_if=*/
                 [&](uint64_t old) { return old == expected; }, write);
  return read.value == expected;
}

uint32_t Ctx::FetchAdd32(GuestAddr addr, int32_t delta, SiteId site) {
  Access read;
  read.type = AccessType::kRead;
  read.marked_atomic = true;
  read.len = 4;
  read.vcpu = vcpu_;
  read.addr = addr;
  read.site = site;

  Access write = read;
  write.type = AccessType::kWrite;

  engine_->OnRmw(*this, read,
                 [&](uint64_t old) {
                   write.value = static_cast<uint32_t>(old) + static_cast<uint32_t>(delta);
                   return true;
                 },
                 write);
  return static_cast<uint32_t>(read.value);
}

void Ctx::Copy(GuestAddr dst, GuestAddr src, uint32_t len, SiteId read_site,
               SiteId write_site) {
  // Word-at-a-time copy: each chunk is an independent instruction pair, so the scheduler can
  // interleave another vCPU mid-copy and a reader can observe a torn object.
  uint32_t off = 0;
  while (off < len) {
    uint32_t chunk = len - off >= 4 ? 4 : len - off;
    uint64_t v = Load(src + off, chunk, read_site);
    Store(dst + off, chunk, v, write_site);
    off += chunk;
  }
}

void Ctx::ExplicitYield() { engine_->Yield(vcpu_, /*record_event=*/true); }

void Ctx::Pause() {
  Engine& e = *engine_;
  e.liveness_.OnPause(vcpu_);
  // A spinner with no live partner can never be satisfied: classic hang.
  if (!e.liveness_.IsLive(vcpu_) && e.NextLiveVcpu(vcpu_) == kInvalidVcpu) {
    e.AbortTrial(vcpu_, /*panic=*/false, "hang: spinning with no runnable partner");
  }
  e.Yield(vcpu_, /*record_event=*/false);
}

void Ctx::LockEvent(EventKind kind, GuestAddr lock_addr) {
  Event event;
  event.kind = kind;
  event.vcpu = vcpu_;
  event.lock_addr = lock_addr;
  engine_->RecordEvent(event);
}

void Ctx::OnSyscallEntry() { engine_->liveness_.OnProgress(vcpu_); }

void Ctx::Printk(const std::string& line) { engine_->console_.Printk(line); }

void Ctx::Panic(const std::string& message) {
  engine_->console_.Printk(message);
  engine_->AbortTrial(vcpu_, /*panic=*/true, message);
}

// --------------------------------------------------------------------------------------------
// Engine.
// --------------------------------------------------------------------------------------------

Engine::Engine(uint32_t mem_size) : memory_(mem_size) {}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lock(token_mutex_);
    shutdown_ = true;
    token_cv_.notify_all();
  }
  for (std::thread& t : pool_) {
    t.join();
  }
}

void Engine::PoolWorkerMain(VcpuId vcpu) {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(token_mutex_);
  for (;;) {
    token_cv_.wait(lock, [&] {
      return shutdown_ || (run_generation_ != seen_generation && vcpu < run_vcpus_);
    });
    if (shutdown_) {
      return;
    }
    seen_generation = run_generation_;
    const GuestFn& fn = (*run_fns_)[static_cast<size_t>(vcpu)];
    lock.unlock();
    GuestThreadMain(vcpu, fn);
    lock.lock();
  }
}

Engine::RunResult Engine::Run(const std::vector<GuestFn>& vcpu_fns, const RunOptions& opts) {
  RunResult result;
  RunInto(vcpu_fns, opts, &result);
  return result;
}

void Engine::RunInto(const std::vector<GuestFn>& vcpu_fns, const RunOptions& opts,
                     RunResult* result) {
  TRACE_SPAN("engine.run", vcpu_fns.size());
  SB_CHECK(!vcpu_fns.empty());
  const int n = static_cast<int>(vcpu_fns.size());

  // Reset per-run state, recycling buffer capacity from the previous run (and the caller's
  // trace buffer via `result`): at steady state nothing here touches the heap.
  opts_ = opts;
  scheduler_ = opts.scheduler != nullptr ? opts.scheduler : &sequential_;
  vcpus_.assign(static_cast<size_t>(n), VcpuState());
  ctxs_.clear();
  ctxs_.reserve(static_cast<size_t>(n));
  for (int v = 0; v < n; v++) {
    ctxs_.emplace_back(this, v);
  }
  liveness_.Reset(n, opts.liveness);
  trace_ = std::move(result->trace);
  trace_.clear();
  seq_ = 0;
  instructions_ = 0;
  panicked_ = false;
  hang_ = false;
  panic_message_.clear();
  console_.Clear();

  // Grow the persistent pool to cover this run's vCPU count (first-run warm-up only).
  while (pool_.size() < static_cast<size_t>(n)) {
    VcpuId vcpu = static_cast<VcpuId>(pool_.size());
    pool_.emplace_back([this, vcpu] { PoolWorkerMain(vcpu); });
  }

  {
    std::unique_lock<std::mutex> lock(token_mutex_);
    // Workers from the previous run have all left the finish protocol (the previous wait
    // saw unfinished_ == 0 under this mutex), so per-run state is safe to republish.
    abort_ = false;
    unfinished_ = n;
    run_fns_ = &vcpu_fns;
    run_vcpus_ = n;
    run_generation_++;
    scheduler_->OnTrialStart(n);
    active_vcpu_ = 0;
    token_cv_.notify_all();
    token_cv_.wait(lock, [this] { return unfinished_ == 0; });
    active_vcpu_ = kInvalidVcpu;
    run_fns_ = nullptr;
    run_vcpus_ = 0;
  }

  scheduler_->OnTrialEnd();

  result->completed = !abort_;
  result->hang = hang_;
  result->panicked = panicked_;
  result->panic_message = panic_message_;
  result->instructions = instructions_;
  result->trace = std::move(trace_);
  trace_ = Trace();
  result->console = console_.lines();
}

Engine::RunResult Engine::RunSequential(const GuestFn& fn, uint64_t max_instructions) {
  RunOptions opts;
  opts.max_instructions = max_instructions;
  return Run({fn}, opts);
}

void Engine::GuestThreadMain(VcpuId vcpu, const GuestFn& fn) {
  try {
    WaitForToken(vcpu);
    fn(ctxs_[static_cast<size_t>(vcpu)]);
  } catch (const TrialAbort&) {
    // Unwound guest code; fall through to the finish protocol.
  }
  std::lock_guard<std::mutex> lock(token_mutex_);
  vcpus_[static_cast<size_t>(vcpu)].finished = true;
  unfinished_--;
  if (active_vcpu_ == vcpu) {
    // Pass the token onward; kInvalidVcpu when this was the last runner.
    active_vcpu_ = NextLiveVcpu(vcpu);
  }
  token_cv_.notify_all();
}

void Engine::WaitForToken(VcpuId vcpu) {
  std::unique_lock<std::mutex> lock(token_mutex_);
  token_cv_.wait(lock, [this, vcpu] { return abort_ || active_vcpu_ == vcpu; });
  if (abort_) {
    throw TrialAbort{};
  }
}

VcpuId Engine::NextLiveVcpu(VcpuId from) const {
  const int n = static_cast<int>(vcpus_.size());
  for (int i = 1; i < n; i++) {
    VcpuId candidate = (from + i) % n;
    if (!vcpus_[static_cast<size_t>(candidate)].finished) {
      return candidate;
    }
  }
  return kInvalidVcpu;
}

void Engine::Yield(VcpuId from, bool record_event) {
  std::unique_lock<std::mutex> lock(token_mutex_);
  if (abort_) {
    throw TrialAbort{};
  }
  VcpuId next = NextLiveVcpu(from);
  if (next == kInvalidVcpu) {
    return;  // No one to switch to; keep running.
  }
  if (record_event && opts_.collect_trace) {
    Event event;
    event.kind = EventKind::kYield;
    event.vcpu = from;
    event.seq = seq_++;
    trace_.push_back(event);
  }
  active_vcpu_ = next;
  token_cv_.notify_all();
  token_cv_.wait(lock, [this, from] { return abort_ || active_vcpu_ == from; });
  if (abort_) {
    throw TrialAbort{};
  }
}

void Engine::RecordEvent(Event event) {
  event.seq = seq_++;
  if (event.kind == EventKind::kAccess) {
    event.access.seq = event.seq;
  }
  if (opts_.collect_trace) {
    trace_.push_back(event);
  }
}

void Engine::AbortTrial(VcpuId vcpu, bool panic, const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(token_mutex_);
    abort_ = true;
    if (panic) {
      panicked_ = true;
      panic_message_ = message;
    } else {
      hang_ = true;
    }
    token_cv_.notify_all();
  }
  throw TrialAbort{};
}

void Engine::FaultCheck(Ctx& ctx, const Access& access) {
  if (memory_.Valid(access.addr, access.len)) {
    return;
  }
  std::string message;
  if (access.addr < kGuestNullPageSize) {
    message = StrPrintf("BUG: kernel NULL pointer dereference, address: 0x%08x at %s",
                        access.addr, SiteName(access.site).c_str());
  } else {
    message = StrPrintf("BUG: unable to handle page fault for address: 0x%08x at %s",
                        access.addr, SiteName(access.site).c_str());
  }
  ctx.Panic(message);
}

void Engine::PerformAccess(Access& access) {
  if (access.type == AccessType::kRead) {
    access.value = memory_.ReadRaw(access.addr, access.len);
  } else {
    memory_.WriteRaw(access.addr, access.len, access.value);
  }
}

void Engine::CheckBudgetAndLiveness(Ctx& ctx) {
  VcpuId v = ctx.vcpu_;
  instructions_++;
  if (instructions_ > opts_.max_instructions) {
    AbortTrial(v, /*panic=*/false, "hang: instruction budget exhausted");
  }
  if (!liveness_.IsLive(v)) {
    scheduler_->OnNotLive(v);
    VcpuId next = NextLiveVcpu(v);
    if (next == kInvalidVcpu) {
      AbortTrial(v, /*panic=*/false, "hang: not live with no runnable partner");
    }
    if (!liveness_.IsLive(next)) {
      // Both threads stuck in low-liveness loops: deadlock/livelock. End the trial.
      AbortTrial(v, /*panic=*/false, "hang: all vCPUs not live (deadlock suspected)");
    }
    Yield(v, /*record_event=*/true);
  }
}

void Engine::OnAccess(Ctx& ctx, Access& access) {
  VcpuId v = ctx.vcpu_;
  VcpuState& state = vcpus_[static_cast<size_t>(v)];

  // A switch armed by the previous instruction (Algorithm 2: `if switch then yield()`), or a
  // scheduler decision to preempt before this instruction executes.
  bool do_switch = state.pending_switch;
  state.pending_switch = false;
  if (scheduler_->BeforeAccess(v, access)) {
    do_switch = true;
  }
  if (do_switch) {
    Yield(v, /*record_event=*/true);
  }

  CheckBudgetAndLiveness(ctx);
  FaultCheck(ctx, access);
  access.esp = ctx.esp;
  PerformAccess(access);

  Event event;
  event.kind = EventKind::kAccess;
  event.vcpu = v;
  event.access = access;
  RecordEvent(event);
  // RecordEvent stamped event.access.seq; mirror it into the caller-visible access.
  access.seq = event.access.seq;

  liveness_.OnAccess(v, access);
  state.pending_switch = scheduler_->AfterAccess(v, access);
}

void Engine::OnRmw(Ctx& ctx, Access& read, const std::function<bool(uint64_t)>& do_write_if,
                   Access& write) {
  VcpuId v = ctx.vcpu_;
  VcpuState& state = vcpus_[static_cast<size_t>(v)];

  bool do_switch = state.pending_switch;
  state.pending_switch = false;
  if (scheduler_->BeforeAccess(v, read)) {
    do_switch = true;
  }
  if (do_switch) {
    Yield(v, /*record_event=*/true);
  }

  CheckBudgetAndLiveness(ctx);
  FaultCheck(ctx, read);
  read.esp = ctx.esp;
  write.esp = ctx.esp;

  // Read and (conditional) write happen back-to-back with no scheduling point in between:
  // this models a single atomic RMW instruction.
  PerformAccess(read);
  Event read_event;
  read_event.kind = EventKind::kAccess;
  read_event.vcpu = v;
  read_event.access = read;
  RecordEvent(read_event);
  read.seq = read_event.access.seq;
  liveness_.OnAccess(v, read);

  bool pending = scheduler_->AfterAccess(v, read);
  if (do_write_if(read.value)) {
    PerformAccess(write);
    Event write_event;
    write_event.kind = EventKind::kAccess;
    write_event.vcpu = v;
    write_event.access = write;
    RecordEvent(write_event);
    write.seq = write_event.access.seq;
    liveness_.OnAccess(v, write);
    pending = scheduler_->AfterAccess(v, write) || pending;
  }
  state.pending_switch = pending;
}

}  // namespace snowboard
