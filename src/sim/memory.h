// Guest physical memory.
//
// A flat byte-addressable arena that holds *all* kernel state (the mini-kernel never keeps
// mutable state in host objects). Because of that, the paper's "VM snapshot" — taken once
// after boot and restored before every sequential profile and every concurrent-test trial
// (§4.1) — is a byte copy of the arena.
//
// Restore is the hot path of the testing loop (Algorithm 2 line 8, `resume_snapshot()`), so
// the arena maintains a page-granular dirty bitmap: every raw store marks the pages it
// touches, and RestoreDirty() copies back only the pages written since memory last matched
// the snapshot — the touch-tracking trick low-overhead record/replay systems use to make
// iteration cost proportional to state actually dirtied. Full Restore() remains as the
// reference path and as the self-healing fallback when tracking does not cover the given
// snapshot (see Snapshot::epoch below).
//
// Memory itself performs raw, untraced byte moves; all *guest* accesses go through
// Ctx::Load/Store/Copy (engine.h), which add tracing and scheduling hooks. Raw accessors are
// reserved for the engine, detectors, and tests.
#ifndef SRC_SIM_MEMORY_H_
#define SRC_SIM_MEMORY_H_

#include <cstdint>
#include <vector>

#include "src/sim/types.h"

namespace snowboard {

class Memory {
 public:
  // Dirty-tracking granularity: 1 KiB pages. Finer than the 4 KiB guest page so a trial
  // that scribbles over a couple of task stacks and a few heap objects restores tens of
  // KiB, not hundreds; coarse enough that the whole 1 MiB default arena needs only a
  // 1024-bit bitmap (16 words), so the clear/scan cost is noise (see DESIGN.md §4.2).
  static constexpr uint32_t kDirtyPageShift = 10;
  static constexpr uint32_t kDirtyPageSize = 1u << kDirtyPageShift;

  // Default 1 MiB guest; plenty for the mini-kernel while keeping snapshots cheap.
  explicit Memory(uint32_t size = 1u << 20);

  uint32_t size() const { return static_cast<uint32_t>(bytes_.size()); }

  // True if [addr, addr+len) is a mapped, non-null-page range. Computed without relying on
  // `addr + len` wrap-around ordering: `addr < size()` first, then the remaining room
  // `size() - addr` (no overflow) must hold `len`.
  bool Valid(GuestAddr addr, uint32_t len) const {
    return addr >= kGuestNullPageSize && len > 0 && addr < size() && size() - addr >= len;
  }

  // Raw little-endian load/store of 1..8 bytes, no tracing. Caller must pass a Valid range.
  uint64_t ReadRaw(GuestAddr addr, uint32_t len) const;
  void WriteRaw(GuestAddr addr, uint32_t len, uint64_t value);

  // Raw byte-block helpers for tests and boot-time initialization.
  void FillRaw(GuestAddr addr, uint32_t len, uint8_t byte);

  // Boot-time bump allocator for "static" kernel objects (subsystem global structs, lock
  // words, the kalloc heap region itself). Alignment must be a power of two. Only used
  // before the snapshot is taken.
  GuestAddr StaticAlloc(uint32_t len, uint32_t align = 8);

  // Remaining bytes available to StaticAlloc (diagnostic).
  uint32_t StaticBytesLeft() const { return size() - static_brk_; }

  struct Snapshot {
    std::vector<uint8_t> bytes;
    uint32_t static_brk = 0;
    // Identity of the tracking generation this snapshot anchors (process-unique, 0 for a
    // default-constructed snapshot, which never matches live tracking).
    uint64_t epoch = 0;
  };

  // Per-restore accounting, surfaced up to PipelineCounters by KernelVm.
  struct RestoreStats {
    uint64_t bytes_copied = 0;
    uint32_t dirty_pages = 0;    // Pages copied by a delta restore (0 for a full restore).
    uint32_t skipped_pages = 0;  // Dirty pages whose bytes still matched (no copy-back).
    bool full = false;           // True if the whole arena was copied.
  };

  // Captures the full guest state and re-anchors dirty tracking to it: after TakeSnapshot,
  // memory equals the snapshot and no page is dirty, so subsequent stores are tracked
  // relative to it.
  Snapshot TakeSnapshot();

  // Reference path: whole-arena memcpy back to `snapshot`, and re-anchor tracking to it.
  void Restore(const Snapshot& snapshot);

  // Copies back only the pages dirtied since memory last matched `snapshot`, then clears
  // the bitmap. If tracking is not anchored to this snapshot (different epoch — e.g. the
  // first restore after boot wrote pages under another snapshot, or snapshots are being
  // mixed), falls back to one full Restore, after which delta tracking covers `snapshot`.
  // Byte-equivalence with Restore() is locked in by tests/snapshot_delta_property_test.cc.
  //
  // Untouched-page skip: a dirty bit only means "a store landed here", not "the bytes
  // changed" — trials routinely write back the value a lock word or counter already held.
  // Each dirty page is memcmp'd against the snapshot first and the copy-back is skipped
  // when it still matches (counted in RestoreStats::skipped_pages). An exact compare is
  // used rather than stored per-page hashes: memcmp early-exits on the first differing
  // byte (cheaper than hashing a full page on the changed-page path), needs no extra
  // per-snapshot state, and cannot produce a false skip the way a hash collision could.
  RestoreStats RestoreDirty(const Snapshot& snapshot);

  // Dirty pages accumulated since the last TakeSnapshot/Restore/RestoreDirty (diagnostic).
  uint32_t DirtyPageCount() const;

  // Whole-arena view for tests and digests (no copy, no tracking side effects).
  const std::vector<uint8_t>& raw_bytes() const { return bytes_; }

 private:
  void MarkDirty(GuestAddr addr, uint32_t len) {
    uint32_t first = addr >> kDirtyPageShift;
    uint32_t last = (addr + len - 1) >> kDirtyPageShift;
    for (uint32_t page = first; page <= last; page++) {  // One iteration for len <= 8.
      dirty_[page >> 6] |= 1ull << (page & 63);
    }
  }
  void ClearDirty();

  std::vector<uint8_t> bytes_;
  std::vector<uint64_t> dirty_;  // One bit per kDirtyPageSize page.
  uint32_t static_brk_;  // Next free byte for StaticAlloc; starts after the null page.
  uint64_t tracking_epoch_ = 0;  // Snapshot the dirty bitmap is relative to; 0 = none.
};

}  // namespace snowboard

#endif  // SRC_SIM_MEMORY_H_
