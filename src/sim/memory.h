// Guest physical memory.
//
// A flat byte-addressable arena that holds *all* kernel state (the mini-kernel never keeps
// mutable state in host objects). Because of that, the paper's "VM snapshot" — taken once
// after boot and restored before every sequential profile and every concurrent-test trial
// (§4.1) — is a literal byte copy of the arena.
//
// Memory itself performs raw, untraced byte moves; all *guest* accesses go through
// Ctx::Load/Store/Copy (engine.h), which add tracing and scheduling hooks. Raw accessors are
// reserved for the engine, detectors, and tests.
#ifndef SRC_SIM_MEMORY_H_
#define SRC_SIM_MEMORY_H_

#include <cstdint>
#include <vector>

#include "src/sim/types.h"

namespace snowboard {

class Memory {
 public:
  // Default 1 MiB guest; plenty for the mini-kernel while keeping snapshots cheap.
  explicit Memory(uint32_t size = 1u << 20);

  uint32_t size() const { return static_cast<uint32_t>(bytes_.size()); }

  // True if [addr, addr+len) is a mapped, non-null-page range.
  bool Valid(GuestAddr addr, uint32_t len) const {
    return addr >= kGuestNullPageSize && len > 0 && addr + len <= size() && addr + len > addr;
  }

  // Raw little-endian load/store of 1..8 bytes, no tracing. Caller must pass a Valid range.
  uint64_t ReadRaw(GuestAddr addr, uint32_t len) const;
  void WriteRaw(GuestAddr addr, uint32_t len, uint64_t value);

  // Raw byte-block helpers for tests and boot-time initialization.
  void FillRaw(GuestAddr addr, uint32_t len, uint8_t byte);

  // Boot-time bump allocator for "static" kernel objects (subsystem global structs, lock
  // words, the kalloc heap region itself). Alignment must be a power of two. Only used
  // before the snapshot is taken.
  GuestAddr StaticAlloc(uint32_t len, uint32_t align = 8);

  // Remaining bytes available to StaticAlloc (diagnostic).
  uint32_t StaticBytesLeft() const { return size() - static_brk_; }

  struct Snapshot {
    std::vector<uint8_t> bytes;
    uint32_t static_brk = 0;
  };

  // Captures the full guest state; Restore() rewinds to it. Restore is the hot path of the
  // testing loop (Algorithm 2 line 8, `resume_snapshot()`), a single memcpy.
  Snapshot TakeSnapshot() const;
  void Restore(const Snapshot& snapshot);

 private:
  std::vector<uint8_t> bytes_;
  uint32_t static_brk_;  // Next free byte for StaticAlloc; starts after the null page.
};

}  // namespace snowboard

#endif  // SRC_SIM_MEMORY_H_
