#include "src/sim/sync.h"

#include "src/sim/site.h"
#include "src/util/assert.h"

namespace snowboard {

namespace {
constexpr uint32_t kRwWriterBit = 1u << 31;
}  // namespace

// --- Spinlock. ---

void SpinLockInit(Memory& mem, GuestAddr lock) { mem.WriteRaw(lock, 4, 0); }

void SpinLock(Ctx& ctx, GuestAddr lock) {
  while (!ctx.Cas32(lock, 0, 1, SB_SITE())) {
    ctx.Pause();
  }
  ctx.LockEvent(EventKind::kLockAcquire, lock);
}

void SpinUnlock(Ctx& ctx, GuestAddr lock) {
  ctx.LockEvent(EventKind::kLockRelease, lock);
  ctx.Store(lock, 4, 0, SB_SITE(), /*marked_atomic=*/true);
}

bool SpinTryLock(Ctx& ctx, GuestAddr lock) {
  if (ctx.Cas32(lock, 0, 1, SB_SITE())) {
    ctx.LockEvent(EventKind::kLockAcquire, lock);
    return true;
  }
  return false;
}

// --- Reader-writer lock. ---

void RwLockInit(Memory& mem, GuestAddr lock) { mem.WriteRaw(lock, 4, 0); }

void WriteLock(Ctx& ctx, GuestAddr lock) {
  while (!ctx.Cas32(lock, 0, kRwWriterBit, SB_SITE())) {
    ctx.Pause();
  }
  ctx.LockEvent(EventKind::kLockAcquire, lock);
}

void WriteUnlock(Ctx& ctx, GuestAddr lock) {
  ctx.LockEvent(EventKind::kLockRelease, lock);
  ctx.Store(lock, 4, 0, SB_SITE(), /*marked_atomic=*/true);
}

void ReadLock(Ctx& ctx, GuestAddr lock) {
  for (;;) {
    uint32_t v = static_cast<uint32_t>(ctx.Load(lock, 4, SB_SITE(), /*marked_atomic=*/true));
    if ((v & kRwWriterBit) == 0 && ctx.Cas32(lock, v, v + 1, SB_SITE())) {
      break;
    }
    ctx.Pause();
  }
  ctx.LockEvent(EventKind::kSharedAcquire, lock);
}

void ReadUnlock(Ctx& ctx, GuestAddr lock) {
  ctx.LockEvent(EventKind::kSharedRelease, lock);
  ctx.FetchAdd32(lock, -1, SB_SITE());
}

// --- Seqlock. ---

void SeqCountInit(Memory& mem, GuestAddr seq) { mem.WriteRaw(seq, 4, 0); }

void WriteSeqBegin(Ctx& ctx, GuestAddr seq) {
  uint32_t v = static_cast<uint32_t>(ctx.Load(seq, 4, SB_SITE(), /*marked_atomic=*/true));
  SB_DCHECK((v & 1) == 0);
  ctx.Store(seq, 4, v + 1, SB_SITE(), /*marked_atomic=*/true);
}

void WriteSeqEnd(Ctx& ctx, GuestAddr seq) {
  uint32_t v = static_cast<uint32_t>(ctx.Load(seq, 4, SB_SITE(), /*marked_atomic=*/true));
  SB_DCHECK((v & 1) == 1);
  ctx.Store(seq, 4, v + 1, SB_SITE(), /*marked_atomic=*/true);
}

uint32_t ReadSeqBegin(Ctx& ctx, GuestAddr seq) {
  for (;;) {
    uint32_t v = static_cast<uint32_t>(ctx.Load(seq, 4, SB_SITE(), /*marked_atomic=*/true));
    if ((v & 1) == 0) {
      return v;
    }
    ctx.Pause();
  }
}

bool ReadSeqRetry(Ctx& ctx, GuestAddr seq, uint32_t start) {
  uint32_t v = static_cast<uint32_t>(ctx.Load(seq, 4, SB_SITE(), /*marked_atomic=*/true));
  return v != start;
}

// --- RCU. ---

void RcuInit(Memory& mem, GuestAddr counter) { mem.WriteRaw(counter, 4, 0); }

void RcuReadLock(Ctx& ctx, GuestAddr counter) {
  ctx.FetchAdd32(counter, 1, SB_SITE());
  ctx.LockEvent(EventKind::kRcuReadLock, counter);
}

void RcuReadUnlock(Ctx& ctx, GuestAddr counter) {
  ctx.LockEvent(EventKind::kRcuReadUnlock, counter);
  ctx.FetchAdd32(counter, -1, SB_SITE());
}

void SynchronizeRcu(Ctx& ctx, GuestAddr counter) {
  // Wait for all in-flight read-side critical sections (necessarily on other vCPUs) to end.
  while (ctx.Load(counter, 4, SB_SITE(), /*marked_atomic=*/true) != 0) {
    ctx.Pause();
  }
}

void RcuAssignPointer(Ctx& ctx, GuestAddr slot, GuestAddr value, SiteId site) {
  ctx.Store(slot, 4, value, site, /*marked_atomic=*/true);
}

GuestAddr RcuDereference(Ctx& ctx, GuestAddr slot, SiteId site) {
  return static_cast<GuestAddr>(ctx.Load(slot, 4, site, /*marked_atomic=*/true));
}

// --- READ_ONCE / WRITE_ONCE. ---

uint32_t ReadOnce32(Ctx& ctx, GuestAddr addr, SiteId site) {
  return static_cast<uint32_t>(ctx.Load(addr, 4, site, /*marked_atomic=*/true));
}

void WriteOnce32(Ctx& ctx, GuestAddr addr, uint32_t value, SiteId site) {
  ctx.Store(addr, 4, value, site, /*marked_atomic=*/true);
}

}  // namespace snowboard
