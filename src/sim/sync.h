// Guest synchronization primitives, built on traced arena cells.
//
// These mirror the Linux primitives the paper's bugs revolve around: spinlocks, a mutex
// (spin+yield under the serialized engine), reader-writer locks, seqlocks, and RCU. All of
// them are *guest state* — lock words live in the arena, so snapshot/restore resets them —
// and all of them emit lock events into the trace so the post-mortem race detector can
// compute locksets.
//
// Per §2.2, PMCs are unrelated to data races: lock-word accesses themselves are
// marked-atomic (exempt from the race oracle, like Linux's atomic ops under KCSAN) but are
// still visible to PMC identification, exactly as guest memory accesses were in the paper.
#ifndef SRC_SIM_SYNC_H_
#define SRC_SIM_SYNC_H_

#include "src/sim/engine.h"
#include "src/sim/types.h"

namespace snowboard {

// --- Spinlock (also used as the mutex: under a serialized engine the spin loop yields). ---
// Lock word: u32, 0 = unlocked, 1 = locked.
void SpinLockInit(Memory& mem, GuestAddr lock);
void SpinLock(Ctx& ctx, GuestAddr lock);
void SpinUnlock(Ctx& ctx, GuestAddr lock);
// TryLock: single CAS attempt; true on success.
bool SpinTryLock(Ctx& ctx, GuestAddr lock);

// --- Reader-writer lock. Word: bit31 = writer held, bits 0..30 = reader count. ---
void RwLockInit(Memory& mem, GuestAddr lock);
void WriteLock(Ctx& ctx, GuestAddr lock);
void WriteUnlock(Ctx& ctx, GuestAddr lock);
void ReadLock(Ctx& ctx, GuestAddr lock);
void ReadUnlock(Ctx& ctx, GuestAddr lock);

// --- Seqlock (write side assumed to hold a separate spinlock, as in Linux). ---
// Sequence word: u32, odd while a write is in progress.
void SeqCountInit(Memory& mem, GuestAddr seq);
void WriteSeqBegin(Ctx& ctx, GuestAddr seq);
void WriteSeqEnd(Ctx& ctx, GuestAddr seq);
// Spins until the sequence is even, then returns it.
uint32_t ReadSeqBegin(Ctx& ctx, GuestAddr seq);
// True if the read section raced a writer and must retry.
bool ReadSeqRetry(Ctx& ctx, GuestAddr seq, uint32_t start);

// --- RCU. ---
// A guest-global reader count cell (allocated by the kernel at boot) tracks read-side
// critical sections; synchronize_rcu waits for it to drain. Read-side sections emit
// kRcuReadLock/Unlock events — note they do NOT exclude writers, which is precisely how the
// paper's bug #12 (l2tp) escapes its RCU "protection".
void RcuInit(Memory& mem, GuestAddr counter);
void RcuReadLock(Ctx& ctx, GuestAddr counter);
void RcuReadUnlock(Ctx& ctx, GuestAddr counter);
void SynchronizeRcu(Ctx& ctx, GuestAddr counter);
// rcu_assign_pointer / rcu_dereference analogs: marked-atomic 32-bit pointer accesses.
void RcuAssignPointer(Ctx& ctx, GuestAddr slot, GuestAddr value, SiteId site);
GuestAddr RcuDereference(Ctx& ctx, GuestAddr slot, SiteId site);

// --- READ_ONCE / WRITE_ONCE analogs (marked atomic; race-oracle exempt). ---
uint32_t ReadOnce32(Ctx& ctx, GuestAddr addr, SiteId site);
void WriteOnce32(Ctx& ctx, GuestAddr addr, uint32_t value, SiteId site);

}  // namespace snowboard

#endif  // SRC_SIM_SYNC_H_
