// Scheduler interface: the hook surface the engine exposes at every guest memory access.
//
// This is the hypervisor-side half of Algorithm 2. The engine serializes vCPUs and consults
// the installed Scheduler at two points around every access:
//   - BeforeAccess: the access is about to execute; returning true switches vCPUs *first*
//     (this is where a pending `switch` from the previous instruction, or SKI's
//     yield-on-instruction policy, takes effect).
//   - AfterAccess: the access has executed and been recorded; returning true arms a pending
//     switch before the current vCPU's next instruction (Algorithm 2's `switch = random()`
//     after `pmc_access_coming` / `performed_pmc_access`).
#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <array>
#include <cstdint>

#include "src/sim/access.h"
#include "src/sim/types.h"

namespace snowboard {

// Approximate membership filter over guest addresses, sized for a scheduler's per-test
// watch set (PMC sides + learned flags: tens of addresses). The per-access matching hook
// runs on EVERY guest memory access — the hottest call site in a trial — while virtually
// all accesses touch addresses nowhere near the watch set, so a scheduler fronts its exact
// hash-set probes with MayContain() and early-exits on a miss.
//
// Design: a fixed 2048-bit table (32 × uint64, two cache lines) probed at two bit
// positions derived from one 32-bit multiplicative mix of the address. Membership sets
// both bits; a query misses when either bit is clear. Add() can only set bits, so the
// filter has NO false negatives by construction — a miss is definitive, and a (rare) false
// positive merely falls through to the exact check the caller was doing anyway. Word-array
// layout keeps Clear() a trivial fill and the probes branch-free bit tests, which
// vectorize/pipeline well without any explicit SIMD intrinsics.
class AccessAddrFilter {
 public:
  void Clear() { words_.fill(0); }

  void Add(GuestAddr addr) {
    uint32_t mix = Mix(addr);
    words_[(mix >> 5) & kWordMask] |= 1ull << (mix & 63);
    words_[(mix >> 21) & kWordMask] |= 1ull << ((mix >> 11) & 63);
  }

  bool MayContain(GuestAddr addr) const {
    uint32_t mix = Mix(addr);
    uint64_t a = words_[(mix >> 5) & kWordMask] >> (mix & 63);
    uint64_t b = words_[(mix >> 21) & kWordMask] >> ((mix >> 11) & 63);
    return (a & b & 1ull) != 0;
  }

 private:
  static constexpr uint32_t kWords = 32;  // 2048 bits.
  static constexpr uint32_t kWordMask = kWords - 1;

  // Fibonacci-style multiplicative mix (golden-ratio constant): cheap, and spreads the
  // low-entropy (small, 8-byte-aligned) guest addresses across the whole 32-bit range.
  static uint32_t Mix(GuestAddr addr) { return addr * 0x9E3779B1u; }

  std::array<uint64_t, kWords> words_{};
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Trial lifecycle.
  virtual void OnTrialStart(int num_vcpus) {}
  virtual void OnTrialEnd() {}

  // Scheduling hooks (see file comment). Default: never switch — sequential execution.
  virtual bool BeforeAccess(VcpuId vcpu, const Access& access) { return false; }
  virtual bool AfterAccess(VcpuId vcpu, const Access& access) { return false; }

  // The liveness monitor declared `vcpu` not live (§4.4.1 is_live); the engine forces a
  // switch on its own — this hook is informational.
  virtual void OnNotLive(VcpuId vcpu) {}
};

// Runs each vCPU to completion in order, never preempting: used for boot and for sequential
// test profiling (§4.1), where the thread under test must run alone.
class SequentialScheduler : public Scheduler {};

}  // namespace snowboard

#endif  // SRC_SIM_SCHEDULER_H_
