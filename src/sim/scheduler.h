// Scheduler interface: the hook surface the engine exposes at every guest memory access.
//
// This is the hypervisor-side half of Algorithm 2. The engine serializes vCPUs and consults
// the installed Scheduler at two points around every access:
//   - BeforeAccess: the access is about to execute; returning true switches vCPUs *first*
//     (this is where a pending `switch` from the previous instruction, or SKI's
//     yield-on-instruction policy, takes effect).
//   - AfterAccess: the access has executed and been recorded; returning true arms a pending
//     switch before the current vCPU's next instruction (Algorithm 2's `switch = random()`
//     after `pmc_access_coming` / `performed_pmc_access`).
#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include "src/sim/access.h"
#include "src/sim/types.h"

namespace snowboard {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Trial lifecycle.
  virtual void OnTrialStart(int num_vcpus) {}
  virtual void OnTrialEnd() {}

  // Scheduling hooks (see file comment). Default: never switch — sequential execution.
  virtual bool BeforeAccess(VcpuId vcpu, const Access& access) { return false; }
  virtual bool AfterAccess(VcpuId vcpu, const Access& access) { return false; }

  // The liveness monitor declared `vcpu` not live (§4.4.1 is_live); the engine forces a
  // switch on its own — this hook is informational.
  virtual void OnNotLive(VcpuId vcpu) {}
};

// Runs each vCPU to completion in order, never preempting: used for boot and for sequential
// test profiling (§4.1), where the thread under test must run alone.
class SequentialScheduler : public Scheduler {};

}  // namespace snowboard

#endif  // SRC_SIM_SCHEDULER_H_
