#include "src/kernel/rhashtable.h"

#include "src/sim/site.h"
#include "src/sim/sync.h"
#include "src/util/assert.h"

namespace snowboard {

namespace {

uint32_t RhtHash(uint32_t key, uint32_t nbuckets) {
  return (key * 2654435761u) & (nbuckets - 1);
}

// Writer-side bucket lock: spin on bit 0 of the bucket word.
uint32_t RhtLockBucket(Ctx& ctx, GuestAddr bkt) {
  for (;;) {
    uint32_t w = static_cast<uint32_t>(ctx.Load(bkt, 4, SB_SITE(), /*marked_atomic=*/true));
    if ((w & 1u) == 0 && ctx.Cas32(bkt, w, w | 1u, SB_SITE())) {
      ctx.LockEvent(EventKind::kLockAcquire, bkt);
      return w;  // Entry pointer (bit 0 clear).
    }
    ctx.Pause();
  }
}

// rht_assign_unlock(): stores the new head and clears the lock bit in ONE write. When the
// chain became empty this stores literal 0 — the write that races the reader's double fetch.
void RhtAssignUnlock(Ctx& ctx, GuestAddr bkt, GuestAddr new_head) {
  ctx.LockEvent(EventKind::kLockRelease, bkt);
  SB_DCHECK((new_head & 1u) == 0);
  ctx.Store(bkt, 4, new_head, SB_SITE(), /*marked_atomic=*/true);
}

struct RhtPtrResult {
  bool present = false;
  GuestAddr node = kGuestNull;
};

// rht_ptr() — Figure 4. In double-fetch mode the branch tests one load and the returned
// value comes from a SECOND load; a concurrent rht_assign_unlock(0) in the window makes the
// reader dereference null. In single-fetch mode one READ_ONCE feeds both.
RhtPtrResult RhtPtr(Ctx& ctx, GuestAddr ht, GuestAddr bkt) {
  uint32_t mode = ctx.Load32(ht + kRhtFetchMode, SB_SITE());
  if (mode == kRhtSingleFetch) {
    uint32_t w = static_cast<uint32_t>(ctx.Load(bkt, 4, SB_SITE(), /*marked_atomic=*/true));
    if ((w & ~1u) == 0) {
      return RhtPtrResult{false, kGuestNull};
    }
    return RhtPtrResult{true, w & ~1u};
  }
  // "gcc -O2": testl $0xfffffffe,(%eax); je out; mov (%eax),%eax — two plain fetches.
  uint32_t test = static_cast<uint32_t>(ctx.Load(bkt, 4, SB_SITE()));
  if ((test & ~1u) == 0) {
    return RhtPtrResult{false, kGuestNull};
  }
  uint32_t refetch = static_cast<uint32_t>(ctx.Load(bkt, 4, SB_SITE()));
  return RhtPtrResult{true, refetch & ~1u};
}

}  // namespace

GuestAddr RhtInit(Memory& mem, uint32_t nbuckets, uint32_t key_offset) {
  SB_CHECK(nbuckets != 0 && (nbuckets & (nbuckets - 1)) == 0);
  SB_CHECK(key_offset >= 4);
  GuestAddr ht = mem.StaticAlloc(kRhtBuckets + 4 * nbuckets, 8);
  mem.WriteRaw(ht + kRhtNbuckets, 4, nbuckets);
  mem.WriteRaw(ht + kRhtNelems, 4, 0);
  mem.WriteRaw(ht + kRhtKeyOffset, 4, key_offset);
  mem.WriteRaw(ht + kRhtFetchMode, 4, kRhtDoubleFetch);
  for (uint32_t i = 0; i < nbuckets; i++) {
    mem.WriteRaw(ht + kRhtBuckets + 4 * i, 4, 0);
  }
  return ht;
}

GuestAddr RhtBucket(Ctx& ctx, GuestAddr ht, uint32_t key) {
  uint32_t nbuckets = ctx.Load32(ht + kRhtNbuckets, SB_SITE());
  return ht + kRhtBuckets + 4 * RhtHash(key, nbuckets);
}

void RhtInsert(Ctx& ctx, GuestAddr ht, GuestAddr entry, uint32_t key) {
  uint32_t key_offset = ctx.Load32(ht + kRhtKeyOffset, SB_SITE());
  ctx.Store32(entry + key_offset, key, SB_SITE());
  GuestAddr bkt = RhtBucket(ctx, ht, key);
  GuestAddr head = RhtLockBucket(ctx, bkt);
  ctx.Store32(entry + kRhtEntryNext, head, SB_SITE());
  RhtAssignUnlock(ctx, bkt, entry);
  ctx.FetchAdd32(ht + kRhtNelems, 1, SB_SITE());
}

GuestAddr RhtRemove(Ctx& ctx, GuestAddr ht, uint32_t key) {
  uint32_t key_offset = ctx.Load32(ht + kRhtKeyOffset, SB_SITE());
  GuestAddr bkt = RhtBucket(ctx, ht, key);
  GuestAddr head = RhtLockBucket(ctx, bkt);

  GuestAddr prev = kGuestNull;
  GuestAddr cur = head;
  while (cur != kGuestNull) {
    uint32_t cur_key = ctx.Load32(cur + key_offset, SB_SITE());
    if (cur_key == key) {
      GuestAddr next = ctx.Load32(cur + kRhtEntryNext, SB_SITE());
      if (prev == kGuestNull) {
        // Removing the head: rht_assign_unlock publishes the new head — 0 if the chain is
        // now empty, the Figure 4 racing write.
        RhtAssignUnlock(ctx, bkt, next);
      } else {
        ctx.Store32(prev + kRhtEntryNext, next, SB_SITE());
        RhtAssignUnlock(ctx, bkt, head);
      }
      ctx.FetchAdd32(ht + kRhtNelems, static_cast<int32_t>(-1), SB_SITE());
      return cur;
    }
    prev = cur;
    cur = ctx.Load32(cur + kRhtEntryNext, SB_SITE());
  }
  RhtAssignUnlock(ctx, bkt, head);
  return kGuestNull;
}

GuestAddr RhtLookup(Ctx& ctx, GuestAddr ht, uint32_t key) {
  uint32_t key_offset = ctx.Load32(ht + kRhtKeyOffset, SB_SITE());
  GuestAddr bkt = RhtBucket(ctx, ht, key);

  RhtPtrResult head = RhtPtr(ctx, ht, bkt);
  if (!head.present) {
    return kGuestNull;
  }
  // If the double fetch raced rht_assign_unlock(0), head.node is null here and the key
  // compare below dereferences the null page: the Figure 4 kernel panic.
  GuestAddr cur = head.node;
  while (true) {
    uint32_t cur_key = ctx.Load32(cur + key_offset, SB_SITE());  // memcmp(ptr+key_offset,…).
    if (cur_key == key) {
      return cur;
    }
    cur = ctx.Load32(cur + kRhtEntryNext, SB_SITE());
    if (cur == kGuestNull) {
      return kGuestNull;
    }
  }
}

uint32_t RhtCount(Ctx& ctx, GuestAddr ht) {
  return static_cast<uint32_t>(ctx.Load(ht + kRhtNelems, 4, SB_SITE(), /*marked_atomic=*/true));
}

}  // namespace snowboard
