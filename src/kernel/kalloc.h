// kalloc: the kernel slab/heap allocator (mm/slab analog).
//
// Segregated free lists over a heap region carved out of the arena at boot. The allocator is
// lock-protected EXCEPT for its global statistics counters, which are updated with plain
// unsynchronized loads/stores — this seeds issue #13 of Table 2 (the benign
// cache_alloc_refill()/free_block() data race in mm/): "this data race exists in the memory
// subsystem, so it can be unmasked by any concurrent tests that request kernel memory",
// which is exactly why every strategy (even the baselines) finds it.
#ifndef SRC_KERNEL_KALLOC_H_
#define SRC_KERNEL_KALLOC_H_

#include "src/sim/engine.h"

namespace snowboard {

// Heap descriptor layout (all u32 fields at these offsets from the heap anchor):
//   +0   lock            heap spinlock
//   +4   brk             bump pointer within [start, end)
//   +8   start
//   +12  end
//   +16  total_allocs    UNSYNCHRONIZED stats counter (issue #13 writer/reader)
//   +20  total_frees     UNSYNCHRONIZED stats counter
//   +24  caches[kNumSizeClasses] of { free_head u32, free_count u32 }
inline constexpr uint32_t kHeapLock = 0;
inline constexpr uint32_t kHeapBrk = 4;
inline constexpr uint32_t kHeapStart = 8;
inline constexpr uint32_t kHeapEnd = 12;
inline constexpr uint32_t kHeapTotalAllocs = 16;
inline constexpr uint32_t kHeapTotalFrees = 20;
inline constexpr uint32_t kHeapCaches = 24;
inline constexpr uint32_t kCacheStride = 8;

inline constexpr uint32_t kNumSizeClasses = 7;  // 16, 32, 64, 128, 256, 512, 1024.

// Boot-time: carves `heap_bytes` out of mem's static region and returns the heap anchor.
GuestAddr KallocInit(Memory& mem, uint32_t heap_bytes);

// Allocates `size` bytes (rounded to a size class) and zeroes them; returns kGuestNull on
// exhaustion. `heap` is KernelGlobals::kheap.
GuestAddr Kmalloc(Ctx& ctx, GuestAddr heap, uint32_t size);

// Frees a block previously allocated with size `size`.
void Kfree(Ctx& ctx, GuestAddr heap, GuestAddr addr, uint32_t size);

// Size-class index for `size`; kNumSizeClasses if too large.
uint32_t KallocSizeClass(uint32_t size);
uint32_t KallocClassBytes(uint32_t size_class);

}  // namespace snowboard

#endif  // SRC_KERNEL_KALLOC_H_
