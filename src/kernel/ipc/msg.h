// ipc/msg: SysV message queues, keyed through the rhashtable — the syscall-level driver of
// issue #1 (Figure 4).
//
// msgget() performs an RCU lock-free rhashtable lookup (which executes the buggy rht_ptr
// double fetch) and inserts on miss; msgctl(IPC_RMID) removes — the removal of a chain's
// last entry is the rht_assign_unlock(0) that races the lookup. This is exactly the
// msgget()/msgctl() pair Figure 4 names ("System-call pairs that share rhashtable-type data
// can run into kernel panics").
#ifndef SRC_KERNEL_IPC_MSG_H_
#define SRC_KERNEL_IPC_MSG_H_

#include "src/kernel/kernel.h"
#include "src/sim/engine.h"

namespace snowboard {

// Subsystem block: +0 ids_rwlock, +4 rhashtable addr, +8 queues_created.
inline constexpr uint32_t kMsgIdsLock = 0;
inline constexpr uint32_t kMsgHt = 4;
inline constexpr uint32_t kMsgCreated = 8;

// Message queue (kmalloc'd, 32 bytes):
//   +0  rht next (kRhtEntryNext)
//   +4  key     (rhashtable key; doubles as the msqid the tests use)
//   +8  q_lock
//   +12 qnum     (queued messages)
//   +16 qbytes
//   +20 perm
inline constexpr uint32_t kMsqKey = 4;
inline constexpr uint32_t kMsqLock = 8;
inline constexpr uint32_t kMsqQnum = 12;
inline constexpr uint32_t kMsqQbytes = 16;
inline constexpr uint32_t kMsqPerm = 20;
inline constexpr uint32_t kMsqStructSize = 32;

inline constexpr uint32_t kIpcRmid = 0;
inline constexpr uint32_t kIpcStat = 2;

GuestAddr MsgIpcInit(Memory& mem);

// msgget(key): lookup-or-create; returns the key as the msqid (>= 0) or -errno.
int64_t MsgGet(Ctx& ctx, const KernelGlobals& g, uint32_t key);

// msgctl(msqid, cmd).
int64_t MsgCtl(Ctx& ctx, const KernelGlobals& g, uint32_t key, uint32_t cmd);

// msgsnd(msqid, len).
int64_t MsgSnd(Ctx& ctx, const KernelGlobals& g, uint32_t key, uint32_t len);

}  // namespace snowboard

#endif  // SRC_KERNEL_IPC_MSG_H_
