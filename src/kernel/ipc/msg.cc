#include "src/kernel/ipc/msg.h"

#include "src/kernel/kalloc.h"
#include "src/kernel/rhashtable.h"
#include "src/sim/site.h"
#include "src/sim/sync.h"

namespace snowboard {

namespace {

// Folds arbitrary user keys into the small queue-key space [1, 8] so tests collide on the
// same queues. Idempotent: a returned msqid refolds to itself (resource round-tripping).
uint32_t FoldKey(uint32_t key) {
  return (key >= 1 && key <= 8) ? key : (key & 0x7) + 1;
}

}  // namespace

GuestAddr MsgIpcInit(Memory& mem) {
  GuestAddr block = mem.StaticAlloc(12, 8);
  GuestAddr ht = RhtInit(mem, /*nbuckets=*/8, /*key_offset=*/kMsqKey);
  mem.WriteRaw(block + kMsgIdsLock, 4, 0);
  mem.WriteRaw(block + kMsgHt, 4, ht);
  mem.WriteRaw(block + kMsgCreated, 4, 0);
  return block;
}

int64_t MsgGet(Ctx& ctx, const KernelGlobals& g, uint32_t key) {
  GuestAddr ht = ctx.Load32(g.msgipc + kMsgHt, SB_SITE());
  key = FoldKey(key);  // Small key space so tests collide on queues.

  // ipc_obtain_object_check(): RCU lock-free lookup — executes the rht_ptr double fetch.
  RcuReadLock(ctx, g.rcu_readers);
  GuestAddr existing = RhtLookup(ctx, ht, key);
  RcuReadUnlock(ctx, g.rcu_readers);
  if (existing != kGuestNull) {
    return static_cast<int64_t>(key);
  }

  // Miss: create and insert under the ids lock.
  SpinLock(ctx, g.msgipc + kMsgIdsLock);
  GuestAddr msq = Kmalloc(ctx, g.kheap, kMsqStructSize);
  if (msq == kGuestNull) {
    SpinUnlock(ctx, g.msgipc + kMsgIdsLock);
    return kENOMEM;
  }
  ctx.Store32(msq + kMsqQbytes, 16384, SB_SITE());
  ctx.Store32(msq + kMsqPerm, 0600, SB_SITE());
  RhtInsert(ctx, ht, msq, key);
  uint32_t created = ctx.Load32(g.msgipc + kMsgCreated, SB_SITE());
  ctx.Store32(g.msgipc + kMsgCreated, created + 1, SB_SITE());
  SpinUnlock(ctx, g.msgipc + kMsgIdsLock);
  return static_cast<int64_t>(key);
}

int64_t MsgCtl(Ctx& ctx, const KernelGlobals& g, uint32_t key, uint32_t cmd) {
  GuestAddr ht = ctx.Load32(g.msgipc + kMsgHt, SB_SITE());
  key = FoldKey(key);
  switch (cmd) {
    case kIpcRmid: {
      // freeque(): remove from the hashtable under the ids lock. Removing a chain's last
      // entry executes rht_assign_unlock(bkt, 0) — the Figure 4 racing write.
      SpinLock(ctx, g.msgipc + kMsgIdsLock);
      GuestAddr msq = RhtRemove(ctx, ht, key);
      SpinUnlock(ctx, g.msgipc + kMsgIdsLock);
      if (msq == kGuestNull) {
        return kENOENT;
      }
      // RCU-delayed free, as the real freeque(): in-flight lock-free readers must drain
      // before the struct can be reused (otherwise kmalloc's rezeroing would race them).
      SynchronizeRcu(ctx, g.rcu_readers);
      Kfree(ctx, g.kheap, msq, kMsqStructSize);
      return 0;
    }
    case kIpcStat: {
      RcuReadLock(ctx, g.rcu_readers);
      GuestAddr msq = RhtLookup(ctx, ht, key);
      int64_t result = kENOENT;
      if (msq != kGuestNull) {
        // msgctl_stat(): counters are read under the queue lock (ipc_lock_object).
        SpinLock(ctx, msq + kMsqLock);
        result = static_cast<int64_t>(ctx.Load32(msq + kMsqQnum, SB_SITE()));
        SpinUnlock(ctx, msq + kMsqLock);
      }
      RcuReadUnlock(ctx, g.rcu_readers);
      return result;
    }
    default:
      return kEINVAL;
  }
}

int64_t MsgSnd(Ctx& ctx, const KernelGlobals& g, uint32_t key, uint32_t len) {
  GuestAddr ht = ctx.Load32(g.msgipc + kMsgHt, SB_SITE());
  key = FoldKey(key);
  RcuReadLock(ctx, g.rcu_readers);
  GuestAddr msq = RhtLookup(ctx, ht, key);  // Double fetch again.
  if (msq == kGuestNull) {
    RcuReadUnlock(ctx, g.rcu_readers);
    return kENOENT;
  }
  SpinLock(ctx, msq + kMsqLock);
  uint32_t qnum = ctx.Load32(msq + kMsqQnum, SB_SITE());
  uint32_t qbytes = ctx.Load32(msq + kMsqQbytes, SB_SITE());
  if (len <= qbytes) {
    ctx.Store32(msq + kMsqQnum, qnum + 1, SB_SITE());
    ctx.Store32(msq + kMsqQbytes, qbytes - len, SB_SITE());
  }
  SpinUnlock(ctx, msq + kMsqLock);
  RcuReadUnlock(ctx, g.rcu_readers);
  return len <= qbytes ? 0 : kENOMEM;
}

}  // namespace snowboard
