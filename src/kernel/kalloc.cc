#include "src/kernel/kalloc.h"

#include "src/sim/site.h"
#include "src/sim/sync.h"
#include "src/util/assert.h"

namespace snowboard {

namespace {

constexpr uint32_t kClassBytes[kNumSizeClasses] = {16, 32, 64, 128, 256, 512, 1024};

GuestAddr CacheAddr(GuestAddr heap, uint32_t size_class) {
  return heap + kHeapCaches + size_class * kCacheStride;
}

}  // namespace

uint32_t KallocSizeClass(uint32_t size) {
  for (uint32_t i = 0; i < kNumSizeClasses; i++) {
    if (size <= kClassBytes[i]) {
      return i;
    }
  }
  return kNumSizeClasses;
}

uint32_t KallocClassBytes(uint32_t size_class) {
  SB_CHECK(size_class < kNumSizeClasses);
  return kClassBytes[size_class];
}

GuestAddr KallocInit(Memory& mem, uint32_t heap_bytes) {
  GuestAddr heap = mem.StaticAlloc(kHeapCaches + kNumSizeClasses * kCacheStride, 8);
  GuestAddr region = mem.StaticAlloc(heap_bytes, 16);
  mem.WriteRaw(heap + kHeapLock, 4, 0);
  mem.WriteRaw(heap + kHeapBrk, 4, region);
  mem.WriteRaw(heap + kHeapStart, 4, region);
  mem.WriteRaw(heap + kHeapEnd, 4, region + heap_bytes);
  mem.WriteRaw(heap + kHeapTotalAllocs, 4, 0);
  mem.WriteRaw(heap + kHeapTotalFrees, 4, 0);
  for (uint32_t i = 0; i < kNumSizeClasses; i++) {
    mem.WriteRaw(CacheAddr(heap, i) + 0, 4, 0);  // free_head.
    mem.WriteRaw(CacheAddr(heap, i) + 4, 4, 0);  // free_count.
  }
  return heap;
}

GuestAddr Kmalloc(Ctx& ctx, GuestAddr heap, uint32_t size) {
  uint32_t size_class = KallocSizeClass(size);
  SB_CHECK(size_class < kNumSizeClasses);
  uint32_t bytes = kClassBytes[size_class];
  GuestAddr cache = CacheAddr(heap, size_class);

  SpinLock(ctx, heap + kHeapLock);
  GuestAddr block = ctx.Load32(cache + 0, SB_SITE());  // free_head.
  if (block != kGuestNull) {
    // cache_alloc_refill analog: pop the per-class free list.
    GuestAddr next = ctx.Load32(block, SB_SITE());
    ctx.Store32(cache + 0, next, SB_SITE());
    uint32_t free_count = ctx.Load32(cache + 4, SB_SITE());
    ctx.Store32(cache + 4, free_count - 1, SB_SITE());
  } else {
    GuestAddr brk = ctx.Load32(heap + kHeapBrk, SB_SITE());
    GuestAddr end = ctx.Load32(heap + kHeapEnd, SB_SITE());
    if (brk + bytes > end) {
      SpinUnlock(ctx, heap + kHeapLock);
      ctx.Printk("kmalloc: out of memory");
      return kGuestNull;
    }
    ctx.Store32(heap + kHeapBrk, brk + bytes, SB_SITE());
    block = brk;
  }
  SpinUnlock(ctx, heap + kHeapLock);

  // Issue #13 seed (benign data race, mm/): the global allocation counter is read-modify-
  // written with PLAIN accesses outside the heap lock — exactly the kind of performance
  // counter kernel developers leave unsynchronized (§4.3 S-MEM discussion; DataCollider).
  uint32_t allocs = ctx.Load32(heap + kHeapTotalAllocs, SB_SITE());
  ctx.Store32(heap + kHeapTotalAllocs, allocs + 1, SB_SITE());

  // kzalloc semantics: zero the block (word-wise traced stores).
  for (uint32_t off = 0; off < bytes; off += 4) {
    ctx.Store32(block + off, 0, SB_SITE());
  }
  return block;
}

void Kfree(Ctx& ctx, GuestAddr heap, GuestAddr addr, uint32_t size) {
  if (addr == kGuestNull) {
    return;
  }
  uint32_t size_class = KallocSizeClass(size);
  SB_CHECK(size_class < kNumSizeClasses);
  GuestAddr cache = CacheAddr(heap, size_class);

  SpinLock(ctx, heap + kHeapLock);
  GuestAddr head = ctx.Load32(cache + 0, SB_SITE());
  ctx.Store32(addr, head, SB_SITE());      // Freed block's first word = next pointer.
  ctx.Store32(cache + 0, addr, SB_SITE());
  uint32_t free_count = ctx.Load32(cache + 4, SB_SITE());
  ctx.Store32(cache + 4, free_count + 1, SB_SITE());
  SpinUnlock(ctx, heap + kHeapLock);

  // Issue #13 seed, reader/writer pair of the counter race (free_block analog).
  uint32_t frees = ctx.Load32(heap + kHeapTotalFrees, SB_SITE());
  ctx.Store32(heap + kHeapTotalFrees, frees + 1, SB_SITE());
  uint32_t allocs = ctx.Load32(heap + kHeapTotalAllocs, SB_SITE());
  if (frees > allocs) {
    // Benign: the counters can disagree transiently under the race; the kernel only logs.
    ctx.Printk("slab: stats skew (frees > allocs)");
  }
}

}  // namespace snowboard
