#include "src/kernel/task.h"

#include "src/sim/site.h"
#include "src/util/assert.h"

namespace snowboard {

GuestAddr TaskInit(Memory& mem, uint32_t tid) {
  GuestAddr stack = mem.StaticAlloc(kKernelStackSize, kKernelStackSize);
  SB_CHECK((stack & (kKernelStackSize - 1)) == 0);
  GuestAddr task = mem.StaticAlloc(kTaskSize, 8);
  mem.WriteRaw(task + kTaskTid, 4, tid);
  mem.WriteRaw(task + kTaskStackBase, 4, stack);
  for (uint32_t i = 0; i < kMaxFds; i++) {
    mem.WriteRaw(task + kTaskFds + 4 * i, 4, 0);
  }
  return task;
}

void TaskEnter(Ctx& ctx, GuestAddr task) {
  ctx.current_task = task;
  GuestAddr stack = static_cast<GuestAddr>(ctx.mem().ReadRaw(task + kTaskStackBase, 4));
  // Stack grows down from the top; leave a redzone word.
  ctx.esp = stack + kKernelStackSize - 8;
}

int FdAlloc(Ctx& ctx, GuestAddr task, GuestAddr file) {
  for (uint32_t i = 0; i < kMaxFds; i++) {
    GuestAddr slot = task + kTaskFds + 4 * i;
    if (ctx.Load32(slot, SB_SITE()) == kGuestNull) {
      ctx.Store32(slot, file, SB_SITE());
      return static_cast<int>(i);
    }
  }
  return -1;
}

GuestAddr FdGet(Ctx& ctx, GuestAddr task, int fd) {
  if (fd < 0 || fd >= static_cast<int>(kMaxFds)) {
    return kGuestNull;
  }
  return ctx.Load32(task + kTaskFds + 4 * static_cast<uint32_t>(fd), SB_SITE());
}

void FdClear(Ctx& ctx, GuestAddr task, int fd) {
  if (fd < 0 || fd >= static_cast<int>(kMaxFds)) {
    return;
  }
  ctx.Store32(task + kTaskFds + 4 * static_cast<uint32_t>(fd), kGuestNull, SB_SITE());
}

StackFrame::StackFrame(Ctx& ctx, uint32_t bytes) : ctx_(ctx), saved_esp_(ctx.esp) {
  SB_CHECK(bytes <= kKernelStackSize / 2);
  ctx_.esp -= (bytes + 7) & ~7u;
  base_ = ctx_.esp;
}

StackFrame::~StackFrame() { ctx_.esp = saved_esp_; }

}  // namespace snowboard
