#include "src/kernel/block/blockdev.h"

#include "src/sim/site.h"
#include "src/sim/sync.h"
#include "src/util/strings.h"

namespace snowboard {

GuestAddr BlockDevInit(Memory& mem) {
  GuestAddr bd = mem.StaticAlloc(24, 8);
  mem.WriteRaw(bd + kBdLock, 4, 0);
  mem.WriteRaw(bd + kBdBlocksize, 4, 1024);
  mem.WriteRaw(bd + kBdNrSectors, 4, kBdDefaultSectors);
  mem.WriteRaw(bd + kBdRaPages, 4, 32);
  mem.WriteRaw(bd + kBdIoErrors, 4, 0);
  mem.WriteRaw(bd + kBdSectorsWritten, 4, 0);
  return bd;
}

bool SubmitBio(Ctx& ctx, const KernelGlobals& g, uint32_t sector, bool is_write) {
  GuestAddr bd = g.blockdevs;
  uint32_t nr_sectors = ctx.Load32(bd + kBdNrSectors, SB_SITE());
  if (sector >= nr_sectors) {
    // blk_update_request() failing the request: the issue #4 console oracle.
    uint32_t errors = ctx.Load32(bd + kBdIoErrors, SB_SITE());
    ctx.Store32(bd + kBdIoErrors, errors + 1, SB_SITE());
    ctx.Printk(StrPrintf("blk_update_request: I/O error, dev sbd0, sector %u", sector));
    return false;
  }
  if (is_write) {
    SpinLock(ctx, bd + kBdLock);
    uint32_t written = ctx.Load32(bd + kBdSectorsWritten, SB_SITE());
    ctx.Store32(bd + kBdSectorsWritten, written + 1, SB_SITE());
    SpinUnlock(ctx, bd + kBdLock);
  }
  return true;
}

int64_t MpageReadpage(Ctx& ctx, const KernelGlobals& g, uint32_t page_index) {
  GuestAddr bd = g.blockdevs;
  // Issue #6 reader: do_mpage_readpage derives the block mapping from two separate PLAIN
  // loads of the blocksize; set_blocksize can slip between them.
  uint32_t bs_first = ctx.Load32(bd + kBdBlocksize, SB_SITE());
  if (bs_first == 0) {
    return kEIO;
  }
  uint32_t blocks_per_page = kPageBytes / bs_first;
  uint32_t first_block = page_index * blocks_per_page;
  // ... intervening mapping work ...
  uint32_t bs_again = ctx.Load32(bd + kBdBlocksize, SB_SITE());
  if (bs_again == 0) {
    return kEIO;
  }
  uint32_t last_block = first_block + (kPageBytes / bs_again) - 1;
  if (!SubmitBio(ctx, g, first_block % kBdDefaultSectors, /*is_write=*/false)) {
    return kEIO;
  }
  return static_cast<int64_t>(last_block);
}

int64_t BlkdevSetBlocksize(Ctx& ctx, const KernelGlobals& g, uint32_t blocksize) {
  if (blocksize < 512 || blocksize > 4096 || (blocksize & (blocksize - 1)) != 0) {
    return kEINVAL;
  }
  GuestAddr bd = g.blockdevs;
  // Issue #6 writer: set_blocksize stores bd_block_size with a plain write (no bd_lock in
  // the read path's view, no READ_ONCE/WRITE_ONCE pairing).
  ctx.Store32(bd + kBdBlocksize, blocksize, SB_SITE());
  return 0;
}

int64_t BlkdevSetReadahead(Ctx& ctx, const KernelGlobals& g, uint32_t ra_pages) {
  GuestAddr bd = g.blockdevs;
  // Issue #5 writer: blkdev_ioctl holds the device lock, but the fadvise reader takes no
  // lock, so this plain store still races.
  SpinLock(ctx, bd + kBdLock);
  ctx.Store32(bd + kBdRaPages, ra_pages & 0xFFFF, SB_SITE());
  SpinUnlock(ctx, bd + kBdLock);
  return 0;
}

int64_t BlkdevWrite(Ctx& ctx, const KernelGlobals& g, uint32_t sector) {
  GuestAddr bd = g.blockdevs;
  uint32_t nr_sectors = ctx.Load32(bd + kBdNrSectors, SB_SITE());
  return SubmitBio(ctx, g, sector % (nr_sectors * 2), /*is_write=*/true) ? 0 : kEIO;
}

}  // namespace snowboard
