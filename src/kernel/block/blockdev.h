// Block layer: a single block device (sbd0) plus the request-completion path.
//
// Carries two Table 2 issues:
//   #5 (DR) — BlkdevSetReadahead (blkdev_ioctl(BLKRASET)) writes ra_pages under bd_lock
//      while GenericFadvise (mm/pagecache.h) reads it with no lock at all.
//   #6 (DR) — MpageReadpage (do_mpage_readpage) reads the device blocksize twice with plain
//      loads to derive a page mapping, racing SetBlocksize's plain store.
// It also provides SubmitBio, whose bounds check is the console oracle for issue #4
// ("blk_update_request: I/O error").
#ifndef SRC_KERNEL_BLOCK_BLOCKDEV_H_
#define SRC_KERNEL_BLOCK_BLOCKDEV_H_

#include "src/kernel/kernel.h"
#include "src/sim/engine.h"

namespace snowboard {

// Device block:
//   +0  bd_lock
//   +4  blocksize       (512 / 1024 / 2048 / 4096)
//   +8  nr_sectors
//   +12 ra_pages        (readahead window)
//   +16 io_errors
//   +20 sectors_written
inline constexpr uint32_t kBdLock = 0;
inline constexpr uint32_t kBdBlocksize = 4;
inline constexpr uint32_t kBdNrSectors = 8;
inline constexpr uint32_t kBdRaPages = 12;
inline constexpr uint32_t kBdIoErrors = 16;
inline constexpr uint32_t kBdSectorsWritten = 20;

inline constexpr uint32_t kBdDefaultSectors = 128;
inline constexpr uint32_t kPageBytes = 4096;

GuestAddr BlockDevInit(Memory& mem);

// Submits one request; returns false and logs "blk_update_request: I/O error" if the sector
// is out of range (issue #4's oracle).
bool SubmitBio(Ctx& ctx, const KernelGlobals& g, uint32_t sector, bool is_write);

// read(/dev/sbd0): do_mpage_readpage analog — the issue #6 reader (double plain load of
// blocksize while computing the page's block mapping).
int64_t MpageReadpage(Ctx& ctx, const KernelGlobals& g, uint32_t page_index);

// ioctl(BLKBSZSET): set_blocksize analog — the issue #6 writer (plain store).
int64_t BlkdevSetBlocksize(Ctx& ctx, const KernelGlobals& g, uint32_t blocksize);

// ioctl(BLKRASET): the issue #5 writer (store under bd_lock).
int64_t BlkdevSetReadahead(Ctx& ctx, const KernelGlobals& g, uint32_t ra_pages);

// write(/dev/sbd0): raw sector write through SubmitBio.
int64_t BlkdevWrite(Ctx& ctx, const KernelGlobals& g, uint32_t sector);

}  // namespace snowboard

#endif  // SRC_KERNEL_BLOCK_BLOCKDEV_H_
