// The syscall table: the kernel's user-facing API and the fuzzer's input vocabulary.
#ifndef SRC_KERNEL_SYSCALLS_H_
#define SRC_KERNEL_SYSCALLS_H_

#include <cstdint>

#include "src/kernel/kernel.h"
#include "src/sim/engine.h"

namespace snowboard {

enum Syscall : uint32_t {
  kSysOpen = 0,     // open(path_id, flags) -> fd
  kSysClose,        // close(fd)
  kSysRead,         // read(fd, len)
  kSysWrite,        // write(fd, len, value)
  kSysFtruncate,    // ftruncate(fd, size)
  kSysRename,       // rename(path_id, path_id)
  kSysIoctl,        // ioctl(fd, cmd, arg)
  kSysFadvise,      // fadvise(fd, advice)
  kSysSocket,       // socket(family, proto) -> fd
  kSysConnect,      // connect(fd, arg)  (l2tp: tunnel id; inet: peer)
  kSysBind,         // bind(fd, ifindex)
  kSysSendmsg,      // sendmsg(fd, len)
  kSysRecvmsg,      // recvmsg(fd)
  kSysGetsockname,  // getsockname(fd)
  kSysSetsockopt,   // setsockopt(fd, opt, val)
  kSysMsgget,       // msgget(key) -> msqid
  kSysMsgctl,       // msgctl(msqid, cmd)
  kSysMsgsnd,       // msgsnd(msqid, len)
  kSysSysctl,       // sysctl(id, val)
  kSysMkdir,        // mkdir(path_id)  (configfs)
  kSysRmdir,        // rmdir(path_id)  (configfs)
  kSysDup,          // dup(fd) -> fd
  kSysFstat,        // fstat(fd)
  kSysGetdents,     // getdents(fd)  (configfs directory listing)
  kNumSyscalls,
};

// Socket options (setsockopt).
enum SockOpt : uint32_t {
  kSoPacketFanout = 1,       // join fanout group <val> (issue #17 setup).
  kSoPacketFanoutLeave = 2,  // __fanout_unlink (issue #17 writer).
  kSoTcpCongestion = 3,      // val==0: read default (issue #16 reader); else set by id.
  kSoRcvbuf = 4,
};

// Sysctl ids.
enum SysctlId : uint32_t {
  kSysctlTcpCongestion = 0,  // tcp_set_default_congestion_control (issue #16 writer).
};

// Human-readable syscall name (reports, program pretty-printing).
const char* SyscallName(uint32_t nr);

// Executes one syscall on the current task of `ctx`. `args` are fully resolved values (the
// test executor substitutes resource slots first). Returns the syscall result (fds/msqids
// are >= 0; errors are negative).
int64_t DoSyscall(Ctx& ctx, const KernelGlobals& g, uint32_t nr, const int64_t args[4]);

}  // namespace snowboard

#endif  // SRC_KERNEL_SYSCALLS_H_
