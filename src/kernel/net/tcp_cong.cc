#include "src/kernel/net/tcp_cong.h"

#include <cstring>

#include "src/kernel/net/netdev.h"
#include "src/kernel/task.h"
#include "src/sim/site.h"
#include "src/sim/sync.h"

namespace snowboard {

namespace {
constexpr const char* kCaNames[kNumCaNames] = {"cubic", "reno", "bbr"};
}  // namespace

const char* TcpCaName(uint32_t ca_id) { return kCaNames[ca_id % kNumCaNames]; }

GuestAddr TcpCongInit(Memory& mem) {
  GuestAddr block = mem.StaticAlloc(kTcpCongDefault + kTcpCongNameBytes, 8);
  mem.WriteRaw(block + kTcpCongLock, 4, 0);
  for (uint32_t i = 0; i < kTcpCongNameBytes; i++) {
    const char* name = kCaNames[0];
    uint8_t byte = i < std::strlen(name) ? static_cast<uint8_t>(name[i]) : 0;
    mem.WriteRaw(block + kTcpCongDefault + i, 1, byte);
  }
  return block;
}

int64_t TcpSetDefaultCongestionControl(Ctx& ctx, const KernelGlobals& g, uint32_t ca_id) {
  const char* name = TcpCaName(ca_id);
  // Stage the new name on the kernel stack, then commit it byte-chunked under the sysctl
  // lock. The setsockopt reader takes no lock, so the copy races (issue #16 writer).
  StackFrame frame(ctx, kTcpCongNameBytes);
  for (uint32_t i = 0; i < kTcpCongNameBytes; i++) {
    uint8_t byte = i < std::strlen(name) ? static_cast<uint8_t>(name[i]) : 0;
    ctx.Store8(frame.base() + i, byte, SB_SITE());
  }
  SpinLock(ctx, g.tcp_cong + kTcpCongLock);
  ctx.Copy(g.tcp_cong + kTcpCongDefault, frame.base(), kTcpCongNameBytes, SB_SITE(),
           SB_SITE());
  SpinUnlock(ctx, g.tcp_cong + kTcpCongLock);
  return 0;
}

int64_t TcpSetCongestionControl(Ctx& ctx, const KernelGlobals& g, GuestAddr sk,
                                uint32_t ca_id) {
  if (ca_id == 0) {
    // Issue #16 reader: copy the global default into the socket with plain chunked loads,
    // no sysctl lock — a concurrent default change tears the name (benign: lookup of a torn
    // name falls back to the built-in CA).
    ctx.Copy(sk + kSockCongName, g.tcp_cong + kTcpCongDefault, kTcpCongNameBytes, SB_SITE(),
             SB_SITE());
    return 0;
  }
  const char* name = TcpCaName(ca_id);
  SpinLock(ctx, sk + kSockLock);
  for (uint32_t i = 0; i < kTcpCongNameBytes; i++) {
    uint8_t byte = i < std::strlen(name) ? static_cast<uint8_t>(name[i]) : 0;
    ctx.Store8(sk + kSockCongName + i, byte, SB_SITE());
  }
  SpinUnlock(ctx, sk + kSockLock);
  return 0;
}

}  // namespace snowboard
