#include "src/kernel/net/netdev.h"

#include "src/kernel/kalloc.h"
#include "src/kernel/task.h"
#include "src/sim/site.h"
#include "src/sim/sync.h"

namespace snowboard {

namespace {

// Writes a recognizable 6-byte MAC pattern derived from `seed` into a guest buffer.
void FillMacPattern(Ctx& ctx, GuestAddr buf, uint32_t seed) {
  for (uint32_t i = 0; i < kEthAlen; i++) {
    ctx.Store8(buf + i, static_cast<uint8_t>(0x10 + (seed & 0xF) * 0x11 + i), SB_SITE());
  }
}

}  // namespace

GuestAddr NetdevInit(Memory& mem, GuestAddr* rtnl_lock_out) {
  GuestAddr rtnl = mem.StaticAlloc(4, 4);
  mem.WriteRaw(rtnl, 4, 0);
  *rtnl_lock_out = rtnl;

  GuestAddr block = mem.StaticAlloc(kNetdevTable + 4 * kNumNetdevs, 8);
  mem.WriteRaw(block + kNetdevCount, 4, kNumNetdevs);
  for (uint32_t i = 0; i < kNumNetdevs; i++) {
    GuestAddr dev = mem.StaticAlloc(kDevStructSize, 8);
    mem.WriteRaw(block + kNetdevTable + 4 * i, 4, dev);
    mem.WriteRaw(dev + kDevIfindex, 4, i);
    mem.WriteRaw(dev + kDevMtu, 4, 1500);
    mem.WriteRaw(dev + kDevAddrLen, 4, kEthAlen);
    for (uint32_t b = 0; b < kEthAlen; b++) {
      mem.WriteRaw(dev + kDevAddr + b, 1, 0xAA);
    }
    mem.WriteRaw(dev + kDevLock, 4, 0);
    mem.WriteRaw(dev + kDevFlags, 4, 1);  // IFF_UP.
    mem.WriteRaw(dev + kDevTxPackets, 4, 0);
    mem.WriteRaw(dev + kDevRxPackets, 4, 0);
  }
  return block;
}

GuestAddr DevGetByIndex(Ctx& ctx, const KernelGlobals& g, uint32_t ifindex) {
  uint32_t ndevs = ctx.Load32(g.netdevs + kNetdevCount, SB_SITE());
  return ctx.Load32(g.netdevs + kNetdevTable + 4 * (ifindex % ndevs), SB_SITE());
}

GuestAddr SockAlloc(Ctx& ctx, const KernelGlobals& g, uint32_t family, uint32_t proto) {
  GuestAddr sk = Kmalloc(ctx, g.kheap, kSockStructSize);
  if (sk == kGuestNull) {
    return kGuestNull;
  }
  ctx.Store32(sk + kSockFamily, family, SB_SITE());
  ctx.Store32(sk + kSockProto, proto, SB_SITE());
  return sk;
}

int64_t DevIoctlSetMac(Ctx& ctx, const KernelGlobals& g, uint32_t ifindex, uint32_t seed) {
  // Stage the new MAC in a stack buffer (addr->sa_data analog).
  StackFrame frame(ctx, 8);
  FillMacPattern(ctx, frame.base(), seed);

  // eth_commit_mac_addr_change(): "//Inside rtnl_lock()" (Figure 3, writer side).
  SpinLock(ctx, g.rtnl_lock);
  GuestAddr dev = DevGetByIndex(ctx, g, ifindex);
  // memcpy(dev->dev_addr, addr->sa_data, ETH_ALEN) — chunked: 4 bytes then 2 bytes, each an
  // independently schedulable store. A concurrent reader can see 4 new + 2 old bytes.
  ctx.Copy(dev + kDevAddr, frame.base(), kEthAlen, SB_SITE(), SB_SITE());
  SpinUnlock(ctx, g.rtnl_lock);
  return 0;
}

int64_t DevIoctlGetMac(Ctx& ctx, const KernelGlobals& g, uint32_t ifindex) {
  // dev_ifsioc_locked(): "//Inside rcu_read_lock()" (Figure 3, reader side). RCU does not
  // exclude the rtnl-locked writer — disjoint synchronization, hence the data race.
  StackFrame frame(ctx, 8);
  RcuReadLock(ctx, g.rcu_readers);
  GuestAddr dev = DevGetByIndex(ctx, g, ifindex);
  // memcpy(ifr->ifr_hwaddr.sa_data, dev->dev_addr, ...) — chunked read.
  ctx.Copy(frame.base(), dev + kDevAddr, kEthAlen, SB_SITE(), SB_SITE());
  RcuReadUnlock(ctx, g.rcu_readers);

  // Digest of the (possibly torn) MAC the user received.
  uint32_t lo = ctx.Load32(frame.base(), SB_SITE());
  uint16_t hi = ctx.Load16(frame.base() + 4, SB_SITE());
  return static_cast<int64_t>((static_cast<uint64_t>(hi) << 32) | lo);
}

int64_t E1000SetMac(Ctx& ctx, const KernelGlobals& g, uint32_t ifindex, uint32_t seed) {
  StackFrame frame(ctx, 8);
  FillMacPattern(ctx, frame.base(), seed + 7);

  GuestAddr dev = DevGetByIndex(ctx, g, ifindex);
  // Issue #8 writer: the driver commits the MAC under its PRIVATE lock, not rtnl — so a
  // reader path that relies on rtnl (or on nothing, like packet_getname) races it.
  SpinLock(ctx, dev + kDevLock);
  ctx.Copy(dev + kDevAddr, frame.base(), kEthAlen, SB_SITE(), SB_SITE());
  SpinUnlock(ctx, dev + kDevLock);
  return 0;
}

int64_t PacketGetname(Ctx& ctx, const KernelGlobals& g, GuestAddr sk) {
  StackFrame frame(ctx, 8);
  uint32_t ifindex = ctx.Load32(sk + kSockBoundIf, SB_SITE());
  GuestAddr dev = DevGetByIndex(ctx, g, ifindex);
  // is_multicast_ether_addr(dev->dev_addr): a single-BYTE read of addr[0] — against the
  // writers' 4-byte chunked stores this is an UNALIGNED channel (S-CH-UNALIGNED material).
  uint8_t first_octet = ctx.Load8(dev + kDevAddr, SB_SITE());
  if ((first_octet & 1) != 0) {
    return kEINVAL;  // Multicast address bound to the socket: refuse, as af_packet does.
  }
  // Issue #8 reader: packet_getname() copies dev->dev_addr with NO lock at all.
  ctx.Copy(frame.base(), dev + kDevAddr, kEthAlen, SB_SITE(), SB_SITE());
  uint32_t lo = ctx.Load32(frame.base(), SB_SITE());
  return static_cast<int64_t>(lo);
}

int64_t DevSetMtu(Ctx& ctx, const KernelGlobals& g, uint32_t ifindex, uint32_t mtu) {
  if (mtu < 68 || mtu > 65535) {
    return kEINVAL;
  }
  SpinLock(ctx, g.rtnl_lock);
  GuestAddr dev = DevGetByIndex(ctx, g, ifindex);
  // __dev_set_mtu(): plain store under rtnl — issue #7 writer.
  ctx.Store32(dev + kDevMtu, mtu, SB_SITE());
  SpinUnlock(ctx, g.rtnl_lock);
  return 0;
}

int64_t Rawv6SendHdrinc(Ctx& ctx, const KernelGlobals& g, GuestAddr sk, uint32_t len) {
  uint32_t ifindex = ctx.Load32(sk + kSockBoundIf, SB_SITE());
  GuestAddr dev = DevGetByIndex(ctx, g, ifindex);
  // Issue #7 reader: rawv6_send_hdrinc() sizes the frame from a PLAIN read of dev->mtu
  // with no rtnl; __dev_set_mtu can move it mid-path.
  uint32_t mtu = ctx.Load32(dev + kDevMtu, SB_SITE());
  if (len > mtu) {
    return kEINVAL;  // EMSGSIZE-ish.
  }
  // ... header construction ...
  uint32_t mtu_again = ctx.Load32(dev + kDevMtu, SB_SITE());
  uint32_t fragments = mtu_again == 0 ? 1 : (len / (mtu_again + 1)) + 1;

  uint32_t tx = ctx.Load32(dev + kDevTxPackets, SB_SITE());
  ctx.Store32(dev + kDevTxPackets, tx + fragments, SB_SITE());
  ctx.Store32(sk + kSockTxBytes, ctx.Load32(sk + kSockTxBytes, SB_SITE()) + len, SB_SITE());
  return static_cast<int64_t>(len);
}

int64_t TcpSendmsg(Ctx& ctx, const KernelGlobals& g, GuestAddr sk, uint32_t len) {
  SpinLock(ctx, sk + kSockLock);
  uint32_t tx = ctx.Load32(sk + kSockTxBytes, SB_SITE());
  ctx.Store32(sk + kSockTxBytes, tx + len, SB_SITE());
  // The congestion window computation reads the CA name installed by tcp_cong.cc.
  uint32_t ca0 = ctx.Load32(sk + kSockCongName, SB_SITE());
  SpinUnlock(ctx, sk + kSockLock);
  return static_cast<int64_t>(len + (ca0 & 0xF));
}

}  // namespace snowboard
