// net/l2tp: the tunnel registry — issue #12 of Table 2, the Figure 1 case study.
//
// The order violation, reproduced move for move:
//   writer: L2tpTunnelRegister() publishes the tunnel into the RCU list under the list
//           spinlock (➊), does some more setup, and only THEN initializes tunnel->sock (➋).
//   reader: PppoL2tpConnect() retrieves the tunnel by id via l2tp_tunnel_get (➌); a later
//           L2tpXmitCore() loads tunnel->sock (➍) and bh_lock_sock()s it. If ➌/➍ land in
//           the ➊→➋ window, sock is still 0 and the lock access dereferences the null page:
//           "BUG: kernel NULL pointer dereference" — a kernel panic with NO data race
//           involved (everything is "protected" by RCU + the spinlock; the publish ORDER is
//           the bug).
// The tunnel id searched by the reader comes straight from the connect() argument, which is
// what made the real bug user-triggerable (§5.2 Case 2).
#ifndef SRC_KERNEL_NET_L2TP_H_
#define SRC_KERNEL_NET_L2TP_H_

#include "src/kernel/kernel.h"
#include "src/sim/engine.h"

namespace snowboard {

// Subsystem block: +0 tunnel_list_lock, +4 tunnel_list head, +8 tunnel_count.
inline constexpr uint32_t kL2tpListLock = 0;
inline constexpr uint32_t kL2tpListHead = 4;
inline constexpr uint32_t kL2tpCount = 8;

// Tunnel struct (kmalloc'd, 32 bytes):
//   +0  next (RCU list linkage)
//   +4  tunnel_id
//   +8  sock          (initialized LAST — the order violation)
//   +12 encap_type
//   +16 refcount
//   +20 tx_errors
inline constexpr uint32_t kTunnelNext = 0;
inline constexpr uint32_t kTunnelId = 4;
inline constexpr uint32_t kTunnelSock = 8;
inline constexpr uint32_t kTunnelEncap = 12;
inline constexpr uint32_t kTunnelRefcount = 16;
inline constexpr uint32_t kTunnelTxErrors = 20;
inline constexpr uint32_t kTunnelStructSize = 32;

GuestAddr L2tpInit(Memory& mem);

// l2tp_tunnel_register(): create + publish + (late) sock initialization. Returns the tunnel.
GuestAddr L2tpTunnelRegister(Ctx& ctx, const KernelGlobals& g, uint32_t tunnel_id,
                             GuestAddr sk);

// l2tp_tunnel_get(): RCU list lookup by id; returns tunnel or kGuestNull.
GuestAddr L2tpTunnelGet(Ctx& ctx, const KernelGlobals& g, uint32_t tunnel_id);

// pppol2tp_connect(): look up the requested tunnel id, registering a fresh tunnel if absent;
// binds it to `sk`.
int64_t PppoL2tpConnect(Ctx& ctx, const KernelGlobals& g, GuestAddr sk, uint32_t tunnel_id);

// sendmsg() on a PPPoL2TP socket: pppol2tp_sendmsg -> l2tp_xmit_core. Dereferences
// tunnel->sock (➍) and bh_lock_sock()s it.
int64_t L2tpXmit(Ctx& ctx, const KernelGlobals& g, GuestAddr sk, uint32_t len);

}  // namespace snowboard

#endif  // SRC_KERNEL_NET_L2TP_H_
