// net core: network devices, sockets, and the device-ioctl paths.
//
// Carries three Table 2 issues, all in the same functions as the paper:
//   #9 (DR, Figure 3) — EthCommitMacAddrChange memcpy-writes dev->dev_addr under rtnl_lock;
//      DevIfsiocLocked memcpy-reads it under rcu_read_lock. Different "locks" (and RCU does
//      not exclude writers), chunked copies on both sides ⇒ the user can receive a
//      partially-updated MAC address.
//   #8 (DR) — PacketGetname reads dev->dev_addr with no lock; E1000SetMac writes it under
//      the driver's private lock.
//   #7 (DR) — Rawv6SendHdrinc sizes the packet from a plain read of dev->mtu while
//      DevSetMtu stores it under rtnl_lock.
//
// Sockets for every family the tests use are defined here too (the paper's tests drive all
// the bugs through socket(), connect(), sendmsg(), ioctl(), setsockopt(), getsockname()).
#ifndef SRC_KERNEL_NET_NETDEV_H_
#define SRC_KERNEL_NET_NETDEV_H_

#include "src/kernel/kernel.h"
#include "src/sim/engine.h"

namespace snowboard {

// Device table block: +0 ndevs, +4 dev[kNumNetdevs].
inline constexpr uint32_t kNetdevCount = 0;
inline constexpr uint32_t kNetdevTable = 4;
inline constexpr uint32_t kNumNetdevs = 2;  // eth0, eth1.

// Device struct (static, 48 bytes):
//   +0  ifindex
//   +4  mtu
//   +8  addr_len (6)
//   +12 dev_addr[8] (6 significant bytes — the Figure 3 object)
//   +20 dev_lock   (driver-private lock used by E1000SetMac)
//   +24 flags
//   +28 tx_packets
//   +32 rx_packets
inline constexpr uint32_t kDevIfindex = 0;
inline constexpr uint32_t kDevMtu = 4;
inline constexpr uint32_t kDevAddrLen = 8;
inline constexpr uint32_t kDevAddr = 12;
inline constexpr uint32_t kDevLock = 20;
inline constexpr uint32_t kDevFlags = 24;
inline constexpr uint32_t kDevTxPackets = 28;
inline constexpr uint32_t kDevRxPackets = 32;
inline constexpr uint32_t kDevStructSize = 48;

inline constexpr uint32_t kEthAlen = 6;

// Socket struct (kmalloc'd, 64 bytes):
//   +0  family
//   +4  proto
//   +8  sk_lock        (bh_lock_sock target: issue #12 panics when sk == 0)
//   +12 bound_ifindex
//   +16 proto_data     (l2tp tunnel / fanout group / fib6 route, per family)
//   +20 cong_name[16]  (TCP congestion-control name bytes)
//   +36 peer
//   +40 tx_bytes
//   +44 rx_bytes
//   +48 fanout_slot
inline constexpr uint32_t kSockFamily = 0;
inline constexpr uint32_t kSockProto = 4;
inline constexpr uint32_t kSockLock = 8;
inline constexpr uint32_t kSockBoundIf = 12;
inline constexpr uint32_t kSockProtoData = 16;
inline constexpr uint32_t kSockCongName = 20;
inline constexpr uint32_t kSockPeer = 36;
inline constexpr uint32_t kSockTxBytes = 40;
inline constexpr uint32_t kSockRxBytes = 44;
inline constexpr uint32_t kSockFanoutSlot = 48;
inline constexpr uint32_t kSockStructSize = 64;

// Address families (Linux numbering where it exists).
inline constexpr uint32_t kAfInet = 2;
inline constexpr uint32_t kAfInet6 = 10;
inline constexpr uint32_t kAfPacket = 17;
inline constexpr uint32_t kPxProtoOl2tp = 24;  // PPPoX / PX_PROTO_OL2TP.

GuestAddr NetdevInit(Memory& mem, GuestAddr* rtnl_lock_out);

// Device lookup by ifindex (clamped to the table).
GuestAddr DevGetByIndex(Ctx& ctx, const KernelGlobals& g, uint32_t ifindex);

// Socket allocation (kmalloc'd; freed via vfs close).
GuestAddr SockAlloc(Ctx& ctx, const KernelGlobals& g, uint32_t family, uint32_t proto);

// --- Issue #9 (Figure 3). ---
// SIOCSIFHWADDR: takes rtnl_lock, then commits the MAC with a chunked memcpy.
int64_t DevIoctlSetMac(Ctx& ctx, const KernelGlobals& g, uint32_t ifindex, uint32_t seed);
// SIOCGIFHWADDR: dev_ifsioc_locked under rcu_read_lock; copies the MAC into a user buffer
// (a stack scratch area) and returns a digest of what it saw.
int64_t DevIoctlGetMac(Ctx& ctx, const KernelGlobals& g, uint32_t ifindex);

// --- Issue #8. ---
int64_t E1000SetMac(Ctx& ctx, const KernelGlobals& g, uint32_t ifindex, uint32_t seed);
int64_t PacketGetname(Ctx& ctx, const KernelGlobals& g, GuestAddr sk);

// --- Issue #7. ---
int64_t DevSetMtu(Ctx& ctx, const KernelGlobals& g, uint32_t ifindex, uint32_t mtu);
// rawv6_send_hdrinc analog (sendmsg on an AF_INET6 socket).
int64_t Rawv6SendHdrinc(Ctx& ctx, const KernelGlobals& g, GuestAddr sk, uint32_t len);

// Plain TCP sendmsg: reads the socket's congestion-control name (issue #16 reader lives in
// tcp_cong.h; this path just exercises the socket).
int64_t TcpSendmsg(Ctx& ctx, const KernelGlobals& g, GuestAddr sk, uint32_t len);

}  // namespace snowboard

#endif  // SRC_KERNEL_NET_NETDEV_H_
