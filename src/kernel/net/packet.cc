#include "src/kernel/net/packet.h"

#include "src/kernel/net/netdev.h"
#include "src/sim/site.h"
#include "src/sim/sync.h"

namespace snowboard {

namespace {

constexpr uint32_t kGroupStride = kFanoutArr + 4 * kFanoutMaxMembers;

GuestAddr GroupAddr(Ctx& ctx, const KernelGlobals& g, uint32_t group_id) {
  return ctx.Load32(g.packet + kPacketGroups + 4 * (group_id % kNumFanoutGroups), SB_SITE());
}

}  // namespace

GuestAddr PacketInit(Memory& mem) {
  GuestAddr block = mem.StaticAlloc(kPacketGroups + 4 * kNumFanoutGroups, 8);
  mem.WriteRaw(block + kPacketMutex, 4, 0);
  for (uint32_t i = 0; i < kNumFanoutGroups; i++) {
    GuestAddr group = mem.StaticAlloc(kGroupStride, 8);
    mem.WriteRaw(block + kPacketGroups + 4 * i, 4, group);
    mem.WriteRaw(group + kFanoutId, 4, i);
    mem.WriteRaw(group + kFanoutNumMembers, 4, 0);
    for (uint32_t m = 0; m < kFanoutMaxMembers; m++) {
      mem.WriteRaw(group + kFanoutArr + 4 * m, 4, 0);
    }
  }
  return block;
}

int64_t FanoutAdd(Ctx& ctx, const KernelGlobals& g, GuestAddr sk, uint32_t group_id) {
  GuestAddr group = GroupAddr(ctx, g, group_id);
  SpinLock(ctx, g.packet + kPacketMutex);
  uint32_t num = ctx.Load32(group + kFanoutNumMembers, SB_SITE());
  if (num >= kFanoutMaxMembers) {
    SpinUnlock(ctx, g.packet + kPacketMutex);
    return kENOMEM;
  }
  ctx.Store32(group + kFanoutArr + 4 * num, sk, SB_SITE());
  ctx.Store32(group + kFanoutNumMembers, num + 1, SB_SITE());
  ctx.Store32(sk + kSockProtoData, group, SB_SITE());
  ctx.Store32(sk + kSockFanoutSlot, num, SB_SITE());
  SpinUnlock(ctx, g.packet + kPacketMutex);
  return 0;
}

int64_t FanoutUnlink(Ctx& ctx, const KernelGlobals& g, GuestAddr sk) {
  GuestAddr group = ctx.Load32(sk + kSockProtoData, SB_SITE());
  if (group == kGuestNull) {
    return kENOENT;
  }
  SpinLock(ctx, g.packet + kPacketMutex);
  uint32_t num = ctx.Load32(group + kFanoutNumMembers, SB_SITE());
  // Find sk's slot, move the last member into it, shrink — all PLAIN stores under the
  // mutex; the lockless demux reader can observe any intermediate state (issue #17 writer).
  for (uint32_t i = 0; i < num; i++) {
    GuestAddr member = ctx.Load32(group + kFanoutArr + 4 * i, SB_SITE());
    if (member == sk) {
      GuestAddr last = ctx.Load32(group + kFanoutArr + 4 * (num - 1), SB_SITE());
      ctx.Store32(group + kFanoutArr + 4 * i, last, SB_SITE());
      ctx.Store32(group + kFanoutArr + 4 * (num - 1), kGuestNull, SB_SITE());
      ctx.Store32(group + kFanoutNumMembers, num - 1, SB_SITE());
      break;
    }
  }
  ctx.Store32(sk + kSockProtoData, kGuestNull, SB_SITE());
  SpinUnlock(ctx, g.packet + kPacketMutex);
  return 0;
}

int64_t PacketSendmsg(Ctx& ctx, const KernelGlobals& g, GuestAddr sk, uint32_t len) {
  GuestAddr group = ctx.Load32(sk + kSockProtoData, SB_SITE());
  if (group == kGuestNull) {
    // Not in a fanout group: plain device transmit.
    uint32_t ifindex = ctx.Load32(sk + kSockBoundIf, SB_SITE());
    GuestAddr dev = DevGetByIndex(ctx, g, ifindex);
    uint32_t tx = ctx.Load32(dev + kDevTxPackets, SB_SITE());
    ctx.Store32(dev + kDevTxPackets, tx + 1, SB_SITE());
    return static_cast<int64_t>(len);
  }
  // fanout_demux_rollover(): PLAIN lockless reads of num_members and the member array —
  // issue #17 reader. If the unlink compaction is mid-flight, the chosen slot may already
  // be cleared, and the member dereference below hits the null page (the harmful outcome).
  uint32_t num = ctx.Load32(group + kFanoutNumMembers, SB_SITE());
  if (num == 0) {
    return kENOTCONN;
  }
  uint32_t idx = len % num;
  GuestAddr member = ctx.Load32(group + kFanoutArr + 4 * idx, SB_SITE());
  uint32_t rx = ctx.Load32(member + kSockRxBytes, SB_SITE());
  ctx.Store32(member + kSockRxBytes, rx + len, SB_SITE());
  return static_cast<int64_t>(len);
}

}  // namespace snowboard
