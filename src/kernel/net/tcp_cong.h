// net/ipv4 congestion control — issue #16 of Table 2 (benign data race).
//
// TcpSetDefaultCongestionControl (sysctl writer) rewrites the global default CA name with a
// chunked copy; TcpSetCongestionControl with an empty name (setsockopt reader) copies the
// default into the socket with plain loads and no shared lock — the
// tcp_set_default_congestion_control()/tcp_set_congestion_control() race. A torn name falls
// back to the first registered CA, so the race is benign.
#ifndef SRC_KERNEL_NET_TCP_CONG_H_
#define SRC_KERNEL_NET_TCP_CONG_H_

#include "src/kernel/kernel.h"
#include "src/sim/engine.h"

namespace snowboard {

// Subsystem block: +0 sysctl_lock, +4 default_name[16], +20 registered[kNumCaNames] ids.
inline constexpr uint32_t kTcpCongLock = 0;
inline constexpr uint32_t kTcpCongDefault = 4;
inline constexpr uint32_t kTcpCongNameBytes = 16;
inline constexpr uint32_t kNumCaNames = 3;  // "cubic", "reno", "bbr".

GuestAddr TcpCongInit(Memory& mem);

// The canonical 16-byte name image for CA `ca_id` (host-side constant data).
const char* TcpCaName(uint32_t ca_id);

// sysctl net.ipv4.tcp_congestion_control writer (issue #16 writer).
int64_t TcpSetDefaultCongestionControl(Ctx& ctx, const KernelGlobals& g, uint32_t ca_id);

// setsockopt(TCP_CONGESTION). ca_id == 0 requests "use the default" and reads the global
// name locklessly (issue #16 reader); otherwise installs the named CA directly.
int64_t TcpSetCongestionControl(Ctx& ctx, const KernelGlobals& g, GuestAddr sk,
                                uint32_t ca_id);

}  // namespace snowboard

#endif  // SRC_KERNEL_NET_TCP_CONG_H_
