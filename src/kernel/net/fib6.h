// net/ipv6 fib6: route-node serial numbers — issue #10 of Table 2 (benign data race).
//
// Fib6GetCookieSafe reads a route node's fn_sernum with a plain lockless load (the reader
// revalidates against the cookie later, so a stale value is harmless); Fib6CleanNode bumps
// the sernum under the table lock. A classic benign race: flagged by any race oracle,
// triaged benign — exactly how Table 2 classifies it.
#ifndef SRC_KERNEL_NET_FIB6_H_
#define SRC_KERNEL_NET_FIB6_H_

#include "src/kernel/kernel.h"
#include "src/sim/engine.h"

namespace snowboard {

// Subsystem block: +0 table_lock, +4 sernum_next, +8 nodes[kNumFib6Nodes].
inline constexpr uint32_t kFib6Lock = 0;
inline constexpr uint32_t kFib6SernumNext = 4;
inline constexpr uint32_t kFib6Nodes = 8;
inline constexpr uint32_t kNumFib6Nodes = 4;

// Route node (static, 16 bytes): +0 fn_sernum, +4 cookie, +8 refcount.
inline constexpr uint32_t kFib6NodeSernum = 0;
inline constexpr uint32_t kFib6NodeCookie = 4;
inline constexpr uint32_t kFib6NodeRefcount = 8;

GuestAddr Fib6Init(Memory& mem);

// fib6_get_cookie_safe(): plain read of fn_sernum (issue #10 reader). Returns the cookie.
int64_t Fib6GetCookieSafe(Ctx& ctx, const KernelGlobals& g, uint32_t node_index);

// fib6_clean_node() over the whole table (route flush): bumps sernums under the table lock
// (issue #10 writer).
int64_t Fib6CleanTree(Ctx& ctx, const KernelGlobals& g);

}  // namespace snowboard

#endif  // SRC_KERNEL_NET_FIB6_H_
