#include "src/kernel/net/fib6.h"

#include "src/sim/site.h"
#include "src/sim/sync.h"

namespace snowboard {

namespace {
constexpr uint32_t kNodeStride = 16;
}  // namespace

GuestAddr Fib6Init(Memory& mem) {
  GuestAddr block = mem.StaticAlloc(kFib6Nodes + 4 * kNumFib6Nodes, 8);
  mem.WriteRaw(block + kFib6Lock, 4, 0);
  mem.WriteRaw(block + kFib6SernumNext, 4, 1);
  for (uint32_t i = 0; i < kNumFib6Nodes; i++) {
    GuestAddr node = mem.StaticAlloc(kNodeStride, 8);
    mem.WriteRaw(block + kFib6Nodes + 4 * i, 4, node);
    mem.WriteRaw(node + kFib6NodeSernum, 4, 1);
    mem.WriteRaw(node + kFib6NodeCookie, 4, 0x60 + i);
    mem.WriteRaw(node + kFib6NodeRefcount, 4, 1);
  }
  return block;
}

int64_t Fib6GetCookieSafe(Ctx& ctx, const KernelGlobals& g, uint32_t node_index) {
  GuestAddr node =
      ctx.Load32(g.fib6 + kFib6Nodes + 4 * (node_index % kNumFib6Nodes), SB_SITE());
  // Issue #10 reader: plain lockless read; the caller revalidates, so staleness is benign.
  uint32_t sernum = ctx.Load32(node + kFib6NodeSernum, SB_SITE());
  uint32_t cookie = ctx.Load32(node + kFib6NodeCookie, SB_SITE());
  return static_cast<int64_t>((static_cast<uint64_t>(sernum) << 16) | cookie);
}

int64_t Fib6CleanTree(Ctx& ctx, const KernelGlobals& g) {
  SpinLock(ctx, g.fib6 + kFib6Lock);
  uint32_t sernum = ctx.Load32(g.fib6 + kFib6SernumNext, SB_SITE());
  ctx.Store32(g.fib6 + kFib6SernumNext, sernum + 1, SB_SITE());
  for (uint32_t i = 0; i < kNumFib6Nodes; i++) {
    GuestAddr node = ctx.Load32(g.fib6 + kFib6Nodes + 4 * i, SB_SITE());
    // Issue #10 writer: plain store under the table lock (the reader takes no lock).
    ctx.Store32(node + kFib6NodeSernum, sernum + 1, SB_SITE());
  }
  SpinUnlock(ctx, g.fib6 + kFib6Lock);
  return 0;
}

}  // namespace snowboard
