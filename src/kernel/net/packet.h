// net/packet: AF_PACKET fanout groups — issue #17 of Table 2.
//
// FanoutDemuxRollover (run from packet sendmsg's demux) reads the group's member count and
// slot array with PLAIN lockless loads, while FanoutUnlink (socket close / explicit leave)
// compacts the array under the fanout mutex — the fanout_demux_rollover()/__fanout_unlink()
// data race (fixed upstream by converting the accesses to READ_ONCE/WRITE_ONCE, commit
// 94f633ea).
#ifndef SRC_KERNEL_NET_PACKET_H_
#define SRC_KERNEL_NET_PACKET_H_

#include "src/kernel/kernel.h"
#include "src/sim/engine.h"

namespace snowboard {

// Subsystem block: +0 fanout_mutex, +4 group[kNumFanoutGroups].
inline constexpr uint32_t kPacketMutex = 0;
inline constexpr uint32_t kPacketGroups = 4;
inline constexpr uint32_t kNumFanoutGroups = 2;

// Fanout group (static, 28 bytes): +0 id, +4 num_members, +8 arr[kFanoutMaxMembers].
inline constexpr uint32_t kFanoutId = 0;
inline constexpr uint32_t kFanoutNumMembers = 4;
inline constexpr uint32_t kFanoutArr = 8;
inline constexpr uint32_t kFanoutMaxMembers = 4;

GuestAddr PacketInit(Memory& mem);

// setsockopt(PACKET_FANOUT): joins `sk` to group `group_id` (under the fanout mutex).
int64_t FanoutAdd(Ctx& ctx, const KernelGlobals& g, GuestAddr sk, uint32_t group_id);

// __fanout_unlink(): removes `sk` from its group, compacting the array — issue #17 writer.
// Called from packet-socket close and from the explicit leave sockopt.
int64_t FanoutUnlink(Ctx& ctx, const KernelGlobals& g, GuestAddr sk);

// sendmsg() on a packet socket: demuxes the frame to a member via rollover — issue #17
// reader (plain loads of num_members and the slot array).
int64_t PacketSendmsg(Ctx& ctx, const KernelGlobals& g, GuestAddr sk, uint32_t len);

}  // namespace snowboard

#endif  // SRC_KERNEL_NET_PACKET_H_
