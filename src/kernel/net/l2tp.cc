#include "src/kernel/net/l2tp.h"

#include "src/kernel/kalloc.h"
#include "src/kernel/klist.h"
#include "src/kernel/net/netdev.h"
#include "src/sim/site.h"
#include "src/sim/sync.h"

namespace snowboard {

GuestAddr L2tpInit(Memory& mem) {
  GuestAddr l2tp = mem.StaticAlloc(12, 8);
  mem.WriteRaw(l2tp + kL2tpListLock, 4, 0);
  mem.WriteRaw(l2tp + kL2tpListHead, 4, 0);
  mem.WriteRaw(l2tp + kL2tpCount, 4, 0);
  return l2tp;
}

GuestAddr L2tpTunnelRegister(Ctx& ctx, const KernelGlobals& g, uint32_t tunnel_id,
                             GuestAddr sk) {
  GuestAddr l2tp = g.l2tp;
  GuestAddr tunnel = Kmalloc(ctx, g.kheap, kTunnelStructSize);  // Zeroed: sock == 0.
  if (tunnel == kGuestNull) {
    return kGuestNull;
  }
  ctx.Store32(tunnel + kTunnelId, tunnel_id, SB_SITE());
  ctx.Store32(tunnel + kTunnelRefcount, 1, SB_SITE());  // refcount_set before publish.

  // ➊ Publish: spin_lock_bh(&l2tp_tunnel_list_lock); list_add_rcu(&tunnel->list, ...).
  // The tunnel becomes visible to l2tp_tunnel_get() HERE, with sock still zero.
  SpinLock(ctx, l2tp + kL2tpListLock);
  ListAddRcu(ctx, l2tp + kL2tpListHead, tunnel, kTunnelNext, SB_SITE());
  uint32_t count = ctx.Load32(l2tp + kL2tpCount, SB_SITE());
  ctx.Store32(l2tp + kL2tpCount, count + 1, SB_SITE());
  SpinUnlock(ctx, l2tp + kL2tpListLock);

  // ... encap setup between publish and sock initialization (the vulnerability window the
  // real l2tp_tunnel_register has after dropping the list lock) ...
  ctx.Store32(tunnel + kTunnelEncap, 1, SB_SITE());
  ctx.Store32(tunnel + kTunnelTxErrors, 0, SB_SITE());

  // ➋ Late initialization: tunnel->sock = sk. Readers that fetched the tunnel before this
  // store observe sock == 0. The store is WRITE_ONCE-style (marked): issue #12 is an order
  // violation with NO data race — "memory accesses are synchronized" (§5.2 Case 2) — so the
  // race oracle must stay silent and only the panic oracle can catch it.
  ctx.Store(tunnel + kTunnelSock, 4, sk, SB_SITE(), /*marked_atomic=*/true);
  return tunnel;
}

GuestAddr L2tpTunnelGet(Ctx& ctx, const KernelGlobals& g, uint32_t tunnel_id) {
  GuestAddr l2tp = g.l2tp;
  RcuReadLock(ctx, g.rcu_readers);
  GuestAddr cur = ListFirstRcu(ctx, l2tp + kL2tpListHead, SB_SITE());  // ➌
  while (cur != kGuestNull) {
    uint32_t id = ctx.Load32(cur + kTunnelId, SB_SITE());
    if (id == tunnel_id) {
      // tunnel_inc_refcount(): refcount_t is atomic in Linux.
      ctx.FetchAdd32(cur + kTunnelRefcount, 1, SB_SITE());
      RcuReadUnlock(ctx, g.rcu_readers);
      return cur;
    }
    cur = ListNextRcu(ctx, cur, kTunnelNext, SB_SITE());
  }
  RcuReadUnlock(ctx, g.rcu_readers);
  return kGuestNull;
}

int64_t PppoL2tpConnect(Ctx& ctx, const KernelGlobals& g, GuestAddr sk, uint32_t tunnel_id) {
  // The tunnel id is user-controlled (connect() argument) — §5.2 Case 2.
  GuestAddr tunnel = L2tpTunnelGet(ctx, g, tunnel_id);
  if (tunnel == kGuestNull) {
    tunnel = L2tpTunnelRegister(ctx, g, tunnel_id, sk);
    if (tunnel == kGuestNull) {
      return kENOMEM;
    }
  }
  ctx.Store32(sk + kSockProtoData, tunnel, SB_SITE());
  return 0;
}

int64_t L2tpXmit(Ctx& ctx, const KernelGlobals& g, GuestAddr sk, uint32_t len) {
  GuestAddr tunnel = ctx.Load32(sk + kSockProtoData, SB_SITE());
  if (tunnel == kGuestNull) {
    return kENOTCONN;
  }
  // l2tp_xmit_core(): struct sock *sk = tunnel->sock; bh_lock_sock(sk). ➍
  // If the registering thread has not reached ➋, tunnel_sk is 0 and the lock access below
  // touches the null page: the issue #12 kernel panic. READ_ONCE-style load: no data race.
  GuestAddr tunnel_sk = static_cast<GuestAddr>(
      ctx.Load(tunnel + kTunnelSock, 4, SB_SITE(), /*marked_atomic=*/true));
  // bh_lock_sock(sk) is a macro in Linux, so the faulting access is attributed to
  // l2tp_xmit_core itself; mirror that by checking a sock field inline before locking it
  // (the sock_owned_by_user()-style peek).
  ctx.Load32(tunnel_sk + kSockPeer, SB_SITE());
  SpinLock(ctx, tunnel_sk + kSockLock);  // bh_lock_sock(sk).
  uint32_t tx = ctx.Load32(tunnel_sk + kSockTxBytes, SB_SITE());
  ctx.Store32(tunnel_sk + kSockTxBytes, tx + len, SB_SITE());
  SpinUnlock(ctx, tunnel_sk + kSockLock);
  return static_cast<int64_t>(len);
}

}  // namespace snowboard
