#include "src/kernel/syscalls.h"

#include "src/kernel/fs/configfs.h"
#include "src/kernel/fs/sbfs.h"
#include "src/kernel/fs/vfs.h"
#include "src/kernel/ipc/msg.h"
#include "src/kernel/net/fib6.h"
#include "src/kernel/net/l2tp.h"
#include "src/kernel/net/netdev.h"
#include "src/kernel/net/packet.h"
#include "src/kernel/net/tcp_cong.h"
#include "src/kernel/task.h"
#include "src/sim/site.h"
#include "src/sim/sync.h"

namespace snowboard {

namespace {

// Fetches the socket object behind `fd`, or kGuestNull if the fd is not a socket.
GuestAddr SockFromFd(Ctx& ctx, const KernelGlobals& g, int fd) {
  GuestAddr file = FdGet(ctx, ctx.current_task, fd);
  if (file == kGuestNull) {
    return kGuestNull;
  }
  if (ctx.Load32(file + kFileType, SB_SITE()) != kFileSocket) {
    return kGuestNull;
  }
  return ctx.Load32(file + kFileObj, SB_SITE());
}

int64_t SysSocket(Ctx& ctx, const KernelGlobals& g, uint32_t family, uint32_t proto) {
  switch (family) {
    case kAfInet:
    case kAfInet6:
    case kAfPacket:
    case kPxProtoOl2tp:
      break;
    default:
      family = kAfInet;
  }
  GuestAddr sk = SockAlloc(ctx, g, family, proto);
  if (sk == kGuestNull) {
    return kENOMEM;
  }
  GuestAddr file = FileAlloc(ctx, g, kFileSocket, sk);
  if (file == kGuestNull) {
    return kENOMEM;
  }
  int fd = FdAlloc(ctx, ctx.current_task, file);
  if (fd < 0) {
    return kEMFILE;
  }
  return fd;
}

int64_t SysConnect(Ctx& ctx, const KernelGlobals& g, int fd, uint32_t arg) {
  GuestAddr sk = SockFromFd(ctx, g, fd);
  if (sk == kGuestNull) {
    return kEBADF;
  }
  uint32_t family = ctx.Load32(sk + kSockFamily, SB_SITE());
  switch (family) {
    case kPxProtoOl2tp:
      // The Figure 1 path: tunnel id taken from the connect() argument.
      return PppoL2tpConnect(ctx, g, sk, (arg & 0x3) + 1);
    case kAfInet6:
      // Route lookup validates the node cookie — issue #10 reader.
      return Fib6GetCookieSafe(ctx, g, arg) >= 0 ? 0 : kEINVAL;
    default:
      ctx.Store32(sk + kSockPeer, arg, SB_SITE());
      return 0;
  }
}

int64_t SysSendmsg(Ctx& ctx, const KernelGlobals& g, int fd, uint32_t len) {
  GuestAddr sk = SockFromFd(ctx, g, fd);
  if (sk == kGuestNull) {
    return kEBADF;
  }
  len = (len % 2048) + 1;
  uint32_t family = ctx.Load32(sk + kSockFamily, SB_SITE());
  switch (family) {
    case kPxProtoOl2tp:
      return L2tpXmit(ctx, g, sk, len);  // Issue #12 reader path.
    case kAfPacket:
      return PacketSendmsg(ctx, g, sk, len);  // Issue #17 reader.
    case kAfInet6:
      return Rawv6SendHdrinc(ctx, g, sk, len);  // Issue #7 reader.
    default:
      return TcpSendmsg(ctx, g, sk, len);
  }
}

int64_t SysRecvmsg(Ctx& ctx, const KernelGlobals& g, int fd) {
  GuestAddr sk = SockFromFd(ctx, g, fd);
  if (sk == kGuestNull) {
    return kEBADF;
  }
  return static_cast<int64_t>(ctx.Load32(sk + kSockRxBytes, SB_SITE()));
}

int64_t SysGetsockname(Ctx& ctx, const KernelGlobals& g, int fd) {
  GuestAddr sk = SockFromFd(ctx, g, fd);
  if (sk == kGuestNull) {
    return kEBADF;
  }
  uint32_t family = ctx.Load32(sk + kSockFamily, SB_SITE());
  if (family == kAfPacket) {
    return PacketGetname(ctx, g, sk);  // Issue #8 reader.
  }
  return static_cast<int64_t>(ctx.Load32(sk + kSockBoundIf, SB_SITE()));
}

int64_t SysSetsockopt(Ctx& ctx, const KernelGlobals& g, int fd, uint32_t opt, uint32_t val) {
  GuestAddr sk = SockFromFd(ctx, g, fd);
  if (sk == kGuestNull) {
    return kEBADF;
  }
  uint32_t family = ctx.Load32(sk + kSockFamily, SB_SITE());
  switch (opt) {
    case kSoPacketFanout:
      if (family != kAfPacket) {
        return kEINVAL;
      }
      return FanoutAdd(ctx, g, sk, val);
    case kSoPacketFanoutLeave:
      if (family != kAfPacket) {
        return kEINVAL;
      }
      return FanoutUnlink(ctx, g, sk);  // Issue #17 writer.
    case kSoTcpCongestion:
      if (family != kAfInet) {
        return kEINVAL;
      }
      return TcpSetCongestionControl(ctx, g, sk, val % kNumCaNames);  // #16 reader if 0.
    case kSoRcvbuf:
      ctx.Store32(sk + kSockRxBytes, val & 0xFFFF, SB_SITE());
      return 0;
    default:
      return kEINVAL;
  }
}

int64_t SysCloseSock(Ctx& ctx, const KernelGlobals& g, int fd) {
  // Socket close must run the fanout unlink first (the paper's #17 writer fires from the
  // socket teardown path).
  GuestAddr sk = SockFromFd(ctx, g, fd);
  if (sk != kGuestNull) {
    uint32_t family = ctx.Load32(sk + kSockFamily, SB_SITE());
    if (family == kAfPacket &&
        ctx.Load32(sk + kSockProtoData, SB_SITE()) != kGuestNull) {
      FanoutUnlink(ctx, g, sk);
    }
  }
  return VfsClose(ctx, g, fd);
}

}  // namespace

const char* SyscallName(uint32_t nr) {
  static constexpr const char* kNames[kNumSyscalls] = {
      "open",    "close",       "read",    "write",      "ftruncate",  "rename",  "ioctl",
      "fadvise", "socket",      "connect", "bind",       "sendmsg",    "recvmsg",
      "getsockname", "setsockopt", "msgget", "msgctl",   "msgsnd",     "sysctl",  "mkdir",
      "rmdir",   "dup",         "fstat",   "getdents"};
  return nr < kNumSyscalls ? kNames[nr] : "<bad-syscall>";
}

int64_t DoSyscall(Ctx& ctx, const KernelGlobals& g, uint32_t nr, const int64_t args[4]) {
  ctx.OnSyscallEntry();
  const uint32_t a0 = static_cast<uint32_t>(args[0]);
  const uint32_t a1 = static_cast<uint32_t>(args[1]);
  const uint32_t a2 = static_cast<uint32_t>(args[2]);
  const int fd0 = static_cast<int>(args[0]);

  switch (nr) {
    case kSysOpen:
      return VfsOpen(ctx, g, a0 % kNumPaths, a1);
    case kSysClose:
      return SysCloseSock(ctx, g, fd0);
    case kSysRead:
      return VfsRead(ctx, g, fd0, a1);
    case kSysWrite:
      return VfsWrite(ctx, g, fd0, a1, a2);
    case kSysFtruncate:
      return VfsFtruncate(ctx, g, fd0, a1);
    case kSysRename:
      return VfsRename(ctx, g, a0 % kNumPaths, a1 % kNumPaths);
    case kSysIoctl:
      return VfsIoctl(ctx, g, fd0, a1, args[2]);
    case kSysFadvise:
      return VfsFadvise(ctx, g, fd0, a1);
    case kSysSocket:
      return SysSocket(ctx, g, a0, a1);
    case kSysConnect:
      return SysConnect(ctx, g, fd0, a1);
    case kSysBind: {
      GuestAddr sk = SockFromFd(ctx, g, fd0);
      if (sk == kGuestNull) {
        return kEBADF;
      }
      ctx.Store32(sk + kSockBoundIf, a1 % kNumNetdevs, SB_SITE());
      return 0;
    }
    case kSysSendmsg:
      return SysSendmsg(ctx, g, fd0, a1);
    case kSysRecvmsg:
      return SysRecvmsg(ctx, g, fd0);
    case kSysGetsockname:
      return SysGetsockname(ctx, g, fd0);
    case kSysSetsockopt:
      return SysSetsockopt(ctx, g, fd0, a1, a2);
    case kSysMsgget:
      return MsgGet(ctx, g, a0);
    case kSysMsgctl:
      return MsgCtl(ctx, g, a0, a1 % 3 == 0 ? kIpcRmid : kIpcStat);
    case kSysMsgsnd:
      return MsgSnd(ctx, g, a0, (a1 % 512) + 1);
    case kSysSysctl:
      if (a0 % 1 == kSysctlTcpCongestion) {
        return TcpSetDefaultCongestionControl(ctx, g, a1);  // Issue #16 writer.
      }
      return kEINVAL;
    case kSysMkdir:
      return ConfigfsMkdir(ctx, g, (a0 % 3) + 1);
    case kSysRmdir:
      return ConfigfsRmdir(ctx, g, (a0 % 3) + 1);  // Issue #11 writer.
    case kSysDup: {
      GuestAddr file = FdGet(ctx, ctx.current_task, fd0);
      if (file == kGuestNull) {
        return kEBADF;
      }
      int fd = FdAlloc(ctx, ctx.current_task, file);
      return fd < 0 ? kEMFILE : fd;
    }
    case kSysFstat: {
      GuestAddr file = FdGet(ctx, ctx.current_task, fd0);
      if (file == kGuestNull) {
        return kEBADF;
      }
      uint32_t type = ctx.Load32(file + kFileType, SB_SITE());
      GuestAddr obj = ctx.Load32(file + kFileObj, SB_SITE());
      if (type == kFileSbfs) {
        // stat(): size under the inode lock.
        SpinLock(ctx, obj + kInodeLock);
        int64_t size = ctx.Load32(obj + kInodeSize, SB_SITE());
        SpinUnlock(ctx, obj + kInodeLock);
        return size;
      }
      if (type == kFileSocket) {
        return static_cast<int64_t>(ctx.Load32(obj + kSockFamily, SB_SITE()));
      }
      return static_cast<int64_t>(type);
    }
    case kSysGetdents: {
      GuestAddr file = FdGet(ctx, ctx.current_task, fd0);
      if (file == kGuestNull) {
        return kEBADF;
      }
      if (ctx.Load32(file + kFileType, SB_SITE()) != kFileConfigfs) {
        return kEINVAL;
      }
      return ConfigfsReaddir(ctx, g);  // Issue #11 reader (second path).
    }
    default:
      return kEINVAL;
  }
}

}  // namespace snowboard
