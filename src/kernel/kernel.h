// The mini-kernel: global layout and the booted-VM bundle.
//
// This is the reproduction's stand-in for the Linux guest the paper tests. Requirements that
// shaped it:
//   * ALL mutable kernel state lives in the guest memory arena, so the paper's fixed initial
//     kernel state (§4.1) is a snapshot taken right after Boot() and restored by memcpy
//     before every sequential profile and every concurrent-test trial.
//   * Every subsystem mirrors a Linux subsystem in which Table 2 reports an issue, and seeds
//     a concurrency bug of the same class caused by the same synchronization mistake (see
//     DESIGN.md §2 for the issue ↔ subsystem map and snowboard/report.h for the catalog).
//   * Kernel code is written in a deliberately C-like style against Ctx's traced accessors —
//     structs are guest addresses plus field-offset constants — because guest state must be
//     arena-resident and every field access must be a schedulable traced instruction.
//
// The KernelGlobals struct records the guest addresses of boot-allocated objects. It is
// immutable after boot (the addresses are part of the snapshot layout), so keeping it in a
// host-side struct is safe and keeps subsystem code readable.
#ifndef SRC_KERNEL_KERNEL_H_
#define SRC_KERNEL_KERNEL_H_

#include "src/sim/engine.h"
#include "src/sim/memory.h"
#include "src/sim/types.h"

namespace snowboard {

// errno-style return codes for the syscall layer.
inline constexpr int64_t kEPERM = -1;
inline constexpr int64_t kENOENT = -2;
inline constexpr int64_t kEIO = -5;
inline constexpr int64_t kEBADF = -9;
inline constexpr int64_t kENOMEM = -12;
inline constexpr int64_t kEBUSY = -16;
inline constexpr int64_t kEEXIST = -17;
inline constexpr int64_t kEINVAL = -22;
inline constexpr int64_t kEMFILE = -24;
inline constexpr int64_t kENOTCONN = -107;

// Maximum vCPUs a concurrent test can use. Two is the paper's configuration; the third
// supports the §6 "Testing Thread Count" extension (1 writer + 2 readers / PMC chains).
inline constexpr int kMaxTestVcpus = 3;

struct KernelGlobals {
  // --- Core. ---
  GuestAddr rcu_readers = 0;   // RCU read-side counter cell (sync.h RCU primitives).
  GuestAddr kheap = 0;         // kalloc heap descriptor (kalloc.h).
  GuestAddr tasks[kMaxTestVcpus] = {0, 0, 0};  // Per-vCPU task structs (task.h).

  // --- Subsystem anchors (each points at that subsystem's boot-allocated global block). ---
  GuestAddr rtnl_lock = 0;     // Global networking mutex (rtnl_lock analog).
  GuestAddr netdevs = 0;       // net/netdev.h: device table.
  GuestAddr l2tp = 0;          // net/l2tp.h: tunnel registry.
  GuestAddr packet = 0;        // net/packet.h: fanout groups.
  GuestAddr fib6 = 0;          // net/fib6.h: route table.
  GuestAddr tcp_cong = 0;      // net/tcp_cong.h: congestion-control globals.
  GuestAddr sbfs = 0;          // fs/sbfs.h: superblock + inode table.
  GuestAddr configfs = 0;      // fs/configfs.h: directory tree.
  GuestAddr blockdevs = 0;     // block/blockdev.h: block devices.
  GuestAddr msgipc = 0;        // ipc/msg.h: message-queue namespace (rhashtable-backed).
  GuestAddr tty = 0;           // tty/serial.h: serial ports.
  GuestAddr sndcard = 0;       // sound/ctl.h: sound card.
};

// A booted guest: engine + kernel layout + the post-boot snapshot.
//
// One KernelVm per worker thread (it is not internally synchronized); the layout (and hence
// KernelGlobals) is identical across instances because boot is deterministic.
class KernelVm {
 public:
  KernelVm();

  Engine& engine() { return engine_; }
  const KernelGlobals& globals() const { return globals_; }

  // Rewinds guest memory to the fixed initial kernel state (§4.1). Called by the profiler
  // before each sequential test and by the explorer before each trial (Algorithm 2 line 8).
  // Uses the dirty-page delta path (Memory::RestoreDirty) unless the process-wide toggle
  // below says otherwise; either way the resulting memory is byte-identical, so every
  // consumer (profiling, Algorithm 2, SKI/baseline schedulers, replay) behaves the same.
  // Copied bytes/pages and wall time are accounted in GlobalPipelineCounters().
  void RestoreSnapshot();

  // Re-captures the CURRENT guest memory as the fixed initial state. Ablation hook: lets a
  // bench patch the booted image (e.g. flip the rhashtable fetch mode, Figure 4's
  // "compiler option") and explore from the patched state.
  void RefreshSnapshot() { snapshot_ = engine_.mem().TakeSnapshot(); }

  // Wall-clock seconds this VM has spent in RestoreSnapshot (diagnostic; the process-wide
  // aggregate lives in GlobalPipelineCounters().snapshot_restore_nanos).
  double restore_seconds() const { return restore_seconds_; }

  // Process-wide toggle between the delta path (default) and the reference full-copy path.
  // The pipeline determinism harness asserts outputs are byte-identical either way.
  static void SetDeltaRestoreEnabled(bool enabled);
  static bool DeltaRestoreEnabled();

 private:
  Engine engine_;
  KernelGlobals globals_;
  Memory::Snapshot snapshot_;
  double restore_seconds_ = 0;
};

// Boots the kernel inside `engine` (runs all subsystem init), returning the layout. Used by
// KernelVm; exposed for tests that need a custom engine.
KernelGlobals BootKernel(Engine& engine);

}  // namespace snowboard

#endif  // SRC_KERNEL_KERNEL_H_
