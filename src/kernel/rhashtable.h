// rhashtable: the resizable-hashtable library (lib/rhashtable.c analog).
//
// This carries issue #1 of Table 2 (Figure 4): Linux's rht_ptr() used a GCC
// conditional-with-omitted-operand, `(*bkt & ~BIT(0)) ?: bkt`, assuming the bucket word is
// read once — but at -O2 the compiler emits TWO loads (a testl for the branch, then a mov to
// produce the value). A writer executing rht_assign_unlock() can zero the bucket *between*
// the two fetches, so the reader branches on a non-null value yet dereferences a null one:
// "BUG: unable to handle page fault for address". The fix (commit 1748f6a2) made the read a
// single READ_ONCE.
//
// Both "compiler options" from Figure 4 are implemented: kRhtDoubleFetch (gcc -O2, buggy) and
// kRhtSingleFetch (gcc -O1 -fno-tree-dominator-opts -fno-tree-fre, safe). The mode is a field
// of the table so benches can boot either kernel.
//
// Bucket word format (as in Linux 5.3+): entry address with bit 0 as the bucket spin-lock
// bit. Readers are RCU lock-free; writers lock the bucket via the bit.
#ifndef SRC_KERNEL_RHASHTABLE_H_
#define SRC_KERNEL_RHASHTABLE_H_

#include "src/sim/engine.h"
#include "src/sim/memory.h"

namespace snowboard {

// Table layout:
//   +0   nbuckets (power of two)
//   +4   nelems
//   +8   key_offset (offset of the u32 key within an entry)
//   +12  fetch_mode (kRhtDoubleFetch | kRhtSingleFetch)
//   +16  buckets[nbuckets]
inline constexpr uint32_t kRhtNbuckets = 0;
inline constexpr uint32_t kRhtNelems = 4;
inline constexpr uint32_t kRhtKeyOffset = 8;
inline constexpr uint32_t kRhtFetchMode = 12;
inline constexpr uint32_t kRhtBuckets = 16;

inline constexpr uint32_t kRhtDoubleFetch = 0;  // Figure 4 "compiler option 2" (default, buggy).
inline constexpr uint32_t kRhtSingleFetch = 1;  // Figure 4 "compiler option 1" (no double fetch).

// Entries are caller structs whose first word is the hash-chain next pointer and whose key
// (u32) sits at key_offset.
inline constexpr uint32_t kRhtEntryNext = 0;

// Boot-time construction.
GuestAddr RhtInit(Memory& mem, uint32_t nbuckets, uint32_t key_offset);

// Guest address of the bucket word for `key`.
GuestAddr RhtBucket(Ctx& ctx, GuestAddr ht, uint32_t key);

// Writer API (locks the bucket bit internally).
void RhtInsert(Ctx& ctx, GuestAddr ht, GuestAddr entry, uint32_t key);
// Removes the entry with `key`; returns its address (unlinked, not freed) or kGuestNull.
GuestAddr RhtRemove(Ctx& ctx, GuestAddr ht, uint32_t key);

// Reader API: RCU lock-free lookup walking the chain and comparing keys — the path that
// performs the buggy rht_ptr double fetch and the memcmp-style key dereference of Figure 4.
// Returns the matching entry or kGuestNull.
GuestAddr RhtLookup(Ctx& ctx, GuestAddr ht, uint32_t key);

// Current element count (marked-atomic read).
uint32_t RhtCount(Ctx& ctx, GuestAddr ht);

}  // namespace snowboard

#endif  // SRC_KERNEL_RHASHTABLE_H_
