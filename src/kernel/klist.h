// Intrusive singly-linked guest lists (list_head analogs, RCU flavored).
//
// A list head is a 4-byte guest cell holding the address of the first node; each node embeds
// a next pointer at a caller-chosen offset. The RCU add publishes via rcu_assign_pointer —
// note that, as in Linux, publication order relative to *other* node fields is entirely the
// caller's responsibility: l2tp (issue #12) publishes before initializing tunnel->sock.
#ifndef SRC_KERNEL_KLIST_H_
#define SRC_KERNEL_KLIST_H_

#include "src/sim/engine.h"
#include "src/sim/site.h"
#include "src/sim/sync.h"

namespace snowboard {

// Inserts node at the front: node->next = *head; rcu_assign(*head, node).
// Caller typically holds the list's write-side lock.
inline void ListAddRcu(Ctx& ctx, GuestAddr head, GuestAddr node, uint32_t next_off,
                       SiteId publish_site) {
  GuestAddr first = ctx.Load32(head, SB_SITE());
  ctx.Store32(node + next_off, first, SB_SITE());
  RcuAssignPointer(ctx, head, node, publish_site);
}

// Removes node from the list; returns false if absent. Caller holds the write-side lock.
inline bool ListDelRcu(Ctx& ctx, GuestAddr head, GuestAddr node, uint32_t next_off) {
  GuestAddr prev_slot = head;
  GuestAddr cur = ctx.Load32(prev_slot, SB_SITE());
  while (cur != kGuestNull) {
    if (cur == node) {
      GuestAddr next = ctx.Load32(cur + next_off, SB_SITE());
      RcuAssignPointer(ctx, prev_slot, next, SB_SITE());
      return true;
    }
    prev_slot = cur + next_off;
    cur = ctx.Load32(prev_slot, SB_SITE());
  }
  return false;
}

// Read-side traversal helper: first node (rcu_dereference of the head).
inline GuestAddr ListFirstRcu(Ctx& ctx, GuestAddr head, SiteId site) {
  return RcuDereference(ctx, head, site);
}

inline GuestAddr ListNextRcu(Ctx& ctx, GuestAddr node, uint32_t next_off, SiteId site) {
  return RcuDereference(ctx, node + next_off, site);
}

}  // namespace snowboard

#endif  // SRC_KERNEL_KLIST_H_
