// mm: page-cache bookkeeping and the fadvise path.
//
// GenericFadvise is the issue #5 reader: for a block device it reads the device readahead
// window with a PLAIN, lockless load, racing BlkdevSetReadahead's locked store (the
// blkdev_ioctl()/generic_fadvise() data race of Table 2).
#ifndef SRC_KERNEL_MM_PAGECACHE_H_
#define SRC_KERNEL_MM_PAGECACHE_H_

#include "src/kernel/kernel.h"
#include "src/sim/engine.h"

namespace snowboard {

enum FadviseAdvice : uint32_t {
  kFadvNormal = 0,
  kFadvSequential = 1,
  kFadvWillneed = 2,
  kFadvDontneed = 3,
};

// fadvise on a block-device file (issue #5 reader path).
int64_t GenericFadviseBdev(Ctx& ctx, const KernelGlobals& g, uint32_t advice);

// fadvise on an sbfs file: page-cache population/drop under the inode lock.
int64_t GenericFadviseInode(Ctx& ctx, const KernelGlobals& g, GuestAddr inode,
                            uint32_t advice);

}  // namespace snowboard

#endif  // SRC_KERNEL_MM_PAGECACHE_H_
