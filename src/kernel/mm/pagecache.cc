#include "src/kernel/mm/pagecache.h"

#include "src/kernel/block/blockdev.h"
#include "src/kernel/fs/sbfs.h"
#include "src/sim/site.h"
#include "src/sim/sync.h"

namespace snowboard {

int64_t GenericFadviseBdev(Ctx& ctx, const KernelGlobals& g, uint32_t advice) {
  GuestAddr bd = g.blockdevs;
  switch (advice) {
    case kFadvNormal:
    case kFadvSequential:
    case kFadvWillneed: {
      // Issue #5 reader: generic_fadvise() reads the readahead state with no lock while
      // blkdev_ioctl() updates it under the device lock — disjoint locksets, data race.
      uint32_t ra = ctx.Load32(bd + kBdRaPages, SB_SITE());
      uint32_t window = advice == kFadvSequential ? ra * 2 : ra;
      // Re-read while sizing the readahead batch (widens the racy window, as the real
      // force_page_cache_readahead loop re-derives state per chunk).
      uint32_t ra_again = ctx.Load32(bd + kBdRaPages, SB_SITE());
      return static_cast<int64_t>(window + ra_again);
    }
    case kFadvDontneed: {
      SpinLock(ctx, bd + kBdLock);
      uint32_t errors = ctx.Load32(bd + kBdIoErrors, SB_SITE());
      SpinUnlock(ctx, bd + kBdLock);
      return static_cast<int64_t>(errors);
    }
    default:
      return kEINVAL;
  }
}

int64_t GenericFadviseInode(Ctx& ctx, const KernelGlobals& g, GuestAddr inode,
                            uint32_t advice) {
  SpinLock(ctx, inode + kInodeLock);
  uint32_t nrpages = ctx.Load32(inode + kInodeNrpages, SB_SITE());
  if (advice == kFadvDontneed) {
    ctx.Store32(inode + kInodeNrpages, 0, SB_SITE());
  } else if (advice == kFadvWillneed) {
    ctx.Store32(inode + kInodeNrpages, nrpages + 1, SB_SITE());
  }
  SpinUnlock(ctx, inode + kInodeLock);
  return static_cast<int64_t>(nrpages);
}

}  // namespace snowboard
