// Kernel boot: constructs every subsystem inside the arena and produces the layout. The
// KernelVm wrapper takes the post-boot snapshot — the paper's fixed initial kernel state.
#include "src/kernel/kernel.h"

#include <atomic>
#include <chrono>

#include "src/kernel/block/blockdev.h"
#include "src/kernel/fs/configfs.h"
#include "src/kernel/fs/sbfs.h"
#include "src/kernel/ipc/msg.h"
#include "src/kernel/kalloc.h"
#include "src/kernel/net/fib6.h"
#include "src/kernel/net/l2tp.h"
#include "src/kernel/net/netdev.h"
#include "src/kernel/net/packet.h"
#include "src/kernel/net/tcp_cong.h"
#include "src/kernel/sound/ctl.h"
#include "src/kernel/task.h"
#include "src/kernel/tty/serial.h"
#include "src/sim/sync.h"
#include "src/util/assert.h"
#include "src/util/counters.h"
#include "src/util/trace.h"

namespace snowboard {

KernelGlobals BootKernel(Engine& engine) {
  Memory& mem = engine.mem();
  KernelGlobals g;

  // Core machinery.
  g.rcu_readers = mem.StaticAlloc(4, 4);
  RcuInit(mem, g.rcu_readers);
  g.kheap = KallocInit(mem, /*heap_bytes=*/192 * 1024);
  for (int i = 0; i < kMaxTestVcpus; i++) {
    g.tasks[i] = TaskInit(mem, /*tid=*/static_cast<uint32_t>(i) + 1);
  }

  // Subsystems.
  g.netdevs = NetdevInit(mem, &g.rtnl_lock);
  g.l2tp = L2tpInit(mem);
  g.packet = PacketInit(mem);
  g.fib6 = Fib6Init(mem);
  g.tcp_cong = TcpCongInit(mem);
  g.sbfs = SbfsInit(mem);
  g.configfs = ConfigfsInit(mem);
  g.blockdevs = BlockDevInit(mem);
  g.msgipc = MsgIpcInit(mem);
  g.tty = TtyInit(mem);
  g.sndcard = SndInit(mem);

  // Pre-populate configfs with the /cfg/a and /cfg/b dirents so lookups from the fixed
  // initial state have something to walk (and rmdir has something to race against).
  for (uint32_t name_id = 1; name_id <= 2; name_id++) {
    GuestAddr dirent = mem.StaticAlloc(kDirentSize, 8);
    GuestAddr inode = mem.StaticAlloc(kCfgInodeSize, 8);
    ConfigfsBootMkdir(mem, g.configfs, dirent, inode, name_id);
  }

  return g;
}

KernelVm::KernelVm() : engine_(1u << 20) {
  ActiveCounters().vm_boots.fetch_add(1, std::memory_order_relaxed);
  globals_ = BootKernel(engine_);
  snapshot_ = engine_.mem().TakeSnapshot();
}

namespace {
// Delta restore defaults ON; the determinism harness and A/B benches flip it off to get
// the reference full-memcpy path.
std::atomic<bool> g_delta_restore_enabled{true};
}  // namespace

void KernelVm::SetDeltaRestoreEnabled(bool enabled) {
  g_delta_restore_enabled.store(enabled, std::memory_order_relaxed);
}

bool KernelVm::DeltaRestoreEnabled() {
  return g_delta_restore_enabled.load(std::memory_order_relaxed);
}

void KernelVm::RestoreSnapshot() {
  TRACE_SPAN("vm.restore");
  auto start = std::chrono::steady_clock::now();
  Memory::RestoreStats stats;
  if (DeltaRestoreEnabled()) {
    stats = engine_.mem().RestoreDirty(snapshot_);
  } else {
    engine_.mem().Restore(snapshot_);
    stats.bytes_copied = engine_.mem().size();
    stats.full = true;
  }
  uint64_t nanos = static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                             std::chrono::steady_clock::now() - start)
                                             .count());
  restore_seconds_ += static_cast<double>(nanos) * 1e-9;

  PipelineCounters& counters = ActiveCounters();
  if (stats.full) {
    counters.snapshot_full_restores.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters.snapshot_delta_restores.fetch_add(1, std::memory_order_relaxed);
    counters.snapshot_restored_pages.fetch_add(stats.dirty_pages, std::memory_order_relaxed);
    counters.snapshot_skipped_pages.fetch_add(stats.skipped_pages, std::memory_order_relaxed);
  }
  counters.snapshot_restored_bytes.fetch_add(stats.bytes_copied, std::memory_order_relaxed);
  counters.snapshot_restore_nanos.fetch_add(nanos, std::memory_order_relaxed);
  TRACE_COUNTER("vm.restore_bytes", stats.bytes_copied);
}

}  // namespace snowboard
