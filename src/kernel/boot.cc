// Kernel boot: constructs every subsystem inside the arena and produces the layout. The
// KernelVm wrapper takes the post-boot snapshot — the paper's fixed initial kernel state.
#include "src/kernel/kernel.h"

#include "src/kernel/block/blockdev.h"
#include "src/kernel/fs/configfs.h"
#include "src/kernel/fs/sbfs.h"
#include "src/kernel/ipc/msg.h"
#include "src/kernel/kalloc.h"
#include "src/kernel/net/fib6.h"
#include "src/kernel/net/l2tp.h"
#include "src/kernel/net/netdev.h"
#include "src/kernel/net/packet.h"
#include "src/kernel/net/tcp_cong.h"
#include "src/kernel/sound/ctl.h"
#include "src/kernel/task.h"
#include "src/kernel/tty/serial.h"
#include "src/sim/sync.h"
#include "src/util/assert.h"

namespace snowboard {

KernelGlobals BootKernel(Engine& engine) {
  Memory& mem = engine.mem();
  KernelGlobals g;

  // Core machinery.
  g.rcu_readers = mem.StaticAlloc(4, 4);
  RcuInit(mem, g.rcu_readers);
  g.kheap = KallocInit(mem, /*heap_bytes=*/192 * 1024);
  for (int i = 0; i < kMaxTestVcpus; i++) {
    g.tasks[i] = TaskInit(mem, /*tid=*/static_cast<uint32_t>(i) + 1);
  }

  // Subsystems.
  g.netdevs = NetdevInit(mem, &g.rtnl_lock);
  g.l2tp = L2tpInit(mem);
  g.packet = PacketInit(mem);
  g.fib6 = Fib6Init(mem);
  g.tcp_cong = TcpCongInit(mem);
  g.sbfs = SbfsInit(mem);
  g.configfs = ConfigfsInit(mem);
  g.blockdevs = BlockDevInit(mem);
  g.msgipc = MsgIpcInit(mem);
  g.tty = TtyInit(mem);
  g.sndcard = SndInit(mem);

  // Pre-populate configfs with the /cfg/a and /cfg/b dirents so lookups from the fixed
  // initial state have something to walk (and rmdir has something to race against).
  for (uint32_t name_id = 1; name_id <= 2; name_id++) {
    GuestAddr dirent = mem.StaticAlloc(kDirentSize, 8);
    GuestAddr inode = mem.StaticAlloc(kCfgInodeSize, 8);
    ConfigfsBootMkdir(mem, g.configfs, dirent, inode, name_id);
  }

  return g;
}

KernelVm::KernelVm() : engine_(1u << 20) {
  globals_ = BootKernel(engine_);
  snapshot_ = engine_.mem().TakeSnapshot();
}

}  // namespace snowboard
