// Task structs: the per-vCPU kernel threads servicing the two test executor processes.
//
// Each task owns an 8 KiB, 8 KiB-aligned kernel stack inside the arena (so the paper's
// ESP-mask stack filter applies verbatim, §4.1.1) and a file-descriptor table. The executor
// sets Ctx::current_task / Ctx::esp before running a test — the CR3-filter analog: the
// profiler only keeps accesses made by the vCPU under test.
#ifndef SRC_KERNEL_TASK_H_
#define SRC_KERNEL_TASK_H_

#include "src/sim/engine.h"
#include "src/sim/memory.h"

namespace snowboard {

inline constexpr uint32_t kMaxFds = 16;

// Task layout:
//   +0   tid
//   +4   stack_base (8 KiB aligned)
//   +8   fds[kMaxFds]  (file object address or 0)
inline constexpr uint32_t kTaskTid = 0;
inline constexpr uint32_t kTaskStackBase = 4;
inline constexpr uint32_t kTaskFds = 8;
inline constexpr uint32_t kTaskSize = kTaskFds + 4 * kMaxFds;

// Boot-time: allocates the task struct and its kernel stack; returns the task address.
GuestAddr TaskInit(Memory& mem, uint32_t tid);

// Installs `task` as the current task of `ctx`, pointing esp at the top of its stack.
void TaskEnter(Ctx& ctx, GuestAddr task);

// FD-table operations (fd is an index into the table; -1 on failure).
int FdAlloc(Ctx& ctx, GuestAddr task, GuestAddr file);
GuestAddr FdGet(Ctx& ctx, GuestAddr task, int fd);
void FdClear(Ctx& ctx, GuestAddr task, int fd);

// A scoped simulated stack frame: kernel functions that keep "locals" in guest memory use
// this to carve them from the task stack, moving Ctx::esp so the profiler's stack filter has
// real work to do (these accesses must be excluded from PMC analysis).
class StackFrame {
 public:
  StackFrame(Ctx& ctx, uint32_t bytes);
  ~StackFrame();
  GuestAddr base() const { return base_; }

  StackFrame(const StackFrame&) = delete;
  StackFrame& operator=(const StackFrame&) = delete;

 private:
  Ctx& ctx_;
  GuestAddr saved_esp_;
  GuestAddr base_;
};

}  // namespace snowboard

#endif  // SRC_KERNEL_TASK_H_
