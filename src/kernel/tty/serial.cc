#include "src/kernel/tty/serial.h"

#include "src/sim/site.h"
#include "src/sim/sync.h"

namespace snowboard {

GuestAddr TtyInit(Memory& mem) {
  GuestAddr tty = mem.StaticAlloc(24, 8);
  mem.WriteRaw(tty + kTtyPortLock, 4, 0);
  mem.WriteRaw(tty + kTtyPortMutex, 4, 0);
  mem.WriteRaw(tty + kTtyCount, 4, 0);
  mem.WriteRaw(tty + kTtyFlags, 4, 0);
  mem.WriteRaw(tty + kTtyLineSpeed, 4, 9600);
  mem.WriteRaw(tty + kTtyXmitChars, 4, 0);
  return tty;
}

int64_t TtyPortOpen(Ctx& ctx, const KernelGlobals& g) {
  GuestAddr tty = g.tty;
  // tty_port_open(): protected by the tty_port lock...
  SpinLock(ctx, tty + kTtyPortLock);
  uint32_t count = ctx.Load32(tty + kTtyCount, SB_SITE());
  ctx.Store32(tty + kTtyCount, count + 1, SB_SITE());
  // ...but the autoconfig path uses the UART mutex for the SAME flags word (issue #14).
  uint32_t flags = ctx.Load32(tty + kTtyFlags, SB_SITE());
  if ((flags & kAsyncInitialized) == 0) {
    ctx.Store32(tty + kTtyLineSpeed, 9600, SB_SITE());
    ctx.Store32(tty + kTtyFlags, flags | kAsyncInitialized, SB_SITE());
  }
  SpinUnlock(ctx, tty + kTtyPortLock);
  return 0;
}

int64_t TtyPortClose(Ctx& ctx, const KernelGlobals& g) {
  GuestAddr tty = g.tty;
  SpinLock(ctx, tty + kTtyPortLock);
  uint32_t count = ctx.Load32(tty + kTtyCount, SB_SITE());
  if (count > 0) {
    ctx.Store32(tty + kTtyCount, count - 1, SB_SITE());
  }
  SpinUnlock(ctx, tty + kTtyPortLock);
  return 0;
}

int64_t UartDoAutoconfig(Ctx& ctx, const KernelGlobals& g, uint32_t baud) {
  GuestAddr tty = g.tty;
  // uart_do_autoconfig(): holds the UART per-port MUTEX, not the tty_port lock — disjoint
  // locksets with TtyPortOpen (issue #14 writer).
  SpinLock(ctx, tty + kTtyPortMutex);
  uint32_t flags = ctx.Load32(tty + kTtyFlags, SB_SITE());
  ctx.Store32(tty + kTtyFlags, (flags & ~kAsyncInitialized) | kAsyncAutoconf, SB_SITE());
  ctx.Store32(tty + kTtyLineSpeed, baud == 0 ? 115200 : baud, SB_SITE());
  ctx.Store32(tty + kTtyFlags, flags | kAsyncAutoconf | kAsyncInitialized, SB_SITE());
  SpinUnlock(ctx, tty + kTtyPortMutex);
  return 0;
}

int64_t TtyWrite(Ctx& ctx, const KernelGlobals& g, uint32_t len) {
  GuestAddr tty = g.tty;
  SpinLock(ctx, tty + kTtyPortLock);
  uint32_t chars = ctx.Load32(tty + kTtyXmitChars, SB_SITE());
  ctx.Store32(tty + kTtyXmitChars, chars + len, SB_SITE());
  SpinUnlock(ctx, tty + kTtyPortLock);
  return static_cast<int64_t>(len);
}

int64_t TtyRead(Ctx& ctx, const KernelGlobals& g) {
  return static_cast<int64_t>(ctx.Load32(g.tty + kTtyLineSpeed, SB_SITE()));
}

}  // namespace snowboard
