// tty/serial: the serial port — issue #14 of Table 2.
//
// TtyPortOpen manipulates port->flags while holding the TTY-port lock; UartDoAutoconfig
// (TIOCSSERIAL) rewrites the same flags while holding the UART's per-port mutex. Two locks,
// no mutual exclusion — the tty_port_open()/uart_do_autoconfig() data race.
#ifndef SRC_KERNEL_TTY_SERIAL_H_
#define SRC_KERNEL_TTY_SERIAL_H_

#include "src/kernel/kernel.h"
#include "src/sim/engine.h"

namespace snowboard {

// Port block (one port, ttyS0):
//   +0  port_lock   (tty_port lock)
//   +4  port_mutex  (uart mutex — a DIFFERENT lock)
//   +8  count
//   +12 flags       (bit0 = ASYNC_INITIALIZED, bit1 = ASYNC_AUTOCONF)
//   +16 line_speed
//   +20 xmit_chars
inline constexpr uint32_t kTtyPortLock = 0;
inline constexpr uint32_t kTtyPortMutex = 4;
inline constexpr uint32_t kTtyCount = 8;
inline constexpr uint32_t kTtyFlags = 12;
inline constexpr uint32_t kTtyLineSpeed = 16;
inline constexpr uint32_t kTtyXmitChars = 20;

inline constexpr uint32_t kAsyncInitialized = 1u << 0;
inline constexpr uint32_t kAsyncAutoconf = 1u << 1;

GuestAddr TtyInit(Memory& mem);

// open("/dev/ttyS0"): tty_port_open — reads/writes flags under the PORT lock (#14 reader).
int64_t TtyPortOpen(Ctx& ctx, const KernelGlobals& g);
// close: drops the open count.
int64_t TtyPortClose(Ctx& ctx, const KernelGlobals& g);
// ioctl(TIOCSSERIAL): uart_do_autoconfig — rewrites flags under the UART mutex (#14 writer).
int64_t UartDoAutoconfig(Ctx& ctx, const KernelGlobals& g, uint32_t baud);
// write(): transmit a character under the port lock.
int64_t TtyWrite(Ctx& ctx, const KernelGlobals& g, uint32_t len);
// read(): current line speed.
int64_t TtyRead(Ctx& ctx, const KernelGlobals& g);

}  // namespace snowboard

#endif  // SRC_KERNEL_TTY_SERIAL_H_
