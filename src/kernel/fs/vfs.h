// VFS: file objects, the path namespace, and read/write/ioctl dispatch.
//
// The syscall surface the fuzzer drives is intentionally Linux-shaped: open/close/read/
// write/ftruncate/rename/ioctl/fadvise over a small fixed path namespace covering every
// subsystem that carries a seeded Table 2 issue (sbfs files, the block device, configfs
// directories, the serial tty, and the sound control device).
#ifndef SRC_KERNEL_FS_VFS_H_
#define SRC_KERNEL_FS_VFS_H_

#include "src/kernel/kernel.h"
#include "src/sim/engine.h"

namespace snowboard {

// File object (kmalloc'd, 16 bytes):
//   +0  type (FileType)
//   +4  obj  (inode / blockdev / sock / port / card address)
//   +8  pos
//   +12 flags
inline constexpr uint32_t kFileType = 0;
inline constexpr uint32_t kFileObj = 4;
inline constexpr uint32_t kFilePos = 8;
inline constexpr uint32_t kFileFlags = 12;
inline constexpr uint32_t kFileSize = 16;

enum FileType : uint32_t {
  kFileFree = 0,
  kFileSbfs = 1,
  kFileBlockDev = 2,
  kFileSocket = 3,
  kFileConfigfs = 4,
  kFileTty = 5,
  kFileSnd = 6,
};

// Path namespace (host-side, immutable): ids the fuzzer uses as open()/rename() arguments.
enum PathKind : uint32_t {
  kPathSbfsFile = 0,
  kPathBlockDev,
  kPathConfigDir,
  kPathTty,
  kPathSnd,
};

struct PathEntry {
  PathKind kind;
  uint32_t index;  // Subsystem-local index (inode number, dirent name id, ...).
  const char* name;
};

inline constexpr PathEntry kPaths[] = {
    {kPathSbfsFile, 1, "/f0"},      // 0
    {kPathSbfsFile, 2, "/f1"},      // 1
    {kPathSbfsFile, 0, "/boot"},    // 2 (the boot-loader inode, SWAP_BOOT target)
    {kPathBlockDev, 0, "/dev/sbd0"},  // 3
    {kPathConfigDir, 1, "/cfg/a"},  // 4
    {kPathConfigDir, 2, "/cfg/b"},  // 5
    {kPathTty, 0, "/dev/ttyS0"},    // 6
    {kPathSnd, 0, "/dev/snd"},      // 7
    {kPathSbfsFile, 3, "/f2"},      // 8
};
inline constexpr uint32_t kNumPaths = sizeof(kPaths) / sizeof(kPaths[0]);

// Allocates a file object of `type` bound to `obj`. Returns kGuestNull on OOM.
GuestAddr FileAlloc(Ctx& ctx, const KernelGlobals& g, uint32_t type, GuestAddr obj);
void FileFree(Ctx& ctx, const KernelGlobals& g, GuestAddr file);

// Syscall backends (dispatch on path kind / file type). All return 0/positive on success,
// negative errno-style on failure.
int64_t VfsOpen(Ctx& ctx, const KernelGlobals& g, uint32_t path_id, uint32_t flags);
int64_t VfsClose(Ctx& ctx, const KernelGlobals& g, int fd);
int64_t VfsRead(Ctx& ctx, const KernelGlobals& g, int fd, uint32_t len);
int64_t VfsWrite(Ctx& ctx, const KernelGlobals& g, int fd, uint32_t len, uint32_t value);
int64_t VfsFtruncate(Ctx& ctx, const KernelGlobals& g, int fd, uint32_t size);
int64_t VfsRename(Ctx& ctx, const KernelGlobals& g, uint32_t path_a, uint32_t path_b);
int64_t VfsIoctl(Ctx& ctx, const KernelGlobals& g, int fd, uint32_t cmd, int64_t arg);
int64_t VfsFadvise(Ctx& ctx, const KernelGlobals& g, int fd, uint32_t advice);

// ioctl commands (shared with the fuzzer's syscall descriptions).
enum IoctlCmd : uint32_t {
  kIoctlSwapBootLoader = 1,  // sbfs fd: EXT4_IOC_SWAP_BOOT analog (issue #2).
  kIoctlSetBlocksize = 2,    // blockdev fd: BLKBSZSET (issue #6 writer).
  kIoctlSetReadahead = 3,    // blockdev fd: BLKRASET (issue #5 writer).
  kIoctlSetMacAddr = 4,      // socket: SIOCSIFHWADDR -> eth_commit_mac_addr_change (#9 writer).
  kIoctlGetMacAddr = 5,      // socket: SIOCGIFHWADDR -> dev_ifsioc_locked (#9 reader).
  kIoctlSetMtu = 6,          // socket: SIOCSIFMTU -> __dev_set_mtu (#7 writer).
  kIoctlE1000SetMac = 7,     // socket: ethtool-path MAC set -> e1000_set_mac (#8 writer).
  kIoctlRtFlush = 8,         // inet6 socket: route flush -> fib6_clean_node (#10 writer).
  kIoctlSerialAutoconf = 9,  // tty fd: TIOCSSERIAL -> uart_do_autoconfig (#14 writer).
  kIoctlSndElemAdd = 10,     // snd fd: SNDRV_CTL_IOCTL_ELEM_ADD -> snd_ctl_elem_add (#15).
};

}  // namespace snowboard

#endif  // SRC_KERNEL_FS_VFS_H_
