#include "src/kernel/fs/configfs.h"

#include "src/kernel/kalloc.h"
#include "src/sim/site.h"
#include "src/sim/sync.h"

namespace snowboard {

GuestAddr ConfigfsInit(Memory& mem) {
  GuestAddr cfg = mem.StaticAlloc(12, 8);
  mem.WriteRaw(cfg + kConfigfsMutex, 4, 0);
  mem.WriteRaw(cfg + kConfigfsHead, 4, 0);
  mem.WriteRaw(cfg + kConfigfsNextIno, 4, 100);
  return cfg;
}

void ConfigfsBootMkdir(Memory& mem, GuestAddr cfg, GuestAddr dirent_mem, GuestAddr inode_mem,
                       uint32_t name_id) {
  mem.WriteRaw(inode_mem + kCfgInodeIno, 4, mem.ReadRaw(cfg + kConfigfsNextIno, 4));
  mem.WriteRaw(cfg + kConfigfsNextIno, 4, mem.ReadRaw(cfg + kConfigfsNextIno, 4) + 1);
  mem.WriteRaw(inode_mem + kCfgInodeNlink, 4, 2);
  mem.WriteRaw(inode_mem + kCfgInodeMode, 4, 0755);
  mem.WriteRaw(dirent_mem + kDirentNameId, 4, name_id);
  mem.WriteRaw(dirent_mem + kDirentInode, 4, inode_mem);
  mem.WriteRaw(dirent_mem + kDirentFlags, 4, 1);
  mem.WriteRaw(dirent_mem + kDirentNext, 4, mem.ReadRaw(cfg + kConfigfsHead, 4));
  mem.WriteRaw(cfg + kConfigfsHead, 4, dirent_mem);
}

int64_t ConfigfsMkdir(Ctx& ctx, const KernelGlobals& g, uint32_t name_id) {
  GuestAddr cfg = g.configfs;
  SpinLock(ctx, cfg + kConfigfsMutex);
  // Reject duplicates.
  GuestAddr cur = ctx.Load32(cfg + kConfigfsHead, SB_SITE());
  while (cur != kGuestNull) {
    if (ctx.Load32(cur + kDirentNameId, SB_SITE()) == name_id) {
      SpinUnlock(ctx, cfg + kConfigfsMutex);
      return kEEXIST;
    }
    cur = ctx.Load32(cur + kDirentNext, SB_SITE());
  }
  GuestAddr inode = Kmalloc(ctx, g.kheap, kCfgInodeSize);
  GuestAddr dirent = Kmalloc(ctx, g.kheap, kDirentSize);
  if (inode == kGuestNull || dirent == kGuestNull) {
    SpinUnlock(ctx, cfg + kConfigfsMutex);
    return kENOMEM;
  }
  uint32_t ino = ctx.Load32(cfg + kConfigfsNextIno, SB_SITE());
  ctx.Store32(cfg + kConfigfsNextIno, ino + 1, SB_SITE());
  ctx.Store32(inode + kCfgInodeIno, ino, SB_SITE());
  ctx.Store32(inode + kCfgInodeNlink, 2, SB_SITE());
  ctx.Store32(inode + kCfgInodeMode, 0755, SB_SITE());
  ctx.Store32(dirent + kDirentNameId, name_id, SB_SITE());
  ctx.Store32(dirent + kDirentInode, inode, SB_SITE());
  ctx.Store32(dirent + kDirentFlags, 1, SB_SITE());
  GuestAddr head = ctx.Load32(cfg + kConfigfsHead, SB_SITE());
  ctx.Store32(dirent + kDirentNext, head, SB_SITE());
  ctx.Store32(cfg + kConfigfsHead, dirent, SB_SITE());
  SpinUnlock(ctx, cfg + kConfigfsMutex);
  return 0;
}

int64_t ConfigfsRmdir(Ctx& ctx, const KernelGlobals& g, uint32_t name_id) {
  GuestAddr cfg = g.configfs;
  SpinLock(ctx, cfg + kConfigfsMutex);
  GuestAddr prev_slot = cfg + kConfigfsHead;
  GuestAddr cur = ctx.Load32(prev_slot, SB_SITE());
  while (cur != kGuestNull) {
    uint32_t cur_name = ctx.Load32(cur + kDirentNameId, SB_SITE());
    if (cur_name == name_id) {
      GuestAddr next = ctx.Load32(cur + kDirentNext, SB_SITE());
      ctx.Store32(prev_slot, next, SB_SITE());
      GuestAddr inode = ctx.Load32(cur + kDirentInode, SB_SITE());
      // Poison before free (SLAB-poisoning analog): a lockless lookup holding a stale
      // dirent pointer will now read a null inode pointer — issue #11's crash source.
      ctx.Store32(cur + kDirentInode, kGuestNull, SB_SITE());
      ctx.Store32(cur + kDirentNameId, 0, SB_SITE());
      ctx.Store32(cur + kDirentFlags, 0, SB_SITE());
      Kfree(ctx, g.kheap, inode, kCfgInodeSize);
      Kfree(ctx, g.kheap, cur, kDirentSize);
      SpinUnlock(ctx, cfg + kConfigfsMutex);
      return 0;
    }
    prev_slot = cur + kDirentNext;
    cur = ctx.Load32(prev_slot, SB_SITE());
  }
  SpinUnlock(ctx, cfg + kConfigfsMutex);
  return kENOENT;
}

int64_t ConfigfsReaddir(Ctx& ctx, const KernelGlobals& g) {
  GuestAddr cfg = g.configfs;
  // Like ConfigfsLookup: no parent mutex — the same #11 bug family. A concurrent rmdir can
  // poison the dirent under the cursor; the ino read below then chases a null pointer.
  int64_t count = 0;
  GuestAddr cur = ctx.Load32(cfg + kConfigfsHead, SB_SITE());
  while (cur != kGuestNull && count < 64) {
    GuestAddr inode = ctx.Load32(cur + kDirentInode, SB_SITE());
    if (inode != kGuestNull) {
      ctx.Load32(inode + kCfgInodeIno, SB_SITE());  // Emit the directory record.
      count++;
    }
    cur = ctx.Load32(cur + kDirentNext, SB_SITE());
  }
  return count;
}

GuestAddr ConfigfsLookup(Ctx& ctx, const KernelGlobals& g, uint32_t name_id) {
  GuestAddr cfg = g.configfs;
  // Issue #11: the original configfs_lookup() iterated the parent's children without
  // holding the parent mutex. No lock here — that IS the bug.
  GuestAddr cur = ctx.Load32(cfg + kConfigfsHead, SB_SITE());
  while (cur != kGuestNull) {
    uint32_t cur_name = ctx.Load32(cur + kDirentNameId, SB_SITE());
    if (cur_name == name_id) {
      GuestAddr inode = ctx.Load32(cur + kDirentInode, SB_SITE());
      // d_instantiate path: bump the inode link count. If rmdir poisoned the dirent after
      // the name check, `inode` is null and this faults — the #11 panic.
      uint32_t nlink = ctx.Load32(inode + kCfgInodeNlink, SB_SITE());
      ctx.Store32(inode + kCfgInodeNlink, nlink, SB_SITE());
      return inode;
    }
    cur = ctx.Load32(cur + kDirentNext, SB_SITE());
  }
  return kGuestNull;
}

}  // namespace snowboard
