// sbfs: the ext4-analog filesystem.
//
// Carries three Table 2 issues, each with the same synchronization mistake as the original:
//   #2 (AV) — SbfsSwapInodeBootLoader takes the superblock lock but NOT the target inode's
//      i_lock, so a concurrent SbfsWrite interleaves with the field-by-field swap and the
//      post-swap checksum verification fails: "EXT4-fs error: swap_inode_boot_loader: ...
//      checksum invalid".
//   #3 (AV) — extent-tree rebuild invalidates the extent magic, rebuilds, then restores it;
//      the read-side magic check runs lockless and can observe the invalid window:
//      "EXT4-fs error: ext4_ext_check_inode: ... invalid magic".
//   #4 (AV) — writeback re-reads the inode's block number WITHOUT the i_lock (TOCTOU);
//      a concurrent ftruncate invalidates it and the bio targets a bogus sector:
//      "blk_update_request: IO error".
#ifndef SRC_KERNEL_FS_SBFS_H_
#define SRC_KERNEL_FS_SBFS_H_

#include "src/kernel/kernel.h"
#include "src/sim/engine.h"

namespace snowboard {

// Superblock block:
//   +0  sb_lock
//   +4  ninodes
//   +8  inodes[kSbfsNumInodes]
inline constexpr uint32_t kSbfsLock = 0;
inline constexpr uint32_t kSbfsNinodes = 4;
inline constexpr uint32_t kSbfsInodes = 8;
inline constexpr uint32_t kSbfsNumInodes = 4;  // Inode 0 is the boot-loader inode.

// Inode layout (static-allocated, 64 bytes):
//   +0  i_lock
//   +4  i_size
//   +8  i_block[2]  (block numbers on the sbd0 device)
//   +16 i_checksum  (covers size, data, blocks)
//   +20 i_ext_magic (kSbfsExtMagic when the extent tree is valid)
//   +24 i_data      (file-content digest word)
//   +28 i_nrpages   (page-cache page count)
//   +32 i_dirty
inline constexpr uint32_t kInodeLock = 0;
inline constexpr uint32_t kInodeSize = 4;
inline constexpr uint32_t kInodeBlock0 = 8;
inline constexpr uint32_t kInodeBlock1 = 12;
inline constexpr uint32_t kInodeChecksum = 16;
inline constexpr uint32_t kInodeExtMagic = 20;
inline constexpr uint32_t kInodeData = 24;
inline constexpr uint32_t kInodeNrpages = 28;
inline constexpr uint32_t kInodeDirty = 32;
inline constexpr uint32_t kInodeStructSize = 64;

inline constexpr uint32_t kSbfsExtMagic = 0xF30A;
inline constexpr uint32_t kSbfsInvalidBlock = 0xFFFFu;

// Boot-time: builds the superblock and inode table; returns the sbfs anchor.
GuestAddr SbfsInit(Memory& mem);

// Inode address for inode number `ino` (host-side arithmetic; layout is boot-fixed).
GuestAddr SbfsInodeAddr(Ctx& ctx, GuestAddr sbfs, uint32_t ino);

// File operations (called from VFS with the inode address).
int64_t SbfsRead(Ctx& ctx, const KernelGlobals& g, GuestAddr inode, uint32_t len);
int64_t SbfsWrite(Ctx& ctx, const KernelGlobals& g, GuestAddr inode, uint32_t len,
                  uint32_t value);
int64_t SbfsFtruncate(Ctx& ctx, const KernelGlobals& g, GuestAddr inode, uint32_t size);
// EXT4_IOC_SWAP_BOOT analog: swaps inode contents with the boot-loader inode (#2).
int64_t SbfsSwapInodeBootLoader(Ctx& ctx, const KernelGlobals& g, GuestAddr inode);
// rename(): swaps the data of two inodes under the superblock lock.
int64_t SbfsRename(Ctx& ctx, const KernelGlobals& g, GuestAddr inode_a, GuestAddr inode_b);

// Checksum over (size, blocks, data); plain traced loads.
uint32_t SbfsComputeChecksum(Ctx& ctx, GuestAddr inode);

}  // namespace snowboard

#endif  // SRC_KERNEL_FS_SBFS_H_
