#include "src/kernel/fs/vfs.h"

#include "src/kernel/block/blockdev.h"
#include "src/kernel/fs/configfs.h"
#include "src/kernel/fs/sbfs.h"
#include "src/kernel/kalloc.h"
#include "src/kernel/mm/pagecache.h"
#include "src/kernel/net/fib6.h"
#include "src/kernel/net/netdev.h"
#include "src/kernel/sound/ctl.h"
#include "src/kernel/task.h"
#include "src/kernel/tty/serial.h"
#include "src/sim/site.h"
#include "src/sim/sync.h"

namespace snowboard {

GuestAddr FileAlloc(Ctx& ctx, const KernelGlobals& g, uint32_t type, GuestAddr obj) {
  GuestAddr file = Kmalloc(ctx, g.kheap, kFileSize);
  if (file == kGuestNull) {
    return kGuestNull;
  }
  ctx.Store32(file + kFileType, type, SB_SITE());
  ctx.Store32(file + kFileObj, obj, SB_SITE());
  return file;
}

void FileFree(Ctx& ctx, const KernelGlobals& g, GuestAddr file) {
  ctx.Store32(file + kFileType, kFileFree, SB_SITE());
  Kfree(ctx, g.kheap, file, kFileSize);
}

int64_t VfsOpen(Ctx& ctx, const KernelGlobals& g, uint32_t path_id, uint32_t flags) {
  if (path_id >= kNumPaths) {
    return kENOENT;
  }
  const PathEntry& path = kPaths[path_id];
  uint32_t type = 0;
  GuestAddr obj = kGuestNull;
  switch (path.kind) {
    case kPathSbfsFile:
      type = kFileSbfs;
      obj = SbfsInodeAddr(ctx, g.sbfs, path.index);
      break;
    case kPathBlockDev:
      type = kFileBlockDev;
      obj = g.blockdevs;
      break;
    case kPathConfigDir: {
      type = kFileConfigfs;
      obj = ConfigfsLookup(ctx, g, path.index);  // Issue #11 reader path.
      if (obj == kGuestNull) {
        return kENOENT;
      }
      break;
    }
    case kPathTty: {
      type = kFileTty;
      int64_t err = TtyPortOpen(ctx, g);
      if (err != 0) {
        return err;
      }
      obj = g.tty;
      break;
    }
    case kPathSnd:
      type = kFileSnd;
      obj = g.sndcard;
      break;
  }
  if (obj == kGuestNull) {
    return kENOENT;
  }
  GuestAddr file = FileAlloc(ctx, g, type, obj);
  if (file == kGuestNull) {
    return kENOMEM;
  }
  ctx.Store32(file + kFileFlags, flags, SB_SITE());
  int fd = FdAlloc(ctx, ctx.current_task, file);
  if (fd < 0) {
    FileFree(ctx, g, file);
    return kEMFILE;
  }
  return fd;
}

int64_t VfsClose(Ctx& ctx, const KernelGlobals& g, int fd) {
  GuestAddr file = FdGet(ctx, ctx.current_task, fd);
  if (file == kGuestNull) {
    return kEBADF;
  }
  uint32_t type = ctx.Load32(file + kFileType, SB_SITE());
  if (type == kFileTty) {
    TtyPortClose(ctx, g);
  }
  FdClear(ctx, ctx.current_task, fd);
  FileFree(ctx, g, file);
  return 0;
}

int64_t VfsRead(Ctx& ctx, const KernelGlobals& g, int fd, uint32_t len) {
  GuestAddr file = FdGet(ctx, ctx.current_task, fd);
  if (file == kGuestNull) {
    return kEBADF;
  }
  uint32_t type = ctx.Load32(file + kFileType, SB_SITE());
  GuestAddr obj = ctx.Load32(file + kFileObj, SB_SITE());
  switch (type) {
    case kFileSbfs:
      return SbfsRead(ctx, g, obj, len);
    case kFileBlockDev: {
      uint32_t pos = ctx.Load32(file + kFilePos, SB_SITE());
      ctx.Store32(file + kFilePos, pos + 1, SB_SITE());
      return MpageReadpage(ctx, g, pos);  // Issue #6 reader.
    }
    case kFileConfigfs:
      return static_cast<int64_t>(ctx.Load32(obj + kCfgInodeMode, SB_SITE()));
    case kFileTty:
      return TtyRead(ctx, g);
    case kFileSnd:
      return SndCtlRead(ctx, g);
    default:
      return kEINVAL;
  }
}

int64_t VfsWrite(Ctx& ctx, const KernelGlobals& g, int fd, uint32_t len, uint32_t value) {
  GuestAddr file = FdGet(ctx, ctx.current_task, fd);
  if (file == kGuestNull) {
    return kEBADF;
  }
  uint32_t type = ctx.Load32(file + kFileType, SB_SITE());
  GuestAddr obj = ctx.Load32(file + kFileObj, SB_SITE());
  switch (type) {
    case kFileSbfs:
      return SbfsWrite(ctx, g, obj, len == 0 ? 1 : len % 4096, value);
    case kFileBlockDev:
      return BlkdevWrite(ctx, g, value);
    case kFileTty:
      return TtyWrite(ctx, g, len);
    default:
      return kEINVAL;
  }
}

int64_t VfsFtruncate(Ctx& ctx, const KernelGlobals& g, int fd, uint32_t size) {
  GuestAddr file = FdGet(ctx, ctx.current_task, fd);
  if (file == kGuestNull) {
    return kEBADF;
  }
  if (ctx.Load32(file + kFileType, SB_SITE()) != kFileSbfs) {
    return kEINVAL;
  }
  GuestAddr inode = ctx.Load32(file + kFileObj, SB_SITE());
  return SbfsFtruncate(ctx, g, inode, size % 8192);
}

int64_t VfsRename(Ctx& ctx, const KernelGlobals& g, uint32_t path_a, uint32_t path_b) {
  if (path_a >= kNumPaths || path_b >= kNumPaths) {
    return kENOENT;
  }
  const PathEntry& a = kPaths[path_a];
  const PathEntry& b = kPaths[path_b];
  if (a.kind != kPathSbfsFile || b.kind != kPathSbfsFile) {
    return kEINVAL;
  }
  GuestAddr inode_a = SbfsInodeAddr(ctx, g.sbfs, a.index);
  GuestAddr inode_b = SbfsInodeAddr(ctx, g.sbfs, b.index);
  return SbfsRename(ctx, g, inode_a, inode_b);
}

int64_t VfsIoctl(Ctx& ctx, const KernelGlobals& g, int fd, uint32_t cmd, int64_t arg) {
  GuestAddr file = FdGet(ctx, ctx.current_task, fd);
  if (file == kGuestNull) {
    return kEBADF;
  }
  uint32_t type = ctx.Load32(file + kFileType, SB_SITE());
  GuestAddr obj = ctx.Load32(file + kFileObj, SB_SITE());
  uint32_t uarg = static_cast<uint32_t>(arg);

  switch (cmd) {
    case kIoctlSwapBootLoader:
      if (type != kFileSbfs) {
        return kEINVAL;
      }
      return SbfsSwapInodeBootLoader(ctx, g, obj);  // Issue #2.
    case kIoctlSetBlocksize:
      if (type != kFileBlockDev) {
        return kEINVAL;
      }
      return BlkdevSetBlocksize(ctx, g, 512u << (uarg % 4));  // Issue #6 writer.
    case kIoctlSetReadahead:
      if (type != kFileBlockDev) {
        return kEINVAL;
      }
      return BlkdevSetReadahead(ctx, g, uarg);  // Issue #5 writer.
    case kIoctlSetMacAddr:
      if (type != kFileSocket) {
        return kEINVAL;
      }
      return DevIoctlSetMac(ctx, g, uarg & 1, uarg >> 1);  // Issue #9 writer.
    case kIoctlGetMacAddr:
      if (type != kFileSocket) {
        return kEINVAL;
      }
      return DevIoctlGetMac(ctx, g, uarg & 1);  // Issue #9 reader.
    case kIoctlSetMtu:
      if (type != kFileSocket) {
        return kEINVAL;
      }
      return DevSetMtu(ctx, g, uarg & 1, 600 + (uarg % 1400));  // Issue #7 writer.
    case kIoctlE1000SetMac:
      if (type != kFileSocket) {
        return kEINVAL;
      }
      return E1000SetMac(ctx, g, uarg & 1, uarg >> 1);  // Issue #8 writer.
    case kIoctlRtFlush:
      if (type != kFileSocket) {
        return kEINVAL;
      }
      return Fib6CleanTree(ctx, g);  // Issue #10 writer.
    case kIoctlSerialAutoconf:
      if (type != kFileTty) {
        return kEINVAL;
      }
      return UartDoAutoconfig(ctx, g, uarg % 230400);  // Issue #14 writer.
    case kIoctlSndElemAdd:
      if (type != kFileSnd) {
        return kEINVAL;
      }
      return SndCtlElemAdd(ctx, g, uarg);  // Issue #15.
    default:
      return kEINVAL;
  }
}

int64_t VfsFadvise(Ctx& ctx, const KernelGlobals& g, int fd, uint32_t advice) {
  GuestAddr file = FdGet(ctx, ctx.current_task, fd);
  if (file == kGuestNull) {
    return kEBADF;
  }
  uint32_t type = ctx.Load32(file + kFileType, SB_SITE());
  GuestAddr obj = ctx.Load32(file + kFileObj, SB_SITE());
  advice = advice % 4;
  if (type == kFileBlockDev) {
    return GenericFadviseBdev(ctx, g, advice);  // Issue #5 reader.
  }
  if (type == kFileSbfs) {
    return GenericFadviseInode(ctx, g, obj, advice);
  }
  return kEINVAL;
}

}  // namespace snowboard
