#include "src/kernel/fs/sbfs.h"

#include "src/kernel/block/blockdev.h"
#include "src/kernel/task.h"
#include "src/sim/site.h"
#include "src/sim/sync.h"
#include "src/util/assert.h"
#include "src/util/strings.h"

namespace snowboard {

namespace {

// Block-number scheme: inode i owns sectors [i*16+1, i*16+2]; all < kBdDefaultSectors.
uint32_t InodeBlockNumber(uint32_t ino, uint32_t index) { return ino * 16 + 1 + index; }

uint32_t InodeNumberOf(Ctx& ctx, GuestAddr sbfs, GuestAddr inode) {
  // Inodes are laid out contiguously after the superblock header (boot-fixed layout).
  GuestAddr first = static_cast<GuestAddr>(
      ctx.mem().ReadRaw(sbfs + kSbfsInodes, 4));
  return (inode - first) / kInodeStructSize;
}

}  // namespace

GuestAddr SbfsInit(Memory& mem) {
  GuestAddr sbfs = mem.StaticAlloc(kSbfsInodes + 4 * kSbfsNumInodes, 8);
  mem.WriteRaw(sbfs + kSbfsLock, 4, 0);
  mem.WriteRaw(sbfs + kSbfsNinodes, 4, kSbfsNumInodes);
  for (uint32_t ino = 0; ino < kSbfsNumInodes; ino++) {
    GuestAddr inode = mem.StaticAlloc(kInodeStructSize, 8);
    mem.WriteRaw(sbfs + kSbfsInodes + 4 * ino, 4, inode);
    mem.WriteRaw(inode + kInodeLock, 4, 0);
    mem.WriteRaw(inode + kInodeSize, 4, 0);
    mem.WriteRaw(inode + kInodeBlock0, 4, InodeBlockNumber(ino, 0));
    mem.WriteRaw(inode + kInodeBlock1, 4, InodeBlockNumber(ino, 1));
    mem.WriteRaw(inode + kInodeExtMagic, 4, kSbfsExtMagic);
    mem.WriteRaw(inode + kInodeData, 4, 0x5b5b0000u + ino);
    mem.WriteRaw(inode + kInodeNrpages, 4, 0);
    mem.WriteRaw(inode + kInodeDirty, 4, 0);
    // Consistent initial checksum: size + block0 + block1 + data.
    uint32_t checksum = 0 + InodeBlockNumber(ino, 0) + InodeBlockNumber(ino, 1) +
                        (0x5b5b0000u + ino);
    mem.WriteRaw(inode + kInodeChecksum, 4, checksum);
  }
  return sbfs;
}

GuestAddr SbfsInodeAddr(Ctx& ctx, GuestAddr sbfs, uint32_t ino) {
  if (ino >= kSbfsNumInodes) {
    return kGuestNull;
  }
  return ctx.Load32(sbfs + kSbfsInodes + 4 * ino, SB_SITE());
}

uint32_t SbfsComputeChecksum(Ctx& ctx, GuestAddr inode) {
  uint32_t size = ctx.Load32(inode + kInodeSize, SB_SITE());
  uint32_t b0 = ctx.Load32(inode + kInodeBlock0, SB_SITE());
  uint32_t b1 = ctx.Load32(inode + kInodeBlock1, SB_SITE());
  uint32_t data = ctx.Load32(inode + kInodeData, SB_SITE());
  return size + b0 + b1 + data;
}

int64_t SbfsRead(Ctx& ctx, const KernelGlobals& g, GuestAddr inode, uint32_t len) {
  uint32_t ino = InodeNumberOf(ctx, g.sbfs, inode);

  // ext4_ext_check_inode analog — issue #3 reader: the extent-header magic check runs on
  // the lockless fast path, so it can observe the writer's invalidate window.
  uint32_t magic = ctx.Load32(inode + kInodeExtMagic, SB_SITE());
  if (magic != kSbfsExtMagic) {
    ctx.Printk(StrPrintf(
        "EXT4-fs error (device sbfs): sbfs_ext_check_inode: inode #%u: invalid magic 0x%x",
        ino, magic));
    return kEIO;
  }

  SpinLock(ctx, inode + kInodeLock);
  // sbfs_iget checksum verification. Under i_lock this is consistent against writers; it
  // only fails if some *other* path corrupted the inode image (e.g. a racy boot-loader
  // swap, issue #2).
  uint32_t computed = SbfsComputeChecksum(ctx, inode);
  uint32_t stored = ctx.Load32(inode + kInodeChecksum, SB_SITE());
  if (computed != stored) {
    ctx.Printk(StrPrintf(
        "EXT4-fs error (device sbfs): sbfs_iget: checksum invalid for inode #%u", ino));
    SpinUnlock(ctx, inode + kInodeLock);
    return kEIO;
  }
  uint32_t data = ctx.Load32(inode + kInodeData, SB_SITE());
  uint32_t nrpages = ctx.Load32(inode + kInodeNrpages, SB_SITE());
  ctx.Store32(inode + kInodeNrpages, nrpages + 1, SB_SITE());
  uint32_t block = ctx.Load32(inode + kInodeBlock0, SB_SITE());
  SpinUnlock(ctx, inode + kInodeLock);

  if (!SubmitBio(ctx, g, block, /*is_write=*/false)) {
    return kEIO;
  }
  return static_cast<int64_t>(data & 0x7FFFFFFF);
}

int64_t SbfsWrite(Ctx& ctx, const KernelGlobals& g, GuestAddr inode, uint32_t len,
                  uint32_t value) {
  // Scratch "journal handle" on the kernel stack: exercises the ESP stack filter.
  StackFrame frame(ctx, 16);
  ctx.Store32(frame.base(), value, SB_SITE());

  SpinLock(ctx, inode + kInodeLock);
  uint32_t size = ctx.Load32(inode + kInodeSize, SB_SITE());
  uint32_t new_size = size + len;
  ctx.Store32(inode + kInodeSize, new_size, SB_SITE());

  uint32_t journal_value = ctx.Load32(frame.base(), SB_SITE());
  uint32_t data = ctx.Load32(inode + kInodeData, SB_SITE());
  ctx.Store32(inode + kInodeData, data ^ (journal_value * 2654435761u + len), SB_SITE());

  // Reallocate block 0 if a truncate invalidated it.
  uint32_t block = ctx.Load32(inode + kInodeBlock0, SB_SITE());
  uint32_t ino = InodeNumberOf(ctx, g.sbfs, inode);
  if (block == kSbfsInvalidBlock) {
    block = InodeBlockNumber(ino, 0);
    ctx.Store32(inode + kInodeBlock0, block, SB_SITE());
  }

  // Extent-tree rebuild when the write crosses a block boundary — issue #3 writer: the
  // magic is zeroed, the tree rebuilt, and the magic restored; all under i_lock, but the
  // read-side check is lockless, so the invalid window is observable.
  uint32_t blocksize = 1024;
  if (new_size / blocksize != size / blocksize) {
    ctx.Store32(inode + kInodeExtMagic, 0, SB_SITE());
    ctx.Store32(inode + kInodeBlock1, InodeBlockNumber(ino, 1), SB_SITE());
    ctx.Store32(inode + kInodeExtMagic, kSbfsExtMagic, SB_SITE());
  }

  uint32_t checksum = SbfsComputeChecksum(ctx, inode);
  ctx.Store32(inode + kInodeChecksum, checksum, SB_SITE());
  ctx.Store32(inode + kInodeDirty, 1, SB_SITE());
  SpinUnlock(ctx, inode + kInodeLock);

  // Writeback — issue #4: the block number is RE-READ without the i_lock (TOCTOU); a
  // concurrent ftruncate can invalidate it between unlock and here, sending the bio to a
  // bogus sector ("blk_update_request: I/O error").
  uint32_t wb_block = ctx.Load32(inode + kInodeBlock0, SB_SITE());
  if (!SubmitBio(ctx, g, wb_block, /*is_write=*/true)) {
    return kEIO;
  }
  ctx.Store32(inode + kInodeDirty, 0, SB_SITE());
  return len;
}

int64_t SbfsFtruncate(Ctx& ctx, const KernelGlobals& g, GuestAddr inode, uint32_t size) {
  SpinLock(ctx, inode + kInodeLock);
  if (size == 0) {
    // Releasing the data blocks: block 0 becomes invalid until the next write — the
    // issue #4 writer.
    ctx.Store32(inode + kInodeBlock0, kSbfsInvalidBlock, SB_SITE());
  }
  ctx.Store32(inode + kInodeSize, size, SB_SITE());
  uint32_t checksum = SbfsComputeChecksum(ctx, inode);
  ctx.Store32(inode + kInodeChecksum, checksum, SB_SITE());
  SpinUnlock(ctx, inode + kInodeLock);
  return 0;
}

int64_t SbfsSwapInodeBootLoader(Ctx& ctx, const KernelGlobals& g, GuestAddr inode) {
  GuestAddr sbfs = g.sbfs;
  GuestAddr boot = SbfsInodeAddr(ctx, sbfs, 0);
  if (boot == kGuestNull || inode == boot) {
    return kEINVAL;
  }
  uint32_t ino = InodeNumberOf(ctx, sbfs, inode);

  // Issue #2 (atomicity violation): the swap takes the SUPERBLOCK lock but not the target
  // inode's i_lock, so a concurrent SbfsWrite (which holds only i_lock) interleaves with
  // the field-by-field swap below.
  SpinLock(ctx, sbfs + kSbfsLock);
  static constexpr uint32_t kSwapFields[] = {kInodeSize, kInodeBlock0, kInodeBlock1,
                                             kInodeData, kInodeChecksum};
  for (uint32_t field : kSwapFields) {
    uint32_t a = ctx.Load32(inode + field, SB_SITE());
    uint32_t b = ctx.Load32(boot + field, SB_SITE());
    ctx.Store32(inode + field, b, SB_SITE());
    ctx.Store32(boot + field, a, SB_SITE());
  }

  // Post-swap verification, as ext4's swap_inode_boot_loader recomputes checksums: if a
  // write interleaved, the swapped image is inconsistent.
  for (GuestAddr node : {inode, boot}) {
    uint32_t computed = SbfsComputeChecksum(ctx, node);
    uint32_t stored = ctx.Load32(node + kInodeChecksum, SB_SITE());
    if (computed != stored) {
      ctx.Printk(StrPrintf("EXT4-fs error (device sbfs): sbfs_swap_inode_boot_loader: "
                           "checksum invalid for inode #%u",
                           node == boot ? 0 : ino));
      // Repair so the error does not cascade into every later test action.
      ctx.Store32(node + kInodeChecksum, computed, SB_SITE());
    }
  }
  SpinUnlock(ctx, sbfs + kSbfsLock);
  return 0;
}

int64_t SbfsRename(Ctx& ctx, const KernelGlobals& g, GuestAddr inode_a, GuestAddr inode_b) {
  if (inode_a == inode_b) {
    return 0;
  }
  GuestAddr first = inode_a < inode_b ? inode_a : inode_b;
  GuestAddr second = inode_a < inode_b ? inode_b : inode_a;
  SpinLock(ctx, g.sbfs + kSbfsLock);
  SpinLock(ctx, first + kInodeLock);
  SpinLock(ctx, second + kInodeLock);
  uint32_t da = ctx.Load32(inode_a + kInodeData, SB_SITE());
  uint32_t db = ctx.Load32(inode_b + kInodeData, SB_SITE());
  ctx.Store32(inode_a + kInodeData, db, SB_SITE());
  ctx.Store32(inode_b + kInodeData, da, SB_SITE());
  ctx.Store32(inode_a + kInodeChecksum, SbfsComputeChecksum(ctx, inode_a), SB_SITE());
  ctx.Store32(inode_b + kInodeChecksum, SbfsComputeChecksum(ctx, inode_b), SB_SITE());
  SpinUnlock(ctx, second + kInodeLock);
  SpinUnlock(ctx, first + kInodeLock);
  SpinUnlock(ctx, g.sbfs + kSbfsLock);
  return 0;
}

}  // namespace snowboard
