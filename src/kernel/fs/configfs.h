// configfs: the directory tree behind /cfg.
//
// Carries issue #11 of Table 2 (the real configfs_lookup() race, fixed by commit c42dd069):
// ConfigfsLookup walks the parent's dirent list WITHOUT the parent mutex, while
// ConfigfsRmdir unlinks a dirent, poisons (zeroes) it, and frees it under the mutex. A
// lookup that has read a dirent pointer can then dereference the poisoned entry and chase a
// null inode pointer: "BUG: kernel NULL pointer dereference".
#ifndef SRC_KERNEL_FS_CONFIGFS_H_
#define SRC_KERNEL_FS_CONFIGFS_H_

#include "src/kernel/kernel.h"
#include "src/sim/engine.h"

namespace snowboard {

// Subsystem block:
//   +0  dir_mutex (the lock ConfigfsLookup FAILS to take)
//   +4  dirent list head
//   +8  next_ino
inline constexpr uint32_t kConfigfsMutex = 0;
inline constexpr uint32_t kConfigfsHead = 4;
inline constexpr uint32_t kConfigfsNextIno = 8;

// Dirent (kmalloc'd, 32 bytes):
//   +0  next
//   +4  name_id
//   +8  inode  (pointer to a small inode blob; zeroed on rmdir — the poison)
//   +12 flags
inline constexpr uint32_t kDirentNext = 0;
inline constexpr uint32_t kDirentNameId = 4;
inline constexpr uint32_t kDirentInode = 8;
inline constexpr uint32_t kDirentFlags = 12;
inline constexpr uint32_t kDirentSize = 32;

// Configfs inode blob (kmalloc'd, 16 bytes): +0 ino, +4 nlink, +8 mode.
inline constexpr uint32_t kCfgInodeIno = 0;
inline constexpr uint32_t kCfgInodeNlink = 4;
inline constexpr uint32_t kCfgInodeMode = 8;
inline constexpr uint32_t kCfgInodeSize = 16;

GuestAddr ConfigfsInit(Memory& mem);

// Creates a dirent named `name_id` under the root (boot-time variant writes raw memory).
int64_t ConfigfsMkdir(Ctx& ctx, const KernelGlobals& g, uint32_t name_id);
void ConfigfsBootMkdir(Memory& mem, GuestAddr cfg, GuestAddr dirent_mem, GuestAddr inode_mem,
                       uint32_t name_id);

// Removes the dirent named `name_id`: unlink, poison, free — all under the mutex (#11 writer).
int64_t ConfigfsRmdir(Ctx& ctx, const KernelGlobals& g, uint32_t name_id);

// open("/cfg/<name>") path: walks the dirent list with NO lock (#11 reader). Returns the
// configfs inode address, or kGuestNull if absent.
GuestAddr ConfigfsLookup(Ctx& ctx, const KernelGlobals& g, uint32_t name_id);

// getdents() on /cfg: enumerates the dirent list — ALSO without the parent mutex, a second
// reader path of the same #11 bug family. Returns the number of live entries.
int64_t ConfigfsReaddir(Ctx& ctx, const KernelGlobals& g);

}  // namespace snowboard

#endif  // SRC_KERNEL_FS_CONFIGFS_H_
