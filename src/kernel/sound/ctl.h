// sound/core control interface — issue #15 of Table 2.
//
// SndCtlElemAdd performs the user-control memory accounting (alloc-size check + update)
// with PLAIN accesses before taking the card lock — the "racy management of user ctl memory
// size account" fixed by the ALSA patch cited in the paper. Two concurrent element adds can
// both pass the limit check or tear the accounting.
#ifndef SRC_KERNEL_SOUND_CTL_H_
#define SRC_KERNEL_SOUND_CTL_H_

#include "src/kernel/kernel.h"
#include "src/sim/engine.h"

namespace snowboard {

// Card block:
//   +0  card_lock
//   +4  user_ctl_count
//   +8  user_ctl_alloc_size   (the racy accounting word)
//   +12 max_user_ctl_alloc_size
inline constexpr uint32_t kSndCardLock = 0;
inline constexpr uint32_t kSndUserCtlCount = 4;
inline constexpr uint32_t kSndUserCtlAllocSize = 8;
inline constexpr uint32_t kSndMaxUserCtlAllocSize = 12;

GuestAddr SndInit(Memory& mem);

// ioctl(SNDRV_CTL_IOCTL_ELEM_ADD): adds a user control of `size` accounting bytes.
int64_t SndCtlElemAdd(Ctx& ctx, const KernelGlobals& g, uint32_t size);

// read(/dev/snd): current control count (under the card lock).
int64_t SndCtlRead(Ctx& ctx, const KernelGlobals& g);

}  // namespace snowboard

#endif  // SRC_KERNEL_SOUND_CTL_H_
