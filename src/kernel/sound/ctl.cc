#include "src/kernel/sound/ctl.h"

#include "src/sim/site.h"
#include "src/sim/sync.h"

namespace snowboard {

GuestAddr SndInit(Memory& mem) {
  GuestAddr card = mem.StaticAlloc(16, 8);
  mem.WriteRaw(card + kSndCardLock, 4, 0);
  mem.WriteRaw(card + kSndUserCtlCount, 4, 0);
  mem.WriteRaw(card + kSndUserCtlAllocSize, 4, 0);
  mem.WriteRaw(card + kSndMaxUserCtlAllocSize, 4, 4096);
  return card;
}

int64_t SndCtlElemAdd(Ctx& ctx, const KernelGlobals& g, uint32_t size) {
  GuestAddr card = g.sndcard;
  size = (size & 0xFF) + 16;

  // Issue #15: the accounting check-and-update runs BEFORE the card lock is taken, with
  // plain loads/stores — two concurrent adds race on user_ctl_alloc_size.
  uint32_t alloc_size = ctx.Load32(card + kSndUserCtlAllocSize, SB_SITE());
  uint32_t max = ctx.Load32(card + kSndMaxUserCtlAllocSize, SB_SITE());
  if (alloc_size + size > max) {
    return kENOMEM;
  }
  ctx.Store32(card + kSndUserCtlAllocSize, alloc_size + size, SB_SITE());

  SpinLock(ctx, card + kSndCardLock);
  uint32_t count = ctx.Load32(card + kSndUserCtlCount, SB_SITE());
  ctx.Store32(card + kSndUserCtlCount, count + 1, SB_SITE());
  SpinUnlock(ctx, card + kSndCardLock);
  return static_cast<int64_t>(count + 1);
}

int64_t SndCtlRead(Ctx& ctx, const KernelGlobals& g) {
  GuestAddr card = g.sndcard;
  SpinLock(ctx, card + kSndCardLock);
  uint32_t count = ctx.Load32(card + kSndUserCtlCount, SB_SITE());
  SpinUnlock(ctx, card + kSndCardLock);
  return static_cast<int64_t>(count);
}

}  // namespace snowboard
