#include "src/ski/baselines.h"

namespace snowboard {

ExposeComparison CompareTrialsToExpose(KernelVm& vm, const ConcurrentTest& test,
                                       int target_issue, int max_trials, uint64_t seed) {
  ExposeComparison comparison;

  ExplorerOptions options;
  options.num_trials = max_trials;
  options.seed = seed;
  options.target_issue = target_issue;

  ExploreOutcome snowboard = ExploreConcurrentTest(vm, test, /*matcher=*/nullptr, options);
  comparison.snowboard_found = snowboard.target_found;
  comparison.snowboard_trials =
      snowboard.target_found ? snowboard.first_target_trial + 1 : snowboard.trials_run;

  SkiPctScheduler ski_scheduler;
  ExploreOutcome ski =
      ExploreWithScheduler(vm, test, ski_scheduler, /*check_channel=*/false, options);
  comparison.ski_found = ski.target_found;
  comparison.ski_trials = ski.target_found ? ski.first_target_trial + 1 : ski.trials_run;
  return comparison;
}

ExploreOutcome ExploreWithSkiHints(KernelVm& vm, const ConcurrentTest& test,
                                   const ExplorerOptions& options) {
  SkiInstructionScheduler scheduler(test.hint);
  return ExploreWithScheduler(vm, test, scheduler, /*check_channel=*/true, options);
}

}  // namespace snowboard
