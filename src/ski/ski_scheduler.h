// SKI-style schedulers (Fonseca et al., OSDI'14) — the §5.4 comparison baseline.
//
// Two variants, matching how the paper describes SKI's behavior relative to Snowboard:
//   * SkiInstructionScheduler — "SKI yields thread execution whenever it observes the write
//     or read instruction involved in a PMC (regardless of memory targets)": matches on the
//     instruction site only, never on address or value. Used for the §5.4 throughput
//     comparison (more vCPU switches than Snowboard's precise matching).
//   * SkiPctScheduler — PCT-style schedule exploration (Burckhardt et al.): a small number
//     of preemption points drawn uniformly over the expected instruction horizon, no PMC
//     knowledge at all. "SKI on its own has to consider all potential shared memory
//     accesses, and randomly select a few to explore" — used for the §5.4
//     interleavings-to-expose comparison.
#ifndef SRC_SKI_SKI_SCHEDULER_H_
#define SRC_SKI_SKI_SCHEDULER_H_

#include <vector>

#include "src/snowboard/explorer.h"

namespace snowboard {

class SkiInstructionScheduler : public TrialScheduler {
 public:
  // Watches the hint's two instruction sites (targets/values ignored).
  explicit SkiInstructionScheduler(const PmcKey& hint)
      : write_site_(hint.write.site), read_site_(hint.read.site) {}

  void SeedTrial(uint64_t seed) override { rng_.Seed(seed); }

  bool AfterAccess(VcpuId vcpu, const Access& access) override {
    if (access.site == write_site_ || access.site == read_site_) {
      switches_considered_++;
      return rng_.Coin();
    }
    return false;
  }

  uint64_t switches_considered() const { return switches_considered_; }

 private:
  SiteId write_site_;
  SiteId read_site_;
  uint64_t switches_considered_ = 0;
  Rng rng_;
};

class SkiPctScheduler : public TrialScheduler {
 public:
  // `depth` preemption points drawn uniformly over `horizon` instructions per trial.
  explicit SkiPctScheduler(int depth = 3, uint64_t horizon = 20'000)
      : depth_(depth), horizon_(horizon) {}

  void SeedTrial(uint64_t seed) override;
  bool AfterAccess(VcpuId vcpu, const Access& access) override;

 private:
  int depth_;
  uint64_t horizon_;
  uint64_t executed_ = 0;
  std::vector<uint64_t> change_points_;
  Rng rng_;
};

}  // namespace snowboard

#endif  // SRC_SKI_SKI_SCHEDULER_H_
