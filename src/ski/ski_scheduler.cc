#include "src/ski/ski_scheduler.h"

#include <algorithm>

namespace snowboard {

void SkiPctScheduler::SeedTrial(uint64_t seed) {
  rng_.Seed(seed);
  executed_ = 0;
  change_points_.clear();
  for (int i = 0; i < depth_; i++) {
    change_points_.push_back(rng_.Below(horizon_));
  }
  std::sort(change_points_.begin(), change_points_.end());
}

bool SkiPctScheduler::AfterAccess(VcpuId vcpu, const Access& access) {
  executed_++;
  if (!change_points_.empty() && executed_ >= change_points_.front()) {
    change_points_.erase(change_points_.begin());
    return true;
  }
  return false;
}

}  // namespace snowboard
