// Head-to-head comparison helpers for §5.4: Snowboard's PMC-guided exploration vs SKI.
#ifndef SRC_SKI_BASELINES_H_
#define SRC_SKI_BASELINES_H_

#include "src/kernel/kernel.h"
#include "src/ski/ski_scheduler.h"
#include "src/snowboard/explorer.h"

namespace snowboard {

struct ExposeComparison {
  bool snowboard_found = false;
  int snowboard_trials = 0;  // Trials until the target bug (or the budget if not found).
  bool ski_found = false;
  int ski_trials = 0;
};

// Runs one bug-triggering concurrent test to exposure of `target_issue` under (a)
// Algorithm 2 with the PMC hint and (b) SKI's PCT-style exploration, counting interleavings
// (trials) until the target fires — the "9.76 vs 826.29 interleavings/test" experiment.
ExposeComparison CompareTrialsToExpose(KernelVm& vm, const ConcurrentTest& test,
                                       int target_issue, int max_trials, uint64_t seed);

// One full trial-loop run under the SKI instruction-hint scheduler (used for the execution
// throughput comparison; SKI switches on instruction matches regardless of targets).
ExploreOutcome ExploreWithSkiHints(KernelVm& vm, const ConcurrentTest& test,
                                   const ExplorerOptions& options);

}  // namespace snowboard

#endif  // SRC_SKI_BASELINES_H_
