// Open-addressed hash containers with clear-keeps-capacity semantics.
//
// The node-based std::unordered_* containers free every node on clear() and malloc on every
// insert, which makes them unusable in a loop that must be allocation-free at steady state
// (the per-trial race-detector scratch in particular). These flat tables keep their backing
// arrays across Clear() calls: after the first few trials grow a table to its high-water
// capacity, inserts and lookups never touch the heap again.
//
// Deliberately minimal: integral keys only, linear probing, power-of-two capacity,
// tombstone deletion, value type must be default-constructible and assignable. Iteration
// order is unspecified — callers that need deterministic output must not iterate (the race
// detector only does keyed lookups; its outputs follow trace order).
#ifndef SRC_UTIL_FLATMAP_H_
#define SRC_UTIL_FLATMAP_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace snowboard {

// 64-bit finalizer (splitmix64); integral keys of any width are widened first.
inline uint64_t FlatHashMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename Key, typename Value>
class FlatMap {
 public:
  FlatMap() { Rehash(kInitialCapacity); }

  // Value slot for `key`, inserting a default-constructed value if absent.
  Value& operator[](Key key) {
    if ((used_ + 1) * 4 >= capacity_ * 3) {
      Rehash(capacity_ * 2);
    }
    size_t index = Probe(key, /*for_insert=*/true);
    if (states_[index] != kFull) {
      states_[index] = kFull;
      keys_[index] = key;
      values_[index] = Value();  // Slots are recycled across Clear(); reset stale content.
      size_++;
      used_++;
    }
    return values_[index];
  }

  Value* Find(Key key) {
    size_t index = Probe(key, /*for_insert=*/false);
    return index != kNotFound ? &values_[index] : nullptr;
  }
  const Value* Find(Key key) const {
    size_t index = const_cast<FlatMap*>(this)->Probe(key, /*for_insert=*/false);
    return index != kNotFound ? &values_[index] : nullptr;
  }

  void Erase(Key key) {
    size_t index = Probe(key, /*for_insert=*/false);
    if (index != kNotFound) {
      states_[index] = kTombstone;  // used_ unchanged: the slot still lengthens probes.
      size_--;
    }
  }

  // True if `key` was newly inserted (false if already present).
  bool Insert(Key key) {
    size_t before = size_;
    (void)(*this)[key];
    return size_ != before;
  }

  bool Contains(Key key) const { return Find(key) != nullptr; }
  size_t size() const { return size_; }

  // Empties the table but keeps the backing arrays: no allocation on refill up to the
  // high-water element count.
  void Clear() {
    std::memset(states_.data(), kEmpty, states_.size());
    size_ = 0;
    used_ = 0;
  }

 private:
  enum : uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };
  static constexpr size_t kInitialCapacity = 64;
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  size_t Probe(Key key, bool for_insert) {
    size_t mask = capacity_ - 1;
    size_t index = static_cast<size_t>(FlatHashMix(static_cast<uint64_t>(key))) & mask;
    size_t first_tombstone = kNotFound;
    for (;;) {
      uint8_t state = states_[index];
      if (state == kEmpty) {
        if (!for_insert) {
          return kNotFound;
        }
        return first_tombstone != kNotFound ? first_tombstone : index;
      }
      if (state == kFull && keys_[index] == key) {
        return index;
      }
      if (state == kTombstone && first_tombstone == kNotFound) {
        first_tombstone = index;
      }
      index = (index + 1) & mask;
    }
  }

  void Rehash(size_t new_capacity) {
    std::vector<uint8_t> old_states = std::move(states_);
    std::vector<Key> old_keys = std::move(keys_);
    std::vector<Value> old_values = std::move(values_);
    size_t old_capacity = capacity_;

    capacity_ = new_capacity;
    states_.assign(capacity_, kEmpty);
    keys_.assign(capacity_, Key());
    values_.assign(capacity_, Value());
    size_ = 0;
    used_ = 0;
    for (size_t i = 0; i < old_capacity; i++) {
      if (old_states[i] == kFull) {
        (*this)[old_keys[i]] = old_values[i];
      }
    }
  }

  std::vector<uint8_t> states_;
  std::vector<Key> keys_;
  std::vector<Value> values_;
  size_t capacity_ = 0;
  size_t size_ = 0;
  size_t used_ = 0;  // Full + tombstone slots (controls load-factor growth).
};

// Set facade over FlatMap (the byte value is dead weight but keeps one implementation;
// uint8_t rather than bool to dodge the std::vector<bool> proxy).
template <typename Key>
class FlatSet {
 public:
  bool Insert(Key key) { return map_.Insert(key); }
  bool Contains(Key key) const { return map_.Contains(key); }
  size_t size() const { return map_.size(); }
  void Clear() { map_.Clear(); }

 private:
  FlatMap<Key, uint8_t> map_;
};

}  // namespace snowboard

#endif  // SRC_UTIL_FLATMAP_H_
