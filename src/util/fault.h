// Deterministic fault injection for crash-safety testing.
//
// The paper's campaigns run for weeks on a fleet where worker loss is routine (§4.4.1);
// the checkpoint/resume layer only counts if a run killed at ANY point resumes to the
// byte-identical result. A FaultInjector is threaded through the crash-relevant code —
// checkpoint commits (src/util/fs.h), the per-trial explorer loop, the execution claim
// loop, and journal appends — and each of those spots marks a *fault point*. Points are
// numbered in global arrival order across threads; the plan picks which ordinal "kills the
// process". A killed run does not literally abort(): the flag makes every worker unwind at
// its next fault point and the pipeline return early, leaving only the on-disk checkpoints
// behind — exactly what a real SIGKILL leaves — so a test can then resume in-process and
// compare results.
//
// The crash-sweep harness first runs a campaign with a no-crash plan to count the fault
// points, then replays the campaign once per ordinal. Total point count is deterministic
// for a fixed campaign (same stages, tests, and trials), though with multiple workers the
// ordinal→site mapping varies with thread interleaving — the resume invariant must (and
// does) hold regardless of which site an ordinal lands on.
#ifndef SRC_UTIL_FAULT_H_
#define SRC_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace snowboard {

class FaultInjector {
 public:
  struct Plan {
    uint64_t seed = 0;
    // Crash at this 0-based fault-point ordinal (-1 = never).
    int64_t crash_at = -1;
    // Random mode: 1-in-`crash_chance` crash per fault point (0 = off), derived from
    // (seed, ordinal) so a given seed always dies at the same ordinal.
    uint32_t crash_chance = 0;
    // Hung-trial injection: report the `hang_at`-th trial attempt (separate ordinal
    // space) as hung (-1 = never), or 1-in-`hang_chance` per attempt.
    int64_t hang_at = -1;
    uint32_t hang_chance = 0;
  };

  FaultInjector() = default;
  explicit FaultInjector(const Plan& plan) : plan_(plan) {}

  // Marks one fault point named `site`. Returns true when the caller must abandon its
  // work and unwind — either this point was chosen as the crash, or the crash already
  // happened on another thread (a dead process runs nothing anywhere).
  bool At(const char* site);

  // Marks one trial attempt; true = treat the attempt as hung (discard and retry).
  bool HangTrial();

  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  std::string crash_site() const;
  int64_t crash_point() const { return crash_point_.load(std::memory_order_acquire); }
  uint64_t points_seen() const { return next_point_.load(std::memory_order_acquire); }
  uint64_t hangs_injected() const { return hangs_injected_.load(std::memory_order_acquire); }

 private:
  Plan plan_;
  std::atomic<uint64_t> next_point_{0};
  std::atomic<uint64_t> next_hang_point_{0};
  std::atomic<uint64_t> hangs_injected_{0};
  std::atomic<bool> crashed_{false};
  std::atomic<int64_t> crash_point_{-1};
  mutable std::mutex site_mutex_;
  std::string crash_site_;
};

}  // namespace snowboard

#endif  // SRC_UTIL_FAULT_H_
