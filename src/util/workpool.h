// Process-lifetime worker pool: the single thread-fan-out point of the campaign engine.
//
// The paper's deployment keeps a fixed fleet of VMs busy end-to-end (§4.4.1): workers are
// provisioned once and stream through profiling, identification, and execution work from a
// shared queue. Before this pool existed, every pipeline stage spawned and joined its own
// std::threads and booted its own KernelVms — three independent spawn sites (profiling
// shards, PMC identification shards, the execution claim loop), each paying a full VM boot
// per worker per stage. The WorkerPool is the in-process fleet analog: threads are created
// once, parked between jobs, and carry typed per-worker state (see PoolWorker::State) that
// survives across jobs — which is how a KernelVm boots once per worker per process and is
// reused from the corpus stage through profiling into concurrent-test execution.
//
// Determinism contract: the pool adds no scheduling decisions of its own. A job body runs
// once per participating worker; work distribution happens inside the body (typically via
// an IndexClaim, which hands out indices in increasing order). Stages remain responsible
// for slot-keyed outputs / ordered merges, exactly as before — the determinism tests lock
// in that pipeline outputs are byte-identical for any worker count, pooled or not.
//
// This lives in util (below sim/kernel) and knows nothing about VMs: per-worker state is
// type-erased, and the kernel-aware layers supply the factories.
#ifndef SRC_UTIL_WORKPOOL_H_
#define SRC_UTIL_WORKPOOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <typeinfo>
#include <vector>

namespace snowboard {

// Per-worker handle passed to job bodies. Owned by the pool thread it represents; not
// thread-safe (only that thread may touch it, which is the only access the API offers).
class PoolWorker {
 public:
  // Stable worker index in [0, pool size): slot-keyed stage outputs and deterministic
  // seeding key off it, never off the OS thread id.
  int index() const { return index_; }

  // Lazily-built per-worker state, keyed by type. The first request constructs the object
  // via `make`; every later request — same job, later job, later campaign — returns the
  // SAME object. This is the VM-reuse hook: worker code asks for its KernelVm here and
  // boots at most one per worker per process lifetime.
  template <typename T>
  T& State(const std::function<std::unique_ptr<T>()>& make) {
    for (Slot& slot : slots_) {
      if (*slot.type == typeid(T)) {
        return *static_cast<T*>(slot.ptr.get());
      }
    }
    std::shared_ptr<T> made(make());
    slots_.push_back(Slot{&typeid(T), made});
    return *made;
  }

  // True if a State<T> object already exists (tests observe boot-once behavior).
  template <typename T>
  bool HasState() const {
    for (const Slot& slot : slots_) {
      if (*slot.type == typeid(T)) {
        return true;
      }
    }
    return false;
  }

 private:
  friend class WorkerPool;
  struct Slot {
    const std::type_info* type;
    std::shared_ptr<void> ptr;  // shared_ptr<void> keeps the typed deleter.
  };

  int index_ = 0;
  std::vector<Slot> slots_;
};

// A pool of parked threads that runs one job at a time. Jobs are SPMD-style: Run(n, body)
// executes body(worker) once on each of n distinct pool threads and returns when all n
// instances have returned. The pool grows on demand and never shrinks; idle threads block
// on a condition variable and cost nothing.
class WorkerPool {
 public:
  // The process-lifetime pool every pipeline stage shares. Intentionally leaked: its
  // threads (and the booted VMs parked in their PoolWorker slots) live until process exit,
  // so no static-destruction-order hazard can fire while a worker is mid-teardown.
  static WorkerPool& Global();

  WorkerPool() = default;
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Runs `body` once on each of `num_workers` pool threads (growing the pool as needed)
  // and blocks until every instance returns. An unwinding body (fault-injected "crash",
  // exhausted claim loop) simply returns — the pool itself has no cancellation state, so
  // a job that died on one worker leaves the pool immediately reusable.
  //
  // Concurrent Run calls from different threads serialize. Calling Run from inside a pool
  // thread would deadlock by construction and is checked fatal.
  void Run(int num_workers, const std::function<void(PoolWorker&)>& body);

  // Threads created so far (monotonic; tests assert boot-once / grow-on-demand behavior).
  int thread_count() const;

 private:
  struct PoolThread {
    std::thread thread;
    PoolWorker worker;
    uint64_t last_job = 0;  // Job id this thread last picked up (it runs each job once).
  };

  void ThreadMain(PoolThread* self);
  void GrowLocked(int target);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // New job posted, or shutting down.
  std::condition_variable done_cv_;  // A job instance finished.
  std::vector<std::unique_ptr<PoolThread>> threads_;
  const std::function<void(PoolWorker&)>* job_ = nullptr;
  uint64_t job_id_ = 0;   // Incremented per Run.
  int job_width_ = 0;     // Threads with index < job_width_ participate.
  int remaining_ = 0;     // Instances still running (or not yet picked up).
  bool stopping_ = false;
  std::mutex run_mutex_;  // Serializes Run callers.
};

// Deterministic dynamic work claiming: hands out indices 0..size-1 in increasing order
// across however many workers pull from it. The claim ORDER is fixed; which worker gets
// which index is not — so stages write results into slot `i` (or merge in index order)
// and their outputs are invariant under worker count and scheduling.
class IndexClaim {
 public:
  explicit IndexClaim(size_t size) : size_(size) {}

  // Claims the next index; false when the range is exhausted.
  bool Next(size_t* index) {
    size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= size_) {
      return false;
    }
    *index = i;
    return true;
  }

 private:
  std::atomic<size_t> next_{0};
  size_t size_;
};

}  // namespace snowboard

#endif  // SRC_UTIL_WORKPOOL_H_
