#include "src/util/fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "src/util/fault.h"
#include "src/util/log.h"

namespace snowboard {

namespace {

std::string ErrnoText() { return std::strerror(errno); }

// Writes the whole buffer, retrying short writes and EINTR.
bool WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

void FsyncDirectoryOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

bool EnsureDirectory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    SB_LOG(kWarn) << "fs: mkdir " << path << ": " << ec.message();
  }
  return std::filesystem::is_directory(path, ec);
}

bool AtomicWriteFile(const std::string& path, const std::string& contents,
                     FaultInjector* fault) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    SB_LOG(kWarn) << "fs: open " << tmp << ": " << ErrnoText();
    return false;
  }
  if (!WriteAll(fd, contents.data(), contents.size())) {
    SB_LOG(kWarn) << "fs: write " << tmp << ": " << ErrnoText();
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::fsync(fd) != 0) {
    SB_LOG(kWarn) << "fs: fsync " << tmp << ": " << ErrnoText();
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (fault != nullptr && fault->At("fs.commit")) {
    return false;  // Died before the rename: target untouched, .tmp left behind.
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    SB_LOG(kWarn) << "fs: rename " << tmp << " -> " << path << ": " << ErrnoText();
    ::unlink(tmp.c_str());
    return false;
  }
  FsyncDirectoryOf(path);
  if (fault != nullptr && fault->At("fs.committed")) {
    return false;  // Died after the rename: the new contents are durable.
  }
  return true;
}

bool AppendLineDurable(const std::string& path, const std::string& line,
                       FaultInjector* fault) {
  if (line.find('\n') != std::string::npos) {
    SB_LOG(kWarn) << "fs: refusing to append multi-line record to " << path;
    return false;
  }
  if (fault != nullptr && fault->At("journal.append")) {
    return false;  // Died before the append reached the file.
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    SB_LOG(kWarn) << "fs: open " << path << ": " << ErrnoText();
    return false;
  }
  std::string record = line + "\n";
  bool ok = WriteAll(fd, record.data(), record.size());
  if (!ok) {
    SB_LOG(kWarn) << "fs: append " << path << ": " << ErrnoText();
  } else if (::fsync(fd) != 0) {
    SB_LOG(kWarn) << "fs: fsync " << path << ": " << ErrnoText();
    ok = false;
  }
  ::close(fd);
  if (ok && fault != nullptr && fault->At("journal.appended")) {
    return false;  // Died after the record became durable.
  }
  return ok;
}

bool AppendLinesDurable(const std::string& path, const std::vector<std::string>& lines,
                        FaultInjector* fault) {
  if (lines.empty()) {
    return true;
  }
  std::string buffer;
  size_t total = 0;
  for (const std::string& line : lines) {
    if (line.find('\n') != std::string::npos) {
      SB_LOG(kWarn) << "fs: refusing to append multi-line record to " << path;
      return false;
    }
    total += line.size() + 1;
  }
  buffer.reserve(total);
  for (const std::string& line : lines) {
    buffer += line;
    buffer += '\n';
  }
  if (fault != nullptr && fault->At("journal.append")) {
    return false;  // Died before the batch reached the file: every line in it is lost.
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    SB_LOG(kWarn) << "fs: open " << path << ": " << ErrnoText();
    return false;
  }
  bool ok = WriteAll(fd, buffer.data(), buffer.size());
  if (!ok) {
    SB_LOG(kWarn) << "fs: append " << path << ": " << ErrnoText();
  } else if (::fsync(fd) != 0) {
    SB_LOG(kWarn) << "fs: fsync " << path << ": " << ErrnoText();
    ok = false;
  }
  ::close(fd);
  if (ok && fault != nullptr && fault->At("journal.appended")) {
    return false;  // Died after the whole batch became durable.
  }
  return ok;
}

std::optional<std::string> ReadFileContents(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno != ENOENT) {
      SB_LOG(kWarn) << "fs: open " << path << ": " << ErrnoText();
    }
    return std::nullopt;
  }
  std::string contents;
  char buffer[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      SB_LOG(kWarn) << "fs: read " << path << ": " << ErrnoText();
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) {
      break;
    }
    contents.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return contents;
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

bool RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) {
    return true;
  }
  SB_LOG(kWarn) << "fs: unlink " << path << ": " << ErrnoText();
  return false;
}

}  // namespace snowboard
