// Invariant-checking macros for the Snowboard codebase.
//
// SB_CHECK is always on (including release builds): the simulator's correctness is the
// foundation every experiment rests on, so internal invariant violations must abort loudly
// rather than corrupt a trace. SB_DCHECK compiles out in NDEBUG builds and is reserved for
// hot-path checks.
#ifndef SRC_UTIL_ASSERT_H_
#define SRC_UTIL_ASSERT_H_

#include <cstdio>
#include <cstdlib>

namespace snowboard {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "SB_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace snowboard

#define SB_CHECK(expr)                                   \
  do {                                                   \
    if (!(expr)) {                                       \
      ::snowboard::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                    \
  } while (0)

#ifdef NDEBUG
#define SB_DCHECK(expr) \
  do {                  \
  } while (0)
#else
#define SB_DCHECK(expr) SB_CHECK(expr)
#endif

#endif  // SRC_UTIL_ASSERT_H_
