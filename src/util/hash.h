// Hashing helpers used for PMC keys, clustering keys, and coverage edges.
#ifndef SRC_UTIL_HASH_H_
#define SRC_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace snowboard {

// FNV-1a over an arbitrary byte string; stable across runs (used for instruction-site ids).
inline uint64_t Fnv1a(std::string_view bytes, uint64_t seed = 0xcbf29ce484222325ull) {
  uint64_t h = seed;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// Order-dependent combiner (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4));
}

// Variadic convenience: HashAll(a, b, c) folds left with HashCombine.
template <typename... Ts>
uint64_t HashAll(Ts... vs) {
  uint64_t h = 0x9ae16a3b2f90404full;
  ((h = HashCombine(h, static_cast<uint64_t>(vs))), ...);
  return h;
}

}  // namespace snowboard

#endif  // SRC_UTIL_HASH_H_
