#include "src/util/fault.h"

#include "src/util/hash.h"

namespace snowboard {

namespace {

// Deterministic per-ordinal coin: 1-in-`chance` derived from (seed, ordinal, salt).
bool SeededChance(uint64_t seed, uint64_t ordinal, uint64_t salt, uint32_t chance) {
  if (chance == 0) {
    return false;
  }
  return HashAll(seed, ordinal, salt) % chance == 0;
}

}  // namespace

bool FaultInjector::At(const char* site) {
  uint64_t ordinal = next_point_.fetch_add(1, std::memory_order_acq_rel);
  bool hit = static_cast<int64_t>(ordinal) == plan_.crash_at ||
             SeededChance(plan_.seed, ordinal, /*salt=*/0x1dead, plan_.crash_chance);
  if (hit && !crashed_.exchange(true, std::memory_order_acq_rel)) {
    crash_point_.store(static_cast<int64_t>(ordinal), std::memory_order_release);
    std::lock_guard<std::mutex> lock(site_mutex_);
    crash_site_ = site;
  }
  return crashed();
}

bool FaultInjector::HangTrial() {
  uint64_t ordinal = next_hang_point_.fetch_add(1, std::memory_order_acq_rel);
  bool hit = static_cast<int64_t>(ordinal) == plan_.hang_at ||
             SeededChance(plan_.seed, ordinal, /*salt=*/0x2417, plan_.hang_chance);
  if (hit) {
    hangs_injected_.fetch_add(1, std::memory_order_acq_rel);
  }
  return hit;
}

std::string FaultInjector::crash_site() const {
  std::lock_guard<std::mutex> lock(site_mutex_);
  return crash_site_;
}

}  // namespace snowboard
