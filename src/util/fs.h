// Crash-safe filesystem primitives.
//
// Checkpoints are only as good as their weakest write: a plain ofstream truncates the
// target first, so a crash mid-write leaves a torn file that a resumed process would
// half-load. Everything here follows the write-temp-then-rename discipline (the same one
// journaling filesystems and the paper's "stored on disk" artifacts rely on): after a
// crash — real, or injected through a FaultInjector for the crash-sweep harness — a path
// holds either its old contents or the new ones, never a mix. IO failures log errno
// context at kWarn and report false/nullopt; they never throw.
#ifndef SRC_UTIL_FS_H_
#define SRC_UTIL_FS_H_

#include <optional>
#include <string>
#include <vector>

namespace snowboard {

class FaultInjector;

// Creates `path` and any missing parents. True if the directory exists afterwards.
bool EnsureDirectory(const std::string& path);

// Atomically replaces `path`: writes `path.tmp`, fsyncs it, renames it over `path`, and
// fsyncs the parent directory. Fault points "fs.commit" (before the rename — the `.tmp`
// is left behind, as a real crash would) and "fs.committed" (after — the new contents are
// durable but the "process" died before observing success). Returns true only when the
// contents are committed AND no injected crash fired.
bool AtomicWriteFile(const std::string& path, const std::string& contents,
                     FaultInjector* fault = nullptr);

// Durably appends `line` plus '\n' in a single write(2) followed by fsync — the journal
// primitive. A crash can truncate only the final line, which the reader's per-line
// checksum rejects. Fault points "journal.append" / "journal.appended".
bool AppendLineDurable(const std::string& path, const std::string& line,
                       FaultInjector* fault = nullptr);

// Group-commit variant: appends every line (each plus '\n') in ONE write(2) followed by
// ONE fsync, amortizing the durability cost across the batch. Same fault points as
// AppendLineDurable, fired once per batch: a crash at "journal.append" loses the whole
// batch (the file is untouched), a crash at "journal.appended" keeps it (the single
// O_APPEND write plus fsync made all lines durable together). Empty batch is a no-op true.
bool AppendLinesDurable(const std::string& path, const std::vector<std::string>& lines,
                        FaultInjector* fault = nullptr);

// Whole-file read; nullopt (with a kWarn log for errors other than ENOENT) on failure.
std::optional<std::string> ReadFileContents(const std::string& path);

// True if `path` exists (any file type).
bool PathExists(const std::string& path);

// Removes a file if present; true when the path does not exist afterwards.
bool RemoveFileIfExists(const std::string& path);

}  // namespace snowboard

#endif  // SRC_UTIL_FS_H_
