// Structured event tracing: spans + counters over the campaign pipeline.
//
// The paper's funnel (millions of PMCs clustered down to a prioritized test set, then
// trials) is only diagnosable with per-stage, per-worker telemetry; eBPF-era successors to
// Snowboard steer exploration with exactly this kind of low-overhead event stream. This is
// the repo's analog: every pipeline stage, explorer trial, snapshot restore, and checkpoint
// IO emits fixed-size records into a per-thread single-producer buffer, and the tracer
// renders the merged stream as Chrome `trace_event` JSON (loadable in about:tracing or
// https://ui.perfetto.dev) plus the flat metrics snapshot in snowboard/metrics.h.
//
// Cost model (the zero-allocation trial hot path must not notice tracing):
//   * Compiled out: with -DSB_TRACE_COMPILED=0 every TRACE_* macro expands to nothing.
//   * Runtime off (the default): one relaxed atomic load + branch per TRACE_* site.
//   * Runtime on: one fixed-size record pushed into a preallocated per-thread buffer —
//     no locks, no allocation (the buffer is sized at thread registration, which the
//     warm-up phase of any steady-state loop performs). A full buffer drops the record
//     and counts it; it never grows, blocks, or reallocates.
//
// Determinism: records carry per-thread logical sequence numbers (begin_seq/end_seq) that
// define span nesting and the emitted event order. Wall-clock lives ONLY in the dedicated
// "ts"/"dur" fields, so golden-file tests mask those two keys and compare the rest
// byte-for-byte. Buffers are drained only at quiescent points (stage barriers / campaign
// end) — the owning threads must not be emitting during WriteChromeTrace.
#ifndef SRC_UTIL_TRACE_H_
#define SRC_UTIL_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

// Compile-time master switch: 0 compiles every TRACE_* macro (and their argument
// evaluation) out of the binary entirely.
#ifndef SB_TRACE_COMPILED
#define SB_TRACE_COMPILED 1
#endif

namespace snowboard {

enum class TracePhase : uint8_t {
  kSpan = 0,     // Chrome "X" (complete) event: ts + dur.
  kCounter = 1,  // Chrome "C" event: value at a point in time.
  kInstant = 2,  // Chrome "i" event.
};

// One fixed-size telemetry record. `name` must be a static-duration string (macro call
// sites pass literals); records never own memory.
struct TraceRecord {
  const char* name = nullptr;
  uint64_t id = 0;         // Call-site payload (test index, byte count, ...).
  uint64_t value = 0;      // Counter value (kCounter only).
  uint64_t ts_nanos = 0;   // Start time, nanoseconds since Tracer::Start.
  uint64_t dur_nanos = 0;  // Span duration (kSpan only).
  uint64_t begin_seq = 0;  // Per-thread logical clock at open.
  uint64_t end_seq = 0;    // Per-thread logical clock at close (== begin_seq unless kSpan).
  TracePhase phase = TracePhase::kInstant;
};

// Single-producer append-only record buffer owned by one thread. Fixed capacity: a push
// into a full buffer increments `dropped` and returns — the hot path never allocates.
// Spans are pushed once, at close (begin timestamp + duration), so a drop can lose a span
// but can never unbalance the nesting of the spans that remain.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity) : records_(capacity) {}

  uint64_t NextSeq() { return seq_++; }
  void Push(const TraceRecord& record) {
    if (size_ == records_.size()) {
      dropped_++;
      return;
    }
    records_[size_++] = record;
  }

  const TraceRecord* data() const { return records_.data(); }
  size_t size() const { return size_; }
  uint64_t dropped() const { return dropped_; }

 private:
  std::vector<TraceRecord> records_;
  size_t size_ = 0;
  uint64_t seq_ = 0;
  uint64_t dropped_ = 0;
};

// Process-wide tracer. Threads register lazily on first emission (one mutex acquisition
// + one buffer allocation per thread per session — never in steady state) and then emit
// lock-free into their own buffer. Thread ids are registration-ordered.
class Tracer {
 public:
  static Tracer& Global();

  // True when tracing is runtime-enabled; the only check on the fast path.
  static bool Active() { return active_.load(std::memory_order_relaxed); }

  // Begins a session: discards prior records and enables emission. `per_thread_capacity`
  // is the record budget of each registering thread.
  void Start(size_t per_thread_capacity = 1 << 18);
  // Disables emission; collected records remain available until the next Start.
  void Stop();

  // Nanoseconds since Start (0 when inactive).
  uint64_t NowNanos() const;

  // The calling thread's buffer for the current session (registering it first if
  // needed), or nullptr when tracing is inactive.
  TraceBuffer* ThreadBuffer();

  // Renders every record collected so far as Chrome trace_event JSON: one event per line,
  // events ordered by (tid, end_seq) — spans are pushed at close, so emission order is the
  // logical close order — a deterministic function of the records, never of drain timing.
  // Caller must ensure emitting threads are quiescent (stage barrier or campaign end).
  std::string ChromeTraceJson() const;
  bool WriteChromeTrace(const std::string& path) const;  // Atomic write via util/fs.

  // Records dropped by full buffers across all threads (visible in the JSON footer too).
  uint64_t TotalDropped() const;

 private:
  Tracer() = default;

  static std::atomic<bool> active_;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;
  size_t per_thread_capacity_ = 1 << 18;
  std::atomic<uint64_t> session_{0};  // Bumped per Start; stale thread-locals re-register.
  std::chrono::steady_clock::time_point start_time_;
};

// RAII span. Opens (captures a timestamp + sequence number) at construction when tracing
// is active, pushes ONE kSpan record at destruction. When inactive, construction is a
// relaxed load + branch and destruction a predictable not-taken branch.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, uint64_t id = 0) {
    if (SB_TRACE_COMPILED && Tracer::Active()) {
      Open(name, id);
    }
  }
  ~TraceSpan() {
    if (buffer_ != nullptr) {
      Close();
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Open(const char* name, uint64_t id);  // Out of line: keeps call sites small.
  void Close();

  TraceBuffer* buffer_ = nullptr;
  const char* name_ = nullptr;
  uint64_t id_ = 0;
  uint64_t ts_nanos_ = 0;
  uint64_t begin_seq_ = 0;
};

// Out-of-line emitters behind the TRACE_COUNTER / TRACE_INSTANT macros.
void TraceEmitCounter(const char* name, uint64_t value);
void TraceEmitInstant(const char* name, uint64_t id);

}  // namespace snowboard

#if SB_TRACE_COMPILED

#define SB_TRACE_CONCAT_INNER(a, b) a##b
#define SB_TRACE_CONCAT(a, b) SB_TRACE_CONCAT_INNER(a, b)

// Scoped span: TRACE_SPAN("explore.trial", trial_index); lives to the end of the
// enclosing block.
#define TRACE_SPAN(...) \
  ::snowboard::TraceSpan SB_TRACE_CONCAT(sb_trace_span_, __COUNTER__)(__VA_ARGS__)

// Point-in-time counter sample: TRACE_COUNTER("explore.restore_bytes", bytes).
#define TRACE_COUNTER(name, value)                       \
  do {                                                   \
    if (::snowboard::Tracer::Active()) {                 \
      ::snowboard::TraceEmitCounter((name), (value));    \
    }                                                    \
  } while (0)

// Zero-duration marker: TRACE_INSTANT("checkpoint.reset", 0).
#define TRACE_INSTANT(name, id)                          \
  do {                                                   \
    if (::snowboard::Tracer::Active()) {                 \
      ::snowboard::TraceEmitInstant((name), (id));       \
    }                                                    \
  } while (0)

#else  // !SB_TRACE_COMPILED

#define TRACE_SPAN(...) do {} while (0)
#define TRACE_COUNTER(name, value) do {} while (0)
#define TRACE_INSTANT(name, id) do {} while (0)

#endif  // SB_TRACE_COMPILED

#endif  // SRC_UTIL_TRACE_H_
