#include "src/util/trace.h"

#include "src/util/fs.h"
#include "src/util/strings.h"

namespace snowboard {

std::atomic<bool> Tracer::active_{false};

namespace {

// Thread-local registration state: the buffer is owned by the Tracer (it must outlive the
// thread — worker threads die at stage barriers, their records are drained later); the
// session stamp invalidates the cached pointer across Start calls.
struct ThreadSlot {
  TraceBuffer* buffer = nullptr;
  uint64_t session = 0;
};
thread_local ThreadSlot t_slot;

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Start(size_t per_thread_capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.clear();
  per_thread_capacity_ = per_thread_capacity > 0 ? per_thread_capacity : 1;
  session_.fetch_add(1, std::memory_order_relaxed);
  start_time_ = std::chrono::steady_clock::now();
  active_.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() { active_.store(false, std::memory_order_relaxed); }

uint64_t Tracer::NowNanos() const {
  if (!Active()) {
    return 0;
  }
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - start_time_)
                                   .count());
}

TraceBuffer* Tracer::ThreadBuffer() {
  if (!Active()) {
    return nullptr;
  }
  // Fast path: this thread already registered for the current session.
  uint64_t session = session_.load(std::memory_order_relaxed);
  if (t_slot.buffer != nullptr && t_slot.session == session) {
    return t_slot.buffer;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (!Active()) {
    return nullptr;
  }
  buffers_.push_back(std::make_unique<TraceBuffer>(per_thread_capacity_));
  t_slot.buffer = buffers_.back().get();
  t_slot.session = session_.load(std::memory_order_relaxed);
  return t_slot.buffer;
}

uint64_t Tracer::TotalDropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    dropped += buffer->dropped();
  }
  return dropped;
}

namespace {

// One Chrome trace_event per record, one event per line. ts/dur are microseconds (the
// format's unit); they are the ONLY fields derived from wall clock — everything else is a
// deterministic function of the record stream, so tests mask "ts"/"dur" and byte-compare.
void AppendEventJson(std::string* out, const TraceRecord& record, size_t tid) {
  double ts_us = static_cast<double>(record.ts_nanos) * 1e-3;
  switch (record.phase) {
    case TracePhase::kSpan:
      StrAppendf(out,
                 "{\"name\":\"%s\",\"cat\":\"snowboard\",\"ph\":\"X\",\"pid\":1,"
                 "\"tid\":%zu,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"id\":%llu,"
                 "\"begin_seq\":%llu,\"end_seq\":%llu}}",
                 record.name, tid, ts_us, static_cast<double>(record.dur_nanos) * 1e-3,
                 static_cast<unsigned long long>(record.id),
                 static_cast<unsigned long long>(record.begin_seq),
                 static_cast<unsigned long long>(record.end_seq));
      break;
    case TracePhase::kCounter:
      StrAppendf(out,
                 "{\"name\":\"%s\",\"cat\":\"snowboard\",\"ph\":\"C\",\"pid\":1,"
                 "\"tid\":%zu,\"ts\":%.3f,\"args\":{\"value\":%llu,\"begin_seq\":%llu,"
                 "\"end_seq\":%llu}}",
                 record.name, tid, ts_us, static_cast<unsigned long long>(record.value),
                 static_cast<unsigned long long>(record.begin_seq),
                 static_cast<unsigned long long>(record.end_seq));
      break;
    case TracePhase::kInstant:
      StrAppendf(out,
                 "{\"name\":\"%s\",\"cat\":\"snowboard\",\"ph\":\"i\",\"s\":\"t\","
                 "\"pid\":1,\"tid\":%zu,\"ts\":%.3f,\"args\":{\"id\":%llu,"
                 "\"begin_seq\":%llu,\"end_seq\":%llu}}",
                 record.name, tid, ts_us, static_cast<unsigned long long>(record.id),
                 static_cast<unsigned long long>(record.begin_seq),
                 static_cast<unsigned long long>(record.end_seq));
      break;
  }
}

}  // namespace

std::string Tracer::ChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
  bool first = true;
  uint64_t dropped = 0;
  // Buffers are registration-ordered; within a buffer, records are already in end_seq
  // order (a single producer appends each record when it completes — spans at close). The
  // concatenation is therefore sorted by (tid, end_seq) with no explicit sort.
  for (size_t tid = 0; tid < buffers_.size(); tid++) {
    const TraceBuffer& buffer = *buffers_[tid];
    dropped += buffer.dropped();
    for (size_t i = 0; i < buffer.size(); i++) {
      if (!first) {
        out += ",\n";
      }
      first = false;
      AppendEventJson(&out, buffer.data()[i], tid);
    }
  }
  StrAppendf(&out, "\n],\n\"otherData\":{\"dropped_records\":\"%llu\"}}\n",
             static_cast<unsigned long long>(dropped));
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  return AtomicWriteFile(path, ChromeTraceJson());
}

void TraceSpan::Open(const char* name, uint64_t id) {
  Tracer& tracer = Tracer::Global();
  TraceBuffer* buffer = tracer.ThreadBuffer();
  if (buffer == nullptr) {
    return;
  }
  buffer_ = buffer;
  name_ = name;
  id_ = id;
  ts_nanos_ = tracer.NowNanos();
  begin_seq_ = buffer->NextSeq();
}

void TraceSpan::Close() {
  TraceRecord record;
  record.name = name_;
  record.id = id_;
  record.ts_nanos = ts_nanos_;
  uint64_t now = Tracer::Global().NowNanos();
  record.dur_nanos = now >= ts_nanos_ ? now - ts_nanos_ : 0;
  record.begin_seq = begin_seq_;
  record.end_seq = buffer_->NextSeq();
  record.phase = TracePhase::kSpan;
  buffer_->Push(record);
  buffer_ = nullptr;
}

void TraceEmitCounter(const char* name, uint64_t value) {
  Tracer& tracer = Tracer::Global();
  TraceBuffer* buffer = tracer.ThreadBuffer();
  if (buffer == nullptr) {
    return;
  }
  TraceRecord record;
  record.name = name;
  record.value = value;
  record.ts_nanos = tracer.NowNanos();
  record.begin_seq = record.end_seq = buffer->NextSeq();
  record.phase = TracePhase::kCounter;
  buffer->Push(record);
}

void TraceEmitInstant(const char* name, uint64_t id) {
  Tracer& tracer = Tracer::Global();
  TraceBuffer* buffer = tracer.ThreadBuffer();
  if (buffer == nullptr) {
    return;
  }
  TraceRecord record;
  record.name = name;
  record.id = id;
  record.ts_nanos = tracer.NowNanos();
  record.begin_seq = record.end_seq = buffer->NextSeq();
  record.phase = TracePhase::kInstant;
  buffer->Push(record);
}

}  // namespace snowboard
