// printf-style std::string formatting, used for console lines and reports.
#ifndef SRC_UTIL_STRINGS_H_
#define SRC_UTIL_STRINGS_H_

#include <cstdarg>
#include <cstdio>
#include <string>

namespace snowboard {

inline std::string StrPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

inline std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

inline void StrAppendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

// Appends formatted text to `out` in place (trace/report emitters build multi-megabyte
// documents; appending avoids a temporary per line).
inline void StrAppendf(std::string* out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed > 0) {
    size_t old_size = out->size();
    out->resize(old_size + static_cast<size_t>(needed));
    std::vsnprintf(out->data() + old_size, static_cast<size_t>(needed) + 1, fmt, args_copy);
  }
  va_end(args_copy);
}

}  // namespace snowboard

#endif  // SRC_UTIL_STRINGS_H_
