#include "src/util/rng.h"

#include "src/util/assert.h"

namespace snowboard {

uint64_t Rng::Below(uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Debiased multiply-shift (Lemire). The bias window for 64-bit output is negligible for the
  // bounds used here, but the rejection loop keeps the draw exactly uniform regardless.
  uint64_t threshold = (-bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::Range(int64_t lo, int64_t hi) {
  SB_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Below(span));
}

}  // namespace snowboard
