// Process-wide pipeline counters.
//
// Lives in util (not snowboard/stats.h, which re-exports it) so that low layers — the
// simulator's snapshot-restore path and the kernel VM wrapper — can report into the same
// counter block the pipeline and its tests observe. VM profiling runs are the §5.4 cost
// center (40 machine-hours in the paper) and snapshot restore is the Algorithm 2 line-8
// inner-loop cost, so both are accounted here.
#ifndef SRC_UTIL_COUNTERS_H_
#define SRC_UTIL_COUNTERS_H_

#include <atomic>
#include <cstdint>

namespace snowboard {

// Process-wide counters over the expensive preparation and execution work. Cache efficacy
// is asserted in these terms (a multi-strategy campaign over one corpus must pay
// `vm_profile_runs == corpus_size` once); restore efficacy likewise (delta restores must
// copy a small fraction of `full` bytes on the standard campaign workload).
struct PipelineCounters {
  // KernelVm constructions (full kernel boots). The unified campaign engine parks one VM
  // per pool worker for the process lifetime, so this stays at ~max worker count no matter
  // how many stages or campaigns run — the boot-once invariant workpool_test asserts.
  std::atomic<uint64_t> vm_boots{0};
  std::atomic<uint64_t> vm_profile_runs{0};     // Sequential tests actually executed on a VM.
  std::atomic<uint64_t> profile_cache_hits{0};  // Profiles served from a ProfileCache.
  std::atomic<uint64_t> profile_cache_misses{0};

  // --- Snapshot restore (KernelVm::RestoreSnapshot; Algorithm 2 line 8). ---
  std::atomic<uint64_t> snapshot_full_restores{0};   // Whole-arena memcpy restores.
  std::atomic<uint64_t> snapshot_delta_restores{0};  // Dirty-page-only restores.
  std::atomic<uint64_t> snapshot_restored_bytes{0};  // Bytes actually copied, both kinds.
  std::atomic<uint64_t> snapshot_restored_pages{0};  // Dirty pages copied by delta restores.
  std::atomic<uint64_t> snapshot_restore_nanos{0};   // Wall time summed across workers.

  // --- Checkpoint/resume (CheckpointStore; crash-safe campaign state). ---
  // The resume-equivalence proof is stated in these terms: after a resume,
  // `concurrent_tests_run` must equal total tests minus `tests_resumed` — a resumed run
  // re-executes zero already-journaled tests.
  std::atomic<uint64_t> concurrent_tests_run{0};  // Concurrent tests explored live.
  std::atomic<uint64_t> tests_resumed{0};         // Outcomes replayed from a journal.
  // Journal records that decoded but referenced a test index outside the current test
  // list (a foreign or truncated campaign's journal). They are skipped — the test runs
  // live — but silently dropping them hides real corruption, so they are counted and
  // warned about.
  std::atomic<uint64_t> journal_records_dropped{0};
  std::atomic<uint64_t> trials_retried{0};        // Hung-trial retries in the explorer.
  std::atomic<uint64_t> checkpoint_writes{0};     // CheckpointStore::Put commits.
  std::atomic<uint64_t> checkpoint_bytes{0};      // Payload bytes across those commits.
  std::atomic<uint64_t> checkpoint_loads{0};      // Verified Get hits (stage skips).
};

PipelineCounters& GlobalPipelineCounters();
void ResetPipelineCounters();  // Zeroes all counters (test/bench isolation).

}  // namespace snowboard

#endif  // SRC_UTIL_COUNTERS_H_
