// Process-wide pipeline counters.
//
// Lives in util (not snowboard/stats.h, which re-exports it) so that low layers — the
// simulator's snapshot-restore path and the kernel VM wrapper — can report into the same
// counter block the pipeline and its tests observe. VM profiling runs are the §5.4 cost
// center (40 machine-hours in the paper) and snapshot restore is the Algorithm 2 line-8
// inner-loop cost, so both are accounted here.
//
// Sharded accumulation: the per-trial hot path (one snapshot restore + several counter
// bumps per trial, on every worker) used to contend on this one global cache line block.
// Hot sites therefore report through ActiveCounters(): a thread running inside a
// CounterShardScope accumulates into a thread-local PipelineCounters shard (uncontended —
// the atomics live on a cache line only that thread touches) which is drained into the
// global block with plain additions. Addition is commutative, so totals are independent of
// worker count and flush order — the reason sharding cannot perturb any determinism
// assertion stated over counter totals. Threads outside any scope (tests, tools, the
// coordinator) write the global block directly, as before.
#ifndef SRC_UTIL_COUNTERS_H_
#define SRC_UTIL_COUNTERS_H_

#include <atomic>
#include <cstdint>

namespace snowboard {

// Process-wide counters over the expensive preparation and execution work. Cache efficacy
// is asserted in these terms (a multi-strategy campaign over one corpus must pay
// `vm_profile_runs == corpus_size` once); restore efficacy likewise (delta restores must
// copy a small fraction of `full` bytes on the standard campaign workload).
struct PipelineCounters {
  // KernelVm constructions (full kernel boots). The unified campaign engine parks one VM
  // per pool worker for the process lifetime, so this stays at ~max worker count no matter
  // how many stages or campaigns run — the boot-once invariant workpool_test asserts.
  std::atomic<uint64_t> vm_boots{0};
  std::atomic<uint64_t> vm_profile_runs{0};     // Sequential tests actually executed on a VM.
  std::atomic<uint64_t> profile_cache_hits{0};  // Profiles served from a ProfileCache.
  std::atomic<uint64_t> profile_cache_misses{0};

  // --- Snapshot restore (KernelVm::RestoreSnapshot; Algorithm 2 line 8). ---
  std::atomic<uint64_t> snapshot_full_restores{0};   // Whole-arena memcpy restores.
  std::atomic<uint64_t> snapshot_delta_restores{0};  // Dirty-page-only restores.
  std::atomic<uint64_t> snapshot_restored_bytes{0};  // Bytes actually copied, both kinds.
  std::atomic<uint64_t> snapshot_restored_pages{0};  // Dirty pages copied by delta restores.
  // Dirty pages whose live bytes still equaled the snapshot, so the delta restore skipped
  // the copy-back (the hash-skip fast path in sim::Memory::RestoreDirty).
  std::atomic<uint64_t> snapshot_skipped_pages{0};
  std::atomic<uint64_t> snapshot_restore_nanos{0};   // Wall time summed across workers.

  // --- Checkpoint/resume (CheckpointStore; crash-safe campaign state). ---
  // The resume-equivalence proof is stated in these terms: after a resume,
  // `concurrent_tests_run` must equal total tests minus `tests_resumed` — a resumed run
  // re-executes zero already-journaled tests.
  std::atomic<uint64_t> concurrent_tests_run{0};  // Concurrent tests explored live.
  std::atomic<uint64_t> tests_resumed{0};         // Outcomes replayed from a journal.
  // Journal records that decoded but referenced a test index outside the current test
  // list (a foreign or truncated campaign's journal). They are skipped — the test runs
  // live — but silently dropping them hides real corruption, so they are counted and
  // warned about.
  std::atomic<uint64_t> journal_records_dropped{0};
  std::atomic<uint64_t> trials_retried{0};        // Hung-trial retries in the explorer.
  std::atomic<uint64_t> checkpoint_writes{0};     // CheckpointStore::Put commits.
  std::atomic<uint64_t> checkpoint_bytes{0};      // Payload bytes across those commits.
  std::atomic<uint64_t> checkpoint_loads{0};      // Verified Get hits (stage skips).
  // --- Journal group commit (CheckpointStore::AppendJournal batching). ---
  std::atomic<uint64_t> journal_batch_flushes{0};  // Group commits (one fsync each).
  std::atomic<uint64_t> journal_batch_records{0};  // Records written across those commits.
  std::atomic<uint64_t> journal_flush_nanos{0};    // Wall time inside group commits.
};

PipelineCounters& GlobalPipelineCounters();
void ResetPipelineCounters();  // Zeroes all counters (test/bench isolation).

// The current thread's counter sink: its installed shard, or the global block. Hot paths
// (restore accounting, per-trial and per-test bumps) report here so that pool workers never
// touch shared cache lines mid-trial.
PipelineCounters& ActiveCounters();

// Installs a zeroed thread-local PipelineCounters shard as this thread's ActiveCounters()
// sink for the scope's lifetime; the destructor drains it into GlobalPipelineCounters().
// Scopes nest (the inner shard drains into the outer one's view of ActiveCounters — i.e.
// still the global block, since draining targets the global directly; nesting is allowed
// but pointless and the inner scope simply shadows the outer). WorkerPool installs one per
// job instance, so flushed totals are globally visible before WorkerPool::Run returns —
// every existing read-after-join of the global block keeps observing exact totals.
class CounterShardScope {
 public:
  CounterShardScope();
  ~CounterShardScope();

  CounterShardScope(const CounterShardScope&) = delete;
  CounterShardScope& operator=(const CounterShardScope&) = delete;

  // Drains the shard's accumulated deltas into the global block mid-scope (zeroing the
  // shard). The streaming engine calls this at work-item boundaries so cross-stage
  // diagnostics that read the global block mid-job (restore-time stage attribution) stay
  // item-accurate.
  void Flush();

 private:
  PipelineCounters local_;
  CounterShardScope* previous_;  // Restored on destruction (scopes may nest).
};

// Flush() on this thread's installed shard; no-op when the thread has none (in which case
// its counter writes already landed in the global block).
void FlushCounterShard();

}  // namespace snowboard

#endif  // SRC_UTIL_COUNTERS_H_
