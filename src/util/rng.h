// Deterministic pseudo-random number generation.
//
// Snowboard's exploration is randomized but must be reproducible: Algorithm 2 reseeds the
// generator with SEED + trial at the start of every trial so that a found interleaving can be
// replayed exactly. We use SplitMix64, which is tiny, fast, and has no global state — every
// component owns its own Rng instance.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>

namespace snowboard {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  // Reseeds in place; used by Algorithm 2's `random.seed(SEED + trial)`.
  void Seed(uint64_t seed) { state_ = seed; }

  // Next 64 uniform bits (SplitMix64).
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). bound == 0 returns 0.
  uint64_t Below(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi);

  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return den != 0 && Below(den) < num; }

  // True with probability 1/2 — the `random()` coin flip in Algorithm 2.
  bool Coin() { return (Next() & 1) != 0; }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  uint64_t state_;
};

}  // namespace snowboard

#endif  // SRC_UTIL_RNG_H_
