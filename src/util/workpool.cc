#include "src/util/workpool.h"

#include "src/util/assert.h"
#include "src/util/counters.h"

namespace snowboard {

namespace {
// Set inside ThreadMain; a nested Run from a pool thread deadlocks by construction (the
// caller would wait on workers that can never include itself), so it is checked fatal.
thread_local bool t_in_pool_thread = false;
}  // namespace

WorkerPool& WorkerPool::Global() {
  static WorkerPool* pool = new WorkerPool;  // Leaked on purpose — see header.
  return *pool;
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::unique_ptr<PoolThread>& t : threads_) {
    if (t->thread.joinable()) {
      t->thread.join();
    }
  }
}

int WorkerPool::thread_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(threads_.size());
}

void WorkerPool::GrowLocked(int target) {
  while (static_cast<int>(threads_.size()) < target) {
    auto t = std::make_unique<PoolThread>();
    t->worker.index_ = static_cast<int>(threads_.size());
    PoolThread* raw = t.get();
    threads_.push_back(std::move(t));
    raw->thread = std::thread([this, raw]() { ThreadMain(raw); });
  }
}

void WorkerPool::ThreadMain(PoolThread* self) {
  t_in_pool_thread = true;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&]() {
      return stopping_ || (job_ != nullptr && self->last_job != job_id_ &&
                           self->worker.index_ < job_width_);
    });
    if (stopping_) {
      return;
    }
    self->last_job = job_id_;
    const std::function<void(PoolWorker&)>* job = job_;
    lock.unlock();
    {
      // Per-job counter shard: hot-path counter bumps inside the job land on a cache line
      // only this thread touches. The scope drains into the global block before we re-take
      // the lock and signal done, so every read-after-Run of the global counters is exact.
      CounterShardScope shard;
      (*job)(self->worker);
    }
    lock.lock();
    if (--remaining_ == 0) {
      done_cv_.notify_all();
    }
  }
}

void WorkerPool::Run(int num_workers, const std::function<void(PoolWorker&)>& body) {
  SB_CHECK(!t_in_pool_thread);  // Nested Run from a pool thread would deadlock.
  if (num_workers < 1) {
    num_workers = 1;
  }
  std::lock_guard<std::mutex> serial(run_mutex_);
  std::unique_lock<std::mutex> lock(mutex_);
  SB_CHECK(!stopping_);
  GrowLocked(num_workers);
  job_ = &body;
  job_width_ = num_workers;
  remaining_ = num_workers;
  job_id_++;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&]() { return remaining_ == 0; });
  job_ = nullptr;
  job_width_ = 0;
}

}  // namespace snowboard
