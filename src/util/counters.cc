#include "src/util/counters.h"

namespace snowboard {

namespace {

// The thread's installed shard; null = report straight into the global block.
thread_local CounterShardScope* t_shard_scope = nullptr;
thread_local PipelineCounters* t_shard = nullptr;

// One relaxed drain of every field: exchange the shard's value for zero, add it to the
// sink. Addition commutes, so totals are independent of which worker flushed when.
void DrainInto(PipelineCounters* from, PipelineCounters* into) {
  auto drain = [](std::atomic<uint64_t>& src, std::atomic<uint64_t>& dst) {
    uint64_t delta = src.exchange(0, std::memory_order_relaxed);
    if (delta != 0) {
      dst.fetch_add(delta, std::memory_order_relaxed);
    }
  };
  drain(from->vm_boots, into->vm_boots);
  drain(from->vm_profile_runs, into->vm_profile_runs);
  drain(from->profile_cache_hits, into->profile_cache_hits);
  drain(from->profile_cache_misses, into->profile_cache_misses);
  drain(from->snapshot_full_restores, into->snapshot_full_restores);
  drain(from->snapshot_delta_restores, into->snapshot_delta_restores);
  drain(from->snapshot_restored_bytes, into->snapshot_restored_bytes);
  drain(from->snapshot_restored_pages, into->snapshot_restored_pages);
  drain(from->snapshot_skipped_pages, into->snapshot_skipped_pages);
  drain(from->snapshot_restore_nanos, into->snapshot_restore_nanos);
  drain(from->concurrent_tests_run, into->concurrent_tests_run);
  drain(from->tests_resumed, into->tests_resumed);
  drain(from->journal_records_dropped, into->journal_records_dropped);
  drain(from->trials_retried, into->trials_retried);
  drain(from->checkpoint_writes, into->checkpoint_writes);
  drain(from->checkpoint_bytes, into->checkpoint_bytes);
  drain(from->checkpoint_loads, into->checkpoint_loads);
  drain(from->journal_batch_flushes, into->journal_batch_flushes);
  drain(from->journal_batch_records, into->journal_batch_records);
  drain(from->journal_flush_nanos, into->journal_flush_nanos);
}

}  // namespace

PipelineCounters& GlobalPipelineCounters() {
  static PipelineCounters* counters = new PipelineCounters();
  return *counters;
}

void ResetPipelineCounters() {
  PipelineCounters& counters = GlobalPipelineCounters();
  counters.vm_boots = 0;
  counters.vm_profile_runs = 0;
  counters.profile_cache_hits = 0;
  counters.profile_cache_misses = 0;
  counters.snapshot_full_restores = 0;
  counters.snapshot_delta_restores = 0;
  counters.snapshot_restored_bytes = 0;
  counters.snapshot_restored_pages = 0;
  counters.snapshot_skipped_pages = 0;
  counters.snapshot_restore_nanos = 0;
  counters.concurrent_tests_run = 0;
  counters.tests_resumed = 0;
  counters.journal_records_dropped = 0;
  counters.trials_retried = 0;
  counters.checkpoint_writes = 0;
  counters.checkpoint_bytes = 0;
  counters.checkpoint_loads = 0;
  counters.journal_batch_flushes = 0;
  counters.journal_batch_records = 0;
  counters.journal_flush_nanos = 0;
}

PipelineCounters& ActiveCounters() {
  return t_shard != nullptr ? *t_shard : GlobalPipelineCounters();
}

CounterShardScope::CounterShardScope() : previous_(t_shard_scope) {
  t_shard_scope = this;
  t_shard = &local_;
}

CounterShardScope::~CounterShardScope() {
  Flush();
  t_shard_scope = previous_;
  t_shard = previous_ != nullptr ? &previous_->local_ : nullptr;
}

void CounterShardScope::Flush() { DrainInto(&local_, &GlobalPipelineCounters()); }

void FlushCounterShard() {
  if (t_shard_scope != nullptr) {
    t_shard_scope->Flush();
  }
}

}  // namespace snowboard
