#include "src/util/counters.h"

namespace snowboard {

PipelineCounters& GlobalPipelineCounters() {
  static PipelineCounters* counters = new PipelineCounters();
  return *counters;
}

void ResetPipelineCounters() {
  PipelineCounters& counters = GlobalPipelineCounters();
  counters.vm_boots = 0;
  counters.vm_profile_runs = 0;
  counters.profile_cache_hits = 0;
  counters.profile_cache_misses = 0;
  counters.snapshot_full_restores = 0;
  counters.snapshot_delta_restores = 0;
  counters.snapshot_restored_bytes = 0;
  counters.snapshot_restored_pages = 0;
  counters.snapshot_restore_nanos = 0;
  counters.concurrent_tests_run = 0;
  counters.tests_resumed = 0;
  counters.journal_records_dropped = 0;
  counters.trials_retried = 0;
  counters.checkpoint_writes = 0;
  counters.checkpoint_bytes = 0;
  counters.checkpoint_loads = 0;
}

}  // namespace snowboard
