#include "src/util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace snowboard {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void EmitLogLine(LogLevel level, const std::string& line) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), line.c_str());
}

}  // namespace snowboard
