// Minimal leveled logging. Single global level; thread-safe line emission.
//
// The simulator and pipeline run millions of events, so logging defaults to kWarn; benches
// and examples raise it to kInfo for progress lines.
#ifndef SRC_UTIL_LOG_H_
#define SRC_UTIL_LOG_H_

#include <sstream>
#include <string>

namespace snowboard {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);
void EmitLogLine(LogLevel level, const std::string& line);

class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { EmitLogLine(level_, stream_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace snowboard

#define SB_LOG(level)                                                \
  if (::snowboard::LogLevel::level >= ::snowboard::GetLogLevel())    \
  ::snowboard::LogMessage(::snowboard::LogLevel::level)

#endif  // SRC_UTIL_LOG_H_
