// Sequential test programs: "self-sufficient snippets of code that set up and perform
// several system operations" (§3.1) — the unit the whole Snowboard pipeline works with.
//
// A Program is a short sequence of syscalls with syzkaller-style resource references: an
// argument is either a constant or the *result* of an earlier call (r0 = socket(...);
// connect(r0, ...)). The executor resolves references at run time on the guest.
#ifndef SRC_FUZZ_PROGRAM_H_
#define SRC_FUZZ_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/syscalls.h"
#include "src/sim/engine.h"

namespace snowboard {

inline constexpr int kMaxCallsPerProgram = 8;
inline constexpr int kMaxSyscallArgs = 4;

struct Arg {
  enum Kind : uint8_t { kConst = 0, kResult = 1 };
  Kind kind = kConst;
  int64_t value = 0;  // For kConst: the literal; for kResult: index of the producing call.

  static Arg Const(int64_t v) { return Arg{kConst, v}; }
  static Arg Result(int call_index) { return Arg{kResult, call_index}; }
  bool operator==(const Arg&) const = default;
};

struct Call {
  uint32_t nr = 0;
  Arg args[kMaxSyscallArgs];
  bool operator==(const Call&) const = default;
};

struct Program {
  std::vector<Call> calls;
  bool operator==(const Program&) const = default;

  // Stable content hash over the full call list (length-seeded, so a program and its
  // extension never share an intermediate state). Used for corpus dedup, deterministic ids,
  // and as the ProfileCache key — cache consumers must still compare with operator== since
  // 64 bits cannot guarantee injectivity.
  uint64_t Hash() const;
  // Syzkaller-style rendering: "r0 = socket(0x2, 0x1)\nconnect(r0, 0x3)".
  std::string Format() const;
};

// Result of executing a program on one guest task. Inline storage (capacity
// kMaxCallsPerProgram) — RunProgram executes inside the trial hot loop for every task on
// every trial, and must not heap-allocate.
struct ProgramResult {
  class Results {
   public:
    int64_t operator[](size_t i) const { return values_[i]; }
    size_t size() const { return count_; }
    void push_back(int64_t v) { values_[count_++] = v; }

   private:
    int64_t values_[kMaxCallsPerProgram] = {};
    size_t count_ = 0;
  };
  Results call_results;
};

// Executes `program` on the current task of `ctx` (TaskEnter must have been called),
// resolving resource references. Never throws except via engine trial aborts.
ProgramResult RunProgram(Ctx& ctx, const KernelGlobals& g, const Program& program);

// Convenience: a GuestFn that enters task `task_index` and runs the program.
Engine::GuestFn MakeProgramRunner(const KernelGlobals& g, const Program& program,
                                  int task_index);

}  // namespace snowboard

#endif  // SRC_FUZZ_PROGRAM_H_
