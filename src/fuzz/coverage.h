// Edge coverage over instruction sites.
//
// §4.1: "Snowboard uses a coverage metric exported by the generator (e.g., edge coverage)
// to select a subset of the generated tests that provide high coverage but low overlap."
// Our edges are consecutive (site -> site) transitions within one vCPU's access stream —
// the moral equivalent of KCOV's basic-block edges at the granularity our tracer sees.
#ifndef SRC_FUZZ_COVERAGE_H_
#define SRC_FUZZ_COVERAGE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/sim/access.h"

namespace snowboard {

using EdgeSet = std::unordered_set<uint64_t>;

// Extracts the edge set of `vcpu`'s execution from a trace.
EdgeSet CollectEdges(const Trace& trace, VcpuId vcpu);

// Cumulative coverage map with new-edge detection.
class CoverageMap {
 public:
  // Merges `edges`; returns how many were previously unseen.
  size_t Merge(const EdgeSet& edges);
  bool Covers(uint64_t edge) const { return edges_.count(edge) != 0; }
  size_t size() const { return edges_.size(); }

 private:
  EdgeSet edges_;
};

}  // namespace snowboard

#endif  // SRC_FUZZ_COVERAGE_H_
