#include "src/fuzz/program.h"

#include <sstream>

#include "src/kernel/task.h"
#include "src/util/assert.h"
#include "src/util/hash.h"
#include "src/util/strings.h"

namespace snowboard {

uint64_t Program::Hash() const {
  uint64_t h = HashCombine(0x5b5b5b5b5b5b5b5bull, calls.size());
  for (const Call& call : calls) {
    h = HashCombine(h, call.nr);
    for (const Arg& arg : call.args) {
      h = HashCombine(h, static_cast<uint64_t>(arg.kind));
      h = HashCombine(h, static_cast<uint64_t>(arg.value));
    }
  }
  return h;
}

std::string Program::Format() const {
  std::ostringstream os;
  for (size_t i = 0; i < calls.size(); i++) {
    const Call& call = calls[i];
    os << "r" << i << " = " << SyscallName(call.nr) << "(";
    for (int a = 0; a < kMaxSyscallArgs; a++) {
      if (a > 0) {
        os << ", ";
      }
      const Arg& arg = call.args[a];
      if (arg.kind == Arg::kResult) {
        os << "r" << arg.value;
      } else {
        os << "0x" << std::hex << arg.value << std::dec;
      }
    }
    os << ")";
    if (i + 1 < calls.size()) {
      os << "\n";
    }
  }
  return os.str();
}

ProgramResult RunProgram(Ctx& ctx, const KernelGlobals& g, const Program& program) {
  ProgramResult result;
  SB_CHECK(program.calls.size() <= kMaxCallsPerProgram);
  for (const Call& call : program.calls) {
    int64_t args[kMaxSyscallArgs] = {0, 0, 0, 0};
    for (int a = 0; a < kMaxSyscallArgs; a++) {
      const Arg& arg = call.args[a];
      if (arg.kind == Arg::kResult) {
        size_t index = static_cast<size_t>(arg.value);
        args[a] = index < result.call_results.size() ? result.call_results[index] : -1;
      } else {
        args[a] = arg.value;
      }
    }
    result.call_results.push_back(DoSyscall(ctx, g, call.nr, args));
  }
  return result;
}

Engine::GuestFn MakeProgramRunner(const KernelGlobals& g, const Program& program,
                                  int task_index) {
  return [&g, program, task_index](Ctx& ctx) {
    TaskEnter(ctx, g.tasks[task_index]);
    RunProgram(ctx, g, program);
  };
}

}  // namespace snowboard
