// Corpus construction: the coverage-guided fuzzing loop that produces Snowboard's input —
// "a comprehensive set of distinct sequential tests" selected for "high coverage but low
// overlap of exercised behaviors" (§4.1).
#ifndef SRC_FUZZ_CORPUS_H_
#define SRC_FUZZ_CORPUS_H_

#include <vector>

#include "src/fuzz/coverage.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/program.h"
#include "src/kernel/kernel.h"

namespace snowboard {

struct CorpusOptions {
  uint64_t seed = 1;
  int max_iterations = 600;   // Generation/mutation attempts after seeding.
  int target_size = 96;       // Stop once the corpus reaches this many tests.
  bool use_seeds = true;      // Bootstrap with SeedPrograms().
};

struct CorpusEntry {
  Program program;
  EdgeSet edges;          // Edge coverage of the sequential run.
  size_t fresh_edges = 0;  // New edges this test contributed when admitted.
};

// Runs the fuzz loop against `vm` (restoring the boot snapshot before every execution) and
// returns the admitted tests. A test is admitted iff its sequential execution completes and
// contributes at least one previously-unseen coverage edge.
std::vector<CorpusEntry> BuildCorpus(KernelVm& vm, const CorpusOptions& options);

// Strips the coverage bookkeeping.
std::vector<Program> CorpusPrograms(const std::vector<CorpusEntry>& corpus);

}  // namespace snowboard

#endif  // SRC_FUZZ_CORPUS_H_
