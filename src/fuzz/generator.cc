#include "src/fuzz/generator.h"

#include "src/kernel/fs/vfs.h"
#include "src/kernel/ipc/msg.h"
#include "src/kernel/net/netdev.h"
#include "src/util/assert.h"

namespace snowboard {

namespace {

// Index of a prior call whose result can satisfy `type`, or -1.
int FindProducer(const Program& prefix, ArgType type, Rng& rng) {
  std::vector<int> candidates;
  for (size_t i = 0; i < prefix.calls.size(); i++) {
    const SyscallDesc& desc = GetSyscallDesc(prefix.calls[i].nr);
    if ((type == ArgType::kFd && desc.makes_fd) || (type == ArgType::kKey && desc.makes_key)) {
      candidates.push_back(static_cast<int>(i));
    }
  }
  if (candidates.empty()) {
    return -1;
  }
  return candidates[rng.Below(candidates.size())];
}

}  // namespace

Call Generator::RandomCall(const Program& prefix) {
  Call call;
  call.nr = static_cast<uint32_t>(rng_.Below(kNumSyscalls));
  const SyscallDesc& desc = GetSyscallDesc(call.nr);
  for (int a = 0; a < desc.nargs; a++) {
    ArgType type = desc.types[a];
    if (type == ArgType::kFd || type == ArgType::kKey) {
      int producer = FindProducer(prefix, type, rng_);
      // Thread resources through the program most of the time, as syzkaller does.
      if (producer >= 0 && rng_.Chance(9, 10)) {
        call.args[a] = Arg::Result(producer);
        continue;
      }
    }
    call.args[a] = Arg::Const(SampleArgValue(type, rng_));
  }
  return call;
}

Program Generator::Generate() {
  Program program;
  int ncalls = static_cast<int>(rng_.Range(1, kMaxGenCalls));
  for (int i = 0; i < ncalls; i++) {
    program.calls.push_back(RandomCall(program));
  }
  FixupResources(program);
  return program;
}

Program Generator::Mutate(const Program& base) {
  Program program = base;
  bool changed = false;
  while (!changed) {
    switch (rng_.Below(4)) {
      case 0: {  // Insert a call.
        if (program.calls.size() >= kMaxCallsPerProgram) {
          break;
        }
        size_t pos = rng_.Below(program.calls.size() + 1);
        Program prefix;
        prefix.calls.assign(program.calls.begin(),
                            program.calls.begin() + static_cast<long>(pos));
        program.calls.insert(program.calls.begin() + static_cast<long>(pos),
                             RandomCall(prefix));
        changed = true;
        break;
      }
      case 1: {  // Remove a call.
        if (program.calls.size() <= 1) {
          break;
        }
        size_t pos = rng_.Below(program.calls.size());
        program.calls.erase(program.calls.begin() + static_cast<long>(pos));
        changed = true;
        break;
      }
      case 2: {  // Replace a call.
        size_t pos = rng_.Below(program.calls.size());
        Program prefix;
        prefix.calls.assign(program.calls.begin(),
                            program.calls.begin() + static_cast<long>(pos));
        program.calls[pos] = RandomCall(prefix);
        changed = true;
        break;
      }
      case 3: {  // Tweak one argument.
        size_t pos = rng_.Below(program.calls.size());
        Call& call = program.calls[pos];
        const SyscallDesc& desc = GetSyscallDesc(call.nr);
        if (desc.nargs == 0) {
          break;
        }
        int a = static_cast<int>(rng_.Below(static_cast<uint64_t>(desc.nargs)));
        call.args[a] = Arg::Const(SampleArgValue(desc.types[a], rng_));
        changed = true;
        break;
      }
    }
  }
  FixupResources(program);
  return program;
}

void Generator::FixupResources(Program& program) {
  // Repair dangling result references (mutations may remove producers).
  for (size_t i = 0; i < program.calls.size(); i++) {
    Call& call = program.calls[i];
    const SyscallDesc& desc = GetSyscallDesc(call.nr);
    for (int a = 0; a < desc.nargs; a++) {
      Arg& arg = call.args[a];
      if (arg.kind != Arg::kResult) {
        continue;
      }
      if (arg.value < 0 || arg.value >= static_cast<int64_t>(i)) {
        arg = Arg::Const(SampleArgValue(desc.types[a], rng_));
      }
    }
  }
}

std::vector<Program> SeedPrograms() {
  std::vector<Program> seeds;
  auto add = [&seeds](std::vector<Call> calls) {
    Program p;
    p.calls = std::move(calls);
    seeds.push_back(std::move(p));
  };
  auto c = [](uint32_t nr, std::vector<Arg> args) {
    Call call;
    call.nr = nr;
    for (size_t i = 0; i < args.size() && i < kMaxSyscallArgs; i++) {
      call.args[i] = args[i];
    }
    return call;
  };
  const Arg r0 = Arg::Result(0);

  // --- Figure 1 (issue #12): the l2tp writer and reader tests. ---
  add({c(kSysSocket, {Arg::Const(kPxProtoOl2tp), Arg::Const(0)}),
       c(kSysSocket, {Arg::Const(kAfInet), Arg::Const(0)}),
       c(kSysConnect, {r0, Arg::Const(1)})});
  add({c(kSysSocket, {Arg::Const(kPxProtoOl2tp), Arg::Const(0)}),
       c(kSysSocket, {Arg::Const(kAfInet), Arg::Const(0)}),
       c(kSysConnect, {r0, Arg::Const(1)}), c(kSysSendmsg, {r0, Arg::Const(64)})});

  // --- Figure 3 (issue #9): MAC writer (ioctl SIOCSIFHWADDR) and reader (SIOCGIFHWADDR). ---
  add({c(kSysSocket, {Arg::Const(kAfInet), Arg::Const(0)}),
       c(kSysIoctl, {r0, Arg::Const(kIoctlSetMacAddr), Arg::Const(2)})});
  add({c(kSysSocket, {Arg::Const(kAfInet), Arg::Const(0)}),
       c(kSysIoctl, {r0, Arg::Const(kIoctlGetMacAddr), Arg::Const(0)})});

  // --- Issue #8: e1000 MAC set vs packet_getname. ---
  add({c(kSysSocket, {Arg::Const(kAfInet), Arg::Const(0)}),
       c(kSysIoctl, {r0, Arg::Const(kIoctlE1000SetMac), Arg::Const(4)})});
  add({c(kSysSocket, {Arg::Const(kAfPacket), Arg::Const(0)}),
       c(kSysBind, {r0, Arg::Const(0)}), c(kSysGetsockname, {r0})});

  // --- Issue #7: mtu writer vs rawv6 sender (both on ifindex 0). ---
  add({c(kSysSocket, {Arg::Const(kAfInet), Arg::Const(0)}),
       c(kSysIoctl, {r0, Arg::Const(kIoctlSetMtu), Arg::Const(8)})});
  add({c(kSysSocket, {Arg::Const(kAfInet6), Arg::Const(0)}),
       c(kSysBind, {r0, Arg::Const(0)}), c(kSysSendmsg, {r0, Arg::Const(256)})});

  // --- Figure 4 (issue #1): msgget vs msgget+msgctl(IPC_RMID). ---
  add({c(kSysMsgget, {Arg::Const(2)})});
  add({c(kSysMsgget, {Arg::Const(2)}), c(kSysMsgctl, {r0, Arg::Const(0)})});
  add({c(kSysMsgget, {Arg::Const(2)}), c(kSysMsgsnd, {r0, Arg::Const(32)})});

  // --- Issues #2/#3/#4: sbfs write / swap-boot / truncate. ---
  add({c(kSysOpen, {Arg::Const(0), Arg::Const(0)}),
       c(kSysWrite, {r0, Arg::Const(900), Arg::Const(0x1234)})});
  // A write crossing the 1024-byte block boundary triggers the extent-tree rebuild (the
  // issue #3 writer's invalidate/restore window).
  add({c(kSysOpen, {Arg::Const(0), Arg::Const(0)}),
       c(kSysWrite, {r0, Arg::Const(2000), Arg::Const(0x77)})});
  add({c(kSysOpen, {Arg::Const(0), Arg::Const(0)}),
       c(kSysIoctl, {r0, Arg::Const(kIoctlSwapBootLoader), Arg::Const(0)})});
  add({c(kSysOpen, {Arg::Const(0), Arg::Const(0)}), c(kSysFtruncate, {r0, Arg::Const(0)})});
  add({c(kSysOpen, {Arg::Const(0), Arg::Const(0)}), c(kSysRead, {r0, Arg::Const(64)})});

  // --- Issues #5/#6: block device. ---
  add({c(kSysOpen, {Arg::Const(3), Arg::Const(0)}), c(kSysRead, {r0, Arg::Const(1)})});
  // Blocksize 2048 differs from the boot default (1024), so the store is a value-changing
  // write — PMC material against the mpage reader.
  add({c(kSysOpen, {Arg::Const(3), Arg::Const(0)}),
       c(kSysIoctl, {r0, Arg::Const(kIoctlSetBlocksize), Arg::Const(2)})});
  add({c(kSysOpen, {Arg::Const(3), Arg::Const(0)}),
       c(kSysIoctl, {r0, Arg::Const(kIoctlSetReadahead), Arg::Const(16)})});
  add({c(kSysOpen, {Arg::Const(3), Arg::Const(0)}), c(kSysFadvise, {r0, Arg::Const(1)})});

  // --- Issue #11: configfs lookup/readdir vs rmdir. ---
  add({c(kSysOpen, {Arg::Const(4), Arg::Const(0)})});
  add({c(kSysRmdir, {Arg::Const(0)})});
  add({c(kSysMkdir, {Arg::Const(2)})});
  add({c(kSysOpen, {Arg::Const(4), Arg::Const(0)}), c(kSysGetdents, {r0})});

  // --- Issue #14: tty open vs autoconfig. ---
  add({c(kSysOpen, {Arg::Const(6), Arg::Const(0)})});
  add({c(kSysOpen, {Arg::Const(6), Arg::Const(0)}),
       c(kSysIoctl, {r0, Arg::Const(kIoctlSerialAutoconf), Arg::Const(0)})});

  // --- Issue #15: sound control add. ---
  add({c(kSysOpen, {Arg::Const(7), Arg::Const(0)}),
       c(kSysIoctl, {r0, Arg::Const(kIoctlSndElemAdd), Arg::Const(8)})});

  // --- Issue #16: congestion-control default writer/reader. ---
  add({c(kSysSysctl, {Arg::Const(0), Arg::Const(1)})});
  add({c(kSysSocket, {Arg::Const(kAfInet), Arg::Const(0)}),
       c(kSysSetsockopt, {r0, Arg::Const(kSoTcpCongestion), Arg::Const(0)}),
       c(kSysSendmsg, {r0, Arg::Const(128)})});

  // --- Issue #17: fanout join+send vs leave. ---
  add({c(kSysSocket, {Arg::Const(kAfPacket), Arg::Const(0)}),
       c(kSysSetsockopt, {r0, Arg::Const(kSoPacketFanout), Arg::Const(0)}),
       c(kSysSendmsg, {r0, Arg::Const(33)})});
  add({c(kSysSocket, {Arg::Const(kAfPacket), Arg::Const(0)}),
       c(kSysSetsockopt, {r0, Arg::Const(kSoPacketFanout), Arg::Const(0)}),
       c(kSysSetsockopt, {r0, Arg::Const(kSoPacketFanoutLeave), Arg::Const(0)})});

  // --- Issue #10: fib6 cookie read vs route flush. ---
  add({c(kSysSocket, {Arg::Const(kAfInet6), Arg::Const(0)}),
       c(kSysConnect, {r0, Arg::Const(1)})});
  add({c(kSysSocket, {Arg::Const(kAfInet6), Arg::Const(0)}),
       c(kSysIoctl, {r0, Arg::Const(kIoctlRtFlush), Arg::Const(0)})});

  return seeds;
}

}  // namespace snowboard
