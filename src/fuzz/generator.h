// Program generation and mutation — the Syzkaller-analog front end (§4.1.1).
//
// The generator produces random well-typed syscall programs and mutates existing ones
// (insert/remove/replace a call, tweak arguments), wiring fd/key arguments to earlier
// producing calls the way syzkaller threads resources through a program. SeedPrograms()
// supplies the canonical per-subsystem snippets a long-running coverage-guided fuzzer
// accumulates (our corpus bootstrap, since we run minutes rather than CPU-weeks).
#ifndef SRC_FUZZ_GENERATOR_H_
#define SRC_FUZZ_GENERATOR_H_

#include <vector>

#include "src/fuzz/program.h"
#include "src/fuzz/syscall_desc.h"
#include "src/util/rng.h"

namespace snowboard {

class Generator {
 public:
  explicit Generator(uint64_t seed) : rng_(seed) {}

  // Fresh random program of 1..kMaxGenCalls calls.
  Program Generate();

  // Mutated copy of `base` (at least one change).
  Program Mutate(const Program& base);

  Rng& rng() { return rng_; }

  static constexpr int kMaxGenCalls = 5;

 private:
  Call RandomCall(const Program& prefix);
  void FixupResources(Program& program);

  Rng rng_;
};

// Hand-written seed programs covering each subsystem's entry points (the corpus a mature
// fuzzer would reach; see file comment).
std::vector<Program> SeedPrograms();

}  // namespace snowboard

#endif  // SRC_FUZZ_GENERATOR_H_
