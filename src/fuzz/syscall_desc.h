// Syscall descriptions: argument typing that lets the generator build well-formed calls —
// the analog of Syzkaller's syscall description language (syzlang), reduced to the argument
// domains our kernel actually consumes.
#ifndef SRC_FUZZ_SYSCALL_DESC_H_
#define SRC_FUZZ_SYSCALL_DESC_H_

#include <cstdint>

#include "src/fuzz/program.h"
#include "src/util/rng.h"

namespace snowboard {

enum class ArgType : uint8_t {
  kNone = 0,
  kFd,          // File descriptor: resolved to a prior fd-producing call when possible.
  kPath,        // Path id in [0, kNumPaths).
  kLen,         // Byte length.
  kValue,       // Free-form data value.
  kFlags,       // Open/misc flags.
  kIoctlCmd,    // IoctlCmd enum values.
  kIoctlArg,    // ioctl argument.
  kSockFamily,  // kAfInet / kAfInet6 / kAfPacket / kPxProtoOl2tp.
  kProto,       // Socket protocol.
  kConnectArg,  // Tunnel id / peer.
  kIfindex,
  kSockOpt,     // SockOpt enum values.
  kOptVal,
  kKey,         // IPC key.
  kMsgCmd,      // msgctl cmd selector.
  kSysctlId,
  kAdvice,      // fadvise advice.
};

struct SyscallDesc {
  uint32_t nr;
  int nargs;
  ArgType types[kMaxSyscallArgs];
  bool makes_fd;    // Result usable as an fd argument.
  bool makes_key;   // Result usable as an IPC key/id argument.
};

// The full table, indexed by syscall number (kNumSyscalls entries).
const SyscallDesc& GetSyscallDesc(uint32_t nr);

// Draws a random constant from `type`'s domain.
int64_t SampleArgValue(ArgType type, Rng& rng);

}  // namespace snowboard

#endif  // SRC_FUZZ_SYSCALL_DESC_H_
