#include "src/fuzz/corpus.h"

#include <unordered_set>

#include "src/util/log.h"

namespace snowboard {

namespace {

// Sequentially executes `program` from the fixed initial state; returns the trace edges, or
// nullopt-like empty set + false if the run did not complete (a broken test).
bool RunSequentialForCoverage(KernelVm& vm, const Program& program, EdgeSet* edges) {
  vm.RestoreSnapshot();
  Engine::RunOptions opts;
  opts.max_instructions = 1'000'000;
  Engine::RunResult result =
      vm.engine().Run({MakeProgramRunner(vm.globals(), program, /*task_index=*/0)}, opts);
  if (!result.completed) {
    return false;
  }
  *edges = CollectEdges(result.trace, /*vcpu=*/0);
  return true;
}

}  // namespace

std::vector<CorpusEntry> BuildCorpus(KernelVm& vm, const CorpusOptions& options) {
  std::vector<CorpusEntry> corpus;
  CoverageMap coverage;
  std::unordered_set<uint64_t> seen_programs;
  Generator generator(options.seed);

  auto consider = [&](const Program& program) {
    if (static_cast<int>(corpus.size()) >= options.target_size) {
      return;
    }
    if (!seen_programs.insert(program.Hash()).second) {
      return;
    }
    EdgeSet edges;
    if (!RunSequentialForCoverage(vm, program, &edges)) {
      return;
    }
    size_t fresh = coverage.Merge(edges);
    if (fresh == 0) {
      return;  // Redundant behavior: "low overlap" filter.
    }
    corpus.push_back(CorpusEntry{program, std::move(edges), fresh});
  };

  if (options.use_seeds) {
    for (const Program& seed : SeedPrograms()) {
      consider(seed);
    }
  }

  for (int iter = 0; iter < options.max_iterations &&
                     static_cast<int>(corpus.size()) < options.target_size;
       iter++) {
    Program candidate;
    if (!corpus.empty() && generator.rng().Chance(1, 2)) {
      const CorpusEntry& base = corpus[generator.rng().Below(corpus.size())];
      candidate = generator.Mutate(base.program);
    } else {
      candidate = generator.Generate();
    }
    consider(candidate);
  }

  SB_LOG(kInfo) << "corpus: " << corpus.size() << " tests, " << "seed=" << options.seed;
  return corpus;
}

std::vector<Program> CorpusPrograms(const std::vector<CorpusEntry>& corpus) {
  std::vector<Program> programs;
  programs.reserve(corpus.size());
  for (const CorpusEntry& entry : corpus) {
    programs.push_back(entry.program);
  }
  return programs;
}

}  // namespace snowboard
