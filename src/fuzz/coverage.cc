#include "src/fuzz/coverage.h"

#include "src/util/hash.h"

namespace snowboard {

EdgeSet CollectEdges(const Trace& trace, VcpuId vcpu) {
  EdgeSet edges;
  SiteId prev = kInvalidSite;
  for (const Event& event : trace) {
    if (event.kind != EventKind::kAccess || event.vcpu != vcpu) {
      continue;
    }
    SiteId site = event.access.site;
    if (prev != kInvalidSite && site != prev) {
      edges.insert(HashCombine(prev, site));
    }
    prev = site;
  }
  return edges;
}

size_t CoverageMap::Merge(const EdgeSet& edges) {
  size_t fresh = 0;
  for (uint64_t edge : edges) {
    if (edges_.insert(edge).second) {
      fresh++;
    }
  }
  return fresh;
}

}  // namespace snowboard
