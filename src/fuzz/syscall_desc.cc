#include "src/fuzz/syscall_desc.h"

#include "src/kernel/fs/vfs.h"
#include "src/kernel/net/netdev.h"
#include "src/util/assert.h"

namespace snowboard {

namespace {

constexpr SyscallDesc kDescs[kNumSyscalls] = {
    {kSysOpen, 2, {ArgType::kPath, ArgType::kFlags}, true, false},
    {kSysClose, 1, {ArgType::kFd}, false, false},
    {kSysRead, 2, {ArgType::kFd, ArgType::kLen}, false, false},
    {kSysWrite, 3, {ArgType::kFd, ArgType::kLen, ArgType::kValue}, false, false},
    {kSysFtruncate, 2, {ArgType::kFd, ArgType::kLen}, false, false},
    {kSysRename, 2, {ArgType::kPath, ArgType::kPath}, false, false},
    {kSysIoctl, 3, {ArgType::kFd, ArgType::kIoctlCmd, ArgType::kIoctlArg}, false, false},
    {kSysFadvise, 2, {ArgType::kFd, ArgType::kAdvice}, false, false},
    {kSysSocket, 2, {ArgType::kSockFamily, ArgType::kProto}, true, false},
    {kSysConnect, 2, {ArgType::kFd, ArgType::kConnectArg}, false, false},
    {kSysBind, 2, {ArgType::kFd, ArgType::kIfindex}, false, false},
    {kSysSendmsg, 2, {ArgType::kFd, ArgType::kLen}, false, false},
    {kSysRecvmsg, 1, {ArgType::kFd}, false, false},
    {kSysGetsockname, 1, {ArgType::kFd}, false, false},
    {kSysSetsockopt, 3, {ArgType::kFd, ArgType::kSockOpt, ArgType::kOptVal}, false, false},
    {kSysMsgget, 1, {ArgType::kKey}, false, true},
    {kSysMsgctl, 2, {ArgType::kKey, ArgType::kMsgCmd}, false, false},
    {kSysMsgsnd, 2, {ArgType::kKey, ArgType::kLen}, false, false},
    {kSysSysctl, 2, {ArgType::kSysctlId, ArgType::kOptVal}, false, false},
    {kSysMkdir, 1, {ArgType::kPath}, false, false},
    {kSysRmdir, 1, {ArgType::kPath}, false, false},
    {kSysDup, 1, {ArgType::kFd}, true, false},
    {kSysFstat, 1, {ArgType::kFd}, false, false},
    {kSysGetdents, 1, {ArgType::kFd}, false, false},
};

}  // namespace

const SyscallDesc& GetSyscallDesc(uint32_t nr) {
  SB_CHECK(nr < kNumSyscalls);
  SB_CHECK(kDescs[nr].nr == nr);
  return kDescs[nr];
}

int64_t SampleArgValue(ArgType type, Rng& rng) {
  switch (type) {
    case ArgType::kNone:
      return 0;
    case ArgType::kFd:
      return rng.Range(0, 3);  // Blind fd guess (when no producer is available).
    case ArgType::kPath:
      return rng.Range(0, kNumPaths - 1);
    case ArgType::kLen:
      return rng.Range(0, 4096);
    case ArgType::kValue:
      return static_cast<int64_t>(rng.Next() & 0xFFFF);
    case ArgType::kFlags:
      return rng.Range(0, 3);
    case ArgType::kIoctlCmd:
      return rng.Range(1, 10);  // IoctlCmd values.
    case ArgType::kIoctlArg:
      return rng.Range(0, 63);
    case ArgType::kSockFamily: {
      static constexpr uint32_t kFamilies[] = {kAfInet, kAfInet6, kAfPacket, kPxProtoOl2tp};
      return kFamilies[rng.Below(4)];
    }
    case ArgType::kProto:
      return rng.Range(0, 2);
    case ArgType::kConnectArg:
      return rng.Range(0, 7);
    case ArgType::kIfindex:
      return rng.Range(0, 1);
    case ArgType::kSockOpt:
      return rng.Range(1, 4);  // SockOpt values.
    case ArgType::kOptVal:
      return rng.Range(0, 7);
    case ArgType::kKey:
      return rng.Range(0, 7);
    case ArgType::kMsgCmd:
      return rng.Range(0, 5);
    case ArgType::kSysctlId:
      return 0;
    case ArgType::kAdvice:
      return rng.Range(0, 3);
  }
  return 0;
}

}  // namespace snowboard
