#include "src/snowboard/explorer.h"

#include <algorithm>

#include "src/snowboard/minimize.h"
#include "src/snowboard/profile.h"
#include "src/snowboard/replay.h"
#include "src/snowboard/report.h"
#include "src/util/counters.h"
#include "src/util/fault.h"
#include "src/util/flatmap.h"
#include "src/util/hash.h"
#include "src/util/trace.h"

namespace snowboard {

uint64_t AccessFeatureHash(AccessType type, GuestAddr addr, uint8_t len, SiteId site,
                           uint64_t value) {
  return HashAll(static_cast<uint64_t>(type), addr, len, site, value);
}

namespace {

uint64_t SideFeatureHash(const PmcSide& side, AccessType type) {
  return AccessFeatureHash(type, side.addr, side.len, side.site, side.value);
}

uint64_t AccessHash(const Access& access) {
  return AccessFeatureHash(access.type, access.addr, access.len, access.site, access.value);
}

}  // namespace

// --------------------------------------------------------------------------------------------
// PmcMatcher.
// --------------------------------------------------------------------------------------------

PmcMatcher::PmcMatcher(const std::vector<Pmc>* pmcs, size_t max_indexed) : pmcs_(pmcs) {
  size_t count = std::min(pmcs->size(), max_indexed);
  for (uint32_t i = 0; i < count; i++) {
    uint64_t h = SideFeatureHash((*pmcs)[i].key.write, AccessType::kWrite);
    by_write_feature_[h].push_back(i);
  }
}

const std::vector<uint32_t>* PmcMatcher::CandidatesForWrite(uint64_t write_feature_hash) const {
  auto it = by_write_feature_.find(write_feature_hash);
  return it == by_write_feature_.end() ? nullptr : &it->second;
}

// --------------------------------------------------------------------------------------------
// PmcScheduler.
// --------------------------------------------------------------------------------------------

void PmcScheduler::ResetForTest(const PmcKey& initial_pmc) {
  current_pmcs_.clear();
  pmc_feature_hashes_.clear();
  flags_.clear();
  addr_filter_.Clear();
  AddPmc(initial_pmc);
}

void PmcScheduler::SeedTrial(uint64_t seed) {
  rng_.Seed(seed);
  for (std::optional<Access>& last : last_access_) {
    last.reset();
  }
}

void PmcScheduler::AddPmc(const PmcKey& pmc) {
  current_pmcs_.push_back(pmc);
  pmc_feature_hashes_.insert(SideFeatureHash(pmc.write, AccessType::kWrite));
  pmc_feature_hashes_.insert(SideFeatureHash(pmc.read, AccessType::kRead));
  addr_filter_.Add(pmc.write.addr);
  addr_filter_.Add(pmc.read.addr);
}

bool PmcScheduler::PerformedPmcAccess(const Access& access) const {
  return pmc_feature_hashes_.count(AccessHash(access)) != 0;
}

bool PmcScheduler::PmcAccessComing(const Access& access) const {
  return flags_.count(AccessHash(access)) != 0;
}

bool PmcScheduler::AfterAccess(VcpuId vcpu, const Access& access) {
  // Fast path for the per-access hot site: nearly every access in a trial touches an
  // address that is in neither the PMC watch set nor flags, which the address filter
  // proves without computing the feature hash or probing either exact set. A filter miss
  // can never be a real member (no false negatives), and the RNG is untouched on this
  // path — the coin flips below happen exactly when they did before, so trial schedules
  // are bit-for-bit unchanged. Algorithm 2 line 22 must still run.
  if (!addr_filter_.MayContain(access.addr)) {
    last_access_[vcpu] = access;
    return false;
  }

  bool do_switch = false;

  // Algorithm 2 lines 16-17: a flags hit means the PMC access is about to execute on this
  // thread; non-deterministically switch away to let the other side interpose.
  if (flags_enabled_ && PmcAccessComing(access)) {
    do_switch = rng_.Coin();
  }
  // Lines 18-21: the access just performed IS a PMC access; remember this thread's previous
  // access as a flag for future trials, and non-deterministically reschedule.
  if (PerformedPmcAccess(access)) {
    const std::optional<Access>& previous = last_access_[vcpu];
    if (flags_enabled_ && previous.has_value()) {
      flags_.insert(AccessHash(*previous));
      addr_filter_.Add(previous->addr);
    }
    if (rng_.Coin()) {
      do_switch = true;
    }
  }
  // Line 22: last_access[current_thread] = access.
  last_access_[vcpu] = access;
  switch_decisions_ += do_switch ? 1 : 0;
  return do_switch;
}

// --------------------------------------------------------------------------------------------
// Exploration loop (Algorithm 2's per-PMC body).
// --------------------------------------------------------------------------------------------

namespace {

// Reusable scratch for FindIncidentalPmcs: flat tables and vectors that keep their capacity
// across trials, so the steady-state trial loop performs no heap allocation here.
struct IncidentalScratch {
  FlatSet<uint64_t> write_features;
  std::vector<uint64_t> write_order;  // Write features in first-occurrence trace order.
  FlatSet<uint64_t> read_features;
  std::vector<uint32_t> matches;
};

// Incidental-PMC search (line 26): find PMCs different from the current ones whose write
// and read features BOTH occurred in the trial's accesses. Candidates are collected by
// scanning write features in first-occurrence trace order, so the result (and the adoption
// draw made from it) is a deterministic function of the trace, independent of any hash
// table's layout. Fills `scratch->matches`.
void FindIncidentalPmcs(const Trace& trace, const PmcMatcher& matcher,
                        const FlatSet<uint64_t>& current_keys, IncidentalScratch* scratch) {
  scratch->write_features.Clear();
  scratch->write_order.clear();
  scratch->read_features.Clear();
  scratch->matches.clear();
  for (const Event& event : trace) {
    if (event.kind != EventKind::kAccess) {
      continue;
    }
    uint64_t h = AccessHash(event.access);
    if (event.access.type == AccessType::kWrite) {
      if (scratch->write_features.Insert(h)) {
        scratch->write_order.push_back(h);
      }
    } else {
      scratch->read_features.Insert(h);
    }
  }
  for (uint64_t write_feature : scratch->write_order) {
    const std::vector<uint32_t>* candidates = matcher.CandidatesForWrite(write_feature);
    if (candidates == nullptr) {
      continue;
    }
    for (uint32_t index : *candidates) {
      const PmcKey& key = matcher.pmcs()[index].key;
      if (current_keys.Contains(key.Hash())) {
        continue;
      }
      if (scratch->read_features.Contains(SideFeatureHash(key.read, AccessType::kRead))) {
        scratch->matches.push_back(index);
        if (scratch->matches.size() >= 64) {
          return;  // Plenty to draw one from.
        }
      }
    }
  }
}

}  // namespace

namespace {

// Shared trial loop. `pmc_scheduler` enables incidental-PMC adoption when non-null.
ExploreOutcome RunTrialLoop(KernelVm& vm, const ConcurrentTest& test,
                            TrialScheduler& scheduler, PmcScheduler* pmc_scheduler,
                            const PmcMatcher* matcher, bool check_channel,
                            const ExplorerOptions& options) {
  ExploreOutcome outcome;
  FlatSet<uint64_t> current_keys;
  current_keys.Insert(test.hint.Hash());
  std::unordered_set<uint64_t> race_signatures;
  std::unordered_set<uint64_t> console_hashes;
  std::unordered_set<uint64_t> panic_hashes;
  Rng adoption_rng(options.seed ^ 0xadadadadull);

  // Trial-scoped buffers, hoisted: the guest functions, run result (trace storage), race
  // detector scratch, and incidental-search scratch are all built once and recycled, so a
  // steady-state iteration of this loop performs no heap allocation (trial_alloc_test
  // asserts this on the distilled loop).
  const std::vector<Engine::GuestFn> vcpu_fns = {
      MakeProgramRunner(vm.globals(), test.writer, /*task_index=*/0),
      MakeProgramRunner(vm.globals(), test.reader, /*task_index=*/1)};
  // Every trial runs through a recorder so a first-seen finding can be captured with the
  // exact decision sequence that produced it. The recording buffer keeps its capacity
  // across trials (SeedTrial clears, not reallocates), preserving the no-alloc steady state.
  RecordingScheduler recorder(&scheduler);
  Engine::RunOptions run_opts;
  run_opts.scheduler = &recorder;
  run_opts.max_instructions = options.max_instructions;
  Engine::RunResult result;
  RaceDetector race_detector;
  DetectorResult detectors;
  IncidentalScratch incidental;

  uint64_t trial_fingerprint = 0;  // Computed lazily, at most once per trial.
  int fingerprint_trial = -1;
  auto capture_finding = [&](FindingKind kind, uint64_t key, int trial) {
    if (fingerprint_trial != trial) {
      trial_fingerprint = DetectorFingerprint(detectors);
      fingerprint_trial = trial;
    }
    TrialCapture capture;
    capture.kind = static_cast<uint8_t>(kind);
    capture.finding_key = key;
    capture.trial = trial;
    capture.fingerprint = trial_fingerprint;
    capture.schedule = recorder.schedule().ToString();
    capture.orig_len = static_cast<uint32_t>(recorder.schedule().switch_after.size());
    capture.orig_switches = static_cast<uint32_t>(recorder.schedule().SwitchCount());
    capture.min_switches = capture.orig_switches;
    outcome.captures.push_back(std::move(capture));
  };

  for (int trial = 0; trial < options.num_trials; trial++) {
    if (options.fault != nullptr && options.fault->At("explorer.trial")) {
      break;  // Simulated worker death mid-test; the partial outcome must be discarded.
    }
    TRACE_SPAN("explore.trial", static_cast<uint64_t>(trial));
    outcome.trials_run++;

    // A hung attempt (real, or injected by the crash-sweep harness) is discarded before
    // the detectors see it and re-run from the same restored snapshot with the same seed,
    // so a retry that succeeds is byte-identical to the attempt never having hung.
    int attempt = 0;
    for (;;) {
      recorder.SeedTrial(options.seed + static_cast<uint64_t>(trial));
      vm.RestoreSnapshot();
      vm.engine().RunInto(vcpu_fns, run_opts, &result);
      bool injected_hang = options.fault != nullptr && options.fault->HangTrial();
      if ((!result.hang && !injected_hang) || attempt >= options.max_trial_retries) {
        break;
      }
      attempt++;
      outcome.trials_retried++;
      ActiveCounters().trials_retried.fetch_add(1, std::memory_order_relaxed);
      TRACE_INSTANT("explore.trial_retry", static_cast<uint64_t>(trial));
    }
    TRACE_COUNTER("explore.scheduler_switches", scheduler.switch_decisions());

    if (result.hang) {
      outcome.any_hang = true;
    }
    if (check_channel && !outcome.channel_exercised &&
        PmcChannelExercised(result.trace, test.hint, /*writer_vcpu=*/0, /*reader_vcpu=*/1)) {
      outcome.channel_exercised = true;
    }

    RunDetectors(result, &race_detector, &detectors);
    bool bug_this_trial = detectors.panicked || !detectors.console_hits.empty() ||
                          !detectors.races.empty();
    bool target_this_trial = false;
    auto check_target = [&](int issue_id) {
      if (options.target_issue != 0 && issue_id == options.target_issue) {
        target_this_trial = true;
      }
    };
    for (const RaceReport& race : detectors.races) {
      check_target(ClassifyRace(race));
      if (race_signatures.insert(race.Signature()).second) {
        outcome.races.push_back(race);
        capture_finding(FindingKind::kRace, race.Signature(), trial);
      }
    }
    for (const std::string& line : detectors.console_hits) {
      check_target(ClassifyConsoleLine(line));
      if (console_hashes.insert(Fnv1a(line)).second) {
        outcome.console_hits.push_back(line);
        capture_finding(FindingKind::kConsole, Fnv1a(line), trial);
      }
    }
    if (detectors.panicked) {
      check_target(ClassifyConsoleLine(detectors.panic_message));
      if (panic_hashes.insert(Fnv1a(detectors.panic_message)).second) {
        outcome.panic_messages.push_back(detectors.panic_message);
        capture_finding(FindingKind::kPanic, Fnv1a(detectors.panic_message), trial);
      }
    }
    if (bug_this_trial && !outcome.bug_found) {
      outcome.bug_found = true;
      outcome.first_bug_trial = trial;
    }
    if (target_this_trial && !outcome.target_found) {
      outcome.target_found = true;
      outcome.first_target_trial = trial;
    }
    if ((bug_this_trial && options.stop_on_bug) || target_this_trial) {
      break;
    }

    // Lines 26-27: adopt one incidental PMC observed in this trial.
    if (pmc_scheduler != nullptr && options.adopt_incidental && matcher != nullptr) {
      FindIncidentalPmcs(result.trace, *matcher, current_keys, &incidental);
      if (!incidental.matches.empty()) {
        uint32_t pick = incidental.matches[adoption_rng.Below(incidental.matches.size())];
        const PmcKey& key = matcher->pmcs()[pick].key;
        if (current_keys.Insert(key.Hash())) {
          pmc_scheduler->AddPmc(key);
        }
      }
    }
  }

  // Shrink each captured schedule toward the 2-preemption ideal. This runs after the trial
  // loop so it adds no fault points or hang ordinals (the crash-sweep's point count stays a
  // function of the campaign shape alone); under an injected crash the partial outcome is
  // discarded anyway, so the replays are skipped. Each probe is a deterministic replay, so
  // the minimized schedules — and everything serialized from them — are identical on any
  // worker count or engine configuration.
  if (options.minimize_schedules && !outcome.captures.empty() &&
      !(options.fault != nullptr && options.fault->crashed())) {
    Engine::RunOptions replay_opts;
    replay_opts.max_instructions = options.max_instructions;
    MinimizeOptions min_opts;
    min_opts.max_probes = options.minimize_probes;
    for (TrialCapture& capture : outcome.captures) {
      std::optional<RecordedSchedule> recorded =
          RecordedSchedule::FromString(capture.schedule);
      if (!recorded.has_value()) {
        continue;
      }
      FindingKind kind = static_cast<FindingKind>(capture.kind);
      uint64_t last_fingerprint = 0;
      auto probe = [&](const RecordedSchedule& candidate) {
        ReplayScheduler replayer(candidate);
        replayer.SeedTrial(0);
        replay_opts.scheduler = &replayer;
        vm.RestoreSnapshot();
        vm.engine().RunInto(vcpu_fns, replay_opts, &result);
        RunDetectors(result, &race_detector, &detectors);
        if (!DetectorResultContainsKey(detectors, kind, capture.finding_key)) {
          return false;
        }
        last_fingerprint = DetectorFingerprint(detectors);
        return true;
      };
      MinimizeStats stats;
      RecordedSchedule minimized = MinimizeSchedule(*recorded, probe, min_opts, &stats);
      if (stats.reproduced) {
        // The final successful probe ran exactly `minimized`, so its fingerprint is the
        // one a replay of this capture will produce.
        capture.schedule = minimized.ToString();
        capture.fingerprint = last_fingerprint;
        capture.min_switches = static_cast<uint32_t>(stats.min_switches);
      }
    }
  }
  return outcome;
}

}  // namespace

ExploreOutcome ExploreConcurrentTest(KernelVm& vm, const ConcurrentTest& test,
                                     const PmcMatcher* matcher,
                                     const ExplorerOptions& options) {
  PmcScheduler scheduler;
  scheduler.ResetForTest(test.hint);
  return RunTrialLoop(vm, test, scheduler, &scheduler, matcher, /*check_channel=*/true,
                      options);
}

ExploreOutcome ExploreWithScheduler(KernelVm& vm, const ConcurrentTest& test,
                                    TrialScheduler& scheduler, bool check_channel,
                                    const ExplorerOptions& options) {
  return RunTrialLoop(vm, test, scheduler, /*pmc_scheduler=*/nullptr, /*matcher=*/nullptr,
                      check_channel, options);
}

ExploreOutcome ExploreThreeThreaded(KernelVm& vm, const ThreeThreadTest& test,
                                    const ExplorerOptions& options) {
  ExploreOutcome outcome;
  PmcScheduler scheduler;
  scheduler.ResetForTest(test.hint_a);
  scheduler.AddPmc(test.hint_b);
  std::unordered_set<uint64_t> race_signatures;
  std::unordered_set<uint64_t> console_hashes;
  std::unordered_set<uint64_t> panic_hashes;

  // Trial-scoped buffers, hoisted (same reuse discipline as RunTrialLoop).
  const std::vector<Engine::GuestFn> vcpu_fns = {
      MakeProgramRunner(vm.globals(), test.programs[0], 0),
      MakeProgramRunner(vm.globals(), test.programs[1], 1),
      MakeProgramRunner(vm.globals(), test.programs[2], 2)};
  Engine::RunOptions run_opts;
  run_opts.scheduler = &scheduler;
  run_opts.max_instructions = options.max_instructions;
  Engine::RunResult result;
  RaceDetector race_detector;
  DetectorResult detectors;

  for (int trial = 0; trial < options.num_trials; trial++) {
    outcome.trials_run++;
    scheduler.SeedTrial(options.seed + static_cast<uint64_t>(trial));

    vm.RestoreSnapshot();
    vm.engine().RunInto(vcpu_fns, run_opts, &result);

    if (result.hang) {
      outcome.any_hang = true;
    }
    if (!outcome.channel_exercised &&
        (PmcChannelExercised(result.trace, test.hint_a, 0, 1) ||
         PmcChannelExercised(result.trace, test.hint_b, 0, 2) ||
         PmcChannelExercised(result.trace, test.hint_b, 1, 2))) {
      outcome.channel_exercised = true;
    }

    RunDetectors(result, &race_detector, &detectors);
    bool bug_this_trial = detectors.panicked || !detectors.console_hits.empty() ||
                          !detectors.races.empty();
    for (const RaceReport& race : detectors.races) {
      if (race_signatures.insert(race.Signature()).second) {
        outcome.races.push_back(race);
      }
    }
    for (const std::string& line : detectors.console_hits) {
      if (console_hashes.insert(Fnv1a(line)).second) {
        outcome.console_hits.push_back(line);
      }
    }
    if (detectors.panicked && panic_hashes.insert(Fnv1a(detectors.panic_message)).second) {
      outcome.panic_messages.push_back(detectors.panic_message);
    }
    if (bug_this_trial) {
      if (!outcome.bug_found) {
        outcome.bug_found = true;
        outcome.first_bug_trial = trial;
      }
      if (options.stop_on_bug) {
        break;
      }
    }
  }
  return outcome;
}

}  // namespace snowboard
