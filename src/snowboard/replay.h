// Deterministic bug reproduction (§6).
//
// "Snowboard has the benefit of providing a reliable environment to replicate bugs once they
// are found ... in all cases we evaluated, Snowboard was able to reproduce found bugs."
//
// Two mechanisms, composable:
//   * Seed replay — Algorithm 2's per-trial reseeding already makes any (test, seed, trial)
//     triple re-runnable; ReproduceTrial() packages that.
//   * Schedule recording — RecordingScheduler wraps any scheduler and logs its switch
//     decisions as a compact decision string; ReplayScheduler re-applies the exact decision
//     sequence with NO dependence on the original scheduler's internals. A recorded schedule
//     survives scheduler-algorithm changes and can be attached to a bug report.
#ifndef SRC_SNOWBOARD_REPLAY_H_
#define SRC_SNOWBOARD_REPLAY_H_

#include <optional>
#include <string>
#include <vector>

#include "src/snowboard/explorer.h"

namespace snowboard {

// Upper bound on a parseable schedule string. Recorded schedules are bounded by the trial
// instruction budget (one decision per memory access), so anything past this is adversarial
// input, not a recording.
inline constexpr size_t kMaxScheduleLength = 1 << 20;

// A recorded schedule: for each access (in per-vCPU execution order is not enough — the
// global access index is used, which the serialized engine makes well-defined), whether a
// switch was requested after it.
struct RecordedSchedule {
  std::vector<bool> switch_after;  // Indexed by global access ordinal.

  // Compact textual form ("..S..S.S") for bug reports; parseable by FromString.
  std::string ToString() const;
  // Rejecting parse: any character other than '.'/'S', or a string past
  // kMaxScheduleLength, yields nullopt (tokens cross trust boundaries — bug trackers,
  // checked-in corpora — so junk must never round-trip into a bogus schedule).
  static std::optional<RecordedSchedule> FromString(const std::string& text);
  size_t SwitchCount() const;
  bool operator==(const RecordedSchedule&) const = default;
};

// Wraps an inner scheduler, forwarding its decisions while recording them.
class RecordingScheduler : public TrialScheduler {
 public:
  explicit RecordingScheduler(TrialScheduler* inner) : inner_(inner) {}

  void SeedTrial(uint64_t seed) override {
    schedule_.switch_after.clear();
    inner_->SeedTrial(seed);
  }
  bool BeforeAccess(VcpuId vcpu, const Access& access) override {
    return inner_->BeforeAccess(vcpu, access);
  }
  bool AfterAccess(VcpuId vcpu, const Access& access) override {
    bool do_switch = inner_->AfterAccess(vcpu, access);
    schedule_.switch_after.push_back(do_switch);
    return do_switch;
  }
  void OnNotLive(VcpuId vcpu) override { inner_->OnNotLive(vcpu); }

  const RecordedSchedule& schedule() const { return schedule_; }

 private:
  TrialScheduler* inner_;
  RecordedSchedule schedule_;
};

// Replays a recorded decision sequence. Past the end of the recording it never switches
// (the trial outcome of interest has already been steered into place by then).
class ReplayScheduler : public TrialScheduler {
 public:
  explicit ReplayScheduler(RecordedSchedule schedule) : schedule_(std::move(schedule)) {}

  void SeedTrial(uint64_t seed) override { next_ = 0; }
  bool AfterAccess(VcpuId vcpu, const Access& access) override {
    if (next_ >= schedule_.switch_after.size()) {
      return false;
    }
    return schedule_.switch_after[next_++];
  }

 private:
  RecordedSchedule schedule_;
  size_t next_ = 0;
};

// A reproducible bug capsule: everything needed to re-trigger a finding.
struct BugCapsule {
  ConcurrentTest test;
  RecordedSchedule schedule;
  std::string panic_message;        // Expected console signature (may be empty for races).
};

// Re-runs one PMC-guided trial (test, seed, trial index) and captures its schedule.
// Returns the trial's raw result; `capsule` (optional) receives the recording.
Engine::RunResult ReproduceTrial(KernelVm& vm, const ConcurrentTest& test, uint64_t seed,
                                 int trial, BugCapsule* capsule);

// Replays a capsule and reports whether the original signature reproduced.
bool ReplayCapsule(KernelVm& vm, const BugCapsule& capsule);

// --- Replay tokens: a finding as a shippable artifact. ---
//
// A token is self-contained: it embeds the program pair, the PMC hint, the per-trial seed,
// the (minimized) recorded schedule, and the detector fingerprint the recorded trial
// produced. Re-executing it needs nothing but a booted KernelVm — no corpus, no checkpoint
// directory, no site-name registry from the original process. The single-line textual form
// (FormatReplayToken / ParseReplayToken in serialize.h) is versioned and checksummed.
struct ReplayToken {
  int issue_id = 0;          // Table 2 classification (0 = unclassified).
  int write_test = -1;       // Program-pair corpus ids (provenance; -1 = unknown).
  int read_test = -1;
  uint64_t trial_seed = 0;   // The exact SeedTrial value of the recorded trial.
  uint64_t max_instructions = 0;  // The trial's instruction budget.
  uint64_t fingerprint = 0;  // DetectorFingerprint of the recorded (minimized) trial.
  RecordedSchedule schedule;
  PmcKey hint;               // The PMC that steered the finding (provenance).
  Program writer;
  Program reader;

  bool operator==(const ReplayToken&) const = default;
};

// The result of re-executing a token's trial.
struct ReplayVerdict {
  bool completed = false;          // The replayed trial ran to a terminal engine state.
  uint64_t fingerprint = 0;        // DetectorFingerprint of the replayed trial.
  bool fingerprint_match = false;  // fingerprint == token.fingerprint.
  DetectorResult detectors;        // Full detector output, for reporting divergence.
};

// Deterministically re-executes the token's trial (ReplayScheduler over the recorded
// decisions, programs on vCPU 0/1 from the fixed snapshot) and verifies the detector
// fingerprint. The token's schedule fully determines the interleaving, so the verdict is
// identical on any machine, worker count, or engine configuration.
ReplayVerdict ReplayTokenTrial(KernelVm& vm, const ReplayToken& token);

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_REPLAY_H_
