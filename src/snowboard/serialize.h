// Persistence for pipeline artifacts.
//
// The paper's deployment stores intermediate artifacts between stages (profiles feed a
// separate identification job; S-FULL's PMC keys are "stored on disk and sorted by
// frequency"; concurrent tests travel through a Redis queue to workers). These helpers give
// the same workflow: every stage artifact — corpora, sequential profiles, PMC sets,
// generated concurrent tests, per-test execution outcomes, findings logs, and whole
// pipeline results — round-trips through a line-oriented text format that is stable,
// diffable, and versioned.
//
// Robustness contract shared by every Deserialize*: a wrong or flipped version header,
// truncation at ANY line boundary, or junk bytes yield nullopt — never a crash, and never
// a silently half-loaded artifact (container formats carry element counts so a clean cut
// after a complete element is still detected). This is what lets the checkpoint layer
// treat "parses" as "complete".
#ifndef SRC_SNOWBOARD_SERIALIZE_H_
#define SRC_SNOWBOARD_SERIALIZE_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/fuzz/program.h"
#include "src/snowboard/explorer.h"
#include "src/snowboard/pmc.h"
#include "src/snowboard/replay.h"
#include "src/snowboard/report.h"
#include "src/snowboard/select.h"

namespace snowboard {

struct PipelineResult;  // pipeline.h; not included to avoid a cycle.

// --- Programs / corpora. ---
// One call per line: "call <nr> <kind>:<value> ..." (kind: c = const, r = result-ref);
// programs separated by "end". The container starts with a version header.

std::string SerializeProgram(const Program& program);
std::optional<Program> DeserializeProgram(const std::string& text);

std::string SerializeCorpus(const std::vector<Program>& corpus);
std::optional<std::vector<Program>> DeserializeCorpus(const std::string& text);

// --- PMC sets. ---
// One PMC per line: "pmc <waddr> <wlen> <wsite> <wvalue> <raddr> <rlen> <rsite> <rvalue>
// <df> <total_pairs> <pair_count> [<wtest> <rtest>]...".

std::string SerializePmcs(const std::vector<Pmc>& pmcs);
std::optional<std::vector<Pmc>> DeserializePmcs(const std::string& text);

// --- Sequential profiles (stage-1 artifact; embeds each profile's program). ---

std::string SerializeProfiles(const std::vector<SequentialProfile>& profiles);
std::optional<std::vector<SequentialProfile>> DeserializeProfiles(const std::string& text);

// --- Concurrent tests (stage-3 artifact: programs, corpus ids, hint, cluster info). ---

struct SerializedTests {
  std::vector<ConcurrentTest> tests;
  size_t cluster_count = 0;
};

std::string SerializeConcurrentTests(const std::vector<ConcurrentTest>& tests,
                                     size_t cluster_count);
std::optional<SerializedTests> DeserializeConcurrentTests(const std::string& text);

// --- Explore outcomes (per-test execution result; the journal payload). ---

std::string SerializeExploreOutcome(const ExploreOutcome& outcome);
std::optional<ExploreOutcome> DeserializeExploreOutcome(const std::string& text);

// Single-line journal record: the raw outcome PLUS the findings classified from it at
// execution time. Classification and evidence rendering need the in-process site-name
// registry, which a cold resumed process lacks for tests it never re-executes — so the
// journal stores the classified findings and replay never re-classifies.
// Format: "<test_index> <hex(outcome text)> <n> <hex(finding)>...", where each finding
// encodes "<issue_id> <trial> <duplicate> <evidence-hex|->" (test_index is the record's).
struct OutcomeRecord {
  size_t test_index = 0;
  ExploreOutcome outcome;
  std::vector<Finding> findings;
};

std::string EncodeOutcomeRecord(const OutcomeRecord& record);
std::optional<OutcomeRecord> DecodeOutcomeRecord(const std::string& record);

// --- Findings logs. ---

std::string SerializeFindings(const FindingsLog& findings);
std::optional<FindingsLog> DeserializeFindings(const std::string& text);

// --- Pipeline results. ---
// Deterministic campaign outputs only — stage statistics, the PMC-table digest, and the
// full findings log. Wall-clock timings and resume bookkeeping (tests_resumed,
// trials_retried) are excluded on purpose: an uninterrupted campaign and one resumed from
// any crash point must serialize to byte-identical text, and the crash-sweep harness
// asserts equality on exactly this string.

std::string SerializePipelineResult(const PipelineResult& result);
std::optional<PipelineResult> DeserializePipelineResult(const std::string& text);

// --- Replay tokens (single-line shippable reproducers; see replay.h). ---
// Format: "sb-replay-v1 <issue_id> <write_test> <read_test> <trial_seed>
// <max_instructions> <fingerprint-16hex> <schedule|-> <hint: waddr wlen wsite wvalue
// raddr rlen rsite rvalue df> <writer-hex> <reader-hex> <crc-16hex>", one line, where the
// crc is FNV-1a over everything before it. ParseReplayToken follows the shared robustness
// contract — wrong header, bad checksum, junk fields, truncation, or oversized input all
// yield nullopt — because tokens cross trust boundaries (bug reports, checked-in corpora).

std::string FormatReplayToken(const ReplayToken& token);
std::optional<ReplayToken> ParseReplayToken(const std::string& text);

// --- Byte-string hex coding (console lines and evidence embed arbitrary bytes). ---

std::string HexEncode(const std::string& bytes);
std::optional<std::string> HexDecode(const std::string& hex);

// --- File helpers (thin wrappers; return false / nullopt on IO failure). ---
// WriteStringToFile is atomic: it commits via util/fs.h write-temp-then-rename, so a crash
// or failure never leaves a partially written file at `path`.
bool WriteStringToFile(const std::string& path, const std::string& contents);
std::optional<std::string> ReadFileToString(const std::string& path);

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_SERIALIZE_H_
