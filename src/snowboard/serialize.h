// Persistence for pipeline artifacts.
//
// The paper's deployment stores intermediate artifacts between stages (profiles feed a
// separate identification job; S-FULL's PMC keys are "stored on disk and sorted by
// frequency"; concurrent tests travel through a Redis queue to workers). These helpers give
// the same workflow: corpora and PMC sets round-trip through a line-oriented text format
// that is stable, diffable, and versioned.
#ifndef SRC_SNOWBOARD_SERIALIZE_H_
#define SRC_SNOWBOARD_SERIALIZE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/fuzz/program.h"
#include "src/snowboard/pmc.h"

namespace snowboard {

// --- Programs / corpora. ---
// One call per line: "call <nr> <kind>:<value> ..." (kind: c = const, r = result-ref);
// programs separated by "end". The container starts with a version header.

std::string SerializeProgram(const Program& program);
std::optional<Program> DeserializeProgram(const std::string& text);

std::string SerializeCorpus(const std::vector<Program>& corpus);
std::optional<std::vector<Program>> DeserializeCorpus(const std::string& text);

// --- PMC sets. ---
// One PMC per line: "pmc <waddr> <wlen> <wsite> <wvalue> <raddr> <rlen> <rsite> <rvalue>
// <df> <total_pairs> <pair_count> [<wtest> <rtest>]...".

std::string SerializePmcs(const std::vector<Pmc>& pmcs);
std::optional<std::vector<Pmc>> DeserializePmcs(const std::string& text);

// --- File helpers (thin wrappers; return false / nullopt on IO failure). ---
bool WriteStringToFile(const std::string& path, const std::string& contents);
std::optional<std::string> ReadFileToString(const std::string& path);

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_SERIALIZE_H_
