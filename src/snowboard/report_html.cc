#include "src/snowboard/report_html.h"

#include <algorithm>
#include <cmath>

#include "src/snowboard/pipeline.h"
#include "src/snowboard/report.h"
#include "src/util/fs.h"
#include "src/util/strings.h"

namespace snowboard {

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          StrAppendf(&out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string HtmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

CampaignReport BuildCampaignReport(const PipelineOptions& options,
                                   const PipelineResult& result) {
  CampaignReport report;
  report.strategy = StrategyName(options.strategy);
  report.seed = options.seed;
  report.num_workers = options.num_workers;
  report.pmc_table_digest = result.pmc_table_digest;
  report.trials_retried = result.trials_retried;
  report.tests_resumed = result.tests_resumed;

  report.funnel = {
      {"corpus_programs", "Sequential programs", result.corpus_size},
      {"pmcs_identified", "PMCs identified", result.pmc_count},
      {"pmc_pairs_total", "PMC test pairs", result.total_pmc_pairs},
      {"clusters", "Clusters (strategy exemplars)", result.cluster_count},
      {"tests_executed", "Concurrent tests executed", result.tests_executed},
      {"tests_with_findings", "Tests with findings", result.tests_with_bug},
      {"schedule_switches_orig", "Captured schedule switches (recorded)",
       result.schedule_switches_orig},
      {"schedule_switches_min", "Captured schedule switches (minimized)",
       result.schedule_switches_min},
  };

  report.stages = {
      {"corpus", result.corpus_seconds, 0, false},
      {"profile", result.profile_seconds, result.profile_restore_seconds, true},
      {"identify", result.identify_seconds, 0, false},
      {"cluster", result.cluster_seconds, 0, false},
      {"execute", result.execute_seconds, result.execute_restore_seconds, true},
  };

  for (const auto& [issue_id, finding] : result.findings.first_findings()) {
    ReportFinding row;
    row.issue_id = issue_id;
    const IssueInfo* info = FindIssue(issue_id);
    if (info != nullptr) {
      row.type = IssueTypeName(info->type);
      row.summary = info->summary;
      row.subsystem = info->subsystem;
      row.harmful = info->harmful;
      row.benign = info->benign;
    } else {
      row.type = "?";
      row.summary = "unclassified detector report";
      row.subsystem = "-";
    }
    row.duplicate_input = finding.duplicate_input;
    row.test_index = finding.test_index;
    row.trial = finding.trial;
    row.evidence = finding.evidence;
    row.replay_token = finding.replay_token;
    report.findings.push_back(std::move(row));
  }

  report.metrics = CollectCampaignMetrics(options, result);
  return report;
}

std::string RenderReportJson(const CampaignReport& report) {
  std::string out = "{\n";
  StrAppendf(&out, "\"schema\": \"snowboard-report-v1\",\n");
  StrAppendf(&out, "\"strategy\": \"%s\",\n", JsonEscape(report.strategy).c_str());
  StrAppendf(&out, "\"seed\": %llu,\n", static_cast<unsigned long long>(report.seed));
  StrAppendf(&out, "\"pmc_table_digest\": \"%016llx\",\n",
             static_cast<unsigned long long>(report.pmc_table_digest));

  out += "\"funnel\": [\n";
  for (size_t i = 0; i < report.funnel.size(); i++) {
    const FunnelRow& row = report.funnel[i];
    StrAppendf(&out, "  {\"stage\": \"%s\", \"title\": \"%s\", \"count\": %llu}%s\n",
               row.label.c_str(), JsonEscape(row.title).c_str(),
               static_cast<unsigned long long>(row.value),
               i + 1 == report.funnel.size() ? "" : ",");
  }
  out += "],\n";

  // Stage objects are one-key-per-line so MaskReportVolatile can mask exactly the
  // wall-clock values and leave the structure comparable.
  out += "\"stages\": [\n";
  for (size_t i = 0; i < report.stages.size(); i++) {
    const StageTiming& stage = report.stages[i];
    out += "  {\n";
    StrAppendf(&out, "    \"name\": \"%s\",\n", stage.name.c_str());
    StrAppendf(&out, "    \"wall_seconds\": %.6f%s\n", stage.wall_seconds,
               stage.has_restore ? "," : "");
    if (stage.has_restore) {
      StrAppendf(&out, "    \"restore_seconds\": %.6f\n", stage.restore_seconds);
    }
    StrAppendf(&out, "  }%s\n", i + 1 == report.stages.size() ? "" : ",");
  }
  out += "],\n";

  out += "\"findings\": [\n";
  for (size_t i = 0; i < report.findings.size(); i++) {
    const ReportFinding& f = report.findings[i];
    StrAppendf(&out,
               "  {\"issue_id\": %d, \"type\": \"%s\", \"subsystem\": \"%s\", "
               "\"summary\": \"%s\", \"harmful\": %s, \"benign\": %s, "
               "\"duplicate_input\": %s, \"test_index\": %zu, \"trial\": %d, "
               "\"evidence\": \"%s\", \"replay_token\": \"%s\"}%s\n",
               f.issue_id, JsonEscape(f.type).c_str(), JsonEscape(f.subsystem).c_str(),
               JsonEscape(f.summary).c_str(), f.harmful ? "true" : "false",
               f.benign ? "true" : "false", f.duplicate_input ? "true" : "false",
               f.test_index, f.trial, JsonEscape(f.evidence).c_str(),
               JsonEscape(f.replay_token).c_str(),
               i + 1 == report.findings.size() ? "" : ",");
  }
  out += "],\n";

  StrAppendf(&out, "\"trials_retried\": %llu,\n",
             static_cast<unsigned long long>(report.trials_retried));
  StrAppendf(&out, "\"tests_resumed\": %llu,\n",
             static_cast<unsigned long long>(report.tests_resumed));
  StrAppendf(&out, "\"num_workers\": %d,\n", report.num_workers);

  // Flat metrics snapshot (one key per line; "run."-prefixed keys are volatile).
  out += "\"metrics\": ";
  std::string metrics = SerializeMetricsJson(report.metrics);
  if (!metrics.empty() && metrics.back() == '\n') {
    metrics.pop_back();
  }
  out += metrics;
  out += "\n}\n";
  return out;
}

std::string MaskReportVolatile(const std::string& report_json) {
  std::string out;
  out.reserve(report_json.size());
  size_t pos = 0;
  while (pos < report_json.size()) {
    size_t end = report_json.find('\n', pos);
    if (end == std::string::npos) {
      end = report_json.size();
    }
    std::string line = report_json.substr(pos, end - pos);
    // Extract the line's key: the first quoted token, if the line is a `"key": value` pair.
    size_t key_open = line.find('"');
    size_t key_close = key_open == std::string::npos ? std::string::npos
                                                     : line.find('"', key_open + 1);
    if (key_close != std::string::npos &&
        line.compare(key_close + 1, 2, ": ") == 0) {
      std::string key = line.substr(key_open + 1, key_close - key_open - 1);
      bool volatile_key = key.find("_seconds") != std::string::npos ||
                          key.rfind("run.", 0) == 0 || key == "num_workers" ||
                          key == "tests_resumed";
      if (volatile_key) {
        bool comma = !line.empty() && line.back() == ',';
        line = line.substr(0, key_close + 3) + "\"<masked>\"" + (comma ? "," : "");
      }
    }
    out += line;
    out += '\n';
    pos = end + 1;
  }
  return out;
}

namespace {

// Funnel colors: the ordinal steps of the documented sequential-blue ramp, one per funnel
// stage, stepped for each surface (light: steps 250..650; dark: 150..600 — both ends clear
// the 2:1 ordinal floor on their surface).
const char* const kFunnelLight[6] = {"#86b6ef", "#5598e7", "#2a78d6",
                                     "#256abf", "#1c5cab", "#104281"};
const char* const kFunnelDark[6] = {"#b7d3f6", "#86b6ef", "#5598e7",
                                    "#3987e5", "#256abf", "#184f95"};

double FunnelWidthPercent(uint64_t value, uint64_t max_value) {
  if (value == 0 || max_value == 0) {
    return 0;
  }
  // Counts span orders of magnitude (thousands of PMC pairs vs a dozen findings); a log
  // scale keeps every populated stage visible. Direct labels carry the exact values.
  double w = 100.0 * std::log10(1.0 + static_cast<double>(value)) /
             std::log10(1.0 + static_cast<double>(max_value));
  return std::max(w, 1.5);
}

}  // namespace

std::string RenderReportHtml(const CampaignReport& report) {
  uint64_t max_funnel = 0;
  for (const FunnelRow& row : report.funnel) {
    max_funnel = std::max(max_funnel, row.value);
  }
  double max_stage_seconds = 0;
  double total_stage_seconds = 0;
  for (const StageTiming& stage : report.stages) {
    max_stage_seconds = std::max(max_stage_seconds, stage.wall_seconds);
    total_stage_seconds += stage.wall_seconds;
  }

  std::string out;
  out.reserve(32 * 1024);
  out += "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n";
  StrAppendf(&out, "<title>Snowboard campaign report — %s</title>\n",
             HtmlEscape(report.strategy).c_str());
  out += R"(<meta name="viewport" content="width=device-width, initial-scale=1">
<style>
:root {
  color-scheme: light dark;
  --page: #f9f9f7; --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e;
  --muted: #898781; --grid: #e1e0d9; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --critical: #d03b3b; --good: #0ca30c;
  --f0: #86b6ef; --f1: #5598e7; --f2: #2a78d6; --f3: #256abf; --f4: #1c5cab; --f5: #104281;
}
@media (prefers-color-scheme: dark) {
  :root {
    --page: #0d0d0d; --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7;
    --muted: #898781; --grid: #2c2c2a; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --critical: #d03b3b; --good: #0ca30c;
    --f0: #b7d3f6; --f1: #86b6ef; --f2: #5598e7; --f3: #3987e5; --f4: #256abf; --f5: #184f95;
  }
}
body { margin: 0; background: var(--page); color: var(--ink);
       font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif; }
main { max-width: 880px; margin: 0 auto; padding: 24px 20px 48px; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 32px 0 10px; }
.meta { color: var(--ink-2); margin-bottom: 20px; }
.meta code { color: var(--muted); }
section.card { background: var(--surface); border: 1px solid var(--border);
               border-radius: 8px; padding: 16px 18px; margin-top: 12px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile { flex: 1 1 140px; background: var(--surface); border: 1px solid var(--border);
        border-radius: 8px; padding: 12px 14px; }
.tile .v { font-size: 24px; font-weight: 600; }
.tile .l { color: var(--ink-2); font-size: 12px; }
.frow { margin-bottom: 10px; }
.flabel { display: flex; justify-content: space-between; margin-bottom: 3px; }
.flabel .t { color: var(--ink-2); }
.flabel .n { font-variant-numeric: tabular-nums; font-weight: 600; }
.ftrack { background: none; }
.fbar { height: 14px; border-radius: 0 4px 4px 0; margin-bottom: 2px; }
table { border-collapse: collapse; width: 100%; }
th { text-align: left; color: var(--muted); font-weight: 500; font-size: 12px;
     border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0; }
td { border-bottom: 1px solid var(--grid); padding: 6px 10px 6px 0;
     font-variant-numeric: tabular-nums; vertical-align: top; }
td.num { text-align: right; }
th.num { text-align: right; }
.tbar { height: 6px; background: var(--series-1); border-radius: 0 3px 3px 0;
        margin-top: 4px; }
.sev { font-size: 12px; font-weight: 600; white-space: nowrap; }
.sev.harmful { color: var(--critical); }
.sev.benign { color: var(--good); }
.sev.neutral { color: var(--muted); }
.evid { font-family: ui-monospace, SFMono-Regular, Menlo, monospace; font-size: 12px;
        color: var(--ink-2); word-break: break-all; }
footer { color: var(--muted); font-size: 12px; margin-top: 28px; }
</style>
</head>
<body>
<main>
)";

  StrAppendf(&out, "<h1>Snowboard campaign report</h1>\n");
  StrAppendf(&out,
             "<div class=\"meta\">strategy <b>%s</b> · seed %llu · %d worker%s · "
             "PMC table digest <code>%016llx</code></div>\n",
             HtmlEscape(report.strategy).c_str(),
             static_cast<unsigned long long>(report.seed), report.num_workers,
             report.num_workers == 1 ? "" : "s",
             static_cast<unsigned long long>(report.pmc_table_digest));

  // Headline stat tiles.
  uint64_t tests_executed = 0;
  uint64_t trials_total = 0;
  for (const FunnelRow& row : report.funnel) {
    if (row.label == "tests_executed") {
      tests_executed = row.value;
    }
  }
  trials_total = static_cast<uint64_t>(report.metrics.Value("funnel.trials_total"));
  out += "<div class=\"tiles\">\n";
  StrAppendf(&out,
             "<div class=\"tile\"><div class=\"v\">%llu</div>"
             "<div class=\"l\">concurrent tests executed</div></div>\n",
             static_cast<unsigned long long>(tests_executed));
  StrAppendf(&out,
             "<div class=\"tile\"><div class=\"v\">%llu</div>"
             "<div class=\"l\">trials run</div></div>\n",
             static_cast<unsigned long long>(trials_total));
  StrAppendf(&out,
             "<div class=\"tile\"><div class=\"v\">%zu</div>"
             "<div class=\"l\">distinct issues found</div></div>\n",
             report.findings.size());
  StrAppendf(&out,
             "<div class=\"tile\"><div class=\"v\">%llu</div>"
             "<div class=\"l\">hung trials retried</div></div>\n",
             static_cast<unsigned long long>(report.trials_retried));
  out += "</div>\n";

  // Funnel: one ordinal-ramp bar per stage, log-scaled width, exact counts as direct
  // labels (the labels carry the values; the bars carry the shape).
  out += "<h2>Campaign funnel</h2>\n<section class=\"card\" "
         "aria-label=\"campaign funnel, log-scaled\">\n";
  for (size_t i = 0; i < report.funnel.size(); i++) {
    const FunnelRow& row = report.funnel[i];
    double width = FunnelWidthPercent(row.value, max_funnel);
    StrAppendf(&out,
               "<div class=\"frow\"><div class=\"flabel\"><span class=\"t\">%s</span>"
               "<span class=\"n\">%llu</span></div>"
               "<div class=\"ftrack\"><div class=\"fbar\" style=\"width:%.1f%%;"
               "background:var(--f%zu)\" title=\"%s: %llu\"></div></div></div>\n",
               HtmlEscape(row.title).c_str(), static_cast<unsigned long long>(row.value),
               width, std::min<size_t>(i, 5), HtmlEscape(row.title).c_str(),
               static_cast<unsigned long long>(row.value));
  }
  out += "<div style=\"color:var(--muted);font-size:12px\">bar widths are "
         "log-scaled; labels show exact counts</div>\n</section>\n";

  // Per-stage timing table.
  out += "<h2>Stage breakdown</h2>\n<section class=\"card\">\n<table>\n"
         "<tr><th>stage</th><th class=\"num\">wall s</th><th class=\"num\">restore s"
         "</th><th class=\"num\">share</th><th style=\"width:40%\"></th></tr>\n";
  for (const StageTiming& stage : report.stages) {
    double share = total_stage_seconds > 0 ? 100.0 * stage.wall_seconds /
                                                 total_stage_seconds
                                           : 0;
    double bar = max_stage_seconds > 0 ? 100.0 * stage.wall_seconds / max_stage_seconds
                                       : 0;
    StrAppendf(&out,
               "<tr><td>%s</td><td class=\"num\">%.3f</td><td class=\"num\">%s</td>"
               "<td class=\"num\">%.1f%%</td>"
               "<td><div class=\"tbar\" style=\"width:%.1f%%\"></div></td></tr>\n",
               stage.name.c_str(), stage.wall_seconds,
               stage.has_restore ? StrPrintf("%.3f", stage.restore_seconds).c_str() : "—",
               share, bar);
  }
  out += "</table>\n</section>\n";

  // Findings table.
  out += "<h2>Findings (first discovery per issue)</h2>\n<section class=\"card\">\n";
  if (report.findings.empty()) {
    out += "<div style=\"color:var(--muted)\">no findings</div>\n";
  } else {
    out += "<table>\n<tr><th>issue</th><th>type</th><th>subsystem</th><th>summary</th>"
           "<th>severity</th><th>input</th><th class=\"num\">test #</th>"
           "<th class=\"num\">trial</th></tr>\n";
    for (const ReportFinding& f : report.findings) {
      const char* sev_class = f.harmful ? "harmful" : (f.benign ? "benign" : "neutral");
      const char* sev_text = f.harmful ? "✕ harmful" : (f.benign ? "✓ benign" : "—");
      std::string token_div =
          f.replay_token.empty()
              ? std::string()
              : StrPrintf("<div class=\"evid\">replay: %s</div>",
                          HtmlEscape(f.replay_token).c_str());
      StrAppendf(&out,
                 "<tr><td>#%d</td><td>%s</td><td>%s</td><td>%s"
                 "<div class=\"evid\">%s</div>%s</td>"
                 "<td><span class=\"sev %s\">%s</span></td><td>%s</td>"
                 "<td class=\"num\">%zu</td><td class=\"num\">%d</td></tr>\n",
                 f.issue_id, HtmlEscape(f.type).c_str(), HtmlEscape(f.subsystem).c_str(),
                 HtmlEscape(f.summary).c_str(), HtmlEscape(f.evidence).c_str(),
                 token_div.c_str(), sev_class, sev_text,
                 f.duplicate_input ? "duplicate" : "distinct", f.test_index, f.trial);
    }
    out += "</table>\n";
  }
  out += "</section>\n";

  StrAppendf(&out,
             "<footer>generated by snowboard_cli · schema snowboard-report-v1 · the "
             "machine-readable twin of this page is report.json</footer>\n");
  out += "</main>\n</body>\n</html>\n";
  return out;
}

bool WriteCampaignReport(const CampaignReport& report, const std::string& dir) {
  if (!EnsureDirectory(dir)) {
    return false;
  }
  bool ok = AtomicWriteFile(dir + "/report.json", RenderReportJson(report));
  ok = AtomicWriteFile(dir + "/report.html", RenderReportHtml(report)) && ok;
  return ok;
}

}  // namespace snowboard
