#include "src/snowboard/pipeline.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "src/sim/site.h"
#include "src/snowboard/checkpoint.h"
#include "src/snowboard/serialize.h"
#include "src/snowboard/stats.h"
#include "src/util/assert.h"
#include "src/util/counters.h"
#include "src/util/fault.h"
#include "src/util/hash.h"
#include "src/util/log.h"
#include "src/util/strings.h"
#include "src/util/trace.h"

namespace snowboard {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Seconds of snapshot-restore time accumulated process-wide since `nanos_before` (read the
// counter before the stage, call this after).
double RestoreSecondsSince(uint64_t nanos_before) {
  uint64_t now = GlobalPipelineCounters().snapshot_restore_nanos.load(std::memory_order_relaxed);
  return static_cast<double>(now - nanos_before) * 1e-9;
}

// Classifies one test's raw outcome into findings. This must run in the process that
// executed the test: race classification and evidence rendering resolve site IDs through
// the in-process site-name registry, which a cold resumed process has not populated for
// tests it never re-executes. The extracted findings therefore travel WITH the outcome in
// the execution journal, and journal replay records them verbatim instead of
// re-classifying.
std::vector<Finding> ExtractFindings(const ConcurrentTest& test,
                                     const ExploreOutcome& outcome, size_t test_index) {
  std::vector<Finding> findings;
  bool duplicate_input = test.write_test == test.read_test;
  auto record = [&](int issue_id, const std::string& evidence) {
    Finding finding;
    finding.issue_id = issue_id;
    finding.evidence = evidence;
    finding.test_index = test_index;
    finding.trial = outcome.first_bug_trial;
    finding.duplicate_input = duplicate_input;
    findings.push_back(std::move(finding));
  };
  for (const RaceReport& race : outcome.races) {
    std::string evidence =
        StrPrintf("data race: %s / %s @0x%x", SiteName(race.write_site).c_str(),
                  SiteName(race.other_site).c_str(), race.addr);
    record(ClassifyRace(race), evidence);
  }
  for (const std::string& line : outcome.console_hits) {
    record(ClassifyConsoleLine(line), line);
  }
  for (const std::string& line : outcome.panic_messages) {
    record(ClassifyConsoleLine(line), line);
  }
  return findings;
}

// True once an injected crash has fired anywhere: the "process" is dead, so stages stop
// starting new work and unwind with whatever partial state they hold.
bool Dead(const PipelineOptions& options) {
  return options.fault != nullptr && options.fault->crashed();
}

// Opens the campaign's checkpoint store, or null when checkpointing is off/unavailable.
// Each stage opens its own handle; the manifest on disk is the source of truth between
// stages, so sequential opens always observe every prior commit.
std::unique_ptr<CheckpointStore> OpenStore(const PipelineOptions& options) {
  if (options.checkpoint_dir.empty()) {
    return nullptr;
  }
  auto store = std::make_unique<CheckpointStore>(options.checkpoint_dir, options.fault);
  if (!store->ok()) {
    SB_LOG(kWarn) << "checkpoint: store unavailable at " << options.checkpoint_dir
                  << "; running without checkpoints";
    return nullptr;
  }
  return store;
}

// Hash of every option that shapes the pipeline's deterministic outputs. num_workers,
// checkpointing, and fault injection are deliberately excluded: a campaign may be resumed
// with a different worker count (the determinism invariant guarantees identical results),
// but any fingerprint mismatch means the directory's artifacts answer a different question
// and must be discarded.
uint64_t OptionsFingerprint(const PipelineOptions& o) {
  return HashAll(o.seed, o.corpus.seed, o.corpus.max_iterations, o.corpus.target_size,
                 o.corpus.use_seeds, o.pmc.max_keys_per_address, o.pmc.max_pmcs,
                 static_cast<uint64_t>(o.strategy), o.max_concurrent_tests,
                 o.explorer.num_trials, o.explorer.seed, o.explorer.max_instructions,
                 o.explorer.stop_on_bug, o.explorer.target_issue,
                 o.explorer.adopt_incidental, o.explorer.max_trial_retries);
}

}  // namespace

PreparedCampaign PrepareCampaign(const PipelineOptions& options) {
  PreparedCampaign campaign;
  int num_workers = options.num_workers > 0 ? options.num_workers : 1;
  std::unique_ptr<CheckpointStore> store = OpenStore(options);

  // Stage 0: corpus construction stays sequential — admission is a serial fold over the
  // shared coverage map (each admit changes what counts as fresh for every later candidate).
  auto t0 = std::chrono::steady_clock::now();
  {
    TRACE_SPAN("stage.corpus");
    bool loaded = false;
    if (store != nullptr && options.resume) {
      if (std::optional<std::string> text = store->Get("corpus")) {
        if (std::optional<std::vector<Program>> corpus = DeserializeCorpus(*text)) {
          campaign.corpus = std::move(*corpus);
          loaded = true;
        }
      }
    }
    if (!loaded) {
      {
        KernelVm vm;
        CorpusOptions corpus_options = options.corpus;
        corpus_options.seed = corpus_options.seed ^ options.seed;
        campaign.corpus = CorpusPrograms(BuildCorpus(vm, corpus_options));
      }
      if (store != nullptr) {
        store->Put("corpus", SerializeCorpus(campaign.corpus));
      }
    }
  }
  campaign.corpus_seconds = SecondsSince(t0);
  TRACE_COUNTER("funnel.corpus_programs", campaign.corpus.size());
  if (Dead(options)) {
    return campaign;
  }

  // Stage 1: profiling shards over a shared-nothing VM pool; profiles return in corpus
  // order regardless of worker count.
  auto t1 = std::chrono::steady_clock::now();
  uint64_t restore_nanos_before =
      GlobalPipelineCounters().snapshot_restore_nanos.load(std::memory_order_relaxed);
  {
    TRACE_SPAN("stage.profile");
    bool loaded = false;
    if (store != nullptr && options.resume) {
      if (std::optional<std::string> text = store->Get("profiles")) {
        if (std::optional<std::vector<SequentialProfile>> profiles =
                DeserializeProfiles(*text)) {
          // A profile set for a different corpus (size mismatch) is stale, not corrupt.
          if (profiles->size() == campaign.corpus.size()) {
            campaign.profiles = std::move(*profiles);
            loaded = true;
          }
        }
      }
    }
    if (!loaded) {
      ProfileOptions profile_options;
      profile_options.num_workers = num_workers;
      profile_options.cache = options.profile_cache;
      campaign.profiles = ProfileCorpusParallel(campaign.corpus, profile_options);
      if (store != nullptr && !Dead(options)) {
        store->Put("profiles", SerializeProfiles(campaign.profiles));
      }
    }
  }
  campaign.profile_seconds = SecondsSince(t1);
  campaign.profile_restore_seconds = RestoreSecondsSince(restore_nanos_before);
  if (Dead(options)) {
    return campaign;
  }

  // Stage 2: the overlap scan shards over disjoint ranges of the ordered nested index and
  // merges in canonical PMC order (num_workers == 0 in the options means "inherit").
  auto t2 = std::chrono::steady_clock::now();
  {
    TRACE_SPAN("stage.identify");
    bool loaded = false;
    if (store != nullptr && options.resume) {
      if (std::optional<std::string> text = store->Get("pmcs")) {
        if (std::optional<std::vector<Pmc>> pmcs = DeserializePmcs(*text)) {
          campaign.pmcs = std::move(*pmcs);
          loaded = true;
        }
      }
    }
    if (!loaded) {
      PmcIdentifyOptions pmc_options = options.pmc;
      if (pmc_options.num_workers <= 0) {
        pmc_options.num_workers = num_workers;
      }
      campaign.pmcs = IdentifyPmcs(campaign.profiles, pmc_options);
      if (store != nullptr && !Dead(options)) {
        store->Put("pmcs", SerializePmcs(campaign.pmcs));
      }
    }
  }
  campaign.identify_seconds = SecondsSince(t2);
  TRACE_COUNTER("funnel.pmcs_identified", campaign.pmcs.size());
  return campaign;
}

std::vector<ConcurrentTest> GenerateTestsForStrategy(const PreparedCampaign& campaign,
                                                     const PipelineOptions& options,
                                                     size_t* cluster_count_out) {
  TRACE_SPAN("stage.cluster");
  std::unique_ptr<CheckpointStore> store = OpenStore(options);
  const std::string entry_name = std::string("tests.") + StrategyName(options.strategy);
  if (store != nullptr && options.resume) {
    if (std::optional<std::string> text = store->Get(entry_name)) {
      if (std::optional<SerializedTests> saved = DeserializeConcurrentTests(*text)) {
        if (cluster_count_out != nullptr) {
          *cluster_count_out = saved->cluster_count;
        }
        return std::move(saved->tests);
      }
    }
  }

  size_t cluster_count = 0;
  std::vector<ConcurrentTest> tests;
  if (!StrategyUsesPmcs(options.strategy)) {
    if (options.strategy == Strategy::kRandomPairing) {
      tests = GenerateRandomPairs(campaign.corpus, options.max_concurrent_tests,
                                  options.seed);
    } else {
      tests = GenerateDuplicatePairs(campaign.corpus, options.max_concurrent_tests,
                                     options.seed);
    }
  } else {
    std::vector<PmcCluster> clusters =
        ClusterPmcs(campaign.pmcs, options.strategy,
                    options.num_workers > 0 ? options.num_workers : 1);
    cluster_count = clusters.size();
    SelectOptions select;
    select.seed = options.seed * 0x9e3779b9ull + 17;
    select.max_tests = options.max_concurrent_tests;
    select.randomize_cluster_order = options.strategy == Strategy::kRandomSInsPair;
    tests = SelectConcurrentTests(campaign.pmcs, clusters, campaign.corpus, select);
  }
  if (cluster_count_out != nullptr) {
    *cluster_count_out = cluster_count;
  }
  if (store != nullptr && !Dead(options)) {
    store->Put(entry_name, SerializeConcurrentTests(tests, cluster_count));
  }
  return tests;
}

void ExecuteCampaign(const std::vector<ConcurrentTest>& tests, bool use_pmc_hints,
                     const PmcMatcher* matcher, const PipelineOptions& options,
                     PipelineResult* result) {
  TRACE_SPAN("stage.execute", tests.size());
  auto t0 = std::chrono::steady_clock::now();
  uint64_t restore_nanos_before =
      GlobalPipelineCounters().snapshot_restore_nanos.load(std::memory_order_relaxed);
  int num_workers = options.num_workers > 0 ? options.num_workers : 1;
  std::unique_ptr<CheckpointStore> store = OpenStore(options);
  const std::string journal_name = std::string("execute.") + StrategyName(options.strategy);
  FaultInjector* fault = options.fault;

  // On resume, pre-parse the execution journal into a by-index table: a journaled test is
  // replayed from its recorded outcome and execution-time findings (no VM involved),
  // everything else runs live. The table is read-only once built, so workers index it
  // without locking.
  std::vector<std::optional<OutcomeRecord>> journaled(tests.size());
  if (store != nullptr && options.resume) {
    for (const std::string& record : store->ReadJournal(journal_name)) {
      std::optional<OutcomeRecord> decoded = DecodeOutcomeRecord(record);
      if (decoded.has_value() && decoded->test_index < tests.size()) {
        size_t index = decoded->test_index;
        journaled[index] = std::move(*decoded);
      }
    }
  }

  std::atomic<size_t> next_test{0};
  std::mutex merge_mutex;

  // Each worker owns a booted VM (shared-nothing, as in the paper's distributed queue) —
  // booted lazily, so a fully journaled resume replays without paying for a single boot.
  auto worker_fn = [&]() {
    std::optional<KernelVm> vm;
    FindingsLog local_findings;
    size_t local_executed = 0;
    size_t local_with_bug = 0;
    size_t local_exercised = 0;
    size_t local_resumed = 0;
    uint64_t local_trials = 0;
    uint64_t local_retried = 0;

    for (;;) {
      // The worker-kill point: a crash injected here (or anywhere else) makes every
      // worker abandon its claim loop, exactly as a SIGKILL would.
      if (fault != nullptr && fault->At("execute.claim")) {
        break;
      }
      size_t index = next_test.fetch_add(1);
      if (index >= tests.size()) {
        break;
      }
      const ConcurrentTest& test = tests[index];
      TRACE_SPAN("explore.test", index);
      OutcomeRecord record;
      record.test_index = index;
      if (journaled[index].has_value()) {
        record = *journaled[index];
        local_resumed++;
        GlobalPipelineCounters().tests_resumed.fetch_add(1, std::memory_order_relaxed);
      } else {
        ExplorerOptions explorer = options.explorer;
        explorer.seed = options.explorer.seed + index * 1000003ull;
        explorer.fault = fault;
        if (!vm.has_value()) {
          vm.emplace();
        }
        if (use_pmc_hints) {
          record.outcome = ExploreConcurrentTest(*vm, test, matcher, explorer);
        } else {
          RandomPreemptScheduler scheduler;
          record.outcome = ExploreWithScheduler(*vm, test, scheduler,
                                                /*check_channel=*/false, explorer);
        }
        if (fault != nullptr && fault->crashed()) {
          break;  // The trial loop died mid-test; its partial outcome never existed.
        }
        record.findings = ExtractFindings(test, record.outcome, index);
        if (store != nullptr) {
          store->AppendJournal(journal_name, EncodeOutcomeRecord(record));
          if (fault != nullptr && fault->crashed()) {
            break;  // Died at the append; only the on-disk journal decides what survived.
          }
        }
        GlobalPipelineCounters().concurrent_tests_run.fetch_add(1,
                                                                std::memory_order_relaxed);
      }
      const ExploreOutcome& outcome = record.outcome;
      local_executed++;
      local_trials += static_cast<uint64_t>(outcome.trials_run);
      local_retried += static_cast<uint64_t>(outcome.trials_retried);
      if (outcome.bug_found) {
        local_with_bug++;
      }
      if (outcome.channel_exercised) {
        local_exercised++;
      }
      for (const Finding& finding : record.findings) {
        local_findings.Record(finding);
      }
    }

    std::lock_guard<std::mutex> lock(merge_mutex);
    result->tests_executed += local_executed;
    result->tests_with_bug += local_with_bug;
    result->channel_exercised += local_exercised;
    result->total_trials += local_trials;
    result->tests_resumed += local_resumed;
    result->trials_retried += local_retried;
    result->findings.Merge(local_findings);
  };

  if (num_workers == 1) {
    worker_fn();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(num_workers));
    for (int i = 0; i < num_workers; i++) {
      workers.emplace_back(worker_fn);
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }
  result->execute_seconds += SecondsSince(t0);
  result->execute_restore_seconds += RestoreSecondsSince(restore_nanos_before);
}

PipelineResult RunSnowboardPipeline(const PipelineOptions& options) {
  TRACE_SPAN("pipeline.campaign");
  PipelineResult result;
  const std::string result_name = std::string("result.") + StrategyName(options.strategy);

  // Checkpoint-directory admission: the guard entry pins the options fingerprint. A fresh
  // run, or a directory written under different options, is reset before any stage can
  // load a stale artifact. A resumed run whose final result already committed skips every
  // stage outright.
  if (!options.checkpoint_dir.empty()) {
    std::unique_ptr<CheckpointStore> store = OpenStore(options);
    if (store != nullptr) {
      const std::string guard =
          StrPrintf("snowboard-campaign-v1\nfingerprint %016llx\n",
                    static_cast<unsigned long long>(OptionsFingerprint(options)));
      std::optional<std::string> existing = store->Get("campaign");
      if (!options.resume || !existing.has_value() || *existing != guard) {
        if (options.resume && existing.has_value()) {
          SB_LOG(kWarn) << "checkpoint: directory " << options.checkpoint_dir
                        << " belongs to a different campaign configuration; resetting";
        }
        store->Reset();
        store->Put("campaign", guard);
      } else if (std::optional<std::string> text = store->Get(result_name)) {
        if (std::optional<PipelineResult> done = DeserializePipelineResult(*text)) {
          done->tests_resumed = done->tests_executed;
          GlobalPipelineCounters().tests_resumed.fetch_add(done->tests_executed,
                                                           std::memory_order_relaxed);
          SB_LOG(kInfo) << StrategyName(options.strategy)
                        << ": resumed from completed checkpoint (" << done->tests_executed
                        << " tests)";
          return *done;
        }
      }
    }
    if (Dead(options)) {
      return result;
    }
  }

  PreparedCampaign campaign = PrepareCampaign(options);
  if (Dead(options)) {
    return result;
  }

  result.corpus_size = campaign.corpus.size();
  for (const SequentialProfile& profile : campaign.profiles) {
    if (profile.ok) {
      result.profiled_ok++;
      result.shared_accesses += profile.accesses.size();
    }
  }
  result.pmc_count = campaign.pmcs.size();
  for (const Pmc& pmc : campaign.pmcs) {
    result.total_pmc_pairs += pmc.total_pairs;
  }
  result.pmc_table_digest = PmcTableDigest(campaign.pmcs);
  result.corpus_seconds = campaign.corpus_seconds;
  result.profile_seconds = campaign.profile_seconds;
  result.profile_restore_seconds = campaign.profile_restore_seconds;
  result.identify_seconds = campaign.identify_seconds;

  auto t0 = std::chrono::steady_clock::now();
  std::vector<ConcurrentTest> tests =
      GenerateTestsForStrategy(campaign, options, &result.cluster_count);
  result.cluster_seconds = SecondsSince(t0);
  result.tests_generated = tests.size();
  TRACE_COUNTER("funnel.clusters", result.cluster_count);
  TRACE_COUNTER("funnel.tests_generated", tests.size());
  if (Dead(options)) {
    return result;
  }

  bool use_pmc = StrategyUsesPmcs(options.strategy);
  PmcMatcher matcher(&campaign.pmcs);
  ExecuteCampaign(tests, use_pmc, use_pmc ? &matcher : nullptr, options, &result);
  if (Dead(options)) {
    return result;
  }
  TRACE_COUNTER("funnel.tests_with_findings", result.tests_with_bug);
  TRACE_COUNTER("funnel.findings_total", result.findings.total_findings());

  if (!options.checkpoint_dir.empty()) {
    std::unique_ptr<CheckpointStore> store = OpenStore(options);
    if (store != nullptr) {
      store->Put(result_name, SerializePipelineResult(result));
    }
    if (Dead(options)) {
      return result;
    }
  }

  SB_LOG(kInfo) << StrategyName(options.strategy) << ": " << result.tests_executed
                << " tests executed, " << result.findings.first_findings().size()
                << " distinct findings";
  return result;
}

}  // namespace snowboard
