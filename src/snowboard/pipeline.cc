#include "src/snowboard/pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>

#include "src/sim/site.h"
#include "src/snowboard/artifact.h"
#include "src/snowboard/checkpoint.h"
#include "src/snowboard/profile.h"
#include "src/snowboard/serialize.h"
#include "src/snowboard/stats.h"
#include "src/util/assert.h"
#include "src/util/counters.h"
#include "src/util/fault.h"
#include "src/util/hash.h"
#include "src/util/log.h"
#include "src/util/strings.h"
#include "src/util/trace.h"
#include "src/util/workpool.h"

namespace snowboard {

namespace {

double SecondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  double seconds = std::chrono::duration<double>(b - a).count();
  return seconds > 0 ? seconds : 0;
}

// Classifies one test's raw outcome into findings. This must run in the process that
// executed the test: race classification and evidence rendering resolve site IDs through
// the in-process site-name registry, which a cold resumed process has not populated for
// tests it never re-executes. The extracted findings therefore travel WITH the outcome in
// the execution journal, and journal replay records them verbatim instead of
// re-classifying.
std::vector<Finding> ExtractFindings(const ConcurrentTest& test,
                                     const ExploreOutcome& outcome, size_t test_index,
                                     const ExplorerOptions& explorer) {
  std::vector<Finding> findings;
  bool duplicate_input = test.write_test == test.read_test;
  // Joins a finding back to its trial capture by the shared dedup key, and renders the
  // capture as a shippable replay token. `explorer` must be the per-test options the
  // outcome was executed with — the token's trial seed comes from it.
  auto token_for = [&](int issue_id, FindingKind kind, uint64_t key) -> std::string {
    for (const TrialCapture& capture : outcome.captures) {
      if (capture.kind != static_cast<uint8_t>(kind) || capture.finding_key != key) {
        continue;
      }
      std::optional<RecordedSchedule> schedule =
          RecordedSchedule::FromString(capture.schedule);
      if (!schedule.has_value()) {
        break;
      }
      ReplayToken token;
      token.issue_id = issue_id;
      token.write_test = test.write_test;
      token.read_test = test.read_test;
      token.trial_seed = explorer.seed + static_cast<uint64_t>(capture.trial);
      token.max_instructions = explorer.max_instructions;
      token.fingerprint = capture.fingerprint;
      token.schedule = std::move(*schedule);
      token.hint = test.hint;
      token.writer = test.writer;
      token.reader = test.reader;
      return FormatReplayToken(token);
    }
    return std::string();
  };
  auto record = [&](int issue_id, const std::string& evidence, FindingKind kind,
                    uint64_t key) {
    Finding finding;
    finding.issue_id = issue_id;
    finding.evidence = evidence;
    finding.test_index = test_index;
    finding.trial = outcome.first_bug_trial;
    finding.duplicate_input = duplicate_input;
    finding.replay_token = token_for(issue_id, kind, key);
    findings.push_back(std::move(finding));
  };
  for (const RaceReport& race : outcome.races) {
    std::string evidence =
        StrPrintf("data race: %s / %s @0x%x", SiteName(race.write_site).c_str(),
                  SiteName(race.other_site).c_str(), race.addr);
    record(ClassifyRace(race), evidence, FindingKind::kRace, race.Signature());
  }
  for (const std::string& line : outcome.console_hits) {
    record(ClassifyConsoleLine(line), line, FindingKind::kConsole, Fnv1a(line));
  }
  for (const std::string& line : outcome.panic_messages) {
    record(ClassifyConsoleLine(line), line, FindingKind::kPanic, Fnv1a(line));
  }
  return findings;
}

// True once an injected crash has fired anywhere: the "process" is dead, so stages stop
// starting new work and unwind with whatever partial state they hold.
bool Dead(const PipelineOptions& options) {
  return options.fault != nullptr && options.fault->crashed();
}

// Opens the campaign's checkpoint store, or null when checkpointing is off/unavailable.
// The store is internally synchronized, so one handle may serve every stage and worker.
std::unique_ptr<CheckpointStore> OpenStore(const PipelineOptions& options) {
  if (options.checkpoint_dir.empty()) {
    return nullptr;
  }
  auto store = std::make_unique<CheckpointStore>(options.checkpoint_dir, options.fault);
  if (!store->ok()) {
    SB_LOG(kWarn) << "checkpoint: store unavailable at " << options.checkpoint_dir
                  << "; running without checkpoints";
    return nullptr;
  }
  store->SetJournalBatch(options.journal_flush_records > 0
                             ? static_cast<size_t>(options.journal_flush_records)
                             : 1);
  return store;
}

// Hash of every option that shapes the pipeline's deterministic outputs. num_workers, the
// streaming/barrier engine choice, checkpointing, and fault injection are deliberately
// excluded: a campaign may be resumed with a different worker count or under the other
// engine (the determinism invariant guarantees identical results), but any fingerprint
// mismatch means the directory's artifacts answer a different question and must be
// discarded.
uint64_t OptionsFingerprint(const PipelineOptions& o) {
  return HashAll(o.seed, o.corpus.seed, o.corpus.max_iterations, o.corpus.target_size,
                 o.corpus.use_seeds, o.pmc.max_keys_per_address, o.pmc.max_pmcs,
                 static_cast<uint64_t>(o.strategy), o.max_concurrent_tests,
                 o.explorer.num_trials, o.explorer.seed, o.explorer.max_instructions,
                 o.explorer.stop_on_bug, o.explorer.target_issue,
                 o.explorer.adopt_incidental, o.explorer.max_trial_retries,
                 o.explorer.minimize_schedules, o.explorer.minimize_probes);
}

// The worker count the identify stage actually uses: its own option, or the pipeline-wide
// count when unset.
int IdentifyWorkers(const PipelineOptions& options) {
  return options.pmc.num_workers > 0 ? options.pmc.num_workers : options.ResolvedWorkers();
}

// --- Raw stage computations (shared verbatim by both engines) ---------------------------

// Corpus construction: admission is a serial fold over the shared coverage map (each admit
// changes what counts as fresh for every later candidate), so it runs on one VM.
std::vector<Program> ComputeCorpus(KernelVm& vm, const PipelineOptions& options) {
  CorpusOptions corpus_options = options.corpus;
  corpus_options.seed = corpus_options.seed ^ options.seed;
  return CorpusPrograms(BuildCorpus(vm, corpus_options));
}

// Test generation for the campaign's strategy: the pairing baselines need only the corpus;
// PMC strategies cluster the identified table and select exemplar pairs.
SerializedTests ComputeTests(const std::vector<Program>& corpus,
                             const std::vector<Pmc>& pmcs, const PipelineOptions& options) {
  SerializedTests out;
  if (!StrategyUsesPmcs(options.strategy)) {
    out.tests = options.strategy == Strategy::kRandomPairing
                    ? GenerateRandomPairs(corpus, options.max_concurrent_tests, options.seed)
                    : GenerateDuplicatePairs(corpus, options.max_concurrent_tests,
                                             options.seed);
    return out;
  }
  std::vector<PmcCluster> clusters =
      ClusterPmcs(pmcs, options.strategy, options.ResolvedWorkers());
  out.cluster_count = clusters.size();
  SelectOptions select;
  select.seed = options.seed * 0x9e3779b9ull + 17;
  select.max_tests = options.max_concurrent_tests;
  select.randomize_cluster_order = options.strategy == Strategy::kRandomSInsPair;
  out.tests = SelectConcurrentTests(pmcs, clusters, corpus, select);
  return out;
}

// --- Stage definitions (artifact.h) -----------------------------------------------------

StageDef<std::vector<Program>> CorpusStageDef(const PipelineOptions& options) {
  StageDef<std::vector<Program>> def;
  def.span = "stage.corpus";
  def.entry = "corpus";
  def.serialize = [](const std::vector<Program>& corpus) { return SerializeCorpus(corpus); };
  def.deserialize = [](const std::string& text) { return DeserializeCorpus(text); };
  def.funnel = "funnel.corpus_programs";
  def.funnel_value = [](const std::vector<Program>& corpus) { return corpus.size(); };
  def.compute = [&options]() {
    // One pool worker supplies the VM (reused across stages rather than booted here).
    std::vector<Program> corpus;
    WorkerPool::Global().Run(1, [&](PoolWorker& worker) {
      corpus = ComputeCorpus(PoolWorkerVm(worker), options);
    });
    return corpus;
  };
  return def;
}

StageDef<std::vector<SequentialProfile>> ProfilesStageDef(
    const PipelineOptions& options, const std::vector<Program>& corpus) {
  StageDef<std::vector<SequentialProfile>> def;
  def.span = "stage.profile";
  def.entry = "profiles";
  def.serialize = [](const std::vector<SequentialProfile>& profiles) {
    return SerializeProfiles(profiles);
  };
  def.deserialize = [](const std::string& text) { return DeserializeProfiles(text); };
  // A profile set for a different corpus (size mismatch) is stale, not corrupt.
  def.validate = [&corpus](const std::vector<SequentialProfile>& profiles) {
    return profiles.size() == corpus.size();
  };
  def.compute = [&options, &corpus]() {
    ProfileOptions profile_options;
    profile_options.num_workers = options.ResolvedWorkers();
    profile_options.cache = options.profile_cache;
    return ProfileCorpusParallel(corpus, profile_options);
  };
  return def;
}

StageDef<std::vector<Pmc>> PmcsStageDef(const PipelineOptions& options,
                                        const std::vector<SequentialProfile>& profiles) {
  StageDef<std::vector<Pmc>> def;
  def.span = "stage.identify";
  def.entry = "pmcs";
  def.serialize = [](const std::vector<Pmc>& pmcs) { return SerializePmcs(pmcs); };
  def.deserialize = [](const std::string& text) { return DeserializePmcs(text); };
  def.funnel = "funnel.pmcs_identified";
  def.funnel_value = [](const std::vector<Pmc>& pmcs) { return pmcs.size(); };
  def.compute = [&options, &profiles]() {
    PmcIdentifyOptions pmc_options = options.pmc;
    pmc_options.num_workers = IdentifyWorkers(options);
    return IdentifyPmcs(profiles, pmc_options);
  };
  return def;
}

StageDef<SerializedTests> TestsStageDef(const PipelineOptions& options,
                                        const std::vector<Program>& corpus,
                                        const std::vector<Pmc>& pmcs) {
  StageDef<SerializedTests> def;
  def.span = "stage.cluster";
  def.entry = std::string("tests.") + StrategyName(options.strategy);
  def.serialize = [](const SerializedTests& tests) {
    return SerializeConcurrentTests(tests.tests, tests.cluster_count);
  };
  def.deserialize = [](const std::string& text) { return DeserializeConcurrentTests(text); };
  def.compute = [&options, &corpus, &pmcs]() { return ComputeTests(corpus, pmcs, options); };
  return def;
}

StageDef<PipelineResult> ResultStageDef(const PipelineOptions& options) {
  StageDef<PipelineResult> def;
  def.span = "stage.result";
  def.entry = std::string("result.") + StrategyName(options.strategy);
  def.serialize = [](const PipelineResult& result) { return SerializePipelineResult(result); };
  def.deserialize = [](const std::string& text) { return DeserializePipelineResult(text); };
  return def;
}

// --- Execution helpers (shared by both engines) -----------------------------------------

// Pre-parses the execution journal into a by-index replay table. A record whose test index
// is outside the current test list cannot belong to this campaign's tests (a mismatched
// journal would otherwise silently masquerade as progress): it is dropped, counted in
// GlobalPipelineCounters().journal_records_dropped, and warned about once per build.
std::vector<std::optional<OutcomeRecord>> BuildJournalTable(const StageRunner& runner,
                                                            const std::string& journal_name,
                                                            size_t num_tests) {
  std::vector<std::optional<OutcomeRecord>> journaled(num_tests);
  if (runner.store() == nullptr || !runner.resume()) {
    return journaled;
  }
  size_t dropped = 0;
  for (const std::string& record : runner.store()->ReadJournal(journal_name)) {
    std::optional<OutcomeRecord> decoded = DecodeOutcomeRecord(record);
    if (!decoded.has_value()) {
      continue;  // Torn tail record (documented journal tolerance).
    }
    if (decoded->test_index >= num_tests) {
      dropped++;
      continue;
    }
    size_t index = decoded->test_index;
    journaled[index] = std::move(*decoded);
  }
  if (dropped > 0) {
    ActiveCounters().journal_records_dropped.fetch_add(dropped, std::memory_order_relaxed);
    SB_LOG(kWarn) << "checkpoint: dropped " << dropped << " journal record(s) of "
                  << journal_name << " with test indices past the " << num_tests
                  << "-test list (journal belongs to a different test set?)";
  }
  return journaled;
}

// Executes one live (non-journaled) concurrent test on `vm` and journals its outcome.
// Returns nullopt when an injected crash fired mid-test or at the journal append: the
// record then "never existed" in this process and only the on-disk journal decides what
// survived.
std::optional<OutcomeRecord> RunOneExploreTest(KernelVm& vm, const ConcurrentTest& test,
                                               size_t index, bool use_pmc_hints,
                                               const PmcMatcher* matcher,
                                               const PipelineOptions& options,
                                               const StageRunner& runner,
                                               const std::string& journal_name) {
  OutcomeRecord record;
  record.test_index = index;
  ExplorerOptions explorer = options.explorer;
  // Per-test seed derived from the test index: trial schedules are independent of which
  // worker runs the test and in what order.
  explorer.seed = options.explorer.seed + index * 1000003ull;
  explorer.fault = runner.fault();
  if (use_pmc_hints) {
    record.outcome = ExploreConcurrentTest(vm, test, matcher, explorer);
  } else {
    RandomPreemptScheduler scheduler;
    record.outcome =
        ExploreWithScheduler(vm, test, scheduler, /*check_channel=*/false, explorer);
  }
  if (runner.dead()) {
    return std::nullopt;  // The trial loop died mid-test; its partial outcome never existed.
  }
  record.findings = ExtractFindings(test, record.outcome, index, explorer);
  if (runner.store() != nullptr) {
    runner.store()->AppendJournal(journal_name, EncodeOutcomeRecord(record));
    if (runner.dead()) {
      return std::nullopt;  // Died at the append; the on-disk journal decides what survived.
    }
  }
  ActiveCounters().concurrent_tests_run.fetch_add(1, std::memory_order_relaxed);
  return record;
}

// Folds per-test outcome slots into the result in test-index order. FindingsLog::Record
// keeps the lowest-test-index finding per issue, so this fold lands on the same final
// state as any merge order — which is what makes the fold byte-identical between the
// barrier and streaming engines and across worker counts. Empty slots (tests never run
// because an injected crash fired first) are skipped.
void FoldExploreOutcomes(const std::vector<std::optional<OutcomeRecord>>& outcomes,
                         const std::vector<uint8_t>& resumed, PipelineResult* result) {
  for (size_t i = 0; i < outcomes.size(); i++) {
    if (!outcomes[i].has_value()) {
      continue;
    }
    const OutcomeRecord& record = *outcomes[i];
    result->tests_executed++;
    result->total_trials += static_cast<uint64_t>(record.outcome.trials_run);
    result->trials_retried += static_cast<uint64_t>(record.outcome.trials_retried);
    if (record.outcome.bug_found) {
      result->tests_with_bug++;
    }
    if (record.outcome.channel_exercised) {
      result->channel_exercised++;
    }
    if (resumed[i]) {
      result->tests_resumed++;
    }
    for (const TrialCapture& capture : record.outcome.captures) {
      result->schedule_switches_orig += capture.orig_switches;
      result->schedule_switches_min += capture.min_switches;
    }
    for (const Finding& finding : record.findings) {
      result->findings.Record(finding);
    }
  }
}

// One explore slot: journal replay or live execution. Writes only slot `index` of
// `outcomes`/`resumed` (slot-exclusive, so no locking). Returns false when an injected
// crash consumed the test.
bool ExploreOneSlot(PoolWorker& worker, const std::vector<ConcurrentTest>& tests,
                    size_t index, bool use_pmc_hints, const PmcMatcher* matcher,
                    const PipelineOptions& options, const StageRunner& runner,
                    const std::string& journal_name,
                    const std::vector<std::optional<OutcomeRecord>>& journaled,
                    std::vector<std::optional<OutcomeRecord>>* outcomes,
                    std::vector<uint8_t>* resumed) {
  TRACE_SPAN("explore.test", index);
  if (journaled[index].has_value()) {
    // Replayed from the journal: no VM involved (a fully journaled resume therefore
    // never boots one).
    (*outcomes)[index] = journaled[index];
    (*resumed)[index] = 1;
    ActiveCounters().tests_resumed.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  std::optional<OutcomeRecord> record =
      RunOneExploreTest(PoolWorkerVm(worker), tests[index], index, use_pmc_hints, matcher,
                        options, runner, journal_name);
  if (!record.has_value()) {
    return false;
  }
  (*outcomes)[index] = std::move(*record);
  return true;
}

// --- Streaming engine -------------------------------------------------------------------

// Runs the whole campaign as one pool job over a dependency DAG of work items instead of a
// sequence of stage barriers:
//
//   corpus ──► profile[i] ──► fold (in corpus order) ──► finish ──► scan[p] ──► merge
//      │                                                                         │
//      └────────────► generate (baselines)            generate (PMC) ◄───────────┘
//                          │                                │
//                          └──────────► explore[t] ◄────────┘
//
// Workers claim whatever is runnable; completed profiles fold into the PmcAccumulator
// while the profile tail is still executing, and exploration starts the moment the test
// list (and, for PMC strategies, the matcher) resolves — for the pairing baselines and for
// resumes whose test list is checkpointed, that genuinely overlaps the profile tail.
//
// Determinism: every ordered computation is pinned to the same order the barrier engine
// uses — profiles fold strictly in corpus-index order (single folder at a time, advancing
// over the completed prefix), partition scans write partition-exclusive slices merged in
// partition order, and explore outcomes land in per-test slots folded in index order. The
// scheduling freedom the DAG adds therefore never reaches a deterministic output, which is
// what the streaming-vs-barrier A/B in pipeline_determinism_test locks in.
//
// Fault injection: claiming a pre-explore item passes the "pool.claim" fault point,
// claiming an explore item passes "execute.claim" (same site as the barrier engine), and
// explorer trials pass their own sites inside the explorer. An injected crash flips
// `crashed_`; every worker unwinds at its next claim, exactly as a SIGKILL would.
class StreamingEngine {
 public:
  StreamingEngine(const PipelineOptions& options, CheckpointStore* store)
      : options_(options),
        runner_(store, options.fault, options.resume),
        use_pmc_(StrategyUsesPmcs(options.strategy)),
        journal_name_(std::string("execute.") + StrategyName(options.strategy)),
        accumulator_(options.pmc) {}

  void Run(PipelineResult* result) {
    TRACE_SPAN("engine.streaming");
    t_start_ = std::chrono::steady_clock::now();
    t_corpus_ = t_profiles_ = t_pmcs_ = t_tests_ = t_start_;
    restore_mark_corpus_ = restore_mark_profiles_ = restore_mark_tests_ = RestoreNanos();

    ResolveFromCheckpoint();
    bool all_done;
    {
      std::lock_guard<std::mutex> lock(mu_);
      all_done = AllDoneLocked();
    }
    if (!all_done && !runner_.dead()) {
      WorkerPool::Global().Run(options_.ResolvedWorkers(),
                               [this](PoolWorker& worker) { WorkerLoop(worker); });
    }
    // Claim boundary: every outcome the explore stage journaled becomes durable before the
    // campaign result is assembled (and before the result entry can be persisted).
    if (runner_.store() != nullptr) {
      runner_.store()->FlushJournals();
    }
    Fill(result);
  }

 private:
  enum class Kind {
    kNone,
    kCorpus,          // Build (or it was loaded) the corpus.
    kProfile,         // Profile corpus[arg].
    kFold,            // Fold completed profiles into the accumulator, in corpus order.
    kFinishProfiles,  // Persist profiles, seal + partition the access index.
    kScan,            // Overlap-scan partition arg.
    kMergePmcs,       // Merge partition slices, persist the PMC table.
    kGenerate,        // Cluster/select (or pair) the test list, build replay table.
    kExplore,         // Execute (or replay) test arg.
  };
  struct Item {
    Kind kind = Kind::kNone;
    size_t arg = 0;
  };

  static uint64_t RestoreNanos() {
    return GlobalPipelineCounters().snapshot_restore_nanos.load(std::memory_order_relaxed);
  }

  // Up-front checkpoint resolution on the caller thread: loads run before any worker
  // starts, so the DAG begins from the furthest checkpointed frontier.
  void ResolveFromCheckpoint() {
    std::lock_guard<std::mutex> lock(mu_);
    Artifact<std::vector<Program>> corpus;
    if (runner_.TryLoad(CorpusStageDef(options_), &corpus)) {
      corpus_ = std::move(corpus.value);
      corpus_loaded_ = true;
      CorpusResolvedLocked();
    }
    if (corpus_loaded_) {
      // Profiles are only trusted against a loaded corpus (their staleness gate needs the
      // exact corpus they were computed from).
      Artifact<std::vector<SequentialProfile>> profiles;
      if (runner_.TryLoad(ProfilesStageDef(options_, corpus_), &profiles)) {
        profiles_ = std::move(profiles.value);
        profiles_loaded_ = true;
        profile_next_ = profiles_.size();
        std::fill(profile_done_.begin(), profile_done_.end(), uint8_t{1});
      }
    }
    Artifact<std::vector<Pmc>> pmcs;
    if (runner_.TryLoad(PmcsStageDef(options_, profiles_), &pmcs)) {
      pmcs_ = std::move(pmcs.value);
      pmcs_loaded_ = true;
      // The identified table is settled: profiles (loaded or recomputed) only feed stats,
      // so the fold machinery runs but skips the accumulator.
      fold_into_accumulator_ = false;
      PmcsResolvedLocked();
    }
    Artifact<SerializedTests> tests;
    if (runner_.TryLoad(TestsStageDef(options_, corpus_, pmcs_), &tests)) {
      tests_loaded_ = true;
      TestsResolvedLocked(std::move(tests.value));
    }
  }

  void WorkerLoop(PoolWorker& worker) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (crashed_.load(std::memory_order_acquire) || AllDoneLocked()) {
        return;
      }
      if (explore_only_) {
        // Every remaining item is an explore: stop taking mu_ per claim and drain the
        // test list with an atomic cursor instead.
        lock.unlock();
        DrainExplore(worker);
        return;
      }
      Item item = ClaimLocked();
      if (item.kind == Kind::kNone) {
        cv_.wait(lock);
        continue;
      }
      lock.unlock();
      // Claiming real work is a kill point: "execute.claim" for concurrent tests (the same
      // site the barrier engine fires), "pool.claim" for the pre-explore stages. The
      // coordination items (fold / finish / merge) are deliberately NOT fault points: how
      // many times they are claimed depends on thread timing, and the crash-sweep harness
      // needs the campaign's total fault-point count to be deterministic. Their crash
      // coverage comes from the fs.commit points inside the artifacts they persist.
      FaultInjector* fault = runner_.fault();
      bool countable_claim = item.kind == Kind::kCorpus || item.kind == Kind::kProfile ||
                             item.kind == Kind::kScan || item.kind == Kind::kGenerate ||
                             item.kind == Kind::kExplore;
      if (fault != nullptr && countable_claim &&
          fault->At(item.kind == Kind::kExplore ? "execute.claim" : "pool.claim")) {
        CrashOut();
        return;
      }
      if (!Execute(item, worker)) {
        CrashOut();
        return;
      }
      // Item boundary: drain this worker's counter shard so the cross-stage restore-time
      // marks (RestoreNanos reads the global block mid-job) stay item-accurate.
      FlushCounterShard();
      lock.lock();
    }
  }

  // The steady-state explore loop, entered once explore_only_ holds: claim by atomic
  // fetch_add, no mutex anywhere on the per-test path. Overshooting cursors are harmless —
  // every claim is bounds-checked, and an index past the list just ends the worker's loop.
  void DrainExplore(PoolWorker& worker) {
    FaultInjector* fault = runner_.fault();
    for (;;) {
      if (crashed_.load(std::memory_order_acquire)) {
        return;
      }
      size_t index = explore_next_.fetch_add(1, std::memory_order_relaxed);
      if (index >= tests_.size()) {
        return;
      }
      // Same kill point the locked claim path fires for explore items.
      if (fault != nullptr && fault->At("execute.claim")) {
        CrashOut();
        return;
      }
      if (!ExploreOneSlot(worker, tests_, index, use_pmc_,
                          matcher_.has_value() ? &*matcher_ : nullptr, options_, runner_,
                          journal_name_, journaled_, &outcomes_, &resumed_)) {
        CrashOut();
        return;
      }
      explores_done_.fetch_add(1, std::memory_order_relaxed);
      FlushCounterShard();  // Item boundary, as in the locked loop.
    }
  }

  void CrashOut() {
    std::lock_guard<std::mutex> lock(mu_);
    crashed_.store(true, std::memory_order_release);
    cv_.notify_all();
  }

  bool AllDoneLocked() const {
    return corpus_done_ && profiles_complete_ && pmcs_done_ && tests_ready_ &&
           explores_done_ == tests_.size();
  }

  // Caller holds mu_. Once every pre-explore stage has resolved, ClaimLocked can only ever
  // hand out kExplore items — flag it so workers switch to the lock-free drain. The
  // notify_all wakes workers parked in cv_.wait so none sleeps through the transition.
  void UpdateExploreOnlyLocked() {
    if (!explore_only_ && corpus_done_ && profiles_complete_ && pmcs_done_ && tests_ready_) {
      explore_only_ = true;
      cv_.notify_all();
    }
  }

  // Work-claiming priority: cheap unblocking transitions first, then the long-running VM
  // items. Profile items outrank explore items so the profile tail drains at full width;
  // explore picks up the slack once fewer profiles remain than workers.
  Item ClaimLocked() {
    if (!corpus_done_ && !corpus_claimed_) {
      corpus_claimed_ = true;
      return {Kind::kCorpus, 0};
    }
    if (corpus_done_ && !profiles_complete_) {
      if (!folding_ && fold_next_ < profiles_.size() && profile_done_[fold_next_]) {
        folding_ = true;
        return {Kind::kFold, 0};
      }
      if (!finish_profiles_claimed_ && !folding_ && fold_next_ == profiles_.size()) {
        finish_profiles_claimed_ = true;
        return {Kind::kFinishProfiles, 0};
      }
    }
    if (profiles_complete_ && fold_into_accumulator_ && !pmcs_done_ && !merge_claimed_ &&
        scans_done_ == num_partitions_) {
      merge_claimed_ = true;
      return {Kind::kMergePmcs, 0};
    }
    if (!tests_resolved_ && !generate_claimed_ && corpus_done_ &&
        (!use_pmc_ || pmcs_done_)) {
      generate_claimed_ = true;
      return {Kind::kGenerate, 0};
    }
    if (scan_ready_ && scan_next_ < num_partitions_) {
      return {Kind::kScan, scan_next_++};
    }
    if (corpus_done_ && !profiles_loaded_ && profile_next_ < corpus_.size()) {
      return {Kind::kProfile, profile_next_++};
    }
    if (tests_ready_) {
      // fetch_add (not load-then-store) because lock-free drainers may be bumping the
      // cursor concurrently with this locked path during the handover window. A claim past
      // the end is not an item; the cursor only ever moves forward, so overshoot is safe.
      size_t index = explore_next_.fetch_add(1, std::memory_order_relaxed);
      if (index < tests_.size()) {
        return {Kind::kExplore, index};
      }
    }
    return {Kind::kNone, 0};
  }

  bool Execute(Item item, PoolWorker& worker) {
    switch (item.kind) {
      case Kind::kCorpus:
        return ExecuteCorpus(worker);
      case Kind::kProfile:
        return ExecuteProfile(worker, item.arg);
      case Kind::kFold:
        return ExecuteFold();
      case Kind::kFinishProfiles:
        return ExecuteFinishProfiles();
      case Kind::kScan:
        return ExecuteScan(item.arg);
      case Kind::kMergePmcs:
        return ExecuteMergePmcs();
      case Kind::kGenerate:
        return ExecuteGenerate();
      case Kind::kExplore:
        return ExecuteExplore(worker, item.arg);
      case Kind::kNone:
        break;
    }
    return true;
  }

  // Caller holds mu_. Sizes the profile plumbing and stamps the corpus event.
  void CorpusResolvedLocked() {
    corpus_done_ = true;
    profiles_.resize(corpus_.size());
    profile_done_.assign(corpus_.size(), 0);
    t_corpus_ = std::chrono::steady_clock::now();
    restore_mark_corpus_ = RestoreNanos();
    TRACE_COUNTER("funnel.corpus_programs", corpus_.size());
    UpdateExploreOnlyLocked();
    cv_.notify_all();
  }

  bool ExecuteCorpus(PoolWorker& worker) {
    std::vector<Program> corpus = ComputeCorpus(PoolWorkerVm(worker), options_);
    runner_.Persist(CorpusStageDef(options_), corpus);
    if (runner_.dead()) {
      return false;
    }
    std::lock_guard<std::mutex> lock(mu_);
    corpus_ = std::move(corpus);
    CorpusResolvedLocked();
    return true;
  }

  bool ExecuteProfile(PoolWorker& worker, size_t index) {
    ProfileOptions profile_options;
    profile_options.cache = options_.profile_cache;
    SequentialProfile profile =
        ProfileTestCached(PoolWorkerVm(worker), corpus_[index], static_cast<int>(index),
                          profile_options);
    std::lock_guard<std::mutex> lock(mu_);
    profiles_[index] = std::move(profile);
    profile_done_[index] = 1;
    cv_.notify_all();  // A folder (or the finish item) may now be claimable.
    return true;
  }

  // Folds the completed prefix of profiles into the accumulator, strictly in corpus-index
  // order — the exact AddProfile order the batch IdentifyPmcs uses, which is what keeps
  // the incremental side tables byte-identical. `folding_` makes this a single-consumer
  // loop; the fold itself runs outside the lock.
  bool ExecuteFold() {
    for (;;) {
      size_t index;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (fold_next_ >= profiles_.size() || !profile_done_[fold_next_]) {
          folding_ = false;
          cv_.notify_all();  // kFinishProfiles may now be claimable.
          return true;
        }
        index = fold_next_;
      }
      if (fold_into_accumulator_) {
        accumulator_.AddProfile(profiles_[index]);
      }
      std::lock_guard<std::mutex> lock(mu_);
      fold_next_++;
    }
  }

  bool ExecuteFinishProfiles() {
    if (!profiles_loaded_) {
      runner_.Persist(ProfilesStageDef(options_, corpus_), profiles_);
      if (runner_.dead()) {
        return false;
      }
    }
    size_t num_partitions = 0;
    if (fold_into_accumulator_) {
      accumulator_.Seal();
      num_partitions = accumulator_.PlanPartitions(IdentifyWorkers(options_));
    }
    std::lock_guard<std::mutex> lock(mu_);
    profiles_complete_ = true;
    num_partitions_ = num_partitions;
    scan_ready_ = fold_into_accumulator_ && num_partitions_ > 0;
    t_profiles_ = std::chrono::steady_clock::now();
    restore_mark_profiles_ = RestoreNanos();
    UpdateExploreOnlyLocked();
    cv_.notify_all();
    return true;
  }

  bool ExecuteScan(size_t partition) {
    accumulator_.ScanPartition(partition);
    std::lock_guard<std::mutex> lock(mu_);
    scans_done_++;
    cv_.notify_all();  // The merge item becomes claimable after the last scan.
    return true;
  }

  // Caller holds mu_. Stamps the PMC event and checks whether explore can open.
  void PmcsResolvedLocked() {
    pmcs_done_ = true;
    t_pmcs_ = std::chrono::steady_clock::now();
    TRACE_COUNTER("funnel.pmcs_identified", pmcs_.size());
    MaybeTestsReadyLocked();
    UpdateExploreOnlyLocked();
    cv_.notify_all();
  }

  bool ExecuteMergePmcs() {
    std::vector<Pmc> pmcs = accumulator_.Merge();
    runner_.Persist(PmcsStageDef(options_, profiles_), pmcs);
    if (runner_.dead()) {
      return false;
    }
    std::lock_guard<std::mutex> lock(mu_);
    pmcs_ = std::move(pmcs);
    PmcsResolvedLocked();
    return true;
  }

  // Caller holds mu_. Installs the resolved test list and its replay plumbing.
  void TestsResolvedLocked(SerializedTests tests) {
    tests_ = std::move(tests.tests);
    cluster_count_ = tests.cluster_count;
    tests_resolved_ = true;
    outcomes_.resize(tests_.size());
    resumed_.assign(tests_.size(), 0);
    journaled_ = BuildJournalTable(runner_, journal_name_, tests_.size());
    TRACE_COUNTER("funnel.clusters", cluster_count_);
    TRACE_COUNTER("funnel.tests_generated", tests_.size());
    MaybeTestsReadyLocked();
    UpdateExploreOnlyLocked();
    cv_.notify_all();
  }

  // Caller holds mu_. Explore opens once the test list is resolved AND its scheduler
  // input is settled: PMC strategies need the matcher, which needs the final PMC table.
  void MaybeTestsReadyLocked() {
    if (tests_ready_ || !tests_resolved_ || (use_pmc_ && !pmcs_done_)) {
      return;
    }
    if (use_pmc_) {
      matcher_.emplace(&pmcs_);
    }
    tests_ready_ = true;
    t_tests_ = std::chrono::steady_clock::now();
    restore_mark_tests_ = RestoreNanos();
  }

  bool ExecuteGenerate() {
    SerializedTests tests = ComputeTests(corpus_, pmcs_, options_);
    runner_.Persist(TestsStageDef(options_, corpus_, pmcs_), tests);
    if (runner_.dead()) {
      return false;
    }
    std::lock_guard<std::mutex> lock(mu_);
    TestsResolvedLocked(std::move(tests));
    return true;
  }

  bool ExecuteExplore(PoolWorker& worker, size_t index) {
    bool ok = ExploreOneSlot(worker, tests_, index, use_pmc_,
                             matcher_.has_value() ? &*matcher_ : nullptr, options_, runner_,
                             journal_name_, journaled_, &outcomes_, &resumed_);
    if (!ok) {
      return false;
    }
    std::lock_guard<std::mutex> lock(mu_);
    explores_done_++;
    if (AllDoneLocked()) {
      cv_.notify_all();
    }
    return true;
  }

  void Fill(PipelineResult* result) {
    auto t_end = std::chrono::steady_clock::now();
    result->corpus_size = corpus_.size();
    for (const SequentialProfile& profile : profiles_) {
      if (profile.ok) {
        result->profiled_ok++;
        result->shared_accesses += profile.accesses.size();
      }
    }
    result->pmc_count = pmcs_.size();
    for (const Pmc& pmc : pmcs_) {
      result->total_pmc_pairs += pmc.total_pairs;
    }
    result->pmc_table_digest = PmcTableDigest(pmcs_);
    result->cluster_count = cluster_count_;
    result->tests_generated = tests_.size();
    FoldExploreOutcomes(outcomes_, resumed_, result);
    // Stage timings become event-window attributions under streaming: each stage is
    // charged the wall-clock between its predecessor's completion event and its own. When
    // stages overlap (explore running during the profile tail) the windows overlap too, so
    // the per-stage columns no longer sum to the campaign wall-clock — by design. The same
    // windows attribute the snapshot-restore counter deltas. None of these fields are
    // serialized or compared across engines.
    result->corpus_seconds = SecondsBetween(t_start_, t_corpus_);
    result->profile_seconds = SecondsBetween(t_corpus_, t_profiles_);
    result->identify_seconds = SecondsBetween(t_profiles_, t_pmcs_);
    result->cluster_seconds = SecondsBetween(t_pmcs_, t_tests_);
    result->execute_seconds = SecondsBetween(t_tests_, t_end);
    result->profile_restore_seconds =
        static_cast<double>(restore_mark_profiles_ - restore_mark_corpus_) * 1e-9;
    result->execute_restore_seconds =
        static_cast<double>(RestoreNanos() - restore_mark_tests_) * 1e-9;
  }

  const PipelineOptions& options_;
  StageRunner runner_;
  const bool use_pmc_;
  const std::string journal_name_;

  std::mutex mu_;
  std::condition_variable cv_;
  // Atomic (not mu_-guarded) so the lock-free explore drain can observe a crash raised by
  // another worker without touching the mutex.
  std::atomic<bool> crashed_{false};

  // Corpus.
  bool corpus_claimed_ = false;
  bool corpus_loaded_ = false;
  bool corpus_done_ = false;
  std::vector<Program> corpus_;

  // Profiles. `profiles_`/`profile_done_` slots are written by the claiming worker and
  // read by the folder; the mutex around the done flags orders the handoff.
  bool profiles_loaded_ = false;
  size_t profile_next_ = 0;
  std::vector<SequentialProfile> profiles_;
  std::vector<uint8_t> profile_done_;
  bool folding_ = false;
  size_t fold_next_ = 0;
  bool finish_profiles_claimed_ = false;
  bool profiles_complete_ = false;

  // Identification.
  PmcAccumulator accumulator_;
  bool fold_into_accumulator_ = true;  // false when the PMC table was checkpoint-loaded.
  bool scan_ready_ = false;
  size_t num_partitions_ = 0;
  size_t scan_next_ = 0;
  size_t scans_done_ = 0;
  bool merge_claimed_ = false;
  bool pmcs_loaded_ = false;
  bool pmcs_done_ = false;
  std::vector<Pmc> pmcs_;

  // Tests.
  bool generate_claimed_ = false;
  bool tests_loaded_ = false;
  bool tests_resolved_ = false;
  bool tests_ready_ = false;
  size_t cluster_count_ = 0;
  std::vector<ConcurrentTest> tests_;
  std::optional<PmcMatcher> matcher_;
  std::vector<std::optional<OutcomeRecord>> journaled_;

  // Explore. The claim cursor and done count are atomics so that the steady-state explore
  // loop — the campaign's hot path once every pre-explore stage has resolved — hands out
  // work with one uncontended fetch_add instead of a mutex round trip (see DrainExplore).
  // Slot outputs stay lock-free as before: each claimed index owns its outcomes_/resumed_
  // slot exclusively, and the final fold reads them only after the pool job joins.
  std::atomic<size_t> explore_next_{0};
  std::atomic<size_t> explores_done_{0};
  // True once corpus, profiles, PMCs, and the test list have all resolved: from then on
  // kExplore items are the only claimable work, so workers leave the locked claim loop for
  // the lock-free drain. Guarded by mu_; monotonic (never unset).
  bool explore_only_ = false;
  std::vector<std::optional<OutcomeRecord>> outcomes_;
  std::vector<uint8_t> resumed_;

  // Event timestamps (stage-attribution windows; see Fill).
  std::chrono::steady_clock::time_point t_start_, t_corpus_, t_profiles_, t_pmcs_, t_tests_;
  uint64_t restore_mark_corpus_ = 0;
  uint64_t restore_mark_profiles_ = 0;
  uint64_t restore_mark_tests_ = 0;
};

}  // namespace

PreparedCampaign PrepareCampaign(const PipelineOptions& options) {
  PreparedCampaign campaign;
  std::unique_ptr<CheckpointStore> store = OpenStore(options);
  StageRunner runner(store.get(), options.fault, options.resume);

  Artifact<std::vector<Program>> corpus = runner.Run(CorpusStageDef(options));
  campaign.corpus = std::move(corpus.value);
  campaign.corpus_seconds = corpus.seconds;
  if (runner.dead()) {
    return campaign;
  }

  Artifact<std::vector<SequentialProfile>> profiles =
      runner.Run(ProfilesStageDef(options, campaign.corpus));
  campaign.profiles = std::move(profiles.value);
  campaign.profile_seconds = profiles.seconds;
  campaign.profile_restore_seconds = profiles.restore_seconds;
  if (runner.dead()) {
    return campaign;
  }

  Artifact<std::vector<Pmc>> pmcs = runner.Run(PmcsStageDef(options, campaign.profiles));
  campaign.pmcs = std::move(pmcs.value);
  campaign.identify_seconds = pmcs.seconds;
  return campaign;
}

std::vector<ConcurrentTest> GenerateTestsForStrategy(const PreparedCampaign& campaign,
                                                     const PipelineOptions& options,
                                                     size_t* cluster_count_out) {
  std::unique_ptr<CheckpointStore> store = OpenStore(options);
  StageRunner runner(store.get(), options.fault, options.resume);
  Artifact<SerializedTests> tests =
      runner.Run(TestsStageDef(options, campaign.corpus, campaign.pmcs));
  if (cluster_count_out != nullptr) {
    *cluster_count_out = tests.value.cluster_count;
  }
  return std::move(tests.value.tests);
}

void ExecuteCampaign(const std::vector<ConcurrentTest>& tests, bool use_pmc_hints,
                     const PmcMatcher* matcher, const PipelineOptions& options,
                     PipelineResult* result) {
  TRACE_SPAN("stage.execute", tests.size());
  StageTimer timer;
  std::unique_ptr<CheckpointStore> store = OpenStore(options);
  StageRunner runner(store.get(), options.fault, options.resume);
  const std::string journal_name = std::string("execute.") + StrategyName(options.strategy);
  std::vector<std::optional<OutcomeRecord>> journaled =
      BuildJournalTable(runner, journal_name, tests.size());

  // Per-test outcome slots, claimed dynamically, folded in index order below. Workers come
  // from the shared pool and reuse their parked VMs; a fully journaled resume replays
  // without touching one.
  std::vector<std::optional<OutcomeRecord>> outcomes(tests.size());
  std::vector<uint8_t> resumed(tests.size(), 0);
  IndexClaim claim(tests.size());
  WorkerPool::Global().Run(options.ResolvedWorkers(), [&](PoolWorker& worker) {
    for (;;) {
      // The worker-kill point: a crash injected here (or anywhere else) makes every
      // worker abandon its claim loop, exactly as a SIGKILL would.
      if (runner.fault() != nullptr && runner.fault()->At("execute.claim")) {
        return;
      }
      size_t index = 0;
      if (!claim.Next(&index)) {
        return;
      }
      if (!ExploreOneSlot(worker, tests, index, use_pmc_hints, matcher, options, runner,
                          journal_name, journaled, &outcomes, &resumed)) {
        return;
      }
    }
  });
  // Claim boundary: group-commit whatever outcome records are still buffered before the
  // stage's results are folded (and the result entry persisted).
  if (runner.store() != nullptr) {
    runner.store()->FlushJournals();
  }
  FoldExploreOutcomes(outcomes, resumed, result);
  result->execute_seconds += timer.Seconds();
  result->execute_restore_seconds += timer.RestoreSeconds();
}

PipelineResult RunSnowboardPipeline(const PipelineOptions& options) {
  TRACE_SPAN("pipeline.campaign");
  PipelineResult result;
  const StageDef<PipelineResult> result_def = ResultStageDef(options);

  // Checkpoint-directory admission: the guard entry pins the options fingerprint. A fresh
  // run, or a directory written under different options, is reset before any stage can
  // load a stale artifact. A resumed run whose final result already committed skips every
  // stage outright.
  if (!options.checkpoint_dir.empty()) {
    std::unique_ptr<CheckpointStore> store = OpenStore(options);
    if (store != nullptr) {
      const std::string guard =
          StrPrintf("snowboard-campaign-v1\nfingerprint %016llx\n",
                    static_cast<unsigned long long>(OptionsFingerprint(options)));
      std::optional<std::string> existing = store->Get("campaign");
      if (!options.resume || !existing.has_value() || *existing != guard) {
        if (options.resume && existing.has_value()) {
          SB_LOG(kWarn) << "checkpoint: directory " << options.checkpoint_dir
                        << " belongs to a different campaign configuration; resetting";
        }
        store->Reset();
        store->Put("campaign", guard);
      } else {
        StageRunner runner(store.get(), options.fault, options.resume);
        Artifact<PipelineResult> done;
        if (runner.TryLoad(result_def, &done)) {
          done.value.tests_resumed = done.value.tests_executed;
          GlobalPipelineCounters().tests_resumed.fetch_add(done.value.tests_executed,
                                                           std::memory_order_relaxed);
          SB_LOG(kInfo) << StrategyName(options.strategy)
                        << ": resumed from completed checkpoint ("
                        << done.value.tests_executed << " tests)";
          return done.value;
        }
      }
    }
    if (Dead(options)) {
      return result;
    }
  }

  if (options.streaming) {
    std::unique_ptr<CheckpointStore> store = OpenStore(options);
    StreamingEngine engine(options, store.get());
    engine.Run(&result);
    if (Dead(options)) {
      return result;
    }
  } else {
    PreparedCampaign campaign = PrepareCampaign(options);
    if (Dead(options)) {
      return result;
    }

    result.corpus_size = campaign.corpus.size();
    for (const SequentialProfile& profile : campaign.profiles) {
      if (profile.ok) {
        result.profiled_ok++;
        result.shared_accesses += profile.accesses.size();
      }
    }
    result.pmc_count = campaign.pmcs.size();
    for (const Pmc& pmc : campaign.pmcs) {
      result.total_pmc_pairs += pmc.total_pairs;
    }
    result.pmc_table_digest = PmcTableDigest(campaign.pmcs);
    result.corpus_seconds = campaign.corpus_seconds;
    result.profile_seconds = campaign.profile_seconds;
    result.profile_restore_seconds = campaign.profile_restore_seconds;
    result.identify_seconds = campaign.identify_seconds;

    StageTimer cluster_timer;
    std::vector<ConcurrentTest> tests =
        GenerateTestsForStrategy(campaign, options, &result.cluster_count);
    result.cluster_seconds = cluster_timer.Seconds();
    result.tests_generated = tests.size();
    TRACE_COUNTER("funnel.clusters", result.cluster_count);
    TRACE_COUNTER("funnel.tests_generated", tests.size());
    if (Dead(options)) {
      return result;
    }

    bool use_pmc = StrategyUsesPmcs(options.strategy);
    PmcMatcher matcher(&campaign.pmcs);
    ExecuteCampaign(tests, use_pmc, use_pmc ? &matcher : nullptr, options, &result);
    if (Dead(options)) {
      return result;
    }
  }
  TRACE_COUNTER("funnel.tests_with_findings", result.tests_with_bug);
  TRACE_COUNTER("funnel.findings_total", result.findings.total_findings());

  if (!options.checkpoint_dir.empty()) {
    std::unique_ptr<CheckpointStore> store = OpenStore(options);
    StageRunner runner(store.get(), options.fault, options.resume);
    runner.Persist(result_def, result);
    if (Dead(options)) {
      return result;
    }
  }

  SB_LOG(kInfo) << StrategyName(options.strategy) << ": " << result.tests_executed
                << " tests executed, " << result.findings.first_findings().size()
                << " distinct findings";
  return result;
}

}  // namespace snowboard
