#include "src/snowboard/pipeline.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "src/sim/site.h"
#include "src/util/assert.h"
#include "src/util/counters.h"
#include "src/util/log.h"
#include "src/util/strings.h"

namespace snowboard {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Seconds of snapshot-restore time accumulated process-wide since `nanos_before` (read the
// counter before the stage, call this after).
double RestoreSecondsSince(uint64_t nanos_before) {
  uint64_t now = GlobalPipelineCounters().snapshot_restore_nanos.load(std::memory_order_relaxed);
  return static_cast<double>(now - nanos_before) * 1e-9;
}

// Classifies one test's raw outcome into findings.
void RecordOutcome(const ConcurrentTest& test, const ExploreOutcome& outcome,
                   size_t test_index, FindingsLog* findings) {
  bool duplicate_input = test.write_test == test.read_test;
  auto record = [&](int issue_id, const std::string& evidence) {
    Finding finding;
    finding.issue_id = issue_id;
    finding.evidence = evidence;
    finding.test_index = test_index;
    finding.trial = outcome.first_bug_trial;
    finding.duplicate_input = duplicate_input;
    findings->Record(finding);
  };
  for (const RaceReport& race : outcome.races) {
    std::string evidence =
        StrPrintf("data race: %s / %s @0x%x", SiteName(race.write_site).c_str(),
                  SiteName(race.other_site).c_str(), race.addr);
    record(ClassifyRace(race), evidence);
  }
  for (const std::string& line : outcome.console_hits) {
    record(ClassifyConsoleLine(line), line);
  }
  for (const std::string& line : outcome.panic_messages) {
    record(ClassifyConsoleLine(line), line);
  }
}

}  // namespace

PreparedCampaign PrepareCampaign(const PipelineOptions& options) {
  PreparedCampaign campaign;
  int num_workers = options.num_workers > 0 ? options.num_workers : 1;

  // Stage 0: corpus construction stays sequential — admission is a serial fold over the
  // shared coverage map (each admit changes what counts as fresh for every later candidate).
  auto t0 = std::chrono::steady_clock::now();
  {
    KernelVm vm;
    CorpusOptions corpus_options = options.corpus;
    corpus_options.seed = corpus_options.seed ^ options.seed;
    campaign.corpus = CorpusPrograms(BuildCorpus(vm, corpus_options));
  }
  campaign.corpus_seconds = SecondsSince(t0);

  // Stage 1: profiling shards over a shared-nothing VM pool; profiles return in corpus
  // order regardless of worker count.
  auto t1 = std::chrono::steady_clock::now();
  uint64_t restore_nanos_before =
      GlobalPipelineCounters().snapshot_restore_nanos.load(std::memory_order_relaxed);
  ProfileOptions profile_options;
  profile_options.num_workers = num_workers;
  profile_options.cache = options.profile_cache;
  campaign.profiles = ProfileCorpusParallel(campaign.corpus, profile_options);
  campaign.profile_seconds = SecondsSince(t1);
  campaign.profile_restore_seconds = RestoreSecondsSince(restore_nanos_before);

  // Stage 2: the overlap scan shards over disjoint ranges of the ordered nested index and
  // merges in canonical PMC order (num_workers == 0 in the options means "inherit").
  auto t2 = std::chrono::steady_clock::now();
  PmcIdentifyOptions pmc_options = options.pmc;
  if (pmc_options.num_workers <= 0) {
    pmc_options.num_workers = num_workers;
  }
  campaign.pmcs = IdentifyPmcs(campaign.profiles, pmc_options);
  campaign.identify_seconds = SecondsSince(t2);
  return campaign;
}

std::vector<ConcurrentTest> GenerateTestsForStrategy(const PreparedCampaign& campaign,
                                                     const PipelineOptions& options,
                                                     size_t* cluster_count_out) {
  if (!StrategyUsesPmcs(options.strategy)) {
    if (cluster_count_out != nullptr) {
      *cluster_count_out = 0;
    }
    if (options.strategy == Strategy::kRandomPairing) {
      return GenerateRandomPairs(campaign.corpus, options.max_concurrent_tests,
                                 options.seed);
    }
    return GenerateDuplicatePairs(campaign.corpus, options.max_concurrent_tests,
                                  options.seed);
  }
  std::vector<PmcCluster> clusters =
      ClusterPmcs(campaign.pmcs, options.strategy,
                  options.num_workers > 0 ? options.num_workers : 1);
  if (cluster_count_out != nullptr) {
    *cluster_count_out = clusters.size();
  }
  SelectOptions select;
  select.seed = options.seed * 0x9e3779b9ull + 17;
  select.max_tests = options.max_concurrent_tests;
  select.randomize_cluster_order = options.strategy == Strategy::kRandomSInsPair;
  return SelectConcurrentTests(campaign.pmcs, clusters, campaign.corpus, select);
}

void ExecuteCampaign(const std::vector<ConcurrentTest>& tests, bool use_pmc_hints,
                     const PmcMatcher* matcher, const PipelineOptions& options,
                     PipelineResult* result) {
  auto t0 = std::chrono::steady_clock::now();
  uint64_t restore_nanos_before =
      GlobalPipelineCounters().snapshot_restore_nanos.load(std::memory_order_relaxed);
  int num_workers = options.num_workers > 0 ? options.num_workers : 1;
  std::atomic<size_t> next_test{0};
  std::mutex merge_mutex;

  // Each worker owns a booted VM (shared-nothing, as in the paper's distributed queue).
  auto worker_fn = [&]() {
    KernelVm vm;
    FindingsLog local_findings;
    size_t local_executed = 0;
    size_t local_with_bug = 0;
    size_t local_exercised = 0;
    uint64_t local_trials = 0;

    for (;;) {
      size_t index = next_test.fetch_add(1);
      if (index >= tests.size()) {
        break;
      }
      const ConcurrentTest& test = tests[index];
      ExplorerOptions explorer = options.explorer;
      explorer.seed = options.explorer.seed + index * 1000003ull;
      ExploreOutcome outcome;
      if (use_pmc_hints) {
        outcome = ExploreConcurrentTest(vm, test, matcher, explorer);
      } else {
        RandomPreemptScheduler scheduler;
        outcome = ExploreWithScheduler(vm, test, scheduler, /*check_channel=*/false,
                                       explorer);
      }
      local_executed++;
      local_trials += static_cast<uint64_t>(outcome.trials_run);
      if (outcome.bug_found) {
        local_with_bug++;
      }
      if (outcome.channel_exercised) {
        local_exercised++;
      }
      RecordOutcome(test, outcome, index, &local_findings);
    }

    std::lock_guard<std::mutex> lock(merge_mutex);
    result->tests_executed += local_executed;
    result->tests_with_bug += local_with_bug;
    result->channel_exercised += local_exercised;
    result->total_trials += local_trials;
    result->findings.Merge(local_findings);
  };

  if (num_workers == 1) {
    worker_fn();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(num_workers));
    for (int i = 0; i < num_workers; i++) {
      workers.emplace_back(worker_fn);
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }
  result->execute_seconds += SecondsSince(t0);
  result->execute_restore_seconds += RestoreSecondsSince(restore_nanos_before);
}

PipelineResult RunSnowboardPipeline(const PipelineOptions& options) {
  PipelineResult result;
  PreparedCampaign campaign = PrepareCampaign(options);

  result.corpus_size = campaign.corpus.size();
  for (const SequentialProfile& profile : campaign.profiles) {
    if (profile.ok) {
      result.profiled_ok++;
      result.shared_accesses += profile.accesses.size();
    }
  }
  result.pmc_count = campaign.pmcs.size();
  for (const Pmc& pmc : campaign.pmcs) {
    result.total_pmc_pairs += pmc.total_pairs;
  }
  result.corpus_seconds = campaign.corpus_seconds;
  result.profile_seconds = campaign.profile_seconds;
  result.profile_restore_seconds = campaign.profile_restore_seconds;
  result.identify_seconds = campaign.identify_seconds;

  auto t0 = std::chrono::steady_clock::now();
  std::vector<ConcurrentTest> tests =
      GenerateTestsForStrategy(campaign, options, &result.cluster_count);
  result.cluster_seconds = SecondsSince(t0);
  result.tests_generated = tests.size();

  bool use_pmc = StrategyUsesPmcs(options.strategy);
  PmcMatcher matcher(&campaign.pmcs);
  ExecuteCampaign(tests, use_pmc, use_pmc ? &matcher : nullptr, options, &result);

  SB_LOG(kInfo) << StrategyName(options.strategy) << ": " << result.tests_executed
                << " tests executed, " << result.findings.first_findings().size()
                << " distinct findings";
  return result;
}

}  // namespace snowboard
