// PMC selection and concurrent-test generation — §4.3 (ordering) + §4.4 (test construction).
//
// "Given a clustering strategy choice, Snowboard clusters all PMCs, counts the cardinality
// of each cluster, and then selects the exemplar to test from each cluster, from the least
// populous — less common — to the most populous cluster." One PMC is drawn per cluster at
// random; among that PMC's test pairs, one pair is chosen at random (§4.4). The result is a
// concurrent test: two sequential tests plus the PMC as a scheduling hint.
#ifndef SRC_SNOWBOARD_SELECT_H_
#define SRC_SNOWBOARD_SELECT_H_

#include <vector>

#include "src/fuzz/program.h"
#include "src/snowboard/cluster.h"
#include "src/snowboard/pmc.h"
#include "src/util/rng.h"

namespace snowboard {

// A Snowboard concurrent test: writer test, reader test, and the PMC scheduling hint
// ("CT = [SI_x, SI_y]" plus the hint in Figure 2).
struct ConcurrentTest {
  Program writer;
  Program reader;
  int write_test = -1;  // Corpus index of the writer test.
  int read_test = -1;
  PmcKey hint;
  uint64_t cluster_key = 0;      // Cluster the exemplar came from (diagnostics).
  size_t cluster_size = 0;
};

struct SelectOptions {
  uint64_t seed = 7;
  // Upper bound on generated tests (clusters beyond this, in visit order, are dropped).
  size_t max_tests = SIZE_MAX;
  // Randomize cluster visit order instead of least-populous-first (Random S-INS-PAIR).
  bool randomize_cluster_order = false;
};

// Orders clusters (uncommon-first or randomized), draws one exemplar PMC per cluster and
// one test pair per exemplar, and materializes concurrent tests against `corpus`.
std::vector<ConcurrentTest> SelectConcurrentTests(const std::vector<Pmc>& pmcs,
                                                  const std::vector<PmcCluster>& clusters,
                                                  const std::vector<Program>& corpus,
                                                  const SelectOptions& options);

// Cluster visit order as indices into `clusters` (exposed for tests): by ascending
// cardinality with the cluster key as the deterministic tie-break, or a seeded shuffle.
std::vector<size_t> OrderClusters(const std::vector<PmcCluster>& clusters,
                                  bool randomize, Rng& rng);

// --- Baseline generation methods (Table 3), no PMC analysis involved. ---

// Random pairing: "randomly selects two kernel sequential tests and combines them".
std::vector<ConcurrentTest> GenerateRandomPairs(const std::vector<Program>& corpus,
                                                size_t count, uint64_t seed);

// Duplicate pairing: "a concurrent test that consists of two identical sequential tests".
std::vector<ConcurrentTest> GenerateDuplicatePairs(const std::vector<Program>& corpus,
                                                   size_t count, uint64_t seed);

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_SELECT_H_
