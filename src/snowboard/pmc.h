// PMC identification — §4.2, Algorithm 1.
//
// A potential memory communication pairs a write access from one sequential test with a read
// access from another (or the same) test such that their memory ranges overlap and the
// values projected onto the overlap differ. The PMC key carries both accesses' full feature
// tuples (memory range, instruction site, value); multiple test pairs can map to one key
// (Algorithm 1 line 15).
//
// The access index is the paper's "ordered nested index" (§4.2.1): outer order by range
// start address, nested by range length, then by instruction site — scanned with a bounded
// window to enumerate all read/write overlaps without the naive quadratic pass.
//
// The scan shards: the index's address space is partitioned into disjoint ranges (contiguous
// runs of the sorted write table), each shard runs Algorithm 1's overlap scan against the
// shared read-only read table, and shard outputs are concatenated in partition order. The
// index order is the canonical PMC order — (write side, read side) lexicographic — and every
// shard emits its slice already in that order, so the merged table (multiplicities, sampled
// exemplar pairs, and the max_pmcs truncation point included) is byte-identical for any
// worker count. §4.4.1's fleet-scale identification ("169 billion PMCs") motivates the
// fan-out.
#ifndef SRC_SNOWBOARD_PMC_H_
#define SRC_SNOWBOARD_PMC_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/snowboard/profile.h"

namespace snowboard {

// One side (read or write) of a PMC: the features Algorithm 1 indexes accesses by.
struct PmcSide {
  GuestAddr addr = kGuestNull;
  uint8_t len = 0;
  SiteId site = kInvalidSite;
  uint64_t value = 0;

  bool operator==(const PmcSide&) const = default;
  GuestAddr end() const { return addr + len; }
};

struct PmcKey {
  PmcSide write;
  PmcSide read;
  bool df_leader = false;  // The read side led a double fetch (S-CH-DOUBLE feature).

  bool operator==(const PmcKey&) const = default;
  uint64_t Hash() const;
};

struct PmcTestPair {
  int write_test = -1;
  int read_test = -1;
};

struct Pmc {
  PmcKey key;
  // Sampled test pairs exhibiting this PMC (capped at kMaxPairsPerPmc), plus the total.
  std::vector<PmcTestPair> pairs;
  uint64_t total_pairs = 0;
};

inline constexpr size_t kMaxPairsPerPmc = 8;

struct PmcIdentifyOptions {
  // Skip accesses whose address is touched by more than this many distinct (site, value)
  // keys across the corpus — scalability valve for white-hot cells (none by default).
  size_t max_keys_per_address = SIZE_MAX;
  // Hard cap on materialized PMCs (the paper stores S-FULL's 169B PMC *keys* on disk; we
  // cap in memory). Identification stops adding past this.
  size_t max_pmcs = 50'000'000;
  // Worker threads for the overlap scan. 0 = unset: direct IdentifyPmcs callers get a
  // sequential scan, PrepareCampaign substitutes its pipeline num_workers. The identified
  // table is invariant under this value.
  int num_workers = 0;
};

// Algorithm 1: index all profiled shared accesses, scan read/write overlaps, keep pairs
// whose projected values differ.
std::vector<Pmc> IdentifyPmcs(const std::vector<SequentialProfile>& profiles,
                              const PmcIdentifyOptions& options = PmcIdentifyOptions{});

// Incremental PMC identification, decomposed so the streaming campaign engine can fold
// profiles into the access index WHILE the profile tail is still executing and fan the
// overlap scan out over the shared worker pool afterwards. The protocol (single-consumer
// fold, multi-worker scan):
//   1. AddProfile(profile) once per profile, in corpus order — order is load-bearing:
//      per-key test lists dedup via "the test id changed" exactly like the batch pass.
//   2. Seal() once after the last profile: prunes hot cells and sorts both side tables
//      into the ordered nested index (§4.2.1).
//   3. PlanPartitions(num_workers), then ScanPartition(p) for each p — concurrently from
//      any threads; partition p writes only its own output slice.
//   4. Merge() concatenates slices in partition order and applies the max_pmcs cap.
// For any profile set, AddProfile* → Seal → scan → Merge is byte-identical to
// IdentifyPmcs (which is itself implemented on top of this class), for any worker count
// and any partition interleaving.
class PmcAccumulator {
 public:
  explicit PmcAccumulator(const PmcIdentifyOptions& options);
  ~PmcAccumulator();

  void AddProfile(const SequentialProfile& profile);
  void Seal();

  // Chooses the partition count for `num_workers` (several partitions per worker so
  // PMC-dense regions balance) and sizes the output slices. Returns the count.
  size_t PlanPartitions(int num_workers);
  void ScanPartition(size_t partition);
  std::vector<Pmc> Merge();

 private:
  struct Sides;  // Per-type unique-key tables (pmc.cc).

  PmcIdentifyOptions options_;
  std::unique_ptr<Sides> sides_;
  bool sealed_ = false;
  size_t num_partitions_ = 0;
  std::vector<std::vector<Pmc>> partition_pmcs_;
};

// project_value (Algorithm 1 lines 9-10): the bytes of `value` (at [addr, addr+len))
// restricted to [ov_start, ov_start+ov_len), little-endian.
uint64_t ProjectValue(GuestAddr addr, uint32_t len, uint64_t value, GuestAddr ov_start,
                      uint32_t ov_len);

// True if `access` matches `side` exactly on (type-independent) range, site, and value.
bool AccessMatchesSide(const SharedAccess& access, const PmcSide& side);

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_PMC_H_
