// PMC identification — §4.2, Algorithm 1.
//
// A potential memory communication pairs a write access from one sequential test with a read
// access from another (or the same) test such that their memory ranges overlap and the
// values projected onto the overlap differ. The PMC key carries both accesses' full feature
// tuples (memory range, instruction site, value); multiple test pairs can map to one key
// (Algorithm 1 line 15).
//
// The access index is the paper's "ordered nested index" (§4.2.1): outer order by range
// start address, nested by range length, then by instruction site — scanned with a bounded
// window to enumerate all read/write overlaps without the naive quadratic pass.
//
// The scan shards: the index's address space is partitioned into disjoint ranges (contiguous
// runs of the sorted write table), each shard runs Algorithm 1's overlap scan against the
// shared read-only read table, and shard outputs are concatenated in partition order. The
// index order is the canonical PMC order — (write side, read side) lexicographic — and every
// shard emits its slice already in that order, so the merged table (multiplicities, sampled
// exemplar pairs, and the max_pmcs truncation point included) is byte-identical for any
// worker count. §4.4.1's fleet-scale identification ("169 billion PMCs") motivates the
// fan-out.
#ifndef SRC_SNOWBOARD_PMC_H_
#define SRC_SNOWBOARD_PMC_H_

#include <cstdint>
#include <vector>

#include "src/snowboard/profile.h"

namespace snowboard {

// One side (read or write) of a PMC: the features Algorithm 1 indexes accesses by.
struct PmcSide {
  GuestAddr addr = kGuestNull;
  uint8_t len = 0;
  SiteId site = kInvalidSite;
  uint64_t value = 0;

  bool operator==(const PmcSide&) const = default;
  GuestAddr end() const { return addr + len; }
};

struct PmcKey {
  PmcSide write;
  PmcSide read;
  bool df_leader = false;  // The read side led a double fetch (S-CH-DOUBLE feature).

  bool operator==(const PmcKey&) const = default;
  uint64_t Hash() const;
};

struct PmcTestPair {
  int write_test = -1;
  int read_test = -1;
};

struct Pmc {
  PmcKey key;
  // Sampled test pairs exhibiting this PMC (capped at kMaxPairsPerPmc), plus the total.
  std::vector<PmcTestPair> pairs;
  uint64_t total_pairs = 0;
};

inline constexpr size_t kMaxPairsPerPmc = 8;

struct PmcIdentifyOptions {
  // Skip accesses whose address is touched by more than this many distinct (site, value)
  // keys across the corpus — scalability valve for white-hot cells (none by default).
  size_t max_keys_per_address = SIZE_MAX;
  // Hard cap on materialized PMCs (the paper stores S-FULL's 169B PMC *keys* on disk; we
  // cap in memory). Identification stops adding past this.
  size_t max_pmcs = 50'000'000;
  // Worker threads for the overlap scan. 0 = unset: direct IdentifyPmcs callers get a
  // sequential scan, PrepareCampaign substitutes its pipeline num_workers. The identified
  // table is invariant under this value.
  int num_workers = 0;
};

// Algorithm 1: index all profiled shared accesses, scan read/write overlaps, keep pairs
// whose projected values differ.
std::vector<Pmc> IdentifyPmcs(const std::vector<SequentialProfile>& profiles,
                              const PmcIdentifyOptions& options = PmcIdentifyOptions{});

// project_value (Algorithm 1 lines 9-10): the bytes of `value` (at [addr, addr+len))
// restricted to [ov_start, ov_start+ov_len), little-endian.
uint64_t ProjectValue(GuestAddr addr, uint32_t len, uint64_t value, GuestAddr ov_start,
                      uint32_t ov_len);

// True if `access` matches `side` exactly on (type-independent) range, site, and value.
bool AccessMatchesSide(const SharedAccess& access, const PmcSide& side);

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_PMC_H_
