// Typed campaign artifacts and the stage runner.
//
// Every pipeline stage produces one artifact (corpus, profiles, PMC table, test list,
// final result) and — before this abstraction existed — hand-rolled the same sequence five
// times in pipeline.cc: open a TRACE_SPAN, start a stage timer and a snapshot-restore
// counter delta, try to load the artifact from the checkpoint store (verify + staleness
// check), otherwise compute it, persist it unless an injected crash already fired, then
// record wall-clock and funnel counters. A StageDef<T> states those ingredients once,
// declaratively; StageRunner supplies the mechanics.
//
// Two entry points, because the two engines consume stages differently:
//   * StageRunner::Run(def) — the barrier engine's load-or-compute-then-persist in one
//     call, returning an Artifact<T> with provenance and timing.
//   * StageRunner::TryLoad / Persist — the streaming engine resolves loads up front on the
//     coordinator thread and persists from whichever pool worker completes a stage, so it
//     composes the same pieces around its own scheduling (see pipeline.cc).
// Either way there is exactly one implementation of verify-load, staleness-gating,
// dead-process suppression, and funnel accounting.
#ifndef SRC_SNOWBOARD_ARTIFACT_H_
#define SRC_SNOWBOARD_ARTIFACT_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "src/snowboard/checkpoint.h"
#include "src/util/counters.h"
#include "src/util/fault.h"
#include "src/util/trace.h"

namespace snowboard {

// A resolved stage output plus its provenance and cost.
template <typename T>
struct Artifact {
  T value{};
  bool from_checkpoint = false;  // Loaded (verified) instead of computed.
  double seconds = 0;            // Wall-clock spent resolving the artifact.
  double restore_seconds = 0;    // Snapshot-restore share of `seconds` (counter delta).
};

// Declarative description of one stage. `compute` may be empty when the caller drives
// computation itself (streaming engine); `entry` may be empty for never-persisted stages.
template <typename T>
struct StageDef {
  const char* span = nullptr;  // TRACE_SPAN name; static-duration string (literal).
  std::string entry;           // Checkpoint entry name; "" = not checkpointed.
  std::function<std::string(const T&)> serialize;
  std::function<std::optional<T>(const std::string&)> deserialize;
  // Staleness gate for loaded values (e.g. a profile set whose size no longer matches the
  // corpus is stale, not corrupt). Empty = any verified load is acceptable.
  std::function<bool(const T&)> validate;
  std::function<T()> compute;
  // Funnel telemetry: emitted as TRACE_COUNTER(funnel, funnel_value(value)) when set.
  const char* funnel = nullptr;
  std::function<uint64_t(const T&)> funnel_value;
};

// Stage timer: wall clock + the process-wide snapshot-restore counter delta, the two cost
// figures every stage reports.
class StageTimer {
 public:
  StageTimer();
  double Seconds() const;
  double RestoreSeconds() const;

 private:
  uint64_t start_nanos_;          // steady_clock, as nanos.
  uint64_t restore_nanos_before_;
};

class StageRunner {
 public:
  // `store` may be null (checkpointing off); `fault` may be null (no injection). With
  // `resume`, TryLoad consults the store; without it, stages always compute.
  StageRunner(CheckpointStore* store, FaultInjector* fault, bool resume)
      : store_(store), fault_(fault), resume_(resume) {}

  CheckpointStore* store() const { return store_; }
  FaultInjector* fault() const { return fault_; }
  bool resume() const { return resume_; }

  // True once an injected crash has fired anywhere: the "process" is dead, so stages stop
  // starting new work, nothing more is persisted, and callers unwind with partial state.
  bool dead() const { return fault_ != nullptr && fault_->crashed(); }

  // Verified checkpoint load: entry present, deserializes, and passes the staleness gate.
  template <typename T>
  bool TryLoad(const StageDef<T>& def, Artifact<T>* out) const {
    if (store_ == nullptr || !resume_ || def.entry.empty()) {
      return false;
    }
    std::optional<std::string> text = store_->Get(def.entry);
    if (!text.has_value()) {
      return false;
    }
    std::optional<T> value = def.deserialize(*text);
    if (!value.has_value()) {
      return false;
    }
    if (def.validate && !def.validate(*value)) {
      return false;
    }
    out->value = std::move(*value);
    out->from_checkpoint = true;
    return true;
  }

  // Commits the artifact unless the stage is unpersisted or the process is already dead
  // (a dead process must leave only what it durably committed before the crash).
  template <typename T>
  void Persist(const StageDef<T>& def, const T& value) const {
    if (store_ == nullptr || def.entry.empty() || dead()) {
      return;
    }
    store_->Put(def.entry, def.serialize(value));
  }

  // Barrier-engine resolution: span + timing around load-or-compute-then-persist.
  template <typename T>
  Artifact<T> Run(const StageDef<T>& def) const {
    TraceSpan span(def.span);
    StageTimer timer;
    Artifact<T> artifact;
    if (!TryLoad(def, &artifact)) {
      artifact.value = def.compute();
      Persist(def, artifact.value);
    }
    artifact.seconds = timer.Seconds();
    artifact.restore_seconds = timer.RestoreSeconds();
    if (def.funnel != nullptr && def.funnel_value) {
      TRACE_COUNTER(def.funnel, def.funnel_value(artifact.value));
    }
    return artifact;
  }

 private:
  CheckpointStore* store_;
  FaultInjector* fault_;
  bool resume_;
};

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_ARTIFACT_H_
