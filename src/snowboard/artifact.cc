#include "src/snowboard/artifact.h"

#include <chrono>

namespace snowboard {

namespace {

uint64_t NowSteadyNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

StageTimer::StageTimer()
    : start_nanos_(NowSteadyNanos()),
      restore_nanos_before_(
          GlobalPipelineCounters().snapshot_restore_nanos.load(std::memory_order_relaxed)) {}

double StageTimer::Seconds() const {
  return static_cast<double>(NowSteadyNanos() - start_nanos_) * 1e-9;
}

double StageTimer::RestoreSeconds() const {
  uint64_t now =
      GlobalPipelineCounters().snapshot_restore_nanos.load(std::memory_order_relaxed);
  return static_cast<double>(now - restore_nanos_before_) * 1e-9;
}

}  // namespace snowboard
