#include "src/snowboard/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/snowboard/pipeline.h"
#include "src/snowboard/stats.h"
#include "src/util/strings.h"

namespace snowboard {

double MetricsSnapshot::Value(const std::string& key, double fallback) const {
  for (const Metric& metric : metrics) {
    if (metric.key == key) {
      return metric.value;
    }
  }
  return fallback;
}

MetricsSnapshot CollectCampaignMetrics(const PipelineOptions& options,
                                       const PipelineResult& result) {
  MetricsSnapshot snapshot;
  auto add = [&](const char* key, double value) {
    snapshot.metrics.push_back({key, value});
  };

  // --- Deterministic funnel (worker-count invariant; the determinism harness's terms). ---
  add("funnel.corpus_programs", static_cast<double>(result.corpus_size));
  add("funnel.profiled_ok", static_cast<double>(result.profiled_ok));
  add("funnel.shared_accesses", static_cast<double>(result.shared_accesses));
  add("funnel.pmcs_identified", static_cast<double>(result.pmc_count));
  add("funnel.pmc_pairs_total", static_cast<double>(result.total_pmc_pairs));
  add("funnel.clusters", static_cast<double>(result.cluster_count));
  add("funnel.tests_generated", static_cast<double>(result.tests_generated));
  add("funnel.tests_executed", static_cast<double>(result.tests_executed));
  add("funnel.tests_with_findings", static_cast<double>(result.tests_with_bug));
  add("funnel.channel_exercised", static_cast<double>(result.channel_exercised));
  add("funnel.trials_total", static_cast<double>(result.total_trials));
  add("funnel.schedule_switches_orig", static_cast<double>(result.schedule_switches_orig));
  add("funnel.schedule_switches_min", static_cast<double>(result.schedule_switches_min));
  add("funnel.findings_total", static_cast<double>(result.findings.total_findings()));
  add("funnel.distinct_issues", static_cast<double>(result.findings.first_findings().size()));
  add("execute.trials_retried", static_cast<double>(result.trials_retried));

  // --- Run-shape metrics ("run." prefix: masked by invariance tests and CI diffs). ---
  const PipelineCounters& counters = GlobalPipelineCounters();
  auto counter = [](const std::atomic<uint64_t>& c) {
    return static_cast<double>(c.load(std::memory_order_relaxed));
  };
  add("run.num_workers", static_cast<double>(options.num_workers));
  add("run.corpus_seconds", result.corpus_seconds);
  add("run.profile_seconds", result.profile_seconds);
  add("run.identify_seconds", result.identify_seconds);
  add("run.cluster_seconds", result.cluster_seconds);
  add("run.execute_seconds", result.execute_seconds);
  add("run.profile_restore_seconds", result.profile_restore_seconds);
  add("run.execute_restore_seconds", result.execute_restore_seconds);
  add("run.tests_resumed", static_cast<double>(result.tests_resumed));
  add("run.vm_profile_runs", counter(counters.vm_profile_runs));
  add("run.profile_cache_hits", counter(counters.profile_cache_hits));
  add("run.profile_cache_misses", counter(counters.profile_cache_misses));
  add("run.snapshot_full_restores", counter(counters.snapshot_full_restores));
  add("run.snapshot_delta_restores", counter(counters.snapshot_delta_restores));
  add("run.snapshot_restored_bytes", counter(counters.snapshot_restored_bytes));
  add("run.snapshot_restored_pages", counter(counters.snapshot_restored_pages));
  add("run.snapshot_skipped_pages", counter(counters.snapshot_skipped_pages));
  add("run.snapshot_restore_seconds", counter(counters.snapshot_restore_nanos) * 1e-9);
  add("run.concurrent_tests_run", counter(counters.concurrent_tests_run));
  add("run.checkpoint_writes", counter(counters.checkpoint_writes));
  add("run.checkpoint_bytes", counter(counters.checkpoint_bytes));
  add("run.checkpoint_loads", counter(counters.checkpoint_loads));
  // Journal group-commit health: flushes, records amortized across them, and time inside
  // the fsyncs — a batching regression shows up as flushes approaching records (no
  // amortization) or flush seconds growing toward execute_seconds.
  add("run.journal_batch_flushes", counter(counters.journal_batch_flushes));
  add("run.journal_batch_records", counter(counters.journal_batch_records));
  add("run.journal_flush_seconds", counter(counters.journal_flush_nanos) * 1e-9);

  std::sort(snapshot.metrics.begin(), snapshot.metrics.end(),
            [](const Metric& a, const Metric& b) { return a.key < b.key; });
  return snapshot;
}

std::string SerializeMetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n";
  for (size_t i = 0; i < snapshot.metrics.size(); i++) {
    const Metric& metric = snapshot.metrics[i];
    double integral = 0;
    bool is_integral = std::modf(metric.value, &integral) == 0.0 &&
                       std::fabs(metric.value) < 1e15;
    if (is_integral) {
      StrAppendf(&out, "  \"%s\": %lld", metric.key.c_str(),
                 static_cast<long long>(integral));
    } else {
      StrAppendf(&out, "  \"%s\": %.6f", metric.key.c_str(), metric.value);
    }
    out += i + 1 == snapshot.metrics.size() ? "\n" : ",\n";
  }
  out += "}\n";
  return out;
}

}  // namespace snowboard
