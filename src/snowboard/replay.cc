#include "src/snowboard/replay.h"

namespace snowboard {

std::string RecordedSchedule::ToString() const {
  std::string text;
  text.reserve(switch_after.size());
  for (bool decision : switch_after) {
    text.push_back(decision ? 'S' : '.');
  }
  return text;
}

std::optional<RecordedSchedule> RecordedSchedule::FromString(const std::string& text) {
  if (text.size() > kMaxScheduleLength) {
    return std::nullopt;
  }
  RecordedSchedule schedule;
  schedule.switch_after.reserve(text.size());
  for (char c : text) {
    if (c != '.' && c != 'S') {
      return std::nullopt;
    }
    schedule.switch_after.push_back(c == 'S');
  }
  return schedule;
}

size_t RecordedSchedule::SwitchCount() const {
  size_t count = 0;
  for (bool decision : switch_after) {
    count += decision ? 1 : 0;
  }
  return count;
}

Engine::RunResult ReproduceTrial(KernelVm& vm, const ConcurrentTest& test, uint64_t seed,
                                 int trial, BugCapsule* capsule) {
  PmcScheduler pmc_scheduler;
  pmc_scheduler.ResetForTest(test.hint);
  RecordingScheduler recorder(&pmc_scheduler);
  recorder.SeedTrial(seed + static_cast<uint64_t>(trial));

  vm.RestoreSnapshot();
  Engine::RunOptions opts;
  opts.scheduler = &recorder;
  Engine::RunResult result = vm.engine().Run(
      {MakeProgramRunner(vm.globals(), test.writer, 0),
       MakeProgramRunner(vm.globals(), test.reader, 1)},
      opts);

  if (capsule != nullptr) {
    capsule->test = test;
    capsule->schedule = recorder.schedule();
    capsule->panic_message = result.panic_message;
  }
  return result;
}

bool ReplayCapsule(KernelVm& vm, const BugCapsule& capsule) {
  ReplayScheduler replayer(capsule.schedule);
  replayer.SeedTrial(0);

  vm.RestoreSnapshot();
  Engine::RunOptions opts;
  opts.scheduler = &replayer;
  Engine::RunResult result = vm.engine().Run(
      {MakeProgramRunner(vm.globals(), capsule.test.writer, 0),
       MakeProgramRunner(vm.globals(), capsule.test.reader, 1)},
      opts);

  if (!capsule.panic_message.empty()) {
    return result.panicked && result.panic_message == capsule.panic_message;
  }
  return result.completed;
}

ReplayVerdict ReplayTokenTrial(KernelVm& vm, const ReplayToken& token) {
  ReplayScheduler replayer(token.schedule);
  replayer.SeedTrial(token.trial_seed);

  vm.RestoreSnapshot();
  Engine::RunOptions opts;
  opts.scheduler = &replayer;
  if (token.max_instructions > 0) {
    opts.max_instructions = token.max_instructions;
  }
  Engine::RunResult result = vm.engine().Run(
      {MakeProgramRunner(vm.globals(), token.writer, 0),
       MakeProgramRunner(vm.globals(), token.reader, 1)},
      opts);

  ReplayVerdict verdict;
  verdict.completed = result.completed || result.panicked || result.hang;
  verdict.detectors = RunDetectors(result);
  verdict.fingerprint = DetectorFingerprint(verdict.detectors);
  verdict.fingerprint_match = verdict.fingerprint == token.fingerprint;
  return verdict;
}

}  // namespace snowboard
