#include "src/snowboard/minimize.h"

#include <algorithm>
#include <vector>

namespace snowboard {

namespace {

// Rebuilds a schedule from the kept switch positions (ascending). The schedule is
// truncated right after the last kept switch: ReplayScheduler never switches past the end
// of the recording, so the trailing run of '.' decisions is semantically dead weight.
RecordedSchedule BuildFromPositions(const std::vector<size_t>& kept) {
  RecordedSchedule schedule;
  if (kept.empty()) {
    return schedule;
  }
  schedule.switch_after.assign(kept.back() + 1, false);
  for (size_t position : kept) {
    schedule.switch_after[position] = true;
  }
  return schedule;
}

}  // namespace

RecordedSchedule MinimizeSchedule(const RecordedSchedule& schedule, const SchedProbe& probe,
                                  const MinimizeOptions& options, MinimizeStats* stats) {
  MinimizeStats local;
  MinimizeStats& out = stats != nullptr ? *stats : local;
  out = MinimizeStats();
  out.orig_len = schedule.switch_after.size();
  out.orig_switches = schedule.SwitchCount();
  out.min_len = out.orig_len;
  out.min_switches = out.orig_switches;

  std::vector<size_t> positions;
  positions.reserve(out.orig_switches);
  for (size_t i = 0; i < schedule.switch_after.size(); i++) {
    if (schedule.switch_after[i]) {
      positions.push_back(i);
    }
  }

  auto try_probe = [&](const RecordedSchedule& candidate) {
    if (out.probes >= options.max_probes) {
      return false;
    }
    out.probes++;
    return probe(candidate);
  };

  // Baseline: the truncated form of the full recording (replay-equivalent to it) must
  // reproduce; otherwise the recording does not describe the finding and shrinking it
  // would minimize toward noise.
  RecordedSchedule best = BuildFromPositions(positions);
  if (!try_probe(best)) {
    return schedule;
  }
  out.reproduced = true;

  // Quick win first: many console/panic findings fire on the serialized (no-preemption)
  // run of this exact program pair and need no steering at all.
  if (!positions.empty()) {
    RecordedSchedule none;
    if (try_probe(none)) {
      positions.clear();
      best = std::move(none);
    }
  }

  // ddmin over the switch positions (complement removal): drop chunks of switches while
  // the finding keeps reproducing, halving chunk size when no chunk can go.
  size_t granularity = 2;
  while (positions.size() >= 2 && granularity <= positions.size() &&
         out.probes < options.max_probes) {
    size_t chunk = (positions.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (size_t start = 0; start < positions.size() && out.probes < options.max_probes;
         start += chunk) {
      std::vector<size_t> kept;
      kept.reserve(positions.size());
      for (size_t i = 0; i < positions.size(); i++) {
        if (i < start || i >= start + chunk) {
          kept.push_back(positions[i]);
        }
      }
      if (kept.size() == positions.size()) {
        continue;
      }
      RecordedSchedule candidate = BuildFromPositions(kept);
      if (try_probe(candidate)) {
        positions = std::move(kept);
        best = std::move(candidate);
        granularity = std::max<size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= positions.size()) {
        break;
      }
      granularity = std::min(positions.size(), granularity * 2);
    }
  }

  out.min_len = best.switch_after.size();
  out.min_switches = positions.size();
  return best;
}

}  // namespace snowboard
