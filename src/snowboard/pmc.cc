#include "src/snowboard/pmc.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>

#include "src/util/assert.h"
#include "src/util/hash.h"

namespace snowboard {

namespace {

// Aggregation of all occurrences of one unique access key across the corpus.
struct SideRecord {
  PmcSide side;
  bool df_leader = false;           // Any occurrence led a double fetch (reads only).
  std::vector<int> tests;           // Distinct tests exhibiting it (capped).
  uint64_t total_tests = 0;
  int last_test = -1;               // Dedup helper (profiles are visited in test order).
};

uint64_t SideHash(const PmcSide& side) {
  return HashAll(side.addr, side.len, side.site, side.value);
}

// Builds the unique-key table for one access type.
std::vector<SideRecord> CollectSides(const std::vector<SequentialProfile>& profiles,
                                     AccessType type) {
  std::unordered_map<uint64_t, size_t> index;
  std::vector<SideRecord> records;
  for (const SequentialProfile& profile : profiles) {
    if (!profile.ok) {
      continue;
    }
    for (const SharedAccess& access : profile.accesses) {
      if (access.type != type) {
        continue;
      }
      PmcSide side{access.addr, access.len, access.site, access.value};
      uint64_t h = SideHash(side);
      auto [it, inserted] = index.try_emplace(h, records.size());
      if (inserted) {
        records.push_back(SideRecord{side, access.df_leader, {profile.test_id}, 1,
                                     profile.test_id});
        continue;
      }
      SideRecord& record = records[it->second];
      record.df_leader = record.df_leader || access.df_leader;
      if (record.last_test != profile.test_id) {
        // Profiles are visited in test order, so a test-id change means a new test.
        record.last_test = profile.test_id;
        record.total_tests++;
        if (record.tests.size() < kMaxPairsPerPmc) {
          record.tests.push_back(profile.test_id);
        }
      }
    }
  }
  // The ordered nested index (§4.2.1): start address, then range length, then site.
  std::sort(records.begin(), records.end(), [](const SideRecord& a, const SideRecord& b) {
    if (a.side.addr != b.side.addr) {
      return a.side.addr < b.side.addr;
    }
    if (a.side.len != b.side.len) {
      return a.side.len < b.side.len;
    }
    if (a.side.site != b.side.site) {
      return a.side.site < b.side.site;
    }
    return a.side.value < b.side.value;
  });
  return records;
}

}  // namespace

uint64_t PmcKey::Hash() const {
  return HashAll(write.addr, write.len, write.site, write.value, read.addr, read.len,
                 read.site, read.value, static_cast<uint64_t>(df_leader));
}

uint64_t ProjectValue(GuestAddr addr, uint32_t len, uint64_t value, GuestAddr ov_start,
                      uint32_t ov_len) {
  SB_DCHECK(ov_start >= addr && ov_start + ov_len <= addr + len);
  uint32_t shift_bytes = ov_start - addr;
  uint64_t shifted = value >> (8 * shift_bytes);
  if (ov_len >= 8) {
    return shifted;
  }
  uint64_t mask = (1ull << (8 * ov_len)) - 1;
  return shifted & mask;
}

bool AccessMatchesSide(const SharedAccess& access, const PmcSide& side) {
  return access.addr == side.addr && access.len == side.len && access.site == side.site &&
         access.value == side.value;
}

std::vector<Pmc> IdentifyPmcs(const std::vector<SequentialProfile>& profiles,
                              const PmcIdentifyOptions& options) {
  // Lines 1-5 of Algorithm 1: index all accesses (aggregated per unique feature key).
  std::vector<SideRecord> writes = CollectSides(profiles, AccessType::kWrite);
  std::vector<SideRecord> reads = CollectSides(profiles, AccessType::kRead);

  // Optional hot-cell valve: drop addresses with pathological key counts.
  if (options.max_keys_per_address != SIZE_MAX) {
    auto prune = [&options](std::vector<SideRecord>* records) {
      std::unordered_map<GuestAddr, size_t> per_addr;
      for (const SideRecord& r : *records) {
        per_addr[r.side.addr]++;
      }
      records->erase(std::remove_if(records->begin(), records->end(),
                                    [&](const SideRecord& r) {
                                      return per_addr[r.side.addr] >
                                             options.max_keys_per_address;
                                    }),
                     records->end());
    };
    prune(&writes);
    prune(&reads);
  }

  // Lines 6-15: scan read/write overlaps through the ordered index. Ranges are at most 8
  // bytes, so for a write starting at `a` only reads starting in (a-8, a+len) can overlap.
  // The scan over one contiguous write-table partition [begin, end); output appended in
  // index order, capped at max_pmcs per partition (the global truncation happens after the
  // ordered merge and can never need more than max_pmcs from any prefix).
  auto scan_partition = [&reads, &options](const std::vector<SideRecord>& writes,
                                           size_t begin, size_t end, std::vector<Pmc>* out) {
    for (size_t wi = begin; wi < end; wi++) {
      const SideRecord& w = writes[wi];
      GuestAddr window_start = w.side.addr >= 8 ? w.side.addr - 8 : 0;
      auto it = std::lower_bound(reads.begin(), reads.end(), window_start,
                                 [](const SideRecord& r, GuestAddr addr) {
                                   return r.side.addr < addr;
                                 });
      for (; it != reads.end() && it->side.addr < w.side.end(); ++it) {
        const SideRecord& r = *it;
        GuestAddr ov_start = std::max(w.side.addr, r.side.addr);
        GuestAddr ov_end = std::min(w.side.end(), r.side.end());
        if (ov_start >= ov_end) {
          continue;
        }
        uint32_t ov_len = ov_end - ov_start;
        uint64_t read_value =
            ProjectValue(r.side.addr, r.side.len, r.side.value, ov_start, ov_len);
        uint64_t write_value =
            ProjectValue(w.side.addr, w.side.len, w.side.value, ov_start, ov_len);
        if (read_value == write_value) {
          continue;  // The write would not change what the reader fetches: not a PMC.
        }
        Pmc pmc;
        pmc.key = PmcKey{w.side, r.side, r.df_leader};
        pmc.total_pairs = w.total_tests * r.total_tests;
        // Sample test pairs: diagonal-ish walk over the two capped test lists.
        size_t limit = std::max(w.tests.size(), r.tests.size());
        for (size_t i = 0; i < limit && pmc.pairs.size() < kMaxPairsPerPmc; i++) {
          pmc.pairs.push_back(PmcTestPair{w.tests[i % w.tests.size()],
                                          r.tests[i % r.tests.size()]});
        }
        out->push_back(std::move(pmc));
        if (out->size() >= options.max_pmcs) {
          return;
        }
      }
    }
  };

  int num_workers = options.num_workers > 0 ? options.num_workers : 1;
  if (num_workers == 1) {
    std::vector<Pmc> pmcs;
    scan_partition(writes, 0, writes.size(), &pmcs);
    return pmcs;
  }

  // Partition the sorted write table into disjoint contiguous ranges — several per worker so
  // PMC-dense regions balance — claimed dynamically and emitted per-partition, then merged
  // in partition order. Concatenation order == sequential scan order == canonical PMC order.
  size_t num_partitions =
      std::min(writes.size(), static_cast<size_t>(num_workers) * 4);
  if (num_partitions <= 1) {
    std::vector<Pmc> pmcs;
    scan_partition(writes, 0, writes.size(), &pmcs);
    return pmcs;
  }
  std::vector<std::vector<Pmc>> partition_pmcs(num_partitions);
  std::atomic<size_t> next_partition{0};
  auto worker_fn = [&]() {
    for (;;) {
      size_t p = next_partition.fetch_add(1);
      if (p >= num_partitions) {
        break;
      }
      size_t begin = writes.size() * p / num_partitions;
      size_t end = writes.size() * (p + 1) / num_partitions;
      scan_partition(writes, begin, end, &partition_pmcs[p]);
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; w++) {
    workers.emplace_back(worker_fn);
  }
  for (std::thread& worker : workers) {
    worker.join();
  }

  std::vector<Pmc> pmcs;
  for (std::vector<Pmc>& partition : partition_pmcs) {
    for (Pmc& pmc : partition) {
      if (pmcs.size() >= options.max_pmcs) {
        return pmcs;
      }
      pmcs.push_back(std::move(pmc));
    }
  }
  return pmcs;
}

}  // namespace snowboard
