#include "src/snowboard/pmc.h"

#include <algorithm>

#include "src/util/assert.h"
#include "src/util/hash.h"
#include "src/util/workpool.h"

namespace snowboard {

namespace {

// Aggregation of all occurrences of one unique access key across the corpus.
struct SideRecord {
  PmcSide side;
  bool df_leader = false;           // Any occurrence led a double fetch (reads only).
  std::vector<int> tests;           // Distinct tests exhibiting it (capped).
  uint64_t total_tests = 0;
  int last_test = -1;               // Dedup helper (profiles are visited in test order).
};

uint64_t SideHash(const PmcSide& side) {
  return HashAll(side.addr, side.len, side.site, side.value);
}

// The ordered nested index (§4.2.1): start address, then range length, then site. Keys are
// unique per record (the table dedups on the full tuple), so the unstable sort is still
// deterministic.
void SortNestedIndex(std::vector<SideRecord>* records) {
  std::sort(records->begin(), records->end(), [](const SideRecord& a, const SideRecord& b) {
    if (a.side.addr != b.side.addr) {
      return a.side.addr < b.side.addr;
    }
    if (a.side.len != b.side.len) {
      return a.side.len < b.side.len;
    }
    if (a.side.site != b.side.site) {
      return a.side.site < b.side.site;
    }
    return a.side.value < b.side.value;
  });
}

}  // namespace

// Per-type unique-key tables, built incrementally one profile at a time. Record order
// before Seal is first-encounter order — the same order the old one-shot CollectSides pass
// produced, because both visit profiles in corpus order and accesses in program order.
struct PmcAccumulator::Sides {
  struct Table {
    std::unordered_map<uint64_t, size_t> index;
    std::vector<SideRecord> records;

    void Add(const SharedAccess& access, int test_id) {
      PmcSide side{access.addr, access.len, access.site, access.value};
      uint64_t h = SideHash(side);
      auto [it, inserted] = index.try_emplace(h, records.size());
      if (inserted) {
        records.push_back(SideRecord{side, access.df_leader, {test_id}, 1, test_id});
        return;
      }
      SideRecord& record = records[it->second];
      record.df_leader = record.df_leader || access.df_leader;
      if (record.last_test != test_id) {
        // Profiles arrive in test order, so a test-id change means a new test.
        record.last_test = test_id;
        record.total_tests++;
        if (record.tests.size() < kMaxPairsPerPmc) {
          record.tests.push_back(test_id);
        }
      }
    }
  };

  Table writes;
  Table reads;
};

PmcAccumulator::PmcAccumulator(const PmcIdentifyOptions& options)
    : options_(options), sides_(std::make_unique<Sides>()) {}

PmcAccumulator::~PmcAccumulator() = default;

void PmcAccumulator::AddProfile(const SequentialProfile& profile) {
  SB_DCHECK(!sealed_);
  if (!profile.ok) {
    return;
  }
  for (const SharedAccess& access : profile.accesses) {
    if (access.type == AccessType::kWrite) {
      sides_->writes.Add(access, profile.test_id);
    } else {
      sides_->reads.Add(access, profile.test_id);
    }
  }
}

void PmcAccumulator::Seal() {
  SB_DCHECK(!sealed_);
  // Optional hot-cell valve: drop addresses with pathological key counts.
  if (options_.max_keys_per_address != SIZE_MAX) {
    auto prune = [this](std::vector<SideRecord>* records) {
      std::unordered_map<GuestAddr, size_t> per_addr;
      for (const SideRecord& r : *records) {
        per_addr[r.side.addr]++;
      }
      records->erase(std::remove_if(records->begin(), records->end(),
                                    [&](const SideRecord& r) {
                                      return per_addr[r.side.addr] >
                                             options_.max_keys_per_address;
                                    }),
                     records->end());
    };
    prune(&sides_->writes.records);
    prune(&sides_->reads.records);
  }
  SortNestedIndex(&sides_->writes.records);
  SortNestedIndex(&sides_->reads.records);
  sides_->writes.index.clear();
  sides_->reads.index.clear();
  sealed_ = true;
}

size_t PmcAccumulator::PlanPartitions(int num_workers) {
  SB_DCHECK(sealed_);
  size_t resolved = num_workers > 0 ? static_cast<size_t>(num_workers) : 1;
  // Several partitions per worker so PMC-dense regions balance. Partition boundaries
  // depend only on the table size, and the merge is an ordered concatenation, so the
  // merged table is invariant under this value (pmc_shard_property_test).
  num_partitions_ = std::min(sides_->writes.records.size(), resolved * 4);
  if (num_partitions_ == 0 && !sides_->writes.records.empty()) {
    num_partitions_ = 1;
  }
  partition_pmcs_.assign(num_partitions_, {});
  return num_partitions_;
}

void PmcAccumulator::ScanPartition(size_t partition) {
  SB_DCHECK(sealed_ && partition < num_partitions_);
  const std::vector<SideRecord>& writes = sides_->writes.records;
  const std::vector<SideRecord>& reads = sides_->reads.records;
  size_t begin = writes.size() * partition / num_partitions_;
  size_t end = writes.size() * (partition + 1) / num_partitions_;
  std::vector<Pmc>* out = &partition_pmcs_[partition];

  // Lines 6-15 of Algorithm 1: scan read/write overlaps through the ordered index. Ranges
  // are at most 8 bytes, so for a write starting at `a` only reads starting in (a-8,
  // a+len) can overlap. Output is appended in index order, capped at max_pmcs per
  // partition (the global truncation happens after the ordered merge and can never need
  // more than max_pmcs from any prefix).
  for (size_t wi = begin; wi < end; wi++) {
    const SideRecord& w = writes[wi];
    GuestAddr window_start = w.side.addr >= 8 ? w.side.addr - 8 : 0;
    auto it = std::lower_bound(reads.begin(), reads.end(), window_start,
                               [](const SideRecord& r, GuestAddr addr) {
                                 return r.side.addr < addr;
                               });
    for (; it != reads.end() && it->side.addr < w.side.end(); ++it) {
      const SideRecord& r = *it;
      GuestAddr ov_start = std::max(w.side.addr, r.side.addr);
      GuestAddr ov_end = std::min(w.side.end(), r.side.end());
      if (ov_start >= ov_end) {
        continue;
      }
      uint32_t ov_len = ov_end - ov_start;
      uint64_t read_value =
          ProjectValue(r.side.addr, r.side.len, r.side.value, ov_start, ov_len);
      uint64_t write_value =
          ProjectValue(w.side.addr, w.side.len, w.side.value, ov_start, ov_len);
      if (read_value == write_value) {
        continue;  // The write would not change what the reader fetches: not a PMC.
      }
      Pmc pmc;
      pmc.key = PmcKey{w.side, r.side, r.df_leader};
      pmc.total_pairs = w.total_tests * r.total_tests;
      // Sample test pairs: diagonal-ish walk over the two capped test lists.
      size_t limit = std::max(w.tests.size(), r.tests.size());
      for (size_t i = 0; i < limit && pmc.pairs.size() < kMaxPairsPerPmc; i++) {
        pmc.pairs.push_back(PmcTestPair{w.tests[i % w.tests.size()],
                                        r.tests[i % r.tests.size()]});
      }
      out->push_back(std::move(pmc));
      if (out->size() >= options_.max_pmcs) {
        return;
      }
    }
  }
}

std::vector<Pmc> PmcAccumulator::Merge() {
  SB_DCHECK(sealed_);
  // Concatenation order == sequential scan order == canonical PMC order.
  std::vector<Pmc> pmcs;
  for (std::vector<Pmc>& partition : partition_pmcs_) {
    for (Pmc& pmc : partition) {
      if (pmcs.size() >= options_.max_pmcs) {
        return pmcs;
      }
      pmcs.push_back(std::move(pmc));
    }
  }
  return pmcs;
}

uint64_t PmcKey::Hash() const {
  return HashAll(write.addr, write.len, write.site, write.value, read.addr, read.len,
                 read.site, read.value, static_cast<uint64_t>(df_leader));
}

uint64_t ProjectValue(GuestAddr addr, uint32_t len, uint64_t value, GuestAddr ov_start,
                      uint32_t ov_len) {
  SB_DCHECK(ov_start >= addr && ov_start + ov_len <= addr + len);
  uint32_t shift_bytes = ov_start - addr;
  uint64_t shifted = value >> (8 * shift_bytes);
  if (ov_len >= 8) {
    return shifted;
  }
  uint64_t mask = (1ull << (8 * ov_len)) - 1;
  return shifted & mask;
}

bool AccessMatchesSide(const SharedAccess& access, const PmcSide& side) {
  return access.addr == side.addr && access.len == side.len && access.site == side.site &&
         access.value == side.value;
}

std::vector<Pmc> IdentifyPmcs(const std::vector<SequentialProfile>& profiles,
                              const PmcIdentifyOptions& options) {
  PmcAccumulator accumulator(options);
  for (const SequentialProfile& profile : profiles) {
    accumulator.AddProfile(profile);
  }
  accumulator.Seal();

  int num_workers = options.num_workers > 0 ? options.num_workers : 1;
  size_t num_partitions = accumulator.PlanPartitions(num_workers);
  if (num_workers == 1 || num_partitions <= 1) {
    for (size_t p = 0; p < num_partitions; p++) {
      accumulator.ScanPartition(p);
    }
    return accumulator.Merge();
  }

  // Fan the partition scans out over the shared worker pool (claimed dynamically so dense
  // partitions balance); each partition emits into its own slice.
  IndexClaim claim(num_partitions);
  WorkerPool::Global().Run(num_workers, [&](PoolWorker& worker) {
    size_t p = 0;
    while (claim.Next(&p)) {
      accumulator.ScanPartition(p);
    }
  });
  return accumulator.Merge();
}

}  // namespace snowboard
