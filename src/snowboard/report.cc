#include "src/snowboard/report.h"

#include <sstream>

#include "src/sim/site.h"
#include "src/util/strings.h"

namespace snowboard {

const char* IssueTypeName(IssueType type) {
  switch (type) {
    case IssueType::kDataRace:
      return "DR";
    case IssueType::kAtomicityViolation:
      return "AV";
    case IssueType::kOrderViolation:
      return "OV";
  }
  return "?";
}

const std::vector<IssueInfo>& IssueCatalog() {
  static const std::vector<IssueInfo>* catalog = new std::vector<IssueInfo>{
      {1, "BUG: unable to handle page fault (rhashtable double fetch)",
       IssueType::kDataRace, "lib/rhashtable", true, false},
      {2, "EXT4-fs error: swap_inode_boot_loader: checksum invalid",
       IssueType::kAtomicityViolation, "fs/sbfs", true, false},
      {3, "EXT4-fs error: ext_check_inode: invalid magic", IssueType::kAtomicityViolation,
       "fs/sbfs", false, false},
      {4, "blk_update_request: I/O error", IssueType::kAtomicityViolation, "fs/", true,
       false},
      {5, "Data race: blkdev_ioctl() / generic_fadvise()", IssueType::kDataRace,
       "block/, mm/", true, false},
      {6, "Data race: do_mpage_readpage() / set_blocksize()", IssueType::kDataRace, "fs/",
       false, false},
      {7, "Data race: rawv6_send_hdrinc() / __dev_set_mtu()", IssueType::kDataRace, "net/",
       true, false},
      {8, "Data race: packet_getname() / e1000_set_mac()", IssueType::kDataRace, "net/",
       true, false},
      {9, "Data race: dev_ifsioc_locked() / eth_commit_mac_addr_change()",
       IssueType::kDataRace, "net/", true, false},
      {10, "Data race: fib6_get_cookie_safe() / fib6_clean_node()", IssueType::kDataRace,
       "net/", false, true},
      {11, "BUG: kernel NULL pointer dereference (configfs_lookup)", IssueType::kDataRace,
       "fs/configfs", true, false},
      {12, "BUG: kernel NULL pointer dereference (l2tp tunnel->sock)",
       IssueType::kOrderViolation, "net/l2tp", true, false},
      {13, "Data race: cache_alloc_refill() / free_block()", IssueType::kDataRace, "mm/",
       false, true},
      {14, "Data race: tty_port_open() / uart_do_autoconfig()", IssueType::kDataRace,
       "driver/tty", true, false},
      {15, "Data race: snd_ctl_elem_add()", IssueType::kDataRace, "sound/core", true, false},
      {16, "Data race: tcp_set_default_congestion_control() / tcp_set_congestion_control()",
       IssueType::kDataRace, "net/ipv4", false, true},
      {17, "Data race: fanout_demux_rollover() / __fanout_unlink()", IssueType::kDataRace,
       "net/packet", true, false},
  };
  return *catalog;
}

const IssueInfo* FindIssue(int id) {
  for (const IssueInfo& issue : IssueCatalog()) {
    if (issue.id == id) {
      return &issue;
    }
  }
  return nullptr;
}

namespace {

bool Has(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

// Race classification rule: both sites' function names must match the issue's pair (in
// either role order, since write/write races report arbitrary roles).
struct RacePattern {
  int issue_id;
  const char* fn_a;
  const char* fn_b;
};

constexpr RacePattern kRacePatterns[] = {
    // Most specific first.
    {1, "RhtPtr", "RhtAssignUnlock"},
    {1, "RhtLookup", "RhtAssignUnlock"},
    {1, "RhtPtr", "RhtRemove"},
    {1, "RhtPtr", "RhtLockBucket"},  // Lock-bit CAS vs the plain double-fetch read.
    // The plain (unmarked) bucket fetch also breaks acquire ordering against the entry's
    // initialization — same missing-READ_ONCE root cause, same issue family.
    {1, "Kmalloc", "RhtLookup"},
    {1, "Kmalloc", "RhtPtr"},
    {1, "RhtInsert", "RhtLookup"},
    // Locking an entry reached through the unmarked bucket fetch races the allocator's
    // rezeroing of that entry — still the missing-READ_ONCE family.
    {1, "Kmalloc", "SpinLock"},
    {2, "SbfsSwapInodeBootLoader", "SbfsWrite"},
    {2, "SbfsSwapInodeBootLoader", "SbfsComputeChecksum"},
    // The swap path's checksum recomputation (no i_lock) against a locked writer.
    {2, "SbfsWrite", "SbfsComputeChecksum"},
    {2, "SbfsFtruncate", "SbfsComputeChecksum"},
    {2, "SbfsSwapInodeBootLoader", "SbfsRead"},
    {2, "SbfsSwapInodeBootLoader", "SbfsFtruncate"},
    {4, "SbfsFtruncate", "SbfsWrite"},
    {5, "BlkdevSetReadahead", "GenericFadviseBdev"},
    {6, "BlkdevSetBlocksize", "MpageReadpage"},
    {7, "DevSetMtu", "Rawv6SendHdrinc"},
    {8, "E1000SetMac", "PacketGetname"},
    // The driver's private-lock MAC commit also races the rtnl-locked commit (w/w).
    {8, "E1000SetMac", "DevIoctlSetMac"},
    {9, "DevIoctlSetMac", "DevIoctlGetMac"},
    {10, "Fib6CleanTree", "Fib6GetCookieSafe"},
    {11, "ConfigfsRmdir", "ConfigfsLookup"},
    {11, "ConfigfsMkdir", "ConfigfsLookup"},  // Same missing-parent-mutex root cause.
    // The lockless lookup can also observe a dirent mid-construction (allocator rezeroing):
    // still the missing-mutex family.
    {11, "Kmalloc", "ConfigfsLookup"},
    {11, "ConfigfsLookup", "ConfigfsLookup"},  // Two lockless lookups race on nlink.
    // A lookup's stale inode pointer races the block's reuse after rmdir freed it.
    {11, "FileAlloc", "ConfigfsLookup"},
    {11, "Kfree", "ConfigfsLookup"},
    {13, "Kmalloc", "Kmalloc"},
    {13, "Kmalloc", "Kfree"},
    {13, "Kfree", "Kfree"},
    {3, "SbfsWrite", "SbfsRead"},   // Extent-magic invalidate window vs the lockless check.
    {4, "SbfsWrite", "SbfsWrite"},  // The post-unlock dirty-clear in the writeback tail.
    {6, "BlkdevSetBlocksize", "BlkdevSetBlocksize"},  // Two plain blocksize stores.
    {14, "UartDoAutoconfig", "TtyPortOpen"},
    {15, "SndCtlElemAdd", "SndCtlElemAdd"},
    {16, "TcpSetDefaultCongestionControl", "TcpSetCongestionControl"},
    {17, "FanoutUnlink", "PacketSendmsg"},
};

// One-sided fallback rules: each of these functions is a known lockless/misordered accessor
// whose presence in ANY race pair identifies the issue family — the triage shortcut a human
// reviewer applies ("every report involving configfs_lookup is the missing-mutex bug").
struct SingleSidePattern {
  int issue_id;
  const char* fn;
};

constexpr SingleSidePattern kSingleSidePatterns[] = {
    {1, "RhtPtr"},
    {1, "RhtLookup"},
    {2, "SbfsComputeChecksum"},      // Only the swap path computes it without i_lock.
    {5, "GenericFadviseBdev"},
    {6, "MpageReadpage"},
    {7, "Rawv6SendHdrinc"},
    {8, "PacketGetname"},
    {9, "DevIoctlGetMac"},
    {10, "Fib6GetCookieSafe"},
    {11, "ConfigfsLookup"},
    {11, "ConfigfsReaddir"},  // The second lockless reader path (getdents).
    {17, "PacketSendmsg"},
};

}  // namespace

int ClassifyRace(const RaceReport& race) {
  std::string fn_write = LookupSite(race.write_site).function;
  std::string fn_other = LookupSite(race.other_site).function;
  for (const RacePattern& pattern : kRacePatterns) {
    bool forward = Has(fn_write, pattern.fn_a) && Has(fn_other, pattern.fn_b);
    bool backward = Has(fn_write, pattern.fn_b) && Has(fn_other, pattern.fn_a);
    if (forward || backward) {
      return pattern.issue_id;
    }
  }
  for (const SingleSidePattern& pattern : kSingleSidePatterns) {
    if (Has(fn_write, pattern.fn) || Has(fn_other, pattern.fn)) {
      return pattern.issue_id;
    }
  }
  return 0;
}

int ClassifyConsoleLine(const std::string& line) {
  // Panic messages embed the faulting site name ("at <Function> (file:line)").
  if (Has(line, "BUG:")) {
    if (Has(line, "L2tpXmit")) {
      return 12;
    }
    if (Has(line, "ConfigfsLookup")) {
      return 11;
    }
    if (Has(line, "RhtLookup") || Has(line, "RhtPtr")) {
      return 1;
    }
    if (Has(line, "PacketSendmsg")) {
      return 17;  // The harmful outcome of the fanout race.
    }
    if (Has(line, "MsgSnd") || Has(line, "MsgCtl") || Has(line, "MsgGet")) {
      return 1;  // Null chain walk reached through the rhashtable users.
    }
    return 0;
  }
  if (Has(line, "checksum invalid")) {
    return 2;
  }
  if (Has(line, "invalid magic")) {
    return 3;
  }
  if (Has(line, "blk_update_request: I/O error")) {
    return 4;
  }
  return 0;
}

void FindingsLog::Record(const Finding& finding) {
  total_++;
  auto it = first_findings_.find(finding.issue_id);
  if (it == first_findings_.end() || finding.test_index < it->second.test_index) {
    first_findings_[finding.issue_id] = finding;
  }
}

void FindingsLog::Restore(const std::map<int, Finding>& first_findings, size_t total) {
  first_findings_ = first_findings;
  total_ = total;
}

void FindingsLog::Merge(const FindingsLog& other) {
  total_ += other.total_;
  for (const auto& [id, finding] : other.first_findings_) {
    auto it = first_findings_.find(id);
    if (it == first_findings_.end() || finding.test_index < it->second.test_index) {
      first_findings_[id] = finding;
    }
  }
}

std::string FindingsLog::Summarize() const {
  std::ostringstream os;
  for (const auto& [id, finding] : first_findings_) {
    if (id == 0) {
      os << StrPrintf("  [unclassified] first at test %zu: %s\n", finding.test_index,
                      finding.evidence.c_str());
      continue;
    }
    const IssueInfo* issue = FindIssue(id);
    os << StrPrintf("  #%-2d %-4s %-12s %s%s (test %zu, trial %d, %s input)\n", id,
                    IssueTypeName(issue->type), issue->subsystem, issue->summary,
                    issue->harmful ? " [HARMFUL]" : (issue->benign ? " [benign]" : ""),
                    finding.test_index, finding.trial,
                    finding.duplicate_input ? "duplicate" : "distinct");
  }
  return os.str();
}

}  // namespace snowboard
