// Post-mortem analysis tools (§4.4.1).
//
// "Furthermore, to improve the diagnosis, we built post-mortem analysis tools that verify
// that a data race is caused by an identified PMC and its kernel source code information."
//
// Given a detector finding and the identified PMC set, these helpers answer the questions a
// developer asks while triaging: which PMC (if any) predicted this race? where in the
// source are the two accesses? what did the trial's communication actually look like?
#ifndef SRC_SNOWBOARD_POSTMORTEM_H_
#define SRC_SNOWBOARD_POSTMORTEM_H_

#include <optional>
#include <string>
#include <vector>

#include "src/snowboard/detectors.h"
#include "src/snowboard/pmc.h"

namespace snowboard {

// Verdict of matching a race report against the PMC database.
struct RacePmcVerdict {
  bool predicted = false;   // Some identified PMC pairs the two racing instructions.
  size_t pmc_index = 0;     // Index into the PMC vector (valid iff predicted).
  bool exact_range = false;  // The PMC's memory ranges also cover the racing address.
};

// Checks whether `race` was predicted by an identified PMC: a PMC whose write/read
// instruction sites match the race's sites (role-insensitively for write/write races).
RacePmcVerdict VerifyRaceAgainstPmcs(const RaceReport& race, const std::vector<Pmc>& pmcs);

// Human-readable diagnosis of a race: both sites with source locations, the address, and —
// when a PMC predicted it — the predicted channel ("kernel source code information").
std::string DescribeRace(const RaceReport& race, const std::vector<Pmc>& pmcs);

// Per-trial communication summary: every writer-to-reader data flow observed in the trace
// (a write by one vCPU whose value a later overlapping read by the other vCPU returned).
struct ObservedCommunication {
  VcpuId writer_vcpu = kInvalidVcpu;
  VcpuId reader_vcpu = kInvalidVcpu;
  SiteId write_site = kInvalidSite;
  SiteId read_site = kInvalidSite;
  GuestAddr addr = kGuestNull;
  uint64_t value = 0;
};

// Extracts actual cross-thread communications from a trial trace (bounded to the first
// `max_results`). This is the ground truth §5.3.2's accuracy measurement is built on.
std::vector<ObservedCommunication> ExtractCommunications(const Trace& trace,
                                                         size_t max_results = 256);

// Renders a trace tail around the first panic/end as a schedule diagnostic: one line per
// access with vCPU, site, and range. `max_lines` bounds the output.
std::string FormatScheduleTail(const Trace& trace, size_t max_lines = 32);

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_POSTMORTEM_H_
