// Crash-safe checkpoint store for campaign artifacts.
//
// The paper's deployment persists every intermediate artifact (profiles feed a separate
// identification job; S-FULL PMC keys are "stored on disk"; tests travel through a Redis
// queue), so a worker or coordinator loss never discards more than the stage in flight.
// A CheckpointStore is the single-directory analog: named entries written atomically
// (src/util/fs.h write-temp-then-rename) and registered in a manifest with content hashes,
// so a reader either gets a stage's complete, verified artifact or nothing — corrupt,
// truncated, or torn files are rejected, never half-loaded. Append-only journals carry
// per-test execution outcomes with a checksum per line; a crash can only truncate the
// final line, which the reader drops.
//
// Consistency argument (what makes resume byte-identical): an entry becomes visible only
// via Put's sequence [write data atomically] → [rewrite manifest atomically]. A crash
// between the two leaves an orphan data file that the manifest does not reference, so the
// resumed run recomputes the stage — and every stage is deterministic, so recomputation
// equals the lost artifact. Journals are sub-stage: replaying a journaled outcome is
// byte-equivalent to re-running its (deterministic, snapshot-isolated) test.
#ifndef SRC_SNOWBOARD_CHECKPOINT_H_
#define SRC_SNOWBOARD_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace snowboard {

class FaultInjector;

class CheckpointStore {
 public:
  // Opens (creating the directory if needed) and loads the manifest. `fault` is threaded
  // into every write for the crash-sweep harness.
  explicit CheckpointStore(const std::string& dir, FaultInjector* fault = nullptr);

  bool ok() const { return ok_; }
  const std::string& dir() const { return dir_; }

  // Entry names must be non-empty and use only [A-Za-z0-9._-] (they become file names).
  static bool ValidName(const std::string& name);

  bool Has(const std::string& name) const;
  size_t entry_count() const;

  // Atomically writes `name` and commits it to the manifest. False on IO failure, invalid
  // name, or injected crash (in which case the entry stays invisible or keeps its old
  // contents — never a torn state).
  bool Put(const std::string& name, const std::string& contents);

  // Verified read: nullopt when the entry is missing from the manifest, unreadable, or
  // its content hash does not match (corruption/truncation).
  std::optional<std::string> Get(const std::string& name) const;

  // Forgets every entry (rewrites an empty manifest) and deletes all journals. Entry data
  // files are left to be overwritten; with the manifest gone they are unreachable.
  bool Reset();

  // Appends one single-line record to journal `name` (checksummed per line). Records are
  // group-committed: they buffer in memory and are written durably — one write(2) + one
  // fsync for the whole batch — when the journal's pending count reaches the record
  // threshold (or the byte threshold, a safety valve for oversized records), when
  // FlushJournals() is called, or when the store is destroyed. The record-count trigger
  // makes the number of durable commits (and therefore the fault-point count in the crash
  // sweep) a pure function of how many records each journal receives, independent of which
  // worker appended what when. A crash loses at most the current unflushed batch; the
  // resumed run re-executes exactly those tests, deterministically.
  bool AppendJournal(const std::string& name, const std::string& record);

  // Tunes the group-commit thresholds (records >= 1; records == 1 restores the old
  // one-fsync-per-record behavior). Applies to subsequent appends.
  void SetJournalBatch(size_t records, size_t bytes = 256 * 1024);

  // Durably writes every pending journal record (one group commit per journal with
  // pending records). Called at claim boundaries — the end of the explore stage — and by
  // the destructor. No-op (false) after an injected crash: a dead process writes nothing.
  bool FlushJournals();

  ~CheckpointStore();

  // All records up to the first malformed/corrupt line (a crash-truncated tail or flipped
  // bytes end the replay there; everything before it is verified). Missing journal = empty.
  std::vector<std::string> ReadJournal(const std::string& name) const;

 private:
  struct Entry {
    uint64_t size = 0;
    uint64_t hash = 0;
  };
  struct PendingJournal {
    std::vector<std::string> lines;  // Checksummed, newline-free, ready to write.
    size_t bytes = 0;                // Sum of line sizes (newlines excluded).
  };

  std::string PathFor(const std::string& name) const;
  std::string JournalPathFor(const std::string& name) const;
  std::string ManifestText() const;  // Caller holds mutex_.
  bool WriteManifestLocked();        // Caller holds mutex_.
  // Group-commits journal `name`'s pending lines (no-op true when none). Caller holds
  // mutex_. Const because ReadJournal (const) must flush its own pending records before
  // reading the file back; it touches only the mutable pending_ map and the filesystem.
  bool FlushJournalLocked(const std::string& name) const;
  void LoadManifest();

  std::string dir_;
  FaultInjector* fault_ = nullptr;
  bool ok_ = false;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  // Ordered: the manifest is deterministic.
  // Journal group-commit state. `mutable` so ReadJournal (const) can flush its own
  // pending records before reading the file back.
  mutable std::map<std::string, PendingJournal> pending_;
  size_t journal_flush_records_ = 8;
  size_t journal_flush_bytes_ = 256 * 1024;
};

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_CHECKPOINT_H_
