#include "src/snowboard/stats.h"

#include <algorithm>
#include <numeric>

#include "src/snowboard/report.h"
#include "src/util/hash.h"
#include "src/util/strings.h"

namespace snowboard {

uint64_t PmcTableDigest(const std::vector<Pmc>& pmcs) {
  uint64_t h = HashAll(uint64_t{0x50c4}, pmcs.size());
  for (const Pmc& pmc : pmcs) {
    h = HashCombine(h, pmc.key.Hash());
    h = HashCombine(h, pmc.total_pairs);
    h = HashCombine(h, pmc.pairs.size());
    for (const PmcTestPair& pair : pmc.pairs) {
      h = HashCombine(h, HashAll(pair.write_test, pair.read_test));
    }
  }
  return h;
}

uint64_t ClusterTableDigest(const std::vector<PmcCluster>& clusters) {
  uint64_t h = HashAll(uint64_t{0xc105}, clusters.size());
  for (const PmcCluster& cluster : clusters) {
    h = HashCombine(h, cluster.key);
    h = HashCombine(h, cluster.members.size());
    for (uint32_t member : cluster.members) {
      h = HashCombine(h, member);
    }
  }
  return h;
}

uint64_t FindingsDigest(const FindingsLog& findings) {
  uint64_t h = HashAll(uint64_t{0xf1d5}, findings.total_findings());
  for (const auto& [id, finding] : findings.first_findings()) {
    h = HashCombine(h, static_cast<uint64_t>(id));
    h = HashCombine(h, Fnv1a(finding.evidence));
    h = HashCombine(h, finding.test_index);
    h = HashCombine(h, static_cast<uint64_t>(finding.trial));
    h = HashCombine(h, static_cast<uint64_t>(finding.duplicate_input));
  }
  return h;
}

DistributionSummary SummarizeClusterSizes(const std::vector<PmcCluster>& clusters) {
  DistributionSummary summary;
  if (clusters.empty()) {
    return summary;
  }
  std::vector<size_t> sizes;
  sizes.reserve(clusters.size());
  for (const PmcCluster& cluster : clusters) {
    sizes.push_back(cluster.members.size());
  }
  std::sort(sizes.begin(), sizes.end());

  summary.count = sizes.size();
  summary.min = sizes.front();
  summary.max = sizes.back();
  size_t total = std::accumulate(sizes.begin(), sizes.end(), size_t{0});
  summary.mean = static_cast<double>(total) / static_cast<double>(sizes.size());
  summary.median = sizes[sizes.size() / 2];
  summary.p90 = sizes[(sizes.size() * 9) / 10];

  // Gini over the sorted sizes: G = (2 * sum(i * x_i) / (n * sum(x))) - (n + 1) / n,
  // with 1-based ranks i.
  double weighted = 0.0;
  for (size_t i = 0; i < sizes.size(); i++) {
    weighted += static_cast<double>(i + 1) * static_cast<double>(sizes[i]);
  }
  double n = static_cast<double>(sizes.size());
  if (total > 0) {
    summary.gini = (2.0 * weighted) / (n * static_cast<double>(total)) - (n + 1.0) / n;
  }
  return summary;
}

double SingletonFraction(const std::vector<PmcCluster>& clusters) {
  if (clusters.empty()) {
    return 0.0;
  }
  size_t singletons = 0;
  size_t members = 0;
  for (const PmcCluster& cluster : clusters) {
    members += cluster.members.size();
    singletons += cluster.members.size() == 1 ? 1 : 0;
  }
  return members == 0 ? 0.0 : static_cast<double>(singletons) / static_cast<double>(members);
}

std::vector<size_t> ClusterSizeHistogram(const std::vector<PmcCluster>& clusters) {
  std::vector<size_t> histogram;
  for (const PmcCluster& cluster : clusters) {
    size_t size = cluster.members.size();
    size_t bucket = 0;
    while ((size_t{2} << bucket) <= size) {
      bucket++;
    }
    if (histogram.size() <= bucket) {
      histogram.resize(bucket + 1, 0);
    }
    histogram[bucket]++;
  }
  return histogram;
}

std::string FormatSummary(const DistributionSummary& summary) {
  return StrPrintf("n=%zu min=%zu med=%zu p90=%zu max=%zu mean=%.1f gini=%.2f",
                   summary.count, summary.min, summary.median, summary.p90, summary.max,
                   summary.mean, summary.gini);
}

}  // namespace snowboard
