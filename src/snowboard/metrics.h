// Flat per-campaign metrics snapshot — the machine-readable companion to the trace.
//
// Where util/trace.h answers "where did the time go, event by event", this module answers
// "what did the funnel look like, number by number": a flat, canonically ordered key →
// value list combining the PipelineResult's stage statistics with the process-wide
// PipelineCounters. KGym-style campaign comparability (PAPERS.md) needs exactly this — a
// stable scalar schema that CI can diff run-over-run; the report generator
// (snowboard/report_html.h) embeds the same snapshot in report.json.
//
// Key discipline: metric keys are dotted lowercase paths grouped by stage
// ("funnel.pmcs_identified", "execute.trials_total", "restore.bytes"). Keys whose values
// depend on run shape (wall clock, worker count, cache/restore counters) are segregated
// under the "run." prefix so worker-count-invariance tests and CI diffs can mask exactly
// that prefix and byte-compare the rest.
#ifndef SRC_SNOWBOARD_METRICS_H_
#define SRC_SNOWBOARD_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace snowboard {

struct PipelineOptions;
struct PipelineResult;

struct Metric {
  std::string key;
  double value = 0;

  bool operator==(const Metric&) const = default;
};

struct MetricsSnapshot {
  std::vector<Metric> metrics;  // Sorted by key (canonical order).

  // The value for `key`, or `fallback` when absent.
  double Value(const std::string& key, double fallback = 0) const;
};

// Builds the snapshot for one completed campaign: deterministic funnel/stage metrics from
// `result`, run-shape metrics (wall clock, counters) under "run.". The counters read is a
// process-wide aggregate — callers that run several pipelines in one process should
// ResetPipelineCounters() between campaigns to keep attribution clean.
MetricsSnapshot CollectCampaignMetrics(const PipelineOptions& options,
                                       const PipelineResult& result);

// One metric per line, `{"key": value, ...}`, keys in canonical order. Values are emitted
// as integers when integral (counts), else with %.6f — byte-stable across platforms.
std::string SerializeMetricsJson(const MetricsSnapshot& snapshot);

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_METRICS_H_
