// Sequential test profiling (§4.1).
//
// Each sequential test is executed alone, from the fixed post-boot snapshot, on vCPU 0, and
// its memory accesses are recorded: "address range accessed, type of access, value
// read/written, and corresponding instruction addresses". Two filters reproduce §4.1.1:
//   * CR3 analog — only events from the test's vCPU are kept (the engine may host other
//     activity in multi-vCPU runs).
//   * ESP stack filter — accesses inside the current task's 8 KiB-aligned kernel stack are
//     dropped using the paper's mask formula (sim/stackfilter.h).
// The profiler also computes the df_leader flag (§4.3, S-CH-DOUBLE): the first of two reads
// of the same range by different instructions with no intervening write and equal values.
#ifndef SRC_SNOWBOARD_PROFILE_H_
#define SRC_SNOWBOARD_PROFILE_H_

#include <vector>

#include "src/fuzz/program.h"
#include "src/kernel/kernel.h"
#include "src/sim/access.h"

namespace snowboard {

// A shared (non-stack) memory access, reduced to the PMC features of Algorithm 1.
struct SharedAccess {
  AccessType type = AccessType::kRead;
  bool marked_atomic = false;
  bool df_leader = false;  // First read of a double fetch (set on reads only).
  uint8_t len = 0;
  GuestAddr addr = kGuestNull;
  uint64_t value = 0;
  SiteId site = kInvalidSite;
  uint32_t index = 0;  // Position within the profile (program order).
};

struct SequentialProfile {
  int test_id = -1;   // Index into the corpus.
  Program program;
  bool ok = false;    // Test completed sequentially.
  std::vector<SharedAccess> accesses;
};

struct ProfileOptions {
  uint64_t max_instructions = 1'000'000;
};

// Profiles one test from the fixed initial state.
SequentialProfile ProfileTest(KernelVm& vm, const Program& program, int test_id,
                              const ProfileOptions& options = ProfileOptions{});

// Profiles a whole corpus (restoring the snapshot before each test).
std::vector<SequentialProfile> ProfileCorpus(KernelVm& vm, const std::vector<Program>& corpus,
                                             const ProfileOptions& options = ProfileOptions{});

// Shared-access extraction from a raw trace (exposed for tests and incidental-PMC search):
// keeps kAccess events of `vcpu` that are outside the stack range implied by their ESP.
std::vector<SharedAccess> ExtractSharedAccesses(const Trace& trace, VcpuId vcpu);

// Marks df_leader on the first read of each qualifying double-fetch pair (§4.3).
void ComputeDoubleFetchLeaders(std::vector<SharedAccess>* accesses);

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_PROFILE_H_
