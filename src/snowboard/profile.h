// Sequential test profiling (§4.1).
//
// Each sequential test is executed alone, from the fixed post-boot snapshot, on vCPU 0, and
// its memory accesses are recorded: "address range accessed, type of access, value
// read/written, and corresponding instruction addresses". Two filters reproduce §4.1.1:
//   * CR3 analog — only events from the test's vCPU are kept (the engine may host other
//     activity in multi-vCPU runs).
//   * ESP stack filter — accesses inside the current task's 8 KiB-aligned kernel stack are
//     dropped using the paper's mask formula (sim/stackfilter.h).
// The profiler also computes the df_leader flag (§4.3, S-CH-DOUBLE): the first of two reads
// of the same range by different instructions with no intervening write and equal values.
#ifndef SRC_SNOWBOARD_PROFILE_H_
#define SRC_SNOWBOARD_PROFILE_H_

#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/fuzz/program.h"
#include "src/kernel/kernel.h"
#include "src/sim/access.h"
#include "src/util/workpool.h"

namespace snowboard {

// A shared (non-stack) memory access, reduced to the PMC features of Algorithm 1.
struct SharedAccess {
  AccessType type = AccessType::kRead;
  bool marked_atomic = false;
  bool df_leader = false;  // First read of a double fetch (set on reads only).
  uint8_t len = 0;
  GuestAddr addr = kGuestNull;
  uint64_t value = 0;
  SiteId site = kInvalidSite;
  uint32_t index = 0;  // Position within the profile (program order).

  bool operator==(const SharedAccess&) const = default;
};

struct SequentialProfile {
  int test_id = -1;   // Index into the corpus.
  Program program;
  bool ok = false;    // Test completed sequentially.
  std::vector<SharedAccess> accesses;
};

// Thread-safe memo of sequential profiles keyed by program content (Program::Hash, with a
// full-program equality check against collisions). Profiling is deterministic — the same
// program from the same boot snapshot always yields the same access list — so a multi-
// strategy campaign (Table 3 runs every strategy against one corpus) can profile each
// distinct program once instead of once per strategy. Hits/misses are counted in
// GlobalPipelineCounters().
class ProfileCache {
 public:
  // On hit, copies the cached profile into `out` with test_id rewritten to `test_id` (the
  // profile content is position-independent; only the corpus index differs between runs).
  bool Lookup(const Program& program, int test_id, SequentialProfile* out) const;
  void Insert(const SequentialProfile& profile);
  size_t size() const;

 private:
  mutable std::mutex mutex_;
  // Hash buckets hold full entries so colliding programs coexist.
  std::unordered_map<uint64_t, std::vector<SequentialProfile>> by_hash_;
};

struct ProfileOptions {
  uint64_t max_instructions = 1'000'000;
  // Shared-nothing profiling VMs for ProfileCorpusParallel (the paper profiles its corpus
  // across a fleet, §4.4.1). Results are invariant under this value.
  int num_workers = 1;
  ProfileCache* cache = nullptr;  // Optional cross-run memo; nullptr = always execute.
};

// Profiles one test from the fixed initial state.
SequentialProfile ProfileTest(KernelVm& vm, const Program& program, int test_id,
                              const ProfileOptions& options = ProfileOptions{});

// Cache-aware single-test step shared by the serial walk, the pooled parallel walk, and
// the streaming campaign engine (which schedules corpus indices itself): consults
// `options.cache`, executes on a miss, inserts the result.
SequentialProfile ProfileTestCached(KernelVm& vm, const Program& program, int test_id,
                                    const ProfileOptions& options);

// The pool worker's lazily-booted KernelVm: boots on the worker's first VM-needing work
// item and is then reused across stages, campaigns, and strategies for the process
// lifetime (GlobalPipelineCounters().vm_boots observes the boot-once invariant).
KernelVm& PoolWorkerVm(PoolWorker& worker);

// Profiles a whole corpus (restoring the snapshot before each test) on one caller-owned VM,
// consulting `options.cache` if set.
std::vector<SequentialProfile> ProfileCorpus(KernelVm& vm, const std::vector<Program>& corpus,
                                             const ProfileOptions& options = ProfileOptions{});

// Shards the corpus over `options.num_workers` worker threads, each owning a freshly booted
// KernelVm, and returns profiles in corpus order. Work is pulled dynamically (index-claimed),
// but each profile is a pure function of its program, so the result — including every access
// list and df_leader flag — is byte-identical for any worker count.
std::vector<SequentialProfile> ProfileCorpusParallel(
    const std::vector<Program>& corpus, const ProfileOptions& options = ProfileOptions{});

// Shared-access extraction from a raw trace (exposed for tests and incidental-PMC search):
// keeps kAccess events of `vcpu` that are outside the stack range implied by their ESP.
std::vector<SharedAccess> ExtractSharedAccesses(const Trace& trace, VcpuId vcpu);

// Marks df_leader on the first read of each qualifying double-fetch pair (§4.3).
void ComputeDoubleFetchLeaders(std::vector<SharedAccess>* accesses);

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_PROFILE_H_
