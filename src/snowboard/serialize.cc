#include "src/snowboard/serialize.h"

#include <cstdint>
#include <cstdlib>
#include <sstream>

#include "src/snowboard/pipeline.h"
#include "src/util/fs.h"
#include "src/util/hash.h"
#include "src/util/strings.h"

namespace snowboard {

namespace {

constexpr const char* kCorpusHeader = "snowboard-corpus-v1";
constexpr const char* kPmcHeader = "snowboard-pmcs-v1";
constexpr const char* kProfilesHeader = "snowboard-profiles-v1";
constexpr const char* kTestsHeader = "snowboard-tests-v1";
constexpr const char* kOutcomeHeader = "snowboard-outcome-v2";   // v2: captures section.
constexpr const char* kFindingsHeader = "snowboard-findings-v2"; // v2: replay tokens.
constexpr const char* kResultHeader = "snowboard-result-v2";     // v2: switch counters.
constexpr const char* kReplayTokenHeader = "sb-replay-v1";

// Tokens embed a schedule plus two hex programs; anything past this is not a token.
constexpr size_t kMaxReplayTokenLength = (1 << 20) + 65536;

// Empty byte strings serialize as "-" so every field stays a non-empty token.
constexpr const char* kEmptyToken = "-";

std::string HexToken(const std::string& bytes) {
  return bytes.empty() ? kEmptyToken : HexEncode(bytes);
}

std::optional<std::string> DecodeHexToken(const std::string& token) {
  if (token == kEmptyToken) {
    return std::string();
  }
  return HexDecode(token);
}

// Parses one "call <nr> <kind>:<value>..." body line into `call`.
bool ParseCallLine(std::istringstream& fields, Call* call) {
  fields >> call->nr;
  if (fields.fail() || call->nr >= kNumSyscalls) {
    return false;
  }
  std::string arg_text;
  int index = 0;
  while (index < kMaxSyscallArgs && fields >> arg_text) {
    size_t colon = arg_text.find(':');
    if (colon != 1 || (arg_text[0] != 'c' && arg_text[0] != 'r')) {
      return false;
    }
    Arg arg;
    arg.kind = arg_text[0] == 'r' ? Arg::kResult : Arg::kConst;
    try {
      arg.value = std::stoll(arg_text.substr(colon + 1));
    } catch (...) {
      return false;
    }
    call->args[index++] = arg;
  }
  return true;
}

// Reads "call" lines up to the terminating "end"; false on malformed input or EOF.
bool ParseProgramBlock(std::istream& is, Program* program) {
  *program = Program();
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "end") {
      return true;
    }
    if (tag != "call" || program->calls.size() >= kMaxCallsPerProgram) {
      return false;
    }
    Call call;
    if (!ParseCallLine(fields, &call)) {
      return false;
    }
    program->calls.push_back(call);
  }
  return false;  // Truncated: a program without its "end".
}

// Reads one "<label> <v0> [<v1>...]" line into signed values; strict label match.
bool ParseLabeledInts(std::istream& is, const char* label, std::vector<int64_t>* values,
                      size_t count) {
  std::string line;
  if (!std::getline(is, line)) {
    return false;
  }
  std::istringstream fields(line);
  std::string tag;
  fields >> tag;
  if (tag != label) {
    return false;
  }
  values->clear();
  for (size_t i = 0; i < count; i++) {
    int64_t value = 0;
    fields >> value;
    if (fields.fail()) {
      return false;
    }
    values->push_back(value);
  }
  std::string extra;
  return !(fields >> extra);  // Trailing junk on the line is rejected.
}

bool ParseLabeledUint(std::istream& is, const char* label, uint64_t* value) {
  std::vector<int64_t> values;
  if (!ParseLabeledInts(is, label, &values, 1) || values[0] < 0) {
    return false;
  }
  *value = static_cast<uint64_t>(values[0]);
  return true;
}

void SerializePmcSide(std::ostream& os, const PmcSide& side) {
  os << side.addr << ' ' << static_cast<uint32_t>(side.len) << ' ' << side.site << ' '
     << side.value;
}

// Parses one PMC side; `min_len` is 0 for hint keys (baselines carry an empty hint).
bool ParsePmcSide(std::istringstream& fields, uint32_t min_len, PmcSide* side) {
  uint64_t addr = 0;
  uint32_t len = 0;
  fields >> addr >> len >> side->site >> side->value;
  if (fields.fail() || addr > UINT32_MAX || len < min_len || len > 8) {
    return false;
  }
  side->addr = static_cast<GuestAddr>(addr);
  side->len = static_cast<uint8_t>(len);
  return true;
}

// Strict 16-lowercase-hex-digit parse (fingerprints, checksums).
bool ParseHex16(const std::string& hex, uint64_t* value) {
  if (hex.size() != 16) {
    return false;
  }
  uint64_t v = 0;
  for (char c : hex) {
    int nibble;
    if (c >= '0' && c <= '9') {
      nibble = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      nibble = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(nibble);
  }
  *value = v;
  return true;
}

std::string Hex16(uint64_t value) {
  return StrPrintf("%016llx", static_cast<unsigned long long>(value));
}

}  // namespace

std::string HexEncode(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string hex;
  hex.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    hex.push_back(kDigits[c >> 4]);
    hex.push_back(kDigits[c & 0xf]);
  }
  return hex;
}

std::optional<std::string> HexDecode(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return std::nullopt;
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string bytes;
  bytes.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return std::nullopt;
    }
    bytes.push_back(static_cast<char>((hi << 4) | lo));
  }
  return bytes;
}

std::string SerializeProgram(const Program& program) {
  std::ostringstream os;
  for (const Call& call : program.calls) {
    os << "call " << call.nr;
    for (const Arg& arg : call.args) {
      os << " " << (arg.kind == Arg::kResult ? 'r' : 'c') << ':' << arg.value;
    }
    os << "\n";
  }
  os << "end\n";
  return os.str();
}

std::optional<Program> DeserializeProgram(const std::string& text) {
  std::optional<std::vector<Program>> corpus =
      DeserializeCorpus(std::string(kCorpusHeader) + "\n" + text);
  if (!corpus.has_value() || corpus->size() != 1) {
    return std::nullopt;
  }
  return (*corpus)[0];
}

std::string SerializeCorpus(const std::vector<Program>& corpus) {
  std::ostringstream os;
  os << kCorpusHeader << "\n";
  for (const Program& program : corpus) {
    os << SerializeProgram(program);
  }
  return os.str();
}

std::optional<std::vector<Program>> DeserializeCorpus(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kCorpusHeader) {
    return std::nullopt;
  }
  std::vector<Program> corpus;
  Program current;
  bool open = false;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "end") {
      corpus.push_back(current);
      current = Program();
      open = false;
      continue;
    }
    if (tag != "call") {
      return std::nullopt;
    }
    Call call;
    if (!ParseCallLine(fields, &call)) {
      return std::nullopt;
    }
    if (current.calls.size() >= kMaxCallsPerProgram) {
      return std::nullopt;
    }
    current.calls.push_back(call);
    open = true;
  }
  if (open) {
    return std::nullopt;  // Truncated: a program without its "end".
  }
  return corpus;
}

std::string SerializePmcs(const std::vector<Pmc>& pmcs) {
  std::ostringstream os;
  os << kPmcHeader << "\n";
  for (const Pmc& pmc : pmcs) {
    const PmcKey& k = pmc.key;
    os << "pmc ";
    SerializePmcSide(os, k.write);
    os << ' ';
    SerializePmcSide(os, k.read);
    os << ' ' << (k.df_leader ? 1 : 0) << ' ' << pmc.total_pairs << ' ' << pmc.pairs.size();
    for (const PmcTestPair& pair : pmc.pairs) {
      os << ' ' << pair.write_test << ' ' << pair.read_test;
    }
    os << "\n";
  }
  return os.str();
}

std::optional<std::vector<Pmc>> DeserializePmcs(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kPmcHeader) {
    return std::nullopt;
  }
  std::vector<Pmc> pmcs;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag != "pmc") {
      return std::nullopt;
    }
    Pmc pmc;
    uint32_t df = 0;
    size_t pair_count = 0;
    if (!ParsePmcSide(fields, /*min_len=*/1, &pmc.key.write) ||
        !ParsePmcSide(fields, /*min_len=*/1, &pmc.key.read)) {
      return std::nullopt;
    }
    fields >> df >> pmc.total_pairs >> pair_count;
    if (fields.fail() || pair_count > kMaxPairsPerPmc) {
      return std::nullopt;
    }
    pmc.key.df_leader = df != 0;
    for (size_t i = 0; i < pair_count; i++) {
      PmcTestPair pair;
      fields >> pair.write_test >> pair.read_test;
      if (fields.fail()) {
        return std::nullopt;
      }
      pmc.pairs.push_back(pair);
    }
    pmcs.push_back(std::move(pmc));
  }
  return pmcs;
}

std::string SerializeProfiles(const std::vector<SequentialProfile>& profiles) {
  std::ostringstream os;
  os << kProfilesHeader << "\n";
  os << "profiles " << profiles.size() << "\n";
  for (const SequentialProfile& profile : profiles) {
    os << "profile " << profile.test_id << ' ' << (profile.ok ? 1 : 0) << "\n";
    os << SerializeProgram(profile.program);
    os << "acc " << profile.accesses.size() << "\n";
    for (const SharedAccess& a : profile.accesses) {
      os << "a " << static_cast<int>(a.type) << ' ' << (a.marked_atomic ? 1 : 0) << ' '
         << (a.df_leader ? 1 : 0) << ' ' << static_cast<uint32_t>(a.len) << ' ' << a.addr
         << ' ' << a.value << ' ' << a.site << ' ' << a.index << "\n";
    }
    os << "endprofile\n";
  }
  return os.str();
}

std::optional<std::vector<SequentialProfile>> DeserializeProfiles(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kProfilesHeader) {
    return std::nullopt;
  }
  uint64_t count = 0;
  if (!ParseLabeledUint(is, "profiles", &count)) {
    return std::nullopt;
  }
  std::vector<SequentialProfile> profiles;
  for (uint64_t i = 0; i < count; i++) {
    SequentialProfile profile;
    std::vector<int64_t> head;
    if (!ParseLabeledInts(is, "profile", &head, 2) || (head[1] != 0 && head[1] != 1)) {
      return std::nullopt;
    }
    profile.test_id = static_cast<int>(head[0]);
    profile.ok = head[1] == 1;
    if (!ParseProgramBlock(is, &profile.program)) {
      return std::nullopt;
    }
    uint64_t access_count = 0;
    if (!ParseLabeledUint(is, "acc", &access_count)) {
      return std::nullopt;
    }
    for (uint64_t j = 0; j < access_count; j++) {
      if (!std::getline(is, line)) {
        return std::nullopt;
      }
      std::istringstream fields(line);
      std::string tag;
      uint32_t type = 0;
      uint32_t marked = 0;
      uint32_t df = 0;
      uint32_t len = 0;
      uint64_t addr = 0;
      SharedAccess access;
      fields >> tag >> type >> marked >> df >> len >> addr >> access.value >> access.site >>
          access.index;
      if (fields.fail() || tag != "a" || type > 1 || marked > 1 || df > 1 || len == 0 ||
          len > 8 || addr > UINT32_MAX) {
        return std::nullopt;
      }
      access.type = type == 1 ? AccessType::kWrite : AccessType::kRead;
      access.marked_atomic = marked == 1;
      access.df_leader = df == 1;
      access.len = static_cast<uint8_t>(len);
      access.addr = static_cast<GuestAddr>(addr);
      profile.accesses.push_back(access);
    }
    if (!std::getline(is, line) || line != "endprofile") {
      return std::nullopt;
    }
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

std::string SerializeConcurrentTests(const std::vector<ConcurrentTest>& tests,
                                     size_t cluster_count) {
  std::ostringstream os;
  os << kTestsHeader << "\n";
  os << "clusters " << cluster_count << "\n";
  os << "tests " << tests.size() << "\n";
  for (const ConcurrentTest& test : tests) {
    os << "test " << test.write_test << ' ' << test.read_test << ' ' << test.cluster_key
       << ' ' << test.cluster_size << "\n";
    os << "hint ";
    SerializePmcSide(os, test.hint.write);
    os << ' ';
    SerializePmcSide(os, test.hint.read);
    os << ' ' << (test.hint.df_leader ? 1 : 0) << "\n";
    os << SerializeProgram(test.writer);
    os << SerializeProgram(test.reader);
    os << "endtest\n";
  }
  return os.str();
}

std::optional<SerializedTests> DeserializeConcurrentTests(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kTestsHeader) {
    return std::nullopt;
  }
  SerializedTests out;
  uint64_t cluster_count = 0;
  uint64_t count = 0;
  if (!ParseLabeledUint(is, "clusters", &cluster_count) ||
      !ParseLabeledUint(is, "tests", &count)) {
    return std::nullopt;
  }
  out.cluster_count = cluster_count;
  for (uint64_t i = 0; i < count; i++) {
    ConcurrentTest test;
    if (!std::getline(is, line)) {
      return std::nullopt;
    }
    {
      std::istringstream fields(line);
      std::string tag;
      uint64_t cluster_size = 0;
      fields >> tag >> test.write_test >> test.read_test >> test.cluster_key >>
          cluster_size;
      if (fields.fail() || tag != "test") {
        return std::nullopt;
      }
      test.cluster_size = static_cast<size_t>(cluster_size);
    }
    if (!std::getline(is, line)) {
      return std::nullopt;
    }
    std::istringstream fields(line);
    std::string tag;
    uint32_t df = 0;
    fields >> tag;
    if (tag != "hint" || !ParsePmcSide(fields, /*min_len=*/0, &test.hint.write) ||
        !ParsePmcSide(fields, /*min_len=*/0, &test.hint.read)) {
      return std::nullopt;
    }
    fields >> df;
    if (fields.fail() || df > 1) {
      return std::nullopt;
    }
    test.hint.df_leader = df == 1;
    if (!ParseProgramBlock(is, &test.writer) || !ParseProgramBlock(is, &test.reader)) {
      return std::nullopt;
    }
    if (!std::getline(is, line) || line != "endtest") {
      return std::nullopt;
    }
    out.tests.push_back(std::move(test));
  }
  return out;
}

std::string SerializeExploreOutcome(const ExploreOutcome& outcome) {
  std::ostringstream os;
  os << kOutcomeHeader << "\n";
  os << "trials " << outcome.trials_run << ' ' << outcome.trials_retried << "\n";
  os << "bug " << (outcome.bug_found ? 1 : 0) << ' ' << outcome.first_bug_trial << "\n";
  os << "target " << (outcome.target_found ? 1 : 0) << ' ' << outcome.first_target_trial
     << "\n";
  os << "flags " << (outcome.channel_exercised ? 1 : 0) << ' ' << (outcome.any_hang ? 1 : 0)
     << "\n";
  os << "races " << outcome.races.size() << "\n";
  for (const RaceReport& race : outcome.races) {
    os << "r " << race.write_site << ' ' << race.other_site << ' ' << race.addr << ' '
       << (race.write_write ? 1 : 0) << "\n";
  }
  os << "console " << outcome.console_hits.size() << "\n";
  for (const std::string& hit : outcome.console_hits) {
    os << "c " << HexToken(hit) << "\n";
  }
  os << "panics " << outcome.panic_messages.size() << "\n";
  for (const std::string& message : outcome.panic_messages) {
    os << "p " << HexToken(message) << "\n";
  }
  os << "captures " << outcome.captures.size() << "\n";
  for (const TrialCapture& capture : outcome.captures) {
    os << "k " << static_cast<uint32_t>(capture.kind) << ' ' << capture.finding_key << ' '
       << capture.trial << ' ' << Hex16(capture.fingerprint) << ' ' << capture.orig_len
       << ' ' << capture.orig_switches << ' ' << capture.min_switches << ' '
       << (capture.schedule.empty() ? kEmptyToken : capture.schedule) << "\n";
  }
  os << "endoutcome\n";
  return os.str();
}

std::optional<ExploreOutcome> DeserializeExploreOutcome(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kOutcomeHeader) {
    return std::nullopt;
  }
  ExploreOutcome outcome;
  std::vector<int64_t> values;
  if (!ParseLabeledInts(is, "trials", &values, 2) || values[0] < 0 || values[1] < 0) {
    return std::nullopt;
  }
  outcome.trials_run = static_cast<int>(values[0]);
  outcome.trials_retried = static_cast<int>(values[1]);
  if (!ParseLabeledInts(is, "bug", &values, 2) || values[0] > 1 || values[0] < 0) {
    return std::nullopt;
  }
  outcome.bug_found = values[0] == 1;
  outcome.first_bug_trial = static_cast<int>(values[1]);
  if (!ParseLabeledInts(is, "target", &values, 2) || values[0] > 1 || values[0] < 0) {
    return std::nullopt;
  }
  outcome.target_found = values[0] == 1;
  outcome.first_target_trial = static_cast<int>(values[1]);
  if (!ParseLabeledInts(is, "flags", &values, 2) || values[0] > 1 || values[0] < 0 ||
      values[1] > 1 || values[1] < 0) {
    return std::nullopt;
  }
  outcome.channel_exercised = values[0] == 1;
  outcome.any_hang = values[1] == 1;

  uint64_t race_count = 0;
  if (!ParseLabeledUint(is, "races", &race_count)) {
    return std::nullopt;
  }
  for (uint64_t i = 0; i < race_count; i++) {
    if (!std::getline(is, line)) {
      return std::nullopt;
    }
    std::istringstream fields(line);
    std::string tag;
    uint64_t addr = 0;
    uint32_t ww = 0;
    RaceReport race;
    fields >> tag >> race.write_site >> race.other_site >> addr >> ww;
    if (fields.fail() || tag != "r" || addr > UINT32_MAX || ww > 1) {
      return std::nullopt;
    }
    race.addr = static_cast<GuestAddr>(addr);
    race.write_write = ww == 1;
    outcome.races.push_back(race);
  }

  // Count line, then `count` "<tag> <hex>" lines.
  auto parse_strings = [&is](const char* label, const char* tag,
                             std::vector<std::string>* out) {
    std::string body_line;
    uint64_t count = 0;
    {
      if (!std::getline(is, body_line)) {
        return false;
      }
      std::istringstream fields(body_line);
      std::string got;
      fields >> got >> count;
      if (fields.fail() || got != label) {
        return false;
      }
    }
    for (uint64_t i = 0; i < count; i++) {
      if (!std::getline(is, body_line)) {
        return false;
      }
      std::istringstream fields(body_line);
      std::string got;
      std::string token;
      fields >> got >> token;
      if (fields.fail() || got != tag) {
        return false;
      }
      std::optional<std::string> decoded = DecodeHexToken(token);
      if (!decoded.has_value()) {
        return false;
      }
      out->push_back(std::move(*decoded));
    }
    return true;
  };
  if (!parse_strings("console", "c", &outcome.console_hits) ||
      !parse_strings("panics", "p", &outcome.panic_messages)) {
    return std::nullopt;
  }

  uint64_t capture_count = 0;
  if (!ParseLabeledUint(is, "captures", &capture_count)) {
    return std::nullopt;
  }
  for (uint64_t i = 0; i < capture_count; i++) {
    if (!std::getline(is, line)) {
      return std::nullopt;
    }
    std::istringstream fields(line);
    std::string tag;
    uint32_t kind = 0;
    std::string fp_hex;
    std::string sched;
    TrialCapture capture;
    fields >> tag >> kind >> capture.finding_key >> capture.trial >> fp_hex >>
        capture.orig_len >> capture.orig_switches >> capture.min_switches >> sched;
    std::string extra;
    if (fields.fail() || tag != "k" || kind > 2 || !ParseHex16(fp_hex, &capture.fingerprint) ||
        (fields >> extra)) {
      return std::nullopt;
    }
    capture.kind = static_cast<uint8_t>(kind);
    if (sched == kEmptyToken) {
      capture.schedule.clear();
    } else {
      // Validate via the rejecting schedule parser; stores the canonical text form.
      std::optional<RecordedSchedule> parsed = RecordedSchedule::FromString(sched);
      if (!parsed.has_value()) {
        return std::nullopt;
      }
      capture.schedule = std::move(sched);
    }
    outcome.captures.push_back(std::move(capture));
  }

  if (!std::getline(is, line) || line != "endoutcome") {
    return std::nullopt;
  }
  return outcome;
}

std::string EncodeOutcomeRecord(const OutcomeRecord& record) {
  std::ostringstream os;
  os << record.test_index << ' ' << HexEncode(SerializeExploreOutcome(record.outcome))
     << ' ' << record.findings.size();
  for (const Finding& finding : record.findings) {
    std::string text = StrPrintf("%d %d %d ", finding.issue_id, finding.trial,
                                 finding.duplicate_input ? 1 : 0) +
                       HexToken(finding.evidence) + " " + HexToken(finding.replay_token);
    os << ' ' << HexEncode(text);
  }
  return os.str();
}

std::optional<OutcomeRecord> DecodeOutcomeRecord(const std::string& record) {
  std::istringstream fields(record);
  uint64_t index = 0;
  std::string hex;
  uint64_t finding_count = 0;
  fields >> index >> hex >> finding_count;
  if (fields.fail()) {
    return std::nullopt;
  }
  std::optional<std::string> text = HexDecode(hex);
  if (!text.has_value()) {
    return std::nullopt;
  }
  std::optional<ExploreOutcome> outcome = DeserializeExploreOutcome(*text);
  if (!outcome.has_value()) {
    return std::nullopt;
  }
  OutcomeRecord out;
  out.test_index = static_cast<size_t>(index);
  out.outcome = std::move(*outcome);
  for (uint64_t i = 0; i < finding_count; i++) {
    std::string finding_hex;
    fields >> finding_hex;
    if (fields.fail()) {
      return std::nullopt;
    }
    std::optional<std::string> finding_text = HexDecode(finding_hex);
    if (!finding_text.has_value()) {
      return std::nullopt;
    }
    std::istringstream finding_fields(*finding_text);
    int64_t issue_id = 0;
    int64_t trial = 0;
    int64_t duplicate = 0;
    std::string evidence_token;
    std::string replay_hex;
    finding_fields >> issue_id >> trial >> duplicate >> evidence_token >> replay_hex;
    std::string finding_extra;
    if (finding_fields.fail() || duplicate < 0 || duplicate > 1 ||
        (finding_fields >> finding_extra)) {
      return std::nullopt;
    }
    std::optional<std::string> evidence = DecodeHexToken(evidence_token);
    std::optional<std::string> replay_token = DecodeHexToken(replay_hex);
    if (!evidence.has_value() || !replay_token.has_value()) {
      return std::nullopt;
    }
    Finding finding;
    finding.issue_id = static_cast<int>(issue_id);
    finding.test_index = out.test_index;
    finding.trial = static_cast<int>(trial);
    finding.duplicate_input = duplicate == 1;
    finding.evidence = std::move(*evidence);
    finding.replay_token = std::move(*replay_token);
    out.findings.push_back(std::move(finding));
  }
  std::string extra;
  if (fields >> extra) {
    return std::nullopt;
  }
  return out;
}

std::string SerializeFindings(const FindingsLog& findings) {
  std::ostringstream os;
  os << kFindingsHeader << "\n";
  os << "total " << findings.total_findings() << "\n";
  os << "entries " << findings.first_findings().size() << "\n";
  for (const auto& [issue_id, finding] : findings.first_findings()) {
    os << "f " << issue_id << ' ' << finding.test_index << ' ' << finding.trial << ' '
       << (finding.duplicate_input ? 1 : 0) << ' ' << HexToken(finding.evidence) << ' '
       << HexToken(finding.replay_token) << "\n";
  }
  os << "endfindings\n";
  return os.str();
}

std::optional<FindingsLog> DeserializeFindings(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kFindingsHeader) {
    return std::nullopt;
  }
  uint64_t total = 0;
  uint64_t entries = 0;
  if (!ParseLabeledUint(is, "total", &total) || !ParseLabeledUint(is, "entries", &entries) ||
      entries > total) {
    return std::nullopt;
  }
  std::map<int, Finding> first_findings;
  for (uint64_t i = 0; i < entries; i++) {
    if (!std::getline(is, line)) {
      return std::nullopt;
    }
    std::istringstream fields(line);
    std::string tag;
    int64_t issue_id = 0;
    int64_t test_index = 0;
    int64_t trial = 0;
    int64_t duplicate = 0;
    std::string token;
    std::string replay_hex;
    fields >> tag >> issue_id >> test_index >> trial >> duplicate >> token >> replay_hex;
    std::string extra;
    if (fields.fail() || tag != "f" || test_index < 0 || duplicate < 0 || duplicate > 1 ||
        (fields >> extra)) {
      return std::nullopt;
    }
    std::optional<std::string> evidence = DecodeHexToken(token);
    std::optional<std::string> replay_token = DecodeHexToken(replay_hex);
    if (!evidence.has_value() || !replay_token.has_value()) {
      return std::nullopt;
    }
    Finding finding;
    finding.issue_id = static_cast<int>(issue_id);
    finding.test_index = static_cast<size_t>(test_index);
    finding.trial = static_cast<int>(trial);
    finding.duplicate_input = duplicate == 1;
    finding.evidence = std::move(*evidence);
    finding.replay_token = std::move(*replay_token);
    if (!first_findings.emplace(finding.issue_id, std::move(finding)).second) {
      return std::nullopt;  // Duplicate issue id: not a valid first-findings map.
    }
  }
  if (!std::getline(is, line) || line != "endfindings") {
    return std::nullopt;
  }
  FindingsLog log;
  log.Restore(first_findings, total);
  return log;
}

std::string SerializePipelineResult(const PipelineResult& result) {
  std::ostringstream os;
  os << kResultHeader << "\n";
  os << "corpus_size " << result.corpus_size << "\n";
  os << "profiled_ok " << result.profiled_ok << "\n";
  os << "shared_accesses " << result.shared_accesses << "\n";
  os << "pmc_count " << result.pmc_count << "\n";
  os << "total_pmc_pairs " << result.total_pmc_pairs << "\n";
  os << "cluster_count " << result.cluster_count << "\n";
  os << "tests_generated " << result.tests_generated << "\n";
  os << "tests_executed " << result.tests_executed << "\n";
  os << "tests_with_bug " << result.tests_with_bug << "\n";
  os << "channel_exercised " << result.channel_exercised << "\n";
  os << "total_trials " << result.total_trials << "\n";
  os << "schedule_switches_orig " << result.schedule_switches_orig << "\n";
  os << "schedule_switches_min " << result.schedule_switches_min << "\n";
  os << "pmc_digest " << Hex16(result.pmc_table_digest) << "\n";
  os << SerializeFindings(result.findings);
  os << "endresult\n";
  return os.str();
}

std::optional<PipelineResult> DeserializePipelineResult(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kResultHeader) {
    return std::nullopt;
  }
  PipelineResult result;
  uint64_t value = 0;
  if (!ParseLabeledUint(is, "corpus_size", &value)) return std::nullopt;
  result.corpus_size = value;
  if (!ParseLabeledUint(is, "profiled_ok", &value)) return std::nullopt;
  result.profiled_ok = value;
  if (!ParseLabeledUint(is, "shared_accesses", &value)) return std::nullopt;
  result.shared_accesses = value;
  if (!ParseLabeledUint(is, "pmc_count", &value)) return std::nullopt;
  result.pmc_count = value;
  if (!ParseLabeledUint(is, "total_pmc_pairs", &value)) return std::nullopt;
  result.total_pmc_pairs = value;
  if (!ParseLabeledUint(is, "cluster_count", &value)) return std::nullopt;
  result.cluster_count = value;
  if (!ParseLabeledUint(is, "tests_generated", &value)) return std::nullopt;
  result.tests_generated = value;
  if (!ParseLabeledUint(is, "tests_executed", &value)) return std::nullopt;
  result.tests_executed = value;
  if (!ParseLabeledUint(is, "tests_with_bug", &value)) return std::nullopt;
  result.tests_with_bug = value;
  if (!ParseLabeledUint(is, "channel_exercised", &value)) return std::nullopt;
  result.channel_exercised = value;
  if (!ParseLabeledUint(is, "total_trials", &value)) return std::nullopt;
  result.total_trials = value;
  if (!ParseLabeledUint(is, "schedule_switches_orig", &value)) return std::nullopt;
  result.schedule_switches_orig = value;
  if (!ParseLabeledUint(is, "schedule_switches_min", &value)) return std::nullopt;
  result.schedule_switches_min = value;
  {
    if (!std::getline(is, line)) {
      return std::nullopt;
    }
    std::istringstream fields(line);
    std::string tag;
    std::string hex;
    fields >> tag >> hex;
    if (fields.fail() || tag != "pmc_digest" || hex.size() != 16) {
      return std::nullopt;
    }
    result.pmc_table_digest = std::strtoull(hex.c_str(), nullptr, 16);
  }
  std::ostringstream findings_text;
  bool terminated = false;
  while (std::getline(is, line)) {
    if (line == "endresult") {
      terminated = true;
      break;
    }
    findings_text << line << "\n";
  }
  if (!terminated) {
    return std::nullopt;
  }
  std::optional<FindingsLog> findings = DeserializeFindings(findings_text.str());
  if (!findings.has_value()) {
    return std::nullopt;
  }
  result.findings = std::move(*findings);
  return result;
}

std::string FormatReplayToken(const ReplayToken& token) {
  std::ostringstream os;
  os << kReplayTokenHeader << ' ' << token.issue_id << ' ' << token.write_test << ' '
     << token.read_test << ' ' << token.trial_seed << ' ' << token.max_instructions << ' '
     << Hex16(token.fingerprint) << ' ';
  std::string sched = token.schedule.ToString();
  os << (sched.empty() ? kEmptyToken : sched) << ' ';
  SerializePmcSide(os, token.hint.write);
  os << ' ';
  SerializePmcSide(os, token.hint.read);
  os << ' ' << (token.hint.df_leader ? 1 : 0) << ' '
     << HexEncode(SerializeProgram(token.writer)) << ' '
     << HexEncode(SerializeProgram(token.reader));
  std::string body = os.str();
  // The trailing checksum covers the literal body text, so any in-flight corruption of a
  // pasted token is caught before a replay is attempted.
  return body + ' ' + Hex16(Fnv1a(body));
}

std::optional<ReplayToken> ParseReplayToken(const std::string& text) {
  if (text.empty() || text.size() > kMaxReplayTokenLength) {
    return std::nullopt;
  }
  size_t crc_pos = text.find_last_of(' ');
  if (crc_pos == std::string::npos) {
    return std::nullopt;
  }
  std::string body = text.substr(0, crc_pos);
  uint64_t crc = 0;
  if (!ParseHex16(text.substr(crc_pos + 1), &crc) || crc != Fnv1a(body)) {
    return std::nullopt;
  }

  std::istringstream fields(body);
  std::string header;
  fields >> header;
  if (header != kReplayTokenHeader) {
    return std::nullopt;
  }
  ReplayToken token;
  fields >> token.issue_id >> token.write_test >> token.read_test >> token.trial_seed >>
      token.max_instructions;
  std::string fp_hex;
  std::string sched;
  fields >> fp_hex >> sched;
  if (fields.fail() || token.issue_id < 0 || !ParseHex16(fp_hex, &token.fingerprint)) {
    return std::nullopt;
  }
  if (sched != kEmptyToken) {
    std::optional<RecordedSchedule> schedule = RecordedSchedule::FromString(sched);
    if (!schedule.has_value()) {
      return std::nullopt;
    }
    token.schedule = std::move(*schedule);
  }
  uint32_t df = 0;
  if (!ParsePmcSide(fields, /*min_len=*/0, &token.hint.write) ||
      !ParsePmcSide(fields, /*min_len=*/0, &token.hint.read)) {
    return std::nullopt;
  }
  fields >> df;
  if (fields.fail() || df > 1) {
    return std::nullopt;
  }
  token.hint.df_leader = df == 1;
  std::string writer_hex;
  std::string reader_hex;
  fields >> writer_hex >> reader_hex;
  std::string extra;
  if (fields.fail() || (fields >> extra)) {
    return std::nullopt;
  }
  std::optional<std::string> writer_text = HexDecode(writer_hex);
  std::optional<std::string> reader_text = HexDecode(reader_hex);
  if (!writer_text.has_value() || !reader_text.has_value()) {
    return std::nullopt;
  }
  std::optional<Program> writer = DeserializeProgram(*writer_text);
  std::optional<Program> reader = DeserializeProgram(*reader_text);
  if (!writer.has_value() || !reader.has_value()) {
    return std::nullopt;
  }
  token.writer = std::move(*writer);
  token.reader = std::move(*reader);
  return token;
}

bool WriteStringToFile(const std::string& path, const std::string& contents) {
  return AtomicWriteFile(path, contents);
}

std::optional<std::string> ReadFileToString(const std::string& path) {
  return ReadFileContents(path);
}

}  // namespace snowboard
