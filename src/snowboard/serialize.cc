#include "src/snowboard/serialize.h"

#include <fstream>
#include <sstream>

namespace snowboard {

namespace {

constexpr const char* kCorpusHeader = "snowboard-corpus-v1";
constexpr const char* kPmcHeader = "snowboard-pmcs-v1";

}  // namespace

std::string SerializeProgram(const Program& program) {
  std::ostringstream os;
  for (const Call& call : program.calls) {
    os << "call " << call.nr;
    for (const Arg& arg : call.args) {
      os << " " << (arg.kind == Arg::kResult ? 'r' : 'c') << ':' << arg.value;
    }
    os << "\n";
  }
  os << "end\n";
  return os.str();
}

std::optional<Program> DeserializeProgram(const std::string& text) {
  std::optional<std::vector<Program>> corpus =
      DeserializeCorpus(std::string(kCorpusHeader) + "\n" + text);
  if (!corpus.has_value() || corpus->size() != 1) {
    return std::nullopt;
  }
  return (*corpus)[0];
}

std::string SerializeCorpus(const std::vector<Program>& corpus) {
  std::ostringstream os;
  os << kCorpusHeader << "\n";
  for (const Program& program : corpus) {
    os << SerializeProgram(program);
  }
  return os.str();
}

std::optional<std::vector<Program>> DeserializeCorpus(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kCorpusHeader) {
    return std::nullopt;
  }
  std::vector<Program> corpus;
  Program current;
  bool open = false;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "end") {
      corpus.push_back(current);
      current = Program();
      open = false;
      continue;
    }
    if (tag != "call") {
      return std::nullopt;
    }
    Call call;
    fields >> call.nr;
    if (fields.fail() || call.nr >= kNumSyscalls) {
      return std::nullopt;
    }
    std::string arg_text;
    int index = 0;
    while (index < kMaxSyscallArgs && fields >> arg_text) {
      size_t colon = arg_text.find(':');
      if (colon != 1 || (arg_text[0] != 'c' && arg_text[0] != 'r')) {
        return std::nullopt;
      }
      Arg arg;
      arg.kind = arg_text[0] == 'r' ? Arg::kResult : Arg::kConst;
      try {
        arg.value = std::stoll(arg_text.substr(colon + 1));
      } catch (...) {
        return std::nullopt;
      }
      call.args[index++] = arg;
    }
    if (current.calls.size() >= kMaxCallsPerProgram) {
      return std::nullopt;
    }
    current.calls.push_back(call);
    open = true;
  }
  if (open) {
    return std::nullopt;  // Truncated: a program without its "end".
  }
  return corpus;
}

std::string SerializePmcs(const std::vector<Pmc>& pmcs) {
  std::ostringstream os;
  os << kPmcHeader << "\n";
  for (const Pmc& pmc : pmcs) {
    const PmcKey& k = pmc.key;
    os << "pmc " << k.write.addr << ' ' << static_cast<uint32_t>(k.write.len) << ' '
       << k.write.site << ' ' << k.write.value << ' ' << k.read.addr << ' '
       << static_cast<uint32_t>(k.read.len) << ' ' << k.read.site << ' ' << k.read.value
       << ' ' << (k.df_leader ? 1 : 0) << ' ' << pmc.total_pairs << ' ' << pmc.pairs.size();
    for (const PmcTestPair& pair : pmc.pairs) {
      os << ' ' << pair.write_test << ' ' << pair.read_test;
    }
    os << "\n";
  }
  return os.str();
}

std::optional<std::vector<Pmc>> DeserializePmcs(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kPmcHeader) {
    return std::nullopt;
  }
  std::vector<Pmc> pmcs;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag != "pmc") {
      return std::nullopt;
    }
    Pmc pmc;
    uint32_t wlen = 0;
    uint32_t rlen = 0;
    uint32_t df = 0;
    size_t pair_count = 0;
    fields >> pmc.key.write.addr >> wlen >> pmc.key.write.site >> pmc.key.write.value >>
        pmc.key.read.addr >> rlen >> pmc.key.read.site >> pmc.key.read.value >> df >>
        pmc.total_pairs >> pair_count;
    if (fields.fail() || wlen == 0 || wlen > 8 || rlen == 0 || rlen > 8 ||
        pair_count > kMaxPairsPerPmc) {
      return std::nullopt;
    }
    pmc.key.write.len = static_cast<uint8_t>(wlen);
    pmc.key.read.len = static_cast<uint8_t>(rlen);
    pmc.key.df_leader = df != 0;
    for (size_t i = 0; i < pair_count; i++) {
      PmcTestPair pair;
      fields >> pair.write_test >> pair.read_test;
      if (fields.fail()) {
        return std::nullopt;
      }
      pmc.pairs.push_back(pair);
    }
    pmcs.push_back(std::move(pmc));
  }
  return pmcs;
}

bool WriteStringToFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << contents;
  return static_cast<bool>(out);
}

std::optional<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace snowboard
