// Findings triage and the Table 2 issue catalog.
//
// The paper's raw detector output (race reports + console hits) required ~80 person-hours
// of manual inspection to map to the 17 issues of Table 2. Our substitute is a deterministic
// triage table: each seeded issue is recognized by the kernel functions its accesses live in
// (for races) or by its console signature (for AV/OV oracles). Detector findings that match
// no catalog entry are reported as "unclassified" — the analog of the >100 inspected-and-
// discarded reports.
#ifndef SRC_SNOWBOARD_REPORT_H_
#define SRC_SNOWBOARD_REPORT_H_

#include <map>
#include <string>
#include <vector>

#include "src/snowboard/detectors.h"

namespace snowboard {

enum class IssueType { kDataRace, kAtomicityViolation, kOrderViolation };

const char* IssueTypeName(IssueType type);  // "DR" / "AV" / "OV".

struct IssueInfo {
  int id = 0;  // Table 2 numbering.
  const char* summary = "";
  IssueType type = IssueType::kDataRace;
  const char* subsystem = "";
  bool harmful = false;  // Bold rows of Table 2.
  bool benign = false;   // #10, #13, #16.
};

// The 17 seeded issues, ordered by Table 2 id.
const std::vector<IssueInfo>& IssueCatalog();
const IssueInfo* FindIssue(int id);

// Classification: Table 2 issue id, or 0 when unclassified.
int ClassifyRace(const RaceReport& race);
int ClassifyConsoleLine(const std::string& line);

// A triaged finding attributed to a tested input.
struct Finding {
  int issue_id = 0;  // 0 = unclassified.
  std::string evidence;
  size_t test_index = 0;  // How many concurrent tests had been executed when it fired.
  int trial = -1;
  bool duplicate_input = false;  // writer test == reader test ("Duplicate" in Table 2).
  // Self-contained single-line reproducer (FormatReplayToken, serialize.h): feed it to
  // `snowboard_cli replay` to deterministically re-trigger the finding. Empty when the
  // explorer ran with schedule capture disabled or no capture matched.
  std::string replay_token;
};

// Aggregates findings across a testing campaign: first discovery per issue id.
class FindingsLog {
 public:
  void Record(const Finding& finding);
  void Merge(const FindingsLog& other);

  // Replaces the log's contents with deserialized parts (checkpoint restore). The
  // first-per-issue invariant is the caller's responsibility — serialization preserves it.
  void Restore(const std::map<int, Finding>& first_findings, size_t total);

  // issue id -> first finding (unclassified findings keyed as 0, first only).
  const std::map<int, Finding>& first_findings() const { return first_findings_; }
  size_t total_findings() const { return total_; }
  bool Found(int issue_id) const { return first_findings_.count(issue_id) != 0; }

  // Human-readable multi-line summary in Table 2 style.
  std::string Summarize() const;

 private:
  std::map<int, Finding> first_findings_;
  size_t total_ = 0;
};

// Classifies everything in an ExploreOutcome-shaped set of raw findings and records them.
struct ExploreOutcome;  // Fwd (explorer.h); definition not needed here.

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_REPORT_H_
