#include "src/snowboard/postmortem.h"

#include <sstream>
#include <unordered_map>

#include "src/sim/site.h"
#include "src/util/strings.h"

namespace snowboard {

RacePmcVerdict VerifyRaceAgainstPmcs(const RaceReport& race, const std::vector<Pmc>& pmcs) {
  RacePmcVerdict verdict;
  for (size_t i = 0; i < pmcs.size(); i++) {
    const PmcKey& key = pmcs[i].key;
    bool forward = key.write.site == race.write_site && key.read.site == race.other_site;
    bool backward = key.write.site == race.other_site && key.read.site == race.write_site;
    if (!forward && !backward) {
      continue;
    }
    bool exact = (race.addr >= key.write.addr && race.addr < key.write.end()) ||
                 (race.addr >= key.read.addr && race.addr < key.read.end());
    if (!verdict.predicted || (exact && !verdict.exact_range)) {
      verdict.predicted = true;
      verdict.pmc_index = i;
      verdict.exact_range = exact;
    }
    if (verdict.exact_range) {
      break;
    }
  }
  return verdict;
}

std::string DescribeRace(const RaceReport& race, const std::vector<Pmc>& pmcs) {
  std::ostringstream os;
  os << (race.write_write ? "write/write" : "write/read") << " race @0x" << std::hex
     << race.addr << std::dec << "\n";
  os << "  writer: " << SiteName(race.write_site) << "\n";
  os << "  other:  " << SiteName(race.other_site) << "\n";
  RacePmcVerdict verdict = VerifyRaceAgainstPmcs(race, pmcs);
  if (verdict.predicted) {
    const PmcKey& key = pmcs[verdict.pmc_index].key;
    os << StrPrintf("  predicted by PMC #%zu%s: write [0x%x..+%u] value=0x%llx -> "
                    "read [0x%x..+%u] value=0x%llx\n",
                    verdict.pmc_index, verdict.exact_range ? " (exact range)" : "",
                    key.write.addr, key.write.len,
                    static_cast<unsigned long long>(key.write.value), key.read.addr,
                    key.read.len, static_cast<unsigned long long>(key.read.value));
  } else {
    os << "  not predicted by any identified PMC (incidental discovery)\n";
  }
  return os.str();
}

std::vector<ObservedCommunication> ExtractCommunications(const Trace& trace,
                                                         size_t max_results) {
  // Last writer per 4-byte granule (value + provenance), then any read by ANOTHER vCPU
  // that returns the written bytes is a communication.
  struct LastWrite {
    VcpuId vcpu;
    SiteId site;
    GuestAddr addr;
    uint8_t len;
    uint64_t value;
  };
  std::unordered_map<GuestAddr, LastWrite> last_writes;
  std::vector<ObservedCommunication> communications;

  for (const Event& event : trace) {
    if (event.kind != EventKind::kAccess) {
      continue;
    }
    const Access& a = event.access;
    GuestAddr granule = a.addr & ~3u;
    if (a.type == AccessType::kWrite) {
      last_writes[granule] = LastWrite{a.vcpu, a.site, a.addr, a.len, a.value};
      continue;
    }
    auto it = last_writes.find(granule);
    if (it == last_writes.end() || it->second.vcpu == a.vcpu) {
      continue;
    }
    const LastWrite& w = it->second;
    GuestAddr ov_start = std::max(w.addr, a.addr);
    GuestAddr ov_end = std::min<GuestAddr>(w.addr + w.len, a.addr + a.len);
    if (ov_start >= ov_end) {
      continue;
    }
    uint32_t ov_len = ov_end - ov_start;
    if (ProjectValue(w.addr, w.len, w.value, ov_start, ov_len) !=
        ProjectValue(a.addr, a.len, a.value, ov_start, ov_len)) {
      continue;  // The read did not return the written bytes (stale or partial).
    }
    communications.push_back(ObservedCommunication{w.vcpu, a.vcpu, w.site, a.site, ov_start,
                                                   a.value});
    if (communications.size() >= max_results) {
      break;
    }
  }
  return communications;
}

std::string FormatScheduleTail(const Trace& trace, size_t max_lines) {
  std::ostringstream os;
  size_t start = trace.size() > max_lines ? trace.size() - max_lines : 0;
  for (size_t i = start; i < trace.size(); i++) {
    const Event& event = trace[i];
    if (event.kind == EventKind::kYield) {
      os << StrPrintf("  [vcpu%d] --- yield ---\n", event.vcpu);
      continue;
    }
    if (event.kind != EventKind::kAccess) {
      continue;
    }
    const Access& a = event.access;
    os << StrPrintf("  [vcpu%d] %s%s 0x%x+%u = 0x%llx  %s\n", a.vcpu,
                    a.type == AccessType::kWrite ? "W" : "R", a.marked_atomic ? "*" : " ",
                    a.addr, a.len, static_cast<unsigned long long>(a.value),
                    SiteName(a.site).c_str());
  }
  return os.str();
}

}  // namespace snowboard
