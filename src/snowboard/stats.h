// Campaign statistics: distribution summaries over PMC populations and cluster structures,
// process-wide preparation counters, and artifact digests.
//
// The paper's prioritization rests on cluster-cardinality *shape* (uncommon-first visits pay
// off exactly when cluster sizes are skewed); these helpers quantify that shape for the
// Table 1 characterization and for pipeline diagnostics. The digests give tests a compact
// byte-identity check over stage artifacts — the determinism harness asserts they are
// invariant under the preparation worker count.
#ifndef SRC_SNOWBOARD_STATS_H_
#define SRC_SNOWBOARD_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/snowboard/cluster.h"
// PipelineCounters / GlobalPipelineCounters / ResetPipelineCounters moved to util so the
// simulator's snapshot-restore path can report into them; re-exported here for consumers.
#include "src/util/counters.h"

namespace snowboard {

class FindingsLog;

// Order-sensitive digests of stage artifacts. Two artifact vectors digest equal iff they are
// element-wise identical (up to 64-bit collision), including multiplicities and exemplars.
uint64_t PmcTableDigest(const std::vector<Pmc>& pmcs);
uint64_t ClusterTableDigest(const std::vector<PmcCluster>& clusters);
uint64_t FindingsDigest(const FindingsLog& findings);

struct DistributionSummary {
  size_t count = 0;
  size_t min = 0;
  size_t max = 0;
  double mean = 0.0;
  size_t median = 0;
  size_t p90 = 0;
  // Gini coefficient in [0, 1): 0 = all clusters equal-sized, ->1 = mass concentrated in a
  // few giant clusters (the regime where uncommon-first ordering matters most).
  double gini = 0.0;
};

// Summary of a cluster-size distribution.
DistributionSummary SummarizeClusterSizes(const std::vector<PmcCluster>& clusters);

// Fraction of PMCs that sit in singleton clusters under the strategy — the "uncommon" mass.
double SingletonFraction(const std::vector<PmcCluster>& clusters);

// Histogram of cluster sizes in power-of-two buckets: [1], [2..3], [4..7], ... Returns
// bucket counts; bucket i covers sizes [2^i, 2^(i+1)).
std::vector<size_t> ClusterSizeHistogram(const std::vector<PmcCluster>& clusters);

// One-line rendering of a summary for bench output.
std::string FormatSummary(const DistributionSummary& summary);

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_STATS_H_
