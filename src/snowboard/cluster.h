// PMC clustering strategies — §4.3, Table 1.
//
// A clustering strategy = a clustering key (PMC features folded into a cluster id) plus a
// filter predicate (some strategies discard PMCs outright). Clusters are later visited from
// least to most populous — "PMCs from smaller clusters could be regarded as uncommon among
// all predicted PMCs, so exercising them is likely to trigger behaviors not often seen in
// production, or not well tested."
#ifndef SRC_SNOWBOARD_CLUSTER_H_
#define SRC_SNOWBOARD_CLUSTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/snowboard/pmc.h"

namespace snowboard {

enum class Strategy {
  kSFull = 0,        // All features: the costliest baseline.
  kSCh,              // Channel: everything except values.
  kSChNull,          // Channel, filtered to all-zero write values.
  kSChUnaligned,     // Channel, filtered to mismatched ranges.
  kSChDouble,        // Channel, filtered to double-fetch leaders.
  kSIns,             // Single instruction (a pair of clusterings: writes and reads).
  kSInsPair,         // (write instruction, read instruction).
  kSMem,             // Memory ranges only.
  // Generation-method variants evaluated in Table 3 (not Table 1 strategies):
  kRandomSInsPair,   // S-INS-PAIR keys with randomized cluster order.
  kRandomPairing,    // Baseline: random test pairs, no PMC.
  kDuplicatePairing, // Baseline: identical test pairs, no PMC.
};

inline constexpr Strategy kAllClusteringStrategies[] = {
    Strategy::kSFull,     Strategy::kSCh,   Strategy::kSChNull, Strategy::kSChUnaligned,
    Strategy::kSChDouble, Strategy::kSIns,  Strategy::kSInsPair, Strategy::kSMem,
};

const char* StrategyName(Strategy strategy);

// True for the strategies that cluster PMCs (everything except the two baselines).
bool StrategyUsesPmcs(Strategy strategy);

struct PmcCluster {
  uint64_t key = 0;                // Cluster id (hash of the clustering-key features).
  std::vector<uint32_t> members;   // Indices into the PMC vector.
};

// Applies the strategy's filter and groups surviving PMCs by the clustering key. For kSIns,
// each PMC lands in TWO clusters (its write-instruction cluster and its read-instruction
// cluster), per Table 1's "strategy pair".
//
// With num_workers > 1 the PMC table is partitioned into contiguous index ranges, each
// clustered independently, and the partial tables are merged in partition order. Clusters
// keep their canonical order (first appearance of the key over the PMC index) and members
// stay ascending, so the result is byte-identical for any worker count.
std::vector<PmcCluster> ClusterPmcs(const std::vector<Pmc>& pmcs, Strategy strategy,
                                    int num_workers = 1);

// The Table 1 filter predicate, exposed for tests.
bool StrategyFilter(Strategy strategy, const PmcKey& key);

// The Table 1 clustering key, exposed for tests. `which` selects the S-INS sub-strategy
// (0 = write instruction, 1 = read instruction); ignored otherwise.
uint64_t StrategyKey(Strategy strategy, const PmcKey& key, int which);

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_CLUSTER_H_
