// End-to-end pipeline — Figure 2: sequential test generation & profiling → PMC
// identification → PMC selection (clustering + prioritization) → concurrent test execution.
//
// Every stage draws its threads from the process-lifetime WorkerPool (util/workpool.h),
// whose workers carry lazily-booted KernelVms reused from the corpus stage through
// profiling into concurrent-test execution — the in-process analog of the paper's
// Redis-queue-plus-GCP-VMs deployment (§4.4.1), where a fixed fleet streams through all
// campaign work. Two engines drive the stages:
//   * streaming (default): one pool job runs the whole campaign as a dependency DAG —
//     completed profiles fold into PMC identification while the profile tail executes, and
//     concurrent tests start exploring as soon as the test list resolves.
//   * barrier (`streaming = false`, CLI --no-stream): stages run to completion in sequence,
//     each as its own pool job — the reference structure the streaming engine is A/B-tested
//     against.
// Budgets are expressed in test counts rather than wall-clock, shard merges are canonically
// ordered (profile folds and outcome folds happen in index order regardless of completion
// order), and per-test exploration seeds derive from the test index, so the pipeline's
// deterministic outputs (stats, PMC tables, findings) are byte-identical for a fixed seed
// at ANY worker count, under EITHER engine — the invariant the determinism test harness
// locks in.
#ifndef SRC_SNOWBOARD_PIPELINE_H_
#define SRC_SNOWBOARD_PIPELINE_H_

#include <string>
#include <vector>

#include "src/fuzz/corpus.h"
#include "src/snowboard/cluster.h"
#include "src/snowboard/explorer.h"
#include "src/snowboard/report.h"
#include "src/snowboard/select.h"

namespace snowboard {

class FaultInjector;  // util/fault.h.

struct PipelineOptions {
  uint64_t seed = 1;
  CorpusOptions corpus;
  PmcIdentifyOptions pmc;
  Strategy strategy = Strategy::kSInsPair;
  size_t max_concurrent_tests = 300;  // The per-strategy test budget (Table 3's time box).
  ExplorerOptions explorer;
  // Shared-nothing workers (machine fleet analog) used by profiling, identification,
  // clustering, and execution alike. All deterministic outputs are invariant under it.
  // <= 0 means "unset" and resolves to 1 (ResolvedWorkers).
  int num_workers = 1;
  // Cross-stage streaming (the default engine): profiles fold into PMC identification as
  // they complete and exploration starts as soon as tests resolve, instead of a full
  // barrier between stages. Deterministic outputs are invariant under this flag (and it is
  // excluded from the checkpoint fingerprint, so campaigns may be resumed across engines).
  bool streaming = true;
  // Optional cross-run profile memo: multi-strategy campaigns (Table 3) share one cache so
  // each distinct program is profiled on a VM only once.
  ProfileCache* profile_cache = nullptr;
  // Crash-safe persistence. When non-empty, every stage commits its artifact to a
  // CheckpointStore here on completion, and execution journals per-test outcomes
  // incrementally. The directory is keyed by an options fingerprint (every field that
  // shapes deterministic outputs — NOT num_workers); a mismatched directory is reset.
  std::string checkpoint_dir;
  // With `resume`, completed stages load from the checkpoint instead of recomputing and
  // journaled test outcomes replay without touching a VM. Without it, the directory is
  // cleared first. Meaningless when checkpoint_dir is empty.
  bool resume = false;
  // Crash/hang fault-injection hook (crash-sweep harness); nullptr = off. When an injected
  // crash fires, the pipeline unwinds at the next fault point of every worker and returns
  // a partial result — only the on-disk checkpoint state is meaningful afterwards.
  FaultInjector* fault = nullptr;
  // Journal group-commit threshold: per-test outcome records buffer in the CheckpointStore
  // and are fsynced in batches of this many (1 = the old fsync-per-record behavior). Like
  // num_workers, it shapes no deterministic output — a crash just loses at most one
  // unflushed batch, which the resumed run re-executes — so it is excluded from the
  // checkpoint fingerprint.
  int journal_flush_records = 8;

  // The single interpretation of num_workers, shared by every stage (profiling, the
  // identify "inherit" case, clustering, execution): non-positive means 1.
  int ResolvedWorkers() const { return num_workers > 0 ? num_workers : 1; }
};

struct PipelineResult {
  // Stage statistics (§5.4-style).
  size_t corpus_size = 0;
  size_t profiled_ok = 0;
  uint64_t shared_accesses = 0;
  size_t pmc_count = 0;          // Materialized unique PMCs.
  uint64_t total_pmc_pairs = 0;  // Sum of test-pair multiplicities ("169 billion" analog).
  size_t cluster_count = 0;      // Exemplar PMCs under the strategy.
  size_t tests_generated = 0;
  size_t tests_executed = 0;
  size_t tests_with_bug = 0;
  size_t channel_exercised = 0;  // §5.3.2 numerator.
  uint64_t total_trials = 0;
  // Minimization funnel: switch counts of the captured finding schedules before and after
  // the delta-debugging minimizer (summed over every capture of every executed test).
  uint64_t schedule_switches_orig = 0;
  uint64_t schedule_switches_min = 0;
  uint64_t pmc_table_digest = 0;  // PmcTableDigest of the identified table.
  FindingsLog findings;
  // Resume bookkeeping (run-shape dependent; excluded from SerializePipelineResult).
  size_t tests_resumed = 0;      // Outcomes replayed from the execution journal.
  uint64_t trials_retried = 0;   // Hung-trial retries across all tests.
  // Wall-clock per stage (seconds).
  double corpus_seconds = 0;
  double profile_seconds = 0;
  double identify_seconds = 0;
  double cluster_seconds = 0;
  double execute_seconds = 0;
  // Time spent inside VM snapshot restores during the profiling and execution stages
  // (seconds), derived from GlobalPipelineCounters().snapshot_restore_nanos deltas around
  // each stage — the share of a stage the dirty-page delta restore attacks. Counter-based,
  // so concurrent pipelines in one process would attribute each other's restores.
  double profile_restore_seconds = 0;
  double execute_restore_seconds = 0;
};

// Runs the full campaign for one strategy (including the Random/Duplicate pairing baselines,
// which skip profiling-derived hints and run under the random-preemption scheduler).
PipelineResult RunSnowboardPipeline(const PipelineOptions& options);

// --- Individual stages, exposed for benches that need intermediate artifacts. ---

struct PreparedCampaign {
  std::vector<Program> corpus;
  std::vector<SequentialProfile> profiles;
  std::vector<Pmc> pmcs;
  double corpus_seconds = 0;
  double profile_seconds = 0;
  double profile_restore_seconds = 0;  // Snapshot-restore share of profile_seconds.
  double identify_seconds = 0;
};

// Stages 1-2 (corpus, profiling, identification); shared across strategies in benches.
PreparedCampaign PrepareCampaign(const PipelineOptions& options);

// Stage 3: clustering + selection for one strategy (returns generated concurrent tests).
std::vector<ConcurrentTest> GenerateTestsForStrategy(const PreparedCampaign& campaign,
                                                     const PipelineOptions& options,
                                                     size_t* cluster_count_out);

// Stage 4: parallel execution of `tests`, filling execution stats + findings into `result`.
// `use_pmc_hints` selects the Algorithm 2 scheduler vs the baseline random scheduler.
void ExecuteCampaign(const std::vector<ConcurrentTest>& tests, bool use_pmc_hints,
                     const PmcMatcher* matcher, const PipelineOptions& options,
                     PipelineResult* result);

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_PIPELINE_H_
