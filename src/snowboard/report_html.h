// Campaign report generation: one self-contained HTML page + a stable report.json.
//
// The paper communicates Snowboard's value as a funnel — Table 2/4 compress millions of
// PMCs into clusters, a prioritized test set, and finally a handful of findings. This
// module renders that funnel for ONE campaign run: PMCs found → clustered → tested →
// findings, per-stage wall/restore/retry breakdowns, and the triaged findings, as
//   * report.json — a versioned, machine-readable schema (kGym-style comparable artifact;
//     PAPERS.md) whose deterministic portion is byte-identical for any worker count, and
//   * report.html — a single file with inline CSS only (no scripts, no external fetches),
//     so it can be archived next to the checkpoint directory and opened anywhere.
//
// Masking contract: every run-shape-dependent value (wall clock, worker count, process
// counters) lives on a JSON line whose key matches the volatile patterns understood by
// MaskReportVolatile. Golden tests and CI diffs mask those lines and byte-compare the
// rest — the funnel, stages, findings, and digests must survive that comparison across
// 1/2/4 workers (the determinism harness invariant, restated over the report).
#ifndef SRC_SNOWBOARD_REPORT_HTML_H_
#define SRC_SNOWBOARD_REPORT_HTML_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/snowboard/metrics.h"

namespace snowboard {

struct PipelineOptions;
struct PipelineResult;

// One bar of the campaign funnel, top to bottom.
struct FunnelRow {
  std::string label;  // Stable identifier ("pmcs_identified").
  std::string title;  // Human rendering ("PMCs identified").
  uint64_t value = 0;
};

struct StageTiming {
  std::string name;             // "corpus", "profile", "identify", "cluster", "execute".
  double wall_seconds = 0;
  double restore_seconds = 0;   // Snapshot-restore share (profile/execute only).
  bool has_restore = false;
};

// A triaged finding row (first finding per Table 2 issue id; id 0 = unclassified).
struct ReportFinding {
  int issue_id = 0;
  std::string type;       // "DR" / "AV" / "OV" / "?" for unclassified.
  std::string summary;
  std::string subsystem;
  bool harmful = false;
  bool benign = false;
  bool duplicate_input = false;
  size_t test_index = 0;
  int trial = -1;
  std::string evidence;
  std::string replay_token;  // Single-line reproducer for `snowboard_cli replay`.
};

struct CampaignReport {
  std::string strategy;
  uint64_t seed = 0;
  int num_workers = 0;
  uint64_t pmc_table_digest = 0;
  std::vector<FunnelRow> funnel;
  std::vector<StageTiming> stages;
  std::vector<ReportFinding> findings;
  uint64_t trials_retried = 0;
  uint64_t tests_resumed = 0;
  MetricsSnapshot metrics;
};

// Assembles the report for one completed campaign (reads GlobalPipelineCounters via
// CollectCampaignMetrics — reset counters between campaigns for clean attribution).
CampaignReport BuildCampaignReport(const PipelineOptions& options,
                                   const PipelineResult& result);

// The versioned JSON document ("schema": "snowboard-report-v1"). One key per line;
// volatile values only on maskable lines (see MaskReportVolatile).
std::string RenderReportJson(const CampaignReport& report);

// The self-contained HTML page (inline CSS, light/dark via prefers-color-scheme).
std::string RenderReportHtml(const CampaignReport& report);

// Writes report.json and report.html into `dir` (created if missing), atomically.
bool WriteCampaignReport(const CampaignReport& report, const std::string& dir);

// Replaces the value of every volatile line — keys containing "_seconds", keys prefixed
// "run." (counter metrics), "num_workers", and "tests_resumed" — with "<masked>". The
// result is still valid JSON; two campaigns with identical deterministic outputs produce
// byte-identical masked reports regardless of worker count or machine speed.
std::string MaskReportVolatile(const std::string& report_json);

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_REPORT_HTML_H_
