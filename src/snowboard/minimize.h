// Delta-debugging schedule minimization.
//
// The paper argues most kernel concurrency bugs need only a tiny number of preemptions
// ("two context switches suffice" is the classic CHESS/small-scope observation Snowboard's
// 2-thread trials lean on). A recorded schedule, by contrast, logs EVERY scheduler decision
// of the trial — thousands of '.' entries around a handful of 'S' switches, most of which
// are incidental coin flips that never mattered. MinimizeSchedule shrinks the recording
// toward that ideal: it removes switch decisions (ddmin over the switch positions, plus a
// free truncation past the last kept switch) while a caller-supplied probe confirms the
// finding still reproduces under deterministic replay. The result is a shorter, more
// legible reproducer whose surviving switches are exactly the preemptions the bug needs.
#ifndef SRC_SNOWBOARD_MINIMIZE_H_
#define SRC_SNOWBOARD_MINIMIZE_H_

#include <functional>

#include "src/snowboard/replay.h"

namespace snowboard {

struct MinimizeOptions {
  // Probe budget: each probe is one deterministic replay of the trial, so this bounds the
  // minimizer's cost at max_probes trial executions per finding.
  int max_probes = 48;
};

struct MinimizeStats {
  int probes = 0;          // Replays actually spent.
  bool reproduced = false; // The original recording itself reproduced under replay.
  size_t orig_len = 0;     // Decisions in the original recording.
  size_t min_len = 0;      // Decisions in the minimized schedule (truncation included).
  size_t orig_switches = 0;
  size_t min_switches = 0;
};

// Probe contract: replays the trial under `candidate` and returns true iff the finding of
// interest still fires. The probe MUST be deterministic (same candidate -> same answer);
// MinimizeSchedule guarantees the returned schedule was accepted by the FINAL successful
// probe, so state the probe captures (e.g. the replay's detector fingerprint) describes
// exactly the returned schedule.
using SchedProbe = std::function<bool(const RecordedSchedule& candidate)>;

// Shrinks `schedule` while `probe` keeps succeeding. If even the original recording fails
// the probe (stats->reproduced == false), the original is returned unchanged.
RecordedSchedule MinimizeSchedule(const RecordedSchedule& schedule, const SchedProbe& probe,
                                  const MinimizeOptions& options, MinimizeStats* stats);

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_MINIMIZE_H_
