#include "src/snowboard/select.h"

#include <algorithm>
#include <numeric>

#include "src/util/assert.h"

namespace snowboard {

std::vector<size_t> OrderClusters(const std::vector<PmcCluster>& clusters, bool randomize,
                                  Rng& rng) {
  std::vector<size_t> order(clusters.size());
  std::iota(order.begin(), order.end(), 0);
  if (randomize) {
    // Fisher-Yates with the seeded generator (Random S-INS-PAIR, §5.3.1).
    for (size_t i = order.size(); i > 1; i--) {
      std::swap(order[i - 1], order[rng.Below(i)]);
    }
    return order;
  }
  std::sort(order.begin(), order.end(), [&clusters](size_t a, size_t b) {
    if (clusters[a].members.size() != clusters[b].members.size()) {
      return clusters[a].members.size() < clusters[b].members.size();
    }
    return clusters[a].key < clusters[b].key;  // Deterministic tie-break.
  });
  return order;
}

std::vector<ConcurrentTest> SelectConcurrentTests(const std::vector<Pmc>& pmcs,
                                                  const std::vector<PmcCluster>& clusters,
                                                  const std::vector<Program>& corpus,
                                                  const SelectOptions& options) {
  Rng rng(options.seed);
  std::vector<size_t> order = OrderClusters(clusters, options.randomize_cluster_order, rng);

  std::vector<ConcurrentTest> tests;
  tests.reserve(std::min(options.max_tests, order.size()));
  for (size_t cluster_index : order) {
    if (tests.size() >= options.max_tests) {
      break;
    }
    const PmcCluster& cluster = clusters[cluster_index];
    SB_CHECK(!cluster.members.empty());
    // draw_from_cluster(cluster, random) — Algorithm 2 line 2.
    const Pmc& pmc = pmcs[cluster.members[rng.Below(cluster.members.size())]];
    if (pmc.pairs.empty()) {
      continue;
    }
    // "A PMC may correspond to multiple test pairs; one pair is chosen among them at
    // random" — §4.4.
    const PmcTestPair& pair = pmc.pairs[rng.Below(pmc.pairs.size())];
    SB_CHECK(pair.write_test >= 0 &&
             pair.write_test < static_cast<int>(corpus.size()));
    SB_CHECK(pair.read_test >= 0 && pair.read_test < static_cast<int>(corpus.size()));

    ConcurrentTest test;
    test.writer = corpus[static_cast<size_t>(pair.write_test)];
    test.reader = corpus[static_cast<size_t>(pair.read_test)];
    test.write_test = pair.write_test;
    test.read_test = pair.read_test;
    test.hint = pmc.key;
    test.cluster_key = cluster.key;
    test.cluster_size = cluster.members.size();
    tests.push_back(std::move(test));
  }
  return tests;
}

std::vector<ConcurrentTest> GenerateRandomPairs(const std::vector<Program>& corpus,
                                                size_t count, uint64_t seed) {
  SB_CHECK(!corpus.empty());
  Rng rng(seed);
  std::vector<ConcurrentTest> tests;
  tests.reserve(count);
  for (size_t i = 0; i < count; i++) {
    ConcurrentTest test;
    test.write_test = static_cast<int>(rng.Below(corpus.size()));
    test.read_test = static_cast<int>(rng.Below(corpus.size()));
    test.writer = corpus[static_cast<size_t>(test.write_test)];
    test.reader = corpus[static_cast<size_t>(test.read_test)];
    tests.push_back(std::move(test));
  }
  return tests;
}

std::vector<ConcurrentTest> GenerateDuplicatePairs(const std::vector<Program>& corpus,
                                                   size_t count, uint64_t seed) {
  SB_CHECK(!corpus.empty());
  Rng rng(seed);
  std::vector<ConcurrentTest> tests;
  tests.reserve(count);
  for (size_t i = 0; i < count; i++) {
    ConcurrentTest test;
    test.write_test = static_cast<int>(rng.Below(corpus.size()));
    test.read_test = test.write_test;
    test.writer = corpus[static_cast<size_t>(test.write_test)];
    test.reader = test.writer;
    tests.push_back(std::move(test));
  }
  return tests;
}

}  // namespace snowboard
