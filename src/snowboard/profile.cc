#include "src/snowboard/profile.h"

#include <unordered_map>

#include "src/sim/stackfilter.h"
#include "src/snowboard/stats.h"
#include "src/util/hash.h"
#include "src/util/trace.h"

namespace snowboard {

bool ProfileCache::Lookup(const Program& program, int test_id, SequentialProfile* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_hash_.find(program.Hash());
  if (it == by_hash_.end()) {
    return false;
  }
  for (const SequentialProfile& cached : it->second) {
    if (cached.program == program) {
      *out = cached;
      out->test_id = test_id;
      return true;
    }
  }
  return false;
}

void ProfileCache::Insert(const SequentialProfile& profile) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SequentialProfile>& bucket = by_hash_[profile.program.Hash()];
  for (const SequentialProfile& cached : bucket) {
    if (cached.program == profile.program) {
      return;  // First insertion wins (all insertions carry identical content anyway).
    }
  }
  bucket.push_back(profile);
}

size_t ProfileCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& [hash, bucket] : by_hash_) {
    total += bucket.size();
  }
  return total;
}

KernelVm& PoolWorkerVm(PoolWorker& worker) {
  return worker.State<KernelVm>([]() { return std::make_unique<KernelVm>(); });
}

SequentialProfile ProfileTestCached(KernelVm& vm, const Program& program, int test_id,
                                    const ProfileOptions& options) {
  // One span per corpus program, covering cache lookup and (on miss) the VM run — the
  // single site both the serial loop and every parallel worker funnel through.
  TRACE_SPAN("profile.program", static_cast<uint64_t>(test_id));
  SequentialProfile profile;
  if (options.cache != nullptr && options.cache->Lookup(program, test_id, &profile)) {
    ActiveCounters().profile_cache_hits++;
    return profile;
  }
  if (options.cache != nullptr) {
    ActiveCounters().profile_cache_misses++;
  }
  profile = ProfileTest(vm, program, test_id, options);
  if (options.cache != nullptr) {
    options.cache->Insert(profile);
  }
  return profile;
}

std::vector<SharedAccess> ExtractSharedAccesses(const Trace& trace, VcpuId vcpu) {
  std::vector<SharedAccess> accesses;
  uint32_t index = 0;
  for (const Event& event : trace) {
    if (event.kind != EventKind::kAccess || event.vcpu != vcpu) {
      continue;
    }
    const Access& a = event.access;
    // §4.1.1: "only non-stack accesses are potentially shared" — the ESP-mask filter.
    if (IsStackAccess(a.esp, a.addr, a.len)) {
      continue;
    }
    SharedAccess shared;
    shared.type = a.type;
    shared.marked_atomic = a.marked_atomic;
    shared.len = a.len;
    shared.addr = a.addr;
    shared.value = a.value;
    shared.site = a.site;
    shared.index = index++;
    accesses.push_back(shared);
  }
  return accesses;
}

void ComputeDoubleFetchLeaders(std::vector<SharedAccess>* accesses) {
  // Tracks, per exact (addr, len) range, the most recent read that has not been separated
  // from the present by an overlapping write. Exact-range tracking is sufficient here:
  // double fetches re-read the same object through the same-width loads.
  struct LastRead {
    size_t access_index;
    SiteId site;
    uint64_t value;
  };
  std::unordered_map<uint64_t, LastRead> last_reads;

  auto range_key = [](const SharedAccess& a) {
    return HashCombine(a.addr, a.len);
  };

  for (size_t i = 0; i < accesses->size(); i++) {
    SharedAccess& a = (*accesses)[i];
    if (a.type == AccessType::kWrite) {
      // Invalidate reads whose range the write overlaps. Exact-key erase plus a sweep for
      // partial overlaps (rare; ranges are <= 8 bytes).
      for (auto it = last_reads.begin(); it != last_reads.end();) {
        const SharedAccess& read = (*accesses)[it->second.access_index];
        bool overlap = a.addr < read.addr + read.len && read.addr < a.addr + a.len;
        it = overlap ? last_reads.erase(it) : ++it;
      }
      continue;
    }
    uint64_t key = range_key(a);
    auto it = last_reads.find(key);
    if (it != last_reads.end() && it->second.site != a.site && it->second.value == a.value) {
      // "two read accesses by different instructions occur sequentially with no intervening
      // write ... and the values read are identical. The feature is set on the first."
      (*accesses)[it->second.access_index].df_leader = true;
    }
    last_reads[key] = LastRead{i, a.site, a.value};
  }
}

SequentialProfile ProfileTest(KernelVm& vm, const Program& program, int test_id,
                              const ProfileOptions& options) {
  SequentialProfile profile;
  profile.test_id = test_id;
  profile.program = program;

  ActiveCounters().vm_profile_runs++;
  vm.RestoreSnapshot();
  Engine::RunOptions opts;
  opts.max_instructions = options.max_instructions;
  Engine::RunResult result =
      vm.engine().Run({MakeProgramRunner(vm.globals(), program, /*task_index=*/0)}, opts);
  profile.ok = result.completed;
  if (!profile.ok) {
    return profile;
  }
  profile.accesses = ExtractSharedAccesses(result.trace, /*vcpu=*/0);
  ComputeDoubleFetchLeaders(&profile.accesses);
  return profile;
}

std::vector<SequentialProfile> ProfileCorpus(KernelVm& vm, const std::vector<Program>& corpus,
                                             const ProfileOptions& options) {
  std::vector<SequentialProfile> profiles;
  profiles.reserve(corpus.size());
  for (size_t i = 0; i < corpus.size(); i++) {
    profiles.push_back(ProfileTestCached(vm, corpus[i], static_cast<int>(i), options));
  }
  return profiles;
}

std::vector<SequentialProfile> ProfileCorpusParallel(const std::vector<Program>& corpus,
                                                     const ProfileOptions& options) {
  int num_workers = options.num_workers > 0 ? options.num_workers : 1;

  // Dynamic index claiming balances load (test lengths vary); slot `i` of the result is
  // written only by the worker that claimed index i, so no profile-level synchronization is
  // needed and the output order is the corpus order regardless of scheduling. Workers come
  // from the shared pool and reuse their parked VMs — no boots after warm-up.
  std::vector<SequentialProfile> profiles(corpus.size());
  IndexClaim claim(corpus.size());
  WorkerPool::Global().Run(num_workers, [&](PoolWorker& worker) {
    KernelVm& vm = PoolWorkerVm(worker);
    size_t i = 0;
    while (claim.Next(&i)) {
      profiles[i] = ProfileTestCached(vm, corpus[i], static_cast<int>(i), options);
    }
  });
  return profiles;
}

}  // namespace snowboard
