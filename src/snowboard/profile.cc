#include "src/snowboard/profile.h"

#include <unordered_map>

#include "src/sim/stackfilter.h"
#include "src/util/hash.h"

namespace snowboard {

std::vector<SharedAccess> ExtractSharedAccesses(const Trace& trace, VcpuId vcpu) {
  std::vector<SharedAccess> accesses;
  uint32_t index = 0;
  for (const Event& event : trace) {
    if (event.kind != EventKind::kAccess || event.vcpu != vcpu) {
      continue;
    }
    const Access& a = event.access;
    // §4.1.1: "only non-stack accesses are potentially shared" — the ESP-mask filter.
    if (IsStackAccess(a.esp, a.addr, a.len)) {
      continue;
    }
    SharedAccess shared;
    shared.type = a.type;
    shared.marked_atomic = a.marked_atomic;
    shared.len = a.len;
    shared.addr = a.addr;
    shared.value = a.value;
    shared.site = a.site;
    shared.index = index++;
    accesses.push_back(shared);
  }
  return accesses;
}

void ComputeDoubleFetchLeaders(std::vector<SharedAccess>* accesses) {
  // Tracks, per exact (addr, len) range, the most recent read that has not been separated
  // from the present by an overlapping write. Exact-range tracking is sufficient here:
  // double fetches re-read the same object through the same-width loads.
  struct LastRead {
    size_t access_index;
    SiteId site;
    uint64_t value;
  };
  std::unordered_map<uint64_t, LastRead> last_reads;

  auto range_key = [](const SharedAccess& a) {
    return HashCombine(a.addr, a.len);
  };

  for (size_t i = 0; i < accesses->size(); i++) {
    SharedAccess& a = (*accesses)[i];
    if (a.type == AccessType::kWrite) {
      // Invalidate reads whose range the write overlaps. Exact-key erase plus a sweep for
      // partial overlaps (rare; ranges are <= 8 bytes).
      for (auto it = last_reads.begin(); it != last_reads.end();) {
        const SharedAccess& read = (*accesses)[it->second.access_index];
        bool overlap = a.addr < read.addr + read.len && read.addr < a.addr + a.len;
        it = overlap ? last_reads.erase(it) : ++it;
      }
      continue;
    }
    uint64_t key = range_key(a);
    auto it = last_reads.find(key);
    if (it != last_reads.end() && it->second.site != a.site && it->second.value == a.value) {
      // "two read accesses by different instructions occur sequentially with no intervening
      // write ... and the values read are identical. The feature is set on the first."
      (*accesses)[it->second.access_index].df_leader = true;
    }
    last_reads[key] = LastRead{i, a.site, a.value};
  }
}

SequentialProfile ProfileTest(KernelVm& vm, const Program& program, int test_id,
                              const ProfileOptions& options) {
  SequentialProfile profile;
  profile.test_id = test_id;
  profile.program = program;

  vm.RestoreSnapshot();
  Engine::RunOptions opts;
  opts.max_instructions = options.max_instructions;
  Engine::RunResult result =
      vm.engine().Run({MakeProgramRunner(vm.globals(), program, /*task_index=*/0)}, opts);
  profile.ok = result.completed;
  if (!profile.ok) {
    return profile;
  }
  profile.accesses = ExtractSharedAccesses(result.trace, /*vcpu=*/0);
  ComputeDoubleFetchLeaders(&profile.accesses);
  return profile;
}

std::vector<SequentialProfile> ProfileCorpus(KernelVm& vm, const std::vector<Program>& corpus,
                                             const ProfileOptions& options) {
  std::vector<SequentialProfile> profiles;
  profiles.reserve(corpus.size());
  for (size_t i = 0; i < corpus.size(); i++) {
    profiles.push_back(ProfileTest(vm, corpus[i], static_cast<int>(i), options));
  }
  return profiles;
}

}  // namespace snowboard
