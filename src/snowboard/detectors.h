// Bug detectors (§3.1 "a bug detector monitors executions", §4.4.1 is_bug).
//
// Two oracles, as in the paper's implementation:
//   * Console checker — greps the captured guest console for oops/panic/fs-error lines
//     (plus the engine's panic flag itself).
//   * Data-race detector — an Eraser-style lockset analysis over the trial's event trace
//     (the DataCollider/SKI race-detector analog): two accesses from different vCPUs to
//     overlapping ranges, at least one write, not both marked-atomic, with disjoint
//     locksets. RCU read-side sections are correctly NOT treated as excluding writers.
// Plus the post-mortem PMC verifier used by §5.3.2's accuracy measurement: did the predicted
// memory channel actually carry data from the writer to the reader in this trial?
#ifndef SRC_SNOWBOARD_DETECTORS_H_
#define SRC_SNOWBOARD_DETECTORS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/engine.h"
#include "src/snowboard/pmc.h"
#include "src/util/flatmap.h"

namespace snowboard {

struct RaceReport {
  SiteId write_site = kInvalidSite;  // The write side (first write for write/write races).
  SiteId other_site = kInvalidSite;
  GuestAddr addr = kGuestNull;       // Where the race was observed.
  bool write_write = false;

  bool operator==(const RaceReport&) const = default;

  // Order-insensitive signature for dedup across trials.
  uint64_t Signature() const;
};

struct DetectorResult {
  bool panicked = false;
  std::string panic_message;
  std::vector<std::string> console_hits;  // Suspicious console lines.
  std::vector<RaceReport> races;          // Deduped by site-pair signature.
};

// The race detector with persistent scratch. One instance is meant to live across an entire
// trial loop: all working state (vector clocks, locksets, release-clock maps, remembered
// accesses, signature dedup) is reset-in-place per Detect call, so after the first few
// trials grow the tables to their high-water capacity, a Detect call performs no heap
// allocation beyond appending to the caller's `races` vector (itself reusable).
//
// Detection is a pure function of the trace: two detectors fed the same trace produce
// byte-identical reports, and scratch reuse cannot leak state between trials.
class RaceDetector {
 public:
  // The detector supports up to three vCPUs: the paper's two-thread configuration plus the
  // §6 three-thread extension.
  static constexpr int kMaxVcpus = 3;

  // Analyzes `trace` and replaces the contents of `races` with the deduped reports, in
  // trace order (the same order the legacy DetectRaces free function produced).
  void Detect(const Trace& trace, std::vector<RaceReport>* races);

 private:
  using VectorClock = std::array<uint64_t, kMaxVcpus>;

  // A remembered access for cross-thread comparison, deduped per (granule, vcpu) by
  // (site, type); the most recent instance is kept (it has the least happens-before
  // coverage, so it is the most likely to still race).
  struct Remembered {
    SiteId site;
    AccessType type;
    bool marked;
    GuestAddr addr;
    uint8_t len;
    uint64_t own_ts;  // The owner's own clock component when the access executed.
    std::vector<GuestAddr> lockset;
  };

  // Slot-reusing list: `used` counts live entries; dead slots keep their lockset capacity
  // so refilling them allocates nothing.
  struct RememberedList {
    std::vector<Remembered> entries;
    size_t used = 0;
  };

  struct GranuleSlot {
    RememberedList per_vcpu[kMaxVcpus];
  };

  GranuleSlot& GetGranule(GuestAddr granule);

  VectorClock clocks_[kMaxVcpus] = {};
  std::vector<GuestAddr> locksets_[kMaxVcpus];  // Unique lock addrs held, unordered.
  FlatMap<GuestAddr, VectorClock> lock_release_clocks_;
  FlatMap<GuestAddr, VectorClock> atomic_release_clocks_;  // Keyed by cell addr.
  FlatMap<GuestAddr, uint32_t> granule_index_;  // granule addr -> granule_pool_ slot.
  std::vector<GranuleSlot> granule_pool_;
  size_t granule_pool_used_ = 0;
  FlatSet<uint64_t> seen_signatures_;
};

// Order-sensitive hash of a full detector output (panic flag + message, console hits, and
// race reports in trace order). Detection is a pure function of the trace, so two trials
// with the same interleaving fingerprint identically — which is what lets a replay token
// carry the expected fingerprint and a replayed trial prove it reproduced the original.
uint64_t DetectorFingerprint(const DetectorResult& result);

// Finding kinds as they appear in a trial's detector output; the dedup key of a finding is
// RaceReport::Signature() for races and Fnv1a(line) for console hits and panic messages —
// the exact keys the explorer's cross-trial dedup sets use.
enum class FindingKind : uint8_t { kRace = 0, kConsole = 1, kPanic = 2 };

// True if `result` contains a finding of `kind` whose dedup key equals `key` — the
// minimizer's acceptance test ("does the finding of interest still fire?").
bool DetectorResultContainsKey(const DetectorResult& result, FindingKind kind, uint64_t key);

// Runs both oracles over a finished trial.
DetectorResult RunDetectors(const Engine::RunResult& result);

// Reusable-scratch variant for the trial hot loop: fills `out` in place (recycling its
// vectors' capacity) using `detector`'s persistent working state.
void RunDetectors(const Engine::RunResult& result, RaceDetector* detector,
                  DetectorResult* out);

// The race detector alone (exposed for tests and post-mortem analysis).
std::vector<RaceReport> DetectRaces(const Trace& trace);

// True if `line` matches a suspicious-console pattern.
bool IsSuspiciousConsoleLine(const std::string& line);

// §5.3.2 PMC accuracy: true if the trial contains a write by `writer_vcpu` matching the
// hint's write side and a LATER read by `reader_vcpu` matching the hint's read side whose
// overlapping bytes carry the written value (actual writer→reader data flow).
bool PmcChannelExercised(const Trace& trace, const PmcKey& hint, VcpuId writer_vcpu,
                         VcpuId reader_vcpu);

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_DETECTORS_H_
