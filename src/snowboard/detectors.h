// Bug detectors (§3.1 "a bug detector monitors executions", §4.4.1 is_bug).
//
// Two oracles, as in the paper's implementation:
//   * Console checker — greps the captured guest console for oops/panic/fs-error lines
//     (plus the engine's panic flag itself).
//   * Data-race detector — an Eraser-style lockset analysis over the trial's event trace
//     (the DataCollider/SKI race-detector analog): two accesses from different vCPUs to
//     overlapping ranges, at least one write, not both marked-atomic, with disjoint
//     locksets. RCU read-side sections are correctly NOT treated as excluding writers.
// Plus the post-mortem PMC verifier used by §5.3.2's accuracy measurement: did the predicted
// memory channel actually carry data from the writer to the reader in this trial?
#ifndef SRC_SNOWBOARD_DETECTORS_H_
#define SRC_SNOWBOARD_DETECTORS_H_

#include <string>
#include <vector>

#include "src/sim/engine.h"
#include "src/snowboard/pmc.h"

namespace snowboard {

struct RaceReport {
  SiteId write_site = kInvalidSite;  // The write side (first write for write/write races).
  SiteId other_site = kInvalidSite;
  GuestAddr addr = kGuestNull;       // Where the race was observed.
  bool write_write = false;

  // Order-insensitive signature for dedup across trials.
  uint64_t Signature() const;
};

struct DetectorResult {
  bool panicked = false;
  std::string panic_message;
  std::vector<std::string> console_hits;  // Suspicious console lines.
  std::vector<RaceReport> races;          // Deduped by site-pair signature.
};

// Runs both oracles over a finished trial.
DetectorResult RunDetectors(const Engine::RunResult& result);

// The race detector alone (exposed for tests and post-mortem analysis).
std::vector<RaceReport> DetectRaces(const Trace& trace);

// True if `line` matches a suspicious-console pattern.
bool IsSuspiciousConsoleLine(const std::string& line);

// §5.3.2 PMC accuracy: true if the trial contains a write by `writer_vcpu` matching the
// hint's write side and a LATER read by `reader_vcpu` matching the hint's read side whose
// overlapping bytes carry the written value (actual writer→reader data flow).
bool PmcChannelExercised(const Trace& trace, const PmcKey& hint, VcpuId writer_vcpu,
                         VcpuId reader_vcpu);

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_DETECTORS_H_
