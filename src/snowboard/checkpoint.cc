#include "src/snowboard/checkpoint.h"

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "src/util/counters.h"
#include "src/util/fault.h"
#include "src/util/fs.h"
#include "src/util/hash.h"
#include "src/util/log.h"
#include "src/util/strings.h"
#include "src/util/trace.h"

namespace snowboard {

namespace {

constexpr const char* kManifestHeader = "snowboard-manifest-v1";
constexpr const char* kManifestName = "MANIFEST";

std::string HashHex(uint64_t hash) {
  return StrPrintf("%016llx", static_cast<unsigned long long>(hash));
}

}  // namespace

CheckpointStore::CheckpointStore(const std::string& dir, FaultInjector* fault)
    : dir_(dir), fault_(fault) {
  ok_ = !dir.empty() && EnsureDirectory(dir);
  if (ok_) {
    LoadManifest();
  }
}

bool CheckpointStore::ValidName(const std::string& name) {
  if (name.empty() || name == kManifestName) {
    return false;
  }
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '.' || c == '_' || c == '-';
    if (!ok) {
      return false;
    }
  }
  return true;
}

std::string CheckpointStore::PathFor(const std::string& name) const {
  return dir_ + "/" + name;
}

std::string CheckpointStore::JournalPathFor(const std::string& name) const {
  return dir_ + "/" + name + ".journal";
}

std::string CheckpointStore::ManifestText() const {
  std::ostringstream os;
  os << kManifestHeader << "\n";
  for (const auto& [name, entry] : entries_) {
    os << "entry " << name << ' ' << entry.size << ' ' << HashHex(entry.hash) << "\n";
  }
  return os.str();
}

bool CheckpointStore::WriteManifestLocked() {
  return AtomicWriteFile(PathFor(kManifestName), ManifestText(), fault_);
}

void CheckpointStore::LoadManifest() {
  std::optional<std::string> text = ReadFileContents(PathFor(kManifestName));
  if (!text.has_value()) {
    return;  // Fresh directory.
  }
  std::istringstream is(*text);
  std::string line;
  if (!std::getline(is, line) || line != kManifestHeader) {
    SB_LOG(kWarn) << "checkpoint: unrecognized manifest in " << dir_ << "; ignoring";
    return;
  }
  std::map<std::string, Entry> entries;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    std::string name;
    std::string hash_hex;
    Entry entry;
    fields >> tag >> name >> entry.size >> hash_hex;
    if (fields.fail() || tag != "entry" || !ValidName(name) || hash_hex.size() != 16) {
      SB_LOG(kWarn) << "checkpoint: malformed manifest line in " << dir_ << "; ignoring";
      return;  // A torn manifest would be a torn AtomicWriteFile — treat all as suspect.
    }
    entry.hash = std::strtoull(hash_hex.c_str(), nullptr, 16);
    entries[name] = entry;
  }
  entries_ = std::move(entries);
}

bool CheckpointStore::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) != 0;
}

size_t CheckpointStore::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

bool CheckpointStore::Put(const std::string& name, const std::string& contents) {
  TRACE_SPAN("checkpoint.put", contents.size());
  if (!ok_ || !ValidName(name)) {
    SB_LOG(kWarn) << "checkpoint: rejecting Put of '" << name << "'";
    return false;
  }
  if (!AtomicWriteFile(PathFor(name), contents, fault_)) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.size = contents.size();
  entry.hash = Fnv1a(contents);
  entries_[name] = entry;
  if (!WriteManifestLocked()) {
    // The data file is durable but unreferenced; resume recomputes the stage.
    entries_.erase(name);
    return false;
  }
  GlobalPipelineCounters().checkpoint_writes.fetch_add(1, std::memory_order_relaxed);
  GlobalPipelineCounters().checkpoint_bytes.fetch_add(contents.size(),
                                                      std::memory_order_relaxed);
  return true;
}

std::optional<std::string> CheckpointStore::Get(const std::string& name) const {
  TRACE_SPAN("checkpoint.get");
  Entry expected;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      return std::nullopt;
    }
    expected = it->second;
  }
  std::optional<std::string> contents = ReadFileContents(PathFor(name));
  if (!contents.has_value()) {
    SB_LOG(kWarn) << "checkpoint: manifest references missing entry " << name;
    return std::nullopt;
  }
  if (contents->size() != expected.size || Fnv1a(*contents) != expected.hash) {
    SB_LOG(kWarn) << "checkpoint: entry " << name << " failed verification (corrupt or "
                  << "truncated); recomputing";
    return std::nullopt;
  }
  GlobalPipelineCounters().checkpoint_loads.fetch_add(1, std::memory_order_relaxed);
  return contents;
}

bool CheckpointStore::Reset() {
  if (!ok_) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  bool ok = WriteManifestLocked();
  std::error_code ec;
  for (const auto& dirent : std::filesystem::directory_iterator(dir_, ec)) {
    if (dirent.path().extension() == ".journal") {
      ok = RemoveFileIfExists(dirent.path().string()) && ok;
    }
  }
  return ok;
}

bool CheckpointStore::AppendJournal(const std::string& name, const std::string& record) {
  TRACE_SPAN("checkpoint.journal_append", record.size());
  if (!ok_ || !ValidName(name) || record.find('\n') != std::string::npos) {
    SB_LOG(kWarn) << "checkpoint: rejecting journal append to '" << name << "'";
    return false;
  }
  std::string line = HashHex(Fnv1a(record)) + " " + record;
  std::lock_guard<std::mutex> lock(mutex_);
  return AppendLineDurable(JournalPathFor(name), line, fault_);
}

std::vector<std::string> CheckpointStore::ReadJournal(const std::string& name) const {
  TRACE_SPAN("checkpoint.journal_read");
  std::vector<std::string> records;
  if (!ok_ || !ValidName(name)) {
    return records;
  }
  std::optional<std::string> text = ReadFileContents(JournalPathFor(name));
  if (!text.has_value()) {
    return records;
  }
  std::istringstream is(*text);
  std::string line;
  while (std::getline(is, line)) {
    size_t space = line.find(' ');
    if (space != 16) {
      break;  // Truncated tail or garbage: stop replay at the last verified record.
    }
    std::string payload = line.substr(space + 1);
    if (HashHex(Fnv1a(payload)) != line.substr(0, 16)) {
      SB_LOG(kWarn) << "checkpoint: journal " << name << " record failed checksum; "
                    << "dropping it and the tail";
      break;
    }
    records.push_back(std::move(payload));
  }
  return records;
}

}  // namespace snowboard
