#include "src/snowboard/checkpoint.h"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "src/util/counters.h"
#include "src/util/fault.h"
#include "src/util/fs.h"
#include "src/util/hash.h"
#include "src/util/log.h"
#include "src/util/strings.h"
#include "src/util/trace.h"

namespace snowboard {

namespace {

constexpr const char* kManifestHeader = "snowboard-manifest-v1";
constexpr const char* kManifestName = "MANIFEST";

std::string HashHex(uint64_t hash) {
  return StrPrintf("%016llx", static_cast<unsigned long long>(hash));
}

}  // namespace

CheckpointStore::CheckpointStore(const std::string& dir, FaultInjector* fault)
    : dir_(dir), fault_(fault) {
  ok_ = !dir.empty() && EnsureDirectory(dir);
  if (ok_) {
    LoadManifest();
  }
}

CheckpointStore::~CheckpointStore() {
  // Backstop: whatever is still buffered becomes durable before the store goes away, so
  // batching stays invisible to callers that append and then destroy the store.
  FlushJournals();
}

bool CheckpointStore::ValidName(const std::string& name) {
  if (name.empty() || name == kManifestName) {
    return false;
  }
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '.' || c == '_' || c == '-';
    if (!ok) {
      return false;
    }
  }
  return true;
}

std::string CheckpointStore::PathFor(const std::string& name) const {
  return dir_ + "/" + name;
}

std::string CheckpointStore::JournalPathFor(const std::string& name) const {
  return dir_ + "/" + name + ".journal";
}

std::string CheckpointStore::ManifestText() const {
  std::ostringstream os;
  os << kManifestHeader << "\n";
  for (const auto& [name, entry] : entries_) {
    os << "entry " << name << ' ' << entry.size << ' ' << HashHex(entry.hash) << "\n";
  }
  return os.str();
}

bool CheckpointStore::WriteManifestLocked() {
  return AtomicWriteFile(PathFor(kManifestName), ManifestText(), fault_);
}

void CheckpointStore::LoadManifest() {
  std::optional<std::string> text = ReadFileContents(PathFor(kManifestName));
  if (!text.has_value()) {
    return;  // Fresh directory.
  }
  std::istringstream is(*text);
  std::string line;
  if (!std::getline(is, line) || line != kManifestHeader) {
    SB_LOG(kWarn) << "checkpoint: unrecognized manifest in " << dir_ << "; ignoring";
    return;
  }
  std::map<std::string, Entry> entries;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    std::string name;
    std::string hash_hex;
    Entry entry;
    fields >> tag >> name >> entry.size >> hash_hex;
    if (fields.fail() || tag != "entry" || !ValidName(name) || hash_hex.size() != 16) {
      SB_LOG(kWarn) << "checkpoint: malformed manifest line in " << dir_ << "; ignoring";
      return;  // A torn manifest would be a torn AtomicWriteFile — treat all as suspect.
    }
    entry.hash = std::strtoull(hash_hex.c_str(), nullptr, 16);
    entries[name] = entry;
  }
  entries_ = std::move(entries);
}

bool CheckpointStore::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) != 0;
}

size_t CheckpointStore::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

bool CheckpointStore::Put(const std::string& name, const std::string& contents) {
  TRACE_SPAN("checkpoint.put", contents.size());
  if (!ok_ || !ValidName(name)) {
    SB_LOG(kWarn) << "checkpoint: rejecting Put of '" << name << "'";
    return false;
  }
  if (!AtomicWriteFile(PathFor(name), contents, fault_)) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.size = contents.size();
  entry.hash = Fnv1a(contents);
  entries_[name] = entry;
  if (!WriteManifestLocked()) {
    // The data file is durable but unreferenced; resume recomputes the stage.
    entries_.erase(name);
    return false;
  }
  ActiveCounters().checkpoint_writes.fetch_add(1, std::memory_order_relaxed);
  ActiveCounters().checkpoint_bytes.fetch_add(contents.size(), std::memory_order_relaxed);
  return true;
}

std::optional<std::string> CheckpointStore::Get(const std::string& name) const {
  TRACE_SPAN("checkpoint.get");
  Entry expected;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      return std::nullopt;
    }
    expected = it->second;
  }
  std::optional<std::string> contents = ReadFileContents(PathFor(name));
  if (!contents.has_value()) {
    SB_LOG(kWarn) << "checkpoint: manifest references missing entry " << name;
    return std::nullopt;
  }
  if (contents->size() != expected.size || Fnv1a(*contents) != expected.hash) {
    SB_LOG(kWarn) << "checkpoint: entry " << name << " failed verification (corrupt or "
                  << "truncated); recomputing";
    return std::nullopt;
  }
  ActiveCounters().checkpoint_loads.fetch_add(1, std::memory_order_relaxed);
  return contents;
}

bool CheckpointStore::Reset() {
  if (!ok_) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  pending_.clear();  // Buffered journal records die with their journals.
  bool ok = WriteManifestLocked();
  std::error_code ec;
  for (const auto& dirent : std::filesystem::directory_iterator(dir_, ec)) {
    if (dirent.path().extension() == ".journal") {
      ok = RemoveFileIfExists(dirent.path().string()) && ok;
    }
  }
  return ok;
}

bool CheckpointStore::AppendJournal(const std::string& name, const std::string& record) {
  TRACE_SPAN("checkpoint.journal_append", record.size());
  if (!ok_ || !ValidName(name) || record.find('\n') != std::string::npos) {
    SB_LOG(kWarn) << "checkpoint: rejecting journal append to '" << name << "'";
    return false;
  }
  std::string line = HashHex(Fnv1a(record)) + " " + record;
  std::lock_guard<std::mutex> lock(mutex_);
  PendingJournal& pending = pending_[name];
  pending.bytes += line.size();
  pending.lines.push_back(std::move(line));
  if (pending.lines.size() < journal_flush_records_ && pending.bytes < journal_flush_bytes_) {
    return true;  // Buffered; a later threshold crossing or FlushJournals commits it.
  }
  return FlushJournalLocked(name);
}

void CheckpointStore::SetJournalBatch(size_t records, size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  journal_flush_records_ = records < 1 ? 1 : records;
  journal_flush_bytes_ = bytes < 1 ? 1 : bytes;
}

bool CheckpointStore::FlushJournalLocked(const std::string& name) const {
  auto it = pending_.find(name);
  if (it == pending_.end() || it->second.lines.empty()) {
    return true;
  }
  auto start = std::chrono::steady_clock::now();
  std::vector<std::string> lines = std::move(it->second.lines);
  it->second.lines.clear();
  it->second.bytes = 0;
  bool ok = AppendLinesDurable(JournalPathFor(name), lines, fault_);
  if (ok) {
    uint64_t nanos = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             start)
            .count());
    PipelineCounters& counters = ActiveCounters();
    counters.journal_batch_flushes.fetch_add(1, std::memory_order_relaxed);
    counters.journal_batch_records.fetch_add(lines.size(), std::memory_order_relaxed);
    counters.journal_flush_nanos.fetch_add(nanos, std::memory_order_relaxed);
    TRACE_COUNTER("checkpoint.journal_batch_records", lines.size());
  }
  return ok;
}

bool CheckpointStore::FlushJournals() {
  if (!ok_) {
    return false;
  }
  if (fault_ != nullptr && fault_->crashed()) {
    return false;  // A dead process writes nothing; the batch is lost, as in a real crash.
  }
  std::lock_guard<std::mutex> lock(mutex_);
  bool ok = true;
  for (auto& [name, pending] : pending_) {
    ok = FlushJournalLocked(name) && ok;
  }
  return ok;
}

std::vector<std::string> CheckpointStore::ReadJournal(const std::string& name) const {
  TRACE_SPAN("checkpoint.journal_read");
  std::vector<std::string> records;
  if (!ok_ || !ValidName(name)) {
    return records;
  }
  {
    // Read-your-writes: commit this journal's still-buffered records first so batching
    // never makes a same-process reader miss an append that returned true.
    std::lock_guard<std::mutex> lock(mutex_);
    if (fault_ == nullptr || !fault_->crashed()) {
      FlushJournalLocked(name);
    }
  }
  std::optional<std::string> text = ReadFileContents(JournalPathFor(name));
  if (!text.has_value()) {
    return records;
  }
  std::istringstream is(*text);
  std::string line;
  while (std::getline(is, line)) {
    size_t space = line.find(' ');
    if (space != 16) {
      break;  // Truncated tail or garbage: stop replay at the last verified record.
    }
    std::string payload = line.substr(space + 1);
    if (HashHex(Fnv1a(payload)) != line.substr(0, 16)) {
      SB_LOG(kWarn) << "checkpoint: journal " << name << " record failed checksum; "
                    << "dropping it and the tail";
      break;
    }
    records.push_back(std::move(payload));
  }
  return records;
}

}  // namespace snowboard
