// Concurrent test execution — §4.4, Algorithm 2.
//
// A concurrent test runs its writer test on vCPU 0 and reader test on vCPU 1 from the fixed
// snapshot, up to NUMBER_OF_TRIALS times, each trial with deterministic randomness
// (random.seed(SEED + trial)). The PmcScheduler implements the paper's scheduling
// primitives:
//   * performed_pmc_access — the access just executed matches a current-PMC side (full
//     feature comparison: access type, memory range, value, instruction); remembers the
//     thread's PREVIOUS access into `flags` and flips a coin to switch.
//   * pmc_access_coming — the access matches a `flags` entry, i.e. the PMC access is about
//     to be performed; coin-flip switch.
//   * is_live — handled by the engine's liveness monitor (the scheduler is notified).
// At the end of each trial, a different PMC whose read AND write both appeared in the trial
// may be adopted into current_pmcs (incidental-PMC exploration).
#ifndef SRC_SNOWBOARD_EXPLORER_H_
#define SRC_SNOWBOARD_EXPLORER_H_

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/sim/scheduler.h"
#include "src/snowboard/detectors.h"
#include "src/snowboard/select.h"
#include "src/util/rng.h"

namespace snowboard {

// Full-feature key of an access, used by flag and PMC matching.
uint64_t AccessFeatureHash(AccessType type, GuestAddr addr, uint8_t len, SiteId site,
                           uint64_t value);

// Reverse index from write-side features to PMCs, supporting incidental-PMC discovery
// (Algorithm 2 line 26). Built once per pipeline; shared read-only across workers.
class PmcMatcher {
 public:
  PmcMatcher(const std::vector<Pmc>* pmcs, size_t max_indexed = 200'000);

  // PMCs whose write side matches `write_feature_hash`.
  const std::vector<uint32_t>* CandidatesForWrite(uint64_t write_feature_hash) const;
  const std::vector<Pmc>& pmcs() const { return *pmcs_; }

 private:
  const std::vector<Pmc>* pmcs_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> by_write_feature_;
};

// A scheduler that is reseeded at the start of every trial (deterministic replay).
class TrialScheduler : public Scheduler {
 public:
  virtual void SeedTrial(uint64_t seed) {}

  // Switch decisions taken since construction (cumulative; pure telemetry — the explorer
  // emits it as a per-trial trace counter, so traces show how actively the scheduler
  // steered each trial). Derived AfterAccess implementations account into it.
  uint64_t switch_decisions() const { return switch_decisions_; }

 protected:
  uint64_t switch_decisions_ = 0;
};

// Baseline scheduler used for Random/Duplicate pairing (Table 3): preempts at memory
// accesses with a fixed probability, with no knowledge of PMCs.
class RandomPreemptScheduler : public TrialScheduler {
 public:
  explicit RandomPreemptScheduler(uint32_t period = 16) : period_(period) {}
  void SeedTrial(uint64_t seed) override { rng_.Seed(seed); }
  bool AfterAccess(VcpuId vcpu, const Access& access) override {
    bool do_switch = rng_.Chance(1, period_);
    switch_decisions_ += do_switch ? 1 : 0;
    return do_switch;
  }

 private:
  uint32_t period_;
  Rng rng_;
};

// The Algorithm 2 scheduler.
class PmcScheduler : public TrialScheduler {
 public:
  PmcScheduler() = default;

  void ResetForTest(const PmcKey& initial_pmc);  // current_pmcs = {pmc}; flags = ∅.
  void SeedTrial(uint64_t seed) override;  // random.seed(SEED + trial); last_access = None.
  void AddPmc(const PmcKey& pmc);                // Incidental adoption.
  const std::vector<PmcKey>& current_pmcs() const { return current_pmcs_; }
  size_t flag_count() const { return flags_.size(); }

  // Ablation toggle: disable the flags mechanism (pmc_access_coming never fires and no
  // flags are learned); only performed_pmc_access switches remain.
  void set_flags_enabled(bool enabled) { flags_enabled_ = enabled; }

  bool AfterAccess(VcpuId vcpu, const Access& access) override;

 private:
  bool PerformedPmcAccess(const Access& access) const;
  bool PmcAccessComing(const Access& access) const;

  std::vector<PmcKey> current_pmcs_;
  std::unordered_set<uint64_t> pmc_feature_hashes_;  // Both sides of every current PMC.
  std::unordered_set<uint64_t> flags_;               // Persist across trials of one test.
  // Address-level prefilter over both exact sets above: AfterAccess early-exits when the
  // access address provably belongs to neither PMC sides nor flags (the overwhelmingly
  // common case), skipping the feature hash and both set probes.
  AccessAddrFilter addr_filter_;
  std::optional<Access> last_access_[3];             // Up to kMaxTestVcpus threads.
  bool flags_enabled_ = true;
  Rng rng_;
};

class FaultInjector;  // util/fault.h.

struct ExplorerOptions {
  int num_trials = 64;  // "Every PMC was explored with at most 64 trials" (§5.1).
  uint64_t seed = 2021;
  uint64_t max_instructions = 400'000;
  // End the test as soon as ANY detector fires. Off by default: Algorithm 2 records
  // findings and keeps exploring (an early ubiquitous finding — the #13 allocator race —
  // would otherwise mask rarer bugs in the same test).
  bool stop_on_bug = false;
  // If nonzero, stop as soon as a finding classifies to this Table 2 issue id — used by the
  // §5.4 trials-to-expose comparison against SKI.
  int target_issue = 0;
  bool adopt_incidental = true;  // Algorithm 2 lines 26-27.
  // Hung-trial policy: a trial attempt that trips the liveness monitor (or an injected
  // hang) is discarded — before detectors see it — and re-run up to this many times, with
  // the same seed from the same restored snapshot. Retries are counted in
  // ExploreOutcome::trials_retried; a deterministic real hang exhausts the retries and is
  // then accepted as before, so results are unchanged — only accounted.
  int max_trial_retries = 0;
  // Crash/hang fault-injection hook (crash-sweep harness); nullptr = off. A crash makes
  // the trial loop unwind immediately with a partial outcome the caller must discard.
  FaultInjector* fault = nullptr;
  // Record the schedule of every first-seen finding and shrink it with the delta-debugging
  // minimizer (minimize.h) after the trial loop, so findings ship with a minimal replay
  // token. Minimization replays are extra engine runs; disable for raw-throughput runs.
  bool minimize_schedules = true;
  int minimize_probes = 48;  // Per-finding replay budget for the minimizer.
};

// The recorded reproducer of one first-seen finding: enough to rebuild a replay token
// (serialize.h) once the pipeline layer attaches the program pair and issue id. `key` is
// the same dedup key the explorer's first-seen sets use (race Signature(), FNV-1a of the
// console line / panic message), so findings classified later can be joined back to their
// capture. `fingerprint` is DetectorFingerprint() of the replayed trial that the final
// (minimized) schedule was verified against.
struct TrialCapture {
  uint8_t kind = 0;  // FindingKind.
  uint64_t finding_key = 0;
  int trial = -1;
  uint64_t fingerprint = 0;
  std::string schedule;        // RecordedSchedule::ToString() of the (minimized) schedule.
  uint32_t orig_len = 0;       // Decisions in the raw recording.
  uint32_t orig_switches = 0;  // Switches in the raw recording.
  uint32_t min_switches = 0;   // Switches surviving minimization.

  bool operator==(const TrialCapture&) const = default;
};

struct ExploreOutcome {
  int trials_run = 0;
  int trials_retried = 0;          // Hung attempts discarded and re-run.
  bool bug_found = false;
  int first_bug_trial = -1;        // 0-based trial index of the first detector hit.
  bool target_found = false;       // Only meaningful with options.target_issue != 0.
  int first_target_trial = -1;
  bool channel_exercised = false;  // §5.3.2: the predicted PMC carried data in >= 1 trial.
  bool any_hang = false;
  std::vector<RaceReport> races;            // Deduped across trials.
  std::vector<std::string> console_hits;    // Deduped.
  std::vector<std::string> panic_messages;  // Deduped.
  std::vector<TrialCapture> captures;       // One per first-seen finding (replay tokens).

  bool operator==(const ExploreOutcome&) const = default;
};

// Runs Algorithm 2 for one concurrent test. `matcher` may be null (disables adoption).
ExploreOutcome ExploreConcurrentTest(KernelVm& vm, const ConcurrentTest& test,
                                     const PmcMatcher* matcher,
                                     const ExplorerOptions& options);

// Generic trial loop with an arbitrary reseedable scheduler — used for the Random/Duplicate
// pairing baselines and the SKI comparison (§5.4). No incidental-PMC adoption; the channel
// check runs only if `check_channel` (the baselines carry no hint).
ExploreOutcome ExploreWithScheduler(KernelVm& vm, const ConcurrentTest& test,
                                    TrialScheduler& scheduler, bool check_channel,
                                    const ExplorerOptions& options);

// --- §6 "Testing Thread Count" extension: three-thread concurrent tests. ---
//
// "Snowboard should apply to input spaces of more dimensions, e.g., with PMCs of 1 shared
// write with 2 reads, or PMC chains." A ThreeThreadTest runs three sequential tests on three
// vCPUs; both hints are installed as current PMCs, so Algorithm 2's switch points cover
// either a fan-out (one write, two reads: hint_a/hint_b share the write side) or a chain
// (t0 -w-> t1 -w-> t2: hint_b's writer lives in t1).
struct ThreeThreadTest {
  Program programs[3];
  int test_ids[3] = {-1, -1, -1};
  PmcKey hint_a;  // Typically: t0's write -> t1's read.
  PmcKey hint_b;  // Fan-out: t0's write -> t2's read; chain: t1's write -> t2's read.
};

ExploreOutcome ExploreThreeThreaded(KernelVm& vm, const ThreeThreadTest& test,
                                    const ExplorerOptions& options);

}  // namespace snowboard

#endif  // SRC_SNOWBOARD_EXPLORER_H_
