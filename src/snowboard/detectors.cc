#include "src/snowboard/detectors.h"

#include <algorithm>
#include <array>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/util/hash.h"

namespace snowboard {

namespace {

// The detector supports up to three vCPUs: the paper's two-thread configuration plus the
// §6 three-thread extension.
constexpr int kMaxVcpus = 3;

using VectorClock = std::array<uint64_t, kMaxVcpus>;

void JoinClock(VectorClock& into, const VectorClock& from) {
  for (int i = 0; i < kMaxVcpus; i++) {
    into[i] = std::max(into[i], from[i]);
  }
}

// A remembered access for cross-thread comparison, deduped per (granule, vcpu) by
// (site, type); the most recent instance is kept (it has the least happens-before
// coverage, so it is the most likely to still race).
struct Remembered {
  SiteId site;
  AccessType type;
  bool marked;
  GuestAddr addr;
  uint8_t len;
  std::set<GuestAddr> lockset;
  uint64_t own_ts;  // The owner's own clock component when the access executed.
};

constexpr size_t kMaxRememberedPerGranuleVcpu = 16;

bool LocksetsDisjoint(const std::set<GuestAddr>& a, const std::set<GuestAddr>& b) {
  for (GuestAddr lock : a) {
    if (b.count(lock) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

uint64_t RaceReport::Signature() const {
  SiteId lo = std::min(write_site, other_site);
  SiteId hi = std::max(write_site, other_site);
  return HashAll(lo, hi);
}

bool IsSuspiciousConsoleLine(const std::string& line) {
  static constexpr const char* kPatterns[] = {
      "BUG:",
      "EXT4-fs error",
      "blk_update_request: I/O error",
      "WARNING:",
      "Oops",
  };
  for (const char* pattern : kPatterns) {
    if (line.find(pattern) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::vector<RaceReport> DetectRaces(const Trace& trace) {
  // FastTrack-style happens-before tracking:
  //   * per-vCPU vector clocks, incremented per event;
  //   * lock release -> subsequent acquire of the same lock object: HB edge;
  //   * marked-atomic store -> subsequent marked-atomic load of the same cell: HB edge
  //     (release/acquire semantics — this is what makes an RCU publish order the writer's
  //     initialization before the reader's dereference, eliminating init-then-publish false
  //     positives that a pure lockset analysis reports);
  //   * Eraser-style locksets on top (a common lock suppresses even without an HB edge in
  //     our serialized replay).
  // A race: overlapping ranges, different vCPUs, at least one write, not both marked, no
  // common lock, and the earlier access NOT happened-before the later one.
  VectorClock clocks[kMaxVcpus] = {};
  std::unordered_map<int, std::set<GuestAddr>> locksets;
  std::unordered_map<GuestAddr, VectorClock> lock_release_clocks;
  std::unordered_map<GuestAddr, VectorClock> atomic_release_clocks;  // Keyed by cell addr.

  struct GranuleState {
    std::vector<Remembered> per_vcpu[kMaxVcpus];
  };
  std::unordered_map<GuestAddr, GranuleState> granules;

  std::vector<RaceReport> races;
  std::unordered_set<uint64_t> seen_signatures;

  for (const Event& event : trace) {
    if (event.vcpu < 0 || event.vcpu >= kMaxVcpus) {
      continue;
    }
    int v = event.vcpu;
    clocks[v][v]++;

    switch (event.kind) {
      case EventKind::kLockAcquire:
      case EventKind::kSharedAcquire: {
        locksets[v].insert(event.lock_addr);
        auto it = lock_release_clocks.find(event.lock_addr);
        if (it != lock_release_clocks.end()) {
          JoinClock(clocks[v], it->second);
        }
        continue;
      }
      case EventKind::kLockRelease:
      case EventKind::kSharedRelease: {
        locksets[v].erase(event.lock_addr);
        VectorClock& release = lock_release_clocks[event.lock_addr];
        JoinClock(release, clocks[v]);
        continue;
      }
      case EventKind::kRcuReadLock:
      case EventKind::kRcuReadUnlock:
      case EventKind::kYield:
        continue;
      case EventKind::kAccess:
        break;
    }

    const Access& a = event.access;
    if (a.type == AccessType::kWrite) {
      if (a.marked_atomic) {
        // Release semantics for marked stores (rcu_assign_pointer, WRITE_ONCE, unlocks).
        atomic_release_clocks[a.addr] = clocks[v];
      } else {
        // A plain overwrite breaks the publish chain through this cell.
        atomic_release_clocks.erase(a.addr);
      }
    } else {
      // ANY read observing a release-store's cell acquires it — this models the
      // dependency ordering real hardware gives a pointer chase (reading a published
      // pointer orders the publisher's earlier initialization before the dependent
      // accesses), so init-then-publish patterns are not reported even when the reader's
      // load is unmarked. The paper's #1 double fetch is still caught: its crash oracle
      // fires, and the re-fetch pattern itself is classified from the panic site.
      auto it = atomic_release_clocks.find(a.addr);
      if (it != atomic_release_clocks.end()) {
        JoinClock(clocks[v], it->second);
      }
    }

    const std::set<GuestAddr>& lockset = locksets[v];
    GuestAddr first_granule = a.addr & ~3u;
    GuestAddr last_granule = (a.addr + a.len - 1) & ~3u;
    for (GuestAddr granule = first_granule; granule <= last_granule; granule += 4) {
      GranuleState& state = granules[granule];
      // Compare against every other vCPU's remembered accesses.
      for (int other_vcpu = 0; other_vcpu < kMaxVcpus; other_vcpu++) {
        if (other_vcpu == v) {
          continue;
        }
        for (const Remembered& other : state.per_vcpu[other_vcpu]) {
          bool overlap = a.addr < other.addr + other.len && other.addr < a.addr + a.len;
          if (!overlap) {
            continue;
          }
          bool some_write =
              a.type == AccessType::kWrite || other.type == AccessType::kWrite;
          bool both_marked = a.marked_atomic && other.marked;
          if (!some_write || both_marked) {
            continue;
          }
          if (!LocksetsDisjoint(lockset, other.lockset)) {
            continue;
          }
          // Happens-before: `other` (earlier) is ordered before `a` iff its owner
          // timestamp is covered by this vCPU's clock.
          if (other.own_ts <= clocks[v][other_vcpu]) {
            continue;
          }
          RaceReport report;
          if (a.type == AccessType::kWrite) {
            report.write_site = a.site;
            report.other_site = other.site;
          } else {
            report.write_site = other.site;
            report.other_site = a.site;
          }
          report.addr = a.addr;
          report.write_write =
              a.type == AccessType::kWrite && other.type == AccessType::kWrite;
          if (seen_signatures.insert(report.Signature()).second) {
            races.push_back(report);
          }
        }
      }
      // Remember this access: replace an existing same-key entry (keep the freshest).
      std::vector<Remembered>& mine = state.per_vcpu[v];
      bool replaced = false;
      for (Remembered& r : mine) {
        if (r.site == a.site && r.type == a.type) {
          r.marked = a.marked_atomic;
          r.addr = a.addr;
          r.len = a.len;
          r.lockset = lockset;
          r.own_ts = clocks[v][v];
          replaced = true;
          break;
        }
      }
      if (!replaced && mine.size() < kMaxRememberedPerGranuleVcpu) {
        mine.push_back(Remembered{a.site, a.type, a.marked_atomic, a.addr, a.len, lockset,
                                  clocks[v][v]});
      }
    }
  }
  return races;
}

DetectorResult RunDetectors(const Engine::RunResult& result) {
  DetectorResult out;
  out.panicked = result.panicked;
  out.panic_message = result.panic_message;
  for (const std::string& line : result.console) {
    if (IsSuspiciousConsoleLine(line)) {
      out.console_hits.push_back(line);
    }
  }
  out.races = DetectRaces(result.trace);
  return out;
}

bool PmcChannelExercised(const Trace& trace, const PmcKey& hint, VcpuId writer_vcpu,
                         VcpuId reader_vcpu) {
  GuestAddr ov_start = std::max(hint.write.addr, hint.read.addr);
  GuestAddr ov_end = std::min(hint.write.end(), hint.read.end());
  if (ov_start >= ov_end) {
    return false;
  }
  uint32_t ov_len = ov_end - ov_start;

  bool write_seen = false;
  uint64_t written_projected = 0;
  for (const Event& event : trace) {
    if (event.kind != EventKind::kAccess) {
      continue;
    }
    const Access& a = event.access;
    if (a.vcpu == writer_vcpu && a.type == AccessType::kWrite && a.site == hint.write.site &&
        a.addr == hint.write.addr && a.len == hint.write.len) {
      write_seen = true;
      written_projected = ProjectValue(a.addr, a.len, a.value, ov_start, ov_len);
      continue;
    }
    if (write_seen && a.vcpu == reader_vcpu && a.type == AccessType::kRead &&
        a.site == hint.read.site && a.addr == hint.read.addr && a.len == hint.read.len) {
      uint64_t read_projected = ProjectValue(a.addr, a.len, a.value, ov_start, ov_len);
      if (read_projected == written_projected) {
        return true;  // The reader saw the writer's bytes: the channel carried data.
      }
    }
  }
  return false;
}

}  // namespace snowboard
