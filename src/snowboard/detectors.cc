#include "src/snowboard/detectors.h"

#include <algorithm>
#include <cstring>

#include "src/util/hash.h"

namespace snowboard {

namespace {

constexpr size_t kMaxRememberedPerGranuleVcpu = 16;

void JoinClock(std::array<uint64_t, RaceDetector::kMaxVcpus>& into,
               const std::array<uint64_t, RaceDetector::kMaxVcpus>& from) {
  for (int i = 0; i < RaceDetector::kMaxVcpus; i++) {
    into[i] = std::max(into[i], from[i]);
  }
}

// Locksets hold unique lock addrs; order is irrelevant to disjointness. They are tiny
// (nesting depth of held locks), so the quadratic scan beats any hashed structure.
bool LocksetsDisjoint(const std::vector<GuestAddr>& a, const std::vector<GuestAddr>& b) {
  for (GuestAddr lock : a) {
    for (GuestAddr other : b) {
      if (lock == other) {
        return false;
      }
    }
  }
  return true;
}

void LocksetInsert(std::vector<GuestAddr>& lockset, GuestAddr lock) {
  for (GuestAddr held : lockset) {
    if (held == lock) {
      return;  // Set semantics: recursive acquire keeps a single entry.
    }
  }
  lockset.push_back(lock);
}

void LocksetErase(std::vector<GuestAddr>& lockset, GuestAddr lock) {
  for (size_t i = 0; i < lockset.size(); i++) {
    if (lockset[i] == lock) {
      lockset[i] = lockset.back();
      lockset.pop_back();
      return;
    }
  }
}

}  // namespace

uint64_t RaceReport::Signature() const {
  SiteId lo = std::min(write_site, other_site);
  SiteId hi = std::max(write_site, other_site);
  return HashAll(lo, hi);
}

bool IsSuspiciousConsoleLine(const std::string& line) {
  static constexpr const char* kPatterns[] = {
      "BUG:",
      "EXT4-fs error",
      "blk_update_request: I/O error",
      "WARNING:",
      "Oops",
  };
  for (const char* pattern : kPatterns) {
    if (line.find(pattern) != std::string::npos) {
      return true;
    }
  }
  return false;
}

RaceDetector::GranuleSlot& RaceDetector::GetGranule(GuestAddr granule) {
  uint32_t* index = granule_index_.Find(granule);
  if (index != nullptr) {
    return granule_pool_[*index];
  }
  uint32_t slot = static_cast<uint32_t>(granule_pool_used_++);
  granule_index_[granule] = slot;
  if (slot < granule_pool_.size()) {
    // Recycle a slot from a previous trial: entries keep their lockset capacity.
    for (RememberedList& list : granule_pool_[slot].per_vcpu) {
      list.used = 0;
    }
  } else {
    granule_pool_.emplace_back();
  }
  return granule_pool_[slot];
}

void RaceDetector::Detect(const Trace& trace, std::vector<RaceReport>* races) {
  // FastTrack-style happens-before tracking:
  //   * per-vCPU vector clocks, incremented per event;
  //   * lock release -> subsequent acquire of the same lock object: HB edge;
  //   * marked-atomic store -> subsequent marked-atomic load of the same cell: HB edge
  //     (release/acquire semantics — this is what makes an RCU publish order the writer's
  //     initialization before the reader's dereference, eliminating init-then-publish false
  //     positives that a pure lockset analysis reports);
  //   * Eraser-style locksets on top (a common lock suppresses even without an HB edge in
  //     our serialized replay).
  // A race: overlapping ranges, different vCPUs, at least one write, not both marked, no
  // common lock, and the earlier access NOT happened-before the later one.
  std::memset(clocks_, 0, sizeof(clocks_));
  for (std::vector<GuestAddr>& lockset : locksets_) {
    lockset.clear();
  }
  lock_release_clocks_.Clear();
  atomic_release_clocks_.Clear();
  granule_index_.Clear();
  granule_pool_used_ = 0;
  seen_signatures_.Clear();
  races->clear();

  for (const Event& event : trace) {
    if (event.vcpu < 0 || event.vcpu >= kMaxVcpus) {
      continue;
    }
    int v = event.vcpu;
    clocks_[v][v]++;

    switch (event.kind) {
      case EventKind::kLockAcquire:
      case EventKind::kSharedAcquire: {
        LocksetInsert(locksets_[v], event.lock_addr);
        const VectorClock* release = lock_release_clocks_.Find(event.lock_addr);
        if (release != nullptr) {
          JoinClock(clocks_[v], *release);
        }
        continue;
      }
      case EventKind::kLockRelease:
      case EventKind::kSharedRelease: {
        LocksetErase(locksets_[v], event.lock_addr);
        JoinClock(lock_release_clocks_[event.lock_addr], clocks_[v]);
        continue;
      }
      case EventKind::kRcuReadLock:
      case EventKind::kRcuReadUnlock:
      case EventKind::kYield:
        continue;
      case EventKind::kAccess:
        break;
    }

    const Access& a = event.access;
    if (a.type == AccessType::kWrite) {
      if (a.marked_atomic) {
        // Release semantics for marked stores (rcu_assign_pointer, WRITE_ONCE, unlocks).
        atomic_release_clocks_[a.addr] = clocks_[v];
      } else {
        // A plain overwrite breaks the publish chain through this cell.
        atomic_release_clocks_.Erase(a.addr);
      }
    } else {
      // ANY read observing a release-store's cell acquires it — this models the
      // dependency ordering real hardware gives a pointer chase (reading a published
      // pointer orders the publisher's earlier initialization before the dependent
      // accesses), so init-then-publish patterns are not reported even when the reader's
      // load is unmarked. The paper's #1 double fetch is still caught: its crash oracle
      // fires, and the re-fetch pattern itself is classified from the panic site.
      const VectorClock* release = atomic_release_clocks_.Find(a.addr);
      if (release != nullptr) {
        JoinClock(clocks_[v], *release);
      }
    }

    const std::vector<GuestAddr>& lockset = locksets_[v];
    GuestAddr first_granule = a.addr & ~3u;
    GuestAddr last_granule = (a.addr + a.len - 1) & ~3u;
    for (GuestAddr granule = first_granule; granule <= last_granule; granule += 4) {
      GranuleSlot& state = GetGranule(granule);
      // Compare against every other vCPU's remembered accesses.
      for (int other_vcpu = 0; other_vcpu < kMaxVcpus; other_vcpu++) {
        if (other_vcpu == v) {
          continue;
        }
        const RememberedList& theirs = state.per_vcpu[other_vcpu];
        for (size_t i = 0; i < theirs.used; i++) {
          const Remembered& other = theirs.entries[i];
          bool overlap = a.addr < other.addr + other.len && other.addr < a.addr + a.len;
          if (!overlap) {
            continue;
          }
          bool some_write =
              a.type == AccessType::kWrite || other.type == AccessType::kWrite;
          bool both_marked = a.marked_atomic && other.marked;
          if (!some_write || both_marked) {
            continue;
          }
          if (!LocksetsDisjoint(lockset, other.lockset)) {
            continue;
          }
          // Happens-before: `other` (earlier) is ordered before `a` iff its owner
          // timestamp is covered by this vCPU's clock.
          if (other.own_ts <= clocks_[v][other_vcpu]) {
            continue;
          }
          RaceReport report;
          if (a.type == AccessType::kWrite) {
            report.write_site = a.site;
            report.other_site = other.site;
          } else {
            report.write_site = other.site;
            report.other_site = a.site;
          }
          report.addr = a.addr;
          report.write_write =
              a.type == AccessType::kWrite && other.type == AccessType::kWrite;
          if (seen_signatures_.Insert(report.Signature())) {
            races->push_back(report);
          }
        }
      }
      // Remember this access: replace an existing same-key entry (keep the freshest).
      RememberedList& mine = state.per_vcpu[v];
      Remembered* target = nullptr;
      for (size_t i = 0; i < mine.used; i++) {
        Remembered& r = mine.entries[i];
        if (r.site == a.site && r.type == a.type) {
          target = &r;
          break;
        }
      }
      if (target == nullptr && mine.used < kMaxRememberedPerGranuleVcpu) {
        if (mine.used == mine.entries.size()) {
          mine.entries.emplace_back();
        }
        target = &mine.entries[mine.used++];
        target->site = a.site;
        target->type = a.type;
      }
      if (target != nullptr) {
        target->marked = a.marked_atomic;
        target->addr = a.addr;
        target->len = a.len;
        target->own_ts = clocks_[v][v];
        target->lockset.assign(lockset.begin(), lockset.end());
      }
    }
  }
}

uint64_t DetectorFingerprint(const DetectorResult& result) {
  uint64_t h = HashAll(uint64_t{0xf19e}, result.panicked ? 1 : 0,
                       Fnv1a(result.panic_message), result.console_hits.size(),
                       result.races.size());
  for (const std::string& line : result.console_hits) {
    h = HashCombine(h, Fnv1a(line));
  }
  for (const RaceReport& race : result.races) {
    h = HashCombine(h, HashAll(race.write_site, race.other_site,
                               static_cast<uint64_t>(race.addr),
                               race.write_write ? 1 : 0));
  }
  return h;
}

bool DetectorResultContainsKey(const DetectorResult& result, FindingKind kind,
                               uint64_t key) {
  switch (kind) {
    case FindingKind::kRace:
      for (const RaceReport& race : result.races) {
        if (race.Signature() == key) {
          return true;
        }
      }
      return false;
    case FindingKind::kConsole:
      for (const std::string& line : result.console_hits) {
        if (Fnv1a(line) == key) {
          return true;
        }
      }
      return false;
    case FindingKind::kPanic:
      return result.panicked && Fnv1a(result.panic_message) == key;
  }
  return false;
}

std::vector<RaceReport> DetectRaces(const Trace& trace) {
  RaceDetector detector;
  std::vector<RaceReport> races;
  detector.Detect(trace, &races);
  return races;
}

void RunDetectors(const Engine::RunResult& result, RaceDetector* detector,
                  DetectorResult* out) {
  out->panicked = result.panicked;
  out->panic_message = result.panic_message;
  out->console_hits.clear();
  for (const std::string& line : result.console) {
    if (IsSuspiciousConsoleLine(line)) {
      out->console_hits.push_back(line);
    }
  }
  detector->Detect(result.trace, &out->races);
}

DetectorResult RunDetectors(const Engine::RunResult& result) {
  DetectorResult out;
  RaceDetector detector;
  RunDetectors(result, &detector, &out);
  return out;
}

bool PmcChannelExercised(const Trace& trace, const PmcKey& hint, VcpuId writer_vcpu,
                         VcpuId reader_vcpu) {
  GuestAddr ov_start = std::max(hint.write.addr, hint.read.addr);
  GuestAddr ov_end = std::min(hint.write.end(), hint.read.end());
  if (ov_start >= ov_end) {
    return false;
  }
  uint32_t ov_len = ov_end - ov_start;

  bool write_seen = false;
  uint64_t written_projected = 0;
  for (const Event& event : trace) {
    if (event.kind != EventKind::kAccess) {
      continue;
    }
    const Access& a = event.access;
    if (a.vcpu == writer_vcpu && a.type == AccessType::kWrite && a.site == hint.write.site &&
        a.addr == hint.write.addr && a.len == hint.write.len) {
      write_seen = true;
      written_projected = ProjectValue(a.addr, a.len, a.value, ov_start, ov_len);
      continue;
    }
    if (write_seen && a.vcpu == reader_vcpu && a.type == AccessType::kRead &&
        a.site == hint.read.site && a.addr == hint.read.addr && a.len == hint.read.len) {
      uint64_t read_projected = ProjectValue(a.addr, a.len, a.value, ov_start, ov_len);
      if (read_projected == written_projected) {
        return true;  // The reader saw the writer's bytes: the channel carried data.
      }
    }
  }
  return false;
}

}  // namespace snowboard
