#include "src/snowboard/cluster.h"

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "src/util/assert.h"
#include "src/util/hash.h"

namespace snowboard {

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kSFull:
      return "S-FULL";
    case Strategy::kSCh:
      return "S-CH";
    case Strategy::kSChNull:
      return "S-CH-NULL";
    case Strategy::kSChUnaligned:
      return "S-CH-UNALIGNED";
    case Strategy::kSChDouble:
      return "S-CH-DOUBLE";
    case Strategy::kSIns:
      return "S-INS";
    case Strategy::kSInsPair:
      return "S-INS-PAIR";
    case Strategy::kSMem:
      return "S-MEM";
    case Strategy::kRandomSInsPair:
      return "Random S-INS-PAIR";
    case Strategy::kRandomPairing:
      return "Random pairing";
    case Strategy::kDuplicatePairing:
      return "Duplicate pairing";
  }
  return "<unknown>";
}

bool StrategyUsesPmcs(Strategy strategy) {
  return strategy != Strategy::kRandomPairing && strategy != Strategy::kDuplicatePairing;
}

bool StrategyFilter(Strategy strategy, const PmcKey& key) {
  switch (strategy) {
    case Strategy::kSChNull:
      return key.write.value == 0;  // [value_w = 0]
    case Strategy::kSChUnaligned:
      // [(addr_r != addr_w or byte_r != byte_w)]
      return key.read.addr != key.write.addr || key.read.len != key.write.len;
    case Strategy::kSChDouble:
      return key.df_leader;  // [df_leader]
    default:
      return true;  // [True]
  }
}

uint64_t StrategyKey(Strategy strategy, const PmcKey& key, int which) {
  switch (strategy) {
    case Strategy::kSFull:
      // (ins_w, addr_w, byte_w, value_w, ins_r, addr_r, byte_r, value_r)
      return HashAll(key.write.site, key.write.addr, key.write.len, key.write.value,
                     key.read.site, key.read.addr, key.read.len, key.read.value);
    case Strategy::kSCh:
    case Strategy::kSChNull:
    case Strategy::kSChUnaligned:
    case Strategy::kSChDouble:
      // (ins_w, addr_w, byte_w, ins_r, addr_r, byte_r)
      return HashAll(key.write.site, key.write.addr, key.write.len, key.read.site,
                     key.read.addr, key.read.len);
    case Strategy::kSIns:
      // (ins_{w/r}): one clustering on the write instruction, one on the read instruction.
      return which == 0 ? HashAll(uint64_t{0}, key.write.site)
                        : HashAll(uint64_t{1}, key.read.site);
    case Strategy::kSInsPair:
    case Strategy::kRandomSInsPair:
      // (ins_w, ins_r)
      return HashAll(key.write.site, key.read.site);
    case Strategy::kSMem:
      // (addr_w, byte_w, addr_r, byte_r)
      return HashAll(key.write.addr, key.write.len, key.read.addr, key.read.len);
    case Strategy::kRandomPairing:
    case Strategy::kDuplicatePairing:
      break;
  }
  SB_CHECK(false && "baseline generation methods do not cluster PMCs");
  return 0;
}

namespace {

// Clusters the PMC index range [begin, end) into `clusters`, keyed through `index`.
// Cluster order = first appearance of each key; members ascend with the PMC index.
void ClusterRange(const std::vector<Pmc>& pmcs, Strategy strategy, uint32_t begin,
                  uint32_t end, std::unordered_map<uint64_t, size_t>* index,
                  std::vector<PmcCluster>* clusters) {
  auto add = [&](uint64_t key, uint32_t member) {
    auto [it, inserted] = index->try_emplace(key, clusters->size());
    if (inserted) {
      clusters->push_back(PmcCluster{key, {member}});
    } else {
      (*clusters)[it->second].members.push_back(member);
    }
  };

  for (uint32_t i = begin; i < end; i++) {
    const PmcKey& key = pmcs[i].key;
    if (!StrategyFilter(strategy, key)) {
      continue;
    }
    if (strategy == Strategy::kSIns) {
      add(StrategyKey(strategy, key, 0), i);
      add(StrategyKey(strategy, key, 1), i);
    } else {
      add(StrategyKey(strategy, key, 0), i);
    }
  }
}

}  // namespace

std::vector<PmcCluster> ClusterPmcs(const std::vector<Pmc>& pmcs, Strategy strategy,
                                    int num_workers) {
  SB_CHECK(StrategyUsesPmcs(strategy));
  std::unordered_map<uint64_t, size_t> index;
  std::vector<PmcCluster> clusters;

  size_t partitions = num_workers > 1
                          ? std::min(pmcs.size(), static_cast<size_t>(num_workers))
                          : 1;
  if (partitions <= 1) {
    ClusterRange(pmcs, strategy, 0, static_cast<uint32_t>(pmcs.size()), &index, &clusters);
    return clusters;
  }

  // Shard: cluster disjoint contiguous PMC ranges in parallel, then fold the partial tables
  // left-to-right. The fold visits keys in (partition, local first-appearance) order, which
  // equals global first-appearance order; appending each local cluster's ascending members
  // after all lower partitions' members keeps the global member lists ascending — both
  // invariants make the merged table equal the sequential one element-for-element.
  std::vector<std::unordered_map<uint64_t, size_t>> part_index(partitions);
  std::vector<std::vector<PmcCluster>> part_clusters(partitions);
  std::vector<std::thread> workers;
  workers.reserve(partitions);
  for (size_t p = 0; p < partitions; p++) {
    uint32_t begin = static_cast<uint32_t>(pmcs.size() * p / partitions);
    uint32_t end = static_cast<uint32_t>(pmcs.size() * (p + 1) / partitions);
    workers.emplace_back([&, p, begin, end]() {
      ClusterRange(pmcs, strategy, begin, end, &part_index[p], &part_clusters[p]);
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }

  for (const std::vector<PmcCluster>& partial : part_clusters) {
    for (const PmcCluster& cluster : partial) {
      auto [it, inserted] = index.try_emplace(cluster.key, clusters.size());
      if (inserted) {
        clusters.push_back(cluster);
      } else {
        PmcCluster& target = clusters[it->second];
        target.members.insert(target.members.end(), cluster.members.begin(),
                              cluster.members.end());
      }
    }
  }
  return clusters;
}

}  // namespace snowboard
