#include "src/snowboard/cluster.h"

#include <unordered_map>

#include "src/util/assert.h"
#include "src/util/hash.h"

namespace snowboard {

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kSFull:
      return "S-FULL";
    case Strategy::kSCh:
      return "S-CH";
    case Strategy::kSChNull:
      return "S-CH-NULL";
    case Strategy::kSChUnaligned:
      return "S-CH-UNALIGNED";
    case Strategy::kSChDouble:
      return "S-CH-DOUBLE";
    case Strategy::kSIns:
      return "S-INS";
    case Strategy::kSInsPair:
      return "S-INS-PAIR";
    case Strategy::kSMem:
      return "S-MEM";
    case Strategy::kRandomSInsPair:
      return "Random S-INS-PAIR";
    case Strategy::kRandomPairing:
      return "Random pairing";
    case Strategy::kDuplicatePairing:
      return "Duplicate pairing";
  }
  return "<unknown>";
}

bool StrategyUsesPmcs(Strategy strategy) {
  return strategy != Strategy::kRandomPairing && strategy != Strategy::kDuplicatePairing;
}

bool StrategyFilter(Strategy strategy, const PmcKey& key) {
  switch (strategy) {
    case Strategy::kSChNull:
      return key.write.value == 0;  // [value_w = 0]
    case Strategy::kSChUnaligned:
      // [(addr_r != addr_w or byte_r != byte_w)]
      return key.read.addr != key.write.addr || key.read.len != key.write.len;
    case Strategy::kSChDouble:
      return key.df_leader;  // [df_leader]
    default:
      return true;  // [True]
  }
}

uint64_t StrategyKey(Strategy strategy, const PmcKey& key, int which) {
  switch (strategy) {
    case Strategy::kSFull:
      // (ins_w, addr_w, byte_w, value_w, ins_r, addr_r, byte_r, value_r)
      return HashAll(key.write.site, key.write.addr, key.write.len, key.write.value,
                     key.read.site, key.read.addr, key.read.len, key.read.value);
    case Strategy::kSCh:
    case Strategy::kSChNull:
    case Strategy::kSChUnaligned:
    case Strategy::kSChDouble:
      // (ins_w, addr_w, byte_w, ins_r, addr_r, byte_r)
      return HashAll(key.write.site, key.write.addr, key.write.len, key.read.site,
                     key.read.addr, key.read.len);
    case Strategy::kSIns:
      // (ins_{w/r}): one clustering on the write instruction, one on the read instruction.
      return which == 0 ? HashAll(uint64_t{0}, key.write.site)
                        : HashAll(uint64_t{1}, key.read.site);
    case Strategy::kSInsPair:
    case Strategy::kRandomSInsPair:
      // (ins_w, ins_r)
      return HashAll(key.write.site, key.read.site);
    case Strategy::kSMem:
      // (addr_w, byte_w, addr_r, byte_r)
      return HashAll(key.write.addr, key.write.len, key.read.addr, key.read.len);
    case Strategy::kRandomPairing:
    case Strategy::kDuplicatePairing:
      break;
  }
  SB_CHECK(false && "baseline generation methods do not cluster PMCs");
  return 0;
}

std::vector<PmcCluster> ClusterPmcs(const std::vector<Pmc>& pmcs, Strategy strategy) {
  SB_CHECK(StrategyUsesPmcs(strategy));
  std::unordered_map<uint64_t, size_t> index;
  std::vector<PmcCluster> clusters;

  auto add = [&](uint64_t key, uint32_t member) {
    auto [it, inserted] = index.try_emplace(key, clusters.size());
    if (inserted) {
      clusters.push_back(PmcCluster{key, {member}});
    } else {
      clusters[it->second].members.push_back(member);
    }
  };

  for (uint32_t i = 0; i < pmcs.size(); i++) {
    const PmcKey& key = pmcs[i].key;
    if (!StrategyFilter(strategy, key)) {
      continue;
    }
    if (strategy == Strategy::kSIns) {
      add(StrategyKey(strategy, key, 0), i);
      add(StrategyKey(strategy, key, 1), i);
    } else {
      add(StrategyKey(strategy, key, 0), i);
    }
  }
  return clusters;
}

}  // namespace snowboard
