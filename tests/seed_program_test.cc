// Parameterized per-seed-program sweep: every hand-written seed program (the corpus
// bootstrap) must satisfy the pipeline's contracts individually — clean sequential
// execution, reproducible profiles, self-PMC identification, and round-trippable
// serialization. One instantiation per seed program.
#include <gtest/gtest.h>

#include "src/fuzz/generator.h"
#include "src/kernel/task.h"
#include "src/snowboard/pipeline.h"
#include "src/snowboard/serialize.h"

namespace snowboard {
namespace {

class SeedProgramSweep : public ::testing::TestWithParam<size_t> {
 protected:
  static KernelVm& SharedVm() {
    static KernelVm* vm = new KernelVm();
    return *vm;
  }
  Program GetProgram() { return SeedPrograms()[GetParam()]; }
};

TEST_P(SeedProgramSweep, RunsCleanSequentially) {
  KernelVm& vm = SharedVm();
  vm.RestoreSnapshot();
  Engine::RunOptions opts;
  opts.max_instructions = 1'000'000;
  Engine::RunResult result =
      vm.engine().Run({MakeProgramRunner(vm.globals(), GetProgram(), 0)}, opts);
  EXPECT_TRUE(result.completed) << GetProgram().Format();
  EXPECT_FALSE(result.panicked) << GetProgram().Format();
  EXPECT_FALSE(result.hang);
}

TEST_P(SeedProgramSweep, SyscallsMostlySucceed) {
  // Seed programs are curated reproducers: their syscalls must not fail (a failing seed
  // would silently weaken the corpus bootstrap).
  KernelVm& vm = SharedVm();
  vm.RestoreSnapshot();
  Program program = GetProgram();
  bool all_ok = true;
  std::string failures;
  Engine::RunResult run = vm.engine().Run(
      {[&](Ctx& ctx) {
        TaskEnter(ctx, vm.globals().tasks[0]);
        ProgramResult result = RunProgram(ctx, vm.globals(), program);
        for (size_t i = 0; i < result.call_results.size(); i++) {
          if (result.call_results[i] < 0) {
            all_ok = false;
            failures += " call" + std::to_string(i) + "=" +
                        std::to_string(result.call_results[i]);
          }
        }
      }},
      Engine::RunOptions{});
  EXPECT_TRUE(run.completed);
  EXPECT_TRUE(all_ok) << GetProgram().Format() << "\nfailures:" << failures;
}

TEST_P(SeedProgramSweep, ProfileIsReproducible) {
  KernelVm& vm = SharedVm();
  SequentialProfile a = ProfileTest(vm, GetProgram(), 0);
  SequentialProfile b = ProfileTest(vm, GetProgram(), 0);
  ASSERT_TRUE(a.ok);
  ASSERT_EQ(a.accesses.size(), b.accesses.size());
  for (size_t i = 0; i < a.accesses.size(); i++) {
    ASSERT_EQ(a.accesses[i].addr, b.accesses[i].addr);
    ASSERT_EQ(a.accesses[i].value, b.accesses[i].value);
    ASSERT_EQ(a.accesses[i].site, b.accesses[i].site);
    ASSERT_EQ(a.accesses[i].df_leader, b.accesses[i].df_leader);
  }
}

TEST_P(SeedProgramSweep, ProfileHasSharedAccesses) {
  KernelVm& vm = SharedVm();
  SequentialProfile profile = ProfileTest(vm, GetProgram(), 0);
  ASSERT_TRUE(profile.ok);
  // Every seed drives at least one kernel subsystem: shared accesses must exist.
  EXPECT_GT(profile.accesses.size(), 5u) << GetProgram().Format();
  // Accesses carry valid feature tuples.
  for (const SharedAccess& access : profile.accesses) {
    EXPECT_NE(access.site, kInvalidSite);
    EXPECT_GE(access.len, 1);
    EXPECT_LE(access.len, 8);
    EXPECT_GE(access.addr, kGuestNullPageSize);
  }
}

TEST_P(SeedProgramSweep, SerializationRoundTrips) {
  Program program = GetProgram();
  std::optional<Program> restored = DeserializeProgram(SerializeProgram(program));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, program);
  EXPECT_EQ(restored->Hash(), program.Hash());
}

TEST_P(SeedProgramSweep, SelfPairIdentifiesPmcsOrIsReadOnly) {
  // Pairing a seed with itself (duplicate pairing) must produce PMCs whenever the program
  // writes shared state that it also reads.
  KernelVm& vm = SharedVm();
  SequentialProfile profile = ProfileTest(vm, GetProgram(), 0);
  ASSERT_TRUE(profile.ok);
  bool has_write = false;
  bool has_read = false;
  for (const SharedAccess& access : profile.accesses) {
    has_write = has_write || access.type == AccessType::kWrite;
    has_read = has_read || access.type == AccessType::kRead;
  }
  std::vector<Pmc> pmcs = IdentifyPmcs({profile});
  if (!has_write || !has_read) {
    EXPECT_TRUE(pmcs.empty());
    return;
  }
  // All seeds mutate counters/objects they re-read through syscalls; at minimum the
  // allocator and fd-table traffic yields channels.
  EXPECT_GT(pmcs.size(), 0u) << GetProgram().Format();
}

INSTANTIATE_TEST_SUITE_P(AllSeeds, SeedProgramSweep,
                         ::testing::Range<size_t>(0, SeedPrograms().size()),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "seed" + std::to_string(info.index);
                         });

}  // namespace
}  // namespace snowboard
