// The shared worker pool (util/workpool.h): SPMD job semantics, deterministic index
// claiming, per-worker state that survives across jobs (the KernelVm boot-once invariant),
// and clean unwinding when an injected fault kills a job mid-flight.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/snowboard/profile.h"
#include "src/util/counters.h"
#include "src/util/fault.h"
#include "src/util/workpool.h"

namespace snowboard {
namespace {

TEST(WorkpoolTest, RunExecutesBodyOncePerWorkerWithDistinctIndices) {
  WorkerPool pool;
  for (int width : {1, 3, 5}) {
    SCOPED_TRACE(testing::Message() << "width=" << width);
    std::vector<std::atomic<int>> hits(static_cast<size_t>(width));
    for (auto& h : hits) {
      h = 0;
    }
    pool.Run(width, [&](PoolWorker& worker) {
      ASSERT_GE(worker.index(), 0);
      ASSERT_LT(worker.index(), width);
      hits[static_cast<size_t>(worker.index())]++;
    });
    for (int i = 0; i < width; i++) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "worker " << i;
    }
  }
  // The pool grew to the widest job and never shrank.
  EXPECT_EQ(pool.thread_count(), 5);
}

TEST(WorkpoolTest, IndexClaimHandsOutEachIndexExactlyOnceAtAnyWidth) {
  WorkerPool pool;
  constexpr size_t kItems = 1000;
  for (int width : {1, 2, 4, 8}) {
    SCOPED_TRACE(testing::Message() << "width=" << width);
    std::vector<std::atomic<int>> claimed(kItems);
    for (auto& c : claimed) {
      c = 0;
    }
    IndexClaim claim(kItems);
    pool.Run(width, [&](PoolWorker&) {
      size_t i = 0;
      while (claim.Next(&i)) {
        claimed[i]++;
      }
    });
    for (size_t i = 0; i < kItems; i++) {
      ASSERT_EQ(claimed[i].load(), 1) << "index " << i;
    }
  }
}

// Slot-keyed outputs under dynamic claiming are the pool's determinism contract: the same
// input produces the same output vector at every width because slot i is written only by
// the claimer of index i.
TEST(WorkpoolTest, SlotKeyedOutputsInvariantAcrossWidths) {
  WorkerPool pool;
  constexpr size_t kItems = 257;
  auto run = [&](int width) {
    std::vector<uint64_t> out(kItems, 0);
    IndexClaim claim(kItems);
    pool.Run(width, [&](PoolWorker&) {
      size_t i = 0;
      while (claim.Next(&i)) {
        out[i] = i * 2654435761ull + 17;
      }
    });
    return out;
  };
  std::vector<uint64_t> base = run(1);
  for (int width : {2, 4, 8}) {
    EXPECT_EQ(run(width), base) << "width=" << width;
  }
}

TEST(WorkpoolTest, PerWorkerStatePersistsAcrossJobs) {
  WorkerPool pool;
  std::vector<int*> first_addresses(4, nullptr);
  std::atomic<int> makes{0};
  auto factory = [&]() {
    makes++;
    return std::make_unique<int>(0);
  };
  // Two jobs ("stages"): the second must see the exact object the first created.
  pool.Run(4, [&](PoolWorker& worker) {
    int& state = worker.State<int>(factory);
    state = worker.index() + 100;
    first_addresses[static_cast<size_t>(worker.index())] = &state;
  });
  pool.Run(4, [&](PoolWorker& worker) {
    ASSERT_TRUE(worker.HasState<int>());
    int& state = worker.State<int>(factory);
    EXPECT_EQ(&state, first_addresses[static_cast<size_t>(worker.index())]);
    EXPECT_EQ(state, worker.index() + 100);
  });
  EXPECT_EQ(makes.load(), 4);  // One construction per worker, not per job.
}

// The boot-once invariant the campaign engine is built on: a pool worker's KernelVm boots
// on first use and is then reused by later jobs — the "stages" of a campaign — without
// another boot.
TEST(WorkpoolTest, PoolWorkerVmBootsOncePerWorkerAcrossStages) {
  WorkerPool pool;
  ResetPipelineCounters();
  pool.Run(2, [&](PoolWorker& worker) { PoolWorkerVm(worker).RestoreSnapshot(); });
  uint64_t boots_after_first_stage = GlobalPipelineCounters().vm_boots.load();
  EXPECT_EQ(boots_after_first_stage, 2u);
  for (int stage = 0; stage < 3; stage++) {
    pool.Run(2, [&](PoolWorker& worker) { PoolWorkerVm(worker).RestoreSnapshot(); });
  }
  EXPECT_EQ(GlobalPipelineCounters().vm_boots.load(), boots_after_first_stage)
      << "later stages must reuse the booted VMs";
}

// An injected crash makes every worker abandon its claim loop; the pool itself carries no
// job state across Run calls, so the next job runs to completion on the same threads.
TEST(WorkpoolTest, PoolSurvivesFaultInjectedJobAndStaysReusable) {
  WorkerPool pool;
  constexpr size_t kItems = 200;
  FaultInjector::Plan plan;
  plan.crash_at = 20;  // Die at the 21st claim, mid-job.
  FaultInjector fault(plan);

  std::atomic<size_t> completed{0};
  IndexClaim claim(kItems);
  pool.Run(4, [&](PoolWorker&) {
    size_t i = 0;
    for (;;) {
      if (fault.At("pool.claim")) {
        return;  // Unwind exactly as the campaign engine's workers do.
      }
      if (!claim.Next(&i)) {
        return;
      }
      completed++;
    }
  });
  EXPECT_TRUE(fault.crashed());
  EXPECT_LT(completed.load(), kItems) << "the crash should have cut the job short";

  // Same pool, fresh job: full completion, and per-worker state survived the "crash".
  std::vector<uint8_t> done(kItems, 0);
  IndexClaim claim2(kItems);
  pool.Run(4, [&](PoolWorker&) {
    size_t i = 0;
    while (claim2.Next(&i)) {
      done[i] = 1;
    }
  });
  for (size_t i = 0; i < kItems; i++) {
    ASSERT_EQ(done[i], 1) << "index " << i;
  }
}

}  // namespace
}  // namespace snowboard
