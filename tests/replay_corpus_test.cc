// Replay regression corpus: the checked-in tokens under tests/corpus/ are shippable
// reproducers for the findings the reference campaign surfaces. Three bars, held
// forever once a token is checked in:
//   1. Every corpus token still parses and replays to its exact recorded detector
//      fingerprint — on a fresh VM, with delta restore on or off.
//   2. Re-running the reference campaign reproduces the corpus tokens BYTE-identically,
//      at 1/2/4 workers, under both the barrier and streaming engines. A token is part
//      of the deterministic output surface, exactly like the serialized result.
//   3. The deliberately-divergent token (valid checksum, flipped fingerprint) parses but
//      fails fingerprint verification — the divergence path the CLI turns into exit 3.
//
// Regenerate after an intentional format or schedule change with:
//   SB_UPDATE_CORPUS=1 ./sb_tests --gtest_filter='ReplayCorpusTest.*'
// and commit the rewritten tests/corpus/*.token files.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>

#include "src/snowboard/pipeline.h"
#include "src/snowboard/replay.h"
#include "src/snowboard/serialize.h"
#include "src/util/fs.h"

namespace snowboard {
namespace {

std::string CorpusDir() { return SB_TEST_CORPUS_DIR; }

bool UpdateMode() {
  const char* env = std::getenv("SB_UPDATE_CORPUS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// The reference campaign: identical to report_golden_test's BaseOptions, so the corpus
// reproduces the same findings the report golden exercises.
PipelineOptions BaseOptions(int num_workers) {
  PipelineOptions options;
  options.seed = 7;
  options.corpus.seed = 42;
  options.corpus.max_iterations = 40;
  options.corpus.target_size = 32;
  options.strategy = Strategy::kSInsPair;
  options.max_concurrent_tests = 24;
  options.explorer.num_trials = 8;
  options.num_workers = num_workers;
  return options;
}

// Runs the reference campaign and returns issue id -> replay token text.
std::map<int, std::string> CampaignTokens(int num_workers, bool streaming) {
  PipelineOptions options = BaseOptions(num_workers);
  options.streaming = streaming;
  PipelineResult result = RunSnowboardPipeline(options);
  std::map<int, std::string> tokens;
  for (const auto& [id, finding] : result.findings.first_findings()) {
    EXPECT_FALSE(finding.replay_token.empty())
        << "finding " << id << " shipped without a replay token";
    tokens[id] = finding.replay_token;
  }
  return tokens;
}

std::string TrimTrailingWhitespace(std::string text) {
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r' ||
                           text.back() == ' ' || text.back() == '\t')) {
    text.pop_back();
  }
  return text;
}

// Reads the checked-in issue-<id>.token files (divergent.token excluded).
std::map<int, std::string> CheckedInTokens() {
  std::map<int, std::string> tokens;
  if (!std::filesystem::is_directory(CorpusDir())) {
    return tokens;
  }
  for (const auto& entry : std::filesystem::directory_iterator(CorpusDir())) {
    std::string name = entry.path().filename().string();
    if (name.rfind("issue-", 0) != 0 || entry.path().extension() != ".token") {
      continue;
    }
    int id = std::atoi(name.substr(6).c_str());
    std::optional<std::string> contents = ReadFileContents(entry.path().string());
    if (contents.has_value()) {
      tokens[id] = TrimTrailingWhitespace(*contents);
    }
  }
  return tokens;
}

// Rewrites the corpus from the 1-worker reference campaign (SB_UPDATE_CORPUS=1).
void UpdateCorpus(const std::map<int, std::string>& tokens) {
  ASSERT_TRUE(EnsureDirectory(CorpusDir()));
  for (const auto& [id, token] : tokens) {
    std::string path = CorpusDir() + "/issue-" + std::to_string(id) + ".token";
    ASSERT_TRUE(WriteStringToFile(path, token + "\n")) << path;
  }
  // The divergent token: same trial, flipped expected fingerprint, valid checksum. It
  // must parse but fail verification — the cli smoke test drives exit code 3 with it.
  ASSERT_FALSE(tokens.empty());
  std::optional<ReplayToken> first = ParseReplayToken(tokens.begin()->second);
  ASSERT_TRUE(first.has_value());
  first->fingerprint ^= 1;
  ASSERT_TRUE(WriteStringToFile(CorpusDir() + "/divergent.token",
                                FormatReplayToken(*first) + "\n"));
}

TEST(ReplayCorpusTest, CampaignTokensMatchCorpusAcrossWorkersAndEngines) {
  std::map<int, std::string> base = CampaignTokens(/*num_workers=*/1, /*streaming=*/true);
  ASSERT_FALSE(base.empty()) << "the reference campaign surfaced no findings";
  if (UpdateMode()) {
    UpdateCorpus(base);
  }

  std::map<int, std::string> corpus = CheckedInTokens();
  EXPECT_EQ(corpus, base) << "checked-in corpus diverges from the reference campaign; "
                             "regenerate with SB_UPDATE_CORPUS=1 if intentional";

  // The token is part of the deterministic output surface: byte-identical at any worker
  // count, under either engine.
  for (bool streaming : {false, true}) {
    for (int workers : {1, 2, 4}) {
      if (streaming && workers == 1) {
        continue;  // The base itself.
      }
      SCOPED_TRACE(testing::Message()
                   << (streaming ? "streaming" : "barrier") << " workers=" << workers);
      EXPECT_EQ(CampaignTokens(workers, streaming), base);
    }
  }
}

TEST(ReplayCorpusTest, CorpusTokensReplayToTheirFingerprint) {
  std::map<int, std::string> corpus = CheckedInTokens();
  ASSERT_FALSE(corpus.empty()) << "no tokens under " << CorpusDir()
                               << " (run with SB_UPDATE_CORPUS=1 to generate)";
  for (const auto& [id, text] : corpus) {
    SCOPED_TRACE(testing::Message() << "issue " << id);
    std::optional<ReplayToken> token = ParseReplayToken(text);
    ASSERT_TRUE(token.has_value()) << text;
    EXPECT_EQ(token->issue_id, id);

    // Replay on a fresh VM reproduces the recorded fingerprint exactly.
    KernelVm vm;
    ReplayVerdict verdict = ReplayTokenTrial(vm, *token);
    EXPECT_TRUE(verdict.completed);
    EXPECT_TRUE(verdict.fingerprint_match)
        << "expected " << token->fingerprint << ", observed " << verdict.fingerprint;

    // Delta restore is a pure optimization: the reference full-restore path must replay
    // to the identical fingerprint.
    KernelVm::SetDeltaRestoreEnabled(false);
    KernelVm full_vm;
    ReplayVerdict full = ReplayTokenTrial(full_vm, *token);
    KernelVm::SetDeltaRestoreEnabled(true);
    EXPECT_EQ(full.fingerprint, verdict.fingerprint) << "delta-restore A/B divergence";
    EXPECT_TRUE(full.fingerprint_match);
  }
}

TEST(ReplayCorpusTest, DivergentTokenParsesButFailsVerification) {
  std::optional<std::string> text = ReadFileContents(CorpusDir() + "/divergent.token");
  ASSERT_TRUE(text.has_value()) << "missing divergent.token (run with SB_UPDATE_CORPUS=1)";
  std::optional<ReplayToken> token = ParseReplayToken(TrimTrailingWhitespace(*text));
  ASSERT_TRUE(token.has_value()) << "divergent.token must still be a well-formed token";
  KernelVm vm;
  ReplayVerdict verdict = ReplayTokenTrial(vm, *token);
  EXPECT_FALSE(verdict.fingerprint_match)
      << "the divergent token unexpectedly matched; was the corpus regenerated?";
}

}  // namespace
}  // namespace snowboard
