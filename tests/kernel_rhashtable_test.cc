// Tests for the rhashtable, including a deterministic reproduction of the Figure 4 double
// fetch and the single-fetch ("compiler option 1") counterfactual.
#include <gtest/gtest.h>

#include "src/kernel/rhashtable.h"
#include "src/sim/site.h"

namespace snowboard {
namespace {

constexpr uint32_t kKeyOffset = 4;

struct RhtFixture {
  Engine engine{1 << 18};
  GuestAddr ht = 0;
  RhtFixture() { ht = RhtInit(engine.mem(), 8, kKeyOffset); }
  GuestAddr NewEntry() { return engine.mem().StaticAlloc(16, 8); }
};

TEST(RhashtableTest, InsertLookupRemove) {
  RhtFixture f;
  GuestAddr e1 = f.NewEntry();
  GuestAddr e2 = f.NewEntry();
  f.engine.RunSequential([&](Ctx& ctx) {
    RhtInsert(ctx, f.ht, e1, 10);
    RhtInsert(ctx, f.ht, e2, 20);
    EXPECT_EQ(RhtCount(ctx, f.ht), 2u);
    EXPECT_EQ(RhtLookup(ctx, f.ht, 10), e1);
    EXPECT_EQ(RhtLookup(ctx, f.ht, 20), e2);
    EXPECT_EQ(RhtLookup(ctx, f.ht, 30), kGuestNull);
    EXPECT_EQ(RhtRemove(ctx, f.ht, 10), e1);
    EXPECT_EQ(RhtLookup(ctx, f.ht, 10), kGuestNull);
    EXPECT_EQ(RhtCount(ctx, f.ht), 1u);
    EXPECT_EQ(RhtRemove(ctx, f.ht, 10), kGuestNull);
  });
}

TEST(RhashtableTest, ChainCollisionsHandled) {
  RhtFixture f;
  // Keys k and k+8 hash to the same bucket (8 buckets, multiplicative hash of k).
  // Find two colliding keys by construction: with nbuckets=8, keys 1 and 1+...: just insert
  // many and verify all are findable.
  std::vector<GuestAddr> entries;
  for (int i = 0; i < 12; i++) {
    entries.push_back(f.NewEntry());
  }
  f.engine.RunSequential([&](Ctx& ctx) {
    for (uint32_t i = 0; i < entries.size(); i++) {
      RhtInsert(ctx, f.ht, entries[i], 100 + i);
    }
    for (uint32_t i = 0; i < entries.size(); i++) {
      EXPECT_EQ(RhtLookup(ctx, f.ht, 100 + i), entries[i]);
    }
    // Remove from the middle of chains.
    for (uint32_t i = 0; i < entries.size(); i += 2) {
      EXPECT_EQ(RhtRemove(ctx, f.ht, 100 + i), entries[i]);
    }
    for (uint32_t i = 0; i < entries.size(); i++) {
      GuestAddr expected = (i % 2 == 0) ? kGuestNull : entries[i];
      EXPECT_EQ(RhtLookup(ctx, f.ht, 100 + i), expected);
    }
  });
}

TEST(RhashtableTest, LookupPerformsDoubleFetchByDefault) {
  RhtFixture f;
  GuestAddr e = f.NewEntry();
  f.engine.RunSequential([&](Ctx& ctx) { RhtInsert(ctx, f.ht, e, 5); });
  Engine::RunResult result = f.engine.RunSequential([&](Ctx& ctx) {
    EXPECT_EQ(RhtLookup(ctx, f.ht, 5), e);
  });
  // Count plain reads of the bucket word: double fetch => two.
  int bucket_reads = 0;
  for (const Event& event : result.trace) {
    if (event.kind == EventKind::kAccess && event.access.type == AccessType::kRead &&
        !event.access.marked_atomic && event.access.addr >= f.ht + kRhtBuckets &&
        event.access.addr < f.ht + kRhtBuckets + 32) {
      bucket_reads++;
    }
  }
  EXPECT_EQ(bucket_reads, 2);
}

TEST(RhashtableTest, SingleFetchModeReadsOnce) {
  RhtFixture f;
  f.engine.mem().WriteRaw(f.ht + kRhtFetchMode, 4, kRhtSingleFetch);
  GuestAddr e = f.NewEntry();
  f.engine.RunSequential([&](Ctx& ctx) { RhtInsert(ctx, f.ht, e, 5); });
  Engine::RunResult result = f.engine.RunSequential([&](Ctx& ctx) {
    EXPECT_EQ(RhtLookup(ctx, f.ht, 5), e);
  });
  int bucket_reads = 0;
  for (const Event& event : result.trace) {
    if (event.kind == EventKind::kAccess && event.access.type == AccessType::kRead &&
        event.access.addr >= f.ht + kRhtBuckets && event.access.addr < f.ht + kRhtBuckets + 32) {
      bucket_reads++;
    }
  }
  EXPECT_EQ(bucket_reads, 1);
}

// Scheduler that switches the lookup vCPU away right after its first (plain) bucket read —
// the exact Figure 4 window.
class DoubleFetchWindowScheduler : public Scheduler {
 public:
  DoubleFetchWindowScheduler(GuestAddr bucket_lo, GuestAddr bucket_hi)
      : lo_(bucket_lo), hi_(bucket_hi) {}
  bool AfterAccess(VcpuId vcpu, const Access& access) override {
    if (vcpu == 0 && !fired_ && access.type == AccessType::kRead && !access.marked_atomic &&
        access.addr >= lo_ && access.addr < hi_) {
      fired_ = true;
      return true;  // Switch to the remover between the two fetches.
    }
    return false;
  }

 private:
  GuestAddr lo_, hi_;
  bool fired_ = false;
};

TEST(RhashtableTest, Figure4DoubleFetchPanics) {
  RhtFixture f;
  GuestAddr e = f.NewEntry();
  f.engine.RunSequential([&](Ctx& ctx) { RhtInsert(ctx, f.ht, e, 5); });
  Memory::Snapshot snap = f.engine.mem().TakeSnapshot();

  DoubleFetchWindowScheduler scheduler(f.ht + kRhtBuckets, f.ht + kRhtBuckets + 32);
  Engine::RunOptions opts;
  opts.scheduler = &scheduler;
  Engine::RunResult result = f.engine.Run(
      {[&](Ctx& ctx) { RhtLookup(ctx, f.ht, 5); },           // Reader: msgget analog.
       [&](Ctx& ctx) { RhtRemove(ctx, f.ht, 5); }},          // Writer: msgctl(IPC_RMID).
      opts);
  // The writer zeroes the bucket between the reader's testl and mov: null dereference.
  EXPECT_TRUE(result.panicked);
  EXPECT_NE(result.panic_message.find("NULL pointer dereference"), std::string::npos);

  // Counterfactual (compiler option 1): single fetch survives the same schedule.
  f.engine.mem().Restore(snap);
  f.engine.mem().WriteRaw(f.ht + kRhtFetchMode, 4, kRhtSingleFetch);
  DoubleFetchWindowScheduler scheduler2(f.ht + kRhtBuckets, f.ht + kRhtBuckets + 32);
  Engine::RunOptions opts2;
  opts2.scheduler = &scheduler2;
  Engine::RunResult fixed = f.engine.Run(
      {[&](Ctx& ctx) { RhtLookup(ctx, f.ht, 5); },
       [&](Ctx& ctx) { RhtRemove(ctx, f.ht, 5); }},
      opts2);
  EXPECT_FALSE(fixed.panicked);
  EXPECT_TRUE(fixed.completed);
}

}  // namespace
}  // namespace snowboard
