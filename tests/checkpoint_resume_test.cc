// Crash-point sweep for the checkpoint/resume layer — the headline invariant of the
// crash-safe campaign work: for a fixed seed, killing the pipeline at EVERY fault point
// and resuming yields a PipelineResult (stats, PMC table digest, findings) byte-identical
// to the uninterrupted run, at 1, 2, and 4 workers — and the resumed run re-executes zero
// already-journaled tests (verified through PipelineCounters).
//
// Mechanics: a first pass with a no-crash FaultInjector counts the campaign's fault points
// (checkpoint commits, journal appends, explorer trials, worker claim loops); the sweep
// then replays the campaign once per ordinal with crash_at = k, resumes each crashed
// directory, and compares SerializePipelineResult bytes against the golden run.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <unistd.h>

#include "src/snowboard/checkpoint.h"
#include "src/snowboard/pipeline.h"
#include "src/snowboard/serialize.h"
#include "src/util/counters.h"
#include "src/util/fault.h"

namespace snowboard {
namespace {

// Small but real campaign: a few corpus tests, a handful of concurrent tests, a few trials
// each — enough to cross every stage boundary and journal several outcomes while keeping
// the full sweep (one crashed run + one resume per fault point) in test-lane time.
PipelineOptions TinyOptions(int num_workers) {
  PipelineOptions options;
  options.seed = 7;
  options.corpus.seed = 42;
  options.corpus.max_iterations = 10;
  options.corpus.target_size = 8;
  options.strategy = Strategy::kSInsPair;
  options.max_concurrent_tests = 5;
  options.explorer.num_trials = 3;
  options.num_workers = num_workers;
  return options;
}

std::string FreshDir(const std::string& tag) {
  static int counter = 0;
  std::string dir = std::string(::testing::TempDir()) + "sb_resume_" +
                    std::to_string(::getpid()) + "_" + tag + "_" +
                    std::to_string(counter++);
  std::filesystem::remove_all(dir);
  return dir;
}

// Counts the distinct journaled test outcomes recorded in `dir` for `options`' strategy.
void CountJournaled(const std::string& dir, const PipelineOptions& options,
                    size_t total_tests, size_t* count_out) {
  CheckpointStore store(dir);
  std::vector<bool> seen(total_tests, false);
  *count_out = 0;
  std::string journal = std::string("execute.") + StrategyName(options.strategy);
  for (const std::string& record : store.ReadJournal(journal)) {
    std::optional<OutcomeRecord> decoded = DecodeOutcomeRecord(record);
    ASSERT_TRUE(decoded.has_value()) << "committed journal records must decode";
    ASSERT_LT(decoded->test_index, total_tests);
    if (!seen[decoded->test_index]) {
      seen[decoded->test_index] = true;
      (*count_out)++;
    }
  }
}

TEST(CheckpointResumeTest, CrashAtEveryFaultPointResumesByteIdentical) {
  for (int workers : {1, 2, 4}) {
    SCOPED_TRACE(testing::Message() << "num_workers=" << workers);

    // Golden: one uninterrupted checkpointed run, and a plain run to prove checkpointing
    // itself does not perturb the deterministic outputs.
    PipelineOptions plain = TinyOptions(workers);
    std::string golden_text = SerializePipelineResult(RunSnowboardPipeline(plain));

    PipelineOptions golden_options = TinyOptions(workers);
    golden_options.checkpoint_dir = FreshDir("golden");
    PipelineResult golden = RunSnowboardPipeline(golden_options);
    ASSERT_GT(golden.tests_executed, 0u);
    ASSERT_EQ(SerializePipelineResult(golden), golden_text)
        << "checkpointing must not change results";
    const size_t total_tests = golden.tests_generated;

    // Count the campaign's fault points with a crash-free injector.
    FaultInjector::Plan no_crash;
    FaultInjector point_counter(no_crash);
    PipelineOptions count_options = TinyOptions(workers);
    count_options.checkpoint_dir = FreshDir("count");
    count_options.fault = &point_counter;
    PipelineResult counted = RunSnowboardPipeline(count_options);
    ASSERT_FALSE(point_counter.crashed());
    ASSERT_EQ(SerializePipelineResult(counted), golden_text)
        << "an armed-but-silent injector must not change results";
    const uint64_t total_points = point_counter.points_seen();
    ASSERT_GT(total_points, 20u) << "the campaign should cross many fault points";

    for (uint64_t crash_at = 0; crash_at < total_points; crash_at++) {
      SCOPED_TRACE(testing::Message() << "crash_at=" << crash_at);
      std::string dir = FreshDir("sweep");

      FaultInjector::Plan plan;
      plan.crash_at = static_cast<int64_t>(crash_at);
      FaultInjector fault(plan);
      PipelineOptions crash_options = TinyOptions(workers);
      crash_options.checkpoint_dir = dir;
      crash_options.fault = &fault;
      RunSnowboardPipeline(crash_options);
      ASSERT_TRUE(fault.crashed()) << "ordinal within points_seen must fire";

      // What survived the crash on disk is all the resumed run may reuse.
      size_t journaled = 0;
      CountJournaled(dir, crash_options, total_tests, &journaled);

      ResetPipelineCounters();
      PipelineOptions resume_options = TinyOptions(workers);
      resume_options.checkpoint_dir = dir;
      resume_options.resume = true;
      PipelineResult resumed = RunSnowboardPipeline(resume_options);

      // The headline invariant: byte-identical serialized result.
      EXPECT_EQ(SerializePipelineResult(resumed), golden_text);

      // Zero re-execution of journaled tests: every journaled outcome replays, and only
      // the remainder runs live.
      PipelineCounters& counters = GlobalPipelineCounters();
      EXPECT_EQ(counters.tests_resumed.load(), journaled);
      EXPECT_EQ(resumed.tests_resumed, journaled);
      EXPECT_EQ(counters.concurrent_tests_run.load(), total_tests - journaled);
      EXPECT_EQ(resumed.tests_executed, total_tests);

      std::filesystem::remove_all(dir);
    }

    std::filesystem::remove_all(golden_options.checkpoint_dir);
    std::filesystem::remove_all(count_options.checkpoint_dir);
  }
}

TEST(CheckpointResumeTest, ResumeOfCompletedCampaignShortCircuits) {
  PipelineOptions options = TinyOptions(2);
  options.checkpoint_dir = FreshDir("complete");
  PipelineResult golden = RunSnowboardPipeline(options);
  ASSERT_GT(golden.tests_executed, 0u);

  ResetPipelineCounters();
  PipelineOptions resume_options = options;
  resume_options.resume = true;
  PipelineResult resumed = RunSnowboardPipeline(resume_options);
  EXPECT_EQ(SerializePipelineResult(resumed), SerializePipelineResult(golden));
  EXPECT_EQ(resumed.tests_resumed, golden.tests_executed);
  EXPECT_EQ(GlobalPipelineCounters().concurrent_tests_run.load(), 0u)
      << "a completed campaign must not re-execute anything";
  EXPECT_EQ(GlobalPipelineCounters().vm_profile_runs.load(), 0u)
      << "a completed campaign must not re-profile anything";
  std::filesystem::remove_all(options.checkpoint_dir);
}

TEST(CheckpointResumeTest, MismatchedOptionsFingerprintResetsDirectory) {
  PipelineOptions options = TinyOptions(1);
  options.checkpoint_dir = FreshDir("fingerprint");
  PipelineResult first = RunSnowboardPipeline(options);
  ASSERT_GT(first.tests_executed, 0u);

  // Same directory, different campaign seed: the stale artifacts must not leak in.
  PipelineOptions other = TinyOptions(1);
  other.checkpoint_dir = options.checkpoint_dir;
  other.resume = true;  // Even with resume requested, the fingerprint guard wins.
  other.seed = 8;
  ResetPipelineCounters();
  PipelineResult second = RunSnowboardPipeline(other);
  EXPECT_EQ(GlobalPipelineCounters().tests_resumed.load(), 0u);
  EXPECT_EQ(second.tests_resumed, 0u);

  // And the directory now resumes as the NEW campaign.
  PipelineOptions again = other;
  PipelineResult resumed = RunSnowboardPipeline(again);
  EXPECT_EQ(SerializePipelineResult(resumed), SerializePipelineResult(second));
  std::filesystem::remove_all(options.checkpoint_dir);
}

// A journal record whose test index is outside the campaign's test list (e.g. a journal
// left by a differently-sized test set) must be dropped and counted — never replayed as
// progress, and never allowed to perturb the resumed result.
TEST(CheckpointResumeTest, OutOfRangeJournalRecordsDroppedAndCounted) {
  PipelineOptions plain = TinyOptions(2);
  const std::string golden_text = SerializePipelineResult(RunSnowboardPipeline(plain));
  const std::string journal = std::string("execute.") + StrategyName(plain.strategy);
  const std::string result_entry = std::string("result.") + StrategyName(plain.strategy);

  // Count the campaign's fault points, then crash late enough that the directory has
  // journaled outcomes but no committed result (so a resume actually replays the journal).
  FaultInjector::Plan no_crash;
  FaultInjector point_counter(no_crash);
  PipelineOptions count_options = TinyOptions(2);
  count_options.checkpoint_dir = FreshDir("dropcount");
  count_options.fault = &point_counter;
  PipelineResult counted = RunSnowboardPipeline(count_options);
  const size_t total_tests = counted.tests_generated;
  const uint64_t total_points = point_counter.points_seen();
  ASSERT_GT(total_points, 20u);

  std::string dir;
  size_t journaled = 0;
  for (uint64_t crash_at = total_points; crash_at-- > 0;) {
    std::string candidate = FreshDir("drop");
    FaultInjector::Plan plan;
    plan.crash_at = static_cast<int64_t>(crash_at);
    FaultInjector fault(plan);
    PipelineOptions crash_options = TinyOptions(2);
    crash_options.checkpoint_dir = candidate;
    crash_options.fault = &fault;
    RunSnowboardPipeline(crash_options);
    ASSERT_TRUE(fault.crashed());
    CheckpointStore store(candidate);
    if (!store.Has(result_entry) && !store.ReadJournal(journal).empty()) {
      dir = candidate;
      CountJournaled(candidate, crash_options, total_tests, &journaled);
      break;
    }
    std::filesystem::remove_all(candidate);
  }
  ASSERT_FALSE(dir.empty()) << "no crash point left journaled outcomes without a result";
  ASSERT_GT(journaled, 0u);

  // Poison the journal with a record far past any test index this campaign can generate.
  {
    CheckpointStore store(dir);
    OutcomeRecord bogus;
    bogus.test_index = 1'000'000;
    ASSERT_TRUE(store.AppendJournal(journal, EncodeOutcomeRecord(bogus)));
  }

  ResetPipelineCounters();
  PipelineOptions resume_options = TinyOptions(2);
  resume_options.checkpoint_dir = dir;
  resume_options.resume = true;
  PipelineResult resumed = RunSnowboardPipeline(resume_options);

  EXPECT_EQ(SerializePipelineResult(resumed), golden_text)
      << "a dropped record must not perturb the resumed result";
  EXPECT_GE(GlobalPipelineCounters().journal_records_dropped.load(), 1u)
      << "the out-of-range record must be counted as dropped";
  EXPECT_EQ(resumed.tests_resumed, journaled)
      << "only in-range journaled outcomes may replay";

  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(count_options.checkpoint_dir);
}

// The group-commit sweep: with a batch threshold small enough to fire mid-stage
// (journal_flush_records=2), crash at EVERY fault point and resume. Batching must change
// only durability granularity — whole batches become durable or are lost together — never
// the resumed bytes, and a resumed run may replay exactly what a committed batch put on
// disk. This is the CrashAtEveryFaultPoint invariant restated under threshold flushes.
TEST(CheckpointResumeTest, JournalBatchingCrashSweepResumesByteIdentical) {
  constexpr int kFlushRecords = 2;
  auto batched = [](int workers) {
    PipelineOptions options = TinyOptions(workers);
    options.journal_flush_records = kFlushRecords;
    return options;
  };

  PipelineOptions plain = TinyOptions(2);
  const std::string golden_text = SerializePipelineResult(RunSnowboardPipeline(plain));

  // Fault-point totals depend on the flush threshold (one journal.append per BATCH), so
  // count under the same batching configuration the sweep crashes.
  FaultInjector::Plan no_crash;
  FaultInjector point_counter(no_crash);
  PipelineOptions count_options = batched(2);
  count_options.checkpoint_dir = FreshDir("batchcount");
  count_options.fault = &point_counter;
  PipelineResult counted = RunSnowboardPipeline(count_options);
  ASSERT_FALSE(point_counter.crashed());
  ASSERT_EQ(SerializePipelineResult(counted), golden_text)
      << "journal batching must not change deterministic results";
  const size_t total_tests = counted.tests_generated;
  const uint64_t total_points = point_counter.points_seen();
  ASSERT_GT(total_points, 20u);

  for (uint64_t crash_at = 0; crash_at < total_points; crash_at++) {
    SCOPED_TRACE(testing::Message() << "crash_at=" << crash_at);
    std::string dir = FreshDir("batchsweep");

    FaultInjector::Plan plan;
    plan.crash_at = static_cast<int64_t>(crash_at);
    FaultInjector fault(plan);
    PipelineOptions crash_options = batched(2);
    crash_options.checkpoint_dir = dir;
    crash_options.fault = &fault;
    RunSnowboardPipeline(crash_options);
    ASSERT_TRUE(fault.crashed());

    size_t journaled = 0;
    CountJournaled(dir, crash_options, total_tests, &journaled);

    ResetPipelineCounters();
    PipelineOptions resume_options = batched(2);
    resume_options.checkpoint_dir = dir;
    resume_options.resume = true;
    PipelineResult resumed = RunSnowboardPipeline(resume_options);

    EXPECT_EQ(SerializePipelineResult(resumed), golden_text);
    EXPECT_EQ(GlobalPipelineCounters().tests_resumed.load(), journaled);
    EXPECT_EQ(resumed.tests_resumed, journaled)
        << "a resume may replay exactly the batches that committed";

    std::filesystem::remove_all(dir);
  }
  std::filesystem::remove_all(count_options.checkpoint_dir);
}

// Flush accounting: every journal record reaches disk through exactly one group commit,
// so the batch counters must reconcile with the on-disk journal — records flushed equals
// lines readable, flush count is bounded by batches of at most journal_flush_records, and
// the timed fsync path registered real nanoseconds.
TEST(CheckpointResumeTest, JournalBatchFlushAccountingReconciles) {
  PipelineOptions options = TinyOptions(2);
  options.checkpoint_dir = FreshDir("batchacct");
  options.journal_flush_records = 2;
  ResetPipelineCounters();
  PipelineResult result = RunSnowboardPipeline(options);
  ASSERT_GT(result.tests_executed, 0u);

  size_t on_disk = 0;
  {
    CheckpointStore store(options.checkpoint_dir);
    const std::string journal = std::string("execute.") + StrategyName(options.strategy);
    on_disk = store.ReadJournal(journal).size();
  }
  ASSERT_GT(on_disk, 0u);

  PipelineCounters& counters = GlobalPipelineCounters();
  EXPECT_EQ(counters.journal_batch_records.load(), on_disk)
      << "every record must be accounted to exactly one flush";
  const uint64_t flushes = counters.journal_batch_flushes.load();
  EXPECT_GE(flushes, (on_disk + 1) / 2) << "a batch holds at most journal_flush_records";
  EXPECT_LE(flushes, on_disk) << "a flush carries at least one record";
  EXPECT_GT(counters.journal_flush_nanos.load(), 0u);
  std::filesystem::remove_all(options.checkpoint_dir);
}

// The options fingerprint deliberately excludes the engine choice, so a campaign crashed
// under one engine must resume byte-identically under the other — in both directions, at
// sampled crash ordinals (the exhaustive per-point sweep is CrashAtEveryFaultPoint's job).
TEST(CheckpointResumeTest, CrossEngineResumeIsByteIdentical) {
  PipelineOptions plain = TinyOptions(2);
  const std::string golden_text = SerializePipelineResult(RunSnowboardPipeline(plain));

  for (bool crash_streaming : {true, false}) {
    SCOPED_TRACE(testing::Message() << "crash under "
                                    << (crash_streaming ? "streaming" : "barrier")
                                    << ", resume under the other");
    // Fault-point totals can differ between engines, so count under the crashing engine.
    FaultInjector::Plan no_crash;
    FaultInjector point_counter(no_crash);
    PipelineOptions count_options = TinyOptions(2);
    count_options.streaming = crash_streaming;
    count_options.checkpoint_dir = FreshDir("xengine_count");
    count_options.fault = &point_counter;
    ASSERT_EQ(SerializePipelineResult(RunSnowboardPipeline(count_options)), golden_text);
    const uint64_t total_points = point_counter.points_seen();
    ASSERT_GT(total_points, 20u);
    std::filesystem::remove_all(count_options.checkpoint_dir);

    for (uint64_t crash_at : {total_points / 5, total_points / 2, total_points - 1}) {
      SCOPED_TRACE(testing::Message() << "crash_at=" << crash_at);
      std::string dir = FreshDir("xengine");
      FaultInjector::Plan plan;
      plan.crash_at = static_cast<int64_t>(crash_at);
      FaultInjector fault(plan);
      PipelineOptions crash_options = TinyOptions(2);
      crash_options.streaming = crash_streaming;
      crash_options.checkpoint_dir = dir;
      crash_options.fault = &fault;
      RunSnowboardPipeline(crash_options);
      ASSERT_TRUE(fault.crashed());

      PipelineOptions resume_options = TinyOptions(2);
      resume_options.streaming = !crash_streaming;
      resume_options.checkpoint_dir = dir;
      resume_options.resume = true;
      PipelineResult resumed = RunSnowboardPipeline(resume_options);
      EXPECT_EQ(SerializePipelineResult(resumed), golden_text);
      std::filesystem::remove_all(dir);
    }
  }
}

TEST(CheckpointResumeTest, InjectedHangsRetryWithoutChangingResults) {
  PipelineOptions base_options = TinyOptions(1);
  std::string golden_text = SerializePipelineResult(RunSnowboardPipeline(base_options));

  PipelineOptions retry_options = TinyOptions(1);
  retry_options.explorer.max_trial_retries = 2;
  FaultInjector::Plan plan;
  plan.seed = 3;
  plan.hang_chance = 4;  // Roughly every fourth trial attempt reports as hung.
  FaultInjector fault(plan);
  retry_options.fault = &fault;
  ResetPipelineCounters();
  PipelineResult result = RunSnowboardPipeline(retry_options);

  EXPECT_GT(fault.hangs_injected(), 0u) << "the plan should have injected hangs";
  EXPECT_GT(result.trials_retried, 0u);
  EXPECT_EQ(GlobalPipelineCounters().trials_retried.load(), result.trials_retried);
  EXPECT_EQ(SerializePipelineResult(result), golden_text)
      << "hung-trial retries must be invisible in deterministic outputs";
}

}  // namespace
}  // namespace snowboard
