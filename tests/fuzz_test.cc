// Tests for the fuzzing layer: programs, generation, mutation, coverage, corpus building.
#include <gtest/gtest.h>

#include <unordered_set>

#include "src/fuzz/corpus.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/program.h"
#include "src/fuzz/syscall_desc.h"
#include "src/kernel/task.h"

namespace snowboard {
namespace {

TEST(ProgramTest, HashIsContentBased) {
  Program a;
  a.calls.push_back(Call{kSysMsgget, {Arg::Const(2)}});
  Program b = a;
  EXPECT_EQ(a.Hash(), b.Hash());
  b.calls[0].args[0] = Arg::Const(3);
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(ProgramTest, FormatLooksLikeSyzkaller) {
  Program p;
  p.calls.push_back(Call{kSysSocket, {Arg::Const(2), Arg::Const(0)}});
  p.calls.push_back(Call{kSysConnect, {Arg::Result(0), Arg::Const(1)}});
  std::string text = p.Format();
  EXPECT_NE(text.find("r0 = socket(0x2, 0x0"), std::string::npos);
  EXPECT_NE(text.find("connect(r0, 0x1"), std::string::npos);
}

TEST(ProgramTest, RunResolvesResources) {
  KernelVm vm;
  Program p;
  p.calls.push_back(Call{kSysSocket, {Arg::Const(2), Arg::Const(0)}});
  p.calls.push_back(Call{kSysConnect, {Arg::Result(0), Arg::Const(1)}});
  Engine::RunResult run = vm.engine().Run(
      {MakeProgramRunner(vm.globals(), p, 0)}, Engine::RunOptions{});
  EXPECT_TRUE(run.completed);
}

TEST(ProgramTest, DanglingResultResolvesToMinusOne) {
  KernelVm vm;
  Program p;
  Call call{kSysRead, {Arg::Result(5), Arg::Const(4)}};  // No call 5 exists.
  p.calls.push_back(call);
  bool saw_ebadf = false;
  Engine::RunResult run = vm.engine().Run(
      {[&](Ctx& ctx) {
        TaskEnter(ctx, vm.globals().tasks[0]);
        ProgramResult result = RunProgram(ctx, vm.globals(), p);
        saw_ebadf = result.call_results[0] == kEBADF;
      }},
      Engine::RunOptions{});
  EXPECT_TRUE(run.completed);
  EXPECT_TRUE(saw_ebadf);
}

TEST(SyscallDescTest, TableIsConsistent) {
  for (uint32_t nr = 0; nr < kNumSyscalls; nr++) {
    const SyscallDesc& desc = GetSyscallDesc(nr);
    EXPECT_EQ(desc.nr, nr);
    EXPECT_GE(desc.nargs, 0);
    EXPECT_LE(desc.nargs, kMaxSyscallArgs);
  }
  EXPECT_TRUE(GetSyscallDesc(kSysOpen).makes_fd);
  EXPECT_TRUE(GetSyscallDesc(kSysSocket).makes_fd);
  EXPECT_TRUE(GetSyscallDesc(kSysMsgget).makes_key);
  EXPECT_FALSE(GetSyscallDesc(kSysClose).makes_fd);
}

TEST(SyscallDescTest, SampledValuesInDomain) {
  Rng rng(3);
  for (int i = 0; i < 200; i++) {
    EXPECT_LT(SampleArgValue(ArgType::kPath, rng), 9);
    int64_t family = SampleArgValue(ArgType::kSockFamily, rng);
    EXPECT_TRUE(family == 2 || family == 10 || family == 17 || family == 24);
    int64_t cmd = SampleArgValue(ArgType::kIoctlCmd, rng);
    EXPECT_GE(cmd, 1);
    EXPECT_LE(cmd, 10);
  }
}

TEST(GeneratorTest, GeneratesDeterministically) {
  Generator a(99);
  Generator b(99);
  for (int i = 0; i < 20; i++) {
    EXPECT_EQ(a.Generate().Hash(), b.Generate().Hash());
  }
}

TEST(GeneratorTest, GeneratedProgramsAreWellFormed) {
  Generator generator(5);
  for (int i = 0; i < 100; i++) {
    Program p = generator.Generate();
    EXPECT_GE(p.calls.size(), 1u);
    EXPECT_LE(p.calls.size(), static_cast<size_t>(Generator::kMaxGenCalls));
    for (size_t c = 0; c < p.calls.size(); c++) {
      EXPECT_LT(p.calls[c].nr, kNumSyscalls);
      for (const Arg& arg : p.calls[c].args) {
        if (arg.kind == Arg::kResult) {
          EXPECT_GE(arg.value, 0);
          EXPECT_LT(arg.value, static_cast<int64_t>(c));  // Only earlier producers.
        }
      }
    }
  }
}

TEST(GeneratorTest, MutationChangesProgram) {
  Generator generator(7);
  Program base = generator.Generate();
  int changed = 0;
  for (int i = 0; i < 50; i++) {
    Program mutated = generator.Mutate(base);
    if (mutated.Hash() != base.Hash()) {
      changed++;
    }
  }
  EXPECT_GT(changed, 40);  // Mutation must nearly always produce a different program.
}

TEST(GeneratorTest, MutatedProgramsKeepResourceInvariants) {
  Generator generator(11);
  Program p = generator.Generate();
  for (int i = 0; i < 200; i++) {
    p = generator.Mutate(p);
    for (size_t c = 0; c < p.calls.size(); c++) {
      for (const Arg& arg : p.calls[c].args) {
        if (arg.kind == Arg::kResult) {
          EXPECT_LT(arg.value, static_cast<int64_t>(c));
        }
      }
    }
    EXPECT_LE(p.calls.size(), static_cast<size_t>(kMaxCallsPerProgram));
  }
}

TEST(GeneratorTest, SeedProgramsRunCleanSequentially) {
  KernelVm vm;
  for (const Program& seed : SeedPrograms()) {
    vm.RestoreSnapshot();
    Engine::RunResult run = vm.engine().Run(
        {MakeProgramRunner(vm.globals(), seed, 0)}, Engine::RunOptions{});
    EXPECT_TRUE(run.completed) << seed.Format();
    EXPECT_FALSE(run.panicked) << seed.Format();
  }
}

TEST(CoverageTest, EdgesFromTrace) {
  Trace trace;
  auto add = [&trace](VcpuId vcpu, SiteId site) {
    Event e;
    e.kind = EventKind::kAccess;
    e.vcpu = vcpu;
    e.access.site = site;
    trace.push_back(e);
  };
  add(0, 100);
  add(0, 200);
  add(1, 900);  // Other vCPU: ignored for vcpu 0.
  add(0, 100);
  add(0, 100);  // Self-loop: no edge.
  EdgeSet edges = CollectEdges(trace, 0);
  EXPECT_EQ(edges.size(), 2u);  // 100->200, 200->100.
}

TEST(CoverageTest, MapCountsFreshEdges) {
  CoverageMap map;
  EdgeSet first{1, 2, 3};
  EdgeSet second{3, 4};
  EXPECT_EQ(map.Merge(first), 3u);
  EXPECT_EQ(map.Merge(second), 1u);
  EXPECT_EQ(map.size(), 4u);
  EXPECT_TRUE(map.Covers(2));
  EXPECT_FALSE(map.Covers(9));
}

TEST(CorpusTest, BuildsNonEmptyDeterministicCorpus) {
  KernelVm vm;
  CorpusOptions options;
  options.seed = 42;
  options.max_iterations = 50;
  options.target_size = 40;
  std::vector<CorpusEntry> corpus = BuildCorpus(vm, options);
  EXPECT_GT(corpus.size(), 20u);  // Seeds alone contribute ~28 distinct-behavior tests.
  for (const CorpusEntry& entry : corpus) {
    EXPECT_GT(entry.fresh_edges, 0u);  // "low overlap": every member added coverage.
  }
  // Determinism.
  KernelVm vm2;
  std::vector<CorpusEntry> corpus2 = BuildCorpus(vm2, options);
  ASSERT_EQ(corpus.size(), corpus2.size());
  for (size_t i = 0; i < corpus.size(); i++) {
    EXPECT_EQ(corpus[i].program.Hash(), corpus2[i].program.Hash());
  }
}

TEST(CorpusTest, RejectsDuplicatePrograms) {
  KernelVm vm;
  CorpusOptions options;
  options.seed = 1;
  options.max_iterations = 30;
  options.target_size = 100;
  std::vector<CorpusEntry> corpus = BuildCorpus(vm, options);
  std::unordered_set<uint64_t> hashes;
  for (const CorpusEntry& entry : corpus) {
    EXPECT_TRUE(hashes.insert(entry.program.Hash()).second);
  }
}

}  // namespace
}  // namespace snowboard
