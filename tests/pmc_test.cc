// Tests for PMC identification (Algorithm 1): value projection, overlap detection, the
// value-differs condition, test-pair bookkeeping, and end-to-end identification on real
// kernel profiles.
#include <gtest/gtest.h>

#include "src/fuzz/generator.h"
#include "src/fuzz/program.h"
#include "src/snowboard/pmc.h"
#include "src/snowboard/profile.h"

namespace snowboard {
namespace {

SharedAccess MakeAccess(AccessType type, GuestAddr addr, uint8_t len, SiteId site,
                        uint64_t value) {
  SharedAccess a;
  a.type = type;
  a.addr = addr;
  a.len = len;
  a.site = site;
  a.value = value;
  return a;
}

SequentialProfile MakeProfile(int test_id, std::vector<SharedAccess> accesses) {
  SequentialProfile p;
  p.test_id = test_id;
  p.ok = true;
  p.accesses = std::move(accesses);
  return p;
}

TEST(ProjectValueTest, IdentityProjection) {
  EXPECT_EQ(ProjectValue(0x100, 4, 0xAABBCCDD, 0x100, 4), 0xAABBCCDDu);
}

TEST(ProjectValueTest, SubrangeProjection) {
  // Little-endian: byte at 0x101 is 0xCC.
  EXPECT_EQ(ProjectValue(0x100, 4, 0xAABBCCDD, 0x101, 1), 0xCCu);
  EXPECT_EQ(ProjectValue(0x100, 4, 0xAABBCCDD, 0x100, 2), 0xCCDDu);
  EXPECT_EQ(ProjectValue(0x100, 4, 0xAABBCCDD, 0x102, 2), 0xAABBu);
}

TEST(ProjectValueTest, EightByteNoMask) {
  EXPECT_EQ(ProjectValue(0x100, 8, 0x1122334455667788ull, 0x100, 8),
            0x1122334455667788ull);
  EXPECT_EQ(ProjectValue(0x100, 8, 0x1122334455667788ull, 0x104, 4), 0x11223344u);
}

TEST(IdentifyPmcsTest, BasicWriteReadPmc) {
  // Test 0 writes 5 to X; test 1 reads 0 from X: values differ on the overlap => PMC.
  std::vector<SequentialProfile> profiles;
  profiles.push_back(MakeProfile(0, {MakeAccess(AccessType::kWrite, 0x2000, 4, 10, 5)}));
  profiles.push_back(MakeProfile(1, {MakeAccess(AccessType::kRead, 0x2000, 4, 20, 0)}));
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
  ASSERT_EQ(pmcs.size(), 1u);
  EXPECT_EQ(pmcs[0].key.write.site, 10u);
  EXPECT_EQ(pmcs[0].key.read.site, 20u);
  ASSERT_EQ(pmcs[0].pairs.size(), 1u);
  EXPECT_EQ(pmcs[0].pairs[0].write_test, 0);
  EXPECT_EQ(pmcs[0].pairs[0].read_test, 1);
}

TEST(IdentifyPmcsTest, EqualValuesAreNotPmcs) {
  std::vector<SequentialProfile> profiles;
  profiles.push_back(MakeProfile(0, {MakeAccess(AccessType::kWrite, 0x2000, 4, 10, 7)}));
  profiles.push_back(MakeProfile(1, {MakeAccess(AccessType::kRead, 0x2000, 4, 20, 7)}));
  EXPECT_TRUE(IdentifyPmcs(profiles).empty());
}

TEST(IdentifyPmcsTest, NonOverlappingRangesAreNotPmcs) {
  std::vector<SequentialProfile> profiles;
  profiles.push_back(MakeProfile(0, {MakeAccess(AccessType::kWrite, 0x2000, 4, 10, 5)}));
  profiles.push_back(MakeProfile(1, {MakeAccess(AccessType::kRead, 0x2004, 4, 20, 0)}));
  EXPECT_TRUE(IdentifyPmcs(profiles).empty());
}

TEST(IdentifyPmcsTest, PartialOverlapProjectsCorrectly) {
  // Write [0x2000,4) value 0x00000005; read [0x2002,4) value 0x00000000. Overlap is
  // [0x2002, 0x2004): write bytes there are 0x0000, read bytes 0x0000 -> equal -> NOT a
  // PMC despite the full values differing.
  std::vector<SequentialProfile> profiles;
  profiles.push_back(MakeProfile(0, {MakeAccess(AccessType::kWrite, 0x2000, 4, 10, 5)}));
  profiles.push_back(MakeProfile(1, {MakeAccess(AccessType::kRead, 0x2002, 4, 20, 0)}));
  EXPECT_TRUE(IdentifyPmcs(profiles).empty());

  // Now make the write's high bytes nonzero: overlap bytes differ -> PMC.
  profiles[0] = MakeProfile(0, {MakeAccess(AccessType::kWrite, 0x2000, 4, 10, 0x00AA0005)});
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
  ASSERT_EQ(pmcs.size(), 1u);
  EXPECT_TRUE(pmcs[0].key.read.addr != pmcs[0].key.write.addr);
}

TEST(IdentifyPmcsTest, UnalignedDifferentLengthsOverlap) {
  // 1-byte write into the middle of a 4-byte read.
  std::vector<SequentialProfile> profiles;
  profiles.push_back(
      MakeProfile(0, {MakeAccess(AccessType::kWrite, 0x2001, 1, 10, 0xFF)}));
  profiles.push_back(MakeProfile(1, {MakeAccess(AccessType::kRead, 0x2000, 4, 20, 0)}));
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
  ASSERT_EQ(pmcs.size(), 1u);
  EXPECT_EQ(pmcs[0].key.write.len, 1);
  EXPECT_EQ(pmcs[0].key.read.len, 4);
}

TEST(IdentifyPmcsTest, SameTestCanPairWithItself) {
  // One test both writes and reads the cell (duplicate-pairing material).
  std::vector<SequentialProfile> profiles;
  profiles.push_back(MakeProfile(0, {MakeAccess(AccessType::kWrite, 0x2000, 4, 10, 5),
                                     MakeAccess(AccessType::kRead, 0x2000, 4, 20, 9)}));
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
  ASSERT_EQ(pmcs.size(), 1u);
  EXPECT_EQ(pmcs[0].pairs[0].write_test, 0);
  EXPECT_EQ(pmcs[0].pairs[0].read_test, 0);
}

TEST(IdentifyPmcsTest, MultipleTestsAggregateOnOneKey) {
  std::vector<SequentialProfile> profiles;
  for (int t = 0; t < 5; t++) {
    profiles.push_back(
        MakeProfile(t, {MakeAccess(AccessType::kWrite, 0x2000, 4, 10, 5),
                        MakeAccess(AccessType::kRead, 0x3000, 4, 20, 0)}));
  }
  profiles.push_back(MakeProfile(5, {MakeAccess(AccessType::kRead, 0x2000, 4, 30, 0)}));
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
  ASSERT_EQ(pmcs.size(), 1u);
  EXPECT_EQ(pmcs[0].total_pairs, 5u);  // 5 writer tests x 1 reader test.
}

TEST(IdentifyPmcsTest, DfLeaderPropagatesToKey) {
  std::vector<SequentialProfile> profiles;
  SharedAccess leader = MakeAccess(AccessType::kRead, 0x2000, 4, 20, 0);
  leader.df_leader = true;
  profiles.push_back(MakeProfile(0, {MakeAccess(AccessType::kWrite, 0x2000, 4, 10, 5)}));
  profiles.push_back(MakeProfile(1, {leader}));
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
  ASSERT_EQ(pmcs.size(), 1u);
  EXPECT_TRUE(pmcs[0].key.df_leader);
}

TEST(IdentifyPmcsTest, MaxPmcCapRespected) {
  std::vector<SequentialProfile> profiles;
  std::vector<SharedAccess> writes;
  std::vector<SharedAccess> reads;
  for (uint64_t v = 0; v < 20; v++) {
    writes.push_back(MakeAccess(AccessType::kWrite, 0x2000, 4, 10, 100 + v));
    reads.push_back(MakeAccess(AccessType::kRead, 0x2000, 4, 20, v));
  }
  profiles.push_back(MakeProfile(0, writes));
  profiles.push_back(MakeProfile(1, reads));
  PmcIdentifyOptions options;
  options.max_pmcs = 50;
  EXPECT_EQ(IdentifyPmcs(profiles, options).size(), 50u);
}

TEST(IdentifyPmcsTest, EndToEndL2tpChannelIdentified) {
  // Profile the two Figure 1 tests; among the identified PMCs there must be one whose
  // write is the l2tp list publish and whose read is the reader's list-head load.
  KernelVm vm;
  std::vector<Program> seeds = SeedPrograms();
  std::vector<Program> corpus = {seeds[0], seeds[1]};  // l2tp writer & reader programs.
  std::vector<SequentialProfile> profiles = ProfileCorpus(vm, corpus);
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
  EXPECT_GT(pmcs.size(), 0u);
  GuestAddr list_head = vm.globals().l2tp + 4;  // kL2tpListHead.
  bool found_publish_channel = false;
  for (const Pmc& pmc : pmcs) {
    if (pmc.key.write.addr == list_head && pmc.key.read.addr == list_head &&
        pmc.key.write.value != 0) {
      found_publish_channel = true;
    }
  }
  EXPECT_TRUE(found_publish_channel);
}

}  // namespace
}  // namespace snowboard
