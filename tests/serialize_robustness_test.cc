// Round-trip and adversarial-input tests for the checkpoint serialization layer.
//
// The crash-safety story leans on one contract (serialize.h): a Deserialize* either
// returns the complete artifact or nullopt — truncation at any line boundary, a flipped
// version header, or junk bytes must be rejected, never crash, and never yield a silently
// half-loaded object. The same bar applies to CheckpointStore (manifest-hash verification)
// and to the atomic file primitives (a failed write leaves no partial file).
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <unistd.h>
#include <vector>

#include "src/snowboard/checkpoint.h"
#include "src/snowboard/pipeline.h"
#include "src/snowboard/serialize.h"
#include "src/util/fault.h"
#include "src/util/fs.h"

namespace snowboard {
namespace {

std::string TempPath(const std::string& name) {
  static int counter = 0;
  std::string path = std::string(::testing::TempDir()) + "sb_robust_" +
                     std::to_string(::getpid()) + "_" + std::to_string(counter++) + "_" +
                     name;
  std::filesystem::remove_all(path);  // A previous run's leftovers must not leak in.
  return path;
}

Program MakeProgram(uint32_t base_nr) {
  Program program;
  Call open;
  open.nr = base_nr;
  open.args[0] = Arg::Const(3);
  open.args[1] = Arg::Const(-7);
  program.calls.push_back(open);
  Call use;
  use.nr = base_nr + 1;
  use.args[0] = Arg::Result(0);
  use.args[1] = Arg::Const(0x7fffffff);
  program.calls.push_back(use);
  return program;
}

SequentialProfile MakeProfile(int test_id) {
  SequentialProfile profile;
  profile.test_id = test_id;
  profile.ok = true;
  profile.program = MakeProgram(1);
  SharedAccess write;
  write.type = AccessType::kWrite;
  write.marked_atomic = false;
  write.df_leader = false;
  write.len = 8;
  write.addr = 0xfffffff8u;  // Exercises the full GuestAddr range.
  write.value = 0xdeadbeefcafef00dull;
  write.site = 0x9b3e02ad11aa77ccull;  // High bit set: must not parse as signed.
  write.index = 3;
  profile.accesses.push_back(write);
  SharedAccess read = write;
  read.type = AccessType::kRead;
  read.df_leader = true;
  read.len = 4;
  read.index = 4;
  profile.accesses.push_back(read);
  return profile;
}

ConcurrentTest MakeTest() {
  ConcurrentTest test;
  test.writer = MakeProgram(1);
  test.reader = MakeProgram(2);
  test.write_test = 5;
  test.read_test = 9;
  test.hint.write = PmcSide{0x1000, 4, 0xf123456789abcdefull, 42};
  test.hint.read = PmcSide{0x1002, 2, 0x8000000000000001ull, 7};
  test.hint.df_leader = true;
  test.cluster_key = 0xffee000011223344ull;  // High bit set.
  test.cluster_size = 12;
  return test;
}

ExploreOutcome MakeOutcome() {
  ExploreOutcome outcome;
  outcome.trials_run = 6;
  outcome.trials_retried = 2;
  outcome.bug_found = true;
  outcome.first_bug_trial = 3;
  outcome.target_found = false;
  outcome.first_target_trial = -1;
  outcome.channel_exercised = true;
  outcome.any_hang = false;
  RaceReport race;
  race.write_site = 0xabcdef0123456789ull;
  race.other_site = 0x8888777766665555ull;
  race.addr = 0x1234;
  race.write_write = true;
  outcome.races.push_back(race);
  outcome.console_hits.push_back("EXT4-fs error: checksum invalid at block 7");
  outcome.console_hits.push_back("");  // Empty strings must survive the hex token coding.
  outcome.panic_messages.push_back("BUG: unable to handle page fault at 0xdead");
  TrialCapture capture;
  capture.kind = 2;  // kPanic.
  capture.finding_key = 0x9999888877776666ull;
  capture.trial = 3;
  capture.fingerprint = 0xabcdef0011223344ull;
  capture.schedule = "..S.S";
  capture.orig_len = 40;
  capture.orig_switches = 6;
  capture.min_switches = 2;
  outcome.captures.push_back(capture);
  TrialCapture bare;  // Empty schedule must survive the "-" coding.
  bare.kind = 0;
  bare.finding_key = 1;
  bare.trial = 0;
  outcome.captures.push_back(bare);
  return outcome;
}

ReplayToken MakeToken() {
  ReplayToken token;
  token.issue_id = 13;
  token.write_test = 5;
  token.read_test = 9;
  token.trial_seed = 2021 + 7;
  token.max_instructions = 400'000;
  token.fingerprint = 0x0123456789abcdefull;
  token.schedule = *RecordedSchedule::FromString("..S.S..S");
  token.hint = MakeTest().hint;
  token.writer = MakeProgram(1);
  token.reader = MakeProgram(2);
  return token;
}

FindingsLog MakeFindings() {
  FindingsLog findings;
  Finding first;
  first.issue_id = 2;
  first.evidence = "data race: SbfsWrite / SbfsComputeChecksum @0x40";
  first.test_index = 4;
  first.trial = 1;
  first.duplicate_input = false;
  findings.Record(first);
  Finding unclassified;
  unclassified.issue_id = 0;
  unclassified.evidence = "";
  unclassified.test_index = 9;
  unclassified.trial = -1;
  unclassified.duplicate_input = true;
  findings.Record(unclassified);
  Finding repeat = first;  // Same issue, later test: bumps total only.
  repeat.test_index = 7;
  findings.Record(repeat);
  return findings;
}

PipelineResult MakeResult() {
  PipelineResult result;
  result.corpus_size = 8;
  result.profiled_ok = 7;
  result.shared_accesses = 512;
  result.pmc_count = 40;
  result.total_pmc_pairs = 999;
  result.cluster_count = 11;
  result.tests_generated = 6;
  result.tests_executed = 6;
  result.tests_with_bug = 2;
  result.channel_exercised = 5;
  result.total_trials = 36;
  result.pmc_table_digest = 0xfedcba9876543210ull;
  result.findings = MakeFindings();
  return result;
}

// Every proper prefix of `text` ending at a line boundary (and a mid-line cut) must be
// rejected. `deserializes` reports whether a candidate string parses.
void ExpectTruncationsRejected(const std::string& text,
                               const std::function<bool(const std::string&)>& deserializes) {
  ASSERT_TRUE(deserializes(text)) << "the untruncated text must parse";
  EXPECT_FALSE(deserializes("")) << "empty input";
  for (size_t pos = 0; pos + 1 < text.size(); pos++) {
    if (text[pos] != '\n') {
      continue;
    }
    std::string prefix = text.substr(0, pos + 1);
    EXPECT_FALSE(deserializes(prefix)) << "line-boundary truncation at byte " << (pos + 1);
  }
  EXPECT_FALSE(deserializes(text.substr(0, text.size() - 2))) << "mid-line truncation";
}

// A flipped version header and plain junk must be rejected without crashing.
void ExpectHeaderAndJunkRejected(const std::string& text,
                                 const std::function<bool(const std::string&)>& deserializes) {
  std::string flipped = text;
  size_t v = flipped.find("-v");  // Any "-v<digit>" header version, not just v1.
  while (v != std::string::npos && !(v + 2 < flipped.size() && isdigit(flipped[v + 2]))) {
    v = flipped.find("-v", v + 1);
  }
  ASSERT_NE(v, std::string::npos);
  flipped[v + 2] = '9';
  EXPECT_FALSE(deserializes(flipped)) << "flipped version header";
  EXPECT_FALSE(deserializes("complete garbage\nnot even close\n"));
  std::string binary;
  for (int i = 0; i < 256; i++) {
    binary.push_back(static_cast<char>(i));
  }
  EXPECT_FALSE(deserializes(binary));
}

// --- Round trips. ---

TEST(SerializeRobustnessTest, ProfilesRoundTrip) {
  std::vector<SequentialProfile> profiles = {MakeProfile(0), MakeProfile(3)};
  profiles[1].ok = false;
  profiles[1].accesses.clear();
  std::string text = SerializeProfiles(profiles);
  std::optional<std::vector<SequentialProfile>> loaded = DeserializeProfiles(text);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), profiles.size());
  for (size_t i = 0; i < profiles.size(); i++) {
    EXPECT_EQ((*loaded)[i].test_id, profiles[i].test_id);
    EXPECT_EQ((*loaded)[i].ok, profiles[i].ok);
    EXPECT_EQ((*loaded)[i].program, profiles[i].program);
    EXPECT_EQ((*loaded)[i].accesses, profiles[i].accesses);
  }
  // Serialization is canonical: a round trip reproduces the text bytes.
  EXPECT_EQ(SerializeProfiles(*loaded), text);
}

TEST(SerializeRobustnessTest, ConcurrentTestsRoundTrip) {
  std::vector<ConcurrentTest> tests = {MakeTest()};
  ConcurrentTest baseline;  // Baseline pairing: default hint (len 0), empty programs OK.
  baseline.write_test = 1;
  baseline.read_test = 1;
  baseline.writer = MakeProgram(1);
  baseline.reader = MakeProgram(1);
  tests.push_back(baseline);
  std::string text = SerializeConcurrentTests(tests, 17);
  std::optional<SerializedTests> loaded = DeserializeConcurrentTests(text);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->cluster_count, 17u);
  ASSERT_EQ(loaded->tests.size(), tests.size());
  for (size_t i = 0; i < tests.size(); i++) {
    EXPECT_EQ(loaded->tests[i].writer, tests[i].writer);
    EXPECT_EQ(loaded->tests[i].reader, tests[i].reader);
    EXPECT_EQ(loaded->tests[i].write_test, tests[i].write_test);
    EXPECT_EQ(loaded->tests[i].read_test, tests[i].read_test);
    EXPECT_EQ(loaded->tests[i].hint, tests[i].hint);
    EXPECT_EQ(loaded->tests[i].cluster_key, tests[i].cluster_key);
    EXPECT_EQ(loaded->tests[i].cluster_size, tests[i].cluster_size);
  }
  EXPECT_EQ(SerializeConcurrentTests(loaded->tests, loaded->cluster_count), text);
}

TEST(SerializeRobustnessTest, ExploreOutcomeRoundTrip) {
  ExploreOutcome outcome = MakeOutcome();
  std::string text = SerializeExploreOutcome(outcome);
  std::optional<ExploreOutcome> loaded = DeserializeExploreOutcome(text);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, outcome);
  EXPECT_EQ(SerializeExploreOutcome(*loaded), text);
}

TEST(SerializeRobustnessTest, OutcomeRecordRoundTrip) {
  OutcomeRecord record;
  record.test_index = 41;
  record.outcome = MakeOutcome();
  // Execution-time findings ride along so journal replay never re-classifies (the site
  // name registry of a cold resumed process cannot reproduce these strings).
  Finding classified;
  classified.issue_id = 11;
  classified.test_index = 41;
  classified.trial = 3;
  classified.duplicate_input = false;
  classified.evidence = "data race: <ConfigfsLookup> / <ConfigfsRmdir> @0x1018";
  record.findings.push_back(classified);
  Finding unclassified;
  unclassified.issue_id = 0;
  unclassified.test_index = 41;
  unclassified.trial = -1;
  unclassified.duplicate_input = true;
  unclassified.evidence = "";  // Empty evidence must survive the token coding.
  record.findings.push_back(unclassified);

  std::string line = EncodeOutcomeRecord(record);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "journal records must be single-line";
  std::optional<OutcomeRecord> loaded = DecodeOutcomeRecord(line);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->test_index, 41u);
  EXPECT_EQ(loaded->outcome, record.outcome);
  ASSERT_EQ(loaded->findings.size(), 2u);
  for (size_t i = 0; i < 2; i++) {
    EXPECT_EQ(loaded->findings[i].issue_id, record.findings[i].issue_id);
    EXPECT_EQ(loaded->findings[i].test_index, record.findings[i].test_index);
    EXPECT_EQ(loaded->findings[i].trial, record.findings[i].trial);
    EXPECT_EQ(loaded->findings[i].duplicate_input, record.findings[i].duplicate_input);
    EXPECT_EQ(loaded->findings[i].evidence, record.findings[i].evidence);
  }
  EXPECT_EQ(EncodeOutcomeRecord(*loaded), line);

  EXPECT_FALSE(DecodeOutcomeRecord("").has_value());
  EXPECT_FALSE(DecodeOutcomeRecord("41").has_value());
  EXPECT_FALSE(DecodeOutcomeRecord("41 nothex!").has_value());
  EXPECT_FALSE(DecodeOutcomeRecord(line + " trailing").has_value());
  EXPECT_FALSE(DecodeOutcomeRecord(line + " 6a756e6b").has_value())
      << "more findings than the declared count must not decode";

  // A record with a short findings list (fewer tokens than the count claims) fails.
  OutcomeRecord bare;
  bare.test_index = 7;
  bare.outcome = MakeOutcome();
  std::string bare_line = EncodeOutcomeRecord(bare);
  ASSERT_TRUE(DecodeOutcomeRecord(bare_line).has_value());
  EXPECT_FALSE(DecodeOutcomeRecord(bare_line.substr(0, bare_line.size() - 4)).has_value())
      << "a truncated outcome payload must not decode";
  std::string claims_one = bare_line.substr(0, bare_line.size() - 1) + "1";
  EXPECT_FALSE(DecodeOutcomeRecord(claims_one).has_value())
      << "a findings count without the findings must not decode";
}

TEST(SerializeRobustnessTest, FindingsRoundTrip) {
  FindingsLog findings = MakeFindings();
  std::string text = SerializeFindings(findings);
  std::optional<FindingsLog> loaded = DeserializeFindings(text);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->total_findings(), findings.total_findings());
  ASSERT_EQ(loaded->first_findings().size(), findings.first_findings().size());
  for (const auto& [id, finding] : findings.first_findings()) {
    ASSERT_TRUE(loaded->Found(id));
    const Finding& got = loaded->first_findings().at(id);
    EXPECT_EQ(got.evidence, finding.evidence);
    EXPECT_EQ(got.test_index, finding.test_index);
    EXPECT_EQ(got.trial, finding.trial);
    EXPECT_EQ(got.duplicate_input, finding.duplicate_input);
  }
  EXPECT_EQ(SerializeFindings(*loaded), text);
}

TEST(SerializeRobustnessTest, PipelineResultRoundTrip) {
  PipelineResult result = MakeResult();
  std::string text = SerializePipelineResult(result);
  std::optional<PipelineResult> loaded = DeserializePipelineResult(text);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(SerializePipelineResult(*loaded), text);
  EXPECT_EQ(loaded->corpus_size, result.corpus_size);
  EXPECT_EQ(loaded->pmc_table_digest, result.pmc_table_digest);
  EXPECT_EQ(loaded->findings.total_findings(), result.findings.total_findings());
  // Timings and resume bookkeeping are run-shape dependent and deliberately excluded.
  PipelineResult with_noise = result;
  with_noise.execute_seconds = 123.0;
  with_noise.tests_resumed = 5;
  with_noise.trials_retried = 9;
  EXPECT_EQ(SerializePipelineResult(with_noise), text);
}

TEST(SerializeRobustnessTest, HexCoding) {
  EXPECT_EQ(HexEncode(""), "");
  EXPECT_EQ(HexEncode(std::string("\x00\xff\x41", 3)), "00ff41");
  EXPECT_EQ(HexDecode("00ff41"), std::string("\x00\xff\x41", 3));
  EXPECT_EQ(HexDecode(""), "");
  EXPECT_FALSE(HexDecode("abc").has_value()) << "odd length";
  EXPECT_FALSE(HexDecode("zz").has_value()) << "non-hex digits";
  EXPECT_FALSE(HexDecode("aB").has_value()) << "uppercase is not canonical";
}

// --- Adversarial inputs: truncation sweep, flipped headers, junk. ---

TEST(SerializeRobustnessTest, ProfilesAdversarial) {
  std::string text = SerializeProfiles({MakeProfile(0), MakeProfile(1)});
  auto parses = [](const std::string& t) { return DeserializeProfiles(t).has_value(); };
  ExpectTruncationsRejected(text, parses);
  ExpectHeaderAndJunkRejected(text, parses);
}

TEST(SerializeRobustnessTest, ConcurrentTestsAdversarial) {
  std::string text = SerializeConcurrentTests({MakeTest(), MakeTest()}, 3);
  auto parses = [](const std::string& t) {
    return DeserializeConcurrentTests(t).has_value();
  };
  ExpectTruncationsRejected(text, parses);
  ExpectHeaderAndJunkRejected(text, parses);
}

TEST(SerializeRobustnessTest, ExploreOutcomeAdversarial) {
  std::string text = SerializeExploreOutcome(MakeOutcome());
  auto parses = [](const std::string& t) { return DeserializeExploreOutcome(t).has_value(); };
  ExpectTruncationsRejected(text, parses);
  ExpectHeaderAndJunkRejected(text, parses);
}

TEST(SerializeRobustnessTest, FindingsAdversarial) {
  std::string text = SerializeFindings(MakeFindings());
  auto parses = [](const std::string& t) { return DeserializeFindings(t).has_value(); };
  ExpectTruncationsRejected(text, parses);
  ExpectHeaderAndJunkRejected(text, parses);
}

TEST(SerializeRobustnessTest, PipelineResultAdversarial) {
  std::string text = SerializePipelineResult(MakeResult());
  auto parses = [](const std::string& t) {
    return DeserializePipelineResult(t).has_value();
  };
  ExpectTruncationsRejected(text, parses);
  ExpectHeaderAndJunkRejected(text, parses);
}

TEST(SerializeRobustnessTest, ReplayTokenRoundTrip) {
  ReplayToken token = MakeToken();
  std::string text = FormatReplayToken(token);
  EXPECT_EQ(text.find('\n'), std::string::npos) << "tokens must be single-line";
  std::optional<ReplayToken> parsed = ParseReplayToken(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, token);
  EXPECT_EQ(FormatReplayToken(*parsed), text);

  ReplayToken bare = token;  // Empty schedule codes as "-" and must round-trip.
  bare.schedule = RecordedSchedule{};
  std::optional<ReplayToken> bare_parsed = ParseReplayToken(FormatReplayToken(bare));
  ASSERT_TRUE(bare_parsed.has_value());
  EXPECT_EQ(*bare_parsed, bare);
}

TEST(SerializeRobustnessTest, ReplayTokenAdversarial) {
  std::string text = FormatReplayToken(MakeToken());
  EXPECT_FALSE(ParseReplayToken("").has_value());
  EXPECT_FALSE(ParseReplayToken("sb-replay-v1").has_value());
  EXPECT_FALSE(ParseReplayToken("complete garbage, not a token").has_value());
  // Any truncation breaks the trailing checksum (or the field structure outright).
  for (size_t cut = 1; cut < 8; cut++) {
    EXPECT_FALSE(ParseReplayToken(text.substr(0, text.size() - cut)).has_value())
        << "truncated by " << cut;
  }
  // A flipped byte anywhere — header, body, or inside the crc itself — must not parse.
  for (size_t pos : {size_t{0}, text.size() / 2, text.size() - 4}) {
    std::string bad = text;
    bad[pos] = bad[pos] == 'x' ? 'y' : 'x';
    EXPECT_FALSE(ParseReplayToken(bad).has_value()) << "flipped byte at " << pos;
  }
  EXPECT_FALSE(ParseReplayToken(text + " junk").has_value()) << "trailing junk";
  EXPECT_FALSE(ParseReplayToken(text + std::string(2 << 20, '.')).has_value())
      << "oversized input";
}

TEST(SerializeRobustnessTest, FieldCorruptionRejected) {
  // Flipping a count or a bounded field must be caught by validation, not crash.
  std::string outcome_text = SerializeExploreOutcome(MakeOutcome());
  std::string bad = outcome_text;
  size_t races_pos = bad.find("races 1");
  ASSERT_NE(races_pos, std::string::npos);
  bad.replace(races_pos, 7, "races 9");
  EXPECT_FALSE(DeserializeExploreOutcome(bad).has_value()) << "inflated element count";

  std::string capture_bad = outcome_text;
  size_t cap_pos = capture_bad.find("captures 2");
  ASSERT_NE(cap_pos, std::string::npos);
  capture_bad.replace(cap_pos, 10, "captures 9");
  EXPECT_FALSE(DeserializeExploreOutcome(capture_bad).has_value())
      << "inflated capture count";

  std::string kind_bad = outcome_text;
  size_t kind_pos = kind_bad.find("\nk 2 ");
  ASSERT_NE(kind_pos, std::string::npos);
  kind_bad[kind_pos + 3] = '7';
  EXPECT_FALSE(DeserializeExploreOutcome(kind_bad).has_value())
      << "out-of-range capture kind";

  std::string sched_bad = outcome_text;
  size_t sched_pos = sched_bad.find("..S.S");
  ASSERT_NE(sched_pos, std::string::npos);
  sched_bad[sched_pos + 2] = 'X';
  EXPECT_FALSE(DeserializeExploreOutcome(sched_bad).has_value())
      << "junk in a captured schedule";

  std::string findings_text = SerializeFindings(MakeFindings());
  bad = findings_text;
  size_t entries_pos = bad.find("entries 2");
  ASSERT_NE(entries_pos, std::string::npos);
  bad.replace(entries_pos, 9, "entries 9");
  EXPECT_FALSE(DeserializeFindings(bad).has_value()) << "count larger than total";
}

// --- Atomic file primitives (satellite: failed writes never leave partial files). ---

TEST(SerializeRobustnessTest, AtomicWriteToBadDirectoryLeavesNothing) {
  std::string path = TempPath("no_such_dir") + "/file.txt";
  EXPECT_FALSE(WriteStringToFile(path, "contents"));
  EXPECT_FALSE(PathExists(path));
  EXPECT_FALSE(PathExists(path + ".tmp"));
}

TEST(SerializeRobustnessTest, CrashBeforeRenameKeepsOldContents) {
  std::string path = TempPath("atomic.txt");
  ASSERT_TRUE(AtomicWriteFile(path, "old contents"));

  FaultInjector::Plan plan;
  plan.crash_at = 0;  // The very first fault point is this write's "fs.commit".
  FaultInjector fault(plan);
  EXPECT_FALSE(AtomicWriteFile(path, "new contents", &fault));
  EXPECT_TRUE(fault.crashed());
  EXPECT_EQ(fault.crash_site(), "fs.commit");

  // The target is untouched; the orphan .tmp holds the aborted attempt, as after a real
  // crash between write and rename.
  EXPECT_EQ(ReadFileToString(path), "old contents");
  EXPECT_EQ(ReadFileToString(path + ".tmp"), "new contents");
}

TEST(SerializeRobustnessTest, CrashAfterRenameIsDurable) {
  std::string path = TempPath("atomic_after.txt");
  FaultInjector::Plan plan;
  plan.crash_at = 1;  // "fs.committed" — died after the rename.
  FaultInjector fault(plan);
  EXPECT_FALSE(AtomicWriteFile(path, "contents", &fault));
  EXPECT_EQ(ReadFileToString(path), "contents") << "post-rename crash must be durable";
}

// --- CheckpointStore verification. ---

TEST(SerializeRobustnessTest, CheckpointStoreRejectsCorruptAndTruncatedEntries) {
  std::string dir = TempPath("store");
  CheckpointStore store(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.Put("artifact", "precious bytes, hashed in the manifest"));
  ASSERT_TRUE(store.Get("artifact").has_value());

  {
    std::ofstream f(dir + "/artifact", std::ios::trunc);  // Truncate behind the manifest.
    f << "precious";
  }
  CheckpointStore reopened(dir);
  EXPECT_FALSE(reopened.Get("artifact").has_value()) << "truncated entry must not load";

  ASSERT_TRUE(store.Put("artifact", "precious bytes, hashed in the manifest"));
  {
    std::fstream f(dir + "/artifact", std::ios::in | std::ios::out);
    f.seekp(3);
    f.put('X');  // Same size, flipped byte: caught by the content hash.
  }
  CheckpointStore reopened2(dir);
  EXPECT_FALSE(reopened2.Get("artifact").has_value()) << "corrupt entry must not load";
}

TEST(SerializeRobustnessTest, CheckpointStoreRejectsBadNamesAndMissingEntries) {
  std::string dir = TempPath("store_names");
  CheckpointStore store(dir);
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store.Put("", "x"));
  EXPECT_FALSE(store.Put("../escape", "x"));
  EXPECT_FALSE(store.Put("has space", "x"));
  EXPECT_FALSE(store.Put("MANIFEST", "x")) << "the manifest name is reserved";
  EXPECT_FALSE(store.Get("never_written").has_value());
  EXPECT_TRUE(store.Put("ok-name_1.txt", "x"));
  EXPECT_EQ(store.Get("ok-name_1.txt"), "x");
}

TEST(SerializeRobustnessTest, JournalReplayStopsAtCorruptTail) {
  std::string dir = TempPath("journal");
  CheckpointStore store(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.AppendJournal("exec", "record zero"));
  ASSERT_TRUE(store.AppendJournal("exec", "record one"));
  ASSERT_TRUE(store.AppendJournal("exec", "record two"));
  EXPECT_EQ(store.ReadJournal("exec"),
            (std::vector<std::string>{"record zero", "record one", "record two"}));

  // A crash-truncated final line: everything before it still replays.
  std::optional<std::string> raw = ReadFileContents(dir + "/exec.journal");
  ASSERT_TRUE(raw.has_value());
  {
    std::ofstream f(dir + "/exec.journal", std::ios::trunc | std::ios::binary);
    f << raw->substr(0, raw->size() - 5);
  }
  EXPECT_EQ(store.ReadJournal("exec"),
            (std::vector<std::string>{"record zero", "record one"}));

  // A flipped byte mid-journal ends replay at the corruption, dropping the tail.
  {
    std::ofstream f(dir + "/exec.journal", std::ios::trunc | std::ios::binary);
    std::string tampered = *raw;
    tampered[tampered.find("record one")] = 'X';
    f << tampered;
  }
  EXPECT_EQ(store.ReadJournal("exec"), (std::vector<std::string>{"record zero"}));

  EXPECT_FALSE(store.AppendJournal("exec", "two\nlines")) << "records must be single-line";
}

TEST(SerializeRobustnessTest, TamperedManifestIsIgnoredWholesale) {
  std::string dir = TempPath("manifest");
  {
    CheckpointStore store(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.Put("a", "alpha"));
    ASSERT_TRUE(store.Put("b", "beta"));
  }
  std::optional<std::string> manifest = ReadFileContents(dir + "/MANIFEST");
  ASSERT_TRUE(manifest.has_value());
  {
    std::ofstream f(dir + "/MANIFEST", std::ios::trunc | std::ios::binary);
    f << *manifest << "entry ../evil 5 0123456789abcdef\n";
  }
  CheckpointStore reopened(dir);
  EXPECT_EQ(reopened.entry_count(), 0u)
      << "a manifest with any malformed line is fully suspect";
  EXPECT_FALSE(reopened.Get("a").has_value());
}

}  // namespace
}  // namespace snowboard
