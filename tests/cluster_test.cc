// Tests for the Table 1 clustering strategies: keys, filters, S-INS dual membership, and
// relative cluster counts (S-FULL >= S-CH >= S-INS-PAIR ...).
#include <gtest/gtest.h>

#include "src/snowboard/cluster.h"

namespace snowboard {
namespace {

Pmc MakePmc(SiteId ws, GuestAddr wa, uint8_t wl, uint64_t wv, SiteId rs, GuestAddr ra,
            uint8_t rl, uint64_t rv, bool df = false) {
  Pmc pmc;
  pmc.key.write = PmcSide{wa, wl, ws, wv};
  pmc.key.read = PmcSide{ra, rl, rs, rv};
  pmc.key.df_leader = df;
  pmc.pairs.push_back(PmcTestPair{0, 1});
  pmc.total_pairs = 1;
  return pmc;
}

TEST(ClusterTest, StrategyNames) {
  EXPECT_STREQ(StrategyName(Strategy::kSFull), "S-FULL");
  EXPECT_STREQ(StrategyName(Strategy::kSChDouble), "S-CH-DOUBLE");
  EXPECT_STREQ(StrategyName(Strategy::kRandomPairing), "Random pairing");
}

TEST(ClusterTest, SFullSeparatesByValue) {
  std::vector<Pmc> pmcs = {MakePmc(1, 0x100, 4, 5, 2, 0x100, 4, 0),
                           MakePmc(1, 0x100, 4, 6, 2, 0x100, 4, 0)};
  EXPECT_EQ(ClusterPmcs(pmcs, Strategy::kSFull).size(), 2u);
  // S-CH ignores values: one cluster.
  std::vector<PmcCluster> ch = ClusterPmcs(pmcs, Strategy::kSCh);
  ASSERT_EQ(ch.size(), 1u);
  EXPECT_EQ(ch[0].members.size(), 2u);
}

TEST(ClusterTest, SChNullFiltersNonZeroWrites) {
  std::vector<Pmc> pmcs = {MakePmc(1, 0x100, 4, 0, 2, 0x100, 4, 7),
                           MakePmc(1, 0x100, 4, 6, 2, 0x100, 4, 7)};
  std::vector<PmcCluster> clusters = ClusterPmcs(pmcs, Strategy::kSChNull);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members.size(), 1u);
  EXPECT_EQ(clusters[0].members[0], 0u);  // Only the zero-write PMC survives.
}

TEST(ClusterTest, SChUnalignedFiltersMatchedRanges) {
  std::vector<Pmc> pmcs = {
      MakePmc(1, 0x100, 4, 5, 2, 0x100, 4, 0),   // Aligned: filtered out.
      MakePmc(1, 0x100, 4, 5, 2, 0x102, 4, 0),   // Different start: kept.
      MakePmc(1, 0x100, 2, 5, 2, 0x100, 4, 0),   // Different length: kept.
  };
  std::vector<PmcCluster> clusters = ClusterPmcs(pmcs, Strategy::kSChUnaligned);
  size_t members = 0;
  for (const PmcCluster& c : clusters) {
    members += c.members.size();
  }
  EXPECT_EQ(members, 2u);
}

TEST(ClusterTest, SChDoubleKeepsOnlyDfLeaders) {
  std::vector<Pmc> pmcs = {MakePmc(1, 0x100, 4, 5, 2, 0x100, 4, 0, /*df=*/true),
                           MakePmc(1, 0x100, 4, 5, 3, 0x100, 4, 0, /*df=*/false)};
  std::vector<PmcCluster> clusters = ClusterPmcs(pmcs, Strategy::kSChDouble);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members[0], 0u);
}

TEST(ClusterTest, SInsPutsPmcInTwoClusters) {
  std::vector<Pmc> pmcs = {MakePmc(1, 0x100, 4, 5, 2, 0x200, 4, 0)};
  std::vector<PmcCluster> clusters = ClusterPmcs(pmcs, Strategy::kSIns);
  EXPECT_EQ(clusters.size(), 2u);  // One write-instruction, one read-instruction cluster.
}

TEST(ClusterTest, SInsSharedWriterMerges) {
  // Two PMCs sharing the write instruction but with different read instructions: S-INS
  // merges them on the writer side (3 clusters total), S-INS-PAIR keeps 2.
  std::vector<Pmc> pmcs = {MakePmc(1, 0x100, 4, 5, 2, 0x200, 4, 0),
                           MakePmc(1, 0x104, 4, 6, 3, 0x300, 4, 0)};
  EXPECT_EQ(ClusterPmcs(pmcs, Strategy::kSIns).size(), 3u);
  EXPECT_EQ(ClusterPmcs(pmcs, Strategy::kSInsPair).size(), 2u);
}

TEST(ClusterTest, SMemIgnoresInstructionsAndValues) {
  std::vector<Pmc> pmcs = {MakePmc(1, 0x100, 4, 5, 2, 0x100, 4, 0),
                           MakePmc(9, 0x100, 4, 8, 8, 0x100, 4, 1)};
  std::vector<PmcCluster> clusters = ClusterPmcs(pmcs, Strategy::kSMem);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members.size(), 2u);
}

TEST(ClusterTest, ClusterCountMonotonicity) {
  // Build a synthetic PMC population with varying sites/addresses/values and check the
  // expected coarseness ordering: |S-FULL| >= |S-CH| >= |S-INS-PAIR| >= |S-INS clusters
  // per member dimension|.
  std::vector<Pmc> pmcs;
  for (SiteId ws = 1; ws <= 4; ws++) {
    for (SiteId rs = 10; rs <= 13; rs++) {
      for (uint64_t value = 0; value < 4; value++) {
        pmcs.push_back(MakePmc(ws, 0x100 + 8 * static_cast<GuestAddr>(ws), 4, value, rs,
                               0x100 + 8 * static_cast<GuestAddr>(ws), 4, value + 100));
      }
    }
  }
  size_t full = ClusterPmcs(pmcs, Strategy::kSFull).size();
  size_t ch = ClusterPmcs(pmcs, Strategy::kSCh).size();
  size_t ins_pair = ClusterPmcs(pmcs, Strategy::kSInsPair).size();
  size_t mem = ClusterPmcs(pmcs, Strategy::kSMem).size();
  EXPECT_GE(full, ch);
  EXPECT_GE(ch, ins_pair);
  EXPECT_GE(ins_pair, mem);
  EXPECT_EQ(full, pmcs.size());       // All keys distinct by construction.
  EXPECT_EQ(ins_pair, 16u);           // 4 write sites x 4 read sites.
}

TEST(ClusterTest, FilterPredicatesExposed) {
  PmcKey key;
  key.write = PmcSide{0x100, 4, 1, 0};
  key.read = PmcSide{0x100, 4, 2, 5};
  EXPECT_TRUE(StrategyFilter(Strategy::kSChNull, key));
  key.write.value = 3;
  EXPECT_FALSE(StrategyFilter(Strategy::kSChNull, key));
  EXPECT_FALSE(StrategyFilter(Strategy::kSChUnaligned, key));
  key.read.addr = 0x102;
  EXPECT_TRUE(StrategyFilter(Strategy::kSChUnaligned, key));
  EXPECT_FALSE(StrategyFilter(Strategy::kSChDouble, key));
  key.df_leader = true;
  EXPECT_TRUE(StrategyFilter(Strategy::kSChDouble, key));
  EXPECT_TRUE(StrategyFilter(Strategy::kSFull, key));
  EXPECT_TRUE(StrategyFilter(Strategy::kSCh, key));
}

TEST(ClusterTest, BaselinesDoNotCluster) {
  EXPECT_FALSE(StrategyUsesPmcs(Strategy::kRandomPairing));
  EXPECT_FALSE(StrategyUsesPmcs(Strategy::kDuplicatePairing));
  EXPECT_TRUE(StrategyUsesPmcs(Strategy::kRandomSInsPair));
  for (Strategy s : kAllClusteringStrategies) {
    EXPECT_TRUE(StrategyUsesPmcs(s));
  }
}

}  // namespace
}  // namespace snowboard
