// Tests for the networking subsystems: netdev/MAC/MTU, l2tp (issue #12, Figure 1), packet
// fanout (#17), fib6 (#10), and TCP congestion control (#16).
#include <gtest/gtest.h>

#include "src/kernel/net/fib6.h"
#include "src/kernel/net/l2tp.h"
#include "src/kernel/net/netdev.h"
#include "src/kernel/net/packet.h"
#include "src/kernel/net/tcp_cong.h"
#include "src/kernel/task.h"
#include "src/sim/site.h"

namespace snowboard {
namespace {

class NetTest : public ::testing::Test {
 protected:
  void Enter(Ctx& ctx, int task = 0) { TaskEnter(ctx, vm_.globals().tasks[task]); }
  KernelVm vm_;
};

TEST_F(NetTest, MacSetThenGetConsistentSequentially) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    EXPECT_EQ(DevIoctlSetMac(ctx, g, 0, 3), 0);
    int64_t mac = DevIoctlGetMac(ctx, g, 0);
    // Pattern bytes are 0x10 + 3*0x11 + i = 0x43..0x48: no tearing sequentially.
    EXPECT_EQ(mac & 0xFF, 0x43);
    EXPECT_EQ((mac >> 8) & 0xFF, 0x44);
    EXPECT_EQ((mac >> 32) & 0xFF, 0x47);
  });
}

// Interposes the reader between the writer's two MAC copy chunks (Figure 3).
class TornMacScheduler : public Scheduler {
 public:
  explicit TornMacScheduler(GuestAddr dev_addr) : dev_addr_(dev_addr) {}
  bool AfterAccess(VcpuId vcpu, const Access& access) override {
    // After the writer's first 4-byte chunk lands in dev->dev_addr, switch to the reader.
    return vcpu == 0 && access.type == AccessType::kWrite && access.addr == dev_addr_ &&
           access.len == 4;
  }

 private:
  GuestAddr dev_addr_;
};

TEST_F(NetTest, Issue9TornMacObservable) {
  const KernelGlobals& g = vm_.globals();
  GuestAddr dev = 0;
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    dev = DevGetByIndex(ctx, g, 0);
  });
  vm_.RestoreSnapshot();
  TornMacScheduler scheduler(dev + kDevAddr);
  Engine::RunOptions opts;
  opts.scheduler = &scheduler;
  int64_t observed = 0;
  Engine::RunResult result = vm_.engine().Run(
      {[&](Ctx& ctx) {
         Enter(ctx, 0);
         DevIoctlSetMac(ctx, g, 0, 3);  // New MAC bytes 0x43..: first chunk then switch.
       },
       [&](Ctx& ctx) {
         Enter(ctx, 1);
         observed = DevIoctlGetMac(ctx, g, 0);  // Boot MAC is AA:AA:AA:AA:AA:AA.
       }},
      opts);
  EXPECT_TRUE(result.completed);
  // Torn: first 4 bytes new (0x43..0x46), last 2 bytes old (0xAA).
  EXPECT_EQ(observed & 0xFF, 0x43);
  EXPECT_EQ((observed >> 32) & 0xFFFF, 0xAAAA);
}

TEST_F(NetTest, MtuSetAndRawSend) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    GuestAddr sk = SockAlloc(ctx, g, kAfInet6, 0);
    ASSERT_NE(sk, kGuestNull);
    EXPECT_EQ(DevSetMtu(ctx, g, 0, 900), 0);
    EXPECT_EQ(Rawv6SendHdrinc(ctx, g, sk, 800), 800);
    EXPECT_EQ(Rawv6SendHdrinc(ctx, g, sk, 1000), kEINVAL);  // Over MTU.
    EXPECT_EQ(DevSetMtu(ctx, g, 0, 10), kEINVAL);           // Under the floor.
  });
}

TEST_F(NetTest, L2tpRegisterAndGet) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    GuestAddr sk = SockAlloc(ctx, g, kPxProtoOl2tp, 0);
    GuestAddr tunnel = L2tpTunnelRegister(ctx, g, 7, sk);
    ASSERT_NE(tunnel, kGuestNull);
    EXPECT_EQ(L2tpTunnelGet(ctx, g, 7), tunnel);
    EXPECT_EQ(L2tpTunnelGet(ctx, g, 8), kGuestNull);
    EXPECT_EQ(ctx.Load32(tunnel + kTunnelSock, SB_SITE()), sk);
  });
}

TEST_F(NetTest, L2tpConnectThenXmitSequentialOk) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    GuestAddr sk = SockAlloc(ctx, g, kPxProtoOl2tp, 0);
    EXPECT_EQ(PppoL2tpConnect(ctx, g, sk, 3), 0);
    EXPECT_EQ(L2tpXmit(ctx, g, sk, 100), 100);
    GuestAddr sk2 = SockAlloc(ctx, g, kPxProtoOl2tp, 0);
    EXPECT_EQ(L2tpXmit(ctx, g, sk2, 10), kENOTCONN);  // Never connected.
  });
}

// The Figure 1 interleaving: switch the registering writer away right after the RCU list
// publish (➊), before tunnel->sock is set (➋).
class L2tpWindowScheduler : public Scheduler {
 public:
  explicit L2tpWindowScheduler(GuestAddr list_head) : list_head_(list_head) {}
  bool AfterAccess(VcpuId vcpu, const Access& access) override {
    return vcpu == 0 && access.type == AccessType::kWrite && access.addr == list_head_;
  }

 private:
  GuestAddr list_head_;
};

TEST_F(NetTest, Issue12Figure1NullDerefPanic) {
  const KernelGlobals& g = vm_.globals();
  L2tpWindowScheduler scheduler(g.l2tp + kL2tpListHead);
  Engine::RunOptions opts;
  opts.scheduler = &scheduler;
  Engine::RunResult result = vm_.engine().Run(
      {[&](Ctx& ctx) {
         // Test 1 (writer): connect() registers tunnel 1.
         Enter(ctx, 0);
         GuestAddr sk = SockAlloc(ctx, g, kPxProtoOl2tp, 0);
         PppoL2tpConnect(ctx, g, sk, 1);
       },
       [&](Ctx& ctx) {
         // Test 2 (reader): connect() finds the half-registered tunnel; sendmsg()
         // dereferences its null sock.
         Enter(ctx, 1);
         GuestAddr sk = SockAlloc(ctx, g, kPxProtoOl2tp, 0);
         PppoL2tpConnect(ctx, g, sk, 1);
         L2tpXmit(ctx, g, sk, 64);
       }},
      opts);
  EXPECT_TRUE(result.panicked);
  EXPECT_NE(result.panic_message.find("NULL pointer dereference"), std::string::npos);
  EXPECT_NE(result.panic_message.find("L2tpXmit"), std::string::npos);
}

TEST_F(NetTest, FanoutJoinSendLeave) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    GuestAddr sk1 = SockAlloc(ctx, g, kAfPacket, 0);
    GuestAddr sk2 = SockAlloc(ctx, g, kAfPacket, 0);
    EXPECT_EQ(FanoutAdd(ctx, g, sk1, 0), 0);
    EXPECT_EQ(FanoutAdd(ctx, g, sk2, 0), 0);
    EXPECT_EQ(PacketSendmsg(ctx, g, sk1, 100), 100);
    EXPECT_EQ(FanoutUnlink(ctx, g, sk1), 0);
    EXPECT_EQ(FanoutUnlink(ctx, g, sk1), kENOENT);  // Already left.
    EXPECT_EQ(PacketSendmsg(ctx, g, sk2, 100), 100);
    EXPECT_EQ(FanoutUnlink(ctx, g, sk2), 0);
    // Empty group: demux refuses.
    GuestAddr sk3 = SockAlloc(ctx, g, kAfPacket, 0);
    EXPECT_EQ(FanoutAdd(ctx, g, sk3, 0), 0);
    EXPECT_EQ(FanoutUnlink(ctx, g, sk3), 0);
    ctx.Store32(sk3 + kSockProtoData, 0, SB_SITE());
    EXPECT_EQ(PacketSendmsg(ctx, g, sk3, 5), 5);  // Non-fanout path.
  });
}

TEST_F(NetTest, FanoutGroupFillsUp) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    for (uint32_t i = 0; i < kFanoutMaxMembers; i++) {
      GuestAddr sk = SockAlloc(ctx, g, kAfPacket, 0);
      EXPECT_EQ(FanoutAdd(ctx, g, sk, 1), 0);
    }
    GuestAddr overflow = SockAlloc(ctx, g, kAfPacket, 0);
    EXPECT_EQ(FanoutAdd(ctx, g, overflow, 1), kENOMEM);
  });
}

TEST_F(NetTest, Fib6CookieAndFlush) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    int64_t before = Fib6GetCookieSafe(ctx, g, 0);
    EXPECT_EQ(Fib6CleanTree(ctx, g), 0);
    int64_t after = Fib6GetCookieSafe(ctx, g, 0);
    EXPECT_NE(before, after);  // Sernum bumped.
    EXPECT_EQ(before & 0xFFFF, after & 0xFFFF);  // Cookie unchanged.
  });
}

TEST_F(NetTest, TcpCongestionDefaultPropagates) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    GuestAddr sk = SockAlloc(ctx, g, kAfInet, 0);
    EXPECT_EQ(TcpSetDefaultCongestionControl(ctx, g, 2), 0);  // "bbr".
    EXPECT_EQ(TcpSetCongestionControl(ctx, g, sk, 0), 0);     // Copy default.
    EXPECT_EQ(ctx.Load8(sk + kSockCongName, SB_SITE()), 'b');
    EXPECT_EQ(ctx.Load8(sk + kSockCongName + 1, SB_SITE()), 'b');
    EXPECT_EQ(ctx.Load8(sk + kSockCongName + 2, SB_SITE()), 'r');
    EXPECT_EQ(TcpSetCongestionControl(ctx, g, sk, 1), 0);  // Direct "reno".
    EXPECT_EQ(ctx.Load8(sk + kSockCongName, SB_SITE()), 'r');
  });
}

TEST_F(NetTest, PacketGetnameReadsMac) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    GuestAddr sk = SockAlloc(ctx, g, kAfPacket, 0);
    ctx.Store32(sk + kSockBoundIf, 0, SB_SITE());
    int64_t name = PacketGetname(ctx, g, sk);
    EXPECT_EQ(name & 0xFF, 0xAA);  // Boot MAC.
    EXPECT_EQ(E1000SetMac(ctx, g, 0, 1), 0);
    int64_t renamed = PacketGetname(ctx, g, sk);
    EXPECT_NE(renamed, name);
  });
}

}  // namespace
}  // namespace snowboard
