// Tracer validity: the Chrome trace_event JSON stream must be structurally sound (balanced
// braces, one event per line), span nesting must balance per thread — checked over the
// begin_seq/end_seq logical clocks, which are wall-clock-free — and everything outside the
// "ts"/"dur" fields must be byte-deterministic across sessions.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "src/util/trace.h"

namespace snowboard {
namespace {

// Events are emitted one per line; pull out the lines that look like events.
std::vector<std::string> EventLines(const std::string& json) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < json.size()) {
    size_t end = json.find('\n', pos);
    if (end == std::string::npos) {
      end = json.size();
    }
    std::string line = json.substr(pos, end - pos);
    if (line.rfind("{\"name\":", 0) == 0) {
      lines.push_back(std::move(line));
    }
    pos = end + 1;
  }
  return lines;
}

uint64_t FieldValue(const std::string& line, const std::string& key) {
  size_t at = line.find("\"" + key + "\":");
  EXPECT_NE(at, std::string::npos) << key << " missing in " << line;
  if (at == std::string::npos) {
    return 0;
  }
  return std::strtoull(line.c_str() + at + key.size() + 3, nullptr, 10);
}

std::string Phase(const std::string& line) {
  size_t at = line.find("\"ph\":\"");
  EXPECT_NE(at, std::string::npos) << line;
  return at == std::string::npos ? "" : line.substr(at + 6, 1);
}

// Minimal structural JSON check: braces/brackets balance outside of string literals.
void ExpectBalancedJson(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); i++) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') {
        i++;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      depth++;
    } else if (c == '}' || c == ']') {
      depth--;
      ASSERT_GE(depth, 0) << "close without open at offset " << i;
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

std::string MaskTimestamps(const std::string& json) {
  static const std::regex ts_re("\"(ts|dur)\":[0-9.]+");
  return std::regex_replace(json, ts_re, "\"$1\":0");
}

void EmitNestedSpans(int salt) {
  for (int i = 0; i < 4; i++) {
    TRACE_SPAN("test.outer", static_cast<uint64_t>(salt * 100 + i));
    TRACE_COUNTER("test.counter", static_cast<uint64_t>(i));
    {
      TRACE_SPAN("test.inner", static_cast<uint64_t>(i));
      TRACE_INSTANT("test.marker", static_cast<uint64_t>(i));
    }
  }
}

TEST(TraceTest, InactiveEmitsNothingAndAllocatesNoBuffer) {
  ASSERT_FALSE(Tracer::Active());
  EmitNestedSpans(0);
  EXPECT_EQ(Tracer::Global().ThreadBuffer(), nullptr);
  EXPECT_EQ(Tracer::Global().NowNanos(), 0u);
}

TEST(TraceTest, SpanNestingBalancesPerThread) {
  Tracer::Global().Start();
  EmitNestedSpans(0);
  std::vector<std::thread> threads;
  for (int t = 1; t <= 3; t++) {
    threads.emplace_back([t]() { EmitNestedSpans(t); });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  Tracer::Global().Stop();

  std::string json = Tracer::Global().ChromeTraceJson();
  ExpectBalancedJson(json);
  std::vector<std::string> events = EventLines(json);
  // 4 threads x 4 iterations x (outer span + counter + inner span + instant).
  ASSERT_EQ(events.size(), 4u * 4u * 4u);

  struct Interval {
    uint64_t begin, end;
  };
  std::map<uint64_t, std::vector<Interval>> spans_by_tid;
  std::map<uint64_t, uint64_t> last_seq_by_tid;
  for (const std::string& line : events) {
    uint64_t tid = FieldValue(line, "tid");
    uint64_t begin = FieldValue(line, "begin_seq");
    uint64_t end = FieldValue(line, "end_seq");
    std::string ph = Phase(line);
    if (ph == "X") {
      ASSERT_LT(begin, end) << line;
      spans_by_tid[tid].push_back({begin, end});
    } else {
      ASSERT_EQ(begin, end) << line;  // Counters/instants are points on the logical clock.
    }
    // Events within one tid arrive in emission order — spans are pushed at CLOSE, so the
    // order is strictly increasing end_seq (the determinism contract).
    auto it = last_seq_by_tid.find(tid);
    if (it != last_seq_by_tid.end()) {
      ASSERT_GT(end, it->second) << "out-of-order event in tid " << tid << ": " << line;
    }
    last_seq_by_tid[tid] = end;
  }
  ASSERT_EQ(spans_by_tid.size(), 4u);

  // Proper nesting: any two spans of one thread are either disjoint or one contains the
  // other — a partial overlap means an unbalanced open/close.
  for (const auto& [tid, spans] : spans_by_tid) {
    ASSERT_EQ(spans.size(), 8u) << "tid " << tid;
    for (size_t a = 0; a < spans.size(); a++) {
      for (size_t b = a + 1; b < spans.size(); b++) {
        const Interval& x = spans[a];
        const Interval& y = spans[b];
        bool disjoint = x.end < y.begin || y.end < x.begin;
        bool x_in_y = y.begin < x.begin && x.end < y.end;
        bool y_in_x = x.begin < y.begin && y.end < x.end;
        EXPECT_TRUE(disjoint || x_in_y || y_in_x)
            << "tid " << tid << ": spans [" << x.begin << "," << x.end << "] and ["
            << y.begin << "," << y.end << "] partially overlap";
      }
    }
  }
}

TEST(TraceTest, FullBufferDropsInsteadOfGrowing) {
  Tracer::Global().Start(/*per_thread_capacity=*/4);
  for (int i = 0; i < 32; i++) {
    TRACE_INSTANT("test.flood", static_cast<uint64_t>(i));
  }
  Tracer::Global().Stop();
  EXPECT_EQ(Tracer::Global().TotalDropped(), 28u);
  std::string json = Tracer::Global().ChromeTraceJson();
  ExpectBalancedJson(json);
  EXPECT_EQ(EventLines(json).size(), 4u);
  EXPECT_NE(json.find("\"dropped_records\":\"28\""), std::string::npos);
}

TEST(TraceTest, MaskedOutputIsDeterministicAcrossSessions) {
  std::string runs[2];
  for (std::string& out : runs) {
    Tracer::Global().Start();
    EmitNestedSpans(7);
    Tracer::Global().Stop();
    out = MaskTimestamps(Tracer::Global().ChromeTraceJson());
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_NE(runs[0].find("\"name\":\"test.outer\""), std::string::npos);
}

}  // namespace
}  // namespace snowboard
