// Tests for the SKI baseline schedulers and the §5.4 comparison harness.
#include <gtest/gtest.h>

#include "src/fuzz/generator.h"
#include "src/ski/baselines.h"
#include "src/snowboard/pipeline.h"

namespace snowboard {
namespace {

Access MakeAccess(AccessType type, GuestAddr addr, SiteId site, uint64_t value) {
  Access a;
  a.type = type;
  a.addr = addr;
  a.len = 4;
  a.site = site;
  a.value = value;
  return a;
}

TEST(SkiInstructionSchedulerTest, MatchesOnSiteRegardlessOfTarget) {
  PmcKey hint;
  hint.write = PmcSide{0x2000, 4, 11, 5};
  hint.read = PmcSide{0x3000, 4, 22, 0};
  SkiInstructionScheduler scheduler(hint);
  scheduler.SeedTrial(1);
  // Same site, totally different address AND value: SKI still considers a switch —
  // "regardless of memory targets" (§5.4).
  for (int i = 0; i < 64; i++) {
    scheduler.AfterAccess(0, MakeAccess(AccessType::kWrite, 0x9990, 11, 777));
  }
  EXPECT_EQ(scheduler.switches_considered(), 64u);
  // Unrelated site: never considered.
  scheduler.AfterAccess(0, MakeAccess(AccessType::kWrite, 0x2000, 99, 5));
  EXPECT_EQ(scheduler.switches_considered(), 64u);
}

TEST(SkiPctSchedulerTest, DeterministicChangePoints) {
  SkiPctScheduler a(3, 1000);
  SkiPctScheduler b(3, 1000);
  a.SeedTrial(5);
  b.SeedTrial(5);
  int switches_a = 0;
  int switches_b = 0;
  for (int i = 0; i < 1200; i++) {
    Access access = MakeAccess(AccessType::kRead, 0x2000, 1, 0);
    switches_a += a.AfterAccess(0, access) ? 1 : 0;
    switches_b += b.AfterAccess(0, access) ? 1 : 0;
  }
  EXPECT_EQ(switches_a, switches_b);
  EXPECT_LE(switches_a, 3);
  EXPECT_GE(switches_a, 1);
}

TEST(SkiPctSchedulerTest, DifferentSeedsDifferentSchedules) {
  SkiPctScheduler a(3, 10000);
  a.SeedTrial(1);
  SkiPctScheduler b(3, 10000);
  b.SeedTrial(2);
  std::vector<bool> decisions_a;
  std::vector<bool> decisions_b;
  for (int i = 0; i < 5000; i++) {
    Access access = MakeAccess(AccessType::kRead, 0x2000, 1, 0);
    decisions_a.push_back(a.AfterAccess(0, access));
    decisions_b.push_back(b.AfterAccess(0, access));
  }
  EXPECT_NE(decisions_a, decisions_b);
}

TEST(SkiComparisonTest, SnowboardExposesL2tpFasterThanSki) {
  // The §5.4 headline: PMC hints need far fewer interleavings than SKI's unguided search.
  KernelVm vm;
  std::vector<Program> seeds = SeedPrograms();
  std::vector<Program> corpus = {seeds[0], seeds[1]};
  std::vector<SequentialProfile> profiles = ProfileCorpus(vm, corpus);
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
  GuestAddr list_head = vm.globals().l2tp + 4;
  ConcurrentTest test;
  test.writer = corpus[0];
  test.reader = corpus[1];
  test.write_test = 0;
  test.read_test = 1;
  bool hint_found = false;
  for (const Pmc& pmc : pmcs) {
    if (pmc.key.write.addr == list_head && pmc.key.read.addr == list_head &&
        pmc.key.write.value != 0) {
      test.hint = pmc.key;
      hint_found = true;
      break;
    }
  }
  ASSERT_TRUE(hint_found);

  ExposeComparison comparison =
      CompareTrialsToExpose(vm, test, /*target_issue=*/12, /*max_trials=*/512, /*seed=*/3);
  EXPECT_TRUE(comparison.snowboard_found);
  // Snowboard's guided search must not be slower than SKI's unguided one; typically it is
  // one to two orders of magnitude faster (9.76 vs 826.29 interleavings in the paper).
  if (comparison.ski_found) {
    EXPECT_LE(comparison.snowboard_trials, comparison.ski_trials);
  } else {
    EXPECT_LT(comparison.snowboard_trials, 512);
  }
}

TEST(SkiHintsTest, InstructionHintedExplorationRuns) {
  KernelVm vm;
  std::vector<Program> seeds = SeedPrograms();
  ConcurrentTest test;
  test.writer = seeds[0];
  test.reader = seeds[1];
  test.write_test = 0;
  test.read_test = 1;
  ExplorerOptions options;
  options.num_trials = 4;
  ExploreOutcome outcome = ExploreWithSkiHints(vm, test, options);
  EXPECT_EQ(outcome.trials_run, 4);
}

}  // namespace
}  // namespace snowboard
