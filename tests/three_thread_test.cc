// Tests for the §6 "Testing Thread Count" extension: three-vCPU engine runs, three-thread
// race detection, and three-threaded PMC exploration (fan-out and chain hints).
#include <gtest/gtest.h>

#include "src/fuzz/generator.h"
#include "src/kernel/net/netdev.h"
#include "src/kernel/task.h"
#include "src/sim/site.h"
#include "src/snowboard/pipeline.h"

namespace snowboard {
namespace {

class AlternatingScheduler : public Scheduler {
 public:
  bool AfterAccess(VcpuId vcpu, const Access& access) override { return true; }
};

TEST(ThreeThreadEngineTest, ThreeVcpusRunSerialized) {
  Engine engine(1 << 16);
  GuestAddr cells = engine.mem().StaticAlloc(16, 8);
  AlternatingScheduler scheduler;
  Engine::RunOptions opts;
  opts.scheduler = &scheduler;
  auto writer = [&](int index) {
    return [&, index](Ctx& ctx) {
      for (int i = 0; i < 3; i++) {
        ctx.Store32(cells + 4 * static_cast<uint32_t>(index), static_cast<uint32_t>(i),
                    SB_SITE());
      }
    };
  };
  Engine::RunResult result = engine.Run({writer(0), writer(1), writer(2)}, opts);
  EXPECT_TRUE(result.completed);
  // Round-robin rotation across the three vCPUs.
  std::vector<VcpuId> order;
  for (const Event& e : result.trace) {
    if (e.kind == EventKind::kAccess) {
      order.push_back(e.vcpu);
    }
  }
  ASSERT_GE(order.size(), 6u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
  EXPECT_EQ(order[3], 0);
}

TEST(ThreeThreadEngineTest, BootHasThreeTasks) {
  KernelVm vm;
  for (int i = 0; i < kMaxTestVcpus; i++) {
    EXPECT_NE(vm.globals().tasks[i], kGuestNull);
  }
  EXPECT_NE(vm.globals().tasks[0], vm.globals().tasks[2]);
}

TEST(ThreeThreadDetectorTest, RaceBetweenVcpu0And2) {
  Trace trace;
  auto access = [](VcpuId vcpu, AccessType type, SiteId site) {
    Event e;
    e.kind = EventKind::kAccess;
    e.vcpu = vcpu;
    e.access.type = type;
    e.access.vcpu = vcpu;
    e.access.addr = 0x2000;
    e.access.len = 4;
    e.access.site = site;
    return e;
  };
  trace.push_back(access(0, AccessType::kWrite, 11));
  trace.push_back(access(2, AccessType::kRead, 22));
  std::vector<RaceReport> races = DetectRaces(trace);
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(races[0].write_site, 11u);
  EXPECT_EQ(races[0].other_site, 22u);
}

TEST(ThreeThreadExploreTest, FanOutWriteTwoReads) {
  // 1 writer (MAC setter) + 2 readers (MAC getters): both read channels share the write.
  KernelVm vm;
  std::vector<Program> seeds = SeedPrograms();
  std::vector<Program> corpus = {seeds[2], seeds[3]};  // setter, getter.
  std::vector<SequentialProfile> profiles = ProfileCorpus(vm, corpus);
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);

  GuestAddr dev = kGuestNull;
  vm.engine().RunSequential([&](Ctx& ctx) {
    TaskEnter(ctx, vm.globals().tasks[0]);
    dev = DevGetByIndex(ctx, vm.globals(), 0);
  });
  const Pmc* channel = nullptr;
  for (const Pmc& pmc : pmcs) {
    if (pmc.key.write.addr >= dev + kDevAddr && pmc.key.write.addr < dev + kDevAddr + 6) {
      channel = &pmc;
      break;
    }
  }
  ASSERT_NE(channel, nullptr);

  ThreeThreadTest test;
  test.programs[0] = corpus[0];  // Writer.
  test.programs[1] = corpus[1];  // Reader A.
  test.programs[2] = corpus[1];  // Reader B.
  test.hint_a = channel->key;
  test.hint_b = channel->key;

  ExplorerOptions options;
  options.num_trials = 24;
  vm.RestoreSnapshot();
  ExploreOutcome outcome = ExploreThreeThreaded(vm, test, options);
  EXPECT_EQ(outcome.trials_run, 24);
  EXPECT_TRUE(outcome.bug_found);  // The #9 race fires with either reader.
  bool classified = false;
  for (const RaceReport& race : outcome.races) {
    classified = classified || ClassifyRace(race) == 9;
  }
  EXPECT_TRUE(classified);
}

TEST(ThreeThreadExploreTest, L2tpFanOutPanics) {
  // §5.2 Case 2's DoS scenario: one process registers the tunnel while SEVERAL processes
  // request the same tunnel id — "some of them might dereference the sock field before it
  // is initialized". Writer + two readers, both readers racing into the ➊→➋ window.
  KernelVm vm;
  std::vector<Program> seeds = SeedPrograms();
  std::vector<Program> corpus = {seeds[0], seeds[1]};
  std::vector<SequentialProfile> profiles = ProfileCorpus(vm, corpus);
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
  GuestAddr list_head = vm.globals().l2tp + 4;
  const Pmc* channel = nullptr;
  for (const Pmc& pmc : pmcs) {
    if (pmc.key.write.addr == list_head && pmc.key.read.addr == list_head &&
        pmc.key.write.value != 0) {
      channel = &pmc;
      break;
    }
  }
  ASSERT_NE(channel, nullptr);

  ThreeThreadTest test;
  test.programs[0] = corpus[0];
  test.programs[1] = corpus[1];
  test.programs[2] = corpus[1];
  test.hint_a = channel->key;
  test.hint_b = channel->key;

  ExplorerOptions options;
  options.num_trials = 96;
  options.stop_on_bug = false;  // The ubiquitous #13 race fires first; keep exploring.
  ExploreOutcome outcome = ExploreThreeThreaded(vm, test, options);
  bool panicked = false;
  for (const std::string& message : outcome.panic_messages) {
    panicked = panicked || message.find("L2tpXmit") != std::string::npos;
  }
  EXPECT_TRUE(panicked);
}

TEST(ThreeThreadExploreTest, DeterministicForSeed) {
  KernelVm vm;
  std::vector<Program> seeds = SeedPrograms();
  ThreeThreadTest test;
  test.programs[0] = seeds[0];
  test.programs[1] = seeds[1];
  test.programs[2] = seeds[1];
  ExplorerOptions options;
  options.num_trials = 8;
  options.seed = 5;
  ExploreOutcome a = ExploreThreeThreaded(vm, test, options);
  ExploreOutcome b = ExploreThreeThreaded(vm, test, options);
  EXPECT_EQ(a.bug_found, b.bug_found);
  EXPECT_EQ(a.first_bug_trial, b.first_bug_trial);
  EXPECT_EQ(a.races.size(), b.races.size());
}

}  // namespace
}  // namespace snowboard
