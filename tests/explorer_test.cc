// Tests for Algorithm 2: the PmcScheduler mechanics (flags, performed/coming matching,
// per-trial reseeding), the PmcMatcher, and end-to-end PMC-guided bug exposure.
#include <gtest/gtest.h>

#include "src/fuzz/generator.h"
#include "src/snowboard/explorer.h"
#include "src/snowboard/pipeline.h"

namespace snowboard {
namespace {

Access MakeAccess(VcpuId vcpu, AccessType type, GuestAddr addr, SiteId site, uint64_t value) {
  Access a;
  a.type = type;
  a.vcpu = vcpu;
  a.addr = addr;
  a.len = 4;
  a.site = site;
  a.value = value;
  return a;
}

PmcKey MakeHint() {
  PmcKey hint;
  hint.write = PmcSide{0x2000, 4, 11, 5};
  hint.read = PmcSide{0x2000, 4, 22, 0};
  return hint;
}

TEST(PmcSchedulerTest, PerformedPmcAccessAddsFlag) {
  PmcScheduler scheduler;
  scheduler.ResetForTest(MakeHint());
  scheduler.SeedTrial(1);
  EXPECT_EQ(scheduler.flag_count(), 0u);
  // Some unrelated access first (becomes last_access), then the PMC write.
  scheduler.AfterAccess(0, MakeAccess(0, AccessType::kRead, 0x9000, 77, 1));
  scheduler.AfterAccess(0, MakeAccess(0, AccessType::kWrite, 0x2000, 11, 5));
  EXPECT_EQ(scheduler.flag_count(), 1u);  // The previous access became a flag.
}

TEST(PmcSchedulerTest, NoFlagWithoutPreviousAccess) {
  PmcScheduler scheduler;
  scheduler.ResetForTest(MakeHint());
  scheduler.SeedTrial(1);
  scheduler.AfterAccess(0, MakeAccess(0, AccessType::kWrite, 0x2000, 11, 5));
  EXPECT_EQ(scheduler.flag_count(), 0u);  // First access of the thread: nothing to flag.
}

TEST(PmcSchedulerTest, FlagsPersistAcrossTrialsLastAccessDoesNot) {
  PmcScheduler scheduler;
  scheduler.ResetForTest(MakeHint());
  scheduler.SeedTrial(1);
  scheduler.AfterAccess(0, MakeAccess(0, AccessType::kRead, 0x9000, 77, 1));
  scheduler.AfterAccess(0, MakeAccess(0, AccessType::kWrite, 0x2000, 11, 5));
  ASSERT_EQ(scheduler.flag_count(), 1u);
  scheduler.SeedTrial(2);  // New trial: flags kept, last_access reset.
  EXPECT_EQ(scheduler.flag_count(), 1u);
  scheduler.AfterAccess(0, MakeAccess(0, AccessType::kWrite, 0x2000, 11, 5));
  EXPECT_EQ(scheduler.flag_count(), 1u);  // No previous access this trial: no new flag.
}

TEST(PmcSchedulerTest, SwitchDecisionsAreSeededCoinFlips) {
  // Run the same access sequence twice with the same trial seed: identical decisions.
  for (int rep = 0; rep < 2; rep++) {
    PmcScheduler a;
    PmcScheduler b;
    a.ResetForTest(MakeHint());
    b.ResetForTest(MakeHint());
    a.SeedTrial(42);
    b.SeedTrial(42);
    for (int i = 0; i < 50; i++) {
      Access access = MakeAccess(0, AccessType::kWrite, 0x2000, 11, 5);
      EXPECT_EQ(a.AfterAccess(0, access), b.AfterAccess(0, access));
    }
  }
}

TEST(PmcSchedulerTest, NonPmcAccessNeverSwitches) {
  PmcScheduler scheduler;
  scheduler.ResetForTest(MakeHint());
  scheduler.SeedTrial(3);
  for (int i = 0; i < 200; i++) {
    EXPECT_FALSE(
        scheduler.AfterAccess(0, MakeAccess(0, AccessType::kRead, 0x7000, 50, i)));
  }
}

TEST(PmcSchedulerTest, ValueMismatchDoesNotMatch) {
  PmcScheduler scheduler;
  scheduler.ResetForTest(MakeHint());
  scheduler.SeedTrial(3);
  scheduler.AfterAccess(0, MakeAccess(0, AccessType::kRead, 0x9000, 77, 1));
  // Same site/addr but different value: full-feature comparison must reject.
  scheduler.AfterAccess(0, MakeAccess(0, AccessType::kWrite, 0x2000, 11, 999));
  EXPECT_EQ(scheduler.flag_count(), 0u);
}

TEST(PmcSchedulerTest, AddPmcExtendsMatching) {
  PmcScheduler scheduler;
  scheduler.ResetForTest(MakeHint());
  scheduler.SeedTrial(3);
  PmcKey extra;
  extra.write = PmcSide{0x5000, 4, 33, 9};
  extra.read = PmcSide{0x5000, 4, 44, 1};
  scheduler.AddPmc(extra);
  scheduler.AfterAccess(1, MakeAccess(1, AccessType::kRead, 0x9000, 77, 1));
  scheduler.AfterAccess(1, MakeAccess(1, AccessType::kWrite, 0x5000, 33, 9));
  EXPECT_EQ(scheduler.flag_count(), 1u);
  EXPECT_EQ(scheduler.current_pmcs().size(), 2u);
}

TEST(PmcMatcherTest, FindsPmcsByWriteFeature) {
  std::vector<Pmc> pmcs;
  Pmc pmc;
  pmc.key = MakeHint();
  pmcs.push_back(pmc);
  PmcMatcher matcher(&pmcs);
  uint64_t h = AccessFeatureHash(AccessType::kWrite, 0x2000, 4, 11, 5);
  const std::vector<uint32_t>* candidates = matcher.CandidatesForWrite(h);
  ASSERT_NE(candidates, nullptr);
  EXPECT_EQ(candidates->size(), 1u);
  EXPECT_EQ(matcher.CandidatesForWrite(12345), nullptr);
}

// --- End-to-end exposure of the Figure 1 bug via Algorithm 2. ---

class ExplorerE2eTest : public ::testing::Test {
 protected:
  // Builds the l2tp concurrent test (Figure 1) with the real list-publish PMC as hint.
  ConcurrentTest BuildL2tpTest(KernelVm& vm) {
    std::vector<Program> seeds = SeedPrograms();
    std::vector<Program> corpus = {seeds[0], seeds[1]};  // Writer and reader tests.
    std::vector<SequentialProfile> profiles = ProfileCorpus(vm, corpus);
    std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
    GuestAddr list_head = vm.globals().l2tp + 4;
    ConcurrentTest test;
    test.writer = corpus[0];
    test.reader = corpus[1];
    test.write_test = 0;
    test.read_test = 1;
    for (const Pmc& pmc : pmcs) {
      if (pmc.key.write.addr == list_head && pmc.key.read.addr == list_head &&
          pmc.key.write.value != 0) {
        test.hint = pmc.key;
        return test;
      }
    }
    ADD_FAILURE() << "l2tp publish PMC not identified";
    return test;
  }
};

TEST_F(ExplorerE2eTest, PmcHintExposesL2tpBugWithinBudget) {
  KernelVm vm;
  ConcurrentTest test = BuildL2tpTest(vm);
  ExplorerOptions options;
  options.num_trials = 64;
  options.seed = 2021;
  options.target_issue = 12;  // Stop once the l2tp panic itself fires.
  ExploreOutcome outcome = ExploreConcurrentTest(vm, test, nullptr, options);
  EXPECT_TRUE(outcome.bug_found);
  EXPECT_TRUE(outcome.target_found);
  ASSERT_FALSE(outcome.panic_messages.empty());
  bool saw_null_deref = false;
  for (const std::string& message : outcome.panic_messages) {
    saw_null_deref =
        saw_null_deref || message.find("NULL pointer dereference") != std::string::npos;
  }
  EXPECT_TRUE(saw_null_deref);
  EXPECT_LT(outcome.first_target_trial, 64);
}

TEST_F(ExplorerE2eTest, ChannelExercisedReported) {
  KernelVm vm;
  ConcurrentTest test = BuildL2tpTest(vm);
  ExplorerOptions options;
  options.num_trials = 64;
  options.seed = 5;
  options.stop_on_bug = false;
  ExploreOutcome outcome = ExploreConcurrentTest(vm, test, nullptr, options);
  EXPECT_TRUE(outcome.channel_exercised);  // The predicted channel actually carried data.
}

TEST_F(ExplorerE2eTest, DeterministicAcrossRuns) {
  KernelVm vm_a;
  KernelVm vm_b;
  ConcurrentTest test_a = BuildL2tpTest(vm_a);
  ConcurrentTest test_b = BuildL2tpTest(vm_b);
  ExplorerOptions options;
  options.num_trials = 16;
  options.seed = 99;
  ExploreOutcome a = ExploreConcurrentTest(vm_a, test_a, nullptr, options);
  ExploreOutcome b = ExploreConcurrentTest(vm_b, test_b, nullptr, options);
  EXPECT_EQ(a.bug_found, b.bug_found);
  EXPECT_EQ(a.first_bug_trial, b.first_bug_trial);
  EXPECT_EQ(a.trials_run, b.trials_run);
}

TEST_F(ExplorerE2eTest, BaselineSchedulerAlsoRuns) {
  KernelVm vm;
  ConcurrentTest test = BuildL2tpTest(vm);
  ExplorerOptions options;
  options.num_trials = 8;
  RandomPreemptScheduler scheduler;
  ExploreOutcome outcome =
      ExploreWithScheduler(vm, test, scheduler, /*check_channel=*/false, options);
  EXPECT_EQ(outcome.trials_run, 8);  // No early stop configured: all trials run.
}

}  // namespace
}  // namespace snowboard
