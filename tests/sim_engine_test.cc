// Engine tests: serialized execution, tracing, scheduling hooks, faults, RMWs, copies.
#include <gtest/gtest.h>

#include "src/sim/engine.h"
#include "src/sim/site.h"

namespace snowboard {
namespace {

GuestAddr Alloc(Engine& engine, uint32_t bytes) { return engine.mem().StaticAlloc(bytes, 8); }

TEST(EngineTest, SequentialRunRecordsAccesses) {
  Engine engine(1 << 16);
  GuestAddr cell = Alloc(engine, 8);
  Engine::RunResult result = engine.RunSequential([&](Ctx& ctx) {
    ctx.Store32(cell, 7, SB_SITE());
    EXPECT_EQ(ctx.Load32(cell, SB_SITE()), 7u);
  });
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.panicked);
  ASSERT_EQ(result.trace.size(), 2u);
  EXPECT_EQ(result.trace[0].access.type, AccessType::kWrite);
  EXPECT_EQ(result.trace[0].access.value, 7u);
  EXPECT_EQ(result.trace[1].access.type, AccessType::kRead);
  EXPECT_EQ(result.trace[1].access.value, 7u);
}

TEST(EngineTest, SeqNumbersIncrease) {
  Engine engine(1 << 16);
  GuestAddr cell = Alloc(engine, 8);
  Engine::RunResult result = engine.RunSequential([&](Ctx& ctx) {
    for (int i = 0; i < 5; i++) {
      ctx.Store32(cell, static_cast<uint32_t>(i), SB_SITE());
    }
  });
  for (size_t i = 1; i < result.trace.size(); i++) {
    EXPECT_GT(result.trace[i].seq, result.trace[i - 1].seq);
  }
}

TEST(EngineTest, NullDereferencePanics) {
  Engine engine(1 << 16);
  Engine::RunResult result = engine.RunSequential([&](Ctx& ctx) {
    ctx.Load32(8, SB_SITE());  // Inside the null page.
    ADD_FAILURE() << "unreachable after fault";
  });
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.panicked);
  EXPECT_NE(result.panic_message.find("NULL pointer dereference"), std::string::npos);
}

TEST(EngineTest, OutOfRangePageFaultPanics) {
  Engine engine(1 << 16);
  Engine::RunResult result = engine.RunSequential([&](Ctx& ctx) {
    ctx.Load32((1u << 16) + 100, SB_SITE());
  });
  EXPECT_TRUE(result.panicked);
  EXPECT_NE(result.panic_message.find("page fault"), std::string::npos);
}

TEST(EngineTest, ExplicitPanicStopsTrial) {
  Engine engine(1 << 16);
  Engine::RunResult result =
      engine.RunSequential([&](Ctx& ctx) { ctx.Panic("BUG: test panic"); });
  EXPECT_TRUE(result.panicked);
  EXPECT_EQ(result.panic_message, "BUG: test panic");
  ASSERT_FALSE(result.console.empty());
  EXPECT_EQ(result.console[0], "BUG: test panic");
}

TEST(EngineTest, InstructionBudgetHangs) {
  Engine engine(1 << 16);
  GuestAddr cell = Alloc(engine, 8);
  Engine::RunOptions opts;
  opts.max_instructions = 100;
  Engine::RunResult result = engine.Run(
      {[&](Ctx& ctx) {
        for (;;) {
          ctx.Store32(cell, 1, SB_SITE());
          ctx.Store32(cell + 4, 1, SB_SITE());  // Alternate windows to defeat is_live.
        }
      }},
      opts);
  EXPECT_TRUE(result.hang);
  EXPECT_FALSE(result.completed);
}

TEST(EngineTest, TwoVcpusBothRunSerialized) {
  Engine engine(1 << 16);
  GuestAddr a = Alloc(engine, 8);
  GuestAddr b = Alloc(engine, 8);
  Engine::RunOptions opts;
  Engine::RunResult result = engine.Run(
      {[&](Ctx& ctx) { ctx.Store32(a, 1, SB_SITE()); },
       [&](Ctx& ctx) { ctx.Store32(b, 2, SB_SITE()); }},
      opts);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(engine.mem().ReadRaw(a, 4), 1u);
  EXPECT_EQ(engine.mem().ReadRaw(b, 4), 2u);
  // vCPU 0 runs first and to completion (no scheduler switches): its event precedes 1's.
  ASSERT_EQ(result.trace.size(), 2u);
  EXPECT_EQ(result.trace[0].vcpu, 0);
  EXPECT_EQ(result.trace[1].vcpu, 1);
}

// A scheduler that switches after every access: verifies alternation and determinism.
class AlternatingScheduler : public Scheduler {
 public:
  bool AfterAccess(VcpuId vcpu, const Access& access) override { return true; }
};

TEST(EngineTest, SchedulerSwitchInterleaves) {
  Engine engine(1 << 16);
  GuestAddr log_cell = Alloc(engine, 64);
  AlternatingScheduler scheduler;
  Engine::RunOptions opts;
  opts.scheduler = &scheduler;
  auto writer = [&](int base) {
    return [&, base](Ctx& ctx) {
      for (int i = 0; i < 3; i++) {
        ctx.Store32(log_cell + 4 * static_cast<uint32_t>(i) + static_cast<uint32_t>(base),
                    1, SB_SITE());
      }
    };
  };
  Engine::RunResult result = engine.Run({writer(0), writer(16)}, opts);
  EXPECT_TRUE(result.completed);
  // The access stream alternates vCPUs after the first.
  std::vector<VcpuId> order;
  for (const Event& e : result.trace) {
    if (e.kind == EventKind::kAccess) {
      order.push_back(e.vcpu);
    }
  }
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 0);
}

TEST(EngineTest, YieldEventsRecorded) {
  Engine engine(1 << 16);
  GuestAddr cell = Alloc(engine, 8);
  AlternatingScheduler scheduler;
  Engine::RunOptions opts;
  opts.scheduler = &scheduler;
  auto two_stores = [&](Ctx& ctx) {
    ctx.Store32(cell, 1, SB_SITE());
    ctx.Store32(cell, 2, SB_SITE());
  };
  Engine::RunResult result = engine.Run({two_stores, two_stores}, opts);
  bool saw_yield = false;
  for (const Event& e : result.trace) {
    saw_yield = saw_yield || e.kind == EventKind::kYield;
  }
  EXPECT_TRUE(saw_yield);
}

TEST(EngineTest, Cas32SucceedsAndFails) {
  Engine engine(1 << 16);
  GuestAddr cell = Alloc(engine, 8);
  engine.RunSequential([&](Ctx& ctx) {
    EXPECT_TRUE(ctx.Cas32(cell, 0, 5, SB_SITE()));
    EXPECT_FALSE(ctx.Cas32(cell, 0, 9, SB_SITE()));
    EXPECT_EQ(ctx.Load32(cell, SB_SITE()), 5u);
  });
}

TEST(EngineTest, CasIsAtomicUnderPreemption) {
  // Even with a switch-happy scheduler, the CAS read and write are one scheduling unit.
  Engine engine(1 << 16);
  GuestAddr cell = Alloc(engine, 8);
  AlternatingScheduler scheduler;
  Engine::RunOptions opts;
  opts.scheduler = &scheduler;
  std::atomic<int> acquired{0};
  Engine::RunResult result = engine.Run(
      {[&](Ctx& ctx) {
         if (ctx.Cas32(cell, 0, 1, SB_SITE())) {
           acquired.fetch_add(1);
         }
       },
       [&](Ctx& ctx) {
         if (ctx.Cas32(cell, 0, 2, SB_SITE())) {
           acquired.fetch_add(1);
         }
       }},
      opts);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(acquired.load(), 1);  // Exactly one CAS wins.
}

TEST(EngineTest, FetchAddAccumulates) {
  Engine engine(1 << 16);
  GuestAddr cell = Alloc(engine, 8);
  engine.RunSequential([&](Ctx& ctx) {
    EXPECT_EQ(ctx.FetchAdd32(cell, 3, SB_SITE()), 0u);
    EXPECT_EQ(ctx.FetchAdd32(cell, -1, SB_SITE()), 3u);
    EXPECT_EQ(ctx.Load32(cell, SB_SITE()), 2u);
  });
}

TEST(EngineTest, CopyIsChunked) {
  Engine engine(1 << 16);
  GuestAddr src = Alloc(engine, 16);
  GuestAddr dst = Alloc(engine, 16);
  engine.mem().WriteRaw(src, 4, 0x44332211);
  engine.mem().WriteRaw(src + 4, 2, 0x6655);
  Engine::RunResult result = engine.RunSequential([&](Ctx& ctx) {
    ctx.Copy(dst, src, 6, SB_SITE(), SB_SITE());
  });
  // 6 bytes => one 4-byte chunk + one 2-byte chunk => 2 loads + 2 stores.
  ASSERT_EQ(result.trace.size(), 4u);
  EXPECT_EQ(engine.mem().ReadRaw(dst, 4), 0x44332211u);
  EXPECT_EQ(engine.mem().ReadRaw(dst + 4, 2), 0x6655u);
}

TEST(EngineTest, EspStampedOnAccesses) {
  Engine engine(1 << 16);
  GuestAddr cell = Alloc(engine, 8);
  Engine::RunResult result = engine.RunSequential([&](Ctx& ctx) {
    ctx.esp = 0x4000;
    ctx.Store32(cell, 1, SB_SITE());
  });
  ASSERT_EQ(result.trace.size(), 1u);
  EXPECT_EQ(result.trace[0].access.esp, 0x4000u);
}

TEST(EngineTest, EngineReusableAcrossRuns) {
  Engine engine(1 << 16);
  GuestAddr cell = Alloc(engine, 8);
  for (int i = 0; i < 5; i++) {
    Engine::RunResult result = engine.RunSequential([&](Ctx& ctx) {
      ctx.Store32(cell, static_cast<uint32_t>(i), SB_SITE());
    });
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.trace.size(), 1u);
  }
}

TEST(EngineTest, PanicOnOneVcpuAbortsOther) {
  Engine engine(1 << 16);
  GuestAddr cell = Alloc(engine, 8);
  AlternatingScheduler scheduler;
  Engine::RunOptions opts;
  opts.scheduler = &scheduler;
  bool second_finished = false;
  Engine::RunResult result = engine.Run(
      {[&](Ctx& ctx) {
         ctx.Store32(cell, 1, SB_SITE());
         ctx.Panic("BUG: vcpu0 dies");
       },
       [&](Ctx& ctx) {
         for (int i = 0; i < 100; i++) {
           ctx.Store32(cell, 2, SB_SITE());
         }
         second_finished = true;
       }},
      opts);
  EXPECT_TRUE(result.panicked);
  EXPECT_FALSE(second_finished);  // Aborted mid-flight.
}

TEST(EngineTest, ConsoleCapturedPerRun) {
  Engine engine(1 << 16);
  Engine::RunResult r1 = engine.RunSequential([&](Ctx& ctx) { ctx.Printk("hello"); });
  Engine::RunResult r2 = engine.RunSequential([&](Ctx& ctx) { ctx.Printk("world"); });
  ASSERT_EQ(r1.console.size(), 1u);
  ASSERT_EQ(r2.console.size(), 1u);
  EXPECT_EQ(r1.console[0], "hello");
  EXPECT_EQ(r2.console[0], "world");
}

}  // namespace
}  // namespace snowboard
