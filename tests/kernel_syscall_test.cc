// Tests for the syscall dispatch layer — every syscall number, argument folding, and the
// fd/resource plumbing the fuzzer relies on.
#include <gtest/gtest.h>

#include "src/kernel/fs/vfs.h"
#include "src/kernel/net/netdev.h"
#include "src/kernel/syscalls.h"
#include "src/kernel/task.h"
#include "src/sim/site.h"

namespace snowboard {
namespace {

class SyscallTest : public ::testing::Test {
 protected:
  int64_t Sys(Ctx& ctx, uint32_t nr, int64_t a0 = 0, int64_t a1 = 0, int64_t a2 = 0,
              int64_t a3 = 0) {
    int64_t args[4] = {a0, a1, a2, a3};
    return DoSyscall(ctx, vm_.globals(), nr, args);
  }
  void Enter(Ctx& ctx, int task = 0) { TaskEnter(ctx, vm_.globals().tasks[task]); }
  KernelVm vm_;
};

TEST_F(SyscallTest, NamesAreStable) {
  EXPECT_STREQ(SyscallName(kSysOpen), "open");
  EXPECT_STREQ(SyscallName(kSysRmdir), "rmdir");
  EXPECT_STREQ(SyscallName(kNumSyscalls), "<bad-syscall>");
}

TEST_F(SyscallTest, FileLifecycle) {
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    int64_t fd = Sys(ctx, kSysOpen, 0, 0);
    EXPECT_GE(fd, 0);
    EXPECT_GE(Sys(ctx, kSysWrite, fd, 32, 0x12), 0);
    EXPECT_GE(Sys(ctx, kSysRead, fd, 16), 0);
    EXPECT_EQ(Sys(ctx, kSysFtruncate, fd, 0), 0);
    EXPECT_GE(Sys(ctx, kSysFadvise, fd, 1), 0);
    EXPECT_EQ(Sys(ctx, kSysClose, fd), 0);
    EXPECT_EQ(Sys(ctx, kSysRead, fd, 16), kEBADF);
  });
}

TEST_F(SyscallTest, SocketFamiliesAndOps) {
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    int64_t inet = Sys(ctx, kSysSocket, kAfInet, 0);
    int64_t inet6 = Sys(ctx, kSysSocket, kAfInet6, 0);
    int64_t packet = Sys(ctx, kSysSocket, kAfPacket, 0);
    int64_t l2tp = Sys(ctx, kSysSocket, kPxProtoOl2tp, 0);
    EXPECT_GE(inet, 0);
    EXPECT_GE(inet6, 0);
    EXPECT_GE(packet, 0);
    EXPECT_GE(l2tp, 0);

    EXPECT_EQ(Sys(ctx, kSysBind, packet, 0), 0);
    EXPECT_GE(Sys(ctx, kSysGetsockname, packet), 0);
    EXPECT_EQ(Sys(ctx, kSysConnect, inet, 5), 0);
    EXPECT_GE(Sys(ctx, kSysSendmsg, inet, 64), 0);
    EXPECT_GE(Sys(ctx, kSysSendmsg, inet6, 64), 0);
    EXPECT_GE(Sys(ctx, kSysRecvmsg, inet), 0);

    // L2TP connect + send (Figure 1 sequence).
    EXPECT_EQ(Sys(ctx, kSysConnect, l2tp, 1), 0);
    EXPECT_GE(Sys(ctx, kSysSendmsg, l2tp, 64), 0);

    // Unknown family defaults to AF_INET.
    int64_t weird = Sys(ctx, kSysSocket, 99, 0);
    EXPECT_GE(weird, 0);
  });
}

TEST_F(SyscallTest, SocketOptions) {
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    int64_t packet = Sys(ctx, kSysSocket, kAfPacket, 0);
    int64_t inet = Sys(ctx, kSysSocket, kAfInet, 0);
    EXPECT_EQ(Sys(ctx, kSysSetsockopt, packet, kSoPacketFanout, 0), 0);
    EXPECT_GE(Sys(ctx, kSysSendmsg, packet, 10), 0);
    EXPECT_EQ(Sys(ctx, kSysSetsockopt, packet, kSoPacketFanoutLeave, 0), 0);
    EXPECT_EQ(Sys(ctx, kSysSetsockopt, inet, kSoPacketFanout, 0), kEINVAL);
    EXPECT_EQ(Sys(ctx, kSysSetsockopt, inet, kSoTcpCongestion, 0), 0);
    EXPECT_EQ(Sys(ctx, kSysSetsockopt, inet, kSoRcvbuf, 4096), 0);
    EXPECT_EQ(Sys(ctx, kSysSetsockopt, inet, 77, 0), kEINVAL);
  });
}

TEST_F(SyscallTest, PacketCloseRunsFanoutUnlink) {
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    int64_t packet = Sys(ctx, kSysSocket, kAfPacket, 0);
    EXPECT_EQ(Sys(ctx, kSysSetsockopt, packet, kSoPacketFanout, 1), 0);
    EXPECT_EQ(Sys(ctx, kSysClose, packet), 0);
    // The group must be empty again: a fresh member lands in slot 0.
    int64_t packet2 = Sys(ctx, kSysSocket, kAfPacket, 0);
    EXPECT_EQ(Sys(ctx, kSysSetsockopt, packet2, kSoPacketFanout, 1), 0);
    GuestAddr file = FdGet(ctx, ctx.current_task, static_cast<int>(packet2));
    GuestAddr sk = ctx.Load32(file + kFileObj, SB_SITE());
    EXPECT_EQ(ctx.Load32(sk + kSockFanoutSlot, SB_SITE()), 0u);
  });
}

TEST_F(SyscallTest, IpcSyscalls) {
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    int64_t id = Sys(ctx, kSysMsgget, 3);
    EXPECT_GT(id, 0);
    EXPECT_EQ(Sys(ctx, kSysMsgsnd, id, 64), 0);
    EXPECT_GE(Sys(ctx, kSysMsgctl, id, 1), 0);  // a1 % 3 != 0 -> STAT.
    EXPECT_EQ(Sys(ctx, kSysMsgctl, id, 0), 0);  // a1 % 3 == 0 -> RMID.
  });
}

TEST_F(SyscallTest, ConfigfsSyscalls) {
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    EXPECT_EQ(Sys(ctx, kSysMkdir, 2), 0);             // name_id 3.
    EXPECT_EQ(Sys(ctx, kSysMkdir, 2), kEEXIST);
    EXPECT_EQ(Sys(ctx, kSysRmdir, 2), 0);
    EXPECT_EQ(Sys(ctx, kSysRmdir, 2), kENOENT);
    int64_t fd = Sys(ctx, kSysOpen, 4, 0);  // /cfg/a exists from boot.
    EXPECT_GE(fd, 0);
    EXPECT_GE(Sys(ctx, kSysRead, fd, 1), 0);
  });
}

TEST_F(SyscallTest, IoctlDispatchAcrossTypes) {
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    int64_t file = Sys(ctx, kSysOpen, 0, 0);
    int64_t bdev = Sys(ctx, kSysOpen, 3, 0);
    int64_t tty = Sys(ctx, kSysOpen, 6, 0);
    int64_t snd = Sys(ctx, kSysOpen, 7, 0);
    int64_t sock = Sys(ctx, kSysSocket, kAfInet, 0);

    EXPECT_EQ(Sys(ctx, kSysIoctl, file, kIoctlSwapBootLoader, 0), 0);
    EXPECT_EQ(Sys(ctx, kSysIoctl, bdev, kIoctlSetBlocksize, 1), 0);
    EXPECT_EQ(Sys(ctx, kSysIoctl, bdev, kIoctlSetReadahead, 8), 0);
    EXPECT_EQ(Sys(ctx, kSysIoctl, sock, kIoctlSetMacAddr, 2), 0);
    EXPECT_GE(Sys(ctx, kSysIoctl, sock, kIoctlGetMacAddr, 0), 0);
    EXPECT_EQ(Sys(ctx, kSysIoctl, sock, kIoctlSetMtu, 9), 0);
    EXPECT_EQ(Sys(ctx, kSysIoctl, sock, kIoctlE1000SetMac, 5), 0);
    EXPECT_EQ(Sys(ctx, kSysIoctl, sock, kIoctlRtFlush, 0), 0);
    EXPECT_EQ(Sys(ctx, kSysIoctl, tty, kIoctlSerialAutoconf, 9600), 0);
    EXPECT_GE(Sys(ctx, kSysIoctl, snd, kIoctlSndElemAdd, 4), 0);

    // Wrong file type for the command.
    EXPECT_EQ(Sys(ctx, kSysIoctl, file, kIoctlSetBlocksize, 1), kEINVAL);
    EXPECT_EQ(Sys(ctx, kSysIoctl, bdev, kIoctlSwapBootLoader, 0), kEINVAL);
    EXPECT_EQ(Sys(ctx, kSysIoctl, sock, kIoctlSerialAutoconf, 0), kEINVAL);
    EXPECT_EQ(Sys(ctx, kSysIoctl, file, 999, 0), kEINVAL);
  });
}

TEST_F(SyscallTest, DupSharesTheFile) {
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    int64_t fd = Sys(ctx, kSysOpen, 0, 0);
    int64_t dup = Sys(ctx, kSysDup, fd);
    EXPECT_GE(dup, 0);
    EXPECT_NE(dup, fd);
    EXPECT_GE(Sys(ctx, kSysWrite, dup, 8, 0x9), 0);  // Usable through the duplicate.
    EXPECT_EQ(Sys(ctx, kSysDup, 99), kEBADF);
  });
}

TEST_F(SyscallTest, FstatReturnsSizeAndFamily) {
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    int64_t fd = Sys(ctx, kSysOpen, 0, 0);
    EXPECT_EQ(Sys(ctx, kSysFstat, fd), 0);  // Empty file.
    Sys(ctx, kSysWrite, fd, 40, 0x1);
    EXPECT_EQ(Sys(ctx, kSysFstat, fd), 40);
    int64_t sock = Sys(ctx, kSysSocket, kAfInet6, 0);
    EXPECT_EQ(Sys(ctx, kSysFstat, sock), kAfInet6);
    EXPECT_EQ(Sys(ctx, kSysFstat, 99), kEBADF);
  });
}

TEST_F(SyscallTest, GetdentsListsConfigfs) {
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    int64_t fd = Sys(ctx, kSysOpen, 4, 0);  // /cfg/a.
    EXPECT_EQ(Sys(ctx, kSysGetdents, fd), 2);  // Boot-created /cfg/a and /cfg/b.
    Sys(ctx, kSysMkdir, 2);                    // +/cfg name_id 3.
    EXPECT_EQ(Sys(ctx, kSysGetdents, fd), 3);
    int64_t file = Sys(ctx, kSysOpen, 0, 0);
    EXPECT_EQ(Sys(ctx, kSysGetdents, file), kEINVAL);  // Not a configfs dir.
  });
}

TEST_F(SyscallTest, SysctlAndRename) {
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    EXPECT_EQ(Sys(ctx, kSysSysctl, 0, 1), 0);
    EXPECT_EQ(Sys(ctx, kSysRename, 0, 1), 0);
    EXPECT_EQ(Sys(ctx, kSysRename, 0, 3), kEINVAL);
  });
}

TEST_F(SyscallTest, BadFdsAreRejectedEverywhere) {
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    for (uint32_t nr : {kSysRead + 0u, kSysWrite + 0u, kSysSendmsg + 0u, kSysRecvmsg + 0u,
                        kSysGetsockname + 0u, kSysConnect + 0u, kSysBind + 0u}) {
      EXPECT_EQ(Sys(ctx, nr, 12, 0), kEBADF) << SyscallName(nr);
    }
  });
}

TEST_F(SyscallTest, EverySyscallTerminatesOnArbitraryArgs) {
  // Robustness sweep: every syscall number with a grid of argument values must terminate
  // without wedging the engine (errors are fine; hangs/panics sequentially are not).
  for (uint32_t nr = 0; nr < kNumSyscalls; nr++) {
    KernelVm vm;
    Engine::RunResult result = vm.engine().RunSequential([&](Ctx& ctx) {
      TaskEnter(ctx, vm.globals().tasks[0]);
      for (int64_t a0 : {-1, 0, 1, 7, 255}) {
        for (int64_t a1 : {0, 1, 9}) {
          int64_t args[4] = {a0, a1, 3, 0};
          DoSyscall(ctx, vm.globals(), nr, args);
        }
      }
    });
    EXPECT_TRUE(result.completed) << "syscall " << SyscallName(nr) << " wedged";
  }
}

}  // namespace
}  // namespace snowboard
