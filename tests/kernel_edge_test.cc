// Edge-case coverage across kernel subsystems: boundary arguments, error paths, state
// carried across operations, and behaviors the main suites don't pin down.
#include <gtest/gtest.h>

#include "src/kernel/fs/sbfs.h"
#include "src/kernel/fs/vfs.h"
#include "src/kernel/kalloc.h"
#include "src/kernel/net/l2tp.h"
#include "src/kernel/net/netdev.h"
#include "src/kernel/net/packet.h"
#include "src/kernel/syscalls.h"
#include "src/kernel/task.h"
#include "src/sim/site.h"

namespace snowboard {
namespace {

class KernelEdgeTest : public ::testing::Test {
 protected:
  int64_t Sys(Ctx& ctx, uint32_t nr, int64_t a0 = 0, int64_t a1 = 0, int64_t a2 = 0) {
    int64_t args[4] = {a0, a1, a2, 0};
    return DoSyscall(ctx, vm_.globals(), nr, args);
  }
  void Enter(Ctx& ctx, int task = 0) { TaskEnter(ctx, vm_.globals().tasks[task]); }
  KernelVm vm_;
};

TEST_F(KernelEdgeTest, MulticastMacRefusedByGetname) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    GuestAddr sk = SockAlloc(ctx, g, kAfPacket, 0);
    // Seed 1 yields first octet 0x21 (odd => multicast): getname must refuse.
    EXPECT_EQ(DevIoctlSetMac(ctx, g, 0, 1), 0);
    EXPECT_EQ(PacketGetname(ctx, g, sk), kEINVAL);
    // Seed 2 yields 0x32 (even => unicast): accepted.
    EXPECT_EQ(DevIoctlSetMac(ctx, g, 0, 2), 0);
    EXPECT_EQ(PacketGetname(ctx, g, sk) & 0xFF, 0x32);
  });
}

TEST_F(KernelEdgeTest, TwoTunnelsCoexist) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    GuestAddr sk1 = SockAlloc(ctx, g, kPxProtoOl2tp, 0);
    GuestAddr sk2 = SockAlloc(ctx, g, kPxProtoOl2tp, 0);
    EXPECT_EQ(PppoL2tpConnect(ctx, g, sk1, 1), 0);
    EXPECT_EQ(PppoL2tpConnect(ctx, g, sk2, 2), 0);
    GuestAddr t1 = L2tpTunnelGet(ctx, g, 1);
    GuestAddr t2 = L2tpTunnelGet(ctx, g, 2);
    EXPECT_NE(t1, kGuestNull);
    EXPECT_NE(t2, kGuestNull);
    EXPECT_NE(t1, t2);
    // A third socket connecting to tunnel 1 shares the existing tunnel.
    GuestAddr sk3 = SockAlloc(ctx, g, kPxProtoOl2tp, 0);
    EXPECT_EQ(PppoL2tpConnect(ctx, g, sk3, 1), 0);
    EXPECT_EQ(ctx.Load32(sk3 + kSockProtoData, SB_SITE()), t1);
    EXPECT_EQ(ctx.Load32(g.l2tp + kL2tpCount, SB_SITE()), 2u);
  });
}

TEST_F(KernelEdgeTest, WriteSizeWrapsAt4096) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    int64_t fd = Sys(ctx, kSysOpen, 0, 0);
    // len is folded mod 4096 and zero becomes 1 in the vfs layer.
    EXPECT_EQ(Sys(ctx, kSysWrite, fd, 0, 1), 1);
    EXPECT_EQ(Sys(ctx, kSysWrite, fd, 4096 + 5, 1), 5);
  });
}

TEST_F(KernelEdgeTest, FtruncateGrowKeepsBlocks) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    GuestAddr inode = SbfsInodeAddr(ctx, g.sbfs, 1);
    uint32_t block_before = ctx.Load32(inode + kInodeBlock0, SB_SITE());
    EXPECT_EQ(SbfsFtruncate(ctx, g, inode, 500), 0);  // Grow: no block release.
    EXPECT_EQ(ctx.Load32(inode + kInodeBlock0, SB_SITE()), block_before);
    EXPECT_EQ(ctx.Load32(inode + kInodeSize, SB_SITE()), 500u);
    // Checksum stays consistent: a read succeeds.
    EXPECT_GE(SbfsRead(ctx, g, inode, 4), 0);
  });
}

TEST_F(KernelEdgeTest, SwapBootLoaderOnBootInodeRejected) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    GuestAddr boot = SbfsInodeAddr(ctx, g.sbfs, 0);
    EXPECT_EQ(SbfsSwapInodeBootLoader(ctx, g, boot), kEINVAL);
  });
}

TEST_F(KernelEdgeTest, SwapBootLoaderIsAnInvolution) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    GuestAddr inode = SbfsInodeAddr(ctx, g.sbfs, 1);
    SbfsWrite(ctx, g, inode, 123, 0x42);
    uint32_t data = ctx.Load32(inode + kInodeData, SB_SITE());
    EXPECT_EQ(SbfsSwapInodeBootLoader(ctx, g, inode), 0);
    EXPECT_NE(ctx.Load32(inode + kInodeData, SB_SITE()), data);
    EXPECT_EQ(SbfsSwapInodeBootLoader(ctx, g, inode), 0);  // Swap back.
    EXPECT_EQ(ctx.Load32(inode + kInodeData, SB_SITE()), data);
    EXPECT_EQ(ctx.Load32(inode + kInodeSize, SB_SITE()), 123u);
  });
}

TEST_F(KernelEdgeTest, FanoutTwoGroupsIndependent) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    GuestAddr a = SockAlloc(ctx, g, kAfPacket, 0);
    GuestAddr b = SockAlloc(ctx, g, kAfPacket, 0);
    EXPECT_EQ(FanoutAdd(ctx, g, a, 0), 0);
    EXPECT_EQ(FanoutAdd(ctx, g, b, 1), 0);
    EXPECT_EQ(PacketSendmsg(ctx, g, a, 10), 10);
    EXPECT_EQ(FanoutUnlink(ctx, g, a), 0);
    EXPECT_EQ(PacketSendmsg(ctx, g, b, 10), 10);  // Group 1 unaffected.
  });
}

TEST_F(KernelEdgeTest, CloseReleasesFdForReuse) {
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    int64_t fd1 = Sys(ctx, kSysOpen, 0, 0);
    EXPECT_EQ(Sys(ctx, kSysClose, fd1), 0);
    int64_t fd2 = Sys(ctx, kSysOpen, 1, 0);
    EXPECT_EQ(fd2, fd1);  // Lowest-free-slot allocation.
  });
}

TEST_F(KernelEdgeTest, TasksHaveIsolatedFdTables) {
  const KernelGlobals& g = vm_.globals();
  Engine::RunOptions opts;
  Engine::RunResult result = vm_.engine().Run(
      {[&](Ctx& ctx) {
         TaskEnter(ctx, g.tasks[0]);
         int64_t args[4] = {0, 0, 0, 0};
         EXPECT_EQ(DoSyscall(ctx, g, kSysOpen, args), 0);  // fd 0 in task 0.
       },
       [&](Ctx& ctx) {
         TaskEnter(ctx, g.tasks[1]);
         int64_t args[4] = {0, 4, 0, 0};
         // Task 1's fd 0 does not exist yet: read fails even though task 0 opened fd 0.
         EXPECT_EQ(DoSyscall(ctx, g, kSysRead, args), kEBADF);
       }},
      opts);
  EXPECT_TRUE(result.completed);
}

TEST_F(KernelEdgeTest, KallocClassBoundaries) {
  Engine engine(1 << 18);
  GuestAddr heap = KallocInit(engine.mem(), 16 * 1024);
  engine.RunSequential([&](Ctx& ctx) {
    // Allocations at exact class boundaries land in distinct classes and free correctly.
    for (uint32_t size : {16u, 17u, 32u, 33u, 1024u}) {
      GuestAddr block = Kmalloc(ctx, heap, size);
      ASSERT_NE(block, kGuestNull) << size;
      Kfree(ctx, heap, block, size);
      GuestAddr again = Kmalloc(ctx, heap, size);
      EXPECT_EQ(again, block) << "free list per class must recycle, size " << size;
      Kfree(ctx, heap, again, size);
    }
  });
}

TEST_F(KernelEdgeTest, RecvmsgReflectsRcvbuf) {
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    int64_t sock = Sys(ctx, kSysSocket, kAfInet, 0);
    EXPECT_EQ(Sys(ctx, kSysRecvmsg, sock), 0);
    EXPECT_EQ(Sys(ctx, kSysSetsockopt, sock, kSoRcvbuf, 512), 0);
    EXPECT_EQ(Sys(ctx, kSysRecvmsg, sock), 512);
  });
}

TEST_F(KernelEdgeTest, SnapshotIsolatesConsecutiveTrials) {
  // State mutated by one trial must never leak into the next after RestoreSnapshot — the
  // foundation of the fixed-initial-state methodology.
  const KernelGlobals& g = vm_.globals();
  for (int round = 0; round < 3; round++) {
    vm_.RestoreSnapshot();
    vm_.engine().RunSequential([&](Ctx& ctx) {
      Enter(ctx);
      EXPECT_EQ(ctx.Load32(g.l2tp + kL2tpCount, SB_SITE()), 0u) << "tunnel leaked";
      GuestAddr sk = SockAlloc(ctx, g, kPxProtoOl2tp, 0);
      EXPECT_EQ(PppoL2tpConnect(ctx, g, sk, 1), 0);
      EXPECT_EQ(ctx.Load32(g.l2tp + kL2tpCount, SB_SITE()), 1u);
    });
  }
}

}  // namespace
}  // namespace snowboard
