// Tests for block, mm/fadvise, ipc/msg, tty/serial, and sound/ctl.
#include <gtest/gtest.h>

#include "src/kernel/block/blockdev.h"
#include "src/kernel/ipc/msg.h"
#include "src/kernel/mm/pagecache.h"
#include "src/kernel/sound/ctl.h"
#include "src/kernel/task.h"
#include "src/kernel/tty/serial.h"
#include "src/sim/site.h"

namespace snowboard {
namespace {

class MiscTest : public ::testing::Test {
 protected:
  void Enter(Ctx& ctx, int task = 0) { TaskEnter(ctx, vm_.globals().tasks[task]); }
  KernelVm vm_;
};

TEST_F(MiscTest, BlockdevReadWriteAndLimits) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    EXPECT_TRUE(SubmitBio(ctx, g, 10, true));
    EXPECT_FALSE(SubmitBio(ctx, g, 100000, true));  // Out of range: I/O error.
    EXPECT_GE(MpageReadpage(ctx, g, 0), 0);
    EXPECT_EQ(BlkdevSetBlocksize(ctx, g, 2048), 0);
    EXPECT_EQ(BlkdevSetBlocksize(ctx, g, 3000), kEINVAL);
    EXPECT_EQ(BlkdevSetBlocksize(ctx, g, 256), kEINVAL);
    EXPECT_EQ(BlkdevSetReadahead(ctx, g, 64), 0);
  });
  EXPECT_TRUE(vm_.engine().console().Contains("blk_update_request: I/O error"));
}

TEST_F(MiscTest, MpageReadpageUsesBlocksize) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    BlkdevSetBlocksize(ctx, g, 1024);
    EXPECT_EQ(MpageReadpage(ctx, g, 0), 3);  // 4096/1024 - 1.
    BlkdevSetBlocksize(ctx, g, 4096);
    EXPECT_EQ(MpageReadpage(ctx, g, 0), 0);
  });
}

TEST_F(MiscTest, FadvisePaths) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    EXPECT_GE(GenericFadviseBdev(ctx, g, kFadvNormal), 0);
    EXPECT_GE(GenericFadviseBdev(ctx, g, kFadvSequential), 0);
    EXPECT_GE(GenericFadviseBdev(ctx, g, kFadvDontneed), 0);
    EXPECT_EQ(GenericFadviseBdev(ctx, g, 17), kEINVAL);
  });
}

TEST_F(MiscTest, MsgQueueLifecycle) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    int64_t id = MsgGet(ctx, g, 2);
    EXPECT_GT(id, 0);
    EXPECT_EQ(MsgGet(ctx, g, 2), id);  // Same key, same queue.
    EXPECT_EQ(MsgSnd(ctx, g, 2, 100), 0);
    EXPECT_EQ(MsgCtl(ctx, g, 2, kIpcStat), 1);  // One queued message.
    EXPECT_EQ(MsgCtl(ctx, g, 2, kIpcRmid), 0);
    EXPECT_EQ(MsgCtl(ctx, g, 2, kIpcRmid), kENOENT);
    EXPECT_EQ(MsgSnd(ctx, g, 2, 10), kENOENT);
  });
}

TEST_F(MiscTest, MsgKeysAreFolded) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    // Out-of-range keys are folded into the small queue-key space: 0 and 16 collide.
    int64_t a = MsgGet(ctx, g, 0);
    int64_t b = MsgGet(ctx, g, 16);
    EXPECT_EQ(a, b);
    // Returned msqids round-trip: operating on the msqid hits the same queue.
    EXPECT_EQ(MsgGet(ctx, g, static_cast<uint32_t>(a)), a);
  });
}

TEST_F(MiscTest, TtyOpenCloseAutoconfig) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    EXPECT_EQ(TtyPortOpen(ctx, g), 0);
    EXPECT_EQ(ctx.Load32(g.tty + kTtyCount, SB_SITE()), 1u);
    EXPECT_EQ(ctx.Load32(g.tty + kTtyFlags, SB_SITE()) & kAsyncInitialized,
              kAsyncInitialized);
    EXPECT_EQ(TtyRead(ctx, g), 9600);
    EXPECT_EQ(UartDoAutoconfig(ctx, g, 115200), 0);
    EXPECT_EQ(TtyRead(ctx, g), 115200);
    EXPECT_EQ(TtyWrite(ctx, g, 5), 5);
    EXPECT_EQ(TtyPortClose(ctx, g), 0);
    EXPECT_EQ(ctx.Load32(g.tty + kTtyCount, SB_SITE()), 0u);
    EXPECT_EQ(TtyPortClose(ctx, g), 0);  // Under-close is clamped.
  });
}

TEST_F(MiscTest, SndElemAddAccountsAndLimits) {
  const KernelGlobals& g = vm_.globals();
  vm_.engine().RunSequential([&](Ctx& ctx) {
    Enter(ctx);
    EXPECT_EQ(SndCtlRead(ctx, g), 0);
    EXPECT_EQ(SndCtlElemAdd(ctx, g, 16), 1);
    EXPECT_EQ(SndCtlElemAdd(ctx, g, 16), 2);
    EXPECT_EQ(SndCtlRead(ctx, g), 2);
    // Exhaust the 4096-byte accounting budget ((x & 0xFF) + 16 <= 271 per add).
    int64_t last = 0;
    for (int i = 0; i < 300 && last != kENOMEM; i++) {
      last = SndCtlElemAdd(ctx, g, 255);
    }
    EXPECT_EQ(last, kENOMEM);
  });
}

}  // namespace
}  // namespace snowboard
