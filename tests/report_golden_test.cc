// Golden-file invariant for the campaign report: report.json, with its volatile lines
// masked (wall-clock seconds, worker count, process counters), must be byte-identical
// whether the campaign ran on 1, 2, or 4 workers — the determinism-harness bar restated
// over the report artifact, so CI can diff reports across machines and configurations.
#include <gtest/gtest.h>

#include <string>

#include "src/snowboard/pipeline.h"
#include "src/snowboard/report_html.h"
#include "src/util/counters.h"

namespace snowboard {
namespace {

PipelineOptions BaseOptions(int num_workers) {
  PipelineOptions options;
  options.seed = 7;
  options.corpus.seed = 42;
  options.corpus.max_iterations = 40;
  options.corpus.target_size = 32;
  options.strategy = Strategy::kSInsPair;
  options.max_concurrent_tests = 24;
  options.explorer.num_trials = 8;
  options.num_workers = num_workers;
  return options;
}

std::string MaskedReportFor(int num_workers, bool streaming = true) {
  // Counters feed the run.* metrics; reset between campaigns for clean attribution.
  ResetPipelineCounters();
  PipelineOptions options = BaseOptions(num_workers);
  options.streaming = streaming;
  PipelineResult result = RunSnowboardPipeline(options);
  CampaignReport report = BuildCampaignReport(options, result);
  return MaskReportVolatile(RenderReportJson(report));
}

TEST(ReportGoldenTest, MaskedReportJsonInvariantAcrossWorkerCounts) {
  std::string base = MaskedReportFor(1);
  ASSERT_FALSE(base.empty());
  for (int workers : {2, 4}) {
    SCOPED_TRACE(testing::Message() << "num_workers=" << workers);
    EXPECT_EQ(MaskedReportFor(workers), base);
  }
}

// The same bar across engines: streaming attributes stage seconds by event windows,
// which differ from the barrier engine's — but seconds are volatile-masked, and every
// unmasked line must be byte-identical between the engines at any worker count.
TEST(ReportGoldenTest, MaskedReportJsonInvariantAcrossEngines) {
  std::string barrier = MaskedReportFor(1, /*streaming=*/false);
  ASSERT_FALSE(barrier.empty());
  for (int workers : {1, 4}) {
    SCOPED_TRACE(testing::Message() << "streaming num_workers=" << workers);
    EXPECT_EQ(MaskedReportFor(workers, /*streaming=*/true), barrier);
  }
}

TEST(ReportGoldenTest, ReportCarriesSchemaAndFullFunnel) {
  ResetPipelineCounters();
  PipelineOptions options = BaseOptions(2);
  PipelineResult result = RunSnowboardPipeline(options);
  CampaignReport report = BuildCampaignReport(options, result);
  std::string json = RenderReportJson(report);

  EXPECT_NE(json.find("\"schema\": \"snowboard-report-v1\""), std::string::npos);
  for (const char* stage :
       {"corpus_programs", "pmcs_identified", "pmc_pairs_total", "clusters",
        "tests_executed", "tests_with_findings"}) {
    EXPECT_NE(json.find(std::string("\"stage\": \"") + stage + "\""), std::string::npos)
        << "funnel stage " << stage << " missing";
  }
  for (const char* name : {"corpus", "profile", "identify", "cluster", "execute"}) {
    EXPECT_NE(json.find(std::string("\"name\": \"") + name + "\""), std::string::npos)
        << "stage timing " << name << " missing";
  }
  // This configuration reliably surfaces findings (see pipeline_determinism_test); the
  // report must carry them with their triage fields.
  EXPECT_FALSE(report.findings.empty());
  EXPECT_NE(json.find("\"issue_id\":"), std::string::npos);

  // Masking leaves no un-masked wall-clock or worker-shape values behind.
  std::string masked = MaskReportVolatile(json);
  EXPECT_NE(masked.find("\"num_workers\": \"<masked>\""), std::string::npos);
  EXPECT_EQ(masked.find("\"wall_seconds\": 0."), std::string::npos);
  EXPECT_NE(masked.find("\"schema\": \"snowboard-report-v1\""), std::string::npos);
}

TEST(ReportGoldenTest, HtmlIsSelfContainedAndCarriesFindings) {
  ResetPipelineCounters();
  PipelineOptions options = BaseOptions(2);
  PipelineResult result = RunSnowboardPipeline(options);
  CampaignReport report = BuildCampaignReport(options, result);
  std::string html = RenderReportHtml(report);

  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("prefers-color-scheme"), std::string::npos);
  // Self-contained: no external fetches, no scripts.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("src="), std::string::npos);
  for (const FunnelRow& row : report.funnel) {
    EXPECT_NE(html.find(row.title), std::string::npos) << row.title;
  }
  for (const ReportFinding& finding : report.findings) {
    EXPECT_NE(html.find(finding.summary), std::string::npos) << finding.summary;
  }
}

}  // namespace
}  // namespace snowboard
