// Determinism harness for the parallel campaign-preparation pipeline: every deterministic
// artifact of RunSnowboardPipeline — corpus, profiles, PMC table (keys, multiplicities,
// sampled exemplar pairs), cluster tables, execution stats, and the findings log — must be
// byte-identical whether the stages run on 1, 2, or 4 workers. This is the
// parallel-speed/bit-identical-results bar of deterministic-parallelism systems (Aviram et
// al.; O'Callahan et al.), applied to our §4.4.1 fleet analog.
#include <gtest/gtest.h>

#include <string>

#include "src/snowboard/pipeline.h"
#include "src/snowboard/report_html.h"
#include "src/snowboard/serialize.h"
#include "src/snowboard/stats.h"

namespace snowboard {
namespace {

PipelineOptions BaseOptions(int num_workers) {
  PipelineOptions options;
  options.seed = 7;
  options.corpus.seed = 42;
  options.corpus.max_iterations = 40;
  options.corpus.target_size = 32;
  options.strategy = Strategy::kSInsPair;
  options.max_concurrent_tests = 24;
  options.explorer.num_trials = 8;
  options.num_workers = num_workers;
  return options;
}

void ExpectSameProfiles(const std::vector<SequentialProfile>& a,
                        const std::vector<SequentialProfile>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i++) {
    EXPECT_EQ(a[i].test_id, b[i].test_id) << "profile " << i;
    EXPECT_EQ(a[i].ok, b[i].ok) << "profile " << i;
    EXPECT_EQ(a[i].program, b[i].program) << "profile " << i;
    EXPECT_EQ(a[i].accesses, b[i].accesses) << "profile " << i;
  }
}

void ExpectSamePmcs(const std::vector<Pmc>& a, const std::vector<Pmc>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i++) {
    EXPECT_EQ(a[i].key, b[i].key) << "pmc " << i;
    EXPECT_EQ(a[i].total_pairs, b[i].total_pairs) << "pmc " << i;  // Pair multiplicity.
    ASSERT_EQ(a[i].pairs.size(), b[i].pairs.size()) << "pmc " << i;
    for (size_t p = 0; p < a[i].pairs.size(); p++) {
      EXPECT_EQ(a[i].pairs[p].write_test, b[i].pairs[p].write_test) << "pmc " << i;
      EXPECT_EQ(a[i].pairs[p].read_test, b[i].pairs[p].read_test) << "pmc " << i;
    }
  }
  EXPECT_EQ(PmcTableDigest(a), PmcTableDigest(b));
}

TEST(PipelineDeterminismTest, PreparedCampaignInvariantAcrossWorkerCounts) {
  PreparedCampaign base = PrepareCampaign(BaseOptions(1));
  ASSERT_GT(base.corpus.size(), 10u);
  ASSERT_GT(base.pmcs.size(), 50u);
  for (int workers : {2, 4}) {
    SCOPED_TRACE(testing::Message() << "num_workers=" << workers);
    PreparedCampaign campaign = PrepareCampaign(BaseOptions(workers));
    ASSERT_EQ(campaign.corpus.size(), base.corpus.size());
    for (size_t i = 0; i < base.corpus.size(); i++) {
      EXPECT_EQ(campaign.corpus[i], base.corpus[i]) << "corpus " << i;
    }
    ExpectSameProfiles(campaign.profiles, base.profiles);
    ExpectSamePmcs(campaign.pmcs, base.pmcs);
  }
}

TEST(PipelineDeterminismTest, ClusterTablesInvariantAcrossWorkerCounts) {
  PreparedCampaign campaign = PrepareCampaign(BaseOptions(2));
  ASSERT_GT(campaign.pmcs.size(), 0u);
  for (Strategy strategy : kAllClusteringStrategies) {
    SCOPED_TRACE(StrategyName(strategy));
    std::vector<PmcCluster> sequential = ClusterPmcs(campaign.pmcs, strategy, 1);
    for (int workers : {2, 3, 4}) {
      std::vector<PmcCluster> sharded = ClusterPmcs(campaign.pmcs, strategy, workers);
      ASSERT_EQ(sharded.size(), sequential.size()) << "num_workers=" << workers;
      EXPECT_EQ(ClusterTableDigest(sharded), ClusterTableDigest(sequential))
          << "num_workers=" << workers;
    }
  }
}

void ExpectSameResults(const PipelineResult& result, const PipelineResult& base) {
  EXPECT_EQ(result.corpus_size, base.corpus_size);
  EXPECT_EQ(result.profiled_ok, base.profiled_ok);
  EXPECT_EQ(result.shared_accesses, base.shared_accesses);
  EXPECT_EQ(result.pmc_count, base.pmc_count);
  EXPECT_EQ(result.total_pmc_pairs, base.total_pmc_pairs);
  EXPECT_EQ(result.cluster_count, base.cluster_count);
  EXPECT_EQ(result.tests_generated, base.tests_generated);
  EXPECT_EQ(result.tests_executed, base.tests_executed);
  EXPECT_EQ(result.tests_with_bug, base.tests_with_bug);
  EXPECT_EQ(result.channel_exercised, base.channel_exercised);
  EXPECT_EQ(result.total_trials, base.total_trials);
  EXPECT_EQ(result.schedule_switches_orig, base.schedule_switches_orig);
  EXPECT_EQ(result.schedule_switches_min, base.schedule_switches_min);
  EXPECT_EQ(result.findings.total_findings(), base.findings.total_findings());
  EXPECT_EQ(FindingsDigest(result.findings), FindingsDigest(base.findings));
}

// The dirty-page delta restore is a pure optimization: with it disabled (reference full
// memcpy path), every deterministic pipeline output must stay byte-identical — and the
// invariance across worker counts must hold in either mode.
TEST(PipelineDeterminismTest, DeltaRestoreOnOffProducesIdenticalResults) {
  ASSERT_TRUE(KernelVm::DeltaRestoreEnabled()) << "delta restore should default on";
  PipelineResult with_delta = RunSnowboardPipeline(BaseOptions(1));
  ASSERT_GT(with_delta.tests_executed, 0u);

  KernelVm::SetDeltaRestoreEnabled(false);
  PipelineResult without_delta = RunSnowboardPipeline(BaseOptions(1));
  PipelineResult without_delta_mt = RunSnowboardPipeline(BaseOptions(4));
  KernelVm::SetDeltaRestoreEnabled(true);

  {
    SCOPED_TRACE("delta off vs on, 1 worker");
    ExpectSameResults(without_delta, with_delta);
  }
  {
    SCOPED_TRACE("delta off, 4 workers vs 1 worker");
    ExpectSameResults(without_delta_mt, with_delta);
  }
  // And with delta back on, multi-worker runs still match the single-worker baseline.
  {
    SCOPED_TRACE("delta on, 2 workers vs 1 worker");
    PipelineResult with_delta_mt = RunSnowboardPipeline(BaseOptions(2));
    ExpectSameResults(with_delta_mt, with_delta);
  }
}

// The streaming engine overlaps stages (profiles fold into identification while the
// profile tail runs; exploration starts as soon as tests resolve) but pins every ordered
// computation to the barrier engine's order — so the serialized result must be
// byte-identical across engines AND worker counts. This is the A/B the unified campaign
// engine is held to.
TEST(PipelineDeterminismTest, StreamingAndBarrierEnginesByteIdentical) {
  PipelineOptions golden_options = BaseOptions(1);
  golden_options.streaming = false;
  const std::string golden = SerializePipelineResult(RunSnowboardPipeline(golden_options));
  ASSERT_FALSE(golden.empty());
  for (bool streaming : {false, true}) {
    for (int workers : {1, 2, 4, 8}) {
      if (!streaming && workers == 1) {
        continue;  // The golden itself.
      }
      SCOPED_TRACE(testing::Message()
                   << (streaming ? "streaming" : "barrier") << " workers=" << workers);
      PipelineOptions options = BaseOptions(workers);
      options.streaming = streaming;
      EXPECT_EQ(SerializePipelineResult(RunSnowboardPipeline(options)), golden);
    }
  }
}

// Sharded-merge determinism: per-worker counter shards drain into the global block with
// commutative additions, so work-proportional counter TOTALS — profiles executed,
// concurrent tests run, snapshot restores performed — must be exactly equal at any worker
// count under either engine, and the masked report.json (whose deterministic portion
// embeds the funnel those counters feed) must stay byte-identical. Only totals invariant
// under scheduling are compared: the full/delta restore SPLIT varies with worker count
// (each worker VM's first restore is a full one), so the sum is asserted, not the parts.
TEST(PipelineDeterminismTest, ShardedCounterTotalsAndMaskedReportInvariant) {
  struct Totals {
    uint64_t profile_runs = 0;
    uint64_t tests_run = 0;
    uint64_t restores = 0;
  };
  auto run = [](const PipelineOptions& options, std::string* masked_report) {
    ResetPipelineCounters();
    PipelineResult result = RunSnowboardPipeline(options);
    *masked_report = MaskReportVolatile(RenderReportJson(BuildCampaignReport(options, result)));
    const PipelineCounters& counters = GlobalPipelineCounters();
    Totals totals;
    totals.profile_runs = counters.vm_profile_runs.load();
    totals.tests_run = counters.concurrent_tests_run.load();
    totals.restores =
        counters.snapshot_full_restores.load() + counters.snapshot_delta_restores.load();
    return totals;
  };

  PipelineOptions golden_options = BaseOptions(1);
  golden_options.streaming = false;
  std::string golden_report;
  Totals golden = run(golden_options, &golden_report);
  ASSERT_GT(golden.tests_run, 0u);
  ASSERT_GT(golden.profile_runs, 0u);
  ASSERT_GT(golden.restores, golden.tests_run);  // At least one restore per trial.

  for (bool streaming : {false, true}) {
    for (int workers : {1, 2, 4, 8}) {
      if (!streaming && workers == 1) {
        continue;  // The golden itself.
      }
      SCOPED_TRACE(testing::Message()
                   << (streaming ? "streaming" : "barrier") << " workers=" << workers);
      PipelineOptions options = BaseOptions(workers);
      options.streaming = streaming;
      std::string masked_report;
      Totals totals = run(options, &masked_report);
      EXPECT_EQ(masked_report, golden_report);
      EXPECT_EQ(totals.profile_runs, golden.profile_runs);
      EXPECT_EQ(totals.tests_run, golden.tests_run);
      EXPECT_EQ(totals.restores, golden.restores);
    }
  }
}

// Same A/B over a pairing baseline, where the streaming engine genuinely overlaps
// exploration with the profile tail (tests depend only on the corpus).
TEST(PipelineDeterminismTest, StreamingMatchesBarrierForPairingBaseline) {
  PipelineOptions barrier = BaseOptions(1);
  barrier.strategy = Strategy::kRandomPairing;
  barrier.streaming = false;
  const std::string golden = SerializePipelineResult(RunSnowboardPipeline(barrier));
  for (int workers : {1, 4}) {
    SCOPED_TRACE(testing::Message() << "workers=" << workers);
    PipelineOptions streaming = BaseOptions(workers);
    streaming.strategy = Strategy::kRandomPairing;
    streaming.streaming = true;
    EXPECT_EQ(SerializePipelineResult(RunSnowboardPipeline(streaming)), golden);
  }
}

TEST(PipelineDeterminismTest, FullPipelineStatsAndFindingsInvariant) {
  PipelineResult base = RunSnowboardPipeline(BaseOptions(1));
  ASSERT_GT(base.tests_executed, 0u);
  for (int workers : {2, 4}) {
    SCOPED_TRACE(testing::Message() << "num_workers=" << workers);
    PipelineResult result = RunSnowboardPipeline(BaseOptions(workers));
    EXPECT_EQ(result.corpus_size, base.corpus_size);
    EXPECT_EQ(result.profiled_ok, base.profiled_ok);
    EXPECT_EQ(result.shared_accesses, base.shared_accesses);
    EXPECT_EQ(result.pmc_count, base.pmc_count);
    EXPECT_EQ(result.total_pmc_pairs, base.total_pmc_pairs);
    EXPECT_EQ(result.cluster_count, base.cluster_count);
    EXPECT_EQ(result.tests_generated, base.tests_generated);
    EXPECT_EQ(result.tests_executed, base.tests_executed);
    EXPECT_EQ(result.tests_with_bug, base.tests_with_bug);
    EXPECT_EQ(result.channel_exercised, base.channel_exercised);
    EXPECT_EQ(result.total_trials, base.total_trials);

    EXPECT_EQ(result.findings.total_findings(), base.findings.total_findings());
    ASSERT_EQ(result.findings.first_findings().size(), base.findings.first_findings().size());
    auto base_it = base.findings.first_findings().begin();
    for (const auto& [id, finding] : result.findings.first_findings()) {
      EXPECT_EQ(id, base_it->first);
      EXPECT_EQ(finding.issue_id, base_it->second.issue_id);
      EXPECT_EQ(finding.evidence, base_it->second.evidence);
      EXPECT_EQ(finding.test_index, base_it->second.test_index);
      EXPECT_EQ(finding.trial, base_it->second.trial);
      EXPECT_EQ(finding.duplicate_input, base_it->second.duplicate_input);
      // The shippable reproducer: the token (schedule, fingerprint, crc and all) must be
      // byte-identical regardless of worker count.
      EXPECT_EQ(finding.replay_token, base_it->second.replay_token);
      ++base_it;
    }
    EXPECT_EQ(result.schedule_switches_orig, base.schedule_switches_orig);
    EXPECT_EQ(result.schedule_switches_min, base.schedule_switches_min);
    EXPECT_EQ(FindingsDigest(result.findings), FindingsDigest(base.findings));
  }
}

}  // namespace
}  // namespace snowboard
