// Unit tests for src/util: deterministic RNG, hashing, string formatting.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "src/util/hash.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace snowboard {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, ReseedReproduces) {
  Rng rng(7);
  uint64_t first = rng.Next();
  rng.Next();
  rng.Seed(7);
  EXPECT_EQ(rng.Next(), first);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(1);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; i++) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, BelowZeroReturnsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.Below(0), 0u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 400; i++) {
    int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All five values hit.
}

TEST(RngTest, CoinIsRoughlyFair) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; i++) {
    heads += rng.Coin() ? 1 : 0;
  }
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RngTest, ChanceEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.Chance(0, 10));
  EXPECT_FALSE(rng.Chance(1, 0));  // Zero denominator: never.
  EXPECT_TRUE(rng.Chance(10, 10));
}

TEST(HashTest, Fnv1aStable) {
  EXPECT_EQ(Fnv1a("snowboard"), Fnv1a("snowboard"));
  EXPECT_NE(Fnv1a("snowboard"), Fnv1a("snowboarD"));
}

TEST(HashTest, HashAllOrderSensitive) {
  EXPECT_NE(HashAll(1, 2), HashAll(2, 1));
  EXPECT_EQ(HashAll(1, 2, 3), HashAll(1, 2, 3));
}

TEST(HashTest, HashAllLowCollisionOnSmallDomain) {
  std::unordered_set<uint64_t> hashes;
  for (uint64_t a = 0; a < 64; a++) {
    for (uint64_t b = 0; b < 64; b++) {
      hashes.insert(HashAll(a, b));
    }
  }
  EXPECT_EQ(hashes.size(), 64u * 64u);
}

TEST(StringsTest, StrPrintfFormats) {
  EXPECT_EQ(StrPrintf("x=%d, s=%s", 42, "hi"), "x=42, s=hi");
  EXPECT_EQ(StrPrintf("%s", ""), "");
  EXPECT_EQ(StrPrintf("0x%08x", 0x1234u), "0x00001234");
}

}  // namespace
}  // namespace snowboard
