// The headline end-to-end reproduction: a full Snowboard campaign (S-INS-PAIR, generous
// budget) over the fuzzer-built corpus must rediscover ALL 17 Table 2 issues — 14 bugs plus
// 3 benign data races — with correct type/benign/harmful triage.
#include <gtest/gtest.h>

#include "src/snowboard/pipeline.h"

namespace snowboard {
namespace {

class BugReproTest : public ::testing::Test {
 protected:
  static PipelineResult& CampaignResult() {
    // One shared full campaign (a few seconds); individual tests assert on facets of it.
    static PipelineResult* result = [] {
      PipelineOptions options;
      options.seed = 1;
      options.corpus.seed = 42;
      options.corpus.max_iterations = 300;
      options.corpus.target_size = 80;
      options.strategy = Strategy::kSInsPair;
      options.max_concurrent_tests = 600;
      options.explorer.num_trials = 24;
      options.num_workers = 4;
      return new PipelineResult(RunSnowboardPipeline(options));
    }();
    return *result;
  }
};

TEST_F(BugReproTest, AllSeventeenIssuesFound) {
  const PipelineResult& result = CampaignResult();
  for (const IssueInfo& issue : IssueCatalog()) {
    EXPECT_TRUE(result.findings.Found(issue.id))
        << "issue #" << issue.id << " (" << issue.summary << ") not found";
  }
}

TEST_F(BugReproTest, NoUnclassifiedFindings) {
  // Our analog of the paper's manual triage must account for every detector report.
  const PipelineResult& result = CampaignResult();
  EXPECT_FALSE(result.findings.Found(0))
      << "unclassified finding: " << result.findings.first_findings().at(0).evidence;
}

TEST_F(BugReproTest, HarmfulPanicsIncludeTheCaseStudies) {
  const PipelineResult& result = CampaignResult();
  // Figure 1 (#12), Figure 3 (#9), Figure 4 (#1) — the three §5.2 case studies.
  EXPECT_TRUE(result.findings.Found(12));
  EXPECT_TRUE(result.findings.Found(9));
  EXPECT_TRUE(result.findings.Found(1));
}

TEST_F(BugReproTest, BenignRacesTriagedBenign) {
  const PipelineResult& result = CampaignResult();
  for (int id : {10, 13, 16}) {
    const IssueInfo* issue = FindIssue(id);
    ASSERT_NE(issue, nullptr);
    EXPECT_TRUE(issue->benign);
    EXPECT_TRUE(result.findings.Found(id));
  }
}

TEST_F(BugReproTest, UbiquitousRaceFoundFirst) {
  // "#13 is found by all strategies ... it can be unmasked by any concurrent tests that
  // request kernel memory" — it must be among the earliest findings.
  const PipelineResult& result = CampaignResult();
  ASSERT_TRUE(result.findings.Found(13));
  EXPECT_LE(result.findings.first_findings().at(13).test_index, 4u);
}

TEST_F(BugReproTest, PredictedChannelsFire) {
  // §5.3.2: a substantial fraction of PMC-generated tests actually exercise the predicted
  // channel (the paper measured 36%; the shape claim is "well above zero, well below all").
  const PipelineResult& result = CampaignResult();
  EXPECT_GT(result.channel_exercised, result.tests_executed / 20);
  EXPECT_LT(result.channel_exercised, result.tests_executed);
}

TEST_F(BugReproTest, DuplicateAndDistinctInputsBothContribute) {
  const PipelineResult& result = CampaignResult();
  bool saw_duplicate = false;
  bool saw_distinct = false;
  for (const auto& [id, finding] : result.findings.first_findings()) {
    if (id == 0) {
      continue;
    }
    saw_duplicate = saw_duplicate || finding.duplicate_input;
    saw_distinct = saw_distinct || !finding.duplicate_input;
  }
  EXPECT_TRUE(saw_duplicate);
  EXPECT_TRUE(saw_distinct);
}

}  // namespace
}  // namespace snowboard
