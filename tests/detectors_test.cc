// Tests for the bug detectors: lockset race detection, console checking, PMC channel
// verification — unit-level on synthetic traces and end-to-end on real kernel runs.
#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/kernel/net/netdev.h"
#include "src/kernel/task.h"
#include "src/kernel/tty/serial.h"
#include "src/sim/site.h"
#include "src/sim/sync.h"
#include "src/snowboard/detectors.h"

namespace snowboard {
namespace {

// --- Synthetic-trace helpers. ---

Event AccessEvent(VcpuId vcpu, AccessType type, GuestAddr addr, SiteId site,
                  bool marked = false, uint64_t value = 0, uint8_t len = 4) {
  Event e;
  e.kind = EventKind::kAccess;
  e.vcpu = vcpu;
  e.access.type = type;
  e.access.addr = addr;
  e.access.len = len;
  e.access.site = site;
  e.access.marked_atomic = marked;
  e.access.value = value;
  e.access.vcpu = vcpu;
  return e;
}

Event LockEventFor(VcpuId vcpu, EventKind kind, GuestAddr lock) {
  Event e;
  e.kind = kind;
  e.vcpu = vcpu;
  e.lock_addr = lock;
  return e;
}

TEST(RaceDetectorTest, UnlockedWriteReadIsARace) {
  Trace trace;
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 11));
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, 22));
  std::vector<RaceReport> races = DetectRaces(trace);
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(races[0].write_site, 11u);
  EXPECT_EQ(races[0].other_site, 22u);
  EXPECT_FALSE(races[0].write_write);
}

TEST(RaceDetectorTest, ReadReadIsNotARace) {
  Trace trace;
  trace.push_back(AccessEvent(0, AccessType::kRead, 0x2000, 11));
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, 22));
  EXPECT_TRUE(DetectRaces(trace).empty());
}

TEST(RaceDetectorTest, SameVcpuIsNotARace) {
  Trace trace;
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 11));
  trace.push_back(AccessEvent(0, AccessType::kRead, 0x2000, 22));
  EXPECT_TRUE(DetectRaces(trace).empty());
}

TEST(RaceDetectorTest, CommonLockSuppresses) {
  Trace trace;
  trace.push_back(LockEventFor(0, EventKind::kLockAcquire, 0x100));
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 11));
  trace.push_back(LockEventFor(0, EventKind::kLockRelease, 0x100));
  trace.push_back(LockEventFor(1, EventKind::kLockAcquire, 0x100));
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, 22));
  trace.push_back(LockEventFor(1, EventKind::kLockRelease, 0x100));
  EXPECT_TRUE(DetectRaces(trace).empty());
}

TEST(RaceDetectorTest, DifferentLocksDoNotSuppress) {
  Trace trace;
  trace.push_back(LockEventFor(0, EventKind::kLockAcquire, 0x100));
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 11));
  trace.push_back(LockEventFor(0, EventKind::kLockRelease, 0x100));
  trace.push_back(LockEventFor(1, EventKind::kLockAcquire, 0x200));  // A different lock!
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, 22));
  trace.push_back(LockEventFor(1, EventKind::kLockRelease, 0x200));
  EXPECT_EQ(DetectRaces(trace).size(), 1u);
}

TEST(RaceDetectorTest, RcuReadSideDoesNotExcludeWriters) {
  Trace trace;
  trace.push_back(LockEventFor(0, EventKind::kLockAcquire, 0x100));
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 11));
  trace.push_back(LockEventFor(0, EventKind::kLockRelease, 0x100));
  trace.push_back(LockEventFor(1, EventKind::kRcuReadLock, 0x300));
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, 22));
  trace.push_back(LockEventFor(1, EventKind::kRcuReadUnlock, 0x300));
  EXPECT_EQ(DetectRaces(trace).size(), 1u);  // The Figure 3 situation.
}

TEST(RaceDetectorTest, SharedRwLockSuppressesAgainstWriteHolder) {
  Trace trace;
  trace.push_back(LockEventFor(0, EventKind::kLockAcquire, 0x100));  // Write side.
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 11));
  trace.push_back(LockEventFor(0, EventKind::kLockRelease, 0x100));
  trace.push_back(LockEventFor(1, EventKind::kSharedAcquire, 0x100));  // Read side.
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, 22));
  trace.push_back(LockEventFor(1, EventKind::kSharedRelease, 0x100));
  EXPECT_TRUE(DetectRaces(trace).empty());
}

TEST(RaceDetectorTest, BothMarkedAtomicExempt) {
  Trace trace;
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 11, /*marked=*/true));
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, 22, /*marked=*/true));
  EXPECT_TRUE(DetectRaces(trace).empty());
}

TEST(RaceDetectorTest, PlainReadBeforeMarkedWriteRaces) {
  // A plain read that executed BEFORE the marked store cannot have acquired it: race.
  Trace trace;
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, 22, /*marked=*/false));
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 11, /*marked=*/true));
  EXPECT_EQ(DetectRaces(trace).size(), 1u);
}

TEST(RaceDetectorTest, DependencyOrderingSuppressesInitThenPublish) {
  // A plain read that OBSERVES a release store acquires it (hardware dependency
  // ordering): the writer's earlier initialization is ordered before the reader's
  // dependent accesses, so no race is reported.
  Trace trace;
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2004, 10));  // Init (plain).
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 11, /*marked=*/true));  // Publish.
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, 22));   // Pointer chase (plain).
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2004, 23));   // Dependent field read.
  EXPECT_TRUE(DetectRaces(trace).empty());
}

TEST(RaceDetectorTest, PlainOverwriteBreaksPublishChain) {
  Trace trace;
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2004, 10));  // Init (plain).
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 11, /*marked=*/true));  // Publish.
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 12));  // Plain overwrite!
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, 22));   // No acquire now.
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2004, 23));
  // The init-field pair races, and the pointer cell itself races against both of the
  // writer's stores (the plain one, and the marked one the reader never acquired).
  EXPECT_EQ(DetectRaces(trace).size(), 3u);
}

TEST(RaceDetectorTest, WriteWriteRaceDetected) {
  Trace trace;
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 11));
  trace.push_back(AccessEvent(1, AccessType::kWrite, 0x2000, 22));
  std::vector<RaceReport> races = DetectRaces(trace);
  ASSERT_EQ(races.size(), 1u);
  EXPECT_TRUE(races[0].write_write);
}

TEST(RaceDetectorTest, OverlappingRangesDifferentAddresses) {
  // 1-byte write into the middle of a 4-byte read: overlap across granule boundary.
  Trace trace;
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2003, 11, false, 0, 2));
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, 22, false, 0, 4));
  EXPECT_EQ(DetectRaces(trace).size(), 1u);
}

TEST(RaceDetectorTest, DisjointRangesNoRace) {
  Trace trace;
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 11));
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2004, 22));
  EXPECT_TRUE(DetectRaces(trace).empty());
}

TEST(RaceDetectorTest, DedupBySitePair) {
  Trace trace;
  for (int i = 0; i < 10; i++) {
    trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 11));
    trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, 22));
  }
  EXPECT_EQ(DetectRaces(trace).size(), 1u);
}

TEST(RaceDetectorTest, LockReleaseReallyReleases) {
  // Writer holds the lock only for the first access; the second unlocked write races.
  Trace trace;
  trace.push_back(LockEventFor(0, EventKind::kLockAcquire, 0x100));
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 11));
  trace.push_back(LockEventFor(0, EventKind::kLockRelease, 0x100));
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 12));  // Unlocked.
  trace.push_back(LockEventFor(1, EventKind::kLockAcquire, 0x100));
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, 22));
  trace.push_back(LockEventFor(1, EventKind::kLockRelease, 0x100));
  std::vector<RaceReport> races = DetectRaces(trace);
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(races[0].write_site, 12u);
}

TEST(ConsoleCheckerTest, Patterns) {
  EXPECT_TRUE(IsSuspiciousConsoleLine("BUG: kernel NULL pointer dereference"));
  EXPECT_TRUE(IsSuspiciousConsoleLine("EXT4-fs error (device sbfs): checksum invalid"));
  EXPECT_TRUE(IsSuspiciousConsoleLine("blk_update_request: I/O error, dev sbd0, sector 9"));
  EXPECT_FALSE(IsSuspiciousConsoleLine("kmalloc: out of memory"));
  EXPECT_FALSE(IsSuspiciousConsoleLine("slab: stats skew (frees > allocs)"));
}

TEST(PmcChannelTest, ExercisedWhenDataFlows) {
  PmcKey hint;
  hint.write = PmcSide{0x2000, 4, 11, 5};
  hint.read = PmcSide{0x2000, 4, 22, 0};
  Trace trace;
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 11, false, 5));
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, 22, false, 5));  // Sees 5!
  EXPECT_TRUE(PmcChannelExercised(trace, hint, 0, 1));
}

TEST(PmcChannelTest, NotExercisedWhenReadSeesOldValue) {
  PmcKey hint;
  hint.write = PmcSide{0x2000, 4, 11, 5};
  hint.read = PmcSide{0x2000, 4, 22, 0};
  Trace trace;
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, 22, false, 0));  // Reads first.
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 11, false, 5));
  EXPECT_FALSE(PmcChannelExercised(trace, hint, 0, 1));
}

TEST(PmcChannelTest, WrongSiteDoesNotCount) {
  PmcKey hint;
  hint.write = PmcSide{0x2000, 4, 11, 5};
  hint.read = PmcSide{0x2000, 4, 22, 0};
  Trace trace;
  trace.push_back(AccessEvent(0, AccessType::kWrite, 0x2000, 99, false, 5));
  trace.push_back(AccessEvent(1, AccessType::kRead, 0x2000, 22, false, 5));
  EXPECT_FALSE(PmcChannelExercised(trace, hint, 0, 1));
}

// --- End-to-end: real kernel races caught by the detector. ---

class AlternatingScheduler : public Scheduler {
 public:
  bool AfterAccess(VcpuId vcpu, const Access& access) override { return true; }
};

TEST(RaceDetectorE2eTest, TtyAutoconfigRaceCaught) {
  // Issue #14: tty_port_open (port lock) vs uart_do_autoconfig (uart mutex).
  KernelVm vm;
  const KernelGlobals& g = vm.globals();
  AlternatingScheduler scheduler;
  Engine::RunOptions opts;
  opts.scheduler = &scheduler;
  opts.max_instructions = 500'000;
  Engine::RunResult result = vm.engine().Run(
      {[&](Ctx& ctx) {
         TaskEnter(ctx, g.tasks[0]);
         TtyPortOpen(ctx, g);
       },
       [&](Ctx& ctx) {
         TaskEnter(ctx, g.tasks[1]);
         UartDoAutoconfig(ctx, g, 115200);
       }},
      opts);
  std::vector<RaceReport> races = DetectRaces(result.trace);
  bool found = false;
  for (const RaceReport& race : races) {
    std::string a = LookupSite(race.write_site).function;
    std::string b = LookupSite(race.other_site).function;
    if ((a + b).find("UartDoAutoconfig") != std::string::npos &&
        (a + b).find("TtyPortOpen") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RaceDetectorE2eTest, ProperlyLockedPathsStayQuietOnThoseObjects) {
  // Two writers to the same sbfs inode, both under i_lock: no race on inode fields. (The
  // kalloc stats race may still fire; filter to inode-field sites.)
  KernelVm vm;
  const KernelGlobals& g = vm.globals();
  AlternatingScheduler scheduler;
  Engine::RunOptions opts;
  opts.scheduler = &scheduler;
  opts.max_instructions = 500'000;
  Engine::RunResult result = vm.engine().Run(
      {[&](Ctx& ctx) {
         TaskEnter(ctx, g.tasks[0]);
         TtyWrite(ctx, g, 3);  // Port lock held on both sides.
       },
       [&](Ctx& ctx) {
         TaskEnter(ctx, g.tasks[1]);
         TtyWrite(ctx, g, 5);
       }},
      opts);
  for (const RaceReport& race : DetectRaces(result.trace)) {
    std::string fn = LookupSite(race.write_site).function;
    EXPECT_EQ(fn.find("TtyWrite"), std::string::npos)
        << "false positive on a properly locked path";
  }
}

}  // namespace
}  // namespace snowboard
