// Unit tests for guest memory: raw accessors, the null page, static allocation, snapshots,
// sites, and the ESP stack filter.
#include <gtest/gtest.h>

#include "src/sim/memory.h"
#include "src/sim/site.h"
#include "src/sim/stackfilter.h"

namespace snowboard {
namespace {

TEST(MemoryTest, RawRoundTrip) {
  Memory mem(1 << 16);
  GuestAddr a = mem.StaticAlloc(16);
  mem.WriteRaw(a, 4, 0xdeadbeef);
  EXPECT_EQ(mem.ReadRaw(a, 4), 0xdeadbeefu);
  mem.WriteRaw(a + 4, 8, 0x1122334455667788ull);
  EXPECT_EQ(mem.ReadRaw(a + 4, 8), 0x1122334455667788ull);
}

TEST(MemoryTest, LittleEndianByteOrder) {
  Memory mem(1 << 16);
  GuestAddr a = mem.StaticAlloc(8);
  mem.WriteRaw(a, 4, 0x04030201);
  EXPECT_EQ(mem.ReadRaw(a, 1), 0x01u);
  EXPECT_EQ(mem.ReadRaw(a + 1, 1), 0x02u);
  EXPECT_EQ(mem.ReadRaw(a + 3, 1), 0x04u);
  EXPECT_EQ(mem.ReadRaw(a, 2), 0x0201u);
}

TEST(MemoryTest, NullPageIsInvalid) {
  Memory mem(1 << 16);
  EXPECT_FALSE(mem.Valid(0, 4));
  EXPECT_FALSE(mem.Valid(kGuestNullPageSize - 1, 4));
  EXPECT_TRUE(mem.Valid(kGuestNullPageSize, 4));
}

TEST(MemoryTest, OutOfRangeIsInvalid) {
  Memory mem(1 << 16);
  EXPECT_FALSE(mem.Valid((1 << 16) - 2, 4));
  EXPECT_FALSE(mem.Valid(1 << 16, 1));
  EXPECT_FALSE(mem.Valid(kGuestNullPageSize, 0));  // Zero length.
}

TEST(MemoryTest, ValidNearUint32MaxDoesNotWrap) {
  // Regression: `addr + len` overflows uint32_t for addresses near UINT32_MAX; a
  // wrap-dependent bounds check would see a tiny sum and accept the range.
  Memory mem(1 << 16);
  EXPECT_FALSE(mem.Valid(0xffffffffu, 4));
  EXPECT_FALSE(mem.Valid(0xfffffffcu, 8));
  EXPECT_FALSE(mem.Valid(0xffffffffu, 0xffffffffu));
  // A valid base with a wrapping-scale length must fail on the room check, not wrap.
  EXPECT_FALSE(mem.Valid(kGuestNullPageSize, 0xffffffffu));
  // Sanity: the last valid byte of the arena is still accessible.
  EXPECT_TRUE(mem.Valid((1 << 16) - 1, 1));
  EXPECT_TRUE(mem.Valid((1 << 16) - 8, 8));
}

TEST(MemoryTest, DirtyTrackingCountsTouchedPages) {
  Memory mem(1 << 16);
  GuestAddr a = mem.StaticAlloc(16);
  mem.TakeSnapshot();
  EXPECT_EQ(mem.DirtyPageCount(), 0u);
  mem.WriteRaw(a, 4, 1);
  EXPECT_EQ(mem.DirtyPageCount(), 1u);
  mem.WriteRaw(a + 8, 4, 2);  // Same page: count unchanged.
  EXPECT_EQ(mem.DirtyPageCount(), 1u);
  // A fill spanning several pages marks every page it touches, including the middle ones.
  mem.FillRaw(8 * Memory::kDirtyPageSize, 3 * Memory::kDirtyPageSize, 0xab);
  EXPECT_EQ(mem.DirtyPageCount(), 4u);
}

TEST(MemoryTest, RestoreDirtyCopiesOnlyDirtyPagesAndResetsTracking) {
  Memory mem(1 << 16);
  GuestAddr a = mem.StaticAlloc(8);
  mem.WriteRaw(a, 4, 111);
  Memory::Snapshot snap = mem.TakeSnapshot();
  mem.WriteRaw(a, 4, 222);
  Memory::RestoreStats stats = mem.RestoreDirty(snap);
  EXPECT_FALSE(stats.full);
  EXPECT_EQ(stats.dirty_pages, 1u);
  EXPECT_EQ(stats.bytes_copied, Memory::kDirtyPageSize);
  EXPECT_EQ(mem.ReadRaw(a, 4), 111u);
  EXPECT_EQ(mem.DirtyPageCount(), 0u);
}

TEST(MemoryTest, RestoreDirtyFallsBackToFullForForeignSnapshot) {
  Memory mem(1 << 16);
  GuestAddr a = mem.StaticAlloc(8);
  mem.WriteRaw(a, 4, 1);
  Memory::Snapshot first = mem.TakeSnapshot();
  mem.WriteRaw(a, 4, 2);
  mem.TakeSnapshot();  // Re-anchors tracking away from `first`.
  mem.WriteRaw(a, 4, 3);

  // Tracking no longer covers `first`: RestoreDirty must self-heal with one full copy...
  Memory::RestoreStats stats = mem.RestoreDirty(first);
  EXPECT_TRUE(stats.full);
  EXPECT_EQ(stats.bytes_copied, mem.size());
  EXPECT_EQ(mem.ReadRaw(a, 4), 1u);

  // ...after which tracking is anchored to `first` and the delta path works.
  mem.WriteRaw(a, 4, 4);
  stats = mem.RestoreDirty(first);
  EXPECT_FALSE(stats.full);
  EXPECT_EQ(mem.ReadRaw(a, 4), 1u);
}

TEST(MemoryTest, FullRestoreAdoptsSnapshotTracking) {
  Memory mem(1 << 16);
  GuestAddr a = mem.StaticAlloc(8);
  mem.WriteRaw(a, 4, 1);
  Memory::Snapshot snap = mem.TakeSnapshot();
  mem.WriteRaw(a, 4, 2);
  mem.Restore(snap);  // Reference path also re-anchors: the next delta restore is exact.
  mem.WriteRaw(a, 4, 3);
  Memory::RestoreStats stats = mem.RestoreDirty(snap);
  EXPECT_FALSE(stats.full);
  EXPECT_EQ(mem.ReadRaw(a, 4), 1u);
}

TEST(MemoryTest, StaticAllocAligns) {
  Memory mem(1 << 16);
  mem.StaticAlloc(3, 1);
  GuestAddr a = mem.StaticAlloc(8, 64);
  EXPECT_EQ(a % 64, 0u);
  GuestAddr b = mem.StaticAlloc(8192, 8192);
  EXPECT_EQ(b % 8192, 0u);
}

TEST(MemoryTest, SnapshotRestoreRewindsAllState) {
  Memory mem(1 << 16);
  GuestAddr a = mem.StaticAlloc(8);
  mem.WriteRaw(a, 4, 111);
  Memory::Snapshot snap = mem.TakeSnapshot();
  mem.WriteRaw(a, 4, 222);
  EXPECT_EQ(mem.ReadRaw(a, 4), 222u);
  mem.Restore(snap);
  EXPECT_EQ(mem.ReadRaw(a, 4), 111u);
}

TEST(MemoryTest, SnapshotRestoreIsRepeatable) {
  Memory mem(1 << 16);
  GuestAddr a = mem.StaticAlloc(8);
  mem.WriteRaw(a, 4, 5);
  Memory::Snapshot snap = mem.TakeSnapshot();
  for (int i = 0; i < 3; i++) {
    mem.WriteRaw(a, 4, 100 + static_cast<uint32_t>(i));
    mem.Restore(snap);
    EXPECT_EQ(mem.ReadRaw(a, 4), 5u);
  }
}

TEST(SiteTest, SameLocationSameId) {
  SiteId a = SB_SITE();
  SiteId b = SB_SITE();
  EXPECT_NE(a, b);  // Different source locations (different lines).
  auto get = []() { return SB_SITE(); };
  EXPECT_EQ(get(), get());  // Same location: stable id.
}

TEST(SiteTest, LookupReturnsRegisteredInfo) {
  SiteId id = SB_SITE();
  SiteInfo info = LookupSite(id);
  EXPECT_NE(info.file.find("sim_memory_test.cc"), std::string::npos);
  EXPECT_GT(info.line, 0);
}

TEST(SiteTest, NameForUnknownSite) {
  EXPECT_NE(SiteName(0xdeadbeefdeadbeefull).find("<site"), std::string::npos);
}

TEST(StackFilterTest, PaperFormula) {
  // ESP inside an 8 KiB-aligned stack: the range must be that 8 KiB window.
  GuestAddr esp = 5 * kKernelStackSize + 100;
  StackRange range = KernelStackRangeFromEsp(esp);
  EXPECT_EQ(range.base, 5 * kKernelStackSize);
  EXPECT_EQ(range.top, 6 * kKernelStackSize);
}

TEST(StackFilterTest, InStackAccessFiltered) {
  GuestAddr esp = 3 * kKernelStackSize + 512;
  EXPECT_TRUE(IsStackAccess(esp, 3 * kKernelStackSize + 1000, 4));
  EXPECT_FALSE(IsStackAccess(esp, 4 * kKernelStackSize + 4, 4));
  EXPECT_FALSE(IsStackAccess(esp, 3 * kKernelStackSize - 4, 4));
}

TEST(StackFilterTest, ZeroEspMeansNoFilter) {
  EXPECT_FALSE(IsStackAccess(0, 100, 4));
}

TEST(StackFilterTest, StraddlingAccessNotFiltered) {
  GuestAddr esp = 2 * kKernelStackSize + 16;
  // An access crossing out of the stack window is not a pure stack access.
  EXPECT_FALSE(IsStackAccess(esp, 3 * kKernelStackSize - 2, 4));
}

}  // namespace
}  // namespace snowboard
