// Property tests over the execution engine and race oracle: determinism across schedulers
// and seeds, mutual-exclusion invariants under randomized schedules, and a race-oracle
// soundness sweep (properly locked programs never produce reports; unlocked ones do).
#include <gtest/gtest.h>

#include "src/sim/engine.h"
#include "src/sim/site.h"
#include "src/sim/sync.h"
#include "src/snowboard/detectors.h"
#include "src/snowboard/explorer.h"
#include "src/util/rng.h"

namespace snowboard {
namespace {

// --- Determinism: identical seeds produce byte-identical traces. ---

class EngineDeterminismProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineDeterminismProperty, SameSeedSameTrace) {
  auto run_once = [&](uint64_t seed) {
    Engine engine(1 << 16);
    GuestAddr lock = engine.mem().StaticAlloc(4, 4);
    GuestAddr cells = engine.mem().StaticAlloc(64, 8);
    SpinLockInit(engine.mem(), lock);
    RandomPreemptScheduler scheduler(/*period=*/3);
    scheduler.SeedTrial(seed);
    Engine::RunOptions opts;
    opts.scheduler = &scheduler;
    opts.max_instructions = 100'000;
    auto work = [&](int base) {
      return [&, base](Ctx& ctx) {
        for (int i = 0; i < 8; i++) {
          SpinLock(ctx, lock);
          uint32_t v = ctx.Load32(cells + 4 * static_cast<uint32_t>(base), SB_SITE());
          ctx.Store32(cells + 4 * static_cast<uint32_t>(base), v + 1, SB_SITE());
          SpinUnlock(ctx, lock);
          ctx.Store32(cells + 32 + 4 * static_cast<uint32_t>(base),
                      static_cast<uint32_t>(i), SB_SITE());
        }
      };
    };
    Engine::RunResult result = engine.Run({work(0), work(1)}, opts);
    // Fingerprint the trace.
    uint64_t fingerprint = 0x9e3779b97f4a7c15ull;
    for (const Event& e : result.trace) {
      fingerprint = fingerprint * 31 + static_cast<uint64_t>(e.kind);
      fingerprint = fingerprint * 31 + static_cast<uint64_t>(e.vcpu);
      if (e.kind == EventKind::kAccess) {
        fingerprint = fingerprint * 31 + e.access.addr;
        fingerprint = fingerprint * 31 + e.access.value;
      }
    }
    return std::make_pair(result.completed, fingerprint);
  };

  uint64_t seed = GetParam();
  auto [completed_a, fp_a] = run_once(seed);
  auto [completed_b, fp_b] = run_once(seed);
  EXPECT_EQ(completed_a, completed_b);
  EXPECT_EQ(fp_a, fp_b);
  // A different seed (almost surely) gives a different interleaving.
  auto [completed_c, fp_c] = run_once(seed + 1);
  (void)completed_c;
  EXPECT_NE(fp_a, fp_c);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDeterminismProperty,
                         ::testing::Values(1, 5, 9, 13, 17, 21));

// --- Mutual exclusion holds under every randomized schedule. ---

class MutualExclusionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutualExclusionProperty, CounterNeverLosesUpdates) {
  Engine engine(1 << 16);
  GuestAddr lock = engine.mem().StaticAlloc(4, 4);
  GuestAddr counter = engine.mem().StaticAlloc(4, 4);
  SpinLockInit(engine.mem(), lock);
  Memory::Snapshot snapshot = engine.mem().TakeSnapshot();

  Rng seed_rng(GetParam());
  for (int round = 0; round < 10; round++) {
    engine.mem().Restore(snapshot);
    RandomPreemptScheduler scheduler(/*period=*/1 + seed_rng.Below(4));
    scheduler.SeedTrial(seed_rng.Next());
    Engine::RunOptions opts;
    opts.scheduler = &scheduler;
    opts.max_instructions = 300'000;
    auto incrementer = [&](Ctx& ctx) {
      for (int i = 0; i < 10; i++) {
        SpinLock(ctx, lock);
        uint32_t v = ctx.Load32(counter, SB_SITE());
        ctx.Store32(counter, v + 1, SB_SITE());
        SpinUnlock(ctx, lock);
      }
    };
    Engine::RunResult result = engine.Run({incrementer, incrementer}, opts);
    ASSERT_TRUE(result.completed);
    ASSERT_EQ(engine.mem().ReadRaw(counter, 4), 20u) << "lost update under schedule";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutualExclusionProperty, ::testing::Values(2, 4, 6, 8));

// --- Race-oracle soundness sweep. ---

class RaceOracleProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RaceOracleProperty, LockedProgramsNeverReport) {
  Engine engine(1 << 16);
  GuestAddr lock = engine.mem().StaticAlloc(4, 4);
  GuestAddr shared = engine.mem().StaticAlloc(32, 8);
  SpinLockInit(engine.mem(), lock);
  Memory::Snapshot snapshot = engine.mem().TakeSnapshot();

  Rng rng(GetParam());
  for (int round = 0; round < 8; round++) {
    engine.mem().Restore(snapshot);
    RandomPreemptScheduler scheduler(2);
    scheduler.SeedTrial(rng.Next());
    Engine::RunOptions opts;
    opts.scheduler = &scheduler;
    opts.max_instructions = 300'000;
    // Both threads touch random shared cells, always under the common lock.
    uint64_t work_seed_a = rng.Next();
    uint64_t work_seed_b = rng.Next();
    auto worker = [&](uint64_t work_seed) {
      return [&, work_seed](Ctx& ctx) {
        Rng work_rng(work_seed);
        for (int i = 0; i < 12; i++) {
          SpinLock(ctx, lock);
          GuestAddr cell = shared + 4 * static_cast<GuestAddr>(work_rng.Below(8));
          uint32_t v = ctx.Load32(cell, SB_SITE());
          ctx.Store32(cell, v + 1, SB_SITE());
          SpinUnlock(ctx, lock);
        }
      };
    };
    Engine::RunResult result = engine.Run({worker(work_seed_a), worker(work_seed_b)}, opts);
    ASSERT_TRUE(result.completed);
    ASSERT_TRUE(DetectRaces(result.trace).empty()) << "false positive on locked program";
  }
}

TEST_P(RaceOracleProperty, UnlockedSharedWritesAreReported) {
  Engine engine(1 << 16);
  GuestAddr shared = engine.mem().StaticAlloc(8, 8);
  Memory::Snapshot snapshot = engine.mem().TakeSnapshot();

  Rng rng(GetParam() ^ 0xbeef);
  int reported = 0;
  const int kRounds = 8;
  for (int round = 0; round < kRounds; round++) {
    engine.mem().Restore(snapshot);
    RandomPreemptScheduler scheduler(2);
    scheduler.SeedTrial(rng.Next());
    Engine::RunOptions opts;
    opts.scheduler = &scheduler;
    auto worker = [&](Ctx& ctx) {
      for (int i = 0; i < 6; i++) {
        uint32_t v = ctx.Load32(shared, SB_SITE());
        ctx.Store32(shared, v + 1, SB_SITE());
      }
    };
    Engine::RunResult result = engine.Run({worker, worker}, opts);
    ASSERT_TRUE(result.completed);
    reported += DetectRaces(result.trace).empty() ? 0 : 1;
  }
  // Both threads always execute the unlocked accesses; the oracle must fire every round.
  EXPECT_EQ(reported, kRounds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaceOracleProperty, ::testing::Values(10, 20, 30));

}  // namespace
}  // namespace snowboard
