// Tests for the issue catalog and finding triage.
#include <gtest/gtest.h>

#include "src/sim/site.h"
#include "src/snowboard/report.h"
#include "src/util/hash.h"

namespace snowboard {
namespace {

SiteId FakeSite(const char* function, int salt) {
  // Site ids are keyed by (file, line, counter): derive a distinct line per function name
  // so each fake function gets its own site.
  int line = static_cast<int>(Fnv1a(function) % 1000000) + salt;
  return RegisterSite("triage_test.cc", line, function, 0);
}

RaceReport MakeRace(const char* write_fn, const char* read_fn) {
  RaceReport race;
  race.write_site = FakeSite(write_fn, 1);
  race.other_site = FakeSite(read_fn, 2);
  race.addr = 0x2000;
  return race;
}

TEST(CatalogTest, SeventeenIssues) {
  const std::vector<IssueInfo>& catalog = IssueCatalog();
  EXPECT_EQ(catalog.size(), 17u);
  for (size_t i = 0; i < catalog.size(); i++) {
    EXPECT_EQ(catalog[i].id, static_cast<int>(i) + 1);
  }
  // Table 2 type distribution: 13 DR, 3 AV, 1 OV.
  int dr = 0;
  int av = 0;
  int ov = 0;
  for (const IssueInfo& issue : catalog) {
    dr += issue.type == IssueType::kDataRace ? 1 : 0;
    av += issue.type == IssueType::kAtomicityViolation ? 1 : 0;
    ov += issue.type == IssueType::kOrderViolation ? 1 : 0;
  }
  EXPECT_EQ(dr, 13);
  EXPECT_EQ(av, 3);
  EXPECT_EQ(ov, 1);
  // Benign set: #10, #13, #16.
  EXPECT_TRUE(FindIssue(10)->benign);
  EXPECT_TRUE(FindIssue(13)->benign);
  EXPECT_TRUE(FindIssue(16)->benign);
  EXPECT_FALSE(FindIssue(12)->benign);
  EXPECT_EQ(FindIssue(99), nullptr);
}

TEST(CatalogTest, TypeNames) {
  EXPECT_STREQ(IssueTypeName(IssueType::kDataRace), "DR");
  EXPECT_STREQ(IssueTypeName(IssueType::kAtomicityViolation), "AV");
  EXPECT_STREQ(IssueTypeName(IssueType::kOrderViolation), "OV");
}

TEST(ClassifyRaceTest, KnownPairsBothOrders) {
  EXPECT_EQ(ClassifyRace(MakeRace("UartDoAutoconfig", "TtyPortOpen")), 14);
  EXPECT_EQ(ClassifyRace(MakeRace("TtyPortOpen", "UartDoAutoconfig")), 14);
  EXPECT_EQ(ClassifyRace(MakeRace("DevIoctlSetMac", "DevIoctlGetMac")), 9);
  EXPECT_EQ(ClassifyRace(MakeRace("E1000SetMac", "PacketGetname")), 8);
  EXPECT_EQ(ClassifyRace(MakeRace("DevSetMtu", "Rawv6SendHdrinc")), 7);
  EXPECT_EQ(ClassifyRace(MakeRace("BlkdevSetReadahead", "GenericFadviseBdev")), 5);
  EXPECT_EQ(ClassifyRace(MakeRace("BlkdevSetBlocksize", "MpageReadpage")), 6);
  EXPECT_EQ(ClassifyRace(MakeRace("Fib6CleanTree", "Fib6GetCookieSafe")), 10);
  EXPECT_EQ(ClassifyRace(MakeRace("Kmalloc", "Kmalloc")), 13);
  EXPECT_EQ(ClassifyRace(MakeRace("Kfree", "Kmalloc")), 13);
  EXPECT_EQ(ClassifyRace(MakeRace("SndCtlElemAdd", "SndCtlElemAdd")), 15);
  EXPECT_EQ(
      ClassifyRace(MakeRace("TcpSetDefaultCongestionControl", "TcpSetCongestionControl")),
      16);
  EXPECT_EQ(ClassifyRace(MakeRace("FanoutUnlink", "PacketSendmsg")), 17);
  EXPECT_EQ(ClassifyRace(MakeRace("RhtAssignUnlock", "RhtPtr")), 1);
  EXPECT_EQ(ClassifyRace(MakeRace("ConfigfsRmdir", "ConfigfsLookup")), 11);
  EXPECT_EQ(ClassifyRace(MakeRace("SbfsSwapInodeBootLoader", "SbfsWrite")), 2);
  EXPECT_EQ(ClassifyRace(MakeRace("SbfsFtruncate", "SbfsWrite")), 4);
}

TEST(ClassifyRaceTest, UnknownPairUnclassified) {
  EXPECT_EQ(ClassifyRace(MakeRace("FooBar", "BazQux")), 0);
  EXPECT_EQ(ClassifyRace(MakeRace("TtyPortOpen", "TtyPortOpen")), 0);
}

TEST(ClassifyConsoleTest, PanicsAndFsErrors) {
  EXPECT_EQ(ClassifyConsoleLine(
                "BUG: kernel NULL pointer dereference, address: 0x24 at L2tpXmit (l2tp.cc:93)"),
            12);
  EXPECT_EQ(ClassifyConsoleLine("BUG: kernel NULL pointer dereference at ConfigfsLookup"),
            11);
  EXPECT_EQ(ClassifyConsoleLine("BUG: unable to handle page fault at RhtLookup (x:1)"), 1);
  EXPECT_EQ(ClassifyConsoleLine("BUG: kernel NULL pointer dereference at PacketSendmsg"),
            17);
  EXPECT_EQ(ClassifyConsoleLine("EXT4-fs error: sbfs_swap_inode_boot_loader: "
                                "checksum invalid for inode #1"),
            2);
  EXPECT_EQ(ClassifyConsoleLine("EXT4-fs error: sbfs_ext_check_inode: invalid magic 0x0"),
            3);
  EXPECT_EQ(ClassifyConsoleLine("blk_update_request: I/O error, dev sbd0, sector 65535"),
            4);
  EXPECT_EQ(ClassifyConsoleLine("BUG: something novel"), 0);
  EXPECT_EQ(ClassifyConsoleLine("hello world"), 0);
}

TEST(FindingsLogTest, KeepsEarliestPerIssue) {
  FindingsLog log;
  log.Record(Finding{14, "later", 50, 3, false, ""});
  log.Record(Finding{14, "earlier", 10, 1, false, ""});
  log.Record(Finding{9, "only", 20, 0, true, ""});
  EXPECT_EQ(log.total_findings(), 3u);
  ASSERT_TRUE(log.Found(14));
  EXPECT_EQ(log.first_findings().at(14).test_index, 10u);
  EXPECT_EQ(log.first_findings().at(14).evidence, "earlier");
  EXPECT_TRUE(log.Found(9));
  EXPECT_FALSE(log.Found(12));
}

TEST(FindingsLogTest, MergePrefersEarliest) {
  FindingsLog a;
  FindingsLog b;
  a.Record(Finding{14, "a", 30, 0, false, ""});
  b.Record(Finding{14, "b", 5, 0, false, ""});
  b.Record(Finding{12, "b12", 7, 0, false, ""});
  a.Merge(b);
  EXPECT_EQ(a.first_findings().at(14).test_index, 5u);
  EXPECT_TRUE(a.Found(12));
  EXPECT_EQ(a.total_findings(), 3u);
}

TEST(FindingsLogTest, SummaryMentionsIssues) {
  FindingsLog log;
  log.Record(Finding{12, "BUG: ...", 3, 2, false, ""});
  log.Record(Finding{0, "data race: A / B", 4, 1, true, ""});
  std::string summary = log.Summarize();
  EXPECT_NE(summary.find("#12"), std::string::npos);
  EXPECT_NE(summary.find("OV"), std::string::npos);
  EXPECT_NE(summary.find("HARMFUL"), std::string::npos);
  EXPECT_NE(summary.find("unclassified"), std::string::npos);
}

}  // namespace
}  // namespace snowboard
