// Tests for kernel core pieces: kalloc, tasks/stacks, intrusive lists, and boot/snapshot.
#include <gtest/gtest.h>

#include "src/kernel/kalloc.h"
#include "src/kernel/kernel.h"
#include "src/kernel/klist.h"
#include "src/kernel/task.h"
#include "src/sim/site.h"
#include "src/sim/stackfilter.h"

namespace snowboard {
namespace {

TEST(KallocTest, SizeClassMapping) {
  EXPECT_EQ(KallocSizeClass(1), 0u);
  EXPECT_EQ(KallocSizeClass(16), 0u);
  EXPECT_EQ(KallocSizeClass(17), 1u);
  EXPECT_EQ(KallocSizeClass(1024), 6u);
  EXPECT_EQ(KallocSizeClass(1025), kNumSizeClasses);
  EXPECT_EQ(KallocClassBytes(0), 16u);
  EXPECT_EQ(KallocClassBytes(6), 1024u);
}

TEST(KallocTest, AllocZeroesAndFreesReuse) {
  Engine engine(1 << 18);
  GuestAddr heap = KallocInit(engine.mem(), 32 * 1024);
  engine.RunSequential([&](Ctx& ctx) {
    GuestAddr a = Kmalloc(ctx, heap, 32);
    ASSERT_NE(a, kGuestNull);
    for (uint32_t off = 0; off < 32; off += 4) {
      EXPECT_EQ(ctx.Load32(a + off, SB_SITE()), 0u);
    }
    ctx.Store32(a, 0xAB, SB_SITE());
    Kfree(ctx, heap, a, 32);
    GuestAddr b = Kmalloc(ctx, heap, 32);
    EXPECT_EQ(b, a);  // LIFO free-list reuse.
    EXPECT_EQ(ctx.Load32(b, SB_SITE()), 0u);  // Rezeroed.
  });
}

TEST(KallocTest, DistinctClassesDistinctBlocks) {
  Engine engine(1 << 18);
  GuestAddr heap = KallocInit(engine.mem(), 32 * 1024);
  engine.RunSequential([&](Ctx& ctx) {
    GuestAddr a = Kmalloc(ctx, heap, 16);
    GuestAddr b = Kmalloc(ctx, heap, 64);
    GuestAddr c = Kmalloc(ctx, heap, 16);
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(b, c);
  });
}

TEST(KallocTest, ExhaustionReturnsNull) {
  Engine engine(1 << 18);
  GuestAddr heap = KallocInit(engine.mem(), 1024);
  Engine::RunResult result = engine.RunSequential([&](Ctx& ctx) {
    GuestAddr last = 1;
    for (int i = 0; i < 100 && last != kGuestNull; i++) {
      last = Kmalloc(ctx, heap, 128);
    }
    EXPECT_EQ(last, kGuestNull);
  });
  EXPECT_TRUE(result.completed);
}

TEST(KallocTest, StatsCountersAreUnsynchronizedPlainAccesses) {
  // The issue #13 seed: the counter update must be plain (not marked atomic) so the race
  // oracle can see it.
  Engine engine(1 << 18);
  GuestAddr heap = KallocInit(engine.mem(), 32 * 1024);
  Engine::RunResult result = engine.RunSequential([&](Ctx& ctx) {
    Kmalloc(ctx, heap, 16);
  });
  bool saw_plain_counter_write = false;
  for (const Event& e : result.trace) {
    if (e.kind == EventKind::kAccess && e.access.type == AccessType::kWrite &&
        e.access.addr == heap + kHeapTotalAllocs) {
      EXPECT_FALSE(e.access.marked_atomic);
      saw_plain_counter_write = true;
    }
  }
  EXPECT_TRUE(saw_plain_counter_write);
}

TEST(TaskTest, StacksAlignedAndFdTableWorks) {
  Engine engine(1 << 18);
  GuestAddr task = TaskInit(engine.mem(), 1);
  GuestAddr stack = static_cast<GuestAddr>(engine.mem().ReadRaw(task + kTaskStackBase, 4));
  EXPECT_EQ(stack % kKernelStackSize, 0u);

  engine.RunSequential([&](Ctx& ctx) {
    TaskEnter(ctx, task);
    EXPECT_EQ(ctx.current_task, task);
    EXPECT_GT(ctx.esp, stack);
    EXPECT_LE(ctx.esp, stack + kKernelStackSize);

    int fd0 = FdAlloc(ctx, task, 0x5000);
    int fd1 = FdAlloc(ctx, task, 0x6000);
    EXPECT_EQ(fd0, 0);
    EXPECT_EQ(fd1, 1);
    EXPECT_EQ(FdGet(ctx, task, fd0), 0x5000u);
    FdClear(ctx, task, fd0);
    EXPECT_EQ(FdGet(ctx, task, fd0), kGuestNull);
    EXPECT_EQ(FdGet(ctx, task, 99), kGuestNull);
    EXPECT_EQ(FdGet(ctx, task, -1), kGuestNull);
  });
}

TEST(TaskTest, FdTableExhausts) {
  Engine engine(1 << 18);
  GuestAddr task = TaskInit(engine.mem(), 1);
  engine.RunSequential([&](Ctx& ctx) {
    TaskEnter(ctx, task);
    for (uint32_t i = 0; i < kMaxFds; i++) {
      EXPECT_GE(FdAlloc(ctx, task, 0x5000 + i), 0);
    }
    EXPECT_EQ(FdAlloc(ctx, task, 0x9000), -1);
  });
}

TEST(TaskTest, StackFrameAccessesAreFiltered) {
  Engine engine(1 << 18);
  GuestAddr task = TaskInit(engine.mem(), 1);
  Engine::RunResult result = engine.RunSequential([&](Ctx& ctx) {
    TaskEnter(ctx, task);
    StackFrame frame(ctx, 32);
    ctx.Store32(frame.base(), 42, SB_SITE());
  });
  ASSERT_EQ(result.trace.size(), 1u);
  const Access& a = result.trace[0].access;
  EXPECT_TRUE(IsStackAccess(a.esp, a.addr, a.len));
}

TEST(KlistTest, AddRemoveTraverse) {
  Engine engine(1 << 18);
  GuestAddr head = engine.mem().StaticAlloc(4, 4);
  GuestAddr n1 = engine.mem().StaticAlloc(16, 8);
  GuestAddr n2 = engine.mem().StaticAlloc(16, 8);
  engine.mem().WriteRaw(head, 4, 0);
  engine.RunSequential([&](Ctx& ctx) {
    ListAddRcu(ctx, head, n1, 0, SB_SITE());
    ListAddRcu(ctx, head, n2, 0, SB_SITE());
    EXPECT_EQ(ListFirstRcu(ctx, head, SB_SITE()), n2);
    EXPECT_EQ(ListNextRcu(ctx, n2, 0, SB_SITE()), n1);
    EXPECT_TRUE(ListDelRcu(ctx, head, n1, 0));
    EXPECT_FALSE(ListDelRcu(ctx, head, n1, 0));  // Already gone.
    EXPECT_EQ(ListFirstRcu(ctx, head, SB_SITE()), n2);
    EXPECT_EQ(ListNextRcu(ctx, n2, 0, SB_SITE()), kGuestNull);
  });
}

TEST(BootTest, BootIsDeterministic) {
  KernelVm vm_a;
  KernelVm vm_b;
  const KernelGlobals& a = vm_a.globals();
  const KernelGlobals& b = vm_b.globals();
  EXPECT_EQ(a.kheap, b.kheap);
  EXPECT_EQ(a.l2tp, b.l2tp);
  EXPECT_EQ(a.sbfs, b.sbfs);
  EXPECT_EQ(a.tasks[0], b.tasks[0]);
  EXPECT_EQ(a.tasks[1], b.tasks[1]);
}

TEST(BootTest, AllGlobalsAllocated) {
  KernelVm vm;
  const KernelGlobals& g = vm.globals();
  EXPECT_NE(g.rcu_readers, kGuestNull);
  EXPECT_NE(g.kheap, kGuestNull);
  EXPECT_NE(g.rtnl_lock, kGuestNull);
  EXPECT_NE(g.netdevs, kGuestNull);
  EXPECT_NE(g.l2tp, kGuestNull);
  EXPECT_NE(g.packet, kGuestNull);
  EXPECT_NE(g.fib6, kGuestNull);
  EXPECT_NE(g.tcp_cong, kGuestNull);
  EXPECT_NE(g.sbfs, kGuestNull);
  EXPECT_NE(g.configfs, kGuestNull);
  EXPECT_NE(g.blockdevs, kGuestNull);
  EXPECT_NE(g.msgipc, kGuestNull);
  EXPECT_NE(g.tty, kGuestNull);
  EXPECT_NE(g.sndcard, kGuestNull);
}

TEST(BootTest, SnapshotRestoreRewindsKernelState) {
  KernelVm vm;
  const KernelGlobals& g = vm.globals();
  // Mutate some kernel state.
  vm.engine().RunSequential([&](Ctx& ctx) {
    TaskEnter(ctx, g.tasks[0]);
    Kmalloc(ctx, g.kheap, 64);
  });
  uint64_t allocs = vm.engine().mem().ReadRaw(g.kheap + kHeapTotalAllocs, 4);
  EXPECT_EQ(allocs, 1u);
  vm.RestoreSnapshot();
  EXPECT_EQ(vm.engine().mem().ReadRaw(g.kheap + kHeapTotalAllocs, 4), 0u);
}

}  // namespace
}  // namespace snowboard
