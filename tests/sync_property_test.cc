// Property tests for the guest synchronization primitives under randomized adversarial
// schedules: seqlock readers never observe torn data, rwlocks keep writer exclusivity,
// RCU grace periods really wait, and the rhashtable keeps its invariants under churn.
#include <gtest/gtest.h>

#include "src/kernel/rhashtable.h"
#include "src/sim/engine.h"
#include "src/sim/site.h"
#include "src/sim/sync.h"
#include "src/snowboard/explorer.h"
#include "src/util/rng.h"

namespace snowboard {
namespace {

class SeqlockProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeqlockProperty, ReadersNeverObserveTornPairs) {
  // Writer keeps the invariant b == a + 1 under a seqlock; readers that pass the retry
  // protocol must always observe it, under any schedule.
  Engine engine(1 << 16);
  GuestAddr seq = engine.mem().StaticAlloc(4, 4);
  GuestAddr lock = engine.mem().StaticAlloc(4, 4);
  GuestAddr pair = engine.mem().StaticAlloc(8, 8);
  SeqCountInit(engine.mem(), seq);
  SpinLockInit(engine.mem(), lock);
  engine.mem().WriteRaw(pair, 4, 0);
  engine.mem().WriteRaw(pair + 4, 4, 1);
  Memory::Snapshot snapshot = engine.mem().TakeSnapshot();

  Rng rng(GetParam());
  for (int round = 0; round < 10; round++) {
    engine.mem().Restore(snapshot);
    RandomPreemptScheduler scheduler(1 + rng.Below(3));
    scheduler.SeedTrial(rng.Next());
    Engine::RunOptions opts;
    opts.scheduler = &scheduler;
    opts.max_instructions = 400'000;
    bool invariant_held = true;
    Engine::RunResult result = engine.Run(
        {[&](Ctx& ctx) {  // Writer.
           for (uint32_t i = 1; i <= 10; i++) {
             SpinLock(ctx, lock);
             WriteSeqBegin(ctx, seq);
             ctx.Store32(pair, i, SB_SITE());
             ctx.Store32(pair + 4, i + 1, SB_SITE());
             WriteSeqEnd(ctx, seq);
             SpinUnlock(ctx, lock);
           }
         },
         [&](Ctx& ctx) {  // Reader with the retry protocol.
           for (int i = 0; i < 10; i++) {
             uint32_t a;
             uint32_t b;
             uint32_t start;
             do {
               start = ReadSeqBegin(ctx, seq);
               a = ctx.Load32(pair, SB_SITE());
               b = ctx.Load32(pair + 4, SB_SITE());
             } while (ReadSeqRetry(ctx, seq, start));
             if (b != a + 1) {
               invariant_held = false;
             }
           }
         }},
        opts);
    ASSERT_TRUE(result.completed);
    ASSERT_TRUE(invariant_held) << "seqlock reader observed a torn pair";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqlockProperty, ::testing::Values(1, 2, 3, 4));

class RwLockProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RwLockProperty, WriterExclusivityUnderSchedules) {
  Engine engine(1 << 16);
  GuestAddr lock = engine.mem().StaticAlloc(4, 4);
  GuestAddr data = engine.mem().StaticAlloc(8, 8);
  RwLockInit(engine.mem(), lock);
  Memory::Snapshot snapshot = engine.mem().TakeSnapshot();

  Rng rng(GetParam());
  for (int round = 0; round < 8; round++) {
    engine.mem().Restore(snapshot);
    RandomPreemptScheduler scheduler(2);
    scheduler.SeedTrial(rng.Next());
    Engine::RunOptions opts;
    opts.scheduler = &scheduler;
    opts.max_instructions = 400'000;
    bool consistent = true;
    Engine::RunResult result = engine.Run(
        {[&](Ctx& ctx) {  // Writer keeps data[0] == data[1].
           for (uint32_t i = 1; i <= 8; i++) {
             WriteLock(ctx, lock);
             ctx.Store32(data, i, SB_SITE());
             ctx.Store32(data + 4, i, SB_SITE());
             WriteUnlock(ctx, lock);
           }
         },
         [&](Ctx& ctx) {  // Reader under the read lock must see them equal.
           for (int i = 0; i < 8; i++) {
             ReadLock(ctx, lock);
             uint32_t a = ctx.Load32(data, SB_SITE());
             uint32_t b = ctx.Load32(data + 4, SB_SITE());
             ReadUnlock(ctx, lock);
             if (a != b) {
               consistent = false;
             }
           }
         }},
        opts);
    ASSERT_TRUE(result.completed);
    ASSERT_TRUE(consistent) << "reader saw a half-applied write under rwlock";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RwLockProperty, ::testing::Values(5, 6, 7));

class RcuProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RcuProperty, GracePeriodProtectsReaders) {
  // Writer unlinks an object and waits for a grace period before poisoning it; a reader
  // that obtained the pointer inside a read-side section must never observe the poison.
  Engine engine(1 << 16);
  GuestAddr counter = engine.mem().StaticAlloc(4, 4);
  GuestAddr slot = engine.mem().StaticAlloc(4, 4);
  GuestAddr object = engine.mem().StaticAlloc(8, 8);
  RcuInit(engine.mem(), counter);
  engine.mem().WriteRaw(object, 4, 0x1234);
  engine.mem().WriteRaw(slot, 4, object);
  Memory::Snapshot snapshot = engine.mem().TakeSnapshot();

  Rng rng(GetParam());
  for (int round = 0; round < 10; round++) {
    engine.mem().Restore(snapshot);
    RandomPreemptScheduler scheduler(1 + rng.Below(3));
    scheduler.SeedTrial(rng.Next());
    Engine::RunOptions opts;
    opts.scheduler = &scheduler;
    opts.max_instructions = 400'000;
    bool saw_poison = false;
    Engine::RunResult result = engine.Run(
        {[&](Ctx& ctx) {  // Updater.
           RcuAssignPointer(ctx, slot, kGuestNull, SB_SITE());  // Unlink.
           SynchronizeRcu(ctx, counter);                        // Grace period.
           ctx.Store32(object, 0xDEAD, SB_SITE());              // Poison (free analog).
         },
         [&](Ctx& ctx) {  // Reader.
           for (int i = 0; i < 5; i++) {
             RcuReadLock(ctx, counter);
             GuestAddr p = RcuDereference(ctx, slot, SB_SITE());
             if (p != kGuestNull) {
               if (ctx.Load32(p, SB_SITE()) == 0xDEAD) {
                 saw_poison = true;
               }
             }
             RcuReadUnlock(ctx, counter);
           }
         }},
        opts);
    ASSERT_TRUE(result.completed);
    ASSERT_FALSE(saw_poison) << "reader observed a freed object despite the grace period";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RcuProperty, ::testing::Values(8, 9, 10, 11));

class RhashtableProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RhashtableProperty, SequentialChurnKeepsModelAgreement) {
  // Random insert/remove/lookup churn against a reference std::map model (sequential:
  // concurrent misbehavior is the BUG, exercised elsewhere).
  Engine engine(1 << 18);
  GuestAddr ht = RhtInit(engine.mem(), 8, /*key_offset=*/4);
  std::vector<GuestAddr> free_nodes;
  for (int i = 0; i < 24; i++) {
    free_nodes.push_back(engine.mem().StaticAlloc(16, 8));
  }
  Rng rng(GetParam());
  engine.RunSequential([&](Ctx& ctx) {
    std::map<uint32_t, GuestAddr> model;
    for (int step = 0; step < 300; step++) {
      uint32_t key = 1 + static_cast<uint32_t>(rng.Below(20));
      switch (rng.Below(3)) {
        case 0: {  // Insert if absent.
          if (model.count(key) != 0 || free_nodes.empty()) {
            break;
          }
          GuestAddr node = free_nodes.back();
          free_nodes.pop_back();
          RhtInsert(ctx, ht, node, key);
          model[key] = node;
          break;
        }
        case 1: {  // Remove.
          GuestAddr removed = RhtRemove(ctx, ht, key);
          auto it = model.find(key);
          ASSERT_EQ(removed, it == model.end() ? kGuestNull : it->second);
          if (it != model.end()) {
            free_nodes.push_back(it->second);
            model.erase(it);
          }
          break;
        }
        default: {  // Lookup.
          GuestAddr found = RhtLookup(ctx, ht, key);
          auto it = model.find(key);
          ASSERT_EQ(found, it == model.end() ? kGuestNull : it->second);
          break;
        }
      }
      ASSERT_EQ(RhtCount(ctx, ht), model.size());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, RhashtableProperty, ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace snowboard
