// Tests for the end-to-end pipeline plumbing: stage composition, budgets, baselines,
// worker-parallel execution, and determinism.
#include <gtest/gtest.h>

#include "src/snowboard/pipeline.h"

namespace snowboard {
namespace {

PipelineOptions SmallOptions(Strategy strategy) {
  PipelineOptions options;
  options.seed = 1;
  options.corpus.seed = 42;
  options.corpus.max_iterations = 40;
  options.corpus.target_size = 40;
  options.strategy = strategy;
  options.max_concurrent_tests = 40;
  options.explorer.num_trials = 8;
  options.num_workers = 2;
  return options;
}

TEST(PrepareCampaignTest, StagesProduceArtifacts) {
  PipelineOptions options = SmallOptions(Strategy::kSInsPair);
  PreparedCampaign campaign = PrepareCampaign(options);
  EXPECT_GT(campaign.corpus.size(), 10u);
  EXPECT_EQ(campaign.profiles.size(), campaign.corpus.size());
  EXPECT_GT(campaign.pmcs.size(), 50u);
  for (const SequentialProfile& profile : campaign.profiles) {
    EXPECT_TRUE(profile.ok);
  }
}

TEST(GenerateTestsTest, BudgetAndClusterCount) {
  PipelineOptions options = SmallOptions(Strategy::kSInsPair);
  PreparedCampaign campaign = PrepareCampaign(options);
  size_t clusters = 0;
  std::vector<ConcurrentTest> tests = GenerateTestsForStrategy(campaign, options, &clusters);
  EXPECT_GT(clusters, 10u);
  EXPECT_LE(tests.size(), options.max_concurrent_tests);
  for (const ConcurrentTest& test : tests) {
    EXPECT_GE(test.write_test, 0);
    EXPECT_LT(static_cast<size_t>(test.write_test), campaign.corpus.size());
  }
}

TEST(GenerateTestsTest, BaselinesSkipClustering) {
  PipelineOptions options = SmallOptions(Strategy::kRandomPairing);
  PreparedCampaign campaign = PrepareCampaign(options);
  size_t clusters = 123;
  std::vector<ConcurrentTest> tests = GenerateTestsForStrategy(campaign, options, &clusters);
  EXPECT_EQ(clusters, 0u);
  EXPECT_EQ(tests.size(), options.max_concurrent_tests);

  options.strategy = Strategy::kDuplicatePairing;
  tests = GenerateTestsForStrategy(campaign, options, &clusters);
  for (const ConcurrentTest& test : tests) {
    EXPECT_EQ(test.write_test, test.read_test);
  }
}

TEST(PipelineTest, SInsPairFindsMultipleIssues) {
  PipelineOptions options = SmallOptions(Strategy::kSInsPair);
  PipelineResult result = RunSnowboardPipeline(options);
  EXPECT_EQ(result.tests_executed, result.tests_generated);
  EXPECT_GT(result.tests_with_bug, 0u);
  EXPECT_GT(result.channel_exercised, 0u);  // Some predicted channels actually fired.
  // Even a small budget finds several distinct Table 2 issues (at minimum the ubiquitous
  // #13 plus some harmful ones).
  size_t classified = 0;
  for (const auto& [id, finding] : result.findings.first_findings()) {
    classified += id != 0 ? 1 : 0;
  }
  EXPECT_GE(classified, 4u);
  EXPECT_TRUE(result.findings.Found(13));
}

TEST(PipelineTest, SingleWorkerIsDeterministic) {
  PipelineOptions options = SmallOptions(Strategy::kSInsPair);
  options.num_workers = 1;
  options.max_concurrent_tests = 20;
  PipelineResult a = RunSnowboardPipeline(options);
  PipelineResult b = RunSnowboardPipeline(options);
  EXPECT_EQ(a.pmc_count, b.pmc_count);
  EXPECT_EQ(a.cluster_count, b.cluster_count);
  EXPECT_EQ(a.tests_with_bug, b.tests_with_bug);
  EXPECT_EQ(a.channel_exercised, b.channel_exercised);
  ASSERT_EQ(a.findings.first_findings().size(), b.findings.first_findings().size());
  auto it_b = b.findings.first_findings().begin();
  for (const auto& [id, finding] : a.findings.first_findings()) {
    EXPECT_EQ(id, it_b->first);
    EXPECT_EQ(finding.test_index, it_b->second.test_index);
    ++it_b;
  }
}

TEST(PipelineTest, WorkersFindSameIssueSet) {
  // Parallel execution changes discovery order but not the set of found issues.
  PipelineOptions options = SmallOptions(Strategy::kSIns);
  options.max_concurrent_tests = 30;
  options.num_workers = 1;
  PipelineResult serial = RunSnowboardPipeline(options);
  options.num_workers = 4;
  PipelineResult parallel = RunSnowboardPipeline(options);
  EXPECT_EQ(serial.tests_executed, parallel.tests_executed);
  std::set<int> serial_ids;
  std::set<int> parallel_ids;
  for (const auto& [id, finding] : serial.findings.first_findings()) {
    serial_ids.insert(id);
  }
  for (const auto& [id, finding] : parallel.findings.first_findings()) {
    parallel_ids.insert(id);
  }
  EXPECT_EQ(serial_ids, parallel_ids);
}

TEST(PipelineTest, RandomPairingBaselineRuns) {
  PipelineOptions options = SmallOptions(Strategy::kRandomPairing);
  PipelineResult result = RunSnowboardPipeline(options);
  EXPECT_EQ(result.cluster_count, 0u);
  EXPECT_EQ(result.tests_executed, options.max_concurrent_tests);
  EXPECT_EQ(result.channel_exercised, 0u);  // No hints, no channel accounting.
  EXPECT_TRUE(result.findings.Found(13));   // The allocator race falls out of anything.
}

TEST(PipelineTest, StageTimesPopulated) {
  PipelineOptions options = SmallOptions(Strategy::kSCh);
  options.max_concurrent_tests = 10;
  PipelineResult result = RunSnowboardPipeline(options);
  EXPECT_GT(result.corpus_seconds + result.profile_seconds + result.identify_seconds +
                result.cluster_seconds + result.execute_seconds,
            0.0);
  EXPECT_GT(result.shared_accesses, 0u);
  EXPECT_GT(result.total_pmc_pairs, result.pmc_count);
}

}  // namespace
}  // namespace snowboard
