// Property test for the sharded ordered-nested-index PMC identification (§4.2.1): on
// randomized synthetic profiles — overlapping ranges, partial-width reads, equal-value
// non-communications, failed tests, double-fetch flags — the sharded scan must agree with a
// naive O(n²) reference enumerator on the full PMC relation (keys AND test-pair
// multiplicities), and must be element-for-element identical at every shard count,
// max_pmcs truncation included.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "src/snowboard/pmc.h"
#include "src/snowboard/stats.h"
#include "src/util/rng.h"

namespace snowboard {
namespace {

// (addr, len, site, value) — ordered so it can key a std::map.
using SideTuple = std::tuple<GuestAddr, int, SiteId, uint64_t>;
// (write side, read side, df_leader) -> total test-pair multiplicity.
using PmcRelation = std::map<std::tuple<SideTuple, SideTuple, bool>, uint64_t>;

SideTuple ToTuple(const PmcSide& side) {
  return {side.addr, side.len, side.site, side.value};
}

SharedAccess RandomAccess(Rng& rng) {
  SharedAccess a;
  a.type = rng.Coin() ? AccessType::kWrite : AccessType::kRead;
  // Byte-granular starts in a small window force overlapping and straddling ranges.
  a.addr = 0x4000 + static_cast<GuestAddr>(rng.Below(40));
  a.len = static_cast<uint8_t>(1u << rng.Below(4));  // 1/2/4/8: partial-width overlaps.
  a.site = 200 + rng.Below(8);
  // Values drawn from a tiny set make equal-value non-communications common; mask to the
  // access width as a real load/store would.
  a.value = rng.Below(6) * 0x0101010101010101ull;
  if (a.len < 8) {
    a.value &= (1ull << (8 * a.len)) - 1;
  }
  return a;
}

std::vector<SequentialProfile> RandomProfiles(Rng& rng) {
  std::vector<SequentialProfile> profiles;
  int num_tests = 3 + static_cast<int>(rng.Below(4));
  for (int t = 0; t < num_tests; t++) {
    SequentialProfile profile;
    profile.test_id = t;
    // An occasional failed test: its accesses must be ignored by every implementation.
    profile.ok = rng.Below(8) != 0;
    int n = 5 + static_cast<int>(rng.Below(25));
    for (int i = 0; i < n; i++) {
      SharedAccess a = RandomAccess(rng);
      a.index = static_cast<uint32_t>(i);
      profile.accesses.push_back(a);
    }
    ComputeDoubleFetchLeaders(&profile.accesses);  // Realistic df_leader flags.
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

// The O(n²) reference: aggregate unique sides with exact test sets, then check every
// write-key × read-key combination directly — no ordered index, no scan window.
PmcRelation NaiveReference(const std::vector<SequentialProfile>& profiles) {
  struct NaiveSide {
    std::set<int> tests;
    bool df_leader = false;
  };
  std::map<SideTuple, NaiveSide> writes;
  std::map<SideTuple, NaiveSide> reads;
  for (const SequentialProfile& profile : profiles) {
    if (!profile.ok) {
      continue;
    }
    for (const SharedAccess& a : profile.accesses) {
      PmcSide side{a.addr, a.len, a.site, a.value};
      NaiveSide& record =
          (a.type == AccessType::kWrite ? writes : reads)[ToTuple(side)];
      record.tests.insert(profile.test_id);
      record.df_leader = record.df_leader || a.df_leader;
    }
  }

  PmcRelation relation;
  for (const auto& [w_key, w] : writes) {
    const auto& [w_addr, w_len, w_site, w_value] = w_key;
    for (const auto& [r_key, r] : reads) {
      const auto& [r_addr, r_len, r_site, r_value] = r_key;
      GuestAddr ov_start = std::max(w_addr, r_addr);
      GuestAddr ov_end = std::min<GuestAddr>(w_addr + w_len, r_addr + r_len);
      if (ov_start >= ov_end) {
        continue;
      }
      uint32_t ov_len = ov_end - ov_start;
      if (ProjectValue(w_addr, w_len, w_value, ov_start, ov_len) ==
          ProjectValue(r_addr, r_len, r_value, ov_start, ov_len)) {
        continue;  // Equal projected values: not a communication.
      }
      relation[{w_key, r_key, r.df_leader}] =
          static_cast<uint64_t>(w.tests.size()) * static_cast<uint64_t>(r.tests.size());
    }
  }
  return relation;
}

PmcRelation ToRelation(const std::vector<Pmc>& pmcs) {
  PmcRelation relation;
  for (const Pmc& pmc : pmcs) {
    auto [it, inserted] = relation.try_emplace(
        std::tuple{ToTuple(pmc.key.write), ToTuple(pmc.key.read), pmc.key.df_leader},
        pmc.total_pairs);
    EXPECT_TRUE(inserted) << "duplicate PMC key in identified table";
  }
  return relation;
}

class PmcShardProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PmcShardProperty, ShardedScanMatchesNaiveReference) {
  Rng rng(GetParam());
  for (int round = 0; round < 12; round++) {
    std::vector<SequentialProfile> profiles = RandomProfiles(rng);
    PmcRelation expected = NaiveReference(profiles);

    PmcIdentifyOptions sequential_options;
    sequential_options.num_workers = 1;
    std::vector<Pmc> sequential = IdentifyPmcs(profiles, sequential_options);
    ASSERT_EQ(ToRelation(sequential), expected) << "round " << round;

    for (int workers : {2, 3, 8}) {
      PmcIdentifyOptions options;
      options.num_workers = workers;
      std::vector<Pmc> sharded = IdentifyPmcs(profiles, options);
      // Byte-identity with the sequential scan, not just the same relation: order,
      // multiplicities, and sampled exemplar pairs all survive the shard merge.
      ASSERT_EQ(sharded.size(), sequential.size())
          << "round " << round << " workers " << workers;
      ASSERT_EQ(PmcTableDigest(sharded), PmcTableDigest(sequential))
          << "round " << round << " workers " << workers;
    }
  }
}

TEST_P(PmcShardProperty, TruncationPointInvariantAcrossShardCounts) {
  Rng rng(GetParam() ^ 0xbeef);
  std::vector<SequentialProfile> profiles = RandomProfiles(rng);

  PmcIdentifyOptions unbounded;
  unbounded.num_workers = 1;
  size_t full_size = IdentifyPmcs(profiles, unbounded).size();
  if (full_size < 2) {
    GTEST_SKIP() << "profile draw produced too few PMCs to truncate";
  }

  PmcIdentifyOptions capped;
  capped.max_pmcs = full_size / 2;
  capped.num_workers = 1;
  std::vector<Pmc> sequential = IdentifyPmcs(profiles, capped);
  ASSERT_EQ(sequential.size(), capped.max_pmcs);
  for (int workers : {2, 3, 8}) {
    capped.num_workers = workers;
    std::vector<Pmc> sharded = IdentifyPmcs(profiles, capped);
    ASSERT_EQ(sharded.size(), sequential.size()) << "workers " << workers;
    EXPECT_EQ(PmcTableDigest(sharded), PmcTableDigest(sequential)) << "workers " << workers;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PmcShardProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace snowboard
