// Robustness sweeps: random concurrent syscall workloads under random schedules must never
// wedge the engine — every trial ends in completion, a clean panic, or a detected hang —
// and kernel invariants (fd tables, allocator bookkeeping, lock words) must hold afterward.
#include <gtest/gtest.h>

#include "src/fuzz/generator.h"
#include "src/kernel/kalloc.h"
#include "src/kernel/task.h"
#include "src/snowboard/explorer.h"
#include "src/snowboard/pipeline.h"

namespace snowboard {
namespace {

class ConcurrentStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConcurrentStress, RandomPairsNeverWedge) {
  KernelVm vm;
  Generator generator(GetParam());
  RandomPreemptScheduler scheduler(/*period=*/4);

  for (int round = 0; round < 30; round++) {
    Program a = generator.Generate();
    Program b = generator.Generate();
    scheduler.SeedTrial(generator.rng().Next());
    vm.RestoreSnapshot();
    Engine::RunOptions opts;
    opts.scheduler = &scheduler;
    opts.max_instructions = 300'000;
    Engine::RunResult result = vm.engine().Run(
        {MakeProgramRunner(vm.globals(), a, 0), MakeProgramRunner(vm.globals(), b, 1)},
        opts);
    // The trial must terminate in a recognized state.
    ASSERT_TRUE(result.completed || result.panicked || result.hang)
        << "unrecognized trial end";
    if (result.panicked) {
      ASSERT_NE(result.panic_message.find("BUG:"), std::string::npos);
    }
  }
}

TEST_P(ConcurrentStress, CompletedTrialsLeaveLocksReleased) {
  KernelVm vm;
  const KernelGlobals& g = vm.globals();
  Generator generator(GetParam() ^ 0x77);
  RandomPreemptScheduler scheduler(/*period=*/3);

  for (int round = 0; round < 20; round++) {
    Program a = generator.Generate();
    Program b = generator.Generate();
    scheduler.SeedTrial(generator.rng().Next());
    vm.RestoreSnapshot();
    Engine::RunOptions opts;
    opts.scheduler = &scheduler;
    opts.max_instructions = 300'000;
    Engine::RunResult result = vm.engine().Run(
        {MakeProgramRunner(vm.globals(), a, 0), MakeProgramRunner(vm.globals(), b, 1)},
        opts);
    if (!result.completed) {
      continue;  // Aborted trials legitimately leave guest locks held; snapshot resets.
    }
    // Global locks must all be free after both programs ran to completion.
    Memory& mem = vm.engine().mem();
    EXPECT_EQ(mem.ReadRaw(g.kheap + kHeapLock, 4), 0u);
    EXPECT_EQ(mem.ReadRaw(g.rtnl_lock, 4), 0u);
    EXPECT_EQ(mem.ReadRaw(g.rcu_readers, 4), 0u) << "unbalanced RCU read section";
  }
}

TEST_P(ConcurrentStress, SequentialProgramsAlwaysComplete) {
  // Sequential execution (the profiling configuration) of ANY generated program must
  // complete: no single-threaded panic, hang, or budget blowup.
  KernelVm vm;
  Generator generator(GetParam() ^ 0x1234);
  for (int round = 0; round < 60; round++) {
    Program program = generator.Generate();
    vm.RestoreSnapshot();
    Engine::RunOptions opts;
    opts.max_instructions = 1'000'000;
    Engine::RunResult result =
        vm.engine().Run({MakeProgramRunner(vm.globals(), program, 0)}, opts);
    ASSERT_TRUE(result.completed) << program.Format();
    ASSERT_FALSE(result.panicked) << program.Format();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentStress, ::testing::Values(101, 202, 303, 404));

class KallocStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KallocStress, RandomAllocFreePatternsStayConsistent) {
  Engine engine(1 << 18);
  GuestAddr heap = KallocInit(engine.mem(), 64 * 1024);
  Rng rng(GetParam());

  Engine::RunOptions opts;
  opts.max_instructions = 5'000'000;
  Engine::RunResult result = engine.Run(
      {[&](Ctx& ctx) {
        std::vector<std::pair<GuestAddr, uint32_t>> live;
        for (int i = 0; i < 400; i++) {
          if (live.empty() || rng.Coin()) {
            uint32_t size = 8u << rng.Below(6);  // 8..256.
            GuestAddr block = Kmalloc(ctx, heap, size);
            if (block != kGuestNull) {
              // No overlap with any live block.
              uint32_t bytes = KallocClassBytes(KallocSizeClass(size));
              for (const auto& [other, other_size] : live) {
                uint32_t other_bytes = KallocClassBytes(KallocSizeClass(other_size));
                ASSERT_TRUE(block + bytes <= other || other + other_bytes <= block)
                    << "allocator handed out overlapping blocks";
              }
              live.emplace_back(block, size);
            }
          } else {
            size_t pick = rng.Below(live.size());
            Kfree(ctx, heap, live[pick].first, live[pick].second);
            live.erase(live.begin() + static_cast<long>(pick));
          }
        }
        for (const auto& [block, size] : live) {
          Kfree(ctx, heap, block, size);
        }
      }},
      opts);
  EXPECT_TRUE(result.completed);
  // Heap bookkeeping: allocs == frees after full teardown.
  EXPECT_EQ(engine.mem().ReadRaw(heap + kHeapTotalAllocs, 4),
            engine.mem().ReadRaw(heap + kHeapTotalFrees, 4));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KallocStress, ::testing::Values(1, 2, 3));

TEST(ThreeThreadStress, RandomTriplesNeverWedge) {
  KernelVm vm;
  Generator generator(909);
  RandomPreemptScheduler scheduler(4);
  for (int round = 0; round < 20; round++) {
    Program programs[3] = {generator.Generate(), generator.Generate(),
                           generator.Generate()};
    scheduler.SeedTrial(generator.rng().Next());
    vm.RestoreSnapshot();
    Engine::RunOptions opts;
    opts.scheduler = &scheduler;
    opts.max_instructions = 400'000;
    Engine::RunResult result = vm.engine().Run(
        {MakeProgramRunner(vm.globals(), programs[0], 0),
         MakeProgramRunner(vm.globals(), programs[1], 1),
         MakeProgramRunner(vm.globals(), programs[2], 2)},
        opts);
    ASSERT_TRUE(result.completed || result.panicked || result.hang);
  }
}

}  // namespace
}  // namespace snowboard
