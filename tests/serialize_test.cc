// Tests for artifact serialization: program/corpus/PMC round-trips, version checking,
// and malformed-input rejection.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/fuzz/generator.h"
#include "src/snowboard/pipeline.h"
#include "src/snowboard/serialize.h"

namespace snowboard {
namespace {

TEST(SerializeProgramTest, RoundTrip) {
  Program p;
  p.calls.push_back(Call{kSysSocket, {Arg::Const(2), Arg::Const(0)}});
  p.calls.push_back(Call{kSysConnect, {Arg::Result(0), Arg::Const(1)}});
  std::optional<Program> restored = DeserializeProgram(SerializeProgram(p));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, p);
}

TEST(SerializeCorpusTest, RoundTripWholeSeedSet) {
  std::vector<Program> corpus = SeedPrograms();
  std::optional<std::vector<Program>> restored = DeserializeCorpus(SerializeCorpus(corpus));
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); i++) {
    EXPECT_EQ((*restored)[i], corpus[i]) << "program " << i;
  }
}

TEST(SerializeCorpusTest, RoundTripRandomPrograms) {
  Generator generator(17);
  std::vector<Program> corpus;
  for (int i = 0; i < 50; i++) {
    corpus.push_back(generator.Generate());
  }
  std::optional<std::vector<Program>> restored = DeserializeCorpus(SerializeCorpus(corpus));
  ASSERT_TRUE(restored.has_value());
  for (size_t i = 0; i < corpus.size(); i++) {
    EXPECT_EQ((*restored)[i].Hash(), corpus[i].Hash());
  }
}

TEST(SerializeCorpusTest, RejectsBadHeader) {
  EXPECT_FALSE(DeserializeCorpus("not-a-corpus\ncall 0 c:0\nend\n").has_value());
  EXPECT_FALSE(DeserializeCorpus("").has_value());
}

TEST(SerializeCorpusTest, RejectsMalformedLines) {
  const char* header = "snowboard-corpus-v1\n";
  EXPECT_FALSE(DeserializeCorpus(std::string(header) + "bogus 1 2 3\nend\n").has_value());
  EXPECT_FALSE(DeserializeCorpus(std::string(header) + "call 9999 c:0\nend\n").has_value());
  EXPECT_FALSE(DeserializeCorpus(std::string(header) + "call 0 x:0\nend\n").has_value());
  // Truncated: calls without a terminating "end".
  EXPECT_FALSE(DeserializeCorpus(std::string(header) + "call 0 c:0\n").has_value());
}

TEST(SerializePmcsTest, RoundTrip) {
  std::vector<Pmc> pmcs;
  Pmc pmc;
  pmc.key.write = PmcSide{0x2000, 4, 0xabcdef, 0x1234};
  pmc.key.read = PmcSide{0x2002, 2, 0xfedcba, 0x56};
  pmc.key.df_leader = true;
  pmc.pairs = {{0, 1}, {2, 2}};
  pmc.total_pairs = 99;
  pmcs.push_back(pmc);

  std::optional<std::vector<Pmc>> restored = DeserializePmcs(SerializePmcs(pmcs));
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->size(), 1u);
  EXPECT_EQ((*restored)[0].key, pmc.key);
  EXPECT_EQ((*restored)[0].total_pairs, 99u);
  ASSERT_EQ((*restored)[0].pairs.size(), 2u);
  EXPECT_EQ((*restored)[0].pairs[1].write_test, 2);
}

TEST(SerializePmcsTest, RejectsBadData) {
  EXPECT_FALSE(DeserializePmcs("wrong-header\n").has_value());
  const char* header = "snowboard-pmcs-v1\n";
  // Length out of range.
  EXPECT_FALSE(
      DeserializePmcs(std::string(header) + "pmc 1 99 2 3 4 4 5 6 0 1 0\n").has_value());
  // Pair count exceeding the cap.
  EXPECT_FALSE(
      DeserializePmcs(std::string(header) + "pmc 1 4 2 3 4 4 5 6 0 1 999\n").has_value());
  // Truncated pair list.
  EXPECT_FALSE(
      DeserializePmcs(std::string(header) + "pmc 1 4 2 3 4 4 5 6 0 1 1 7\n").has_value());
}

TEST(SerializePmcsTest, EmptySetRoundTrips) {
  std::optional<std::vector<Pmc>> restored = DeserializePmcs(SerializePmcs({}));
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->empty());
}

TEST(FileHelpersTest, WriteReadRoundTrip) {
  std::string path = ::testing::TempDir() + "/sb_serialize_test.txt";
  EXPECT_TRUE(WriteStringToFile(path, "hello\nworld\n"));
  std::optional<std::string> contents = ReadFileToString(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(*contents, "hello\nworld\n");
  std::remove(path.c_str());
  EXPECT_FALSE(ReadFileToString(path).has_value());
}

TEST(SerializeE2eTest, PipelineArtifactsSurviveDisk) {
  // Identify PMCs, save corpus + PMCs to disk, reload, and check the reloaded artifacts
  // drive SelectConcurrentTests identically.
  KernelVm vm;
  std::vector<Program> corpus = {SeedPrograms()[0], SeedPrograms()[1]};
  std::vector<SequentialProfile> profiles = ProfileCorpus(vm, corpus);
  std::vector<Pmc> pmcs = IdentifyPmcs(profiles);

  std::string corpus_path = ::testing::TempDir() + "/sb_corpus.txt";
  std::string pmcs_path = ::testing::TempDir() + "/sb_pmcs.txt";
  ASSERT_TRUE(WriteStringToFile(corpus_path, SerializeCorpus(corpus)));
  ASSERT_TRUE(WriteStringToFile(pmcs_path, SerializePmcs(pmcs)));

  std::optional<std::vector<Program>> corpus2 =
      DeserializeCorpus(*ReadFileToString(corpus_path));
  std::optional<std::vector<Pmc>> pmcs2 = DeserializePmcs(*ReadFileToString(pmcs_path));
  ASSERT_TRUE(corpus2.has_value());
  ASSERT_TRUE(pmcs2.has_value());

  SelectOptions select;
  std::vector<PmcCluster> clusters_a = ClusterPmcs(pmcs, Strategy::kSInsPair);
  std::vector<PmcCluster> clusters_b = ClusterPmcs(*pmcs2, Strategy::kSInsPair);
  std::vector<ConcurrentTest> tests_a =
      SelectConcurrentTests(pmcs, clusters_a, corpus, select);
  std::vector<ConcurrentTest> tests_b =
      SelectConcurrentTests(*pmcs2, clusters_b, *corpus2, select);
  ASSERT_EQ(tests_a.size(), tests_b.size());
  for (size_t i = 0; i < tests_a.size(); i++) {
    EXPECT_EQ(tests_a[i].hint.Hash(), tests_b[i].hint.Hash());
    EXPECT_EQ(tests_a[i].write_test, tests_b[i].write_test);
  }
  std::remove(corpus_path.c_str());
  std::remove(pmcs_path.c_str());
}

}  // namespace
}  // namespace snowboard
