// Property-based tests: randomized sweeps over the algorithmic core, checking invariants
// rather than examples. Parameterized over seeds so each instantiation explores a different
// region of the input space deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <unordered_set>

#include "src/snowboard/cluster.h"
#include "src/snowboard/pmc.h"
#include "src/snowboard/profile.h"
#include "src/util/rng.h"

namespace snowboard {
namespace {

// --- ProjectValue: projection must agree with byte-level extraction. ---

class ProjectValueProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProjectValueProperty, MatchesByteExtraction) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; i++) {
    GuestAddr addr = 0x1000 + static_cast<GuestAddr>(rng.Below(64));
    uint32_t len = 1 + static_cast<uint32_t>(rng.Below(8));
    uint64_t value = rng.Next();
    if (len < 8) {
      value &= (1ull << (8 * len)) - 1;
    }
    uint32_t ov_off = static_cast<uint32_t>(rng.Below(len));
    uint32_t ov_len = 1 + static_cast<uint32_t>(rng.Below(len - ov_off));

    uint64_t projected = ProjectValue(addr, len, value, addr + ov_off, ov_len);
    // Reference: extract bytes one by one.
    uint64_t expected = 0;
    for (uint32_t b = 0; b < ov_len; b++) {
      uint64_t byte = (value >> (8 * (ov_off + b))) & 0xFF;
      expected |= byte << (8 * b);
    }
    ASSERT_EQ(projected, expected)
        << "addr=" << addr << " len=" << len << " off=" << ov_off << " ov_len=" << ov_len;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectValueProperty, ::testing::Values(1, 2, 3, 4, 5));

// --- IdentifyPmcs: agreement with a brute-force oracle on random profiles. ---

class IdentifyPmcsProperty : public ::testing::TestWithParam<uint64_t> {};

SharedAccess RandomAccess(Rng& rng) {
  SharedAccess a;
  a.type = rng.Coin() ? AccessType::kWrite : AccessType::kRead;
  a.addr = 0x2000 + static_cast<GuestAddr>(4 * rng.Below(8));  // Small space: collisions.
  a.len = rng.Coin() ? 4 : static_cast<uint8_t>(1 + rng.Below(4));
  a.site = 100 + rng.Below(6);
  a.value = rng.Below(4);
  return a;
}

TEST_P(IdentifyPmcsProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; round++) {
    std::vector<SequentialProfile> profiles;
    for (int t = 0; t < 4; t++) {
      SequentialProfile profile;
      profile.test_id = t;
      profile.ok = true;
      int n = 1 + static_cast<int>(rng.Below(10));
      for (int i = 0; i < n; i++) {
        profile.accesses.push_back(RandomAccess(rng));
      }
      profiles.push_back(std::move(profile));
    }

    // Brute force: every (write occurrence, read occurrence) pair over all tests.
    std::unordered_set<uint64_t> expected_keys;
    for (const SequentialProfile& wp : profiles) {
      for (const SharedAccess& w : wp.accesses) {
        if (w.type != AccessType::kWrite) {
          continue;
        }
        for (const SequentialProfile& rp : profiles) {
          for (const SharedAccess& r : rp.accesses) {
            if (r.type != AccessType::kRead) {
              continue;
            }
            GuestAddr ov_start = std::max(w.addr, r.addr);
            GuestAddr ov_end = std::min<GuestAddr>(w.addr + w.len, r.addr + r.len);
            if (ov_start >= ov_end) {
              continue;
            }
            uint32_t ov_len = ov_end - ov_start;
            if (ProjectValue(w.addr, w.len, w.value, ov_start, ov_len) ==
                ProjectValue(r.addr, r.len, r.value, ov_start, ov_len)) {
              continue;
            }
            PmcKey key;
            key.write = PmcSide{w.addr, w.len, w.site, w.value};
            key.read = PmcSide{r.addr, r.len, r.site, r.value};
            expected_keys.insert(key.Hash());
          }
        }
      }
    }

    std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
    std::unordered_set<uint64_t> actual_keys;
    for (const Pmc& pmc : pmcs) {
      PmcKey key = pmc.key;
      key.df_leader = false;  // Brute force above ignores the df feature.
      actual_keys.insert(key.Hash());
    }
    ASSERT_EQ(actual_keys, expected_keys) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdentifyPmcsProperty, ::testing::Values(11, 22, 33, 44));

// --- Clustering: partition and filter invariants over random PMC populations. ---

class ClusterProperty : public ::testing::TestWithParam<uint64_t> {};

std::vector<Pmc> RandomPmcs(Rng& rng, size_t count) {
  std::vector<Pmc> pmcs;
  std::unordered_set<uint64_t> seen;
  while (pmcs.size() < count) {
    Pmc pmc;
    pmc.key.write = PmcSide{static_cast<GuestAddr>(0x1000 + 4 * rng.Below(16)),
                            static_cast<uint8_t>(rng.Coin() ? 4 : 2), 10 + rng.Below(8),
                            rng.Below(5)};
    pmc.key.read = PmcSide{static_cast<GuestAddr>(0x1000 + 4 * rng.Below(16)),
                           static_cast<uint8_t>(rng.Coin() ? 4 : 2), 30 + rng.Below(8),
                           rng.Below(5)};
    pmc.key.df_leader = rng.Chance(1, 4);
    if (!seen.insert(pmc.key.Hash()).second) {
      continue;  // Keep keys unique, as IdentifyPmcs guarantees.
    }
    pmc.pairs.push_back(PmcTestPair{0, 1});
    pmc.total_pairs = 1;
    pmcs.push_back(std::move(pmc));
  }
  return pmcs;
}

TEST_P(ClusterProperty, UnfilteredStrategiesPartition) {
  Rng rng(GetParam());
  std::vector<Pmc> pmcs = RandomPmcs(rng, 200);
  for (Strategy strategy : {Strategy::kSFull, Strategy::kSCh, Strategy::kSInsPair,
                            Strategy::kSMem}) {
    std::vector<PmcCluster> clusters = ClusterPmcs(pmcs, strategy);
    size_t members = 0;
    std::unordered_set<uint32_t> seen_members;
    for (const PmcCluster& cluster : clusters) {
      ASSERT_FALSE(cluster.members.empty());
      members += cluster.members.size();
      for (uint32_t m : cluster.members) {
        ASSERT_TRUE(seen_members.insert(m).second)
            << StrategyName(strategy) << ": PMC in two clusters";
        // Every member of a cluster shares the clustering key.
        ASSERT_EQ(StrategyKey(strategy, pmcs[m].key, 0), cluster.key);
      }
    }
    ASSERT_EQ(members, pmcs.size()) << StrategyName(strategy) << " must partition";
  }
}

TEST_P(ClusterProperty, SInsIsDualMembership) {
  Rng rng(GetParam() ^ 0x5a5a);
  std::vector<Pmc> pmcs = RandomPmcs(rng, 150);
  std::vector<PmcCluster> clusters = ClusterPmcs(pmcs, Strategy::kSIns);
  std::map<uint32_t, int> membership;
  for (const PmcCluster& cluster : clusters) {
    for (uint32_t m : cluster.members) {
      membership[m]++;
    }
  }
  for (const auto& [member, count] : membership) {
    ASSERT_EQ(count, 2) << "S-INS puts each PMC in exactly two clusters";
  }
  ASSERT_EQ(membership.size(), pmcs.size());
}

TEST_P(ClusterProperty, FiltersAreSubsetsOfSCh) {
  Rng rng(GetParam() ^ 0xfefe);
  std::vector<Pmc> pmcs = RandomPmcs(rng, 200);
  size_t ch_members = 0;
  for (const PmcCluster& c : ClusterPmcs(pmcs, Strategy::kSCh)) {
    ch_members += c.members.size();
  }
  for (Strategy strategy : {Strategy::kSChNull, Strategy::kSChUnaligned,
                            Strategy::kSChDouble}) {
    size_t filtered_members = 0;
    for (const PmcCluster& cluster : ClusterPmcs(pmcs, strategy)) {
      for (uint32_t m : cluster.members) {
        filtered_members++;
        ASSERT_TRUE(StrategyFilter(strategy, pmcs[m].key));
      }
    }
    ASSERT_LE(filtered_members, ch_members);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterProperty, ::testing::Values(7, 8, 9));

// --- Double-fetch leader: brute-force agreement. ---

class DoubleFetchProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DoubleFetchProperty, LeaderImpliesValidPair) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; round++) {
    std::vector<SharedAccess> accesses;
    int n = 3 + static_cast<int>(rng.Below(15));
    for (int i = 0; i < n; i++) {
      accesses.push_back(RandomAccess(rng));
    }
    std::vector<SharedAccess> marked = accesses;
    ComputeDoubleFetchLeaders(&marked);
    for (size_t i = 0; i < marked.size(); i++) {
      if (!marked[i].df_leader) {
        continue;
      }
      // A leader must be a read with a later same-range same-value read by a different
      // site, with no overlapping write in between.
      ASSERT_EQ(marked[i].type, AccessType::kRead);
      bool valid = false;
      for (size_t j = i + 1; j < marked.size() && !valid; j++) {
        const SharedAccess& later = marked[j];
        if (later.type == AccessType::kWrite &&
            later.addr < marked[i].addr + marked[i].len &&
            marked[i].addr < later.addr + later.len) {
          break;  // Intervening write: nothing after j can justify the leader.
        }
        if (later.type == AccessType::kRead && later.addr == marked[i].addr &&
            later.len == marked[i].len && later.site != marked[i].site &&
            later.value == marked[i].value) {
          valid = true;
        }
      }
      ASSERT_TRUE(valid) << "df_leader without a justifying second fetch";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DoubleFetchProperty, ::testing::Values(3, 6, 9));

}  // namespace
}  // namespace snowboard
