// Tests for deterministic bug reproduction (§6): schedule recording, the compact string
// form, replay fidelity, and end-to-end capsule replay of the Figure 1 panic.
#include <gtest/gtest.h>

#include "src/fuzz/generator.h"
#include "src/snowboard/pipeline.h"
#include "src/snowboard/replay.h"

namespace snowboard {
namespace {

TEST(RecordedScheduleTest, StringRoundTrip) {
  RecordedSchedule schedule;
  schedule.switch_after = {false, false, true, false, true};
  EXPECT_EQ(schedule.ToString(), "..S.S");
  EXPECT_EQ(RecordedSchedule::FromString("..S.S"), schedule);
  EXPECT_EQ(RecordedSchedule::FromString(""), RecordedSchedule{});
}

TEST(RecordingSchedulerTest, RecordsInnerDecisions) {
  RandomPreemptScheduler inner(/*period=*/2);
  RecordingScheduler recorder(&inner);
  recorder.SeedTrial(3);
  Access access;
  access.type = AccessType::kRead;
  access.addr = 0x2000;
  access.len = 4;
  int switches = 0;
  for (int i = 0; i < 100; i++) {
    switches += recorder.AfterAccess(0, access) ? 1 : 0;
  }
  ASSERT_EQ(recorder.schedule().switch_after.size(), 100u);
  int recorded = 0;
  for (bool decision : recorder.schedule().switch_after) {
    recorded += decision ? 1 : 0;
  }
  EXPECT_EQ(recorded, switches);
  EXPECT_GT(switches, 10);  // Period 2: roughly half.
}

TEST(ReplaySchedulerTest, ReappliesDecisionsThenStops) {
  ReplayScheduler replayer(RecordedSchedule::FromString("S.S"));
  replayer.SeedTrial(0);
  Access access;
  EXPECT_TRUE(replayer.AfterAccess(0, access));
  EXPECT_FALSE(replayer.AfterAccess(1, access));
  EXPECT_TRUE(replayer.AfterAccess(0, access));
  EXPECT_FALSE(replayer.AfterAccess(0, access));  // Past the recording: never switch.
  EXPECT_FALSE(replayer.AfterAccess(1, access));
}

class ReplayE2eTest : public ::testing::Test {
 protected:
  // Builds the Figure 1 concurrent test with its registration-PMC hint.
  static ConcurrentTest BuildL2tpTest(KernelVm& vm) {
    std::vector<Program> seeds = SeedPrograms();
    std::vector<Program> corpus = {seeds[0], seeds[1]};
    std::vector<SequentialProfile> profiles = ProfileCorpus(vm, corpus);
    std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
    ConcurrentTest test;
    test.writer = corpus[0];
    test.reader = corpus[1];
    GuestAddr list_head = vm.globals().l2tp + 4;
    for (const Pmc& pmc : pmcs) {
      if (pmc.key.write.addr == list_head && pmc.key.read.addr == list_head &&
          pmc.key.write.value != 0) {
        test.hint = pmc.key;
        break;
      }
    }
    return test;
  }
};

TEST_F(ReplayE2eTest, SeedReplayIsExact) {
  KernelVm vm;
  ConcurrentTest test = BuildL2tpTest(vm);
  BugCapsule first;
  Engine::RunResult a = ReproduceTrial(vm, test, /*seed=*/2021, /*trial=*/5, &first);
  BugCapsule second;
  Engine::RunResult b = ReproduceTrial(vm, test, /*seed=*/2021, /*trial=*/5, &second);
  EXPECT_EQ(a.panicked, b.panicked);
  EXPECT_EQ(a.panic_message, b.panic_message);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(first.schedule, second.schedule);
}

TEST_F(ReplayE2eTest, CapsuleReplaysThePanic) {
  KernelVm vm;
  ConcurrentTest test = BuildL2tpTest(vm);
  // Find a panicking trial with the per-trial seed sweep (Algorithm 2's reseeding).
  BugCapsule capsule;
  bool captured = false;
  for (int trial = 0; trial < 64 && !captured; trial++) {
    Engine::RunResult result = ReproduceTrial(vm, test, 2021, trial, &capsule);
    captured = result.panicked;
  }
  ASSERT_TRUE(captured) << "no panicking trial within the sweep";
  ASSERT_FALSE(capsule.panic_message.empty());

  // The capsule replays the identical panic — through the RECORDED schedule, independent of
  // the PMC scheduler's internals.
  EXPECT_TRUE(ReplayCapsule(vm, capsule));

  // And the string round-trip preserves it (a bug report attachment).
  BugCapsule from_text = capsule;
  from_text.schedule = RecordedSchedule::FromString(capsule.schedule.ToString());
  EXPECT_TRUE(ReplayCapsule(vm, from_text));
}

TEST_F(ReplayE2eTest, CorruptedScheduleDoesNotReproduce) {
  KernelVm vm;
  ConcurrentTest test = BuildL2tpTest(vm);
  BugCapsule capsule;
  bool captured = false;
  for (int trial = 0; trial < 64 && !captured; trial++) {
    captured = ReproduceTrial(vm, test, 2021, trial, &capsule).panicked;
  }
  ASSERT_TRUE(captured);
  // Remove every switch: the serialized no-preemption run cannot hit the window.
  BugCapsule broken = capsule;
  broken.schedule = RecordedSchedule::FromString(
      std::string(capsule.schedule.switch_after.size(), '.'));
  EXPECT_FALSE(ReplayCapsule(vm, broken));
}

}  // namespace
}  // namespace snowboard
