// Tests for deterministic bug reproduction (§6): schedule recording, the compact string
// form, replay fidelity, and end-to-end capsule replay of the Figure 1 panic.
#include <gtest/gtest.h>

#include "src/fuzz/generator.h"
#include "src/snowboard/minimize.h"
#include "src/snowboard/pipeline.h"
#include "src/snowboard/replay.h"
#include "src/snowboard/serialize.h"

namespace snowboard {
namespace {

TEST(RecordedScheduleTest, StringRoundTrip) {
  RecordedSchedule schedule;
  schedule.switch_after = {false, false, true, false, true};
  EXPECT_EQ(schedule.ToString(), "..S.S");
  EXPECT_EQ(RecordedSchedule::FromString("..S.S"), schedule);
  EXPECT_EQ(RecordedSchedule::FromString(""), RecordedSchedule{});
}

TEST(RecordingSchedulerTest, RecordsInnerDecisions) {
  RandomPreemptScheduler inner(/*period=*/2);
  RecordingScheduler recorder(&inner);
  recorder.SeedTrial(3);
  Access access;
  access.type = AccessType::kRead;
  access.addr = 0x2000;
  access.len = 4;
  int switches = 0;
  for (int i = 0; i < 100; i++) {
    switches += recorder.AfterAccess(0, access) ? 1 : 0;
  }
  ASSERT_EQ(recorder.schedule().switch_after.size(), 100u);
  int recorded = 0;
  for (bool decision : recorder.schedule().switch_after) {
    recorded += decision ? 1 : 0;
  }
  EXPECT_EQ(recorded, switches);
  EXPECT_GT(switches, 10);  // Period 2: roughly half.
}

TEST(RecordedScheduleTest, FromStringRejectsJunk) {
  // Any character outside the '.'/'S' alphabet is adversarial input, not a recording.
  EXPECT_FALSE(RecordedSchedule::FromString("..X.S").has_value());
  EXPECT_FALSE(RecordedSchedule::FromString("..s").has_value());  // Lowercase.
  EXPECT_FALSE(RecordedSchedule::FromString(". S").has_value());
  EXPECT_FALSE(RecordedSchedule::FromString("..S\n").has_value());
  EXPECT_FALSE(RecordedSchedule::FromString(std::string(1, '\0')).has_value());
  // Oversized: past the instruction-budget bound, reject instead of allocating.
  EXPECT_FALSE(
      RecordedSchedule::FromString(std::string(kMaxScheduleLength + 1, '.')).has_value());
  ASSERT_TRUE(
      RecordedSchedule::FromString(std::string(kMaxScheduleLength, '.')).has_value());
}

TEST(ReplaySchedulerTest, ReappliesDecisionsThenStops) {
  ReplayScheduler replayer(*RecordedSchedule::FromString("S.S"));
  replayer.SeedTrial(0);
  Access access;
  EXPECT_TRUE(replayer.AfterAccess(0, access));
  EXPECT_FALSE(replayer.AfterAccess(1, access));
  EXPECT_TRUE(replayer.AfterAccess(0, access));
  EXPECT_FALSE(replayer.AfterAccess(0, access));  // Past the recording: never switch.
  EXPECT_FALSE(replayer.AfterAccess(1, access));
}

class ReplayE2eTest : public ::testing::Test {
 protected:
  // Builds the Figure 1 concurrent test with its registration-PMC hint.
  static ConcurrentTest BuildL2tpTest(KernelVm& vm) {
    std::vector<Program> seeds = SeedPrograms();
    std::vector<Program> corpus = {seeds[0], seeds[1]};
    std::vector<SequentialProfile> profiles = ProfileCorpus(vm, corpus);
    std::vector<Pmc> pmcs = IdentifyPmcs(profiles);
    ConcurrentTest test;
    test.writer = corpus[0];
    test.reader = corpus[1];
    GuestAddr list_head = vm.globals().l2tp + 4;
    for (const Pmc& pmc : pmcs) {
      if (pmc.key.write.addr == list_head && pmc.key.read.addr == list_head &&
          pmc.key.write.value != 0) {
        test.hint = pmc.key;
        break;
      }
    }
    return test;
  }
};

TEST_F(ReplayE2eTest, SeedReplayIsExact) {
  KernelVm vm;
  ConcurrentTest test = BuildL2tpTest(vm);
  BugCapsule first;
  Engine::RunResult a = ReproduceTrial(vm, test, /*seed=*/2021, /*trial=*/5, &first);
  BugCapsule second;
  Engine::RunResult b = ReproduceTrial(vm, test, /*seed=*/2021, /*trial=*/5, &second);
  EXPECT_EQ(a.panicked, b.panicked);
  EXPECT_EQ(a.panic_message, b.panic_message);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(first.schedule, second.schedule);
}

TEST_F(ReplayE2eTest, CapsuleReplaysThePanic) {
  KernelVm vm;
  ConcurrentTest test = BuildL2tpTest(vm);
  // Find a panicking trial with the per-trial seed sweep (Algorithm 2's reseeding).
  BugCapsule capsule;
  bool captured = false;
  for (int trial = 0; trial < 64 && !captured; trial++) {
    Engine::RunResult result = ReproduceTrial(vm, test, 2021, trial, &capsule);
    captured = result.panicked;
  }
  ASSERT_TRUE(captured) << "no panicking trial within the sweep";
  ASSERT_FALSE(capsule.panic_message.empty());

  // The capsule replays the identical panic — through the RECORDED schedule, independent of
  // the PMC scheduler's internals.
  EXPECT_TRUE(ReplayCapsule(vm, capsule));

  // And the string round-trip preserves it (a bug report attachment).
  BugCapsule from_text = capsule;
  from_text.schedule = *RecordedSchedule::FromString(capsule.schedule.ToString());
  EXPECT_TRUE(ReplayCapsule(vm, from_text));
}

// The shippable-reproducer property: every capture the explorer records — after
// delta-debugging minimization — renders to a token whose textual round trip is the
// identity and whose replay produces the exact captured detector fingerprint.
TEST_F(ReplayE2eTest, TokenRoundTripReproducesFingerprint) {
  KernelVm vm;
  ConcurrentTest test = BuildL2tpTest(vm);
  ExplorerOptions options;
  options.num_trials = 24;
  ExploreOutcome outcome = ExploreConcurrentTest(vm, test, /*matcher=*/nullptr, options);
  ASSERT_FALSE(outcome.captures.empty()) << "no finding captured within the trial budget";
  for (const TrialCapture& capture : outcome.captures) {
    EXPECT_LE(capture.min_switches, capture.orig_switches);
    ReplayToken token;
    token.issue_id = 1;
    token.write_test = test.write_test;
    token.read_test = test.read_test;
    token.trial_seed = options.seed + static_cast<uint64_t>(capture.trial);
    token.max_instructions = options.max_instructions;
    token.fingerprint = capture.fingerprint;
    token.schedule = *RecordedSchedule::FromString(capture.schedule);
    token.hint = test.hint;
    token.writer = test.writer;
    token.reader = test.reader;

    std::string text = FormatReplayToken(token);
    std::optional<ReplayToken> parsed = ParseReplayToken(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(*parsed, token);

    ReplayVerdict verdict = ReplayTokenTrial(vm, *parsed);
    EXPECT_TRUE(verdict.fingerprint_match)
        << "capture kind " << static_cast<int>(capture.kind) << " trial " << capture.trial
        << ": expected " << capture.fingerprint << ", observed " << verdict.fingerprint;
  }
}

// Minimization must never return a schedule the probe did not accept: a probe that always
// fails leaves the original recording untouched, and a probe that accepts everything
// shrinks to the empty schedule.
TEST(MinimizeScheduleTest, ProbeContract) {
  RecordedSchedule schedule = *RecordedSchedule::FromString("..S.S..S.S..S...S..S");
  MinimizeOptions options;
  MinimizeStats stats;

  RecordedSchedule untouched = MinimizeSchedule(
      schedule, [](const RecordedSchedule&) { return false; }, options, &stats);
  EXPECT_EQ(untouched, schedule);
  EXPECT_FALSE(stats.reproduced);

  RecordedSchedule empty = MinimizeSchedule(
      schedule, [](const RecordedSchedule&) { return true; }, options, &stats);
  EXPECT_TRUE(stats.reproduced);
  EXPECT_EQ(empty.SwitchCount(), 0u);
  EXPECT_EQ(stats.min_switches, 0u);
  EXPECT_EQ(stats.orig_switches, 7u);
}

// ddmin against a ground-truth predicate: the finding "reproduces" iff switches survive at
// two specific positions; the minimizer must isolate exactly that 2-preemption core.
TEST(MinimizeScheduleTest, ShrinksToTheTwoLoadBearingSwitches) {
  RecordedSchedule schedule;
  schedule.switch_after.assign(64, false);
  for (size_t i = 3; i < 64; i += 7) {
    schedule.switch_after[i] = true;  // 9 switches; only two matter.
  }
  auto probe = [](const RecordedSchedule& candidate) {
    auto has = [&](size_t i) {
      return i < candidate.switch_after.size() && candidate.switch_after[i];
    };
    return has(10) && has(31);
  };
  MinimizeOptions options;
  options.max_probes = 64;
  MinimizeStats stats;
  RecordedSchedule minimized = MinimizeSchedule(schedule, probe, options, &stats);
  EXPECT_TRUE(stats.reproduced);
  EXPECT_EQ(minimized.SwitchCount(), 2u);
  EXPECT_EQ(stats.min_switches, 2u);
  EXPECT_EQ(minimized.switch_after.size(), 32u);  // Truncated right after position 31.
  EXPECT_TRUE(minimized.switch_after[10]);
  EXPECT_TRUE(minimized.switch_after[31]);
}

TEST_F(ReplayE2eTest, CorruptedScheduleDoesNotReproduce) {
  KernelVm vm;
  ConcurrentTest test = BuildL2tpTest(vm);
  BugCapsule capsule;
  bool captured = false;
  for (int trial = 0; trial < 64 && !captured; trial++) {
    captured = ReproduceTrial(vm, test, 2021, trial, &capsule).panicked;
  }
  ASSERT_TRUE(captured);
  // Remove every switch: the serialized no-preemption run cannot hit the window.
  BugCapsule broken = capsule;
  broken.schedule = *RecordedSchedule::FromString(
      std::string(capsule.schedule.switch_after.size(), '.'));
  EXPECT_FALSE(ReplayCapsule(vm, broken));
}

}  // namespace
}  // namespace snowboard
