// Tests for guest synchronization primitives: mutual exclusion under adversarial
// scheduling, lock events, seqlock and RCU semantics.
#include <gtest/gtest.h>

#include "src/sim/engine.h"
#include "src/sim/site.h"
#include "src/sim/sync.h"

namespace snowboard {
namespace {

// Preempts after every access — the harshest legal schedule.
class AlternatingScheduler : public Scheduler {
 public:
  bool AfterAccess(VcpuId vcpu, const Access& access) override { return true; }
};

TEST(SpinLockTest, MutualExclusionUnderPreemption) {
  Engine engine(1 << 16);
  GuestAddr lock = engine.mem().StaticAlloc(4, 4);
  GuestAddr counter = engine.mem().StaticAlloc(4, 4);
  SpinLockInit(engine.mem(), lock);

  AlternatingScheduler scheduler;
  Engine::RunOptions opts;
  opts.scheduler = &scheduler;
  opts.max_instructions = 500'000;

  auto incrementer = [&](Ctx& ctx) {
    for (int i = 0; i < 20; i++) {
      SpinLock(ctx, lock);
      uint32_t v = ctx.Load32(counter, SB_SITE());
      ctx.Store32(counter, v + 1, SB_SITE());
      SpinUnlock(ctx, lock);
    }
  };
  Engine::RunResult result = engine.Run({incrementer, incrementer}, opts);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(engine.mem().ReadRaw(counter, 4), 40u);
}

TEST(SpinLockTest, TryLockFailsWhenHeld) {
  Engine engine(1 << 16);
  GuestAddr lock = engine.mem().StaticAlloc(4, 4);
  SpinLockInit(engine.mem(), lock);
  engine.RunSequential([&](Ctx& ctx) {
    EXPECT_TRUE(SpinTryLock(ctx, lock));
    EXPECT_FALSE(SpinTryLock(ctx, lock));
    SpinUnlock(ctx, lock);
    EXPECT_TRUE(SpinTryLock(ctx, lock));
  });
}

TEST(SpinLockTest, EmitsLockEvents) {
  Engine engine(1 << 16);
  GuestAddr lock = engine.mem().StaticAlloc(4, 4);
  SpinLockInit(engine.mem(), lock);
  Engine::RunResult result = engine.RunSequential([&](Ctx& ctx) {
    SpinLock(ctx, lock);
    SpinUnlock(ctx, lock);
  });
  int acquires = 0;
  int releases = 0;
  for (const Event& e : result.trace) {
    acquires += e.kind == EventKind::kLockAcquire ? 1 : 0;
    releases += e.kind == EventKind::kLockRelease ? 1 : 0;
  }
  EXPECT_EQ(acquires, 1);
  EXPECT_EQ(releases, 1);
}

TEST(SpinLockTest, DeadlockDetectedAsHang) {
  Engine engine(1 << 16);
  GuestAddr lock_a = engine.mem().StaticAlloc(4, 4);
  GuestAddr lock_b = engine.mem().StaticAlloc(4, 4);
  SpinLockInit(engine.mem(), lock_a);
  SpinLockInit(engine.mem(), lock_b);

  AlternatingScheduler scheduler;
  Engine::RunOptions opts;
  opts.scheduler = &scheduler;
  opts.max_instructions = 200'000;
  Engine::RunResult result = engine.Run(
      {[&](Ctx& ctx) {
         SpinLock(ctx, lock_a);
         SpinLock(ctx, lock_b);  // AB.
         SpinUnlock(ctx, lock_b);
         SpinUnlock(ctx, lock_a);
       },
       [&](Ctx& ctx) {
         SpinLock(ctx, lock_b);
         SpinLock(ctx, lock_a);  // BA: classic ABBA deadlock.
         SpinUnlock(ctx, lock_a);
         SpinUnlock(ctx, lock_b);
       }},
      opts);
  // With the alternating scheduler the interleaving deadlocks; the engine must end the
  // trial as a hang rather than wedge the process.
  EXPECT_TRUE(result.hang);
}

TEST(RwLockTest, WritersExcludeEachOther) {
  Engine engine(1 << 16);
  GuestAddr lock = engine.mem().StaticAlloc(4, 4);
  GuestAddr cell = engine.mem().StaticAlloc(4, 4);
  RwLockInit(engine.mem(), lock);
  AlternatingScheduler scheduler;
  Engine::RunOptions opts;
  opts.scheduler = &scheduler;
  opts.max_instructions = 500'000;
  auto writer = [&](Ctx& ctx) {
    for (int i = 0; i < 10; i++) {
      WriteLock(ctx, lock);
      uint32_t v = ctx.Load32(cell, SB_SITE());
      ctx.Store32(cell, v + 1, SB_SITE());
      WriteUnlock(ctx, lock);
    }
  };
  Engine::RunResult result = engine.Run({writer, writer}, opts);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(engine.mem().ReadRaw(cell, 4), 20u);
}

TEST(RwLockTest, ReadersShareButBlockWriters) {
  Engine engine(1 << 16);
  GuestAddr lock = engine.mem().StaticAlloc(4, 4);
  RwLockInit(engine.mem(), lock);
  engine.RunSequential([&](Ctx& ctx) {
    ReadLock(ctx, lock);
    ReadLock(ctx, lock);  // Second reader shares.
    EXPECT_EQ(ctx.Load32(lock, SB_SITE()), 2u);
    ReadUnlock(ctx, lock);
    ReadUnlock(ctx, lock);
    WriteLock(ctx, lock);
    WriteUnlock(ctx, lock);
  });
}

TEST(SeqLockTest, ReaderRetriesAcrossWriterWindow) {
  Engine engine(1 << 16);
  GuestAddr seq = engine.mem().StaticAlloc(4, 4);
  SeqCountInit(engine.mem(), seq);
  engine.RunSequential([&](Ctx& ctx) {
    uint32_t start = ReadSeqBegin(ctx, seq);
    EXPECT_FALSE(ReadSeqRetry(ctx, seq, start));
    WriteSeqBegin(ctx, seq);
    WriteSeqEnd(ctx, seq);
    EXPECT_TRUE(ReadSeqRetry(ctx, seq, start));  // Sequence moved: retry needed.
  });
}

TEST(RcuTest, ReadSideCountsAndSynchronizeWaits) {
  Engine engine(1 << 16);
  GuestAddr counter = engine.mem().StaticAlloc(4, 4);
  RcuInit(engine.mem(), counter);
  engine.RunSequential([&](Ctx& ctx) {
    RcuReadLock(ctx, counter);
    EXPECT_EQ(engine.mem().ReadRaw(counter, 4), 1u);
    RcuReadUnlock(ctx, counter);
    EXPECT_EQ(engine.mem().ReadRaw(counter, 4), 0u);
    SynchronizeRcu(ctx, counter);  // No readers: returns immediately.
  });
}

TEST(RcuTest, AssignAndDereferenceAreMarked) {
  Engine engine(1 << 16);
  GuestAddr slot = engine.mem().StaticAlloc(4, 4);
  Engine::RunResult result = engine.RunSequential([&](Ctx& ctx) {
    RcuAssignPointer(ctx, slot, 0x2000, SB_SITE());
    EXPECT_EQ(RcuDereference(ctx, slot, SB_SITE()), 0x2000u);
  });
  for (const Event& e : result.trace) {
    if (e.kind == EventKind::kAccess) {
      EXPECT_TRUE(e.access.marked_atomic);
    }
  }
}

TEST(SyncTest, ReadWriteOnceAreMarked) {
  Engine engine(1 << 16);
  GuestAddr cell = engine.mem().StaticAlloc(4, 4);
  Engine::RunResult result = engine.RunSequential([&](Ctx& ctx) {
    WriteOnce32(ctx, cell, 9, SB_SITE());
    EXPECT_EQ(ReadOnce32(ctx, cell, SB_SITE()), 9u);
  });
  for (const Event& e : result.trace) {
    if (e.kind == EventKind::kAccess) {
      EXPECT_TRUE(e.access.marked_atomic);
    }
  }
}

}  // namespace
}  // namespace snowboard
