// Regression tests for the sequential-profile cache: a multi-strategy campaign (Table 3
// profiles one corpus under every strategy) must pay for exactly corpus_size VM profiling
// runs in total, and cache hits must return profiles equal to a fresh VM run.
#include <gtest/gtest.h>

#include "src/snowboard/pipeline.h"
#include "src/snowboard/stats.h"

namespace snowboard {
namespace {

PipelineOptions CacheOptions(Strategy strategy, ProfileCache* cache, int num_workers) {
  PipelineOptions options;
  options.seed = 5;
  options.corpus.seed = 42;
  options.corpus.max_iterations = 30;
  options.corpus.target_size = 24;
  options.strategy = strategy;
  options.num_workers = num_workers;
  options.profile_cache = cache;
  return options;
}

void ExpectSameProfiles(const std::vector<SequentialProfile>& a,
                        const std::vector<SequentialProfile>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i++) {
    EXPECT_EQ(a[i].test_id, b[i].test_id) << "profile " << i;
    EXPECT_EQ(a[i].ok, b[i].ok) << "profile " << i;
    EXPECT_EQ(a[i].program, b[i].program) << "profile " << i;
    EXPECT_EQ(a[i].accesses, b[i].accesses) << "profile " << i;
  }
}

TEST(ProfileCacheTest, LookupRewritesTestIdAndMissesOnUnknownProgram) {
  KernelVm vm;
  ProfileCache cache;
  Program program;
  program.calls.push_back(Call{/*nr=*/0, {}});

  SequentialProfile out;
  EXPECT_FALSE(cache.Lookup(program, 0, &out));

  SequentialProfile profile = ProfileTest(vm, program, /*test_id=*/3);
  cache.Insert(profile);
  EXPECT_EQ(cache.size(), 1u);

  ASSERT_TRUE(cache.Lookup(program, /*test_id=*/9, &out));
  EXPECT_EQ(out.test_id, 9);  // Position-independent content, index rewritten.
  EXPECT_EQ(out.ok, profile.ok);
  EXPECT_EQ(out.accesses, profile.accesses);

  Program other = program;
  other.calls.push_back(Call{/*nr=*/1, {}});
  EXPECT_FALSE(cache.Lookup(other, 0, &out));
}

TEST(ProfileCacheTest, TwoStrategiesProfileTheCorpusExactlyOnce) {
  ResetPipelineCounters();
  ProfileCache cache;

  // Strategy 1 populates the cache: every program is a miss and runs on a VM.
  PreparedCampaign first =
      PrepareCampaign(CacheOptions(Strategy::kSInsPair, &cache, /*num_workers=*/1));
  ASSERT_GT(first.corpus.size(), 10u);
  EXPECT_EQ(GlobalPipelineCounters().vm_profile_runs, first.corpus.size());
  EXPECT_EQ(GlobalPipelineCounters().profile_cache_misses, first.corpus.size());
  EXPECT_EQ(GlobalPipelineCounters().profile_cache_hits, 0u);
  EXPECT_EQ(cache.size(), first.corpus.size());

  // Strategy 2 over the same seed reproduces the same corpus: all hits, zero VM runs.
  PreparedCampaign second =
      PrepareCampaign(CacheOptions(Strategy::kSCh, &cache, /*num_workers=*/1));
  ASSERT_EQ(second.corpus.size(), first.corpus.size());
  EXPECT_EQ(GlobalPipelineCounters().vm_profile_runs, first.corpus.size());
  EXPECT_EQ(GlobalPipelineCounters().profile_cache_hits, second.corpus.size());

  // Cache hits are equal to the profiles a fresh VM run produces.
  ExpectSameProfiles(second.profiles, first.profiles);
  ProfileOptions fresh_options;  // No cache: always executes.
  std::vector<SequentialProfile> fresh =
      ProfileCorpusParallel(second.corpus, fresh_options);
  ExpectSameProfiles(second.profiles, fresh);
}

TEST(ProfileCacheTest, CacheIsWorkerCountInvariant) {
  ResetPipelineCounters();
  ProfileCache cache;
  PreparedCampaign serial =
      PrepareCampaign(CacheOptions(Strategy::kSInsPair, &cache, /*num_workers=*/1));
  // A sharded second run hits the cache from all workers and returns identical profiles.
  PreparedCampaign parallel =
      PrepareCampaign(CacheOptions(Strategy::kSInsPair, &cache, /*num_workers=*/4));
  EXPECT_EQ(GlobalPipelineCounters().vm_profile_runs, serial.corpus.size());
  ExpectSameProfiles(parallel.profiles, serial.profiles);
}

}  // namespace
}  // namespace snowboard
