// Tests for campaign statistics (cluster-size distributions).
#include <gtest/gtest.h>

#include "src/snowboard/stats.h"

namespace snowboard {
namespace {

std::vector<PmcCluster> ClustersOfSizes(std::vector<size_t> sizes) {
  std::vector<PmcCluster> clusters;
  uint32_t next = 0;
  for (size_t i = 0; i < sizes.size(); i++) {
    PmcCluster cluster;
    cluster.key = i;
    for (size_t m = 0; m < sizes[i]; m++) {
      cluster.members.push_back(next++);
    }
    clusters.push_back(std::move(cluster));
  }
  return clusters;
}

TEST(StatsTest, EmptyDistribution) {
  DistributionSummary summary = SummarizeClusterSizes({});
  EXPECT_EQ(summary.count, 0u);
  EXPECT_EQ(summary.gini, 0.0);
  EXPECT_EQ(SingletonFraction({}), 0.0);
  EXPECT_TRUE(ClusterSizeHistogram({}).empty());
}

TEST(StatsTest, UniformSizesHaveZeroGini) {
  DistributionSummary summary = SummarizeClusterSizes(ClustersOfSizes({4, 4, 4, 4}));
  EXPECT_EQ(summary.count, 4u);
  EXPECT_EQ(summary.min, 4u);
  EXPECT_EQ(summary.max, 4u);
  EXPECT_DOUBLE_EQ(summary.mean, 4.0);
  EXPECT_NEAR(summary.gini, 0.0, 1e-9);
}

TEST(StatsTest, SkewedSizesHaveHighGini) {
  DistributionSummary uniform = SummarizeClusterSizes(ClustersOfSizes({5, 5, 5, 5}));
  DistributionSummary skewed = SummarizeClusterSizes(ClustersOfSizes({1, 1, 1, 97}));
  EXPECT_GT(skewed.gini, uniform.gini + 0.5);
  EXPECT_EQ(skewed.max, 97u);
  EXPECT_EQ(skewed.median, 1u);
}

TEST(StatsTest, SummaryOrderStatistics) {
  DistributionSummary summary =
      SummarizeClusterSizes(ClustersOfSizes({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
  EXPECT_EQ(summary.count, 10u);
  EXPECT_EQ(summary.min, 1u);
  EXPECT_EQ(summary.max, 10u);
  EXPECT_EQ(summary.median, 6u);  // sizes[5] of the sorted vector.
  EXPECT_EQ(summary.p90, 10u);
  EXPECT_DOUBLE_EQ(summary.mean, 5.5);
}

TEST(StatsTest, SingletonFraction) {
  // 3 singleton clusters out of 3 + 7 members total.
  EXPECT_NEAR(SingletonFraction(ClustersOfSizes({1, 1, 1, 7})), 0.3, 1e-9);
  EXPECT_DOUBLE_EQ(SingletonFraction(ClustersOfSizes({1, 1})), 1.0);
  EXPECT_DOUBLE_EQ(SingletonFraction(ClustersOfSizes({5})), 0.0);
}

TEST(StatsTest, HistogramBuckets) {
  // Sizes: 1 -> bucket0, 2,3 -> bucket1, 4..7 -> bucket2, 8 -> bucket3.
  std::vector<size_t> histogram =
      ClusterSizeHistogram(ClustersOfSizes({1, 1, 2, 3, 4, 7, 8}));
  ASSERT_EQ(histogram.size(), 4u);
  EXPECT_EQ(histogram[0], 2u);
  EXPECT_EQ(histogram[1], 2u);
  EXPECT_EQ(histogram[2], 2u);
  EXPECT_EQ(histogram[3], 1u);
}

TEST(StatsTest, FormatMentionsAllFields) {
  std::string text = FormatSummary(SummarizeClusterSizes(ClustersOfSizes({1, 2, 3})));
  EXPECT_NE(text.find("n=3"), std::string::npos);
  EXPECT_NE(text.find("gini="), std::string::npos);
  EXPECT_NE(text.find("max=3"), std::string::npos);
}

}  // namespace
}  // namespace snowboard
