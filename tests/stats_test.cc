// Tests for campaign statistics (cluster-size distributions) and the process-wide
// pipeline counter block they are reported alongside.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <unistd.h>

#include "src/snowboard/checkpoint.h"
#include "src/snowboard/pipeline.h"
#include "src/snowboard/stats.h"
#include "src/util/counters.h"

namespace snowboard {
namespace {

std::vector<PmcCluster> ClustersOfSizes(std::vector<size_t> sizes) {
  std::vector<PmcCluster> clusters;
  uint32_t next = 0;
  for (size_t i = 0; i < sizes.size(); i++) {
    PmcCluster cluster;
    cluster.key = i;
    for (size_t m = 0; m < sizes[i]; m++) {
      cluster.members.push_back(next++);
    }
    clusters.push_back(std::move(cluster));
  }
  return clusters;
}

TEST(StatsTest, EmptyDistribution) {
  DistributionSummary summary = SummarizeClusterSizes({});
  EXPECT_EQ(summary.count, 0u);
  EXPECT_EQ(summary.gini, 0.0);
  EXPECT_EQ(SingletonFraction({}), 0.0);
  EXPECT_TRUE(ClusterSizeHistogram({}).empty());
}

TEST(StatsTest, UniformSizesHaveZeroGini) {
  DistributionSummary summary = SummarizeClusterSizes(ClustersOfSizes({4, 4, 4, 4}));
  EXPECT_EQ(summary.count, 4u);
  EXPECT_EQ(summary.min, 4u);
  EXPECT_EQ(summary.max, 4u);
  EXPECT_DOUBLE_EQ(summary.mean, 4.0);
  EXPECT_NEAR(summary.gini, 0.0, 1e-9);
}

TEST(StatsTest, SkewedSizesHaveHighGini) {
  DistributionSummary uniform = SummarizeClusterSizes(ClustersOfSizes({5, 5, 5, 5}));
  DistributionSummary skewed = SummarizeClusterSizes(ClustersOfSizes({1, 1, 1, 97}));
  EXPECT_GT(skewed.gini, uniform.gini + 0.5);
  EXPECT_EQ(skewed.max, 97u);
  EXPECT_EQ(skewed.median, 1u);
}

TEST(StatsTest, SummaryOrderStatistics) {
  DistributionSummary summary =
      SummarizeClusterSizes(ClustersOfSizes({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
  EXPECT_EQ(summary.count, 10u);
  EXPECT_EQ(summary.min, 1u);
  EXPECT_EQ(summary.max, 10u);
  EXPECT_EQ(summary.median, 6u);  // sizes[5] of the sorted vector.
  EXPECT_EQ(summary.p90, 10u);
  EXPECT_DOUBLE_EQ(summary.mean, 5.5);
}

TEST(StatsTest, SingletonFraction) {
  // 3 singleton clusters out of 3 + 7 members total.
  EXPECT_NEAR(SingletonFraction(ClustersOfSizes({1, 1, 1, 7})), 0.3, 1e-9);
  EXPECT_DOUBLE_EQ(SingletonFraction(ClustersOfSizes({1, 1})), 1.0);
  EXPECT_DOUBLE_EQ(SingletonFraction(ClustersOfSizes({5})), 0.0);
}

TEST(StatsTest, HistogramBuckets) {
  // Sizes: 1 -> bucket0, 2,3 -> bucket1, 4..7 -> bucket2, 8 -> bucket3.
  std::vector<size_t> histogram =
      ClusterSizeHistogram(ClustersOfSizes({1, 1, 2, 3, 4, 7, 8}));
  ASSERT_EQ(histogram.size(), 4u);
  EXPECT_EQ(histogram[0], 2u);
  EXPECT_EQ(histogram[1], 2u);
  EXPECT_EQ(histogram[2], 2u);
  EXPECT_EQ(histogram[3], 1u);
}

TEST(StatsTest, FormatMentionsAllFields) {
  std::string text = FormatSummary(SummarizeClusterSizes(ClustersOfSizes({1, 2, 3})));
  EXPECT_NE(text.find("n=3"), std::string::npos);
  EXPECT_NE(text.find("gini="), std::string::npos);
  EXPECT_NE(text.find("max=3"), std::string::npos);
}

TEST(StatsTest, ResetZeroesResumeAndCheckpointCounters) {
  PipelineCounters& counters = GlobalPipelineCounters();
  counters.concurrent_tests_run.fetch_add(3);
  counters.tests_resumed.fetch_add(2);
  counters.trials_retried.fetch_add(5);
  counters.checkpoint_writes.fetch_add(1);
  counters.checkpoint_bytes.fetch_add(128);
  counters.checkpoint_loads.fetch_add(4);
  ResetPipelineCounters();
  EXPECT_EQ(counters.concurrent_tests_run.load(), 0u);
  EXPECT_EQ(counters.tests_resumed.load(), 0u);
  EXPECT_EQ(counters.trials_retried.load(), 0u);
  EXPECT_EQ(counters.checkpoint_writes.load(), 0u);
  EXPECT_EQ(counters.checkpoint_bytes.load(), 0u);
  EXPECT_EQ(counters.checkpoint_loads.load(), 0u);
}

TEST(StatsTest, CheckpointedPipelineReportsCountersAndResultFields) {
  PipelineOptions options;
  options.seed = 11;
  options.corpus.seed = 5;
  options.corpus.max_iterations = 6;
  options.corpus.target_size = 4;
  options.strategy = Strategy::kSInsPair;
  options.max_concurrent_tests = 3;
  options.explorer.num_trials = 2;
  options.checkpoint_dir =
      std::string(::testing::TempDir()) + "sb_stats_counters_" + std::to_string(::getpid());
  std::filesystem::remove_all(options.checkpoint_dir);

  ResetPipelineCounters();
  PipelineResult result = RunSnowboardPipeline(options);
  PipelineCounters& counters = GlobalPipelineCounters();

  // A fresh checkpointed run explores everything live and journals as it goes.
  EXPECT_EQ(counters.concurrent_tests_run.load(), result.tests_executed);
  EXPECT_EQ(counters.tests_resumed.load(), 0u);
  EXPECT_EQ(result.tests_resumed, 0u);
  EXPECT_EQ(result.trials_retried, counters.trials_retried.load());
  EXPECT_GT(counters.checkpoint_writes.load(), 0u);
  EXPECT_GT(counters.checkpoint_bytes.load(), 0u);

  // A resume of the completed campaign replays the stored result: loads, no writes of new
  // campaign state beyond none, and the resumed/executed counters mirror each other.
  ResetPipelineCounters();
  PipelineOptions resume_options = options;
  resume_options.resume = true;
  PipelineResult resumed = RunSnowboardPipeline(resume_options);
  EXPECT_EQ(resumed.tests_resumed, resumed.tests_executed);
  EXPECT_EQ(counters.tests_resumed.load(), resumed.tests_executed);
  EXPECT_EQ(counters.concurrent_tests_run.load(), 0u);
  EXPECT_GT(counters.checkpoint_loads.load(), 0u);
  std::filesystem::remove_all(options.checkpoint_dir);
}

}  // namespace
}  // namespace snowboard
